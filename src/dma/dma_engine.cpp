#include "dma/dma_engine.hpp"

#include <algorithm>
#include <vector>

namespace vmsls::dma {

struct DmaEngine::Xfer {
  PhysAddr src = 0;
  PhysAddr dst = 0;
  u64 bytes = 0;
  u64 pos = 0;
  std::function<void()> done;
};

DmaEngine::DmaEngine(sim::Simulator& sim, mem::MemoryBus& bus, mem::PhysicalMemory& pm,
                     const DmaConfig& cfg, std::string name)
    : sim_(sim),
      bus_(bus),
      pm_(pm),
      cfg_(cfg),
      name_(std::move(name)),
      transfers_(sim.stats().counter(name_ + ".transfers")),
      bytes_(sim.stats().counter(name_ + ".bytes")) {
  require(cfg.chunk_bytes > 0, "DMA chunk size must be nonzero");
}

void DmaEngine::copy(PhysAddr src, PhysAddr dst, u64 bytes, std::function<void()> done) {
  require(bytes > 0, "zero-byte DMA transfer");
  transfers_.add();
  bytes_.add(bytes);
  auto x = std::make_shared<Xfer>();
  x->src = src;
  x->dst = dst;
  x->bytes = bytes;
  x->done = std::move(done);
  sim_.schedule_in(cfg_.setup_latency, [this, x] { step(x); });
}

void DmaEngine::step(const std::shared_ptr<Xfer>& x) {
  if (x->pos >= x->bytes) {
    x->done();
    return;
  }
  const u32 chunk = static_cast<u32>(std::min<u64>(cfg_.chunk_bytes, x->bytes - x->pos));
  const PhysAddr src = x->src + x->pos;
  const PhysAddr dst = x->dst + x->pos;
  bus_.request(mem::BusRequest{src, chunk, false, [this, x, src, dst, chunk] {
    bus_.request(mem::BusRequest{dst, chunk, true, [this, x, src, dst, chunk] {
      std::vector<u8> tmp(chunk);
      pm_.read(src, std::span<u8>(tmp.data(), tmp.size()));
      pm_.write(dst, std::span<const u8>(tmp.data(), tmp.size()));
      x->pos += chunk;
      step(x);
    }});
  }});
}

}  // namespace vmsls::dma

// DMA copy engine (baseline substrate).
//
// Moves physically addressed data in bus bursts: each chunk is one read
// plus one write transaction on the shared memory bus, with the functional
// copy performed at chunk completion. This is the engine the conventional
// copy-based offload flow uses for its copy-in/copy-out phases.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mem/bus.hpp"
#include "mem/physmem.hpp"
#include "sim/simulator.hpp"

namespace vmsls::dma {

struct DmaConfig {
  u32 chunk_bytes = 256;    // burst size per bus transaction
  Cycles setup_latency = 24;  // descriptor fetch + channel start
};

class DmaEngine {
 public:
  DmaEngine(sim::Simulator& sim, mem::MemoryBus& bus, mem::PhysicalMemory& pm,
            const DmaConfig& cfg, std::string name);

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Copies `bytes` from physical `src` to physical `dst`; `done` fires at
  /// completion. Multiple copies may be outstanding (they contend on the
  /// bus, not in the engine: a multi-channel controller).
  void copy(PhysAddr src, PhysAddr dst, u64 bytes, std::function<void()> done);

  const DmaConfig& config() const noexcept { return cfg_; }
  u64 transfers() const noexcept { return transfers_.value(); }

 private:
  struct Xfer;
  void step(const std::shared_ptr<Xfer>& x);

  sim::Simulator& sim_;
  mem::MemoryBus& bus_;
  mem::PhysicalMemory& pm_;
  DmaConfig cfg_;
  std::string name_;
  Counter& transfers_;
  Counter& bytes_;
};

}  // namespace vmsls::dma

// Copy-based offload driver — the conventional-accelerator baseline.
//
// Implements the flow the paper's virtual-memory hardware threads replace:
//
//   1. allocate a physically contiguous pinned buffer,
//   2. copy user data in (CPU memcpy or scatter-gather DMA over pinned
//      user pages),
//   3. run the kernel with its MMU disabled against physical addresses,
//   4. copy results back out.
//
// The driver accounts each phase separately so the SVM-vs-DMA experiment
// can report the copy/compute breakdown.
//
// Under memory pressure (a Pager attached via set_pager) the driver plays
// by the paging subsystem's rules instead of snapshotting translations:
// every page of a scatter-gather run is faulted in through the pager (so
// swap-in and victim-writeback time is charged) and pinned for the
// transfer's lifetime, and admission is budget-aware — a run whose pin
// demand meets or exceeds the pin quota is chunked into quota-sized pieces,
// and chunks queue behind earlier pin releases rather than deadlocking the
// fault path. `offload.pin_stalls` / `offload.chunked_runs` count both
// pressure reliefs.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dma/dma_engine.hpp"
#include "mem/address_space.hpp"
#include "mem/frames.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"

namespace vmsls::paging {
class Pager;
}

namespace vmsls::dma {

enum class CopyMode {
  kCpuCopy,  // driver memcpy through the CPU (line-sized bus transactions)
  kSgDma,    // pin user pages, scatter-gather DMA in page-sized bursts
};

const char* copy_mode_name(CopyMode mode) noexcept;

struct OffloadConfig {
  CopyMode mode = CopyMode::kSgDma;
  Cycles pin_page_cost = 280;  // get_user_pages()-style cost per page
  Cycles launch_cost = 500;    // ioctl / descriptor setup per transfer
  u32 cpu_copy_chunk = 32;     // CPU memcpy moves cache lines
};

/// A pinned, physically contiguous device buffer.
struct PinnedBuffer {
  PhysAddr pa = 0;
  u64 bytes = 0;
  u64 first_frame = 0;
  u64 frame_count = 0;
};

class OffloadDriver {
 public:
  OffloadDriver(sim::Simulator& sim, rt::OsModel& os, rt::Process& process, DmaEngine& dma,
                mem::MemoryBus& bus, mem::PhysicalMemory& pm, const OffloadConfig& cfg,
                std::string name);

  OffloadDriver(const OffloadDriver&) = delete;
  OffloadDriver& operator=(const OffloadDriver&) = delete;

  /// Attaches the memory-pressure model: copies fault user pages in through
  /// the pager (charging swap time) and pin them for the transfer's
  /// lifetime, with budget-aware chunked admission. nullptr detaches (the
  /// pressure-free model: pages map on demand, no pinning). The pager must
  /// outlive the driver or be detached first.
  void set_pager(paging::Pager* pager) noexcept { pager_ = pager; }

  /// Allocates a pinned contiguous buffer from the process's frame pool
  /// (zero simulated time: done at setup).
  PinnedBuffer alloc_pinned(u64 bytes);
  void free_pinned(const PinnedBuffer& buf);

  /// Copies user [va, va+bytes) into the pinned buffer at offset `off`.
  void copy_in(VirtAddr va, const PinnedBuffer& buf, u64 off, u64 bytes,
               std::function<void()> done);

  /// Copies pinned data back to user memory.
  void copy_out(const PinnedBuffer& buf, u64 off, VirtAddr va, u64 bytes,
                std::function<void()> done);

  const OffloadConfig& config() const noexcept { return cfg_; }
  u64 bytes_copied() const noexcept { return bytes_copied_.value(); }
  u64 pin_stalls() const noexcept { return pin_stalls_.value(); }
  u64 chunked_runs() const noexcept { return chunked_runs_.value(); }
  /// Pages the driver holds pinned right now (all in-flight transfers).
  u64 pins_held() const noexcept { return pins_held_; }

 private:
  /// One scatter-gather transfer under memory pressure, processed as a
  /// sequence of pin-quota-sized chunks.
  struct SgXfer {
    VirtAddr va = 0;
    PhysAddr pinned = 0;
    u64 bytes = 0;
    bool to_pinned = false;
    u64 pos = 0;        // bytes fully transferred (completed chunks)
    u64 chunk_end = 0;  // byte bound of the chunk in flight
    u64 pin_cursor = 0;  // next byte whose page still needs pinning
    u64 seg_cursor = 0;  // next byte to DMA within the chunk
    u64 chunk_pages = 0;
    bool counted_chunked = false;
    std::function<void()> done;
  };

  /// Resolves user pages (mapping on demand, as pinning does) and runs one
  /// DMA or CPU-copy per contiguous piece.
  void run_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                std::function<void()> done);
  void cpu_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                std::function<void()> done);

  // --- pressure-aware scatter-gather path (pager attached) ---
  /// Sizes x's next chunk from x->pos against `quota` (0 = unlimited).
  void sg_size_chunk(const std::shared_ptr<SgXfer>& x, u64 quota);
  void sg_start_chunk(const std::shared_ptr<SgXfer>& x);
  void sg_admit(const std::shared_ptr<SgXfer>& x);
  void sg_pin_next(const std::shared_ptr<SgXfer>& x);
  void sg_dma_next(const std::shared_ptr<SgXfer>& x);
  void sg_finish_chunk(const std::shared_ptr<SgXfer>& x);
  void pump_pin_waiters();

  sim::Simulator& sim_;
  rt::OsModel& os_;
  rt::Process& process_;
  DmaEngine& dma_;
  mem::MemoryBus& bus_;
  mem::PhysicalMemory& pm_;
  OffloadConfig cfg_;
  std::string name_;
  paging::Pager* pager_ = nullptr;

  /// Pages currently pinned across all in-flight transfers; admission keeps
  /// this at or below the pager's pin quota so victim selection never runs
  /// out of candidate frames (the deadlock the quota exists to prevent).
  u64 pins_held_ = 0;
  /// Chunks waiting for earlier pin releases, admitted FIFO.
  std::deque<std::shared_ptr<SgXfer>> pin_waiters_;

  Counter& copies_;
  Counter& bytes_copied_;
  Counter& pages_pinned_;
  Counter& pin_faults_;
  Counter& pin_stalls_;
  Counter& chunked_runs_;
};

}  // namespace vmsls::dma

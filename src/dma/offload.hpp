// Copy-based offload driver — the conventional-accelerator baseline.
//
// Implements the flow the paper's virtual-memory hardware threads replace:
//
//   1. allocate a physically contiguous pinned buffer,
//   2. copy user data in (CPU memcpy or scatter-gather DMA over pinned
//      user pages),
//   3. run the kernel with its MMU disabled against physical addresses,
//   4. copy results back out.
//
// The driver accounts each phase separately so the SVM-vs-DMA experiment
// can report the copy/compute breakdown.
#pragma once

#include <functional>
#include <string>

#include "dma/dma_engine.hpp"
#include "mem/address_space.hpp"
#include "mem/frames.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"

namespace vmsls::dma {

enum class CopyMode {
  kCpuCopy,  // driver memcpy through the CPU (line-sized bus transactions)
  kSgDma,    // pin user pages, scatter-gather DMA in page-sized bursts
};

struct OffloadConfig {
  CopyMode mode = CopyMode::kSgDma;
  Cycles pin_page_cost = 280;  // get_user_pages()-style cost per page
  Cycles launch_cost = 500;    // ioctl / descriptor setup per transfer
  u32 cpu_copy_chunk = 32;     // CPU memcpy moves cache lines
};

/// A pinned, physically contiguous device buffer.
struct PinnedBuffer {
  PhysAddr pa = 0;
  u64 bytes = 0;
  u64 first_frame = 0;
  u64 frame_count = 0;
};

class OffloadDriver {
 public:
  OffloadDriver(sim::Simulator& sim, rt::OsModel& os, rt::Process& process, DmaEngine& dma,
                mem::MemoryBus& bus, mem::PhysicalMemory& pm, const OffloadConfig& cfg,
                std::string name);

  OffloadDriver(const OffloadDriver&) = delete;
  OffloadDriver& operator=(const OffloadDriver&) = delete;

  /// Allocates a pinned contiguous buffer from the process's frame pool
  /// (zero simulated time: done at setup).
  PinnedBuffer alloc_pinned(u64 bytes);
  void free_pinned(const PinnedBuffer& buf);

  /// Copies user [va, va+bytes) into the pinned buffer at offset `off`.
  void copy_in(VirtAddr va, const PinnedBuffer& buf, u64 off, u64 bytes,
               std::function<void()> done);

  /// Copies pinned data back to user memory.
  void copy_out(const PinnedBuffer& buf, u64 off, VirtAddr va, u64 bytes,
                std::function<void()> done);

  const OffloadConfig& config() const noexcept { return cfg_; }
  u64 bytes_copied() const noexcept { return bytes_copied_.value(); }

 private:
  /// Resolves user pages (mapping on demand, as pinning does) and runs one
  /// DMA or CPU-copy per contiguous piece.
  void run_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                std::function<void()> done);
  void cpu_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                std::function<void()> done);

  sim::Simulator& sim_;
  rt::OsModel& os_;
  rt::Process& process_;
  DmaEngine& dma_;
  mem::MemoryBus& bus_;
  mem::PhysicalMemory& pm_;
  OffloadConfig cfg_;
  std::string name_;
  Counter& copies_;
  Counter& bytes_copied_;
  Counter& pages_pinned_;
};

}  // namespace vmsls::dma

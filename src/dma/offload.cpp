#include "dma/offload.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace vmsls::dma {

OffloadDriver::OffloadDriver(sim::Simulator& sim, rt::OsModel& os, rt::Process& process,
                             DmaEngine& dma, mem::MemoryBus& bus, mem::PhysicalMemory& pm,
                             const OffloadConfig& cfg, std::string name)
    : sim_(sim),
      os_(os),
      process_(process),
      dma_(dma),
      bus_(bus),
      pm_(pm),
      cfg_(cfg),
      name_(std::move(name)),
      copies_(sim.stats().counter(name_ + ".copies")),
      bytes_copied_(sim.stats().counter(name_ + ".bytes")),
      pages_pinned_(sim.stats().counter(name_ + ".pages_pinned")) {}

PinnedBuffer OffloadDriver::alloc_pinned(u64 bytes) {
  require(bytes > 0, "zero-byte pinned buffer");
  auto& frames = process_.address_space().frames();
  const u64 frame_bytes = frames.frame_bytes();
  const u64 count = ceil_div(bytes, frame_bytes);
  PinnedBuffer buf;
  const auto first = frames.alloc_contiguous(count);
  if (!first)
    throw std::runtime_error("OffloadDriver: no contiguous run of " + std::to_string(count) +
                             " frames for a pinned buffer");
  buf.first_frame = *first;
  buf.frame_count = count;
  buf.bytes = bytes;
  buf.pa = frames.frame_addr(buf.first_frame);
  return buf;
}

void OffloadDriver::free_pinned(const PinnedBuffer& buf) {
  process_.address_space().frames().free_contiguous(buf.first_frame, buf.frame_count);
}

void OffloadDriver::copy_in(VirtAddr va, const PinnedBuffer& buf, u64 off, u64 bytes,
                            std::function<void()> done) {
  require(off + bytes <= buf.bytes, "copy_in overruns pinned buffer");
  copies_.add();
  bytes_copied_.add(bytes);
  run_copy(va, buf.pa + off, bytes, /*to_pinned=*/true, std::move(done));
}

void OffloadDriver::copy_out(const PinnedBuffer& buf, u64 off, VirtAddr va, u64 bytes,
                             std::function<void()> done) {
  require(off + bytes <= buf.bytes, "copy_out overruns pinned buffer");
  copies_.add();
  bytes_copied_.add(bytes);
  run_copy(va, buf.pa + off, bytes, /*to_pinned=*/false, std::move(done));
}

void OffloadDriver::run_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                             std::function<void()> done) {
  auto& as = process_.address_space();
  const u64 page = as.page_bytes();
  const u64 pages = ceil_div((va & (page - 1)) + bytes, page);
  pages_pinned_.add(pages);

  if (cfg_.mode == CopyMode::kCpuCopy) {
    // Driver-side memcpy: launch cost, then line-sized bus traffic.
    os_.exec_service(cfg_.launch_cost, [this, va, pinned, bytes, to_pinned,
                                        done = std::move(done)]() mutable {
      cpu_copy(va, pinned, bytes, to_pinned, std::move(done));
    });
    return;
  }

  // Scatter-gather DMA: pin user pages (mapping them on demand, which is
  // what get_user_pages does), then one DMA per physically contiguous run.
  const Cycles setup = cfg_.launch_cost + cfg_.pin_page_cost * pages;
  os_.exec_service(setup, [this, va, pinned, bytes, to_pinned, done = std::move(done)]() mutable {
    auto& space = process_.address_space();
    const u64 pg = space.page_bytes();
    struct Seg {
      PhysAddr user_pa;
      PhysAddr pinned_pa;
      u64 bytes;
    };
    auto segs = std::make_shared<std::vector<Seg>>();
    u64 pos = 0;
    while (pos < bytes) {
      const VirtAddr a = va + pos;
      if (!space.is_mapped(a)) space.map_page(a);
      const u64 in_page = pg - (a & (pg - 1));
      const u64 n = std::min<u64>(in_page, bytes - pos);
      segs->push_back(Seg{*space.translate(a), pinned + pos, n});
      pos += n;
    }
    auto idx = std::make_shared<std::size_t>(0);
    // The stored closure references itself only weakly; each in-flight DMA
    // continuation holds the strong reference. A strong self-capture would
    // be a shared_ptr cycle — the closure (and `done`) would never free.
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, segs, idx, to_pinned, wstep = std::weak_ptr<std::function<void()>>(step),
             done = std::move(done)]() mutable {
      if (*idx >= segs->size()) {
        done();
        return;
      }
      const Seg s = (*segs)[(*idx)++];
      auto cont = [self = wstep.lock()] { (*self)(); };
      if (to_pinned)
        dma_.copy(s.user_pa, s.pinned_pa, s.bytes, std::move(cont));
      else
        dma_.copy(s.pinned_pa, s.user_pa, s.bytes, std::move(cont));
    };
    (*step)();
  });
}

void OffloadDriver::cpu_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                             std::function<void()> done) {
  // The CPU streams cache-line-sized pieces over the bus: read source line,
  // write destination line, repeat. Each chunk's functional copy happens at
  // its completion time, so partial copies interleave consistently with
  // other masters.
  auto pos = std::make_shared<u64>(0);
  // Weak self-reference; the bus-request continuations keep it alive (see
  // the scatter-gather path above for why a strong capture would leak).
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, pos, va, pinned, bytes, to_pinned,
           wstep = std::weak_ptr<std::function<void()>>(step),
           done = std::move(done)]() mutable {
    if (*pos >= bytes) {
      done();
      return;
    }
    auto& space = process_.address_space();
    const u64 page = space.page_bytes();
    const u64 off = *pos;
    const VirtAddr ua = va + off;
    if (!space.is_mapped(ua)) space.map_page(ua);
    const u64 in_page = page - (ua & (page - 1));
    const u32 chunk = static_cast<u32>(
        std::min<u64>({static_cast<u64>(cfg_.cpu_copy_chunk), bytes - off, in_page}));
    const PhysAddr user_pa = *space.translate(ua);
    const PhysAddr src = to_pinned ? user_pa : pinned + off;
    const PhysAddr dst = to_pinned ? pinned + off : user_pa;
    *pos += chunk;
    auto self = wstep.lock();
    bus_.request(mem::BusRequest{src, chunk, false, [this, src, dst, chunk, self] {
      bus_.request(mem::BusRequest{dst, chunk, true, [this, src, dst, chunk, self] {
        std::vector<u8> tmp(chunk);
        pm_.read(src, std::span<u8>(tmp.data(), tmp.size()));
        pm_.write(dst, std::span<const u8>(tmp.data(), tmp.size()));
        (*self)();
      }});
    }});
  };
  (*step)();
}

}  // namespace vmsls::dma

#include "dma/offload.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mem/paging/pager.hpp"

namespace vmsls::dma {

const char* copy_mode_name(CopyMode mode) noexcept {
  switch (mode) {
    case CopyMode::kCpuCopy:
      return "cpu_copy";
    case CopyMode::kSgDma:
      return "sg_dma";
  }
  return "?";
}

OffloadDriver::OffloadDriver(sim::Simulator& sim, rt::OsModel& os, rt::Process& process,
                             DmaEngine& dma, mem::MemoryBus& bus, mem::PhysicalMemory& pm,
                             const OffloadConfig& cfg, std::string name)
    : sim_(sim),
      os_(os),
      process_(process),
      dma_(dma),
      bus_(bus),
      pm_(pm),
      cfg_(cfg),
      name_(std::move(name)),
      copies_(sim.stats().counter(name_ + ".copies")),
      bytes_copied_(sim.stats().counter(name_ + ".bytes")),
      pages_pinned_(sim.stats().counter(name_ + ".pages_pinned")),
      pin_faults_(sim.stats().counter(name_ + ".pin_faults")),
      pin_stalls_(sim.stats().counter(name_ + ".pin_stalls")),
      chunked_runs_(sim.stats().counter(name_ + ".chunked_runs")) {}

PinnedBuffer OffloadDriver::alloc_pinned(u64 bytes) {
  require(bytes > 0, "zero-byte pinned buffer");
  auto& frames = process_.address_space().frames();
  const u64 frame_bytes = frames.frame_bytes();
  const u64 count = ceil_div(bytes, frame_bytes);
  PinnedBuffer buf;
  const auto first = frames.alloc_contiguous(count);
  if (!first)
    throw std::runtime_error("OffloadDriver: no contiguous run of " + std::to_string(count) +
                             " frames for a pinned buffer");
  buf.first_frame = *first;
  buf.frame_count = count;
  buf.bytes = bytes;
  buf.pa = frames.frame_addr(buf.first_frame);
  return buf;
}

void OffloadDriver::free_pinned(const PinnedBuffer& buf) {
  process_.address_space().frames().free_contiguous(buf.first_frame, buf.frame_count);
}

void OffloadDriver::copy_in(VirtAddr va, const PinnedBuffer& buf, u64 off, u64 bytes,
                            std::function<void()> done) {
  require(off + bytes <= buf.bytes, "copy_in overruns pinned buffer");
  copies_.add();
  bytes_copied_.add(bytes);
  run_copy(va, buf.pa + off, bytes, /*to_pinned=*/true, std::move(done));
}

void OffloadDriver::copy_out(const PinnedBuffer& buf, u64 off, VirtAddr va, u64 bytes,
                             std::function<void()> done) {
  require(off + bytes <= buf.bytes, "copy_out overruns pinned buffer");
  copies_.add();
  bytes_copied_.add(bytes);
  run_copy(va, buf.pa + off, bytes, /*to_pinned=*/false, std::move(done));
}

void OffloadDriver::run_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                             std::function<void()> done) {
  auto& as = process_.address_space();
  const u64 page = as.page_bytes();
  const u64 pages = ceil_div((va & (page - 1)) + bytes, page);
  pages_pinned_.add(pages);

  if (cfg_.mode == CopyMode::kCpuCopy) {
    // Driver-side memcpy: launch cost, then line-sized bus traffic.
    os_.exec_service(cfg_.launch_cost, [this, va, pinned, bytes, to_pinned,
                                        done = std::move(done)]() mutable {
      cpu_copy(va, pinned, bytes, to_pinned, std::move(done));
    });
    return;
  }

  if (pager_ != nullptr) {
    // Memory-pressure path: the transfer proceeds in pin-quota-sized chunks.
    // Each chunk faults its pages in through the pager (swap time charged),
    // pins them for the chunk's DMA lifetime, and releases them at bus
    // completion; chunks queue behind earlier pin releases when the budget
    // is tight. Launch cost once per transfer; pin cost per chunk.
    os_.exec_service(cfg_.launch_cost, [this, va, pinned, bytes, to_pinned,
                                        done = std::move(done)]() mutable {
      auto x = std::make_shared<SgXfer>();
      x->va = va;
      x->pinned = pinned;
      x->bytes = bytes;
      x->to_pinned = to_pinned;
      x->done = std::move(done);
      sg_start_chunk(x);
    });
    return;
  }

  // Scatter-gather DMA: pin user pages (mapping them on demand, which is
  // what get_user_pages does), then one DMA per physically contiguous run.
  const Cycles setup = cfg_.launch_cost + cfg_.pin_page_cost * pages;
  os_.exec_service(setup, [this, va, pinned, bytes, to_pinned, done = std::move(done)]() mutable {
    auto& space = process_.address_space();
    const u64 pg = space.page_bytes();
    struct Seg {
      PhysAddr user_pa;
      PhysAddr pinned_pa;
      u64 bytes;
    };
    auto segs = std::make_shared<std::vector<Seg>>();
    u64 pos = 0;
    while (pos < bytes) {
      const VirtAddr a = va + pos;
      if (!space.is_mapped(a)) space.map_page(a);
      const u64 in_page = pg - (a & (pg - 1));
      const u64 n = std::min<u64>(in_page, bytes - pos);
      segs->push_back(Seg{*space.translate(a), pinned + pos, n});
      pos += n;
    }
    auto idx = std::make_shared<std::size_t>(0);
    // The stored closure references itself only weakly; each in-flight DMA
    // continuation holds the strong reference. A strong self-capture would
    // be a shared_ptr cycle — the closure (and `done`) would never free.
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, segs, idx, to_pinned, wstep = std::weak_ptr<std::function<void()>>(step),
             done = std::move(done)]() mutable {
      if (*idx >= segs->size()) {
        done();
        return;
      }
      const Seg s = (*segs)[(*idx)++];
      auto cont = [self = wstep.lock()] { (*self)(); };
      if (to_pinned)
        dma_.copy(s.user_pa, s.pinned_pa, s.bytes, std::move(cont));
      else
        dma_.copy(s.pinned_pa, s.user_pa, s.bytes, std::move(cont));
    };
    (*step)();
  });
}

// --- pressure-aware scatter-gather machinery ------------------------------

void OffloadDriver::sg_size_chunk(const std::shared_ptr<SgXfer>& x, u64 quota) {
  const u64 pg = process_.address_space().page_bytes();
  const u64 first_vpn = (x->va + x->pos) / pg;
  u64 chunk_end = x->bytes;
  if (quota != 0) {
    // Page-aligned split: the chunk covers at most `quota` user pages.
    const u64 va_limit = (first_vpn + quota) * pg;
    chunk_end = std::min(x->bytes, va_limit - x->va);
  }
  x->chunk_end = chunk_end;
  x->chunk_pages = (x->va + chunk_end - 1) / pg - first_vpn + 1;
  if (chunk_end < x->bytes && !x->counted_chunked) {
    x->counted_chunked = true;
    chunked_runs_.add();
  }
}

void OffloadDriver::sg_start_chunk(const std::shared_ptr<SgXfer>& x) {
  if (x->pos >= x->bytes) {
    x->done();
    return;
  }
  // The pager may have been detached mid-transfer; quota 0 (unlimited)
  // degenerates the rest of the machinery to the pressure-free model.
  const u64 quota = pager_ != nullptr ? pager_->pin_quota() : 0;
  sg_size_chunk(x, quota);
  // Budget-aware admission: never hold more pins than the quota allows, or
  // the fault path would run out of evictable frames. Over-demand chunks
  // queue FIFO behind in-flight transfers' pin releases — and a fresh
  // chunk never jumps an occupied queue, or alternating small transfers
  // could starve a large waiter forever.
  if (quota != 0 && (!pin_waiters_.empty() || pins_held_ + x->chunk_pages > quota)) {
    pin_stalls_.add();
    pin_waiters_.push_back(x);
    return;
  }
  sg_admit(x);
}

void OffloadDriver::sg_admit(const std::shared_ptr<SgXfer>& x) {
  pins_held_ += x->chunk_pages;
  x->pin_cursor = x->pos;
  x->seg_cursor = x->pos;
  // get_user_pages()-style software cost for this chunk's pages; the timed
  // fault-in work (evictions, swap reads) is charged by the pager per page.
  os_.exec_service(cfg_.pin_page_cost * x->chunk_pages, [this, x] { sg_pin_next(x); });
}

void OffloadDriver::sg_pin_next(const std::shared_ptr<SgXfer>& x) {
  auto& space = process_.address_space();
  const u64 pg = space.page_bytes();
  while (x->pin_cursor < x->chunk_end) {
    const VirtAddr page_va = (x->va + x->pin_cursor) & ~(pg - 1);
    space.pin(page_va);  // covers fault-in through the chunk's bus completion
    if (!space.is_mapped(page_va)) {
      if (pager_ == nullptr) {  // detached mid-transfer: pressure-free map
        space.map_page(page_va, /*writable=*/true);
        x->pin_cursor = std::min(x->chunk_end, page_va + pg - x->va);
        continue;
      }
      pin_faults_.add();
      // A DMA write into the page (copy_out) needs it writable: is_write
      // mirrors the direction the device will access user memory.
      pager_->handle_fault(page_va, /*is_write=*/!x->to_pinned, [this, x, page_va, pg] {
        // Re-enter on a fresh stack: handle_fault may complete synchronously
        // (clean evictions, no swap read), and a chunk's worth of such
        // faults must not recurse.
        sim_.schedule_now([this, x, page_va, pg] {
          auto& sp = process_.address_space();
          if (!sp.is_mapped(page_va)) sp.map_page(page_va, /*writable=*/true);
          x->pin_cursor = std::min(x->chunk_end, page_va + pg - x->va);
          sg_pin_next(x);
        });
      });
      return;
    }
    x->pin_cursor = std::min(x->chunk_end, page_va + pg - x->va);
  }
  sg_dma_next(x);
}

void OffloadDriver::sg_dma_next(const std::shared_ptr<SgXfer>& x) {
  if (x->seg_cursor >= x->chunk_end) {
    sg_finish_chunk(x);
    return;
  }
  auto& space = process_.address_space();
  const u64 pg = space.page_bytes();
  const VirtAddr a = x->va + x->seg_cursor;
  const u64 in_page = pg - (a & (pg - 1));
  const u64 n = std::min<u64>(in_page, x->chunk_end - x->seg_cursor);
  const PhysAddr user_pa = *space.translate(a);  // stable: the page is pinned
  const PhysAddr pinned_pa = x->pinned + x->seg_cursor;
  x->seg_cursor += n;
  auto cont = [this, x] { sg_dma_next(x); };
  if (x->to_pinned)
    dma_.copy(user_pa, pinned_pa, n, std::move(cont));
  else
    dma_.copy(pinned_pa, user_pa, n, std::move(cont));
}

void OffloadDriver::sg_finish_chunk(const std::shared_ptr<SgXfer>& x) {
  auto& space = process_.address_space();
  const u64 pg = space.page_bytes();
  const VirtAddr first_page = (x->va + x->pos) & ~(pg - 1);
  for (u64 p = 0; p < x->chunk_pages; ++p) {
    const VirtAddr page_va = first_page + p * pg;
    // DMA into user memory dirties the page behind the MMU's back; mark the
    // PTE so a later eviction pays the writeback (set_page_dirty semantics).
    if (!x->to_pinned && space.is_mapped(page_va))
      space.page_table().set_accessed_dirty(page_va, /*dirty=*/true);
    space.unpin(page_va);
  }
  pins_held_ -= x->chunk_pages;
  x->pos = x->chunk_end;
  // Released pins admit queued chunks first (FIFO fairness between
  // transfers), then this transfer's own next chunk competes for quota.
  pump_pin_waiters();
  sg_start_chunk(x);
}

void OffloadDriver::pump_pin_waiters() {
  // Re-size the head against the *current* quota before the admission
  // check: auto-budget rebalances can shrink the quota while a chunk
  // waits, and a chunk sized under the old, larger quota would otherwise
  // never fit again — wedging the transfer with a clean-looking queue.
  while (!pin_waiters_.empty()) {
    const u64 quota = pager_ != nullptr ? pager_->pin_quota() : 0;
    sg_size_chunk(pin_waiters_.front(), quota);
    if (quota != 0 && pins_held_ + pin_waiters_.front()->chunk_pages > quota) break;
    auto x = std::move(pin_waiters_.front());
    pin_waiters_.pop_front();
    sg_admit(x);
  }
}

void OffloadDriver::cpu_copy(VirtAddr va, PhysAddr pinned, u64 bytes, bool to_pinned,
                             std::function<void()> done) {
  // The CPU streams cache-line-sized pieces over the bus: read source line,
  // write destination line, repeat. Each chunk's functional copy happens at
  // its completion time, so partial copies interleave consistently with
  // other masters. With a pager attached, unmapped user pages fault in
  // through it (charging swap/eviction time) and each chunk's page stays
  // pinned across its bus round trip.
  auto pos = std::make_shared<u64>(0);
  // Weak self-reference; the bus-request continuations keep it alive (see
  // the scatter-gather path above for why a strong capture would leak).
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, pos, va, pinned, bytes, to_pinned,
           wstep = std::weak_ptr<std::function<void()>>(step),
           done = std::move(done)]() mutable {
    if (*pos >= bytes) {
      done();
      return;
    }
    auto& space = process_.address_space();
    const u64 page = space.page_bytes();
    const u64 off = *pos;
    const VirtAddr ua = va + off;
    const VirtAddr page_va = ua & ~(page - 1);
    if (pager_ != nullptr) space.pin(page_va);
    if (!space.is_mapped(ua)) {
      if (pager_ != nullptr) {
        pin_faults_.add();
        auto self = wstep.lock();
        pager_->handle_fault(page_va, /*is_write=*/!to_pinned, [this, self, page_va] {
          sim_.schedule_now([this, self, page_va] {
            auto& sp = process_.address_space();
            if (!sp.is_mapped(page_va)) sp.map_page(page_va, /*writable=*/true);
            // This entry's pin ends here; the re-entered step immediately
            // takes its own within the same event, so no eviction window
            // opens between the two.
            sp.unpin(page_va);
            (*self)();
          });
        });
        return;
      }
      space.map_page(ua);
    }
    const u64 in_page = page - (ua & (page - 1));
    const u32 chunk = static_cast<u32>(
        std::min<u64>({static_cast<u64>(cfg_.cpu_copy_chunk), bytes - off, in_page}));
    const PhysAddr user_pa = *space.translate(ua);
    const PhysAddr src = to_pinned ? user_pa : pinned + off;
    const PhysAddr dst = to_pinned ? pinned + off : user_pa;
    *pos += chunk;
    auto self = wstep.lock();
    bus_.request(mem::BusRequest{src, chunk, false,
                                 [this, src, dst, chunk, page_va, to_pinned, self] {
      bus_.request(mem::BusRequest{dst, chunk, true,
                                   [this, src, dst, chunk, page_va, to_pinned, self] {
        std::vector<u8> tmp(chunk);
        pm_.read(src, std::span<u8>(tmp.data(), tmp.size()));
        pm_.write(dst, std::span<const u8>(tmp.data(), tmp.size()));
        if (pager_ != nullptr) {
          auto& sp = process_.address_space();
          // Copy-out writes user memory behind the MMU: dirty the PTE so a
          // later eviction pays the writeback.
          if (!to_pinned && sp.is_mapped(page_va))
            sp.page_table().set_accessed_dirty(page_va, /*dirty=*/true);
          sp.unpin(page_va);
        }
        (*self)();
      }});
    }});
  };
  (*step)();
}

}  // namespace vmsls::dma

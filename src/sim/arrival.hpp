// Open-system arrival process: the event source serving-mode runs on.
//
// Closed-loop benches (fig9-14) measure makespan: every request is present
// at t=0 and the metric is "when does the last one finish". Production
// memory managers are judged open-loop: requests arrive on their own clock,
// whether or not the machine is keeping up, and the metrics are tail
// latency and the highest arrival rate the system sustains under a latency
// bound. This class samples the inter-arrival gaps of that open process —
// deterministically seeded (util/Rng, never wall clock), so a serving run
// inherits every bit-identity gate the closed-loop benches already enforce.
//
// Two base processes plus a modulator:
//
//   * kPoisson        — exponential gaps around `mean_gap` (memoryless:
//                       the M/*/k arrival side of the classic open model),
//   * kDeterministic  — fixed gaps of exactly `mean_gap` (a conveyor belt;
//                       isolates queueing noise from arrival noise),
//   * burst/lull      — a square wave over the cycle clock: inside a burst
//                       window the instantaneous rate is multiplied by
//                       `burst_factor`, outside it the process runs at the
//                       nominal rate. Burstiness is what separates a p99
//                       story from a mean story, so it is a first-class
//                       knob, not a workload hack.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace vmsls::sim {

/// Arrival-process knobs (see sls::TrafficConfig::arrival).
struct ArrivalConfig {
  enum class Kind { kPoisson, kDeterministic };
  Kind kind = Kind::kPoisson;   ///< gap distribution (exponential or fixed)
  Cycles mean_gap = 20'000;     ///< nominal mean inter-arrival gap in cycles
  u64 seed = 1;                 ///< Rng stream seed (gap sampling only)
  double burst_factor = 1.0;    ///< rate multiplier inside a burst (>= 1)
  Cycles burst_period = 0;      ///< square-wave period in cycles; 0 = flat
  double burst_duty = 0.25;     ///< fraction of each period spent bursting
};

/// Samples successive inter-arrival gaps. One instance per serving run;
/// construction captures the seed, so two processes built from the same
/// config emit bit-identical gap streams.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  /// The gap from `now` to the next arrival, always >= 1 cycle. `now`
  /// drives only the burst/lull phase; the stochastic state advances one
  /// draw per call regardless, so traced and untraced runs stay identical.
  Cycles next_gap(Cycles now);

  /// True when `now` falls inside a burst window of the modulator (always
  /// false when burst_period == 0 or burst_factor <= 1).
  bool in_burst(Cycles now) const noexcept;

  const ArrivalConfig& config() const noexcept { return cfg_; }

 private:
  ArrivalConfig cfg_;
  Rng rng_;
};

}  // namespace vmsls::sim

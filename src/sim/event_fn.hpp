// Move-only small-buffer callback for the event kernel.
//
// std::function heap-allocates any closure larger than its (typically 16B)
// inline buffer, which puts one malloc/free pair on the critical path of
// every scheduled event. EventFn widens the inline buffer to 56 bytes —
// enough for every hot closure in the codebase (a `this` pointer plus a
// handful of words, or a captured std::function) — and is move-only, so
// callables never need to be copyable and a move is a flat memcpy-sized
// relocation. Oversized or over-aligned callables transparently fall back
// to the heap; behavior is identical either way.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace vmsls::sim {

class EventFn {
 public:
  /// Inline storage, sized so EventNode (16B header + vtable-free 16B ops +
  /// storage) stays within 96 bytes — 1.5 cache lines per pooled event.
  static constexpr std::size_t kInlineBytes = 56;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> && std::is_invocable_v<D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      relocate_ = &inline_relocate<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      invoke_ = &heap_invoke<D>;
      relocate_ = &heap_relocate<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (invoke_ != nullptr) {
      relocate_(storage_, nullptr);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  // Relocate = move-construct into `dst` and destroy `src`; destroy-only
  // when `dst` is null. One pointer covers move, destroy, and heap free.
  using Invoke = void (*)(void*);
  using Relocate = void (*)(void* src, void* dst) noexcept;

  template <typename D>
  static void inline_invoke(void* s) {
    (*static_cast<D*>(s))();
  }
  template <typename D>
  static void inline_relocate(void* src, void* dst) noexcept {
    D* f = static_cast<D*>(src);
    if (dst != nullptr) ::new (dst) D(std::move(*f));
    f->~D();
  }
  template <typename D>
  static void heap_invoke(void* s) {
    (**static_cast<D**>(s))();
  }
  template <typename D>
  static void heap_relocate(void* src, void* dst) noexcept {
    D** p = static_cast<D**>(src);
    if (dst != nullptr)
      *static_cast<D**>(dst) = *p;
    else
      delete *p;
  }

  void move_from(EventFn& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (invoke_ != nullptr) {
      relocate_(other.storage_, storage_);
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
};

}  // namespace vmsls::sim

// Clock-domain ratio conversion.
//
// The reference clock is the FPGA fabric clock. The host CPU runs in a
// faster domain; its instruction costs are converted to fabric cycles with
// a rational ratio so no floating-point drift accumulates.
#pragma once

#include "util/units.hpp"

namespace vmsls::sim {

/// A clock domain whose frequency is `num/den` times the reference clock.
/// E.g. a 667 MHz CPU over a 200 MHz fabric is ratio {10, 3} (3.33x).
class ClockDomain {
 public:
  constexpr ClockDomain(u64 num, u64 den) : num_(num), den_(den) {
    // Cannot use util::require in constexpr context portably; validate lazily.
  }

  /// Converts `local` cycles of this domain to reference cycles, rounding up
  /// (work cannot complete mid-reference-cycle).
  constexpr Cycles to_ref(Cycles local) const noexcept {
    return (local * den_ + num_ - 1) / num_;
  }

  /// Converts reference cycles to this domain's cycles, rounding down.
  constexpr Cycles from_ref(Cycles ref) const noexcept { return ref * num_ / den_; }

  constexpr double ratio() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

 private:
  u64 num_;
  u64 den_;
};

}  // namespace vmsls::sim

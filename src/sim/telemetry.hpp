// Periodic telemetry sampling in the simulated clock domain.
//
// A TelemetrySampler is a self-rescheduling simulator event that snapshots a
// configurable probe set every `period` cycles into an in-memory time-series
// (flushable as CSV) and, when tracing is on, mirrors each sample onto trace
// counter tracks. It re-arms only while other work is pending, so the final
// sample lands at or after the last workload event and the event queue still
// drains — a sampler never keeps a run alive on its own.
//
// Probes are plain std::function<double()> registered before start(); the
// column set is frozen at the first sample. Rate probes turn a monotonically
// increasing counter into a per-sample delta (e.g. faults per period).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace vmsls::sim {

class Simulator;

/// Platform-level telemetry knobs (see sls::PlatformSpec::telemetry).
struct TelemetryConfig {
  Cycles period = 0;           ///< sampling period in cycles; 0 = disabled
  bool trace_counters = true;  ///< mirror samples onto trace counter tracks
};

class TelemetrySampler {
 public:
  struct Row {
    Cycles cycle = 0;
    std::vector<double> values;
  };

  /// `period` must be > 0. `name` labels the sampler's trace track.
  TelemetrySampler(Simulator& sim, Cycles period, std::string name = "telemetry");

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Registers a sampled value under CSV column `column`. Call before
  /// start(); the probe must stay valid for the sampler's lifetime.
  void add_probe(std::string column, std::function<double()> probe);

  /// Like add_probe, but reports the delta since the previous sample —
  /// turns a monotonic counter into a per-period rate.
  void add_rate_probe(std::string column, std::function<double()> probe);

  /// Takes the first sample immediately and schedules the periodic tick.
  void start();

  /// True while the periodic tick is scheduled (start()ed and the
  /// simulation has not drained past the sampler yet).
  bool armed() const noexcept { return armed_; }

  Cycles period() const noexcept { return period_; }

  /// When true (default) and a trace sink is attached, each sample also
  /// lands on the sampler's trace counter tracks.
  bool trace_counters = true;

  const std::vector<Row>& rows() const noexcept { return rows_; }
  const std::vector<std::string>& columns() const noexcept { return columns_; }

  /// Writes "cycle,<col>,..." header plus one row per sample.
  void write_csv(std::ostream& os) const;
  /// write_csv to `path` (throws std::runtime_error if unopenable).
  void save_csv(const std::string& path) const;

 private:
  void sample();
  void tick();

  Simulator& sim_;
  Cycles period_;
  std::string name_;
  u32 trace_track_ = 0;
  bool armed_ = false;
  std::vector<std::string> columns_;
  struct Probe {
    std::function<double()> fn;
    bool rate = false;
    double prev = 0.0;
  };
  std::vector<Probe> probes_;
  std::vector<Row> rows_;
};

}  // namespace vmsls::sim

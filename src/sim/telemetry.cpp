#include "sim/telemetry.hpp"

#include <fstream>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace vmsls::sim {

TelemetrySampler::TelemetrySampler(Simulator& sim, Cycles period, std::string name)
    : sim_(sim), period_(period), name_(std::move(name)) {
  require(period_ > 0, "TelemetrySampler: period must be > 0");
  trace_track_ = sim_.trace().track(name_);
}

void TelemetrySampler::add_probe(std::string column, std::function<double()> probe) {
  ensure(rows_.empty(), "TelemetrySampler: probes must be added before start()");
  columns_.push_back(std::move(column));
  probes_.push_back(Probe{std::move(probe), /*rate=*/false, 0.0});
}

void TelemetrySampler::add_rate_probe(std::string column, std::function<double()> probe) {
  ensure(rows_.empty(), "TelemetrySampler: probes must be added before start()");
  columns_.push_back(std::move(column));
  probes_.push_back(Probe{std::move(probe), /*rate=*/true, 0.0});
}

void TelemetrySampler::start() {
  ensure(!armed_, "TelemetrySampler: already started");
  sample();
  armed_ = true;
  sim_.schedule_in(period_, [this] { tick(); });
}

void TelemetrySampler::tick() {
  sample();
  // pending_ already excludes this tick while it runs, so idle() here means
  // "no workload events left": take the sample and let the queue drain. A
  // live simulation re-arms, guaranteeing coverage through the last event.
  if (!sim_.idle()) {
    sim_.schedule_in(period_, [this] { tick(); });
  } else {
    armed_ = false;
  }
}

void TelemetrySampler::sample() {
  Row row;
  row.cycle = sim_.now();
  row.values.reserve(probes_.size());
  const bool mirror = trace_counters && sim_.trace().enabled();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    Probe& p = probes_[i];
    const double raw = p.fn();
    double v = raw;
    if (p.rate) {
      v = raw - p.prev;
      p.prev = raw;
    }
    row.values.push_back(v);
    if (mirror) sim_.trace().counter(trace_track_, columns_[i].c_str(), v);
  }
  rows_.push_back(std::move(row));
}

void TelemetrySampler::write_csv(std::ostream& os) const {
  os << "cycle";
  for (const auto& c : columns_) os << "," << c;
  os << "\n";
  for (const auto& row : rows_) {
    os << row.cycle;
    for (double v : row.values) os << "," << v;
    os << "\n";
  }
}

void TelemetrySampler::save_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("TelemetrySampler: cannot open " + path);
  write_csv(os);
}

}  // namespace vmsls::sim

// Cycle-domain tracing: spans with causal IDs, instants, and counter tracks.
//
// A TraceContext lives inside the Simulator and timestamps every event with
// the *simulated* clock, so a trace of a run shows where fault cycles go —
// not where host time goes. Components register a named track once at
// construction (always-on, deterministic, costs nothing at runtime) and emit
// through the VMSLS_TRACE_* macros, which compile to a single predicted
// branch when no sink is attached (and to nothing at all when
// VMSLS_TRACING_ENABLED is 0). The emission path never schedules events and
// never touches the StatRegistry, so a traced run is bit-identical in
// cycles, event counts, and stats to an untraced one.
//
// Causality: TraceContext::new_id() hands out monotonically increasing
// request IDs (0 while disabled). The pager allocates one per primary fault
// and threads it through frame reservation, victim eviction, the
// SwapScheduler queue, and the device transfer, so one slow fault decomposes
// into named sub-spans ("fault" = "evict" + "queue" + "io") that a sink can
// reassemble by ID across tracks.
//
// JsonTraceWriter renders the stream as Chrome trace_event JSON (async
// begin/end spans keyed by (cat=track, id), instants, counters, and track
// metadata) loadable directly in ui.perfetto.dev — simulated cycles land in
// the "ts" field, which the UI reads as microseconds.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace vmsls::sim {

class TraceContext;

/// Index of a registered component track (one per component instance).
using TraceTrack = u32;

struct TraceEvent {
  enum class Kind : u8 { kBegin, kEnd, kInstant, kCounter };
  Kind kind = Kind::kInstant;
  TraceTrack track = 0;
  Cycles ts = 0;
  /// String literal (or storage outliving the call); sinks consume it
  /// synchronously and must not retain the pointer.
  const char* name = "";
  u64 id = 0;     ///< causal request id; 0 = none
  u64 aux = 0;    ///< free-form argument (vpn, class rank, ...)
  double value = 0.0;  ///< counter value (kCounter only)
};

/// Consumer of the event stream. Called synchronously from the emitting
/// component; implementations must not schedule simulator events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceContext& ctx, const TraceEvent& ev) = 0;
};

/// Per-simulator trace state: track registry, causal-ID allocator, and the
/// (optional) sink. Owned by the Simulator; components reach it through
/// Simulator::trace().
class TraceContext {
 public:
  /// `now` points at the simulator's clock (stable for its lifetime).
  explicit TraceContext(const Cycles* now) noexcept : now_(now) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  bool enabled() const noexcept { return sink_ != nullptr; }

  /// Attaches (or with nullptr detaches) the sink. The sink must outlive
  /// its attachment; harnesses attach before the run and detach/finish
  /// after the queue drains.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }
  TraceSink* sink() const noexcept { return sink_; }

  /// Registers (or looks up) a named track. Construction-time only — the
  /// handle is a plain index, valid whether or not tracing ever turns on.
  TraceTrack track(const std::string& name);

  const std::vector<std::string>& track_names() const noexcept { return tracks_; }
  const std::string& track_name(TraceTrack t) const { return tracks_.at(t); }

  /// Fresh causal request id: monotonically increasing while a sink is
  /// attached, 0 while disabled (so disabled runs carry no per-run state).
  u64 new_id() noexcept { return enabled() ? ++last_id_ : 0; }
  u64 last_id() const noexcept { return last_id_; }

  // Emitters — call through the VMSLS_TRACE_* macros, which gate on
  // enabled() so call sites pay one branch, not an argument setup.
  void begin(TraceTrack track, const char* name, u64 id, u64 aux = 0) {
    emit(TraceEvent::Kind::kBegin, track, name, id, aux, 0.0);
  }
  void end(TraceTrack track, const char* name, u64 id, u64 aux = 0) {
    emit(TraceEvent::Kind::kEnd, track, name, id, aux, 0.0);
  }
  void instant(TraceTrack track, const char* name, u64 id = 0, u64 aux = 0) {
    emit(TraceEvent::Kind::kInstant, track, name, id, aux, 0.0);
  }
  void counter(TraceTrack track, const char* name, double value) {
    emit(TraceEvent::Kind::kCounter, track, name, 0, 0, value);
  }

 private:
  void emit(TraceEvent::Kind kind, TraceTrack track, const char* name, u64 id, u64 aux,
            double value) {
    if (sink_ == nullptr) return;
    TraceEvent ev;
    ev.kind = kind;
    ev.track = track;
    ev.ts = *now_;
    ev.name = name;
    ev.id = id;
    ev.aux = aux;
    ev.value = value;
    sink_->on_event(*this, ev);
  }

  const Cycles* now_;
  TraceSink* sink_ = nullptr;
  u64 last_id_ = 0;
  std::vector<std::string> tracks_;
};

/// Streams TraceEvents as a Chrome trace_event JSON array (Perfetto-
/// loadable). Spans become async "b"/"e" events keyed by (cat=track name,
/// id), instants "i" events on the track's thread, counters "C" events
/// named "<track>.<name>". finish() appends process/thread metadata and
/// closes the array; the destructor finishes with whatever context was
/// last seen if the caller forgot.
class JsonTraceWriter final : public TraceSink {
 public:
  /// Writes to `path` (throws std::runtime_error if unopenable).
  explicit JsonTraceWriter(const std::string& path);
  /// Writes to a caller-owned stream (tests).
  explicit JsonTraceWriter(std::ostream& os);
  ~JsonTraceWriter() override;

  JsonTraceWriter(const JsonTraceWriter&) = delete;
  JsonTraceWriter& operator=(const JsonTraceWriter&) = delete;

  void on_event(const TraceContext& ctx, const TraceEvent& ev) override;

  /// Emits track-name metadata and closes the JSON array. Idempotent.
  void finish(const TraceContext& ctx);

  u64 events_written() const noexcept { return events_; }

 private:
  void write_prefix();

  std::ofstream file_;
  std::ostream* out_;
  bool first_ = true;
  bool finished_ = false;
  u64 events_ = 0;
  /// Track names seen on emitted events, for finish() metadata (finish may
  /// run after the context's tracks grew further; only used tracks matter).
  std::vector<std::string> seen_tracks_;
};

// --- emission macros -------------------------------------------------------
//
// All hot-path emission goes through these. With VMSLS_TRACING_ENABLED == 0
// they expand to nothing (the compile-time kill switch); otherwise they gate
// on enabled() so a sink-less run pays one well-predicted branch per site.

#ifndef VMSLS_TRACING_ENABLED
#define VMSLS_TRACING_ENABLED 1
#endif

#if VMSLS_TRACING_ENABLED
#define VMSLS_TRACE_BEGIN(ctx, ...) \
  do {                              \
    if ((ctx).enabled()) (ctx).begin(__VA_ARGS__); \
  } while (0)
#define VMSLS_TRACE_END(ctx, ...) \
  do {                            \
    if ((ctx).enabled()) (ctx).end(__VA_ARGS__); \
  } while (0)
#define VMSLS_TRACE_INSTANT(ctx, ...) \
  do {                                \
    if ((ctx).enabled()) (ctx).instant(__VA_ARGS__); \
  } while (0)
#define VMSLS_TRACE_COUNTER(ctx, ...) \
  do {                                \
    if ((ctx).enabled()) (ctx).counter(__VA_ARGS__); \
  } while (0)
#define VMSLS_TRACE_NEW_ID(ctx) ((ctx).new_id())
#else
#define VMSLS_TRACE_BEGIN(ctx, ...) \
  do {                              \
  } while (0)
#define VMSLS_TRACE_END(ctx, ...) \
  do {                            \
  } while (0)
#define VMSLS_TRACE_INSTANT(ctx, ...) \
  do {                                \
  } while (0)
#define VMSLS_TRACE_COUNTER(ctx, ...) \
  do {                                \
  } while (0)
#define VMSLS_TRACE_NEW_ID(ctx) (::vmsls::u64{0})
#endif

}  // namespace vmsls::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace vmsls::sim {

void Simulator::grow_pool() {
  if (wheel_ == nullptr) wheel_ = std::make_unique<Slot[]>(kWheelSlots);
  slabs_.push_back(std::make_unique<EventNode[]>(kSlabNodes));
  EventNode* slab = slabs_.back().get();
  for (std::size_t i = 0; i < kSlabNodes; ++i) {
    slab[i].next = free_;
    free_ = &slab[i];
  }
}

Simulator::EventNode* Simulator::acquire() {
  if (free_ == nullptr) grow_pool();
  EventNode* n = free_;
  free_ = n->next;
  return n;
}

void Simulator::release(EventNode* n) noexcept {
  n->fn.reset();
  n->next = free_;
  free_ = n;
}

void Simulator::schedule_at(Cycles when, EventFn fn) {
  ensure(when >= now_, "cannot schedule an event in the past");
  EventNode* n = acquire();
  n->when = when;
  n->seq = next_seq_++;
  n->fn = std::move(fn);
  n->next = nullptr;
  ++pending_;
  if (when - now_ < kWheelSlots) {
    // A slot holds exactly one cycle's FIFO list: a new event for cycle
    // t + kWheelSlots cannot be scheduled until every event at t has run.
    Slot& s = wheel_[when & kWheelMask];
    if (s.head == nullptr) {
      s.head = s.tail = n;
      occupied_[(when & kWheelMask) >> 6] |= 1ull << (when & 63);
    } else {
      s.tail->next = n;
      s.tail = n;
    }
    ++wheel_count_;
  } else {
    far_.push_back(n);
    std::push_heap(far_.begin(), far_.end(), FarLater{});
  }
}

Cycles Simulator::next_wheel_time() const noexcept {
  const u64 start = now_ & kWheelMask;
  const u64 start_word = start >> 6;
  u64 w = start_word;
  u64 word = occupied_[w] & (~0ull << (start & 63));
  while (word == 0) {
    w = (w + 1) & (kWheelWords - 1);
    word = occupied_[w];
    if (w == start_word) {
      // Full wrap: only bits below the start position remain to check.
      word &= (start & 63) != 0 ? ~(~0ull << (start & 63)) : 0;
      break;
    }
  }
  const u64 slot = (w << 6) | static_cast<u64>(std::countr_zero(word));
  return now_ + ((slot - start) & kWheelMask);
}

Simulator::EventNode* Simulator::pop_next(Cycles deadline) {
  if (pending_ == 0) return nullptr;
  bool from_far = true;
  Cycles tw = 0;
  if (wheel_count_ != 0) {
    tw = next_wheel_time();
    if (far_.empty()) {
      from_far = false;
    } else {
      // Same-time events may straddle the wheel/heap boundary (the heap one
      // was scheduled while its cycle was beyond the horizon); the global
      // sequence number restores strict FIFO order between them.
      const EventNode* ft = far_.front();
      from_far = ft->when < tw || (ft->when == tw && ft->seq < wheel_[tw & kWheelMask].head->seq);
    }
  }
  if ((from_far ? far_.front()->when : tw) > deadline) return nullptr;

  EventNode* n;
  if (from_far) {
    std::pop_heap(far_.begin(), far_.end(), FarLater{});
    n = far_.back();
    far_.pop_back();
  } else {
    Slot& s = wheel_[tw & kWheelMask];
    n = s.head;
    s.head = n->next;
    if (s.head == nullptr) {
      s.tail = nullptr;
      occupied_[(tw & kWheelMask) >> 6] &= ~(1ull << (tw & 63));
    }
    --wheel_count_;
  }
  --pending_;
  n->next = nullptr;
  return n;
}

void Simulator::execute(EventNode* n) {
  now_ = n->when;
  ++events_executed_;
  // Recycle even when the callback throws (engine traps propagate to the
  // caller); the callable itself is destroyed by release().
  struct Recycle {
    Simulator* sim;
    EventNode* node;
    ~Recycle() { sim->release(node); }
  } guard{this, n};
  n->fn();
}

bool Simulator::step() {
  EventNode* n = pop_next(~0ull);
  if (n == nullptr) return false;
  execute(n);
  return true;
}

u64 Simulator::run(Cycles max_cycles) {
  const Cycles deadline = (max_cycles == ~0ull) ? ~0ull : now_ + max_cycles;
  u64 executed = 0;
  while (EventNode* n = pop_next(deadline)) {
    execute(n);
    ++executed;
  }
  return executed;
}

}  // namespace vmsls::sim

#include "sim/simulator.hpp"

#include <utility>

namespace vmsls::sim {

void Simulator::schedule_at(Cycles when, EventFn fn) {
  ensure(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // The queue's top is const; we must copy the closure out. Events are small
  // so this is acceptable; the queue is the simulator's hot path but the
  // workloads below it dominate runtime.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_executed_;
  ev.fn();
  return true;
}

u64 Simulator::run(Cycles max_cycles) {
  const Cycles deadline = (max_cycles == ~0ull) ? ~0ull : now_ + max_cycles;
  u64 executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
    ++executed;
  }
  return executed;
}

}  // namespace vmsls::sim

#include "sim/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmsls::sim {

TraceTrack TraceContext::track(const std::string& name) {
  const auto it = std::find(tracks_.begin(), tracks_.end(), name);
  if (it != tracks_.end()) return static_cast<TraceTrack>(it - tracks_.begin());
  tracks_.push_back(name);
  return static_cast<TraceTrack>(tracks_.size() - 1);
}

namespace {
// Escapes the characters that can plausibly appear in component/track names;
// everything else in the writer is numeric or a literal.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << *s; break;
    }
  }
}
}  // namespace

JsonTraceWriter::JsonTraceWriter(const std::string& path) : file_(path), out_(&file_) {
  if (!file_) throw std::runtime_error("JsonTraceWriter: cannot open " + path);
  write_prefix();
}

JsonTraceWriter::JsonTraceWriter(std::ostream& os) : out_(&os) { write_prefix(); }

JsonTraceWriter::~JsonTraceWriter() {
  // Close the array even if the harness forgot finish(); metadata needs the
  // context, so an un-finished trace just lacks track names.
  if (!finished_) {
    *out_ << "\n]\n";
    finished_ = true;
  }
}

void JsonTraceWriter::write_prefix() { *out_ << "[\n"; }

void JsonTraceWriter::on_event(const TraceContext& ctx, const TraceEvent& ev) {
  if (finished_) return;
  const std::string& track = ctx.track_name(ev.track);
  if (std::find(seen_tracks_.begin(), seen_tracks_.end(), track) == seen_tracks_.end())
    seen_tracks_.push_back(track);

  std::ostream& os = *out_;
  if (!first_) os << ",\n";
  first_ = false;

  // Common prefix: pid 1, tid = track index + 1 (Perfetto dislikes tid 0),
  // ts = simulated cycles (rendered by the UI as microseconds).
  os << "{\"pid\":1,\"tid\":" << (ev.track + 1) << ",\"ts\":" << ev.ts << ",\"name\":\"";
  write_escaped(os, ev.name);
  os << "\",";

  switch (ev.kind) {
    case TraceEvent::Kind::kBegin:
    case TraceEvent::Kind::kEnd:
      // Legacy async events group by (pid, cat, id): using the track name as
      // cat keeps each component's spans on its own async track in the UI.
      os << "\"cat\":\"";
      write_escaped(os, track.c_str());
      os << "\",\"ph\":\"" << (ev.kind == TraceEvent::Kind::kBegin ? 'b' : 'e')
         << "\",\"id\":" << ev.id << ",\"args\":{\"aux\":" << ev.aux << "}}";
      break;
    case TraceEvent::Kind::kInstant:
      os << "\"cat\":\"";
      write_escaped(os, track.c_str());
      os << "\",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"id\":" << ev.id << ",\"aux\":" << ev.aux
         << "}}";
      break;
    case TraceEvent::Kind::kCounter:
      // Counter tracks are global per (pid, name): prefix the component so
      // pager[0].queue_depth and pager[1].queue_depth stay separate tracks.
      os << "\"cat\":\"counter\",\"ph\":\"C\",\"args\":{\"";
      write_escaped(os, track.c_str());
      os << ".";
      write_escaped(os, ev.name);
      os << "\":" << ev.value << "}}";
      break;
  }
  ++events_;
}

void JsonTraceWriter::finish(const TraceContext& ctx) {
  if (finished_) return;
  std::ostream& os = *out_;
  for (const std::string& track : seen_tracks_) {
    const auto idx = std::find(ctx.track_names().begin(), ctx.track_names().end(), track) -
                     ctx.track_names().begin();
    if (!first_) os << ",\n";
    first_ = false;
    os << "{\"pid\":1,\"tid\":" << (idx + 1)
       << ",\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, track.c_str());
    os << "\"}}";
  }
  if (!first_) os << ",\n";
  first_ = false;
  os << "{\"pid\":1,\"tid\":1,\"ph\":\"M\",\"name\":\"process_name\","
        "\"args\":{\"name\":\"vmsls\"}}";
  os << "\n]\n";
  os.flush();
  finished_ = true;
}

}  // namespace vmsls::sim

// Discrete-event simulation kernel.
//
// The simulated SoC advances on a single reference clock — the FPGA fabric
// clock. Components schedule closures at absolute or relative cycle counts;
// the kernel executes them in (time, insertion-order) order, which makes
// runs fully deterministic. Faster clock domains (the host CPU) are modeled
// by ratio conversion, see sim/clock.hpp.
//
// Internals (the fast path every simulated cycle goes through):
//
//   * Events live in pooled, recycled nodes — after warm-up the scheduler
//     performs zero heap allocations per event.
//   * Near-future events (within kWheelSlots cycles of now) go into a
//     timing wheel: one FIFO list per cycle slot, with an occupancy bitmap
//     so the next event is found by a find-first-set scan, not a heap
//     sift. Same-cycle FIFO order falls out of list append order.
//   * Far-future events (beyond the wheel horizon) fall back to a binary
//     heap keyed on (when, seq). When a wheel slot and the heap top tie on
//     time, the global sequence number arbitrates, so the (time,
//     insertion-order) contract holds across both structures.
//   * Callbacks are sim::EventFn (see event_fn.hpp): move-only with 56
//     bytes of inline storage, so typical closures never touch the heap.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace vmsls::sim {

/// Central event queue + simulated clock.
class Simulator {
 public:
  Simulator() = default;

  // The event queue stores closures that may capture `this`-pointers of
  // components; moving the simulator would not break that, but copying would
  // duplicate pending work, so both are disabled.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Cycles now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle,
  /// after all currently pending same-cycle events).
  void schedule_in(Cycles delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Same-cycle completion: identical semantics to schedule_in(0) — the
  /// event runs this cycle, after everything already pending for this
  /// cycle — but names the intent at call sites (completions that carry
  /// no modeled latency yet must preserve event order, e.g. cache walks).
  void schedule_now(EventFn fn) { schedule_at(now_, std::move(fn)); }

  void schedule_at(Cycles when, EventFn fn);

  /// Runs until the event queue drains or `max_cycles` elapse. Returns the
  /// number of events executed.
  u64 run(Cycles max_cycles = ~0ull);

  /// Executes the single next event. Returns false if the queue is empty.
  bool step();

  bool idle() const noexcept { return pending_ == 0; }
  u64 events_executed() const noexcept { return events_executed_; }

  /// Total events ever handed to the scheduler. Inline completion paths
  /// (see Mmu) bypass the scheduler entirely; tests assert this does not
  /// move on such paths.
  u64 events_scheduled() const noexcept { return next_seq_; }

  /// Shared statistics registry for all components in this simulation.
  StatRegistry& stats() noexcept { return stats_; }
  const StatRegistry& stats() const noexcept { return stats_; }

  /// Cycle-domain trace state (see sim/trace.hpp). Disabled until a sink is
  /// attached; components register tracks here at construction.
  TraceContext& trace() noexcept { return trace_; }
  const TraceContext& trace() const noexcept { return trace_; }

 private:
  struct EventNode {
    Cycles when = 0;
    u64 seq = 0;  // tie-break: FIFO among same-cycle events
    EventNode* next = nullptr;
    EventFn fn;
  };
  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };
  /// Min-heap order on (when, seq) for the far-future fallback heap.
  struct FarLater {
    bool operator()(const EventNode* a, const EventNode* b) const noexcept {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  static constexpr unsigned kWheelBits = 12;
  static constexpr u64 kWheelSlots = 1ull << kWheelBits;  // 4096-cycle horizon
  static constexpr u64 kWheelMask = kWheelSlots - 1;
  static constexpr u64 kWheelWords = kWheelSlots / 64;
  static constexpr std::size_t kSlabNodes = 512;  // pool growth granularity

  EventNode* acquire();
  void release(EventNode* n) noexcept;
  void grow_pool();

  /// Earliest pending wheel time; precondition: wheel_count_ > 0.
  Cycles next_wheel_time() const noexcept;

  /// Detaches and returns the next event in (when, seq) order, or nullptr
  /// when the queue is empty or the next event lies beyond `deadline`.
  EventNode* pop_next(Cycles deadline);

  void execute(EventNode* n);

  std::unique_ptr<Slot[]> wheel_;               // lazily sized to kWheelSlots
  std::array<u64, kWheelWords> occupied_{};     // bitmap over wheel slots
  std::vector<EventNode*> far_;                 // heap (FarLater) beyond horizon
  std::vector<std::unique_ptr<EventNode[]>> slabs_;  // pool backing store
  EventNode* free_ = nullptr;                   // recycled-node freelist
  u64 wheel_count_ = 0;
  u64 pending_ = 0;

  Cycles now_ = 0;
  u64 next_seq_ = 0;
  u64 events_executed_ = 0;
  StatRegistry stats_;
  TraceContext trace_{&now_};
};

}  // namespace vmsls::sim

// Discrete-event simulation kernel.
//
// The simulated SoC advances on a single reference clock — the FPGA fabric
// clock. Components schedule closures at absolute or relative cycle counts;
// the kernel executes them in (time, insertion-order) order, which makes
// runs fully deterministic. Faster clock domains (the host CPU) are modeled
// by ratio conversion, see sim/clock.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace vmsls::sim {

using EventFn = std::function<void()>;

/// Central event queue + simulated clock.
class Simulator {
 public:
  Simulator() = default;

  // The event queue stores closures that may capture `this`-pointers of
  // components; moving the simulator would not break that, but copying would
  // duplicate pending work, so both are disabled.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Cycles now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` cycles from now (0 = later this cycle,
  /// after all currently pending same-cycle events).
  void schedule_in(Cycles delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  void schedule_at(Cycles when, EventFn fn);

  /// Runs until the event queue drains or `max_cycles` elapse. Returns the
  /// number of events executed.
  u64 run(Cycles max_cycles = ~0ull);

  /// Executes the single next event. Returns false if the queue is empty.
  bool step();

  bool idle() const noexcept { return queue_.empty(); }
  u64 events_executed() const noexcept { return events_executed_; }

  /// Shared statistics registry for all components in this simulation.
  StatRegistry& stats() noexcept { return stats_; }
  const StatRegistry& stats() const noexcept { return stats_; }

 private:
  struct Event {
    Cycles when;
    u64 seq;  // tie-break: FIFO among same-cycle events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycles now_ = 0;
  u64 next_seq_ = 0;
  u64 events_executed_ = 0;
  StatRegistry stats_;
};

}  // namespace vmsls::sim

#include "sim/arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace vmsls::sim {

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.mean_gap == 0) throw std::invalid_argument("arrival: mean_gap must be >= 1 cycle");
  if (cfg_.burst_factor < 1.0)
    throw std::invalid_argument("arrival: burst_factor must be >= 1 (use mean_gap for the rate)");
  if (cfg_.burst_duty < 0.0 || cfg_.burst_duty > 1.0)
    throw std::invalid_argument("arrival: burst_duty must lie in [0, 1]");
}

bool ArrivalProcess::in_burst(Cycles now) const noexcept {
  if (cfg_.burst_period == 0 || cfg_.burst_factor <= 1.0) return false;
  const Cycles phase = now % cfg_.burst_period;
  return static_cast<double>(phase) <
         cfg_.burst_duty * static_cast<double>(cfg_.burst_period);
}

Cycles ArrivalProcess::next_gap(Cycles now) {
  // One Rng draw per call in BOTH kinds: switching the distribution (or the
  // burst phase) never desynchronizes the stream against a run that made
  // the same number of calls — the same property the workload generators
  // keep for their data seeds.
  const double u = rng_.uniform();
  const double mean = static_cast<double>(cfg_.mean_gap) /
                      (in_burst(now) ? cfg_.burst_factor : 1.0);
  double gap;
  if (cfg_.kind == ArrivalConfig::Kind::kDeterministic) {
    gap = mean;
  } else {
    // Inverse-CDF exponential draw; u is in [0, 1) so log(1 - u) is finite.
    gap = -std::log(1.0 - u) * mean;
  }
  const double rounded = std::floor(gap + 0.5);
  if (rounded < 1.0) return 1;
  return static_cast<Cycles>(rounded);
}

}  // namespace vmsls::sim

// Size, alignment, and bit-manipulation helpers shared by every module.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vmsls {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Simulated time is counted in cycles of a reference clock.
using Cycles = std::uint64_t;

/// Addresses in the simulated machine. Virtual and physical addresses share
/// a representation; the type aliases document intent at interfaces.
using Addr = std::uint64_t;
using VirtAddr = Addr;
using PhysAddr = Addr;

inline constexpr u64 KiB = 1024ull;
inline constexpr u64 MiB = 1024ull * KiB;
inline constexpr u64 GiB = 1024ull * MiB;

constexpr bool is_pow2(u64 x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

constexpr u64 align_down(u64 x, u64 a) noexcept { return x & ~(a - 1); }
constexpr u64 align_up(u64 x, u64 a) noexcept { return (x + a - 1) & ~(a - 1); }

constexpr bool is_aligned(u64 x, u64 a) noexcept { return (x & (a - 1)) == 0; }

/// Floor of log2; log2i(0) is undefined and returns 0.
constexpr unsigned log2i(u64 x) noexcept {
  unsigned r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

constexpr u64 ceil_div(u64 a, u64 b) noexcept { return (a + b - 1) / b; }

/// Throws std::invalid_argument with `msg` when `cond` is false. Used for
/// validating user-supplied configuration at API boundaries.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Throws std::logic_error; used for internal invariant violations.
inline void ensure(bool cond, const std::string& msg) {
  if (!cond) throw std::logic_error(msg);
}

/// Pretty-prints a byte count ("64 KiB", "3.2 MiB").
std::string format_bytes(u64 bytes);

}  // namespace vmsls

#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/units.hpp"

namespace vmsls {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_bytes(u64 bytes) {
  std::ostringstream os;
  if (bytes >= GiB && bytes % GiB == 0)
    os << bytes / GiB << " GiB";
  else if (bytes >= MiB && bytes % MiB == 0)
    os << bytes / MiB << " MiB";
  else if (bytes >= KiB && bytes % KiB == 0)
    os << bytes / KiB << " KiB";
  else
    os << bytes << " B";
  return os.str();
}

}  // namespace vmsls

// Statistics collection.
//
// Every simulated component owns named counters registered in a StatRegistry
// so experiments can dump a flat name -> value map after a run. Histograms
// record latency distributions (page walks, fault service, bus queueing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace vmsls {

/// A monotonically increasing named counter. Cheap enough to bump per event.
class Counter {
 public:
  void add(u64 v = 1) noexcept { value_ += v; }
  void reset() noexcept { value_ = 0; }
  u64 value() const noexcept { return value_; }

 private:
  u64 value_ = 0;
};

/// Fixed-bucket histogram with power-of-two bucket boundaries, suited to
/// latency distributions spanning several orders of magnitude.
class Histogram {
 public:
  explicit Histogram(unsigned num_buckets = 32) : buckets_(num_buckets, 0) {}

  void record(u64 value) noexcept;

  u64 count() const noexcept { return count_; }
  u64 sum() const noexcept { return sum_; }
  u64 min() const noexcept { return count_ == 0 ? 0 : min_; }
  u64 max() const noexcept { return max_; }
  /// Samples clipped into the last bucket because they exceeded its lower
  /// bound — nonzero means the configured bucket count truncates the tail.
  u64 overflow() const noexcept { return overflow_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }

  /// Value below which `q` (0..1) of the samples fall, resolved to bucket
  /// upper bounds (approximate, sufficient for reporting).
  u64 percentile(double q) const noexcept;

  const std::vector<u64>& buckets() const noexcept { return buckets_; }
  void reset() noexcept;

  /// Folds `other`'s samples into this histogram. Exact, not approximate:
  /// bucket boundaries are global (bucket b always covers the same value
  /// range), so bucket counts add index-wise; count/sum/overflow add;
  /// min/max take the extrema across both. Merging grows this histogram to
  /// `other`'s bucket count when `other` is wider, so no sample is
  /// re-clipped — overflow carries over exactly as recorded at sample time.
  /// The shard-aggregation primitive: merging per-shard histograms yields
  /// the histogram a single serial run would have recorded.
  void merge(const Histogram& other);

 private:
  std::vector<u64> buckets_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
  u64 overflow_ = 0;
};

/// Flat registry mapping "component.stat" names to counters/histograms.
/// Components hold references to entries they create; the registry owns them.
///
/// Stability guarantee: Counter& / Histogram& references returned by
/// counter() / histogram() remain valid for the registry's lifetime.
/// Storage is an unordered_map (hot registration is a hash lookup, not a
/// red-black-tree walk), and unordered_map never invalidates references to
/// values on rehash or insert — only iterators. Components therefore cache
/// these references at construction and bump them per event with no lookup.
/// Iteration order of counters()/histograms() is unspecified; use
/// snapshot()/snapshot_prefix() for deterministic, name-sorted views.
class StatRegistry {
 public:
  StatRegistry();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot of all counter values (histograms contribute
  /// .count/.mean/.max/.p50/.p95/.p99/.overflow).
  /// Returned map is ordered by name — deterministic for reports and tests.
  std::map<std::string, double> snapshot() const;

  /// Snapshot restricted to entries whose name starts with `prefix` —
  /// component-scoped reporting ("pager.", "pager.swap.", "faults.").
  std::map<std::string, double> snapshot_prefix(const std::string& prefix) const;

  u64 counter_value(const std::string& name) const;
  bool has_counter(const std::string& name) const;

  /// Folds every counter and histogram of `other` into this registry,
  /// entry names prefixed with `prefix` ("p3." turns "pager.evictions"
  /// into "p3.pager.evictions"; "" merges name-onto-name). Counters add;
  /// histograms merge per Histogram::merge. Missing entries are created.
  /// The sharded runner's aggregation path: merging per-shard registries
  /// under per-shard prefixes reproduces, value for value, the registry a
  /// single simulator running all instances would expose.
  void merge(const StatRegistry& other, const std::string& prefix = "");

  void reset();

  const std::unordered_map<std::string, Counter>& counters() const { return counters_; }
  const std::unordered_map<std::string, Histogram>& histograms() const { return histograms_; }

 private:
  std::unordered_map<std::string, Counter> counters_;
  std::unordered_map<std::string, Histogram> histograms_;
};

}  // namespace vmsls

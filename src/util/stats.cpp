#include "util/stats.hpp"

#include <algorithm>

namespace vmsls {

void Histogram::record(u64 value) noexcept {
  unsigned bucket = value == 0 ? 0 : log2i(value) + 1;
  if (bucket >= buckets_.size()) {
    bucket = static_cast<unsigned>(buckets_.size()) - 1;
    ++overflow_;
  }
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

u64 Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  const u64 target = static_cast<u64>(q * static_cast<double>(count_));
  u64 seen = 0;
  for (unsigned b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return b == 0 ? 0 : (1ull << b) - 1;  // bucket upper bound
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  // Raw members, not the accessors: an empty histogram's min_ is the ~0
  // sentinel, which std::min ignores — merging an empty side is a no-op.
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  overflow_ += other.overflow_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
  overflow_ = 0;
}

StatRegistry::StatRegistry() {
  // A full system registers a few counters per component across dozens of
  // components; reserving up front keeps registration rehash-free.
  counters_.reserve(128);
  histograms_.reserve(32);
}

Counter& StatRegistry::counter(const std::string& name) { return counters_[name]; }

Histogram& StatRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(name, Histogram{}).first;
  return it->second;
}

std::map<std::string, double> StatRegistry::snapshot() const {
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = static_cast<double>(c.value());
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<double>(h.count());
    out[name + ".mean"] = h.mean();
    out[name + ".max"] = static_cast<double>(h.max());
    out[name + ".p50"] = static_cast<double>(h.percentile(0.50));
    out[name + ".p95"] = static_cast<double>(h.percentile(0.95));
    out[name + ".p99"] = static_cast<double>(h.percentile(0.99));
    out[name + ".overflow"] = static_cast<double>(h.overflow());
  }
  return out;
}

std::map<std::string, double> StatRegistry::snapshot_prefix(const std::string& prefix) const {
  std::map<std::string, double> out;
  for (auto& [name, value] : snapshot())
    if (name.compare(0, prefix.size(), prefix) == 0) out.emplace(name, value);
  return out;
}

u64 StatRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

bool StatRegistry::has_counter(const std::string& name) const {
  return counters_.find(name) != counters_.end();
}

void StatRegistry::merge(const StatRegistry& other, const std::string& prefix) {
  for (const auto& [name, c] : other.counters_) counter(prefix + name).add(c.value());
  for (const auto& [name, h] : other.histograms_) histogram(prefix + name).merge(h);
}

void StatRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace vmsls

// Deterministic fork/join work distribution for host-side parallelism.
//
// One primitive: parallel_for(workers, n, fn) runs fn(i) for every index in
// [0, n) across a transient pool of host threads. Indices are handed out by
// an atomic ticket counter, so which *thread* runs an index is
// scheduling-dependent — but callers keep bit-determinism by making fn(i)
// write only to slot i of a pre-sized result array and share nothing else.
// That discipline (owned by the DSE scorer since its first parallel sweep,
// now also the sharded runner's contract) makes the merged result
// byte-identical to the serial loop whatever the worker count.
//
// Exceptions: every throw is captured per-index and the lowest-index one is
// rethrown after the join, so the surfaced error does not depend on thread
// scheduling either.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace vmsls {

/// Runs fn(i) for i in [0, n) on min(workers, n) host threads (the calling
/// thread is one of them; workers <= 1 degrades to a plain serial loop with
/// no thread or atomic traffic). Blocks until every index has completed,
/// then rethrows the lowest-index captured exception, if any. fn must
/// confine its writes to per-index state.
template <typename Fn>
void parallel_for(unsigned workers, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (static_cast<std::size_t>(workers) > n) workers = static_cast<unsigned>(n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(n);
  auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) pool.emplace_back(drain);
  drain();
  for (auto& t : pool) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace vmsls

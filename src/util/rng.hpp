// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic behaviour in the simulator and the workload generators goes
// through this generator so runs are reproducible from a single seed.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace vmsls {

/// xoshiro256** by Blackman & Vigna — fast, high quality, and trivially
/// seedable; we avoid std::mt19937 so streams are identical across standard
/// library implementations.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(u64 seed) noexcept {
    // SplitMix64 expansion of the seed into the full state.
    u64 z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      u64 x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  u64 next() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  u64 below(u64 bound) noexcept {
    if (bound == 0) return 0;
    // Multiply-shift rejection-free mapping (slight modulo bias is
    // irrelevant for workload generation but we use 128-bit math to avoid
    // the worst of it).
    return static_cast<u64>((static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) noexcept { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
  u64 state_[4]{};
};

}  // namespace vmsls

#include "util/log.hpp"

#include <iostream>

namespace vmsls {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() noexcept { return g_level; }
void Logger::set_level(LogLevel level) noexcept { g_level = level; }

void Logger::write(LogLevel level, const std::string& who, const std::string& msg) {
  if (level < g_level) return;
  std::cerr << "[" << level_name(level) << "] " << who << ": " << msg << "\n";
}

}  // namespace vmsls

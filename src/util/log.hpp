// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded, so the logger is
// deliberately simple: a process-wide level and an ostream sink. Components
// tag messages with their instance name.
#pragma once

#include <sstream>
#include <string>

namespace vmsls {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;

  /// Writes one formatted line ("[level] who: msg") to the sink if `level`
  /// is at or above the global threshold.
  static void write(LogLevel level, const std::string& who, const std::string& msg);
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const std::string& who, Args&&... args) {
  if (Logger::level() <= LogLevel::kDebug)
    Logger::write(LogLevel::kDebug, who, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(const std::string& who, Args&&... args) {
  if (Logger::level() <= LogLevel::kInfo)
    Logger::write(LogLevel::kInfo, who, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(const std::string& who, Args&&... args) {
  if (Logger::level() <= LogLevel::kWarn)
    Logger::write(LogLevel::kWarn, who, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(const std::string& who, Args&&... args) {
  if (Logger::level() <= LogLevel::kError)
    Logger::write(LogLevel::kError, who, detail::concat(std::forward<Args>(args)...));
}

}  // namespace vmsls

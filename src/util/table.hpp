// Aligned text tables and CSV emission for experiment harnesses.
//
// Every bench binary prints its paper table/figure series through this class
// so output formatting is uniform and machine-scrapable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vmsls {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with sensible precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  /// Renders with column alignment and a separator rule under the header.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Comma-separated form (header + rows), for downstream plotting.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vmsls

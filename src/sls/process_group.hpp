// Multi-process over-subscription harness.
//
// Builds the machine-wide substrate — one physical memory, one frame
// allocator, one DRAM + bus pair, one set of OS service cores, and one
// memory-pressure FramePool — and elaborates several SystemImages onto it
// as separate processes. Each process keeps its own address space, page
// tables, walker, fault handler, pager, and swap device; physical frames,
// bus bandwidth, and OS cores are contended across all of them. This is
// the configuration the over-subscription experiments (fig10) run: the
// aggregate working set exceeds the frame budget, so the pagers fight.
//
// Determinism: construction order fixes member ids and stat names; the
// run loop steps the one shared simulator, so event order is the usual
// (time, insertion-order) contract across all processes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sls/system.hpp"

namespace vmsls::sls {

class ProcessGroup {
 public:
  /// `platform` sizes the shared substrate (DRAM, bus, OS cores, page
  /// size); per-image platforms configure each process's threads, TLBs,
  /// and pager. The page size must agree across all images.
  ProcessGroup(sim::Simulator& sim, const PlatformSpec& platform,
               const paging::FramePoolConfig& pool_cfg);

  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// Elaborates `image` as process `instance` (stat prefix "<instance>.").
  /// Instance names must be unique; attach order fixes pool member ids.
  System& add_process(const SystemImage& image, const std::string& instance);

  System& process(std::size_t i) { return *systems_.at(i); }
  std::size_t size() const noexcept { return systems_.size(); }

  /// The substrate-sizing platform the group was built with (page size,
  /// DRAM, telemetry, traffic knobs) — what a serving driver layers on.
  const PlatformSpec& platform() const noexcept { return platform_; }

  sim::Simulator& simulator() noexcept { return sim_; }
  paging::FramePool& pool() noexcept { return *pool_; }
  mem::FrameAllocator& frames() noexcept { return *frames_; }
  rt::OsModel& os() noexcept { return *os_; }
  mem::MemoryBus& bus() noexcept { return *bus_; }

  /// The group-wide swap front end ("one flash part, N pagers"), present
  /// when the platform sets `pager.swap.shared`; nullptr when each process
  /// pages against a private device.
  paging::SwapScheduler* shared_swap() noexcept { return swap_.get(); }

  /// Machine-wide file registry and block cache — always present: every
  /// member process mmaps regions of the same files, and their pagers share
  /// one buffer cache (process B's read hits on the block process A
  /// faulted in — the shared-library effect).
  mem::FileStore& files() noexcept { return *files_; }
  paging::BufferCache& buffer_cache() noexcept { return *bcache_; }

  /// Machine-wide resident-frame index for MAP_SHARED pages — what lets
  /// process B's fault map the very frame process A faulted in (dedup)
  /// instead of filling a duplicate copy of the same file block.
  mem::FrameShareIndex& share_index() noexcept { return *share_; }

  /// The group's pressure time-series sampler, present when the platform
  /// sets `telemetry.period > 0`; probes cover the pool, the frame
  /// allocator, the shared swap queue (per class), and every process added
  /// so far. start_all() arms it.
  sim::TelemetrySampler* telemetry() noexcept { return telemetry_.get(); }

  void start_all();
  bool all_halted() const noexcept;

  /// Runs until every started thread in every process halts. Throws on
  /// deadlock or when `max_cycles` elapse. Returns cycles elapsed.
  Cycles run_to_completion(Cycles max_cycles = 4'000'000'000ull);

  /// The drained-queue gate, as a primitive: steps the simulator until the
  /// event queue is empty (in-flight prefetches, pageouts, writebacks, and
  /// flush daemons must all retire) or `max_cycles` elapse — the latter
  /// throws. Returns cycles elapsed. Serving-mode drivers and the fig12+
  /// benches share this instead of each open-coding the loop.
  Cycles drain(Cycles max_cycles = 1'000'000'000ull);

 private:
  sim::Simulator& sim_;
  PlatformSpec platform_;
  std::unique_ptr<mem::PhysicalMemory> pm_;
  std::unique_ptr<mem::FrameAllocator> frames_;
  std::unique_ptr<mem::DramModel> dram_;
  std::unique_ptr<mem::MemoryBus> bus_;
  std::unique_ptr<rt::OsModel> os_;
  std::unique_ptr<paging::FramePool> pool_;
  std::unique_ptr<paging::SwapScheduler> swap_;
  std::unique_ptr<mem::FileStore> files_;
  std::unique_ptr<paging::BufferCache> bcache_;
  std::unique_ptr<mem::FrameShareIndex> share_;
  std::unique_ptr<sim::TelemetrySampler> telemetry_;
  std::vector<std::unique_ptr<System>> systems_;
  std::vector<std::string> instances_;
};

}  // namespace vmsls::sls

#include "sls/sharded_runner.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "util/parallel.hpp"

namespace vmsls::sls {

ShardedReport ShardedRunner::run(const std::vector<Shard>& shards) const {
  // Workers fill per-shard slots only; everything order-sensitive (result
  // rows, registry merge) happens serially below, in submission order.
  // Simulators live on the heap because each owns its registry until the
  // merge, and they are built inside the worker so construction cost
  // parallelizes with everything else.
  std::vector<std::unique_ptr<sim::Simulator>> sims(shards.size());
  parallel_for(workers_, shards.size(), [&](std::size_t i) {
    auto sim = std::make_unique<sim::Simulator>();
    shards[i].body(*sim);
    sims[i] = std::move(sim);
  });

  ShardedReport report;
  report.shards.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const sim::Simulator& sim = *sims[i];
    ShardResult row;
    row.name = shards[i].name;
    row.cycles = sim.now();
    row.events = sim.events_executed();
    report.shards.push_back(std::move(row));
    report.stats.merge(sim.stats(), shards[i].name.empty() ? "" : shards[i].name + ".");
  }
  return report;
}

void ShardedRunner::verify_against_serial(const std::vector<Shard>& shards,
                                          const ShardedReport& parallel_report) const {
  ShardedRunner serial(1);
  const ShardedReport golden = serial.run(shards);
  if (golden.shards.size() != parallel_report.shards.size())
    throw std::runtime_error("sharded verify: shard count mismatch");
  for (std::size_t i = 0; i < golden.shards.size(); ++i) {
    const ShardResult& g = golden.shards[i];
    const ShardResult& p = parallel_report.shards[i];
    if (g.name != p.name || g.cycles != p.cycles || g.events != p.events)
      throw std::runtime_error("sharded verify: shard '" + g.name +
                               "' diverged from serial (cycles " + std::to_string(p.cycles) +
                               " vs " + std::to_string(g.cycles) + ", events " +
                               std::to_string(p.events) + " vs " + std::to_string(g.events) + ")");
  }
  // Full stat comparison: snapshot() is name-ordered, so one pass finds the
  // first divergent entry by name.
  const auto gs = golden.stats.snapshot();
  const auto ps = parallel_report.stats.snapshot();
  if (gs.size() != ps.size())
    throw std::runtime_error("sharded verify: merged stat entry count mismatch");
  auto gi = gs.begin();
  auto pi = ps.begin();
  for (; gi != gs.end(); ++gi, ++pi) {
    if (gi->first != pi->first)
      throw std::runtime_error("sharded verify: stat name mismatch at '" + gi->first + "' vs '" +
                               pi->first + "'");
    if (gi->second != pi->second)
      throw std::runtime_error("sharded verify: stat '" + gi->first + "' diverged (" +
                               std::to_string(pi->second) + " vs serial " +
                               std::to_string(gi->second) + ")");
  }
}

}  // namespace vmsls::sls

// FPGA resource estimation.
//
// The synthesis flow reports utilization the way an HLS/implementation
// report would: LUTs, flip-flops, BRAM capacity, and DSP slices per
// generated component, summed against the target part's budget. Cost
// coefficients are calibrated to typical Zynq-7000-era component sizes
// (AXI datamover ~1k LUT, small CAM-based TLBs tens of LUT/FF per entry,
// one DSP48 per 32x32 multiplier); absolute numbers are estimates but the
// *relative* costs — what the MMU adds per thread versus the kernel
// datapath — are the quantity Table 1 reports.
#pragma once

#include <string>

#include "hwt/hw_port.hpp"
#include "hwt/kernel.hpp"
#include "mem/tlb.hpp"
#include "mem/walker.hpp"
#include "util/units.hpp"

namespace vmsls::sls {

struct Resources {
  u64 luts = 0;
  u64 ffs = 0;
  double bram_kb = 0.0;
  u64 dsps = 0;

  Resources& operator+=(const Resources& o) noexcept {
    luts += o.luts;
    ffs += o.ffs;
    bram_kb += o.bram_kb;
    dsps += o.dsps;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) noexcept { return a += b; }

  Resources scaled(u64 n) const noexcept { return Resources{luts * n, ffs * n, bram_kb * n, dsps * n}; }

  std::string to_string() const;
};

/// Capacity of the target part.
struct ResourceBudget {
  u64 luts = 53200;      // xc7z020 class
  u64 ffs = 106400;
  double bram_kb = 630;  // 140 x 36Kb blocks
  u64 dsps = 220;
};

bool fits(const Resources& r, const ResourceBudget& b) noexcept;

/// Fraction of the binding resource consumed (max over the four types).
double utilization(const Resources& r, const ResourceBudget& b) noexcept;

// --- per-component estimators -------------------------------------------

/// Kernel datapath + control FSM synthesized from the IR (per-op instances,
/// register file in LUTRAM, scratchpad in BRAM).
Resources estimate_kernel(const hwt::Kernel& kernel);

/// Per-thread TLB (CAM tags + PTE payload registers + control).
Resources estimate_tlb(const mem::TlbConfig& tlb);

/// Per-thread MMU front end (request mux, fault capture, retry buffer).
Resources estimate_mmu_frontend();

/// The shared page-table walker (+ optional walk cache).
Resources estimate_walker(const mem::WalkerConfig& cfg);

/// Per-thread bus master port (AXI burst engine), one per kernel port.
Resources estimate_mem_port(const hwt::HwPortConfig& cfg);

/// Per-thread OS interface (doorbell, argument mailbox FIFOs).
Resources estimate_os_interface(unsigned mailboxes, unsigned semaphores);

/// Shared interconnect, scaling with master count.
Resources estimate_interconnect(unsigned masters);

/// DMA engine (baseline system component).
Resources estimate_dma_engine();

}  // namespace vmsls::sls

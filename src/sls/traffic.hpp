// Serving plane: open-arrival traffic over a ProcessGroup worker pool.
//
// The closed-loop harnesses ask "how long does this batch take"; the
// TrafficDriver asks the production question: at a given arrival rate, what
// latency does a request see, and what is the highest rate the machine
// sustains under a p99 bound? Requests arrive on a seeded ArrivalProcess
// (sim/arrival.hpp), wait in a bounded admission queue, and are dispatched
// to the lowest-indexed idle worker process of a ProcessGroup. A request's
// service is a *workload episode*: a chain of page touches over the
// worker's arena, shaped like one of the workload generators' access
// patterns (sequential sweep, strided, uniform random, dependent chase),
// driven through the worker's Pager fault path — so service time is
// touch_cost compute per touch plus every fault stall, eviction, swap
// queue wait, and writeback the episode provokes. Load-dependent pressure
// is the point: a saturated pool backs the swap queue up, and the p99
// latency curve bends exactly where the paging layer stops keeping up.
//
// Determinism: arrival gaps and episode shapes derive from TrafficConfig
// seeds only (no wall clock); dispatch is lowest-idle-index; the queue is
// FIFO. A serving run is bit-identical across reruns, shard placements,
// and trace on/off — the same contract every closed-loop bench enforces.
//
// Ledger (hard gate, checked by run()): every arrival is admitted or
// rejected, every admitted request completes, the queue drains, and every
// worker goes idle:
//
//   arrivals == admitted + rejected == config requests
//   completed == admitted
//
// Per-request spans reuse the PR 6 trace plumbing: a causal id is minted at
// arrival and threads through "request" (arrival -> completion), "queue"
// (arrival -> dispatch), and "service" (dispatch -> completion) async
// spans, with rejected arrivals marked by an instant event.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sls/process_group.hpp"

namespace vmsls::sls {

/// Drives one open-arrival serving run over a ProcessGroup. Construction
/// binds every process already in the group as a worker (allocating each a
/// fresh lazily-faulted arena); run() injects the configured arrivals and
/// steps the shared simulator to completion.
class TrafficDriver {
 public:
  /// Per-run results. The three per-request vectors hold exact values in
  /// completion order — index i is one request across all of them, with
  /// latency[i] == queue_wait[i] + service[i] — so percentiles computed
  /// from them are exact, unlike the power-of-two-bucketed registry
  /// histograms (which are also fed, for telemetry and report_writer
  /// summaries).
  struct Report {
    u64 arrivals = 0;
    u64 admitted = 0;
    u64 rejected = 0;
    u64 completed = 0;
    u64 peak_queue = 0;       ///< deepest admission-queue occupancy seen
    u64 peak_busy = 0;        ///< most workers simultaneously in service
    Cycles span = 0;          ///< first arrival -> last completion
    std::vector<Cycles> latency;     ///< arrival -> completion, per request
    std::vector<Cycles> queue_wait;  ///< arrival -> dispatch, per request
    std::vector<Cycles> service;     ///< dispatch -> completion, per request

    /// Exact q-quantile (0 <= q <= 1) of `values` by nearest-rank; 0 when
    /// empty. Sorts a copy — report-time only.
    static Cycles percentile(const std::vector<Cycles>& values, double q);
    Cycles latency_p(double q) const { return percentile(latency, q); }
    /// Sustained throughput: completed requests per million cycles.
    double qps_mcycle() const {
      return span > 0 ? static_cast<double>(completed) * 1e6 / static_cast<double>(span) : 0.0;
    }
  };

  /// Requires `cfg.requests > 0`, a non-empty group, and a pager on every
  /// member process (serving without a paging plane has no pressure story).
  TrafficDriver(ProcessGroup& group, const TrafficConfig& cfg,
                const std::string& name = "traffic");

  TrafficDriver(const TrafficDriver&) = delete;
  TrafficDriver& operator=(const TrafficDriver&) = delete;

  /// Injects the configured arrivals and steps the simulator until every
  /// request completes and the event queue drains. Throws on a ledger
  /// violation, a stuck queue, or `max_cycles` elapsing. One run per
  /// driver instance.
  Report run(Cycles max_cycles = 4'000'000'000ull);

  const TrafficConfig& config() const noexcept { return cfg_; }
  u64 queue_depth() const noexcept { return queue_.size(); }
  u64 busy_workers() const noexcept { return busy_; }

 private:
  enum class Episode { kSweep, kStrided, kRandom, kChase };

  struct Worker {
    System* system = nullptr;
    paging::Pager* pager = nullptr;
    rt::Process* process = nullptr;
    mem::AddressSpace* as = nullptr;
    VirtAddr arena = 0;
    bool busy = false;
  };

  struct Pending {
    u64 id = 0;
    Cycles arrival = 0;
    u64 trace_id = 0;
  };

  void on_arrival();
  void dispatch(const Pending& req, std::size_t worker);
  void complete(const Pending& req, std::size_t worker, Cycles dispatched);
  /// Episode step addresses for request `id`: seeded page indices into the
  /// worker arena plus a store flag per touch.
  struct Touch {
    u64 page = 0;
    bool is_write = false;
  };
  std::vector<Touch> make_episode(u64 id) const;

  sim::Simulator& sim_;
  ProcessGroup& group_;
  TrafficConfig cfg_;
  std::string name_;
  std::vector<Episode> mix_;
  sim::ArrivalProcess arrivals_gen_;
  std::vector<Worker> workers_;
  std::deque<Pending> queue_;
  u64 page_bytes_ = 0;
  u64 next_id_ = 0;
  u64 busy_ = 0;
  bool ran_ = false;
  Cycles first_arrival_ = 0;
  Cycles last_completion_ = 0;
  sim::TraceTrack trace_track_ = 0;

  Report report_;
  Counter& arrivals_;
  Counter& admitted_;
  Counter& rejected_;
  Counter& completed_;
  Histogram& latency_;
  Histogram& queue_wait_;
  Histogram& service_;
};

/// One point of a rate sweep: the arrival gap it ran at and the outcome.
struct RatePoint {
  Cycles mean_gap = 0;
  Cycles p99 = 0;
  double qps_mcycle = 0.0;
  u64 rejected = 0;
  bool violated = false;  ///< p99 over the bound, or any rejection
};

/// Rate-sweep outcome: every point walked (rate ascending) and the last
/// sustainable one. `saturated` is false when even the highest rate held
/// the bound (the sweep never found the knee).
struct RateSweepResult {
  std::vector<RatePoint> points;
  Cycles max_qps_gap = 0;     ///< mean_gap of the last sustainable point
  double max_qps_mcycle = 0;  ///< its throughput (the headline number)
  Cycles max_qps_p99 = 0;     ///< its p99 latency (must be <= the bound)
  bool saturated = false;
};

/// Walks `mean_gaps` in DESCENDING gap order (ascending arrival rate),
/// calling `run_point` per gap, until the first point that violates the
/// p99 bound or rejects a request; that point is recorded and the walk
/// stops (latency is monotone in rate for a work-conserving pool, so the
/// first violation is the knee). Throws when `mean_gaps` is empty, not
/// strictly descending, or the very first rate already violates.
RateSweepResult sweep_rates(const std::vector<Cycles>& mean_gaps, Cycles p99_bound,
                            const std::function<TrafficDriver::Report(Cycles mean_gap)>& run_point);

}  // namespace vmsls::sls

// Platform specification — the synthesis target.
//
// Bundles the FPGA part's resource budget with the configuration of every
// system component the flow instantiates: DRAM and bus timing, page-table
// geometry, the shared walker, per-thread TLB defaults, OS latencies, and
// the host CPU model. Presets approximate Zynq-7000 SoCs.
#pragma once

#include <string>

#include "cpu/cpu.hpp"
#include "dma/dma_engine.hpp"
#include "dma/offload.hpp"
#include "hwt/engine.hpp"
#include "hwt/hw_port.hpp"
#include "mem/bus.hpp"
#include "mem/dram.hpp"
#include "mem/pagetable.hpp"
#include "mem/paging/pager.hpp"
#include "mem/tlb.hpp"
#include "mem/walker.hpp"
#include "rt/os.hpp"
#include "sim/arrival.hpp"
#include "sim/telemetry.hpp"
#include "sls/resources.hpp"

namespace vmsls::sls {

/// Serving-mode (open-system) traffic knobs — consumed by sls::TrafficDriver.
/// Defined here (not in traffic.hpp) so PlatformSpec can carry the config
/// without the platform header depending on the driver layer above it.
struct TrafficConfig {
  /// Arrival-process shape: distribution, rate (mean_gap), seed, and the
  /// burst/lull modulator (see sim/arrival.hpp).
  sim::ArrivalConfig arrival{};
  u64 requests = 0;          ///< arrivals per run; 0 disables serving mode
  u64 queue_capacity = 16;   ///< bounded admission queue; overflow rejects
  u64 episode_touches = 32;  ///< page touches per request episode
  u64 arena_pages = 64;      ///< per-worker arena the episodes touch
  Cycles touch_cost = 20;    ///< compute cycles charged per touch
  double write_ratio = 0.25; ///< fraction of touches that store (dirty pages)
  /// Comma-separated episode patterns cycled across requests. Each name
  /// selects the access shape of the matching workload generator family:
  /// "saxpy"/"vecadd" = sequential sweep, "matmul" = strided, "hash_join"/
  /// "histogram" = uniform random, "pointer_chase"/"bfs" = dependent chase.
  std::string mix = "saxpy,hash_join,pointer_chase,matmul";
};

struct PlatformSpec {
  std::string name = "zynq7020";
  double fabric_mhz = 200.0;
  ResourceBudget budget{};
  unsigned max_hw_threads = 8;

  mem::DramConfig dram{};
  mem::BusConfig bus{};
  mem::PageTableConfig page_table{};
  mem::WalkerConfig walker{};
  mem::TlbConfig default_tlb{};
  hwt::HwPortConfig default_port{};
  hwt::CostModel hw_cost{};            // fabric datapath costs
  rt::OsConfig os{};
  cpu::CpuConfig cpu{};
  /// Memory-pressure model: frame budget, replacement policy, swap-device
  /// timing, and the shared swap I/O knobs (`pager.swap.shared` for one
  /// device per ProcessGroup, `pager.swap.sched` for the request-queue
  /// dispatch policy, `pager.swap.readahead` for swap-in clustering
  /// prefetch). frame_budget == 0 (the default) disables the pager
  /// entirely.
  paging::PagerConfig pager{};
  /// Copy-based offload baseline (elaborated when SynthesisOptions
  /// include_dma is set): DMA engine burst geometry and the driver's copy
  /// mode/costs. `offload.mode` is the DSE's offload-mode axis.
  dma::DmaConfig dma{};
  dma::OffloadConfig offload{};
  /// Periodic pressure telemetry (see sim/telemetry.hpp): a ProcessGroup
  /// with `telemetry.period > 0` samples pool residency, free frames, swap
  /// queue depths, and per-process fault/prefetch pressure every period
  /// cycles. 0 (the default) elides the sampler entirely.
  sim::TelemetryConfig telemetry{};
  /// Open-arrival serving mode (see sls/traffic.hpp): request rate, bounded
  /// admission queue, and episode shape for TrafficDriver runs.
  /// `traffic.requests == 0` (the default) means no serving plane.
  TrafficConfig traffic{};

  Addr ctrl_base = 0x4000'0000;  // control-register window (metadata only)
  u64 ctrl_stride = 0x1000;
};

/// Mid-size part: xc7z020 (Zedboard class).
inline PlatformSpec zynq7020() {
  PlatformSpec p;
  p.name = "zynq7020";
  p.budget = ResourceBudget{53200, 106400, 630.0, 220};
  p.max_hw_threads = 8;
  return p;
}

/// Large part: xc7z045 (ZC706 class).
inline PlatformSpec zynq7045() {
  PlatformSpec p;
  p.name = "zynq7045";
  p.budget = ResourceBudget{218600, 437200, 2385.0, 900};
  p.max_hw_threads = 16;
  p.dram.size_bytes = 1024 * MiB;
  return p;
}

}  // namespace vmsls::sls

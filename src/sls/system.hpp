// The elaborated system: a SystemImage instantiated on the simulator.
//
// Owns every component of the simulated SoC — physical memory, DRAM/bus
// models, the process address space and page tables, the shared walker,
// per-thread MMUs/ports/engines, the OS model with delegate threads and
// the fault handler, and (optionally) the DMA engine + offload driver.
// This is the "board" the paper's evaluation runs on.
//
// A System can alternatively be elaborated *into* a SharedSubstrate: the
// physical memory, frame allocator, DRAM + bus, OS service cores, and the
// memory-pressure FramePool come from outside and are shared with other
// Systems on the same simulator. That is the multi-process
// over-subscription configuration: each process keeps its own address
// space, page tables, walker, fault handler, and pager, while frames and
// bus bandwidth are contended machine-wide (see sls::ProcessGroup).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cached_port.hpp"
#include "dma/offload.hpp"
#include "hwt/engine.hpp"
#include "hwt/hw_port.hpp"
#include "mem/address_space.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mmu.hpp"
#include "mem/paging/frame_pool.hpp"
#include "mem/paging/pager.hpp"
#include "mem/paging/swap_scheduler.hpp"
#include "mem/physmem.hpp"
#include "mem/walker.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "sls/synthesis.hpp"

namespace vmsls::sls {

/// Machine-wide components several Systems share on one simulator. All
/// pointers must outlive every System elaborated against the substrate;
/// `pool` may be null (no shared memory-pressure arbitration) and `swap`
/// may be null (each pager keeps a private swap device instead of sharing
/// one flash part).
struct SharedSubstrate {
  mem::PhysicalMemory* pm = nullptr;
  mem::FrameAllocator* frames = nullptr;
  mem::DramModel* dram = nullptr;
  mem::MemoryBus* bus = nullptr;
  rt::OsModel* os = nullptr;
  paging::FramePool* pool = nullptr;
  paging::SwapScheduler* swap = nullptr;
  /// Machine-wide file registry + block cache for file-backed mappings.
  /// `files` may be null (processes then cannot mmap through the group) and
  /// `bcache` may be null (each pager keeps a private buffer cache).
  mem::FileStore* files = nullptr;
  paging::BufferCache* bcache = nullptr;
  /// Machine-wide resident-frame index for MAP_SHARED pages: when set, a
  /// process faulting a shared file page another process already holds
  /// resident maps the *same frame* (one frame backs N mappings) instead of
  /// filling a duplicate. Null = every process fills its own frame.
  mem::FrameShareIndex* share = nullptr;
};

class System {
 public:
  System(sim::Simulator& sim, const SystemImage& image);

  /// Shared-substrate elaboration: memory, bus, OS cores, and the frame
  /// pool come from outside; `instance` prefixes every component's stat
  /// names (e.g. "p0.") so multiple processes coexist in one registry.
  System(sim::Simulator& sim, const SystemImage& image, const SharedSubstrate& shared,
         std::string instance);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // --- component access ---
  sim::Simulator& simulator() noexcept { return sim_; }
  rt::Process& process() noexcept { return *process_; }
  mem::AddressSpace& address_space() noexcept { return *as_; }
  mem::MemoryBus& bus() noexcept { return *bus_; }
  mem::PageWalker& walker() noexcept { return *walker_; }
  mem::PhysicalMemory& physical_memory() noexcept { return *pm_; }
  rt::OsModel& os() noexcept { return *os_; }
  rt::FaultHandler& fault_handler() noexcept { return *faults_; }

  /// Present when the platform configures a frame budget (pager.frame_budget
  /// > 0) or the system shares a FramePool; nullptr otherwise.
  paging::Pager* pager() noexcept { return pager_.get(); }

  /// File registry backing mmap regions: the substrate's machine-wide store
  /// when elaborated into one, else a private store (block size = page size).
  mem::FileStore& files() noexcept { return *files_; }

  /// Stat-name prefix of this instance ("" for a standalone system).
  const std::string& instance() const noexcept { return inst_; }

  hwt::Engine& engine(const std::string& thread);
  mem::Mmu& mmu(const std::string& thread);  // hardware threads only
  mem::CacheHierarchy& caches(const std::string& thread);  // software threads only

  /// DMA baseline components (present when synthesized with include_dma).
  dma::DmaEngine& dma_engine();
  dma::OffloadDriver& offload();

  /// Virtual address of a named application buffer.
  VirtAddr buffer(const std::string& name) const;

  // --- execution control ---
  void start_thread(const std::string& thread);
  void start_all();

  bool all_halted() const noexcept { return running_ == 0 && started_ > 0; }
  unsigned threads_running() const noexcept { return running_; }

  /// Names of threads currently running (deadlock diagnostics).
  std::string running_thread_names() const;

  /// Runs the simulation until every started thread halts. Throws on
  /// deadlock (event queue drained with threads blocked) or when `max`
  /// cycles elapse. Returns cycles elapsed since the call. Standalone
  /// systems only — a ProcessGroup steps all member systems together.
  Cycles run_to_completion(Cycles max_cycles = 2'000'000'000ull);

  const SystemImage& image() const noexcept { return image_; }

 private:
  struct HwThread {
    std::unique_ptr<mem::Mmu> mmu;
    std::vector<std::unique_ptr<hwt::HwMemPort>> ports;
    std::unique_ptr<rt::DelegateOsPort> os_port;
    std::unique_ptr<hwt::Engine> engine;
  };
  struct SwThread {
    std::unique_ptr<mem::CacheHierarchy> caches;
    std::unique_ptr<cpu::CachedMemPort> port;
    std::unique_ptr<rt::DirectOsPort> os_port;
    std::unique_ptr<hwt::Engine> engine;
  };

  void build(const SharedSubstrate* shared);
  void build_hw_thread(const ThreadSpec& spec, const HwThreadPlan& plan);
  void build_sw_thread(const ThreadSpec& spec);
  rt::OsBindings make_bindings(const ThreadSpec& spec) const;

  sim::Simulator& sim_;
  SystemImage image_;
  std::string inst_;

  // Shared components: owned_* hold storage when this system stands alone;
  // the raw pointers are what the rest of the system uses either way.
  std::unique_ptr<mem::PhysicalMemory> owned_pm_;
  std::unique_ptr<mem::FrameAllocator> owned_frames_;
  std::unique_ptr<mem::DramModel> owned_dram_;
  std::unique_ptr<mem::MemoryBus> owned_bus_;
  std::unique_ptr<rt::OsModel> owned_os_;
  mem::PhysicalMemory* pm_ = nullptr;
  mem::FrameAllocator* frames_ = nullptr;
  mem::DramModel* dram_ = nullptr;
  mem::MemoryBus* bus_ = nullptr;
  rt::OsModel* os_ = nullptr;
  paging::FramePool* pool_ = nullptr;
  std::unique_ptr<mem::FileStore> owned_files_;
  mem::FileStore* files_ = nullptr;

  // Per-process components, always owned.
  std::unique_ptr<mem::AddressSpace> as_;
  std::unique_ptr<rt::Process> process_;
  std::unique_ptr<mem::PageWalker> walker_;
  std::unique_ptr<rt::FaultHandler> faults_;
  std::unique_ptr<paging::Pager> pager_;
  std::unique_ptr<dma::DmaEngine> dma_;
  std::unique_ptr<dma::OffloadDriver> offload_;

  std::map<std::string, HwThread> hw_;
  std::map<std::string, SwThread> sw_;
  std::map<std::string, VirtAddr> buffers_;

  unsigned running_ = 0;
  unsigned started_ = 0;
};

}  // namespace vmsls::sls

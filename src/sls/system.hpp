// The elaborated system: a SystemImage instantiated on the simulator.
//
// Owns every component of the simulated SoC — physical memory, DRAM/bus
// models, the process address space and page tables, the shared walker,
// per-thread MMUs/ports/engines, the OS model with delegate threads and
// the fault handler, and (optionally) the DMA engine + offload driver.
// This is the "board" the paper's evaluation runs on.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/cached_port.hpp"
#include "dma/offload.hpp"
#include "hwt/engine.hpp"
#include "hwt/hw_port.hpp"
#include "mem/address_space.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mmu.hpp"
#include "mem/paging/pager.hpp"
#include "mem/physmem.hpp"
#include "mem/walker.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "sls/synthesis.hpp"

namespace vmsls::sls {

class System {
 public:
  System(sim::Simulator& sim, const SystemImage& image);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // --- component access ---
  sim::Simulator& simulator() noexcept { return sim_; }
  rt::Process& process() noexcept { return *process_; }
  mem::AddressSpace& address_space() noexcept { return *as_; }
  mem::MemoryBus& bus() noexcept { return *bus_; }
  mem::PageWalker& walker() noexcept { return *walker_; }
  mem::PhysicalMemory& physical_memory() noexcept { return *pm_; }
  rt::OsModel& os() noexcept { return *os_; }
  rt::FaultHandler& fault_handler() noexcept { return *faults_; }

  /// Present when the platform configures a frame budget (pager.frame_budget
  /// > 0); nullptr otherwise.
  paging::Pager* pager() noexcept { return pager_.get(); }

  hwt::Engine& engine(const std::string& thread);
  mem::Mmu& mmu(const std::string& thread);  // hardware threads only
  mem::CacheHierarchy& caches(const std::string& thread);  // software threads only

  /// DMA baseline components (present when synthesized with include_dma).
  dma::DmaEngine& dma_engine();
  dma::OffloadDriver& offload();

  /// Virtual address of a named application buffer.
  VirtAddr buffer(const std::string& name) const;

  // --- execution control ---
  void start_thread(const std::string& thread);
  void start_all();

  bool all_halted() const noexcept { return running_ == 0 && started_ > 0; }
  unsigned threads_running() const noexcept { return running_; }

  /// Runs the simulation until every started thread halts. Throws on
  /// deadlock (event queue drained with threads blocked) or when `max`
  /// cycles elapse. Returns cycles elapsed since the call.
  Cycles run_to_completion(Cycles max_cycles = 2'000'000'000ull);

  const SystemImage& image() const noexcept { return image_; }

 private:
  struct HwThread {
    std::unique_ptr<mem::Mmu> mmu;
    std::vector<std::unique_ptr<hwt::HwMemPort>> ports;
    std::unique_ptr<rt::DelegateOsPort> os_port;
    std::unique_ptr<hwt::Engine> engine;
  };
  struct SwThread {
    std::unique_ptr<mem::CacheHierarchy> caches;
    std::unique_ptr<cpu::CachedMemPort> port;
    std::unique_ptr<rt::DirectOsPort> os_port;
    std::unique_ptr<hwt::Engine> engine;
  };

  void build_hw_thread(const ThreadSpec& spec, const HwThreadPlan& plan);
  void build_sw_thread(const ThreadSpec& spec);
  rt::OsBindings make_bindings(const ThreadSpec& spec) const;

  sim::Simulator& sim_;
  SystemImage image_;

  std::unique_ptr<mem::PhysicalMemory> pm_;
  std::unique_ptr<mem::FrameAllocator> frames_;
  std::unique_ptr<mem::DramModel> dram_;
  std::unique_ptr<mem::MemoryBus> bus_;
  std::unique_ptr<mem::AddressSpace> as_;
  std::unique_ptr<rt::Process> process_;
  std::unique_ptr<mem::PageWalker> walker_;
  std::unique_ptr<rt::OsModel> os_;
  std::unique_ptr<rt::FaultHandler> faults_;
  std::unique_ptr<paging::Pager> pager_;
  std::unique_ptr<dma::DmaEngine> dma_;
  std::unique_ptr<dma::OffloadDriver> offload_;

  std::map<std::string, HwThread> hw_;
  std::map<std::string, SwThread> sw_;
  std::map<std::string, VirtAddr> buffers_;

  unsigned running_ = 0;
  unsigned started_ = 0;
};

}  // namespace vmsls::sls

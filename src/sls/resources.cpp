#include "sls/resources.hpp"

#include <algorithm>
#include <sstream>

namespace vmsls::sls {

std::string Resources::to_string() const {
  std::ostringstream os;
  os << luts << " LUT / " << ffs << " FF / " << bram_kb << " KB BRAM / " << dsps << " DSP";
  return os.str();
}

bool fits(const Resources& r, const ResourceBudget& b) noexcept {
  return r.luts <= b.luts && r.ffs <= b.ffs && r.bram_kb <= b.bram_kb && r.dsps <= b.dsps;
}

double utilization(const Resources& r, const ResourceBudget& b) noexcept {
  double u = 0.0;
  if (b.luts) u = std::max(u, static_cast<double>(r.luts) / static_cast<double>(b.luts));
  if (b.ffs) u = std::max(u, static_cast<double>(r.ffs) / static_cast<double>(b.ffs));
  if (b.bram_kb > 0) u = std::max(u, r.bram_kb / b.bram_kb);
  if (b.dsps) u = std::max(u, static_cast<double>(r.dsps) / static_cast<double>(b.dsps));
  return u;
}

namespace {
/// Per-instruction datapath costs: HLS instantiates operator instances and
/// one FSM state per IR op.
Resources op_cost(hwt::Op op) {
  using hwt::Op;
  switch (op) {
    case Op::kMul:
    case Op::kMuli:
      return {24, 18, 0.0, 1};  // DSP48 multiplier + pipeline regs
    case Op::kDivU:
    case Op::kRemU:
      return {190, 160, 0.0, 0};  // iterative divider
    case Op::kLoad:
    case Op::kStore:
      return {42, 58, 0.0, 0};  // address gen + response capture
    case Op::kBurstLoad:
    case Op::kBurstStore:
      return {88, 112, 0.0, 0};  // burst counters + scratchpad DMA path
    case Op::kSpadLoad:
    case Op::kSpadStore:
      return {14, 10, 0.0, 0};
    case Op::kMboxGet:
    case Op::kMboxPut:
    case Op::kSemWait:
    case Op::kSemPost:
      return {26, 34, 0.0, 0};  // doorbell handshake state
    case Op::kBeqz:
    case Op::kBnez:
    case Op::kJmp:
      return {9, 6, 0.0, 0};
    case Op::kDelay:
      return {12, 18, 0.0, 0};  // cycle counter
    case Op::kHalt:
    case Op::kNop:
      return {2, 2, 0.0, 0};
    default:
      return {15, 11, 0.0, 0};  // ALU/compare/move
  }
}
}  // namespace

Resources estimate_kernel(const hwt::Kernel& kernel) {
  Resources r{310, 420, 0.0, 0};  // control FSM + start/done wrapper
  r += Resources{512, 128, 0.0, 0};  // 32x64b register file in LUTRAM
  for (std::size_t op = 0; op < kernel.op_histogram.size(); ++op) {
    const u64 count = kernel.op_histogram[op];
    if (count == 0) continue;
    r += op_cost(static_cast<hwt::Op>(op)).scaled(count);
  }
  if (kernel.iface.spad_bytes > 0) {
    r.bram_kb += static_cast<double>(kernel.iface.spad_bytes) / 1024.0;
    r += Resources{36, 22, 0.0, 0};  // BRAM controller
  }
  return r;
}

Resources estimate_tlb(const mem::TlbConfig& tlb) {
  // Each entry: CAM tag compare (LUTs) + VPN/PFN/flags registers (~110b).
  Resources r{150, 120, 0.0, 0};  // lookup/replace control
  r += Resources{22, 112, 0.0, 0}.scaled(tlb.entries);
  return r;
}

Resources estimate_mmu_frontend() { return Resources{340, 390, 0.0, 0}; }

Resources estimate_walker(const mem::WalkerConfig& cfg) {
  Resources r{880, 720, 0.0, 0};
  if (cfg.walk_cache_enabled) r += Resources{26, 96, 0.0, 0}.scaled(cfg.walk_cache_entries);
  return r;
}

Resources estimate_mem_port(const hwt::HwPortConfig& cfg) {
  // AXI master burst engine; wider bursts need deeper reorder/boundary
  // logic but the dependence is weak.
  Resources r{410, 520, 0.0, 0};
  if (cfg.max_burst_bytes > 256) r += Resources{60, 90, 0.0, 0};
  return r;
}

Resources estimate_os_interface(unsigned mailboxes, unsigned semaphores) {
  Resources r{120, 150, 0.0, 0};  // doorbell + IRQ
  r += Resources{64, 90, 0.0, 0}.scaled(mailboxes);  // 16-deep LUTRAM FIFOs
  r += Resources{18, 12, 0.0, 0}.scaled(semaphores);
  return r;
}

Resources estimate_interconnect(unsigned masters) {
  return Resources{620, 480, 0.0, 0} + Resources{240, 210, 0.0, 0}.scaled(masters);
}

Resources estimate_dma_engine() { return Resources{840, 960, 0.0, 0}; }

}  // namespace vmsls::sls

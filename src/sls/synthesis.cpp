#include "sls/synthesis.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace vmsls::sls {

namespace {
class PassTimer {
 public:
  PassTimer(std::string name, std::vector<PassTiming>& out)
      : name_(std::move(name)), out_(out), start_(std::chrono::steady_clock::now()) {}
  ~PassTimer() {
    const auto us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count() /
                    1000.0;
    out_.push_back(PassTiming{name_, us});
  }

 private:
  std::string name_;
  std::vector<PassTiming>& out_;
  std::chrono::steady_clock::time_point start_;
};

unsigned round_up_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

std::string SynthesisReport::to_string() const {
  std::ostringstream os;
  os << "synthesis report: " << hw_threads << " HW + " << sw_threads << " SW threads, "
     << netlist_instances << " netlist instances\n";
  for (const auto& [name, res] : components) os << "  " << name << ": " << res.to_string() << "\n";
  os << "  static: " << static_resources.to_string() << "\n";
  os << "  total:  " << total.to_string() << "  (utilization "
     << static_cast<int>(utilization * 100.0) << "%, " << (fits_budget ? "fits" : "OVERFLOWS")
     << ")\n";
  return os.str();
}

const HwThreadPlan& SystemImage::hw_plan(const std::string& thread) const {
  for (const auto& p : hw_plans_)
    if (p.thread == thread) return p;
  throw std::out_of_range("no hardware thread plan for '" + thread + "'");
}

SynthesisFlow::SynthesisFlow(PlatformSpec platform, SynthesisOptions options)
    : platform_(std::move(platform)), options_(options) {}

SystemImage SynthesisFlow::synthesize(const AppSpec& app) {
  SystemImage image;
  image.app_ = app;
  image.platform_ = platform_;
  image.options_ = options_;

  {
    PassTimer t("validate", image.report_.pass_timings);
    pass_validate(app);
  }
  {
    PassTimer t("partition", image.report_.pass_timings);
    pass_partition(app, image);
  }
  {
    PassTimer t("interface-synthesis", image.report_.pass_timings);
    pass_interface_synthesis(app, image);
  }
  {
    PassTimer t("estimate", image.report_.pass_timings);
    pass_estimate(app, image);
  }
  {
    PassTimer t("address-map", image.report_.pass_timings);
    pass_address_map(image);
  }
  {
    PassTimer t("emit", image.report_.pass_timings);
    pass_emit(app, image);
  }

  if (options_.strict_budget && !image.report_.fits_budget)
    throw std::runtime_error("design for app '" + app.name + "' exceeds " + platform_.name +
                             " budget: " + image.report_.total.to_string());
  log_info("sls", "synthesized '", app.name, "' for ", platform_.name, ": ",
           image.report_.hw_threads, " HW + ", image.report_.sw_threads, " SW threads, ",
           image.report_.total.to_string());
  return image;
}

void SynthesisFlow::pass_validate(const AppSpec& app) const {
  require(!app.name.empty(), "application needs a name");
  require(!app.threads.empty(), "application has no threads");

  std::set<std::string> names;
  for (const auto& t : app.threads) {
    require(!t.name.empty(), "thread needs a name");
    require(names.insert(t.name).second, "duplicate thread name '" + t.name + "'");
    hwt::verify(t.kernel);
    // Every kernel-local object index must be bound to an app object.
    require(t.mailbox_bindings.size() >= t.kernel.iface.mailboxes,
            "thread '" + t.name + "' leaves kernel mailboxes unbound");
    require(t.semaphore_bindings.size() >= t.kernel.iface.semaphores,
            "thread '" + t.name + "' leaves kernel semaphores unbound");
    for (const auto& b : t.mailbox_bindings) app.mailbox_index(b);     // throws if unknown
    for (const auto& b : t.semaphore_bindings) app.semaphore_index(b);  // throws if unknown
    if (t.kind == ThreadKind::kSoftware)
      require(t.addressing == Addressing::kVirtual,
              "software thread '" + t.name + "' cannot use physical addressing");
  }

  std::set<std::string> objs;
  for (const auto& m : app.mailboxes)
    require(objs.insert("m:" + m.name).second, "duplicate mailbox '" + m.name + "'");
  for (const auto& s : app.semaphores)
    require(objs.insert("s:" + s.name).second, "duplicate semaphore '" + s.name + "'");
  for (const auto& b : app.buffers) {
    require(b.bytes > 0, "buffer '" + b.name + "' has zero size");
    require(objs.insert("b:" + b.name).second, "duplicate buffer '" + b.name + "'");
  }

  // In auto mode, excess hardware candidates are demoted by the partition
  // pass instead of being an error.
  if (options_.partition == PartitionMode::kUser)
    require(app.hw_thread_count() <= platform_.max_hw_threads,
            "app '" + app.name + "' needs " + std::to_string(app.hw_thread_count()) +
                " fabric slots but " + platform_.name + " provides " +
                std::to_string(platform_.max_hw_threads));
}

double estimate_partition_gain(const hwt::Kernel& kernel, const PlatformSpec& platform) {
  // Static profile estimation in the Ball-Larus tradition: every backward
  // branch defines a loop interval [target, branch]; instructions weigh
  // 16^depth where depth is the number of enclosing intervals. This makes
  // inner-loop compute dominate outer-loop memory staging exactly as it
  // does dynamically, without trip counts. Weighted op costs then go
  // through both machines' cost models; memory ops get average service
  // latencies (bursts amortize across their tile on both sides). The
  // *ratio* ranks candidates; neither sum predicts absolute runtime.
  constexpr double kLoopWeight = 16.0;
  constexpr double kHwBeatLatency = 26.0;   // single-beat translated access
  constexpr double kSwBeatLatency = 4.0;    // mostly L1, in ref cycles
  constexpr double kHwBurstLatency = 45.0;  // one tile burst on the fabric
  constexpr double kSwBurstLatency = 40.0;  // same tile through the caches

  // Loop intervals from back edges.
  struct Interval {
    u64 lo, hi;
  };
  std::vector<Interval> loops;
  for (u64 pc = 0; pc < kernel.code.size(); ++pc) {
    const hwt::Instr& in = kernel.code[pc];
    const bool branch =
        in.op == hwt::Op::kBeqz || in.op == hwt::Op::kBnez || in.op == hwt::Op::kJmp;
    if (branch && static_cast<u64>(in.imm) < pc) loops.push_back({static_cast<u64>(in.imm), pc});
  }
  auto weight_at = [&loops](u64 pc) {
    double w = 1.0;
    for (const auto& l : loops)
      if (pc >= l.lo && pc <= l.hi) w *= kLoopWeight;
    return w;
  };

  const auto& hw = platform.hw_cost;
  const auto cpu = platform.cpu.cost;
  const double cpu_speed = platform.cpu.clock.ratio();
  const double ilp = static_cast<double>(hw.ilp == 0 ? 1 : hw.ilp);

  double hw_cycles = 0, sw_cycles = 0;
  for (u64 pc = 0; pc < kernel.code.size(); ++pc) {
    const hwt::Instr& in = kernel.code[pc];
    const double w = weight_at(pc);
    const auto o = in.op;
    if (o == hwt::Op::kBurstLoad || o == hwt::Op::kBurstStore) {
      hw_cycles += w * kHwBurstLatency;
      sw_cycles += w * kSwBurstLatency;
      continue;
    }
    if (hwt::is_mem(o)) {
      hw_cycles += w * kHwBeatLatency;
      sw_cycles += w * kSwBeatLatency;
      continue;
    }
    if (hwt::is_os(o) || o == hwt::Op::kHalt) continue;  // identical blocking
    double hw_c = static_cast<double>(hw.alu), sw_c = static_cast<double>(cpu.alu);
    if (o == hwt::Op::kMul || o == hwt::Op::kMuli) {
      hw_c = static_cast<double>(hw.mul);
      sw_c = static_cast<double>(cpu.mul);
    } else if (o == hwt::Op::kDivU || o == hwt::Op::kRemU) {
      hw_c = static_cast<double>(hw.divu);
      sw_c = static_cast<double>(cpu.divu);
    } else if (o == hwt::Op::kBeqz || o == hwt::Op::kBnez || o == hwt::Op::kJmp) {
      hw_c = static_cast<double>(hw.branch);
      sw_c = static_cast<double>(cpu.branch);
    } else if (o == hwt::Op::kSpadLoad || o == hwt::Op::kSpadStore) {
      hw_c = static_cast<double>(hw.spad);
      sw_c = static_cast<double>(cpu.spad);
    }
    hw_cycles += w * hw_c / ilp;
    sw_cycles += w * sw_c / cpu_speed;
  }
  return hw_cycles > 0 ? sw_cycles / hw_cycles : 1.0;
}

void SynthesisFlow::pass_partition(const AppSpec& app, SystemImage& image) const {
  // kUser honors the spec's HW/SW marking (the DATE-era default, where
  // partitioning is a design input). kAuto treats HW-marked threads as
  // candidates and selects the best-gain-density subset that fits.
  std::vector<const ThreadSpec*> to_hw;
  std::vector<const ThreadSpec*> to_sw;
  for (const auto& t : app.threads)
    (t.kind == ThreadKind::kHardware ? to_hw : to_sw).push_back(&t);

  if (options_.partition == PartitionMode::kAuto) {
    struct Candidate {
      const ThreadSpec* t;
      double gain;
      Resources res;
    };
    std::vector<Candidate> cands;
    for (const ThreadSpec* t : to_hw) {
      Candidate c;
      c.t = t;
      c.gain = estimate_partition_gain(t->kernel, platform_);
      c.res = estimate_kernel(t->kernel) + estimate_mmu_frontend() +
              estimate_tlb(platform_.default_tlb) +
              estimate_mem_port(platform_.default_port)
                  .scaled(std::max(1u, t->kernel.iface.mem_ports)) +
              estimate_os_interface(t->kernel.iface.mailboxes, t->kernel.iface.semaphores);
      cands.push_back(c);
    }
    // Gain density: predicted speedup per LUT; deterministic tie-break.
    std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
      const double da = a.gain / static_cast<double>(a.res.luts);
      const double db = b.gain / static_cast<double>(b.res.luts);
      if (da != db) return da > db;
      return a.t->name < b.t->name;
    });

    Resources committed = estimate_walker(platform_.walker) + estimate_interconnect(2);
    to_hw.clear();
    for (const Candidate& c : cands) {
      const bool has_slot = to_hw.size() < platform_.max_hw_threads;
      const bool worthwhile = c.gain > 1.0;
      Resources with = committed + c.res;
      if (has_slot && worthwhile && fits(with, platform_.budget)) {
        committed = with;
        to_hw.push_back(c.t);
      } else {
        to_sw.push_back(c.t);
        image.report_.demoted_threads.push_back(c.t->name);
      }
    }
    // Keep deterministic declaration order for slot assignment.
    auto by_decl = [&app](const ThreadSpec* a, const ThreadSpec* b) {
      auto pos = [&app](const ThreadSpec* t) {
        for (std::size_t i = 0; i < app.threads.size(); ++i)
          if (&app.threads[i] == t) return i;
        return app.threads.size();
      };
      return pos(a) < pos(b);
    };
    std::sort(to_hw.begin(), to_hw.end(), by_decl);
    std::sort(to_sw.begin(), to_sw.end(), by_decl);
  }

  unsigned slot = 0;
  for (const ThreadSpec* t : to_hw) {
    HwThreadPlan plan;
    plan.thread = t->name;
    plan.slot = slot++;
    plan.addressing = t->addressing;
    image.hw_plans_.push_back(std::move(plan));
  }
  for (const ThreadSpec* t : to_sw) image.sw_plans_.push_back(SwThreadPlan{t->name});

  image.report_.hw_threads = static_cast<unsigned>(image.hw_plans_.size());
  image.report_.sw_threads = static_cast<unsigned>(image.sw_plans_.size());
}

void SynthesisFlow::pass_interface_synthesis(const AppSpec& app, SystemImage& image) const {
  const u64 page = 1ull << platform_.page_table.page_bits;
  for (auto& plan : image.hw_plans_) {
    const ThreadSpec& t = app.thread(plan.thread);
    plan.port = t.port_override.value_or(platform_.default_port);
    if (t.tlb_override) {
      plan.tlb = *t.tlb_override;
    } else if (options_.auto_tlb && t.footprint_hint_bytes > 0 &&
               plan.addressing == Addressing::kVirtual) {
      // Size the TLB to cover the hinted working set, clamped to what the
      // fabric affords.
      const u64 pages = ceil_div(t.footprint_hint_bytes, page);
      unsigned entries = round_up_pow2(static_cast<unsigned>(std::min<u64>(pages, 1u << 20)));
      entries = std::clamp(entries, options_.auto_tlb_min, options_.auto_tlb_max);
      plan.tlb = platform_.default_tlb;
      plan.tlb.entries = entries;
      plan.tlb.ways = std::min(plan.tlb.ways, entries);
    } else {
      plan.tlb = platform_.default_tlb;
    }
  }
}

void SynthesisFlow::pass_estimate(const AppSpec& app, SystemImage& image) const {
  Resources total;
  unsigned bus_masters = 1;  // CPU cache port is always a master

  for (auto& plan : image.hw_plans_) {
    const ThreadSpec& t = app.thread(plan.thread);
    Resources r = estimate_kernel(t.kernel);
    r += estimate_os_interface(t.kernel.iface.mailboxes, t.kernel.iface.semaphores);
    const unsigned ports = std::max(1u, t.kernel.iface.mem_ports);
    r += estimate_mem_port(plan.port).scaled(ports);
    if (plan.addressing == Addressing::kVirtual) {
      r += estimate_mmu_frontend();
      r += estimate_tlb(plan.tlb);
    }
    plan.resources = r;
    image.report_.components.emplace_back("hwt:" + plan.thread, r);
    total += r;
    bus_masters += ports;
  }

  Resources statics = estimate_interconnect(bus_masters + 1 /*walker*/);
  const bool any_virtual =
      std::any_of(image.hw_plans_.begin(), image.hw_plans_.end(),
                  [](const HwThreadPlan& p) { return p.addressing == Addressing::kVirtual; });
  if (any_virtual) statics += estimate_walker(platform_.walker);
  if (options_.include_dma) statics += estimate_dma_engine();
  image.report_.static_resources = statics;
  total += statics;

  image.report_.total = total;
  image.report_.utilization = utilization(total, platform_.budget);
  image.report_.fits_budget = fits(total, platform_.budget);
}

void SynthesisFlow::pass_address_map(SystemImage& image) const {
  Addr base = platform_.ctrl_base;
  for (auto& plan : image.hw_plans_) {
    plan.ctrl_base = base;
    image.report_.address_map.push_back(
        AddressMapEntry{"hwt:" + plan.thread, base, platform_.ctrl_stride});
    base += platform_.ctrl_stride;
  }
  image.report_.address_map.push_back(AddressMapEntry{"walker", base, platform_.ctrl_stride});
  base += platform_.ctrl_stride;
  if (image.options_.include_dma) {
    image.report_.address_map.push_back(AddressMapEntry{"dma", base, platform_.ctrl_stride});
    base += platform_.ctrl_stride;
  }
}

void SynthesisFlow::pass_emit(const AppSpec& app, SystemImage& image) const {
  auto netlist = std::make_shared<Netlist>(app.name + "_top");

  netlist->add_net("axi_mem");
  netlist->add_net("irq_to_host");
  netlist->add_net("ptw_req");

  auto& bus = netlist->add_instance("interconnect0", "axi_interconnect");
  bus.connections.push_back({"m_axi", "axi_mem"});

  const bool any_virtual =
      std::any_of(image.hw_plans_.begin(), image.hw_plans_.end(),
                  [](const HwThreadPlan& p) { return p.addressing == Addressing::kVirtual; });
  if (any_virtual) {
    auto& walker = netlist->add_instance("ptw0", "page_table_walker");
    walker.connections.push_back({"m_axi", "axi_mem"});
    walker.connections.push_back({"walk_req", "ptw_req"});
    walker.parameters.emplace_back("WALK_CACHE",
                                   platform_.walker.walk_cache_enabled ? "1" : "0");
  }

  for (const auto& plan : image.hw_plans_) {
    const ThreadSpec& t = app.thread(plan.thread);
    const std::string base = "hwt_" + plan.thread;
    netlist->add_net(base + "_mem");
    netlist->add_net(base + "_osif");

    auto& wrapper = netlist->add_instance(base, "hw_thread_wrapper");
    wrapper.parameters.emplace_back("KERNEL", t.kernel.name);
    wrapper.parameters.emplace_back("SPAD_BYTES", std::to_string(t.kernel.iface.spad_bytes));
    wrapper.parameters.emplace_back("SLOT", std::to_string(plan.slot));
    wrapper.connections.push_back({"mem", base + "_mem"});
    wrapper.connections.push_back({"osif", base + "_osif"});

    if (plan.addressing == Addressing::kVirtual) {
      auto& mmu = netlist->add_instance(base + "_mmu", "mmu_frontend");
      mmu.parameters.emplace_back("TLB_ENTRIES", std::to_string(plan.tlb.entries));
      mmu.parameters.emplace_back("TLB_WAYS", std::to_string(plan.tlb.ways));
      mmu.connections.push_back({"s_port", base + "_mem"});
      mmu.connections.push_back({"walk_req", "ptw_req"});
      mmu.connections.push_back({"m_axi", "axi_mem"});
      mmu.connections.push_back({"fault_irq", "irq_to_host"});
    } else {
      auto& bridge = netlist->add_instance(base + "_physport", "axi_master_port");
      bridge.connections.push_back({"s_port", base + "_mem"});
      bridge.connections.push_back({"m_axi", "axi_mem"});
    }

    auto& osif = netlist->add_instance(base + "_osif_inst", "os_interface");
    osif.connections.push_back({"s_osif", base + "_osif"});
    osif.connections.push_back({"irq", "irq_to_host"});
  }

  if (image.options_.include_dma) {
    auto& dmae = netlist->add_instance("dma0", "dma_engine");
    dmae.connections.push_back({"m_axi", "axi_mem"});
  }

  image.report_.netlist_instances = netlist->instance_count();
  image.report_.netlist_nets = netlist->net_count();
  image.netlist_ = std::move(netlist);
}

}  // namespace vmsls::sls

// Structural netlist produced by the synthesis flow.
//
// The flow emits a hierarchical instance list — thread wrappers, MMUs,
// TLBs, the walker, interconnect, OS interfaces — with named connections,
// plus a Verilog-flavored structural stub for inspection. This is the
// artifact a real flow would hand to implementation; here it documents the
// generated architecture and feeds the toolflow-statistics table.
#pragma once

#include <string>
#include <vector>

namespace vmsls::sls {

struct NetlistConnection {
  std::string port;  // formal port on the instance
  std::string net;   // actual net name
};

struct NetlistInstance {
  std::string name;    // instance name, e.g. "hwt_sort_0"
  std::string module;  // module type, e.g. "vm_wrapper"
  std::vector<NetlistConnection> connections;
  std::vector<std::pair<std::string, std::string>> parameters;
};

class Netlist {
 public:
  explicit Netlist(std::string top_name);

  NetlistInstance& add_instance(std::string instance, std::string module);
  void add_net(std::string net);

  std::size_t instance_count() const noexcept { return instances_.size(); }
  std::size_t net_count() const noexcept { return nets_.size(); }
  const std::vector<NetlistInstance>& instances() const noexcept { return instances_; }
  const std::string& top() const noexcept { return top_; }

  const NetlistInstance* find(const std::string& instance) const;

  /// Human-readable hierarchical listing.
  std::string to_text() const;

  /// Structural Verilog stub (module + wire decls + instantiations).
  std::string to_verilog() const;

 private:
  std::string top_;
  std::vector<NetlistInstance> instances_;
  std::vector<std::string> nets_;
};

}  // namespace vmsls::sls

// System-level synthesis flow — the paper's primary contribution.
//
// Consumes an AppSpec and a PlatformSpec and produces a SystemImage: the
// complete generated system (per-thread wrapper plans with their TLB and
// port configurations, shared MMU/walker, interconnect, address map,
// resource report, structural netlist) plus the runtime configuration. The
// image elaborates onto the discrete-event SoC simulator, which plays the
// role of the bitstream + board.
//
// Passes, in order:
//   1. validate            — names, bindings, slot budget, kernel checks
//   2. partition           — honor user HW/SW marking, assign fabric slots
//   3. interface-synthesis — per-thread TLB/port configs (auto-sized TLB:
//                            enough entries to cover the kernel's declared
//                            footprint, clamped to platform limits)
//   4. estimate            — resource roll-up vs the part budget
//   5. address-map         — control-register window per slot
//   6. emit                — structural netlist + Verilog stub
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sls/app.hpp"
#include "sls/netlist.hpp"
#include "sls/platform.hpp"
#include "sls/resources.hpp"

namespace vmsls::sls {

class System;
struct SharedSubstrate;

struct HwThreadPlan {
  std::string thread;
  unsigned slot = 0;
  Addressing addressing = Addressing::kVirtual;
  mem::TlbConfig tlb{};
  hwt::HwPortConfig port{};
  Resources resources{};  // wrapper total: datapath + MMU + TLB + ports + OS IF
  Addr ctrl_base = 0;
};

struct SwThreadPlan {
  std::string thread;
};

struct AddressMapEntry {
  std::string component;
  Addr base = 0;
  u64 size = 0;
};

struct PassTiming {
  std::string pass;
  double microseconds = 0.0;  // host wall-clock, the toolflow-statistics metric
};

struct SynthesisReport {
  std::vector<PassTiming> pass_timings;
  std::vector<std::pair<std::string, Resources>> components;  // named breakdown
  Resources static_resources{};  // walker + interconnect (+ DMA)
  Resources total{};
  double utilization = 0.0;  // of the binding resource class
  bool fits_budget = false;
  unsigned hw_threads = 0;
  unsigned sw_threads = 0;
  std::vector<AddressMapEntry> address_map;
  u64 netlist_instances = 0;
  u64 netlist_nets = 0;
  /// Threads the auto-partitioner demoted to software (kAuto only).
  std::vector<std::string> demoted_threads;

  std::string to_string() const;
};

/// How the flow decides which threads become hardware.
enum class PartitionMode {
  kUser,  // honor the spec's HW/SW marking exactly
  kAuto,  // HW-marked threads are *candidates*; the flow selects the subset
          // with the best analytic gain density that fits the part, and
          // demotes the rest to software
};

struct SynthesisOptions {
  bool include_dma = false;     // instantiate the DMA engine + offload driver
  bool strict_budget = true;    // throw when the design exceeds the part
  bool auto_tlb = true;         // pick TLB sizes (else platform default)
  unsigned auto_tlb_min = 8;
  unsigned auto_tlb_max = 64;
  PartitionMode partition = PartitionMode::kUser;
};

/// Analytic hardware-vs-software gain used by automatic partitioning:
/// static op mix weighted by the two cost models plus average memory
/// latencies (a trip-count-free proxy; see synthesis.cpp).
double estimate_partition_gain(const hwt::Kernel& kernel, const PlatformSpec& platform);

/// The synthesized design. Immutable; elaborate() may be called repeatedly
/// to build independent simulation instances.
class SystemImage {
 public:
  const AppSpec& app() const noexcept { return app_; }
  const PlatformSpec& platform() const noexcept { return platform_; }
  const SynthesisOptions& options() const noexcept { return options_; }
  const SynthesisReport& report() const noexcept { return report_; }
  const Netlist& netlist() const noexcept { return *netlist_; }
  const std::vector<HwThreadPlan>& hw_plans() const noexcept { return hw_plans_; }
  const std::vector<SwThreadPlan>& sw_plans() const noexcept { return sw_plans_; }

  const HwThreadPlan& hw_plan(const std::string& thread) const;

  /// Instantiates the full system (memory, MMUs, engines, runtime) on the
  /// given simulator.
  std::unique_ptr<System> elaborate(sim::Simulator& sim) const;

  /// Elaborates against machine-wide shared components (multi-process
  /// over-subscription); `instance` prefixes the system's stat names.
  std::unique_ptr<System> elaborate(sim::Simulator& sim, const SharedSubstrate& shared,
                                    std::string instance) const;

 private:
  friend class SynthesisFlow;
  AppSpec app_;
  PlatformSpec platform_;
  SynthesisOptions options_;
  SynthesisReport report_;
  std::shared_ptr<Netlist> netlist_;  // shared: images are copyable for DSE
  std::vector<HwThreadPlan> hw_plans_;
  std::vector<SwThreadPlan> sw_plans_;
};

class SynthesisFlow {
 public:
  explicit SynthesisFlow(PlatformSpec platform, SynthesisOptions options = {});

  /// Runs all passes. Throws std::invalid_argument on spec errors and
  /// std::runtime_error when the design does not fit (strict mode).
  SystemImage synthesize(const AppSpec& app);

 private:
  void pass_validate(const AppSpec& app) const;
  void pass_partition(const AppSpec& app, SystemImage& image) const;
  void pass_interface_synthesis(const AppSpec& app, SystemImage& image) const;
  void pass_estimate(const AppSpec& app, SystemImage& image) const;
  void pass_address_map(SystemImage& image) const;
  void pass_emit(const AppSpec& app, SystemImage& image) const;

  PlatformSpec platform_;
  SynthesisOptions options_;
};

}  // namespace vmsls::sls

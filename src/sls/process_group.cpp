#include "sls/process_group.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmsls::sls {

ProcessGroup::ProcessGroup(sim::Simulator& sim, const PlatformSpec& platform,
                           const paging::FramePoolConfig& pool_cfg)
    : sim_(sim), platform_(platform) {
  const u64 page = 1ull << platform_.page_table.page_bits;
  pm_ = std::make_unique<mem::PhysicalMemory>(platform_.dram.size_bytes);
  frames_ = std::make_unique<mem::FrameAllocator>(0, platform_.dram.size_bytes / page, page);
  dram_ = std::make_unique<mem::DramModel>(platform_.dram, sim_.stats(), "dram");
  bus_ = std::make_unique<mem::MemoryBus>(sim_, *dram_, platform_.bus, "bus");
  os_ = std::make_unique<rt::OsModel>(sim_, platform_.os, "os");
  pool_ = std::make_unique<paging::FramePool>(sim_, pool_cfg, "pool");
  // One flash part for the whole group: member pagers register as owners
  // of this scheduler instead of instantiating private devices, so their
  // swap traffic queues against each other like bus traffic does.
  if (platform_.pager.swap.shared)
    swap_ = std::make_unique<paging::SwapScheduler>(sim_, platform_.pager.swap, page, "swap");
  // One file tier for the whole group, unconditionally: files are
  // meaningful only machine-wide (the same bytes mapped by every process),
  // and the buffer cache in front of the file device is what turns that
  // sharing into cross-process read hits.
  files_ = std::make_unique<mem::FileStore>(page);
  bcache_ = std::make_unique<paging::BufferCache>(sim_, platform_.pager.bcache, page, "bcache");
  // Resident-frame index for MAP_SHARED pages: the sharing layer above the
  // buffer cache — a hit here costs no device read *and no frame*.
  share_ = std::make_unique<mem::FrameShareIndex>();
  if (platform_.telemetry.period > 0) {
    telemetry_ = std::make_unique<sim::TelemetrySampler>(sim_, platform_.telemetry.period);
    telemetry_->trace_counters = platform_.telemetry.trace_counters;
    telemetry_->add_probe("pool.resident",
                          [this] { return static_cast<double>(pool_->resident_pages()); });
    telemetry_->add_probe("pool.pending",
                          [this] { return static_cast<double>(pool_->pending_pages()); });
    telemetry_->add_probe("frames.free",
                          [this] { return static_cast<double>(frames_->free_frames()); });
    if (swap_ != nullptr) {
      using paging::SwapReqClass;
      telemetry_->add_probe("swap.q_demand_read", [this] {
        return static_cast<double>(swap_->queue_depth_class(SwapReqClass::kDemandRead));
      });
      telemetry_->add_probe("swap.q_demand_write", [this] {
        return static_cast<double>(swap_->queue_depth_class(SwapReqClass::kDemandWrite));
      });
      telemetry_->add_probe("swap.q_prefetch_read", [this] {
        return static_cast<double>(swap_->queue_depth_class(SwapReqClass::kPrefetchRead));
      });
      telemetry_->add_probe("swap.q_writeback", [this] {
        return static_cast<double>(swap_->queue_depth_class(SwapReqClass::kWriteback));
      });
    }
    telemetry_->add_probe("bcache.cached",
                          [this] { return static_cast<double>(bcache_->cached_blocks()); });
    telemetry_->add_probe("bcache.dirty",
                          [this] { return static_cast<double>(bcache_->dirty_blocks()); });
    telemetry_->add_probe("bcache.queue",
                          [this] { return static_cast<double>(bcache_->queue_depth()); });
  }
}

System& ProcessGroup::add_process(const SystemImage& image, const std::string& instance) {
  require(!instance.empty(), "process instance name must be non-empty");
  require(std::find(instances_.begin(), instances_.end(), instance) == instances_.end(),
          "duplicate process instance name '" + instance + "'");
  require(image.platform().page_table.page_bits == platform_.page_table.page_bits,
          "process page size does not match the group substrate");
  SharedSubstrate shared;
  shared.pm = pm_.get();
  shared.frames = frames_.get();
  shared.dram = dram_.get();
  shared.bus = bus_.get();
  shared.os = os_.get();
  shared.pool = pool_.get();
  shared.swap = swap_.get();
  shared.files = files_.get();
  shared.bcache = bcache_.get();
  shared.share = share_.get();
  systems_.push_back(image.elaborate(sim_, shared, instance));
  instances_.push_back(instance);
  System& sys = *systems_.back();
  if (telemetry_ != nullptr) {
    // Per-process pressure columns. Counter/histogram references are
    // registry-stable, and sys outlives the group, so the lambdas are safe.
    const std::string inst = sys.instance();  // includes the trailing '.'
    mem::AddressSpace& as = sys.address_space();
    telemetry_->add_probe(inst + "resident",
                          [&as] { return static_cast<double>(as.resident_pages()); });
    const Counter& faults = sim_.stats().counter(inst + "faults.faults");
    telemetry_->add_rate_probe(inst + "fault_rate",
                               [&faults] { return static_cast<double>(faults.value()); });
    if (paging::Pager* pager = sys.pager(); pager != nullptr) {
      telemetry_->add_probe(inst + "prefetch_acc", [pager] {
        const u64 issued = std::max<u64>(1, pager->prefetches());
        return static_cast<double>(pager->prefetch_useful() + pager->prefetch_late()) /
               static_cast<double>(issued);
      });
    }
  }
  return sys;
}

void ProcessGroup::start_all() {
  for (auto& s : systems_) s->start_all();
  if (telemetry_ != nullptr && !telemetry_->armed()) telemetry_->start();
}

bool ProcessGroup::all_halted() const noexcept {
  for (const auto& s : systems_)
    if (!s->all_halted()) return false;
  return true;
}

Cycles ProcessGroup::run_to_completion(Cycles max_cycles) {
  require(!systems_.empty(), "process group has no processes");
  const Cycles t0 = sim_.now();
  while (!all_halted()) {
    if (!sim_.step()) {
      std::string blocked;
      for (const auto& s : systems_) blocked += s->running_thread_names();
      throw std::runtime_error("deadlock: event queue empty with threads blocked:" + blocked);
    }
    if (sim_.now() - t0 > max_cycles)
      throw std::runtime_error("simulation exceeded " + std::to_string(max_cycles) + " cycles");
  }
  return sim_.now() - t0;
}

Cycles ProcessGroup::drain(Cycles max_cycles) {
  const Cycles t0 = sim_.now();
  while (sim_.step())
    if (sim_.now() - t0 > max_cycles)
      throw std::runtime_error("event queue failed to drain within " +
                               std::to_string(max_cycles) + " cycles");
  return sim_.now() - t0;
}

}  // namespace vmsls::sls

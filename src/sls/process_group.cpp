#include "sls/process_group.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmsls::sls {

ProcessGroup::ProcessGroup(sim::Simulator& sim, const PlatformSpec& platform,
                           const paging::FramePoolConfig& pool_cfg)
    : sim_(sim), platform_(platform) {
  const u64 page = 1ull << platform_.page_table.page_bits;
  pm_ = std::make_unique<mem::PhysicalMemory>(platform_.dram.size_bytes);
  frames_ = std::make_unique<mem::FrameAllocator>(0, platform_.dram.size_bytes / page, page);
  dram_ = std::make_unique<mem::DramModel>(platform_.dram, sim_.stats(), "dram");
  bus_ = std::make_unique<mem::MemoryBus>(sim_, *dram_, platform_.bus, "bus");
  os_ = std::make_unique<rt::OsModel>(sim_, platform_.os, "os");
  pool_ = std::make_unique<paging::FramePool>(sim_, pool_cfg, "pool");
  // One flash part for the whole group: member pagers register as owners
  // of this scheduler instead of instantiating private devices, so their
  // swap traffic queues against each other like bus traffic does.
  if (platform_.pager.swap.shared)
    swap_ = std::make_unique<paging::SwapScheduler>(sim_, platform_.pager.swap, page, "swap");
}

System& ProcessGroup::add_process(const SystemImage& image, const std::string& instance) {
  require(!instance.empty(), "process instance name must be non-empty");
  require(std::find(instances_.begin(), instances_.end(), instance) == instances_.end(),
          "duplicate process instance name '" + instance + "'");
  require(image.platform().page_table.page_bits == platform_.page_table.page_bits,
          "process page size does not match the group substrate");
  SharedSubstrate shared;
  shared.pm = pm_.get();
  shared.frames = frames_.get();
  shared.dram = dram_.get();
  shared.bus = bus_.get();
  shared.os = os_.get();
  shared.pool = pool_.get();
  shared.swap = swap_.get();
  systems_.push_back(image.elaborate(sim_, shared, instance));
  instances_.push_back(instance);
  return *systems_.back();
}

void ProcessGroup::start_all() {
  for (auto& s : systems_) s->start_all();
}

bool ProcessGroup::all_halted() const noexcept {
  for (const auto& s : systems_)
    if (!s->all_halted()) return false;
  return true;
}

Cycles ProcessGroup::run_to_completion(Cycles max_cycles) {
  require(!systems_.empty(), "process group has no processes");
  const Cycles t0 = sim_.now();
  while (!all_halted()) {
    if (!sim_.step()) {
      std::string blocked;
      for (const auto& s : systems_) blocked += s->running_thread_names();
      throw std::runtime_error("deadlock: event queue empty with threads blocked:" + blocked);
    }
    if (sim_.now() - t0 > max_cycles)
      throw std::runtime_error("simulation exceeded " + std::to_string(max_cycles) + " cycles");
  }
  return sim_.now() - t0;
}

}  // namespace vmsls::sls

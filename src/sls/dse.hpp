// Design-space exploration over interface-synthesis parameters.
//
// The flow's main tunable is each thread's TLB geometry: more entries cost
// fabric resources but cut miss/walk traffic. The explorer synthesizes one
// image per candidate, checks the resource budget, and (optionally) scores
// candidates by running the elaborated system — the measure-everything
// approach a simulator substrate makes cheap.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sls/synthesis.hpp"

namespace vmsls::sls {

struct DseCandidate {
  unsigned tlb_entries = 0;
  Resources total{};
  double resource_utilization = 0.0;
  bool fits = false;
  bool measured = false;
  Cycles cycles = 0;  // valid when measured
};

struct DseResult {
  std::vector<DseCandidate> candidates;
  /// Index into `candidates` of the chosen point: the fastest fitting
  /// candidate when measured, otherwise the largest fitting TLB (monotone
  /// miss-rate assumption). -1 if nothing fits.
  int best = -1;
};

class DesignSpaceExplorer {
 public:
  /// Evaluator: builds a simulator, elaborates the image, runs the
  /// workload, and returns the cycle count to minimize.
  ///
  /// Must be safe to call concurrently from several host threads when
  /// exploration is parallel (threads > 1): evaluate only through state
  /// local to the call — elaborate the image onto a fresh Simulator, as
  /// every existing evaluator already does — and the sweep stays
  /// deterministic, because each candidate's simulation is fully isolated.
  using Evaluator = std::function<Cycles(const SystemImage&)>;

  explicit DesignSpaceExplorer(PlatformSpec platform, SynthesisOptions options = {});

  /// Host threads used to score candidates. 1 (the default) evaluates on
  /// the calling thread; N > 1 fans candidates out over a worker pool.
  /// Synthesis itself stays serial (it is microseconds per candidate), and
  /// results — candidate order, every cycle count, and the chosen best
  /// point — are bit-identical to the serial sweep regardless of N.
  void set_threads(unsigned threads) noexcept { threads_ = threads == 0 ? 1 : threads; }
  unsigned threads() const noexcept { return threads_; }

  /// Sweeps `thread`'s TLB size over `entry_candidates`.
  DseResult explore_tlb(const AppSpec& app, const std::string& thread,
                        const std::vector<unsigned>& entry_candidates,
                        const Evaluator& evaluate = nullptr);

 private:
  PlatformSpec platform_;
  SynthesisOptions options_;
  unsigned threads_ = 1;
};

}  // namespace vmsls::sls

// Design-space exploration over interface-synthesis parameters.
//
// The flow's main tunables are each thread's TLB geometry (more entries
// cost fabric resources but cut miss/walk traffic) and — once the platform
// models memory pressure — the pager operating point (frame budget ×
// replacement policy). The explorer synthesizes one image per candidate,
// checks the resource budget, and (optionally) scores candidates by
// running the elaborated system — the measure-everything approach a
// simulator substrate makes cheap. Scoring fans out over a host thread
// pool; results are bit-identical to the serial sweep.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dma/offload.hpp"
#include "mem/paging/replacement.hpp"
#include "mem/paging/swap_device.hpp"
#include "sls/synthesis.hpp"

namespace vmsls::sls {

/// One pager operating point for the pager × TLB grid sweep.
struct PagerCandidate {
  u64 frame_budget = 0;  // 0 = pressure-free (pager inert)
  paging::PolicyKind policy = paging::PolicyKind::kClock;
};

/// One offload operating point for the offload-mode × pager grid: the SVM
/// flow (include_dma = false, virtual addressing) or the copy-based
/// baseline in one of its copy modes (physical addressing, DMA engine +
/// offload driver elaborated).
struct OffloadCandidate {
  bool include_dma = false;
  dma::CopyMode mode = dma::CopyMode::kSgDma;
};

/// One swap I/O operating point for the swap grid: request-queue dispatch
/// policy × swap-in readahead depth.
struct SwapCandidate {
  paging::SwapSchedPolicy sched = paging::SwapSchedPolicy::kFifo;
  unsigned readahead = 0;
};

struct DseCandidate {
  unsigned tlb_entries = 0;
  /// Pager operating point this candidate was synthesized with (the
  /// platform default for plain TLB sweeps).
  u64 frame_budget = 0;
  paging::PolicyKind policy = paging::PolicyKind::kClock;
  /// Offload operating point (explore_offload_pager axis; SVM otherwise).
  bool include_dma = false;
  dma::CopyMode copy_mode = dma::CopyMode::kSgDma;
  /// Swap I/O operating point (explore_swap axis; the platform default
  /// otherwise).
  paging::SwapSchedPolicy swap_sched = paging::SwapSchedPolicy::kFifo;
  unsigned readahead = 0;
  Resources total{};
  double resource_utilization = 0.0;
  bool fits = false;
  bool measured = false;
  Cycles cycles = 0;  // valid when measured
};

struct DseResult {
  std::vector<DseCandidate> candidates;
  /// Index into `candidates` of the chosen point: the fastest fitting
  /// candidate when measured, otherwise the largest fitting TLB (monotone
  /// miss-rate assumption). -1 if nothing fits.
  int best = -1;
};

class DesignSpaceExplorer {
 public:
  /// Evaluator: builds a simulator, elaborates the image, runs the
  /// workload, and returns the cycle count to minimize.
  ///
  /// Must be safe to call concurrently from several host threads when
  /// exploration is parallel (threads > 1): evaluate only through state
  /// local to the call — elaborate the image onto a fresh Simulator, as
  /// every existing evaluator already does — and the sweep stays
  /// deterministic, because each candidate's simulation is fully isolated.
  using Evaluator = std::function<Cycles(const SystemImage&)>;

  explicit DesignSpaceExplorer(PlatformSpec platform, SynthesisOptions options = {});

  /// Host threads used to score candidates. 1 (the default) evaluates on
  /// the calling thread; N > 1 fans candidates out over a worker pool.
  /// Synthesis itself stays serial (it is microseconds per candidate), and
  /// results — candidate order, every cycle count, and the chosen best
  /// point — are bit-identical to the serial sweep regardless of N.
  void set_threads(unsigned threads) noexcept { threads_ = threads == 0 ? 1 : threads; }
  unsigned threads() const noexcept { return threads_; }

  /// Sweeps `thread`'s TLB size over `entry_candidates` at the platform's
  /// configured pager operating point.
  DseResult explore_tlb(const AppSpec& app, const std::string& thread,
                        const std::vector<unsigned>& entry_candidates,
                        const Evaluator& evaluate = nullptr);

  /// Grid sweep: pager operating points × TLB sizes, all candidates
  /// synthesized serially and scored through one thread pool. Candidate
  /// order is pager-major (pager_candidates[0] × every TLB size first).
  DseResult explore_pager_tlb(const AppSpec& app, const std::string& thread,
                              const std::vector<unsigned>& entry_candidates,
                              const std::vector<PagerCandidate>& pager_candidates,
                              const Evaluator& evaluate = nullptr);

  /// Grid sweep: offload modes × pager operating points — the paper's
  /// SVM-vs-DMA axis crossed with the memory-pressure axis. DMA candidates
  /// synthesize `thread` physically addressed with the engine + driver
  /// included (the evaluator drives the copy-in/compute/copy-out flow and
  /// can read the operating point off the image); SVM candidates stay
  /// virtually addressed. Candidate order is offload-major; scoring fans
  /// out over the same thread pool, bit-identical to the serial sweep.
  DseResult explore_offload_pager(const AppSpec& app, const std::string& thread,
                                  const std::vector<OffloadCandidate>& offload_candidates,
                                  const std::vector<PagerCandidate>& pager_candidates,
                                  const Evaluator& evaluate = nullptr);

  /// Grid sweep over the shared-swap subsystem's operating points: dispatch
  /// policy × readahead depth × pager budget point, all scored through the
  /// same thread pool. Candidate order is swap-major (swap_candidates[0] ×
  /// every pager point first); results are bit-identical to the serial
  /// sweep.
  DseResult explore_swap(const AppSpec& app, const std::string& thread,
                         const std::vector<SwapCandidate>& swap_candidates,
                         const std::vector<PagerCandidate>& pager_candidates,
                         const Evaluator& evaluate = nullptr);

 private:
  void score(std::vector<SystemImage>& images, DseResult& result, const Evaluator& evaluate);
  static void pick_best(DseResult& result);

  PlatformSpec platform_;
  SynthesisOptions options_;
  unsigned threads_ = 1;
};

}  // namespace vmsls::sls

// Sharded multi-simulator execution.
//
// Many of the repo's experiments are embarrassingly parallel at the
// *instance* level: every fig12 grid point, DSE candidate, or sweep
// configuration elaborates a complete system onto its own Simulator and
// runs to completion without touching any other instance. The serial
// drivers run those instances back to back; ShardedRunner fans them out
// across a host worker pool instead, one private Simulator per shard, and
// merges the results afterwards.
//
// Determinism contract (the whole point): a shard's simulation consumes no
// input other than its own body, so its cycle count, event count, and
// every stat it records are byte-identical whether it ran alone, serially
// after nine others, or concurrently with them on another host thread.
// Merging is serial and in submission order — the merged registry and the
// per-shard result table are therefore bit-identical for any worker count,
// which tests/sharded_run_test.cpp and the fig12 --shards verification
// pass both hard-gate.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace vmsls::sls {

/// One independent scenario instance. `body` receives a freshly constructed
/// Simulator, elaborates the instance onto it, and drives it to completion
/// (typically via sim.run() or a drain loop). It must not touch state shared
/// with other shards except state it exclusively owns (e.g. its own slot in
/// a caller-side result vector) — that is what keeps N-way runs bit-identical
/// to serial ones.
struct Shard {
  /// Stat namespace: the shard's registry lands in the merged registry under
  /// "<name>." (empty folds entries in unprefixed). Also the row label in
  /// ShardedReport::shards.
  std::string name;
  std::function<void(sim::Simulator&)> body;
};

/// Per-shard outcome, recorded in submission order.
struct ShardResult {
  std::string name;
  Cycles cycles = 0;  ///< sim.now() after the body returned
  u64 events = 0;     ///< events the shard's simulator executed
};

struct ShardedReport {
  std::vector<ShardResult> shards;  ///< submission order, independent of worker count
  /// Every shard's registry merged under its "<name>." prefix — value for
  /// value what one registry would hold had a single driver run all shards.
  StatRegistry stats;
};

class ShardedRunner {
 public:
  /// `workers` host threads execute shards; <= 1 runs them serially on the
  /// calling thread (no thread or atomic traffic).
  explicit ShardedRunner(unsigned workers = 1) { set_workers(workers); }

  void set_workers(unsigned workers) noexcept { workers_ = workers == 0 ? 1 : workers; }
  unsigned workers() const noexcept { return workers_; }

  /// Runs every shard on the pool and merges outcomes in submission order.
  /// A shard body's exception aborts the run (lowest shard index wins, so
  /// the surfaced error is scheduling-independent).
  ShardedReport run(const std::vector<Shard>& shards) const;

  /// Re-runs `shards` serially and hard-compares cycles, events, and the
  /// full merged stat snapshot against `parallel_report`, throwing
  /// std::runtime_error naming the first divergence. The bench drivers'
  /// --shards verification pass.
  void verify_against_serial(const std::vector<Shard>& shards,
                             const ShardedReport& parallel_report) const;

 private:
  unsigned workers_ = 1;
};

}  // namespace vmsls::sls

// Persistence for toolflow and run artifacts.
//
// Writes the synthesis report as markdown and the statistics registry as
// CSV — the artifacts a user archives next to a generated bitstream. The
// bench harness can point these at files to keep machine-readable records
// of every experiment run.
#pragma once

#include <iosfwd>
#include <string>

#include "sls/synthesis.hpp"
#include "util/stats.hpp"

namespace vmsls::sls {

/// Markdown rendering of a synthesis report: summary, per-component
/// resources, address map, and pass timings.
void write_report_markdown(std::ostream& os, const SynthesisReport& report,
                           const std::string& title);

/// CSV of every counter and histogram summary in a registry
/// (`name,value` rows; histograms contribute .count/.mean/.max).
void write_stats_csv(std::ostream& os, const StatRegistry& stats);

/// One-line-per-counter summary of the paging subsystem after a run under
/// memory pressure: faults, evictions, swap-ins/outs, dirty writebacks,
/// mean fault-service time, mean swap-queue wait, and — when readahead ran
/// — the prefetch accuracy counters. Quiet (prints a note) when the
/// registry holds no pager counters — i.e. the system ran without a frame
/// budget.
void write_pager_summary(std::ostream& os, const StatRegistry& stats,
                         const std::string& pager_name = "pager",
                         const std::string& fault_handler_name = "faults");

/// Two-line summary of a swap front end (device + scheduler) after a run:
/// device transfers and bytes, queue-wait and queue-depth moments, and the
/// per-class dispatch counts with writeback starvation-guard promotions.
/// Works for a shared device (`swap_name` = "swap") and a private one
/// ("pager.swap"). Quiet (prints a note) when the registry holds no such
/// counters.
void write_swap_summary(std::ostream& os, const StatRegistry& stats,
                        const std::string& swap_name = "swap");

/// One-line summary of a buffer cache (the file-I/O front end) after a run:
/// hit rate, merged reads, device transfers, flush-daemon and capacity
/// writebacks, and read-wait moments. Works for the group-wide cache
/// (`cache_name` = "bcache") and a private one ("pager.bcache"). Quiet
/// (prints a note) when the registry holds no such counters.
void write_file_cache_summary(std::ostream& os, const StatRegistry& stats,
                              const std::string& cache_name = "bcache");

/// One-line summary of a shared FramePool after a multi-process
/// over-subscription run: pool evictions, cross-process evictions, and
/// auto-budget rebalances. Quiet (prints a note) when the registry holds
/// no pool counters.
void write_frame_pool_summary(std::ostream& os, const StatRegistry& stats,
                              const std::string& pool_name = "pool");

/// Serving-plane summary after a TrafficDriver run: the request ledger
/// (arrivals / admitted / rejected / completed), latency and queue-wait
/// percentiles, and mean service time — the open-system counterpart of the
/// makespan summaries above. Percentiles come from the registry histograms
/// (bucketed, upper-bound approximations); exact values live in the
/// driver's Report. Quiet (prints a note) when the registry holds no
/// counters under `traffic_name`.
void write_serving_summary(std::ostream& os, const StatRegistry& stats,
                           const std::string& traffic_name = "traffic");

/// One-line summary of the copy-based offload driver after a run: copies,
/// bytes moved, pages pinned, pages faulted in during pinning, and the
/// memory-pressure admission counters (pin_stalls = chunks queued behind
/// pin releases, chunked_runs = transfers split to fit the pin quota).
/// Quiet (prints a note) when the registry holds no offload counters.
void write_offload_summary(std::ostream& os, const StatRegistry& stats,
                           const std::string& offload_name = "offload");

/// Convenience file writers; throw std::runtime_error on I/O failure.
void save_report_markdown(const std::string& path, const SynthesisReport& report,
                          const std::string& title);
void save_stats_csv(const std::string& path, const StatRegistry& stats);

}  // namespace vmsls::sls

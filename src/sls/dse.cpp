#include "sls/dse.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/parallel.hpp"

namespace vmsls::sls {

DesignSpaceExplorer::DesignSpaceExplorer(PlatformSpec platform, SynthesisOptions options)
    : platform_(std::move(platform)), options_(options) {
  // Infeasible candidates are data points, not errors, during exploration.
  options_.strict_budget = false;
}

DseResult DesignSpaceExplorer::explore_tlb(const AppSpec& app, const std::string& thread,
                                           const std::vector<unsigned>& entry_candidates,
                                           const Evaluator& evaluate) {
  // A single pager point — the platform's configured operating point — so
  // this stays the plain TLB sweep it always was.
  PagerCandidate base;
  base.frame_budget = platform_.pager.frame_budget;
  base.policy = platform_.pager.policy;
  return explore_pager_tlb(app, thread, entry_candidates, {base}, evaluate);
}

DseResult DesignSpaceExplorer::explore_pager_tlb(const AppSpec& app, const std::string& thread,
                                                 const std::vector<unsigned>& entry_candidates,
                                                 const std::vector<PagerCandidate>& pager_candidates,
                                                 const Evaluator& evaluate) {
  require(!entry_candidates.empty(), "DSE needs at least one TLB candidate");
  require(!pager_candidates.empty(), "DSE needs at least one pager candidate");
  app.thread(thread);  // throws for unknown thread names

  DseResult result;

  // Phase 1 (serial): synthesize every grid point. This is host-microseconds
  // per point; keeping it on one thread keeps SynthesisFlow single-threaded.
  std::vector<SystemImage> images;
  images.reserve(entry_candidates.size() * pager_candidates.size());
  for (const PagerCandidate& pc : pager_candidates) {
    PlatformSpec plat = platform_;
    plat.pager.frame_budget = pc.frame_budget;
    plat.pager.policy = pc.policy;
    SynthesisFlow flow(plat, options_);
    for (unsigned entries : entry_candidates) {
      AppSpec variant = app;
      for (auto& t : variant.threads) {
        if (t.name != thread) continue;
        mem::TlbConfig tlb = t.tlb_override.value_or(platform_.default_tlb);
        tlb.entries = entries;
        tlb.ways = std::min(tlb.ways, entries);
        while (entries % tlb.ways != 0) tlb.ways /= 2;  // keep geometry legal
        t.tlb_override = tlb;
      }

      images.push_back(flow.synthesize(variant));
      DseCandidate cand;
      cand.tlb_entries = entries;
      cand.frame_budget = pc.frame_budget;
      cand.policy = pc.policy;
      cand.total = images.back().report().total;
      cand.resource_utilization = images.back().report().utilization;
      cand.fits = images.back().report().fits_budget;
      result.candidates.push_back(cand);
    }
  }

  score(images, result, evaluate);
  pick_best(result);
  return result;
}

DseResult DesignSpaceExplorer::explore_offload_pager(
    const AppSpec& app, const std::string& thread,
    const std::vector<OffloadCandidate>& offload_candidates,
    const std::vector<PagerCandidate>& pager_candidates, const Evaluator& evaluate) {
  require(!offload_candidates.empty(), "DSE needs at least one offload candidate");
  require(!pager_candidates.empty(), "DSE needs at least one pager candidate");
  app.thread(thread);  // throws for unknown thread names

  DseResult result;

  // Phase 1 (serial): synthesize the offload × pager grid. A DMA point
  // runs the kernel against physical addresses (the copy-based flow), so
  // the target thread's addressing flips per offload candidate.
  std::vector<SystemImage> images;
  images.reserve(offload_candidates.size() * pager_candidates.size());
  for (const OffloadCandidate& oc : offload_candidates) {
    AppSpec variant = app;
    for (auto& t : variant.threads) {
      if (t.name != thread) continue;
      t.addressing = oc.include_dma ? Addressing::kPhysical : Addressing::kVirtual;
    }
    SynthesisOptions opts = options_;
    opts.include_dma = oc.include_dma;
    for (const PagerCandidate& pc : pager_candidates) {
      PlatformSpec plat = platform_;
      plat.pager.frame_budget = pc.frame_budget;
      plat.pager.policy = pc.policy;
      plat.offload.mode = oc.mode;
      SynthesisFlow flow(plat, opts);

      images.push_back(flow.synthesize(variant));
      DseCandidate cand;
      cand.frame_budget = pc.frame_budget;
      cand.policy = pc.policy;
      cand.include_dma = oc.include_dma;
      cand.copy_mode = oc.mode;
      cand.total = images.back().report().total;
      cand.resource_utilization = images.back().report().utilization;
      cand.fits = images.back().report().fits_budget;
      result.candidates.push_back(cand);
    }
  }

  score(images, result, evaluate);
  pick_best(result);
  return result;
}

DseResult DesignSpaceExplorer::explore_swap(const AppSpec& app, const std::string& thread,
                                            const std::vector<SwapCandidate>& swap_candidates,
                                            const std::vector<PagerCandidate>& pager_candidates,
                                            const Evaluator& evaluate) {
  require(!swap_candidates.empty(), "DSE needs at least one swap candidate");
  require(!pager_candidates.empty(), "DSE needs at least one pager candidate");
  app.thread(thread);  // throws for unknown thread names

  DseResult result;

  // Phase 1 (serial): synthesize the swap × pager grid. The swap knobs are
  // runtime configuration, not fabric, so every point reuses the same
  // resource shape — but each still elaborates with its own scheduler
  // policy and readahead depth for scoring.
  std::vector<SystemImage> images;
  images.reserve(swap_candidates.size() * pager_candidates.size());
  for (const SwapCandidate& sc : swap_candidates) {
    for (const PagerCandidate& pc : pager_candidates) {
      PlatformSpec plat = platform_;
      plat.pager.frame_budget = pc.frame_budget;
      plat.pager.policy = pc.policy;
      plat.pager.swap.sched = sc.sched;
      plat.pager.swap.readahead = sc.readahead;
      SynthesisFlow flow(plat, options_);

      images.push_back(flow.synthesize(app));
      DseCandidate cand;
      cand.frame_budget = pc.frame_budget;
      cand.policy = pc.policy;
      cand.swap_sched = sc.sched;
      cand.readahead = sc.readahead;
      cand.total = images.back().report().total;
      cand.resource_utilization = images.back().report().utilization;
      cand.fits = images.back().report().fits_budget;
      result.candidates.push_back(cand);
    }
  }

  score(images, result, evaluate);
  pick_best(result);
  return result;
}

void DesignSpaceExplorer::pick_best(DseResult& result) {
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const auto& c = result.candidates[i];
    if (!c.fits) continue;
    if (result.best < 0) {
      result.best = static_cast<int>(i);
      continue;
    }
    const auto& b = result.candidates[static_cast<std::size_t>(result.best)];
    const bool better = c.measured ? (c.cycles < b.cycles) : (c.tlb_entries > b.tlb_entries);
    if (better) result.best = static_cast<int>(i);
  }
}

// Phase 2 (parallel): score the fitting candidates. Every candidate
// elaborates onto its own Simulator inside `evaluate`, so workers share
// nothing; each writes only its own slot, and the result vector is
// byte-identical to the serial sweep whatever the thread count.
void DesignSpaceExplorer::score(std::vector<SystemImage>& images, DseResult& result,
                                const Evaluator& evaluate) {
  if (!evaluate) return;
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < result.candidates.size(); ++i)
    if (result.candidates[i].fits) work.push_back(i);

  parallel_for(threads_, work.size(), [&](std::size_t j) {
    const std::size_t i = work[j];
    result.candidates[i].cycles = evaluate(images[i]);
    result.candidates[i].measured = true;
  });
}

}  // namespace vmsls::sls

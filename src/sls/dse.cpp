#include "sls/dse.hpp"

#include <algorithm>
#include <stdexcept>

namespace vmsls::sls {

DesignSpaceExplorer::DesignSpaceExplorer(PlatformSpec platform, SynthesisOptions options)
    : platform_(std::move(platform)), options_(options) {
  // Infeasible candidates are data points, not errors, during exploration.
  options_.strict_budget = false;
}

DseResult DesignSpaceExplorer::explore_tlb(const AppSpec& app, const std::string& thread,
                                           const std::vector<unsigned>& entry_candidates,
                                           const Evaluator& evaluate) {
  require(!entry_candidates.empty(), "DSE needs at least one candidate");
  app.thread(thread);  // throws for unknown thread names

  DseResult result;
  SynthesisFlow flow(platform_, options_);

  for (unsigned entries : entry_candidates) {
    AppSpec variant = app;
    for (auto& t : variant.threads) {
      if (t.name != thread) continue;
      mem::TlbConfig tlb = t.tlb_override.value_or(platform_.default_tlb);
      tlb.entries = entries;
      tlb.ways = std::min(tlb.ways, entries);
      while (entries % tlb.ways != 0) tlb.ways /= 2;  // keep geometry legal
      t.tlb_override = tlb;
    }

    const SystemImage image = flow.synthesize(variant);
    DseCandidate cand;
    cand.tlb_entries = entries;
    cand.total = image.report().total;
    cand.resource_utilization = image.report().utilization;
    cand.fits = image.report().fits_budget;
    if (evaluate && cand.fits) {
      cand.cycles = evaluate(image);
      cand.measured = true;
    }
    result.candidates.push_back(cand);
  }

  // Pick the best point.
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const auto& c = result.candidates[i];
    if (!c.fits) continue;
    if (result.best < 0) {
      result.best = static_cast<int>(i);
      continue;
    }
    const auto& b = result.candidates[static_cast<std::size_t>(result.best)];
    const bool better = c.measured ? (c.cycles < b.cycles) : (c.tlb_entries > b.tlb_entries);
    if (better) result.best = static_cast<int>(i);
  }
  return result;
}

}  // namespace vmsls::sls

#include "sls/system.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::sls {

std::unique_ptr<System> SystemImage::elaborate(sim::Simulator& sim) const {
  return std::make_unique<System>(sim, *this);
}

std::unique_ptr<System> SystemImage::elaborate(sim::Simulator& sim, const SharedSubstrate& shared,
                                               std::string instance) const {
  return std::make_unique<System>(sim, *this, shared, std::move(instance));
}

System::System(sim::Simulator& sim, const SystemImage& image) : sim_(sim), image_(image) {
  build(nullptr);
}

System::System(sim::Simulator& sim, const SystemImage& image, const SharedSubstrate& shared,
               std::string instance)
    : sim_(sim), image_(image), inst_(std::move(instance)) {
  require(shared.pm && shared.frames && shared.dram && shared.bus && shared.os,
          "shared substrate must supply pm, frames, dram, bus, and os");
  if (!inst_.empty() && inst_.back() != '.') inst_ += '.';
  build(&shared);
}

void System::build(const SharedSubstrate* shared) {
  const PlatformSpec& plat = image_.platform();
  const AppSpec& app = image_.app();

  // --- memory system: owned when standalone, borrowed when shared ---
  const u64 page = 1ull << plat.page_table.page_bits;
  if (shared != nullptr) {
    pm_ = shared->pm;
    frames_ = shared->frames;
    dram_ = shared->dram;
    bus_ = shared->bus;
    os_ = shared->os;
    pool_ = shared->pool;
    require(frames_->frame_bytes() == page,
            "shared frame allocator page size does not match the platform page size");
  } else {
    owned_pm_ = std::make_unique<mem::PhysicalMemory>(plat.dram.size_bytes);
    owned_frames_ =
        std::make_unique<mem::FrameAllocator>(0, plat.dram.size_bytes / page, page);
    owned_dram_ = std::make_unique<mem::DramModel>(plat.dram, sim_.stats(), "dram");
    owned_bus_ = std::make_unique<mem::MemoryBus>(sim_, *owned_dram_, plat.bus, "bus");
    pm_ = owned_pm_.get();
    frames_ = owned_frames_.get();
    dram_ = owned_dram_.get();
    bus_ = owned_bus_.get();
  }
  if (shared != nullptr && shared->files != nullptr) {
    files_ = shared->files;
    require(files_->block_bytes() == page,
            "shared file store block size does not match the platform page size");
  } else {
    owned_files_ = std::make_unique<mem::FileStore>(page);
    files_ = owned_files_.get();
  }
  as_ = std::make_unique<mem::AddressSpace>(*pm_, *frames_, plat.page_table);
  if (shared != nullptr && shared->share != nullptr) as_->set_share_index(shared->share);
  process_ = std::make_unique<rt::Process>(sim_, *as_, inst_ + app.name);
  walker_ = std::make_unique<mem::PageWalker>(sim_, *bus_, *pm_, as_->page_table(), plat.walker,
                                              inst_ + "walker");
  process_->register_walker(walker_.get());

  // --- OS model ---
  if (shared == nullptr) {
    owned_os_ = std::make_unique<rt::OsModel>(sim_, plat.os, "os");
    os_ = owned_os_.get();
  }
  faults_ = std::make_unique<rt::FaultHandler>(sim_, *os_, *process_, inst_ + "faults");

  // --- pager daemon (memory-pressure model) ---
  if (plat.pager.frame_budget > 0 || pool_ != nullptr) {
    // A substrate-supplied SwapScheduler shares one flash part across all
    // member pagers; otherwise the pager owns a private one.
    paging::SwapScheduler* shared_swap = shared != nullptr ? shared->swap : nullptr;
    paging::BufferCache* shared_bcache = shared != nullptr ? shared->bcache : nullptr;
    pager_ = std::make_unique<paging::Pager>(sim_, *process_, plat.pager, inst_ + "pager",
                                             shared_swap, shared_bcache);
    pager_->set_os(os_, plat.os.daemon_service);
    pager_->set_bus(bus_);  // COW page copies charge as bus write bursts
    if (pool_ != nullptr) pool_->attach(*pager_);
    faults_->set_pager(pager_.get());
  }

  // --- application objects ---
  for (const auto& m : app.mailboxes) process_->add_mailbox(m.depth, inst_ + m.name);
  for (const auto& s : app.semaphores) process_->add_semaphore(s.initial, inst_ + s.name);
  for (const auto& b : app.buffers) {
    const VirtAddr va = as_->alloc(b.bytes, page);
    buffers_[b.name] = va;
    if (b.pinned) as_->populate(va, b.bytes);
  }

  // --- baseline DMA components ---
  if (image_.options().include_dma) {
    dma_ = std::make_unique<dma::DmaEngine>(sim_, *bus_, *pm_, plat.dma, inst_ + "dma");
    offload_ = std::make_unique<dma::OffloadDriver>(sim_, *os_, *process_, *dma_, *bus_, *pm_,
                                                    plat.offload, inst_ + "offload");
    // Under memory pressure the driver fault-pins its scatter-gather runs
    // through the pager with budget-aware chunked admission — the wiring
    // that lets the SVM-vs-DMA comparison run in the paging regime.
    offload_->set_pager(pager_.get());
  }

  // --- threads ---
  // Follow the synthesis plans, not the spec's kind marks: the auto
  // partitioner may have demoted hardware candidates to software.
  for (const auto& plan : image_.hw_plans()) build_hw_thread(app.thread(plan.thread), plan);
  for (const auto& plan : image_.sw_plans()) build_sw_thread(app.thread(plan.thread));
}

rt::OsBindings System::make_bindings(const ThreadSpec& spec) const {
  rt::OsBindings b;
  for (const auto& name : spec.mailbox_bindings)
    b.mailboxes.push_back(image_.app().mailbox_index(name));
  for (const auto& name : spec.semaphore_bindings)
    b.semaphores.push_back(image_.app().semaphore_index(name));
  return b;
}

void System::build_hw_thread(const ThreadSpec& spec, const HwThreadPlan& plan) {
  const PlatformSpec& plat = image_.platform();
  HwThread t;

  mem::MmuConfig mmu_cfg;
  mmu_cfg.tlb = plan.tlb;
  mmu_cfg.translation_enabled = (plan.addressing == Addressing::kVirtual);
  mmu_cfg.prefetch_next_page = spec.prefetch_next_page;
  mmu_cfg.ad_tracking = (pager_ != nullptr);  // no consumer, no hit-path PT work
  t.mmu = std::make_unique<mem::Mmu>(sim_, *walker_, mmu_cfg,
                                     inst_ + "hwt." + spec.name + ".mmu", plan.slot);
  t.mmu->set_fault_sink(faults_.get());
  process_->register_mmu(t.mmu.get());

  const unsigned ports = std::max(1u, spec.kernel.iface.mem_ports);
  for (unsigned p = 0; p < ports; ++p) {
    t.ports.push_back(std::make_unique<hwt::HwMemPort>(
        sim_, *t.mmu, *bus_, *pm_, plan.port,
        inst_ + "hwt." + spec.name + ".port" + std::to_string(p)));
    // Under memory pressure, in-flight port accesses pin their pages so
    // victim selection (including another process's, via the pool) never
    // retargets a frame mid-transaction. Physically-addressed ports issue
    // frame numbers, not vpns — pinning those would block the wrong pages.
    if (pager_ != nullptr && plan.addressing == Addressing::kVirtual)
      t.ports.back()->set_address_space(as_.get());
  }

  t.os_port = std::make_unique<rt::DelegateOsPort>(sim_, *os_, *process_,
                                                   inst_ + "hwt." + spec.name + ".osif");
  t.os_port->set_bindings(make_bindings(spec));

  hwt::EngineConfig ecfg;
  ecfg.cost = plat.hw_cost;
  t.engine = std::make_unique<hwt::Engine>(sim_, spec.kernel, ecfg, inst_ + "hwt." + spec.name);
  for (unsigned p = 0; p < ports; ++p) t.engine->attach_mem_port(p, t.ports[p].get());
  t.engine->attach_os_port(t.os_port.get());

  hw_.emplace(spec.name, std::move(t));
}

void System::build_sw_thread(const ThreadSpec& spec) {
  const PlatformSpec& plat = image_.platform();
  SwThread t;

  t.caches = std::make_unique<mem::CacheHierarchy>(sim_, *bus_, plat.cpu.caches,
                                                   inst_ + "swt." + spec.name + ".cache");
  t.port = std::make_unique<cpu::CachedMemPort>(sim_, *as_, *t.caches,
                                                inst_ + "swt." + spec.name + ".port");
  t.os_port = std::make_unique<rt::DirectOsPort>(sim_, plat.os, *process_,
                                                 inst_ + "swt." + spec.name + ".osif");
  t.os_port->set_bindings(make_bindings(spec));

  t.engine = std::make_unique<hwt::Engine>(sim_, spec.kernel, cpu::engine_config(plat.cpu),
                                           inst_ + "swt." + spec.name);
  const unsigned ports = std::max(1u, spec.kernel.iface.mem_ports);
  for (unsigned p = 0; p < ports; ++p) t.engine->attach_mem_port(p, t.port.get());
  t.engine->attach_os_port(t.os_port.get());

  sw_.emplace(spec.name, std::move(t));
}

hwt::Engine& System::engine(const std::string& thread) {
  if (auto it = hw_.find(thread); it != hw_.end()) return *it->second.engine;
  if (auto it = sw_.find(thread); it != sw_.end()) return *it->second.engine;
  throw std::out_of_range("no thread named '" + thread + "'");
}

mem::Mmu& System::mmu(const std::string& thread) {
  auto it = hw_.find(thread);
  if (it == hw_.end()) throw std::out_of_range("no hardware thread named '" + thread + "'");
  return *it->second.mmu;
}

mem::CacheHierarchy& System::caches(const std::string& thread) {
  auto it = sw_.find(thread);
  if (it == sw_.end()) throw std::out_of_range("no software thread named '" + thread + "'");
  return *it->second.caches;
}

dma::DmaEngine& System::dma_engine() {
  if (!dma_) throw std::logic_error("system was synthesized without the DMA engine");
  return *dma_;
}

dma::OffloadDriver& System::offload() {
  if (!offload_) throw std::logic_error("system was synthesized without the offload driver");
  return *offload_;
}

VirtAddr System::buffer(const std::string& name) const {
  auto it = buffers_.find(name);
  if (it == buffers_.end()) throw std::out_of_range("no buffer named '" + name + "'");
  return it->second;
}

void System::start_thread(const std::string& thread) {
  auto& eng = engine(thread);
  ++running_;
  ++started_;
  // A small launch cost: writing the start doorbell via the control bus.
  eng.start([this] { --running_; }, /*start_delay=*/8);
}

void System::start_all() {
  for (const auto& spec : image_.app().threads) start_thread(spec.name);
}

std::string System::running_thread_names() const {
  std::string blocked;
  for (const auto& [name, t] : hw_)
    if (t.engine->running()) blocked += " " + inst_ + name;
  for (const auto& [name, t] : sw_)
    if (t.engine->running()) blocked += " " + inst_ + name;
  return blocked;
}

Cycles System::run_to_completion(Cycles max_cycles) {
  const Cycles t0 = sim_.now();
  while (!all_halted()) {
    if (!sim_.step())
      throw std::runtime_error("deadlock: event queue empty with threads blocked:" +
                               running_thread_names());
    if (sim_.now() - t0 > max_cycles)
      throw std::runtime_error("simulation exceeded " + std::to_string(max_cycles) + " cycles");
  }
  return sim_.now() - t0;
}

}  // namespace vmsls::sls

#include "sls/system.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::sls {

std::unique_ptr<System> SystemImage::elaborate(sim::Simulator& sim) const {
  return std::make_unique<System>(sim, *this);
}

System::System(sim::Simulator& sim, const SystemImage& image) : sim_(sim), image_(image) {
  const PlatformSpec& plat = image_.platform();
  const AppSpec& app = image_.app();

  // --- memory system ---
  pm_ = std::make_unique<mem::PhysicalMemory>(plat.dram.size_bytes);
  const u64 page = 1ull << plat.page_table.page_bits;
  frames_ = std::make_unique<mem::FrameAllocator>(0, plat.dram.size_bytes / page, page);
  dram_ = std::make_unique<mem::DramModel>(plat.dram, sim_.stats(), "dram");
  bus_ = std::make_unique<mem::MemoryBus>(sim_, *dram_, plat.bus, "bus");
  as_ = std::make_unique<mem::AddressSpace>(*pm_, *frames_, plat.page_table);
  process_ = std::make_unique<rt::Process>(sim_, *as_, app.name);
  walker_ = std::make_unique<mem::PageWalker>(sim_, *bus_, *pm_, as_->page_table(), plat.walker,
                                              "walker");
  process_->register_walker(walker_.get());

  // --- OS model ---
  os_ = std::make_unique<rt::OsModel>(sim_, plat.os, "os");
  faults_ = std::make_unique<rt::FaultHandler>(sim_, *os_, *process_, "faults");

  // --- pager daemon (memory-pressure model) ---
  if (plat.pager.frame_budget > 0) {
    // The offload driver snapshots physical addresses for in-flight DMA;
    // without page pinning the pager could evict underneath it. Refuse the
    // combination loudly until pin support lands (see ROADMAP).
    require(!image_.options().include_dma,
            "pager frame budget and the DMA offload baseline cannot be combined yet "
            "(no page pinning)");
    pager_ = std::make_unique<paging::Pager>(sim_, *process_, plat.pager, "pager");
    faults_->set_pager(pager_.get());
  }

  // --- application objects ---
  for (const auto& m : app.mailboxes) process_->add_mailbox(m.depth, m.name);
  for (const auto& s : app.semaphores) process_->add_semaphore(s.initial, s.name);
  for (const auto& b : app.buffers) {
    const VirtAddr va = as_->alloc(b.bytes, page);
    buffers_[b.name] = va;
    if (b.pinned) as_->populate(va, b.bytes);
  }

  // --- baseline DMA components ---
  if (image_.options().include_dma) {
    dma_ = std::make_unique<dma::DmaEngine>(sim_, *bus_, *pm_, dma::DmaConfig{}, "dma");
    offload_ = std::make_unique<dma::OffloadDriver>(sim_, *os_, *process_, *dma_, *bus_, *pm_,
                                                    dma::OffloadConfig{}, "offload");
  }

  // --- threads ---
  // Follow the synthesis plans, not the spec's kind marks: the auto
  // partitioner may have demoted hardware candidates to software.
  for (const auto& plan : image_.hw_plans()) build_hw_thread(app.thread(plan.thread), plan);
  for (const auto& plan : image_.sw_plans()) build_sw_thread(app.thread(plan.thread));
}

rt::OsBindings System::make_bindings(const ThreadSpec& spec) const {
  rt::OsBindings b;
  for (const auto& name : spec.mailbox_bindings)
    b.mailboxes.push_back(image_.app().mailbox_index(name));
  for (const auto& name : spec.semaphore_bindings)
    b.semaphores.push_back(image_.app().semaphore_index(name));
  return b;
}

void System::build_hw_thread(const ThreadSpec& spec, const HwThreadPlan& plan) {
  const PlatformSpec& plat = image_.platform();
  HwThread t;

  mem::MmuConfig mmu_cfg;
  mmu_cfg.tlb = plan.tlb;
  mmu_cfg.translation_enabled = (plan.addressing == Addressing::kVirtual);
  mmu_cfg.prefetch_next_page = spec.prefetch_next_page;
  mmu_cfg.ad_tracking = (pager_ != nullptr);  // no consumer, no hit-path PT work
  t.mmu = std::make_unique<mem::Mmu>(sim_, *walker_, mmu_cfg, "hwt." + spec.name + ".mmu",
                                     plan.slot);
  t.mmu->set_fault_sink(faults_.get());
  process_->register_mmu(t.mmu.get());

  const unsigned ports = std::max(1u, spec.kernel.iface.mem_ports);
  for (unsigned p = 0; p < ports; ++p)
    t.ports.push_back(std::make_unique<hwt::HwMemPort>(
        sim_, *t.mmu, *bus_, *pm_, plan.port,
        "hwt." + spec.name + ".port" + std::to_string(p)));

  t.os_port = std::make_unique<rt::DelegateOsPort>(sim_, *os_, *process_,
                                                   "hwt." + spec.name + ".osif");
  t.os_port->set_bindings(make_bindings(spec));

  hwt::EngineConfig ecfg;
  ecfg.cost = plat.hw_cost;
  t.engine = std::make_unique<hwt::Engine>(sim_, spec.kernel, ecfg, "hwt." + spec.name);
  for (unsigned p = 0; p < ports; ++p) t.engine->attach_mem_port(p, t.ports[p].get());
  t.engine->attach_os_port(t.os_port.get());

  hw_.emplace(spec.name, std::move(t));
}

void System::build_sw_thread(const ThreadSpec& spec) {
  const PlatformSpec& plat = image_.platform();
  SwThread t;

  t.caches = std::make_unique<mem::CacheHierarchy>(sim_, *bus_, plat.cpu.caches,
                                                   "swt." + spec.name + ".cache");
  t.port = std::make_unique<cpu::CachedMemPort>(sim_, *as_, *t.caches,
                                                "swt." + spec.name + ".port");
  t.os_port = std::make_unique<rt::DirectOsPort>(sim_, plat.os, *process_,
                                                 "swt." + spec.name + ".osif");
  t.os_port->set_bindings(make_bindings(spec));

  t.engine = std::make_unique<hwt::Engine>(sim_, spec.kernel, cpu::engine_config(plat.cpu),
                                           "swt." + spec.name);
  const unsigned ports = std::max(1u, spec.kernel.iface.mem_ports);
  for (unsigned p = 0; p < ports; ++p) t.engine->attach_mem_port(p, t.port.get());
  t.engine->attach_os_port(t.os_port.get());

  sw_.emplace(spec.name, std::move(t));
}

hwt::Engine& System::engine(const std::string& thread) {
  if (auto it = hw_.find(thread); it != hw_.end()) return *it->second.engine;
  if (auto it = sw_.find(thread); it != sw_.end()) return *it->second.engine;
  throw std::out_of_range("no thread named '" + thread + "'");
}

mem::Mmu& System::mmu(const std::string& thread) {
  auto it = hw_.find(thread);
  if (it == hw_.end()) throw std::out_of_range("no hardware thread named '" + thread + "'");
  return *it->second.mmu;
}

mem::CacheHierarchy& System::caches(const std::string& thread) {
  auto it = sw_.find(thread);
  if (it == sw_.end()) throw std::out_of_range("no software thread named '" + thread + "'");
  return *it->second.caches;
}

dma::DmaEngine& System::dma_engine() {
  if (!dma_) throw std::logic_error("system was synthesized without the DMA engine");
  return *dma_;
}

dma::OffloadDriver& System::offload() {
  if (!offload_) throw std::logic_error("system was synthesized without the offload driver");
  return *offload_;
}

VirtAddr System::buffer(const std::string& name) const {
  auto it = buffers_.find(name);
  if (it == buffers_.end()) throw std::out_of_range("no buffer named '" + name + "'");
  return it->second;
}

void System::start_thread(const std::string& thread) {
  auto& eng = engine(thread);
  ++running_;
  ++started_;
  // A small launch cost: writing the start doorbell via the control bus.
  eng.start([this] { --running_; }, /*start_delay=*/8);
}

void System::start_all() {
  for (const auto& spec : image_.app().threads) start_thread(spec.name);
}

Cycles System::run_to_completion(Cycles max_cycles) {
  const Cycles t0 = sim_.now();
  while (!all_halted()) {
    if (!sim_.step()) {
      std::string blocked;
      for (const auto& [name, t] : hw_)
        if (t.engine->running()) blocked += " " + name;
      for (const auto& [name, t] : sw_)
        if (t.engine->running()) blocked += " " + name;
      throw std::runtime_error("deadlock: event queue empty with threads blocked:" + blocked);
    }
    if (sim_.now() - t0 > max_cycles)
      throw std::runtime_error("simulation exceeded " + std::to_string(max_cycles) + " cycles");
  }
  return sim_.now() - t0;
}

}  // namespace vmsls::sls

#include "sls/report_writer.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace vmsls::sls {

void write_report_markdown(std::ostream& os, const SynthesisReport& report,
                           const std::string& title) {
  os << "# " << title << "\n\n";
  os << "- hardware threads: " << report.hw_threads << "\n";
  os << "- software threads: " << report.sw_threads << "\n";
  os << "- fits budget: " << (report.fits_budget ? "yes" : "NO") << " (utilization "
     << static_cast<int>(report.utilization * 100.0) << "% of the binding resource)\n";
  os << "- netlist: " << report.netlist_instances << " instances, " << report.netlist_nets
     << " nets\n";
  if (!report.demoted_threads.empty()) {
    os << "- demoted to software:";
    for (const auto& t : report.demoted_threads) os << " " << t;
    os << "\n";
  }

  os << "\n## Resources\n\n| component | LUT | FF | BRAM KB | DSP |\n|---|---|---|---|---|\n";
  for (const auto& [name, r] : report.components)
    os << "| " << name << " | " << r.luts << " | " << r.ffs << " | " << r.bram_kb << " | "
       << r.dsps << " |\n";
  const auto& s = report.static_resources;
  os << "| static (walker+interconnect) | " << s.luts << " | " << s.ffs << " | " << s.bram_kb
     << " | " << s.dsps << " |\n";
  const auto& t = report.total;
  os << "| **total** | " << t.luts << " | " << t.ffs << " | " << t.bram_kb << " | " << t.dsps
     << " |\n";

  os << "\n## Address map\n\n| component | base | size |\n|---|---|---|\n";
  for (const auto& e : report.address_map)
    os << "| " << e.component << " | 0x" << std::hex << e.base << std::dec << " | " << e.size
       << " |\n";

  os << "\n## Pass timings\n\n| pass | microseconds |\n|---|---|\n";
  for (const auto& p : report.pass_timings) os << "| " << p.pass << " | " << p.microseconds
                                               << " |\n";
}

void write_stats_csv(std::ostream& os, const StatRegistry& stats) {
  os << "name,value\n";
  for (const auto& [name, value] : stats.snapshot()) os << name << "," << value << "\n";
}

void write_pager_summary(std::ostream& os, const StatRegistry& stats,
                         const std::string& pager_name,
                         const std::string& fault_handler_name) {
  const auto pager = stats.snapshot_prefix(pager_name + ".");
  if (pager.empty()) {
    os << "pager: inactive (no frame budget configured)\n";
    return;
  }
  const auto at = [&pager, &pager_name](const std::string& key) {
    auto it = pager.find(pager_name + "." + key);
    return it == pager.end() ? 0.0 : it->second;
  };
  os << "pager: evictions=" << at("evictions") << " swap_ins=" << at("swap_ins")
     << " swap_outs=" << at("swap.writes") << " writebacks=" << at("writebacks")
     << " file_reads=" << at("file_reads") << " file_drops=" << at("file_drops")
     << " file_writebacks=" << at("file_writebacks") << " zero_fills=" << at("zero_fills")
     << " reclaims=" << at("reclaims") << " mean_fault_stall=" << at("fault_stall.mean")
     << " p50_fault_stall=" << at("fault_stall.p50")
     << " p95_fault_stall=" << at("fault_stall.p95")
     << " p99_fault_stall=" << at("fault_stall.p99")
     << " fault_stall_overflow=" << at("fault_stall.overflow")
     << " swap_queue_wait=" << at("swap.queue_wait.mean")
     << " faults=" << stats.counter_value(fault_handler_name + ".faults") << "\n";
  if (at("prefetches") > 0) {
    const double useful = at("prefetch_useful");
    const double late = at("prefetch_late");
    const double issued = at("prefetches");
    const double demand = at("swap_ins");
    os << "pager: prefetches=" << issued << " useful=" << useful << " late=" << late
       << " wasted=" << at("prefetch_wasted")
       << " accuracy=" << (issued > 0 ? (useful + late) / issued : 0.0)
       << " coverage=" << (demand + useful + late > 0 ? (useful + late) / (demand + useful + late)
                                                      : 0.0)
       << "\n";
  }
}

void write_swap_summary(std::ostream& os, const StatRegistry& stats,
                        const std::string& swap_name) {
  const auto swap = stats.snapshot_prefix(swap_name + ".");
  if (swap.empty()) {
    os << "swap: inactive (no swap front end named '" << swap_name << "')\n";
    return;
  }
  const auto at = [&swap, &swap_name](const std::string& key) {
    auto it = swap.find(swap_name + "." + key);
    return it == swap.end() ? 0.0 : it->second;
  };
  os << "swap: reads=" << at("reads") << " writes=" << at("writes") << " bytes=" << at("bytes")
     << " queue_wait_mean=" << at("queue_wait.mean") << " queue_wait_max=" << at("queue_wait.max")
     << " queue_wait_p95=" << at("queue_wait.p95") << " queue_wait_p99=" << at("queue_wait.p99")
     << " queue_wait_overflow=" << at("queue_wait.overflow")
     << " queue_depth_mean=" << at("sched.queue_depth.mean")
     << " queue_depth_max=" << at("sched.queue_depth.max") << "\n";
  os << "swap.sched: demand_reads=" << at("sched.demand_reads")
     << " prefetch_reads=" << at("sched.prefetch_reads")
     << " writebacks=" << at("sched.writebacks")
     << " wb_promotions=" << at("sched.wb_promotions") << "\n";
  // Per-class queue waits (the fault-path latency classes): printed only
  // for classes that actually dispatched traffic.
  bool any_class = false;
  std::string class_line = "swap.sched.wait:";
  for (const char* cls : {"demand_read", "demand_write", "prefetch_read", "writeback"}) {
    const std::string key = std::string("sched.wait_") + cls;
    if (at(key + ".count") <= 0) continue;
    any_class = true;
    std::ostringstream part;
    part << " " << cls << "(mean=" << at(key + ".mean") << ",p99=" << at(key + ".p99") << ")";
    class_line += part.str();
  }
  if (any_class) os << class_line << "\n";
}

void write_serving_summary(std::ostream& os, const StatRegistry& stats,
                           const std::string& traffic_name) {
  const auto tr = stats.snapshot_prefix(traffic_name + ".");
  if (tr.empty()) {
    os << "serving: inactive (no traffic driver named '" << traffic_name << "')\n";
    return;
  }
  const auto at = [&tr, &traffic_name](const std::string& key) {
    auto it = tr.find(traffic_name + "." + key);
    return it == tr.end() ? 0.0 : it->second;
  };
  os << "serving: arrivals=" << at("arrivals") << " admitted=" << at("admitted")
     << " rejected=" << at("rejected") << " completed=" << at("completed")
     << " latency_p50=" << at("latency.p50") << " latency_p95=" << at("latency.p95")
     << " latency_p99=" << at("latency.p99") << " latency_max=" << at("latency.max")
     << " queue_wait_mean=" << at("queue_wait.mean")
     << " queue_wait_p99=" << at("queue_wait.p99") << " service_mean=" << at("service.mean")
     << "\n";
}

void write_file_cache_summary(std::ostream& os, const StatRegistry& stats,
                              const std::string& cache_name) {
  const auto bc = stats.snapshot_prefix(cache_name + ".");
  if (bc.empty()) {
    os << "bcache: inactive (no buffer cache named '" << cache_name << "')\n";
    return;
  }
  const auto at = [&bc, &cache_name](const std::string& key) {
    auto it = bc.find(cache_name + "." + key);
    return it == bc.end() ? 0.0 : it->second;
  };
  const double lookups = at("hits") + at("misses");
  os << "bcache: hits=" << at("hits") << " misses=" << at("misses")
     << " hit_rate=" << (lookups > 0 ? at("hits") / lookups : 0.0)
     << " merged_reads=" << at("merged_reads") << " device_reads=" << at("reads")
     << " device_writes=" << at("writes") << " flushes=" << at("flushes")
     << " evictions=" << at("evictions") << " read_wait_mean=" << at("read_wait.mean")
     << " read_wait_max=" << at("read_wait.max") << "\n";
}

void write_frame_pool_summary(std::ostream& os, const StatRegistry& stats,
                              const std::string& pool_name) {
  const auto pool = stats.snapshot_prefix(pool_name + ".");
  if (pool.empty()) {
    os << "pool: inactive (no shared frame pool)\n";
    return;
  }
  const auto at = [&pool, &pool_name](const std::string& key) {
    auto it = pool.find(pool_name + "." + key);
    return it == pool.end() ? 0.0 : it->second;
  };
  os << "pool: evictions=" << at("evictions") << " cross_evictions=" << at("cross_evictions")
     << " rebalances=" << at("rebalances") << "\n";
}

void write_offload_summary(std::ostream& os, const StatRegistry& stats,
                           const std::string& offload_name) {
  const auto off = stats.snapshot_prefix(offload_name + ".");
  if (off.empty()) {
    os << "offload: inactive (system synthesized without the DMA baseline)\n";
    return;
  }
  const auto at = [&off, &offload_name](const std::string& key) {
    auto it = off.find(offload_name + "." + key);
    return it == off.end() ? 0.0 : it->second;
  };
  os << "offload: copies=" << at("copies") << " bytes=" << at("bytes")
     << " pages_pinned=" << at("pages_pinned") << " pin_faults=" << at("pin_faults")
     << " pin_stalls=" << at("pin_stalls") << " chunked_runs=" << at("chunked_runs") << "\n";
}

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  return f;
}
}  // namespace

void save_report_markdown(const std::string& path, const SynthesisReport& report,
                          const std::string& title) {
  auto f = open_or_throw(path);
  write_report_markdown(f, report, title);
}

void save_stats_csv(const std::string& path, const StatRegistry& stats) {
  auto f = open_or_throw(path);
  write_stats_csv(f, stats);
}

}  // namespace vmsls::sls

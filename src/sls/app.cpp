#include "sls/app.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::sls {

ThreadSpec& AppSpec::add_hw_thread(std::string thread_name, hwt::Kernel kernel,
                                   std::vector<std::string> mbox_bindings,
                                   std::vector<std::string> sem_bindings) {
  ThreadSpec t;
  t.name = std::move(thread_name);
  t.kind = ThreadKind::kHardware;
  t.kernel = std::move(kernel);
  t.mailbox_bindings = std::move(mbox_bindings);
  t.semaphore_bindings = std::move(sem_bindings);
  threads.push_back(std::move(t));
  return threads.back();
}

ThreadSpec& AppSpec::add_sw_thread(std::string thread_name, hwt::Kernel kernel,
                                   std::vector<std::string> mbox_bindings,
                                   std::vector<std::string> sem_bindings) {
  ThreadSpec& t = add_hw_thread(std::move(thread_name), std::move(kernel),
                                std::move(mbox_bindings), std::move(sem_bindings));
  t.kind = ThreadKind::kSoftware;
  return t;
}

void AppSpec::add_mailbox(std::string mbox_name, unsigned depth) {
  mailboxes.push_back(MailboxSpec{std::move(mbox_name), depth});
}

void AppSpec::add_semaphore(std::string sem_name, u64 initial) {
  semaphores.push_back(SemaphoreSpec{std::move(sem_name), initial});
}

void AppSpec::add_buffer(std::string buffer_name, u64 bytes, bool pinned) {
  buffers.push_back(BufferSpec{std::move(buffer_name), bytes, pinned});
}

unsigned AppSpec::mailbox_index(const std::string& mbox_name) const {
  for (unsigned i = 0; i < mailboxes.size(); ++i)
    if (mailboxes[i].name == mbox_name) return i;
  throw std::out_of_range("app '" + name + "': no mailbox named '" + mbox_name + "'");
}

unsigned AppSpec::semaphore_index(const std::string& sem_name) const {
  for (unsigned i = 0; i < semaphores.size(); ++i)
    if (semaphores[i].name == sem_name) return i;
  throw std::out_of_range("app '" + name + "': no semaphore named '" + sem_name + "'");
}

const ThreadSpec& AppSpec::thread(const std::string& thread_name) const {
  for (const auto& t : threads)
    if (t.name == thread_name) return t;
  throw std::out_of_range("app '" + name + "': no thread named '" + thread_name + "'");
}

unsigned AppSpec::hw_thread_count() const noexcept {
  unsigned n = 0;
  for (const auto& t : threads)
    if (t.kind == ThreadKind::kHardware) ++n;
  return n;
}

unsigned AppSpec::sw_thread_count() const noexcept {
  unsigned n = 0;
  for (const auto& t : threads)
    if (t.kind == ThreadKind::kSoftware) ++n;
  return n;
}

}  // namespace vmsls::sls

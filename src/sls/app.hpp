// Application specification — the input to system-level synthesis.
//
// An application is a set of threads (each backed by a kernel in the IR,
// marked hardware or software), named mailboxes/semaphores connecting
// them, and named shared data buffers in the process address space. The
// thread's kernel refers to mailbox/semaphore *local indices*; the spec
// binds those to the named application objects, exactly as a ReconOS-style
// thread declaration table does.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hwt/hw_port.hpp"
#include "hwt/kernel.hpp"
#include "mem/tlb.hpp"

namespace vmsls::sls {

enum class ThreadKind { kSoftware, kHardware };

/// How a hardware thread addresses memory. kVirtual is the paper's
/// contribution; kPhysical is the conventional pinned-buffer accelerator
/// used by the DMA baseline.
enum class Addressing { kVirtual, kPhysical };

struct ThreadSpec {
  std::string name;
  ThreadKind kind = ThreadKind::kHardware;
  Addressing addressing = Addressing::kVirtual;
  hwt::Kernel kernel;
  std::vector<std::string> mailbox_bindings;   // kernel mbox i -> app mailbox name
  std::vector<std::string> semaphore_bindings;  // kernel sem i -> app semaphore name
  std::optional<mem::TlbConfig> tlb_override;
  std::optional<hwt::HwPortConfig> port_override;

  /// Working-set hint for automatic TLB sizing (bytes the thread touches
  /// repeatedly). Zero = unknown, use platform default geometry.
  u64 footprint_hint_bytes = 0;

  /// Enable the MMU's next-page TLB prefetcher for this thread.
  bool prefetch_next_page = false;
};

struct MailboxSpec {
  std::string name;
  unsigned depth = 16;
};

struct SemaphoreSpec {
  std::string name;
  u64 initial = 0;
};

struct BufferSpec {
  std::string name;
  u64 bytes = 0;
  bool pinned = true;  // eagerly mapped at load time vs demand-paged
};

struct AppSpec {
  std::string name;
  std::vector<ThreadSpec> threads;
  std::vector<MailboxSpec> mailboxes;
  std::vector<SemaphoreSpec> semaphores;
  std::vector<BufferSpec> buffers;

  ThreadSpec& add_hw_thread(std::string thread_name, hwt::Kernel kernel,
                            std::vector<std::string> mbox_bindings = {},
                            std::vector<std::string> sem_bindings = {});
  ThreadSpec& add_sw_thread(std::string thread_name, hwt::Kernel kernel,
                            std::vector<std::string> mbox_bindings = {},
                            std::vector<std::string> sem_bindings = {});
  void add_mailbox(std::string mbox_name, unsigned depth = 16);
  void add_semaphore(std::string sem_name, u64 initial = 0);
  void add_buffer(std::string buffer_name, u64 bytes, bool pinned = true);

  /// Index lookups; throw std::out_of_range for unknown names.
  unsigned mailbox_index(const std::string& mbox_name) const;
  unsigned semaphore_index(const std::string& sem_name) const;
  const ThreadSpec& thread(const std::string& thread_name) const;

  unsigned hw_thread_count() const noexcept;
  unsigned sw_thread_count() const noexcept;
};

}  // namespace vmsls::sls

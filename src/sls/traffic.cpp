#include "sls/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace vmsls::sls {

Cycles TrafficDriver::Report::percentile(const std::vector<Cycles>& values, double q) {
  if (values.empty()) return 0;
  std::vector<Cycles> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest value with at least ceil(q * n) values <= it.
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(clamped * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TrafficDriver::TrafficDriver(ProcessGroup& group, const TrafficConfig& cfg,
                             const std::string& name)
    : sim_(group.simulator()),
      group_(group),
      cfg_(cfg),
      name_(name),
      arrivals_gen_(cfg.arrival),
      arrivals_(sim_.stats().counter(name + ".arrivals")),
      admitted_(sim_.stats().counter(name + ".admitted")),
      rejected_(sim_.stats().counter(name + ".rejected")),
      completed_(sim_.stats().counter(name + ".completed")),
      latency_(sim_.stats().histogram(name + ".latency")),
      queue_wait_(sim_.stats().histogram(name + ".queue_wait")),
      service_(sim_.stats().histogram(name + ".service")) {
  require(cfg_.requests > 0, name_ + ": TrafficConfig::requests must be > 0 for a serving run");
  require(cfg_.episode_touches > 0, name_ + ": episode_touches must be > 0");
  require(cfg_.arena_pages > 0, name_ + ": arena_pages must be > 0");
  require(cfg_.write_ratio >= 0.0 && cfg_.write_ratio <= 1.0,
          name_ + ": write_ratio must lie in [0, 1]");
  require(group_.size() > 0, name_ + ": the process group has no worker processes");

  // Mix parse: comma-separated workload-family names -> episode shapes.
  std::stringstream ss(cfg_.mix);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    if (token == "saxpy" || token == "vecadd" || token == "merge" || token == "conv2d" ||
        token == "spmv") {
      mix_.push_back(Episode::kSweep);
    } else if (token == "matmul") {
      mix_.push_back(Episode::kStrided);
    } else if (token == "hash_join" || token == "histogram") {
      mix_.push_back(Episode::kRandom);
    } else if (token == "pointer_chase" || token == "bfs") {
      mix_.push_back(Episode::kChase);
    } else {
      throw std::invalid_argument(name_ + ": unknown episode pattern '" + token +
                                  "' in TrafficConfig::mix");
    }
  }
  require(!mix_.empty(), name_ + ": TrafficConfig::mix selects no episode patterns");

  page_bytes_ = 1ull << group_.platform().page_table.page_bits;
  trace_track_ = sim_.trace().track(name_);

  // Bind every group process as a serving worker: each gets a fresh arena,
  // reserved lazily so the first episode that touches a page demand-faults
  // it through the zero-fill path — no setup traffic, full pressure.
  workers_.reserve(group_.size());
  for (std::size_t i = 0; i < group_.size(); ++i) {
    System& sys = group_.process(i);
    Worker w;
    w.system = &sys;
    w.pager = sys.pager();
    require(w.pager != nullptr,
            name_ + ": worker process '" + sys.instance() + "' has no pager (serving mode "
            "needs a paging plane — set a frame budget)");
    w.process = &sys.process();
    w.as = &sys.address_space();
    w.arena = w.process->alloc(cfg_.arena_pages * page_bytes_, page_bytes_);
    workers_.push_back(w);
  }
}

std::vector<TrafficDriver::Touch> TrafficDriver::make_episode(u64 id) const {
  const Episode kind = mix_[id % mix_.size()];
  // Per-request stream: f(traffic seed, request id). SplitMix-style mixing
  // keeps neighboring ids decorrelated; Rng reseeds through SplitMix64
  // again, so even seed 0 behaves.
  Rng rng(cfg_.arrival.seed ^ (0x9E3779B97F4A7C15ull * (id + 1)));
  const u64 pages = cfg_.arena_pages;
  std::vector<Touch> out;
  out.reserve(cfg_.episode_touches);
  u64 idx = rng.below(pages);
  const u64 stride = 2 + rng.below(5);
  for (u64 i = 0; i < cfg_.episode_touches; ++i) {
    switch (kind) {
      case Episode::kSweep:
        idx = (idx + 1) % pages;
        break;
      case Episode::kStrided:
        idx = (idx + stride) % pages;
        break;
      case Episode::kRandom:
        idx = rng.below(pages);
        break;
      case Episode::kChase:
        // Dependent chain: the next page is a fixed function of the current
        // one (an LCG walk), the shape of pointer chasing — no lookahead
        // for prefetchers to exploit.
        idx = (idx * 6364136223846793005ull + 1442695040888963407ull) % pages;
        break;
    }
    out.push_back(Touch{idx, rng.chance(cfg_.write_ratio)});
  }
  return out;
}

void TrafficDriver::on_arrival() {
  const u64 id = next_id_++;
  arrivals_.add();
  ++report_.arrivals;
  if (report_.arrivals == 1) first_arrival_ = sim_.now();
  // Schedule the next arrival FIRST: the arrival clock is open-loop and
  // must not shift with admission outcomes or service completions.
  if (next_id_ < cfg_.requests)
    sim_.schedule_in(arrivals_gen_.next_gap(sim_.now()), [this] { on_arrival(); });

  Pending req;
  req.id = id;
  req.arrival = sim_.now();
  req.trace_id = VMSLS_TRACE_NEW_ID(sim_.trace());
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "request", req.trace_id, id);

  // Admission: lowest-indexed idle worker, else the bounded queue, else
  // reject. A worker can only be idle when the queue is empty (completions
  // re-dispatch from the queue in the same cycle), so dispatch-first never
  // reorders around queued requests.
  std::size_t idle = workers_.size();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!workers_[w].busy) {
      idle = w;
      break;
    }
  }
  if (idle < workers_.size() && queue_.empty()) {
    admitted_.add();
    ++report_.admitted;
    dispatch(req, idle);
    return;
  }
  if (queue_.size() < cfg_.queue_capacity) {
    admitted_.add();
    ++report_.admitted;
    VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "queue", req.trace_id, queue_.size());
    queue_.push_back(req);
    report_.peak_queue = std::max<u64>(report_.peak_queue, queue_.size());
    return;
  }
  rejected_.add();
  ++report_.rejected;
  VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "reject", req.trace_id, id);
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "request", req.trace_id);
}

void TrafficDriver::dispatch(const Pending& req, std::size_t worker) {
  Worker& wk = workers_[worker];
  require(!wk.busy, name_ + ": dispatch to a busy worker");
  wk.busy = true;
  ++busy_;
  report_.peak_busy = std::max(report_.peak_busy, busy_);
  const Cycles dispatched = sim_.now();
  queue_wait_.record(dispatched - req.arrival);
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "service", req.trace_id, worker);

  // The episode chain: each touch charges touch_cost compute, then either
  // proceeds synchronously (resident page) or suspends on the worker
  // pager's fault path — fault stalls, swap queue waits, and writebacks
  // all land inside this request's service span.
  struct Chain {
    std::vector<Touch> touches;
    std::size_t pos = 0;
    std::function<void()> next;
  };
  auto st = std::make_shared<Chain>();
  st->touches = make_episode(req.id);
  st->next = [this, st, req, worker, dispatched] {
    if (st->pos == st->touches.size()) {
      complete(req, worker, dispatched);
      return;
    }
    const Touch t = st->touches[st->pos++];
    const VirtAddr va = workers_[worker].arena + t.page * page_bytes_;
    auto access = [this, st, va, t, worker] {
      Worker& w = workers_[worker];
      if (!w.as->is_mapped(va)) {
        w.pager->handle_fault(va, t.is_write, [this, st, va, t, worker] {
          Worker& done = workers_[worker];
          if (!done.as->is_mapped(va)) done.process->map_in(va);
          if (t.is_write) done.as->write_u64(va, st->pos);
          st->next();
        });
        return;
      }
      if (t.is_write)
        w.as->write_u64(va, st->pos);
      else
        (void)w.as->read_u64(va);
      st->next();
    };
    if (cfg_.touch_cost > 0)
      sim_.schedule_in(cfg_.touch_cost, std::move(access));
    else
      sim_.schedule_now(std::move(access));
  };
  st->next();
}

void TrafficDriver::complete(const Pending& req, std::size_t worker, Cycles dispatched) {
  Worker& wk = workers_[worker];
  wk.busy = false;
  --busy_;
  completed_.add();
  ++report_.completed;
  const Cycles now = sim_.now();
  latency_.record(now - req.arrival);
  service_.record(now - dispatched);
  // All three vectors are appended here, in completion order, so index i
  // is one request across them and latency[i] == queue_wait[i] + service[i].
  report_.latency.push_back(now - req.arrival);
  report_.queue_wait.push_back(dispatched - req.arrival);
  report_.service.push_back(now - dispatched);
  last_completion_ = now;
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "service", req.trace_id);
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "request", req.trace_id);
  if (!queue_.empty()) {
    const Pending next_req = queue_.front();
    queue_.pop_front();
    VMSLS_TRACE_END(sim_.trace(), trace_track_, "queue", next_req.trace_id);
    dispatch(next_req, worker);
  }
}

TrafficDriver::Report TrafficDriver::run(Cycles max_cycles) {
  require(!ran_, name_ + ": a TrafficDriver runs once (build a fresh one per run)");
  ran_ = true;
  if (sim::TelemetrySampler* t = group_.telemetry(); t != nullptr && !t->armed()) t->start();
  const Cycles t0 = sim_.now();
  sim_.schedule_in(arrivals_gen_.next_gap(sim_.now()), [this] { on_arrival(); });
  while (sim_.step())
    if (sim_.now() - t0 > max_cycles)
      throw std::runtime_error(name_ + ": serving run exceeded " + std::to_string(max_cycles) +
                               " cycles (arrival rate far beyond sustainable?)");

  // --- request-ledger identity (hard gates) ---
  const auto gate = [this](bool ok, const std::string& what) {
    if (!ok) throw std::runtime_error(name_ + ": ledger violation — " + what);
  };
  gate(report_.arrivals == cfg_.requests, "arrivals != configured requests");
  gate(report_.admitted + report_.rejected == report_.arrivals,
       "admitted + rejected != arrivals");
  gate(report_.completed == report_.admitted, "completed != admitted after drain");
  gate(queue_.empty(), "admission queue not drained");
  gate(busy_ == 0, "workers still in service after drain");
  gate(sim_.idle(), "simulator not idle after drain");
  if (report_.completed > 0) report_.span = last_completion_ - first_arrival_;
  return report_;
}

RateSweepResult sweep_rates(
    const std::vector<Cycles>& mean_gaps, Cycles p99_bound,
    const std::function<TrafficDriver::Report(Cycles mean_gap)>& run_point) {
  if (mean_gaps.empty()) throw std::invalid_argument("sweep_rates: no rate points");
  for (std::size_t i = 1; i < mean_gaps.size(); ++i)
    if (mean_gaps[i] >= mean_gaps[i - 1])
      throw std::invalid_argument(
          "sweep_rates: mean_gaps must be strictly descending (rate ascending)");

  RateSweepResult out;
  for (const Cycles gap : mean_gaps) {
    const TrafficDriver::Report rep = run_point(gap);
    RatePoint pt;
    pt.mean_gap = gap;
    pt.p99 = rep.latency_p(0.99);
    pt.qps_mcycle = rep.qps_mcycle();
    pt.rejected = rep.rejected;
    pt.violated = pt.p99 > p99_bound || pt.rejected > 0;
    out.points.push_back(pt);
    if (pt.violated) {
      if (out.points.size() == 1)
        throw std::runtime_error(
            "sweep_rates: the lowest arrival rate already violates the p99 bound — "
            "no sustainable point exists in this sweep");
      out.saturated = true;
      break;
    }
    out.max_qps_gap = pt.mean_gap;
    out.max_qps_mcycle = pt.qps_mcycle;
    out.max_qps_p99 = pt.p99;
  }
  return out;
}

}  // namespace vmsls::sls

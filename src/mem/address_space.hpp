// Process address space: page tables + frame allocation + backing store.
//
// This is the OS model's functional view of virtual memory. All operations
// here complete in zero simulated time — the *costs* of OS paths (fault
// service, map latency) are charged by the runtime layer when it invokes
// them. The backing store plays the role of file/swap contents: pages that
// are evicted keep their bytes here, and demand-mapping restores them,
// which is how the residency-sweep experiments create cold pages with real
// content.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/backing_file.hpp"
#include "mem/frame_share.hpp"
#include "mem/frames.hpp"
#include "mem/pagetable.hpp"
#include "mem/physmem.hpp"

namespace vmsls::mem {

/// Resolution of a file-backed virtual page: which block of which file the
/// page reads from (and, for shared mappings, writes back to).
struct FilePageRef {
  BackingFile* file = nullptr;
  u64 block = 0;
  bool shared = false;
};

/// Watches residency changes in an address space. The pager daemon uses
/// this to keep its replacement policy in sync with *every* map/unmap —
/// including eager populates at load time and experiment-setup evictions —
/// not just the ones it initiates itself.
class ResidencyObserver {
 public:
  virtual ~ResidencyObserver() = default;
  virtual void on_map(u64 vpn, u64 frame) = 0;
  /// `sharers_left` is the frame's remaining reference count after this
  /// unmap: 0 means the frame was actually reclaimed, >0 means another
  /// mapping (typically in a different address space) still holds it.
  virtual void on_unmap(u64 vpn, bool dirty, u64 frame, u64 sharers_left) = 0;
  /// A COW break replaced this space's mapping of `old_frame` with a
  /// freshly-copied private `new_frame`. Residency is unchanged; only the
  /// frame identity moved.
  virtual void on_cow(u64 vpn, u64 old_frame, u64 new_frame) = 0;
};

class AddressSpace {
 public:
  AddressSpace(PhysicalMemory& pm, FrameAllocator& frames, const PageTableConfig& cfg,
               VirtAddr heap_base = 0x0001'0000);

  PageTable& page_table() noexcept { return pt_; }
  const PageTable& page_table() const noexcept { return pt_; }
  u64 page_bytes() const noexcept { return pt_.page_bytes(); }
  FrameAllocator& frames() noexcept { return frames_; }

  /// Reserves a virtual range (bump allocator); nothing is mapped yet.
  VirtAddr alloc(u64 bytes, u64 align = 16);

  /// mmap-style region: reserves a page-aligned virtual range whose pages
  /// resolve to `file` starting at `offset` (page-aligned, and the file must
  /// cover the whole range). Nothing is mapped — first touch faults the
  /// pages in lazily. `shared` picks MAP_SHARED semantics (dirty pages write
  /// back to the file); private mappings copy-on-evict into the anonymous
  /// backing store instead and the file stays pristine.
  VirtAddr mmap(BackingFile& file, u64 offset, u64 bytes, bool shared);

  /// Retrofits an already-allocated range [va, va+bytes) as file-backed:
  /// current contents (resident frames and saved backing-store copies) are
  /// captured into `file` at `offset`, which becomes the canonical copy.
  /// Used by experiments to turn an elaborated buffer into an mmap'd input
  /// without re-plumbing buffer allocation.
  void bind_file(VirtAddr va, u64 bytes, BackingFile& file, u64 offset, bool shared);

  /// File resolution for a vpn; nullopt for anonymous pages.
  std::optional<FilePageRef> file_page(u64 vpn) const;

  /// Persists a *resident* page's current bytes to where its lifecycle says
  /// they belong: the file block for dirty-shared file pages, the anonymous
  /// backing store otherwise. The pageout daemon calls this before cleaning
  /// a page so a later clean drop loses nothing. No-op if not resident.
  void sync_page(u64 vpn);

  /// Eagerly maps every page of [va, va+bytes) — pinned-buffer semantics.
  void populate(VirtAddr va, u64 bytes);

  /// Demand-maps the page containing `va`: allocates a frame, fills it from
  /// the backing store (or zero), installs the PTE. Returns the frame.
  u64 map_page(VirtAddr va, bool writable = true);

  /// Evicts pages overlapping [va, va+bytes): contents are saved to the
  /// backing store, PTEs invalidated, frames freed. Returns the number of
  /// pages evicted. Callers must shoot down TLBs afterwards.
  u64 evict(VirtAddr va, u64 bytes);

  /// Clones `parent`'s memory image into this (fresh) address space: the
  /// virtual layout (brk, file regions) and backing-store copies are
  /// inherited, and every resident parent page is mapped *by reference* —
  /// MAP_SHARED file pages stay writable (one frame, true sharing), while
  /// anonymous and private-file pages are downgraded to read-only in both
  /// spaces and copy on first write. Returns the number of pages shared.
  /// The caller must shoot down the parent's TLBs afterwards (write
  /// permissions were revoked); Process::fork does this.
  u64 fork_from(AddressSpace& parent);

  /// Outcome of a COW break: `copied` distinguishes a private-copy split
  /// (refcount was > 1 — `frame` is the new private frame) from a simple
  /// write-upgrade of a sole mapping (`frame` unchanged).
  struct CowResult {
    bool copied = false;
    u64 frame = 0;
  };

  /// Resolves a write fault on a read-only mapping: refcount 1 re-enables
  /// write in place; a shared frame is split — allocate, copy the page
  /// bytes, remap writable, drop one reference on the old frame. No-op for
  /// already-writable pages (a racing sharer resolved first). When a copy
  /// happens the caller must shoot down this process's TLBs for the page
  /// (the cached frame number went stale); Process::cow_break does this.
  CowResult cow_resolve(VirtAddr va);

  /// Frame backing a resident vpn; nullopt when not resident.
  std::optional<u64> frame_of(u64 vpn) const {
    const auto pte = pt_.lookup(vpn * page_bytes());
    return pte ? std::optional<u64>(pte->frame) : std::nullopt;
  }

  bool is_mapped(VirtAddr va) const { return pt_.is_mapped(va); }

  /// Functional translation; nullopt when unmapped.
  std::optional<PhysAddr> translate(VirtAddr va) const;

  /// Software (CPU) data access. Touching an unmapped page maps it on
  /// demand, exactly like a software page fault with zero modeled cost.
  void read(VirtAddr va, std::span<u8> out);
  void write(VirtAddr va, std::span<const u8> data);

  template <typename T>
  T read_scalar(VirtAddr va) {
    T v{};
    read(va, std::span<u8>(reinterpret_cast<u8*>(&v), sizeof(T)));
    return v;
  }

  template <typename T>
  void write_scalar(VirtAddr va, T v) {
    write(va, std::span<const u8>(reinterpret_cast<const u8*>(&v), sizeof(T)));
  }

  u64 read_u64(VirtAddr va) { return read_scalar<u64>(va); }
  void write_u64(VirtAddr va, u64 v) { write_scalar<u64>(va, v); }
  u64 read_u32(VirtAddr va) { return read_scalar<u32>(va); }
  void write_u32(VirtAddr va, u32 v) { write_scalar<u32>(va, v); }

  /// Pages currently resident (mapped leaf PTEs created through this API).
  u64 resident_pages() const noexcept { return static_cast<u64>(resident_vpns_.size()); }
  u64 faults_serviced() const noexcept { return demand_maps_; }

  /// Iterates resident virtual page numbers in ascending order.
  void for_each_resident(const std::function<void(u64)>& fn) const {
    for (const u64 vpn : resident_vpns_) fn(vpn);
  }

  /// True when the backing store holds saved contents for the page (it has
  /// been evicted at least once).
  bool has_backing(u64 vpn) const { return backing_.count(vpn) != 0; }

  /// Page-pin refcounts: a hardware port holds a pin across each in-flight
  /// access (translate -> bus completion), and replacement policies skip
  /// pinned pages — the kernel's page-lock-during-I/O discipline. Without
  /// it, a cross-process eviction could retarget the frame underneath a
  /// committed bus transaction. Pins are by vpn and may outlive residency
  /// (a faulting page is pinned before it maps).
  void pin(VirtAddr va);
  void unpin(VirtAddr va);
  bool is_pinned_vpn(u64 vpn) const { return pins_.count(vpn) != 0; }
  u64 pinned_pages() const noexcept { return static_cast<u64>(pins_.size()); }

  /// At most one observer; pass nullptr to detach.
  void set_residency_observer(ResidencyObserver* obs) noexcept { observer_ = obs; }

  /// Machine-wide shared-frame index (one per ProcessGroup / bench rig):
  /// when set, demand maps of MAP_SHARED file pages resolve to the frame
  /// another address space already holds resident instead of filling a
  /// duplicate, and the last sharer's eviction retires the entry. Pass
  /// nullptr to detach.
  void set_share_index(FrameShareIndex* index) noexcept { share_ = index; }
  const FrameShareIndex* share_index() const noexcept { return share_; }

  /// Last-resort reclaim under frame exhaustion: called with the number of
  /// frames needed; returns frames actually freed. map_page retries the
  /// allocation once after invoking it. Pass nullptr (or an empty function)
  /// to detach.
  using ReclaimHook = std::function<u64(u64)>;
  void set_reclaim_hook(ReclaimHook hook) { reclaim_ = std::move(hook); }

 private:
  struct FileRegion {
    u64 first_vpn = 0;
    u64 pages = 0;
    BackingFile* file = nullptr;
    u64 first_block = 0;
    bool shared = false;
  };

  std::vector<u8>& backing_page(u64 vpn);

  PhysicalMemory& pm_;
  FrameAllocator& frames_;
  PageTable pt_;
  VirtAddr brk_;
  std::unordered_map<u64, std::vector<u8>> backing_;  // vpn -> page contents
  std::vector<FileRegion> regions_;                   // sorted by first_vpn, non-overlapping
  std::unordered_map<u64, u32> pins_;                 // vpn -> in-flight access count
  std::set<u64> resident_vpns_;  // ordered: deterministic policy seeding
  u64 demand_maps_ = 0;
  ResidencyObserver* observer_ = nullptr;
  FrameShareIndex* share_ = nullptr;
  ReclaimHook reclaim_;
};

}  // namespace vmsls::mem

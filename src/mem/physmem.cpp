#include "mem/physmem.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vmsls::mem {

PhysicalMemory::PhysicalMemory(u64 size_bytes) : size_(size_bytes) {
  require(size_bytes > 0, "physical memory size must be nonzero");
  require(is_aligned(size_bytes, kChunkBytes), "physical memory size must be 4 KiB aligned");
}

void PhysicalMemory::check_range(PhysAddr addr, u64 bytes) const {
  if (addr + bytes > size_ || addr + bytes < addr)
    throw std::out_of_range("physical access [" + std::to_string(addr) + ", +" +
                            std::to_string(bytes) + ") outside memory of size " +
                            std::to_string(size_));
}

std::vector<u8>& PhysicalMemory::chunk(u64 index) {
  auto& c = chunks_[index];
  if (c.empty()) c.assign(kChunkBytes, 0);
  return c;
}

const std::vector<u8>* PhysicalMemory::find_chunk(u64 index) const {
  auto it = chunks_.find(index);
  return it == chunks_.end() ? nullptr : &it->second;
}

void PhysicalMemory::read(PhysAddr addr, std::span<u8> out) const {
  check_range(addr, out.size());
  u64 done = 0;
  while (done < out.size()) {
    const u64 a = addr + done;
    const u64 off = a % kChunkBytes;
    const u64 n = std::min<u64>(kChunkBytes - off, out.size() - done);
    if (const auto* c = find_chunk(a / kChunkBytes))
      std::memcpy(out.data() + done, c->data() + off, n);
    else
      std::memset(out.data() + done, 0, n);
    done += n;
  }
}

void PhysicalMemory::write(PhysAddr addr, std::span<const u8> data) {
  check_range(addr, data.size());
  u64 done = 0;
  while (done < data.size()) {
    const u64 a = addr + done;
    const u64 off = a % kChunkBytes;
    const u64 n = std::min<u64>(kChunkBytes - off, data.size() - done);
    std::memcpy(chunk(a / kChunkBytes).data() + off, data.data() + done, n);
    done += n;
  }
}

void PhysicalMemory::clear(PhysAddr addr, u64 bytes) {
  check_range(addr, bytes);
  u64 done = 0;
  while (done < bytes) {
    const u64 a = addr + done;
    const u64 off = a % kChunkBytes;
    const u64 n = std::min<u64>(kChunkBytes - off, bytes - done);
    std::memset(chunk(a / kChunkBytes).data() + off, 0, n);
    done += n;
  }
}

}  // namespace vmsls::mem

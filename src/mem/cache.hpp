// CPU-side cache hierarchy (timing model).
//
// The software baselines execute the same kernel IR as the hardware
// threads, but their memory accesses go through an L1/L2 hierarchy instead
// of a TLB + fabric port. Caches are set-associative, write-back,
// write-allocate, true-LRU. Misses and dirty evictions generate real
// traffic on the shared memory bus, so software and hardware threads
// contend for DRAM exactly as they would on a Zynq-class SoC.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/bus.hpp"
#include "sim/simulator.hpp"

namespace vmsls::mem {

struct CacheConfig {
  u64 size_bytes = 32 * KiB;
  unsigned ways = 4;
  unsigned line_bytes = 32;
  Cycles hit_latency = 1;  // in reference (fabric) cycles
};

/// One level of cache: tag array + LRU, no data (contents live in
/// PhysicalMemory). `access` reports hit/miss and any dirty victim.
class CacheLevel {
 public:
  CacheLevel(const CacheConfig& cfg, StatRegistry& stats, std::string name);

  struct Outcome {
    bool hit = false;
    bool writeback = false;
    PhysAddr writeback_addr = 0;
  };

  /// Accesses the line containing `addr`, allocating on miss.
  Outcome access(PhysAddr addr, bool is_write);

  void flush();  // invalidate all (drops dirty state; test helper)

  const CacheConfig& config() const noexcept { return cfg_; }
  u64 hits() const noexcept { return hits_.value(); }
  u64 misses() const noexcept { return misses_.value(); }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    u64 tag = 0;
    u64 lru = 0;
  };

  CacheConfig cfg_;
  unsigned sets_;
  std::vector<Way> ways_;
  u64 tick_ = 0;

  Counter& hits_;
  Counter& misses_;
  Counter& writebacks_;
};

struct CacheHierarchyConfig {
  CacheConfig l1{32 * KiB, 4, 32, 1};
  CacheConfig l2{512 * KiB, 8, 32, 6};
};

/// L1 + L2 in front of the memory bus. Access latency accumulates hit
/// latencies; L2 misses issue line fills on the bus and complete when the
/// fill returns. Dirty evictions are posted writes (fire and forget).
class CacheHierarchy {
 public:
  CacheHierarchy(sim::Simulator& sim, MemoryBus& bus, const CacheHierarchyConfig& cfg,
                 std::string name);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  /// Performs the timing for a CPU access of `bytes` at physical `addr`
  /// (split internally at line boundaries); `done` fires at completion.
  void access(PhysAddr addr, u32 bytes, bool is_write, std::function<void()> done);

  CacheLevel& l1() noexcept { return l1_; }
  CacheLevel& l2() noexcept { return l2_; }

 private:
  struct Walk;  // per-access state machine
  void step(const std::shared_ptr<Walk>& w);

  sim::Simulator& sim_;
  MemoryBus& bus_;
  CacheHierarchyConfig cfg_;
  CacheLevel l1_;
  CacheLevel l2_;
};

}  // namespace vmsls::mem

#include "mem/walker.hpp"

#include <algorithm>
#include <utility>

namespace vmsls::mem {

PageWalker::PageWalker(sim::Simulator& sim, MemoryBus& bus, PhysicalMemory& pm,
                       const PageTable& pt, const WalkerConfig& cfg, std::string name)
    : sim_(sim),
      bus_(bus),
      pm_(pm),
      pt_(pt),
      cfg_(cfg),
      name_(std::move(name)),
      cache_(cfg.walk_cache_enabled ? cfg.walk_cache_entries : 0),
      walks_(sim.stats().counter(name_ + ".walks")),
      faults_(sim.stats().counter(name_ + ".faults")),
      mem_reads_(sim.stats().counter(name_ + ".mem_reads")),
      ad_writebacks_(sim.stats().counter(name_ + ".ad_writebacks")),
      cache_hits_(sim.stats().counter(name_ + ".cache_hits")),
      cache_misses_(sim.stats().counter(name_ + ".cache_misses")),
      walk_latency_(sim.stats().histogram(name_ + ".walk_latency")),
      queue_wait_(sim.stats().histogram(name_ + ".queue_wait")) {
  require(cfg.ports > 0, "walker needs at least one port");
}

u64 PageWalker::cache_tag(VirtAddr va) const noexcept {
  return va >> (pt_.config().page_bits + pt_.index_bits());
}

bool PageWalker::cache_lookup(VirtAddr va, PhysAddr& base) {
  if (cache_.empty() || pt_.levels() < 2) return false;
  const u64 tag = cache_tag(va);
  for (auto& slot : cache_) {
    if (slot.valid && slot.tag == tag) {
      slot.lru = ++cache_tick_;
      base = slot.base;
      return true;
    }
  }
  return false;
}

void PageWalker::cache_fill(VirtAddr va, PhysAddr base) {
  if (cache_.empty() || pt_.levels() < 2) return;
  const u64 tag = cache_tag(va);
  CacheSlot* victim = &cache_.front();
  for (auto& slot : cache_) {
    if (slot.valid && slot.tag == tag) {
      victim = &slot;
      break;
    }
    if (!slot.valid) {
      if (victim->valid) victim = &slot;
    } else if (victim->valid && slot.lru < victim->lru) {
      victim = &slot;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->base = base;
  victim->lru = ++cache_tick_;
}

void PageWalker::flush_cache() {
  for (auto& slot : cache_) slot.valid = false;
}

void PageWalker::note_ad_update(VirtAddr va, bool dirty) {
  if (!pt_.set_accessed_dirty(va, dirty)) return;  // no bit flipped: free
  if (!cfg_.timed_ad_writeback) return;
  ad_writebacks_.add();
  if (const auto leaf = pt_.leaf_addr(va))
    bus_.request(BusRequest{*leaf, 8, /*is_write=*/true, [] {}});
}

void PageWalker::walk(VirtAddr va, std::function<void(WalkResult)> done) {
  queue_.push_back(Job{va, std::move(done), sim_.now()});
  try_start();
}

void PageWalker::try_start() {
  while (active_ < cfg_.ports && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    begin(std::move(job));
  }
}

PageWalker::Walk* PageWalker::acquire_walk() {
  if (walk_free_.empty()) {
    walk_pool_.push_back(std::make_unique<Walk>());
    return walk_pool_.back().get();
  }
  Walk* w = walk_free_.back();
  walk_free_.pop_back();
  return w;
}

void PageWalker::release_walk(Walk* w) noexcept {
  w->done = nullptr;  // drop the closure now; the slot may idle a long time
  walk_free_.push_back(w);
}

void PageWalker::begin(Job job) {
  ++active_;
  queue_wait_.record(sim_.now() - job.enqueued);
  walks_.add();

  Walk* w = acquire_walk();
  w->va = job.va;
  w->done = std::move(job.done);
  w->started = sim_.now();

  PhysAddr cached_base = 0;
  if (cache_lookup(w->va, cached_base)) {
    cache_hits_.add();
    w->level = pt_.levels() - 1;
    w->base = cached_base;
  } else {
    if (!cache_.empty() && pt_.levels() >= 2) cache_misses_.add();
    w->level = 0;
    w->base = pt_.root_addr();
  }
  sim_.schedule_in(cfg_.setup_latency, [this, w] { read_level(w); });
}

void PageWalker::read_level(Walk* w) {
  const PhysAddr pa = pt_.pte_addr(w->base, w->level, w->va);
  mem_reads_.add();
  bus_.request(BusRequest{pa, 8, /*is_write=*/false,
                          [this, w, pa] { on_pte(w, pm_.read_u64(pa)); }});
}

void PageWalker::on_pte(Walk* w, u64 raw) {
  const Pte pte = Pte::decode(raw);
  if (!pte.valid) {
    WalkResult r;
    r.fault = true;
    r.fault_level = w->level;
    finish(w, r);
    return;
  }
  if (w->level + 1 == pt_.levels()) {
    // Leaf. The walker sets the accessed bit on fill — the hardware side of
    // the contract the replacement policies consume — and charges the PTE
    // write-back when the bit flipped (timed_ad_writeback).
    note_ad_update(w->va, /*dirty=*/false);
    // Remember the table it lives in for subsequent same-region walks.
    cache_fill(w->va, w->base);
    WalkResult r;
    r.frame = pte.frame;
    r.writable = pte.writable;
    finish(w, r);
    return;
  }
  w->base = pt_.page_bytes() * pte.frame;
  ++w->level;
  read_level(w);
}

void PageWalker::finish(Walk* w, const WalkResult& r) {
  if (r.fault) faults_.add();
  walk_latency_.record(sim_.now() - w->started);
  --active_;
  auto done = std::move(w->done);
  release_walk(w);  // recycle before the continuation starts new walks
  done(r);
  try_start();
}

}  // namespace vmsls::mem

#include "mem/frames.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vmsls::mem {

FrameAllocator::FrameAllocator(PhysAddr base, u64 frame_count, u64 frame_bytes)
    : base_(base), frame_bytes_(frame_bytes), total_(frame_count), free_count_(frame_count),
      used_(frame_count, false), refs_(frame_count, 0) {
  require(frame_bytes > 0 && is_pow2(frame_bytes), "frame size must be a power of two");
  require(is_aligned(base, frame_bytes), "frame region base must be frame aligned");
  require(frame_count > 0, "frame region must contain frames");
}

u64 FrameAllocator::index_of(u64 frame) const {
  const PhysAddr pa = frame * frame_bytes_;
  require(pa >= base_ && pa < base_ + total_ * frame_bytes_, "frame outside allocator region");
  return (pa - base_) / frame_bytes_;
}

std::optional<u64> FrameAllocator::alloc() {
  if (free_count_ == 0) return std::nullopt;
  for (u64 i = 0; i < total_; ++i) {
    const u64 idx = (scan_hint_ + i) % total_;
    if (!used_[idx]) {
      used_[idx] = true;
      refs_[idx] = 1;
      --free_count_;
      peak_used_ = std::max(peak_used_, total_ - free_count_);
      scan_hint_ = idx + 1;
      return (base_ + idx * frame_bytes_) / frame_bytes_;
    }
  }
  throw std::runtime_error("FrameAllocator: inconsistent free count");
}

std::optional<u64> FrameAllocator::alloc_contiguous(u64 count) {
  require(count > 0, "must allocate at least one frame");
  if (count > free_count_) return std::nullopt;
  u64 run = 0;
  for (u64 idx = 0; idx < total_; ++idx) {
    run = used_[idx] ? 0 : run + 1;
    if (run == count) {
      const u64 first = idx + 1 - count;
      for (u64 j = first; j <= idx; ++j) {
        used_[j] = true;
        refs_[j] = 1;
      }
      free_count_ -= count;
      peak_used_ = std::max(peak_used_, total_ - free_count_);
      return (base_ + first * frame_bytes_) / frame_bytes_;
    }
  }
  return std::nullopt;
}

void FrameAllocator::ref(u64 frame) {
  const u64 idx = index_of(frame);
  require(used_[idx], "ref of an unallocated frame");
  ++refs_[idx];
}

u64 FrameAllocator::free(u64 frame) {
  const u64 idx = index_of(frame);
  require(used_[idx], "double free of physical frame");
  require(refs_[idx] > 0, "frame refcount underflow");
  if (--refs_[idx] > 0) return refs_[idx];
  used_[idx] = false;
  ++free_count_;
  scan_hint_ = idx;
  return 0;
}

void FrameAllocator::free_contiguous(u64 first_frame, u64 count) {
  for (u64 i = 0; i < count; ++i) {
    // Contiguous runs back pinned DMA buffers, which are never shared — a
    // straggling reference here would leave a hole in the run.
    require(refs_[index_of(first_frame + i)] == 1, "freeing a shared frame from a contiguous run");
    free(first_frame + i);
  }
}

bool FrameAllocator::is_allocated(u64 frame) const { return used_[index_of(frame)]; }

u64 FrameAllocator::refcount(u64 frame) const {
  const u64 idx = index_of(frame);
  return used_[idx] ? refs_[idx] : 0;
}

}  // namespace vmsls::mem

// Shared memory interconnect (AXI-HP-like).
//
// All masters — hardware-thread memory ports, the page-table walker, the
// DMA engine, and the CPU cache hierarchy — contend for one address/data
// channel to DRAM. Arbitration is first-come-first-served with deterministic
// tie-breaking (simulator event order). The address/command phase occupies
// the channel for `header_cycles` plus the data beats; the DRAM access
// itself overlaps with subsequent commands (banks permitting), which models
// an outstanding-transaction-capable AXI port.
#pragma once

#include <deque>
#include <string>

#include "mem/dram.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace vmsls::mem {

struct BusConfig {
  unsigned width_bytes = 8;  // data beats per fabric cycle
  Cycles header_cycles = 2;  // command/handshake overhead per transaction
};

/// One memory transaction. `on_done` fires at the completion cycle; the
/// issuer then performs its functional data access against PhysicalMemory.
/// The callback is a sim::EventFn: move-only, with enough inline storage
/// that enqueueing a request never heap-allocates for typical closures.
struct BusRequest {
  PhysAddr addr = 0;
  u32 bytes = 0;
  bool is_write = false;
  sim::EventFn on_done;
};

class MemoryBus {
 public:
  MemoryBus(sim::Simulator& sim, DramModel& dram, const BusConfig& cfg, std::string name);

  MemoryBus(const MemoryBus&) = delete;
  MemoryBus& operator=(const MemoryBus&) = delete;

  void request(BusRequest req);

  /// Cycles the data channel was occupied (for utilization reporting).
  Cycles busy_cycles() const noexcept { return busy_cycles_; }

  const BusConfig& config() const noexcept { return cfg_; }

 private:
  struct Pending {
    BusRequest req;
    Cycles enqueued;
  };

  void pump();

  sim::Simulator& sim_;
  DramModel& dram_;
  BusConfig cfg_;
  std::string name_;
  std::deque<Pending> queue_;
  Cycles channel_free_ = 0;
  bool pump_scheduled_ = false;
  Cycles busy_cycles_ = 0;

  Counter& requests_;
  Counter& read_requests_;
  Counter& write_requests_;
  Counter& bytes_;
  Histogram& wait_hist_;
};

}  // namespace vmsls::mem

// Machine-wide index of resident MAP_SHARED file pages.
//
// One physical frame backs every mapping of a shared file block, however
// many address spaces map it: the first process to fault the block in fills
// a frame and registers it here; later processes resolve their fault to the
// same frame (a "share hit" — no device read, no buffer-cache trip) and
// just take a reference. The last unmapping sharer retires the entry.
//
// The index is functional bookkeeping shared by every AddressSpace of a
// machine (a ProcessGroup or a bench rig); the timing consequences — free
// share-hit faults, one writeback per frame — are charged by the pagers.
#pragma once

#include <optional>
#include <unordered_map>

#include "util/units.hpp"

namespace vmsls::mem {

class FrameShareIndex {
 public:
  /// Frame currently backing (file, block), if any sharer holds it resident.
  std::optional<u64> lookup(u32 file_id, u64 block) const {
    const auto it = frames_.find(pack(file_id, block));
    return it == frames_.end() ? std::nullopt : std::optional<u64>(it->second);
  }

  void insert(u32 file_id, u64 block, u64 frame) { frames_[pack(file_id, block)] = frame; }
  void erase(u32 file_id, u64 block) { frames_.erase(pack(file_id, block)); }

  u64 size() const noexcept { return static_cast<u64>(frames_.size()); }

 private:
  static u64 pack(u32 file_id, u64 block) noexcept {
    return (static_cast<u64>(file_id) << 40) | block;
  }

  std::unordered_map<u64, u64> frames_;
};

}  // namespace vmsls::mem

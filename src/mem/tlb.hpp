// Set-associative translation lookaside buffer.
//
// Each hardware thread's memory port owns one of these (the paper's
// per-thread TLB design point); the shared-TLB configuration of the scaling
// experiment attaches several ports to a single instance. True-LRU
// replacement per set; deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace vmsls::mem {

struct TlbConfig {
  unsigned entries = 16;
  unsigned ways = 4;       // set-associativity (entries/ways sets)
  Cycles hit_latency = 1;  // cycles added to a translated access on a hit
};

struct TlbEntry {
  u64 vpn = 0;
  u64 frame = 0;
  bool writable = false;
};

class Tlb {
 public:
  Tlb(const TlbConfig& cfg, StatRegistry& stats, std::string name);

  const TlbConfig& config() const noexcept { return cfg_; }

  /// Looks up a virtual page number. Counts a hit or a miss.
  std::optional<TlbEntry> lookup(u64 vpn);

  /// Probe without touching statistics or LRU (for tests/introspection).
  std::optional<TlbEntry> peek(u64 vpn) const;

  void insert(u64 vpn, u64 frame, bool writable);

  /// Invalidates a single translation if present (TLB shootdown).
  void invalidate(u64 vpn);

  /// Invalidates everything (address-space-wide shootdown).
  void flush();

  u64 hits() const noexcept { return hits_.value(); }
  u64 misses() const noexcept { return misses_.value(); }
  double hit_rate() const noexcept;

 private:
  struct Way {
    bool valid = false;
    TlbEntry entry;
    u64 lru = 0;  // larger = more recently used
  };

  // Set selection is on every translation's critical path; power-of-two
  // geometries (all shipped configs) index with a mask instead of a divide.
  // Both forms compute the same set, so results are unchanged either way.
  unsigned set_of(u64 vpn) const noexcept {
    return set_mask_ != 0 ? static_cast<unsigned>(vpn & set_mask_)
                          : static_cast<unsigned>(vpn % sets_);
  }

  TlbConfig cfg_;
  unsigned sets_;
  u64 set_mask_ = 0;  // sets_ - 1 when sets_ is a power of two, else 0
  std::vector<Way> ways_;  // sets_ x cfg_.ways, row-major
  u64 tick_ = 0;

  Counter& hits_;
  Counter& misses_;
  Counter& evictions_;
  Counter& flushes_;
};

}  // namespace vmsls::mem

#include "mem/paging/buffer_cache.hpp"

#include <algorithm>
#include <utility>

#include "sim/trace.hpp"
#include "util/log.hpp"

namespace vmsls::paging {

BufferCache::BufferCache(sim::Simulator& sim, const BufferCacheConfig& cfg, u64 block_bytes,
                         std::string name)
    : sim_(sim),
      cfg_(cfg),
      block_bytes_(block_bytes),
      name_(std::move(name)),
      hits_(sim.stats().counter(name_ + ".hits")),
      misses_(sim.stats().counter(name_ + ".misses")),
      merged_(sim.stats().counter(name_ + ".merged_reads")),
      reads_(sim.stats().counter(name_ + ".reads")),
      writes_(sim.stats().counter(name_ + ".writes")),
      flushes_(sim.stats().counter(name_ + ".flushes")),
      evictions_(sim.stats().counter(name_ + ".evictions")),
      read_wait_(sim.stats().histogram(name_ + ".read_wait")) {
  require(block_bytes_ > 0, name_ + ": block size must be non-zero");
  trace_track_ = sim_.trace().track(name_);
}

unsigned BufferCache::register_client(const std::string& client_name) {
  Client c;
  c.name = client_name;
  c.hits = &sim_.stats().counter(client_name + ".file_hits");
  c.misses = &sim_.stats().counter(client_name + ".file_misses");
  clients_.push_back(std::move(c));
  return static_cast<unsigned>(clients_.size() - 1);
}

bool BufferCache::block_dirty(u32 file, u64 block) const {
  auto it = blocks_.find(pack(file, block));
  return it != blocks_.end() && it->second.dirty;
}

u64 BufferCache::client_hits(unsigned client) const {
  return clients_.at(client).hits->value();
}

u64 BufferCache::client_misses(unsigned client) const {
  return clients_.at(client).misses->value();
}

void BufferCache::touch(Entry& e) { lru_.splice(lru_.begin(), lru_, e.lru); }

void BufferCache::insert_block(u64 key, bool dirty) {
  if (cfg_.capacity_blocks == 0) return;  // uncached mode: timing only
  if (auto it = blocks_.find(key); it != blocks_.end()) {
    // Already present (a write raced a read of the same block, or a merged
    // read landed behind a write-allocate): keep the dirtier state.
    if (dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++dirty_;
    }
    touch(it->second);
  } else {
    lru_.push_front(key);
    blocks_.emplace(key, Entry{lru_.begin(), dirty});
    if (dirty) ++dirty_;
    while (blocks_.size() > cfg_.capacity_blocks) {
      const u64 victim = lru_.back();
      auto vit = blocks_.find(victim);
      evictions_.add();
      if (vit->second.dirty) {
        --dirty_;
        Request wb;
        wb.is_read = false;
        wb.key = victim;
        wb.enqueued = sim_.now();
        enqueue(std::move(wb));
      }
      lru_.pop_back();
      blocks_.erase(vit);
    }
  }
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "cached",
                      static_cast<double>(blocks_.size()));
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "dirty", static_cast<double>(dirty_));
}

void BufferCache::read(unsigned client, u32 file, u64 block, sim::EventFn done, u64 trace_id) {
  const u64 key = pack(file, block);
  if (auto it = blocks_.find(key); it != blocks_.end()) {
    // Hit: zero simulated time, synchronous completion — the device is
    // skipped the way a TLB hit skips the walker.
    hits_.add();
    clients_.at(client).hits->add();
    touch(it->second);
    VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "hit", trace_id, key);
    done();
    return;
  }
  misses_.add();
  clients_.at(client).misses->add();
  // Merge onto an in-flight or queued read of the same block: one device
  // operation serves every waiter (the buffer-lock wait, cross-process).
  if (in_flight_ && inflight_req_.is_read && inflight_req_.key == key) {
    merged_.add();
    VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "merge", trace_id, key);
    inflight_req_.dones.push_back(std::move(done));
    return;
  }
  for (auto& r : queue_) {
    if (r.is_read && r.key == key) {
      merged_.add();
      VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "merge", trace_id, key);
      r.dones.push_back(std::move(done));
      return;
    }
  }
  Request req;
  req.is_read = true;
  req.key = key;
  req.enqueued = sim_.now();
  req.trace_id = trace_id;
  req.dones.push_back(std::move(done));
  enqueue(std::move(req));
}

void BufferCache::write(unsigned client, u32 file, u64 block, u64 trace_id) {
  (void)client;  // writes are absorbed; attribution happens at the pager
  const u64 key = pack(file, block);
  VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "dirtied", trace_id, key);
  if (cfg_.capacity_blocks == 0) {
    // Uncached: the block writes straight through as a background device
    // operation (still never blocking the caller).
    Request wb;
    wb.is_read = false;
    wb.key = key;
    wb.enqueued = sim_.now();
    wb.trace_id = trace_id;
    enqueue(std::move(wb));
    return;
  }
  if (auto it = blocks_.find(key); it != blocks_.end()) {
    if (!it->second.dirty) {
      it->second.dirty = true;
      ++dirty_;
    }
    touch(it->second);
    VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "dirty", static_cast<double>(dirty_));
  } else {
    // Write-allocate without a read: a page writeback overwrites the whole
    // block, so there is nothing to fetch.
    insert_block(key, /*dirty=*/true);
  }
  arm_flush_daemon();
}

void BufferCache::enqueue(Request req) {
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "queue", req.trace_id, req.key);
  queue_.push_back(std::move(req));
  pump();
}

void BufferCache::pump() {
  if (in_flight_ || queue_.empty()) return;
  // Demand reads dispatch ahead of background writes, under the bounded
  // bypass guard — the SwapScheduler's priority rule with two classes.
  std::size_t pick = 0;
  if (!queue_.front().is_read && reads_bypassed_ < cfg_.write_starvation_limit) {
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i].is_read) {
        pick = i;
        break;
      }
    }
  }
  if (pick != 0) {
    ++reads_bypassed_;
  } else {
    reads_bypassed_ = 0;
  }
  Request req = std::move(queue_[pick]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "queue", req.trace_id, req.key);
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "io", req.trace_id, req.key);
  const Cycles access = req.is_read ? cfg_.read_latency : cfg_.write_latency;
  const Cycles duration = access + block_bytes_ / std::max(1u, cfg_.bytes_per_cycle);
  if (req.is_read) {
    reads_.add();
    read_wait_.record(sim_.now() - req.enqueued);
  } else {
    writes_.add();
  }
  in_flight_ = true;
  inflight_req_ = std::move(req);
  sim_.schedule_in(duration, [this] {
    Request done = std::move(inflight_req_);
    inflight_req_ = Request{};
    in_flight_ = false;
    complete(std::move(done));
    pump();
  });
}

void BufferCache::complete(Request req) {
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "io", req.trace_id, req.key);
  if (req.is_read) insert_block(req.key, /*dirty=*/false);
  for (auto& d : req.dones) d();
}

// --- flush daemon ----------------------------------------------------------
//
// Periodic, batch-bounded background cleaning, activity-gated the same way
// as the pager daemons: armed by the first dirty block, re-armed while dirty
// blocks remain, disarmed when the cache is clean — so an idle simulation
// quiesces and the event queue drains.

void BufferCache::arm_flush_daemon() {
  if (cfg_.flush_interval == 0 || flush_armed_ || dirty_ == 0) return;
  flush_armed_ = true;
  sim_.schedule_in(cfg_.flush_interval, [this] { flush_tick(); });
}

void BufferCache::flush_tick() {
  flush_armed_ = false;
  if (dirty_ == 0) return;
  if (busy()) {
    // Yield to demand traffic: retry the whole batch next period.
    flush_armed_ = true;
    sim_.schedule_in(cfg_.flush_interval, [this] { flush_tick(); });
    return;
  }
  // Clean coldest-first (LRU back): those blocks are the next capacity
  // victims, and a clean victim frees for nothing.
  u64 cleaned = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend() && cleaned < cfg_.flush_batch; ++it) {
    Entry& e = blocks_.at(*it);
    if (!e.dirty) continue;
    e.dirty = false;
    --dirty_;
    flushes_.add();
    ++cleaned;
    Request wb;
    wb.is_read = false;
    wb.key = *it;
    wb.enqueued = sim_.now();
    enqueue(std::move(wb));
  }
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "dirty", static_cast<double>(dirty_));
  arm_flush_daemon();
}

}  // namespace vmsls::paging

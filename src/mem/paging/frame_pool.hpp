// Shared physical-frame arbiter for multi-process over-subscription.
//
// Several processes — each with its own address space, pager daemon, and
// swap device — contend for one physical frame pool. The pool supports two
// budget regimes:
//
//   kPerProcess — every pager enforces its own frame budget on its fault
//                 path (the PR 1 model); the pool only aggregates residency
//                 and, with auto_budget, re-divides the total budget between
//                 processes in proportion to their estimated working sets.
//   kGlobal     — one machine-wide budget. A faulting pager asks the pool
//                 for victims, and the global CLOCK / aging-LRU sweep is
//                 free to nominate *another process's* page; the victim is
//                 evicted through its owner's Process (TLB shootdown and
//                 walk-cache flush invariants preserved) and a dirty victim
//                 pays writeback on its owner's swap device.
//
// Victim bookkeeping reuses the pager's ReplacementPolicy implementations:
// the pool packs (member id, vpn) into the policy's opaque 64-bit keys, so
// the exact CLOCK ring that sweeps one process sweeps all of them — and a
// single-member global pool is cycle-identical to a per-process budget of
// the same size.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mem/paging/replacement.hpp"
#include "sim/simulator.hpp"

namespace vmsls::paging {

class Pager;

enum class BudgetMode { kPerProcess, kGlobal };

const char* budget_mode_name(BudgetMode mode) noexcept;

struct FramePoolConfig {
  BudgetMode mode = BudgetMode::kPerProcess;
  /// Aggregate data-page budget. In kGlobal mode this is the machine-wide
  /// cap the sweep enforces; in kPerProcess mode it is the budget that
  /// auto_budget re-divides between members. 0 = unlimited (pool tracks
  /// residency but never forces eviction).
  u64 total_frames = 0;
  /// Global sweep policy (kGlobal mode victim selection).
  PolicyKind policy = PolicyKind::kClock;
  u64 policy_seed = 1;
  /// Re-divide total_frames between members after each working-set sweep,
  /// proportional to the estimated working sets (kPerProcess mode only).
  bool auto_budget = false;
  /// Floor for auto-sized per-process budgets.
  u64 min_budget = 2;
};

class FramePool {
 public:
  struct Victim {
    Pager* owner = nullptr;
    u64 vpn = 0;
  };

  FramePool(sim::Simulator& sim, const FramePoolConfig& cfg, std::string name = "pool");

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  const FramePoolConfig& config() const noexcept { return cfg_; }

  /// Registers a pager with the pool (and the pool with the pager). Pages
  /// already resident in the pager's address space are seeded into the
  /// global sweep. Member order is attach order — deterministic.
  void attach(Pager& pager);

  /// Unregisters; the member's pages leave the global sweep.
  void detach(Pager& pager);

  // --- residency accounting (forwarded by member pagers) ---
  void note_map(const Pager& pager, u64 vpn);
  void note_unmap(const Pager& pager, u64 vpn);
  void note_pending(i64 delta);

  /// A member finished a working-set sweep: with auto_budget, re-divide
  /// total_frames between members proportional to their estimates.
  void note_ws_update();

  /// kGlobal mode: aggregate residency (plus in-flight fault reservations)
  /// exceeds the machine-wide budget.
  bool over_budget() const noexcept;

  /// True when aggregate residency crossed `pct` percent of the budget —
  /// the pageout daemon's pressure signal.
  bool over_watermark(u64 pct) const noexcept;

  /// Nominates the next victim across every member (global sweep). The
  /// caller evicts through the owner; eviction feeds back via note_unmap.
  std::optional<Victim> pick_victim();

  /// Caller reports the eviction it performed so cross-process pressure is
  /// visible in the stats ("pool.cross_evictions"). `trace_id` is the
  /// asking fault's causal id (an "evict" instant lands on the pool track).
  void record_eviction(const Pager& asking, const Pager& owner, u64 trace_id = 0);

  u64 members() const noexcept;
  u64 resident_pages() const noexcept { return resident_; }
  /// High-water mark of aggregate residency — the budget-invariant probe
  /// (never exceeds total_frames in kGlobal mode once enforcement runs).
  u64 peak_resident_pages() const noexcept { return peak_resident_; }

  /// Restarts the high-water mark from current residency. Experiment
  /// harnesses call this after setup traffic (eager data loading bypasses
  /// the fault path and legitimately overshoots the budget).
  void reset_peak_residency() noexcept { peak_resident_ = resident_; }
  u64 pending_pages() const noexcept { return pending_; }
  u64 budget() const noexcept { return cfg_.total_frames; }
  u64 evictions() const noexcept { return evictions_.value(); }
  u64 cross_evictions() const noexcept { return cross_evictions_.value(); }
  u64 rebalances() const noexcept { return rebalances_.value(); }

 private:
  static constexpr unsigned kMemberShift = 44;  // vpns fit far below 2^44

  u64 pack(u64 member, u64 vpn) const;
  unsigned member_id(const Pager& pager) const;

  sim::Simulator& sim_;
  FramePoolConfig cfg_;
  std::string name_;
  sim::TraceTrack trace_track_ = 0;
  std::vector<Pager*> members_;  // index = member id; nullptr after detach
  std::unique_ptr<ReplacementPolicy> policy_;
  u64 resident_ = 0;
  u64 pending_ = 0;
  u64 peak_resident_ = 0;

  Counter& evictions_;
  Counter& cross_evictions_;
  Counter& rebalances_;
};

}  // namespace vmsls::paging

// Shared physical-frame arbiter for multi-process over-subscription.
//
// Several processes — each with its own address space, pager daemon, and
// swap device — contend for one physical frame pool. The pool supports two
// budget regimes:
//
//   kPerProcess — every pager enforces its own frame budget on its fault
//                 path (the PR 1 model); the pool only aggregates residency
//                 and, with auto_budget, re-divides the total budget between
//                 processes in proportion to their estimated working sets.
//   kGlobal     — one machine-wide budget. A faulting pager asks the pool
//                 for victims, and the global CLOCK / aging-LRU sweep is
//                 free to nominate *another process's* page; the victim is
//                 evicted through its owner's Process (TLB shootdown and
//                 walk-cache flush invariants preserved) and a dirty victim
//                 pays writeback on its owner's swap device.
//
// Victim bookkeeping reuses the pager's ReplacementPolicy implementations
// over *frame numbers*: each frame carries an owner-set of (member, vpn)
// mappings, so a frame shared by N forked processes occupies one slot in
// the CLOCK ring, one unit of budget, and one victim nomination — eviction
// fans out one shootdown per sharer and the probes aggregate across the
// owner-set (a pin held by *any* sharer protects the frame; the accessed
// bit is the OR over every sharer's PTE). A single-member pool with
// unshared frames is cycle-identical to a per-process budget of the same
// size.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/paging/replacement.hpp"
#include "sim/simulator.hpp"

namespace vmsls::paging {

class Pager;

enum class BudgetMode { kPerProcess, kGlobal };

const char* budget_mode_name(BudgetMode mode) noexcept;

struct FramePoolConfig {
  BudgetMode mode = BudgetMode::kPerProcess;
  /// Aggregate data-page budget. In kGlobal mode this is the machine-wide
  /// cap the sweep enforces; in kPerProcess mode it is the budget that
  /// auto_budget re-divides between members. 0 = unlimited (pool tracks
  /// residency but never forces eviction).
  u64 total_frames = 0;
  /// Global sweep policy (kGlobal mode victim selection).
  PolicyKind policy = PolicyKind::kClock;
  u64 policy_seed = 1;
  /// Re-divide total_frames between members after each working-set sweep,
  /// proportional to the estimated working sets (kPerProcess mode only).
  bool auto_budget = false;
  /// Floor for auto-sized per-process budgets.
  u64 min_budget = 2;
};

class FramePool {
 public:
  /// One mapping of a frame: the owning pager and the vpn it maps there.
  using Sharer = std::pair<Pager*, u64>;

  /// A nominated victim *frame* and every mapping it backs (attach/map
  /// order — deterministic). Freeing the frame means evicting all of them.
  struct Victim {
    u64 frame = 0;
    std::vector<Sharer> sharers;
  };

  FramePool(sim::Simulator& sim, const FramePoolConfig& cfg, std::string name = "pool");

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  const FramePoolConfig& config() const noexcept { return cfg_; }

  /// Registers a pager with the pool (and the pool with the pager). Pages
  /// already resident in the pager's address space are seeded into the
  /// global sweep. Member order is attach order — deterministic.
  void attach(Pager& pager);

  /// Unregisters; the member's pages leave the global sweep.
  void detach(Pager& pager);

  // --- residency accounting (forwarded by member pagers) ---
  void note_map(Pager& pager, u64 vpn, u64 frame);
  void note_unmap(Pager& pager, u64 vpn, u64 frame);
  /// A COW break moved the member's mapping from `old_frame` to a private
  /// `new_frame`; mapped pages are unchanged, unique frames grow by one
  /// (unless the old frame's owner-set emptied in the same step).
  void note_cow(Pager& pager, u64 vpn, u64 old_frame, u64 new_frame);
  void note_pending(i64 delta);

  /// A member finished a working-set sweep: with auto_budget, re-divide
  /// total_frames between members proportional to their estimates.
  void note_ws_update();

  /// kGlobal mode: aggregate residency (plus in-flight fault reservations)
  /// exceeds the machine-wide budget.
  bool over_budget() const noexcept;

  /// True when aggregate residency crossed `pct` percent of the budget —
  /// the pageout daemon's pressure signal.
  bool over_watermark(u64 pct) const noexcept;

  /// Nominates the next victim across every member (global sweep). The
  /// caller evicts through the owner; eviction feeds back via note_unmap.
  std::optional<Victim> pick_victim();

  /// Caller reports the frame eviction it performed (one per victim frame,
  /// however many sharers were shot down) so cross-process pressure is
  /// visible in the stats ("pool.cross_evictions"). `cross` is true when
  /// any evicted sharer belonged to a different process than the asker.
  /// `trace_id` is the asking fault's causal id (an "evict" instant lands
  /// on the pool track).
  void record_eviction(const Pager& asking, bool cross, u64 trace_id = 0);

  u64 members() const noexcept;
  /// Unique resident *frames* — the budget/pressure basis. With page
  /// sharing this is less than mapped_pages(); without it they are equal.
  u64 resident_pages() const noexcept { return resident_; }
  /// Total page mappings across every member (each sharer counts).
  u64 mapped_pages() const noexcept { return mapped_pages_; }
  /// Fraction of mappings served without a frame of their own:
  /// 1 - unique_frames / mapped_pages (0 when nothing is mapped).
  double dedup_ratio() const noexcept {
    return mapped_pages_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(resident_) / static_cast<double>(mapped_pages_);
  }
  /// High-water mark of aggregate residency — the budget-invariant probe
  /// (never exceeds total_frames in kGlobal mode once enforcement runs).
  u64 peak_resident_pages() const noexcept { return peak_resident_; }

  /// Restarts the high-water mark from current residency. Experiment
  /// harnesses call this after setup traffic (eager data loading bypasses
  /// the fault path and legitimately overshoots the budget).
  void reset_peak_residency() noexcept { peak_resident_ = resident_; }
  u64 pending_pages() const noexcept { return pending_; }
  u64 budget() const noexcept { return cfg_.total_frames; }
  u64 evictions() const noexcept { return evictions_.value(); }
  u64 cross_evictions() const noexcept { return cross_evictions_.value(); }
  u64 rebalances() const noexcept { return rebalances_.value(); }

 private:
  unsigned member_id(const Pager& pager) const;
  void add_mapping(Pager& pager, u64 vpn, u64 frame);
  void remove_mapping(Pager& pager, u64 vpn, u64 frame);

  sim::Simulator& sim_;
  FramePoolConfig cfg_;
  std::string name_;
  sim::TraceTrack trace_track_ = 0;
  std::vector<Pager*> members_;  // index = member id; nullptr after detach
  std::unique_ptr<ReplacementPolicy> policy_;
  /// frame -> its mappings, in map order. The policy's opaque keys are the
  /// frame numbers; probes aggregate over this set.
  std::unordered_map<u64, std::vector<Sharer>> owners_;
  u64 resident_ = 0;      // unique frames (owner-set count)
  u64 mapped_pages_ = 0;  // total mappings (sum of owner-set sizes)
  u64 pending_ = 0;
  u64 peak_resident_ = 0;

  Counter& evictions_;
  Counter& cross_evictions_;
  Counter& rebalances_;
};

}  // namespace vmsls::paging

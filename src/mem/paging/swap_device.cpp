#include "mem/paging/swap_device.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::paging {

SwapDevice::SwapDevice(sim::Simulator& sim, const SwapConfig& cfg, u64 page_bytes,
                       std::string name)
    : sim_(sim),
      cfg_(cfg),
      page_bytes_(page_bytes),
      name_(std::move(name)),
      reads_(sim.stats().counter(name_ + ".reads")),
      writes_(sim.stats().counter(name_ + ".writes")),
      bytes_(sim.stats().counter(name_ + ".bytes")),
      queue_wait_(sim.stats().histogram(name_ + ".queue_wait")) {
  require(cfg.bytes_per_cycle > 0, "swap device needs nonzero bandwidth");
  require(page_bytes > 0, "swap device needs a page size");
}

void SwapDevice::issue(Cycles latency, sim::EventFn done) {
  const Cycles transfer = latency + page_bytes_ / cfg_.bytes_per_cycle;
  const Cycles start = std::max(sim_.now(), port_free_);
  queue_wait_.record(start - sim_.now());
  port_free_ = start + transfer;
  bytes_.add(page_bytes_);
  sim_.schedule_at(port_free_, std::move(done));
}

void SwapDevice::write_page(u64 vpn, sim::EventFn done) {
  note_swapped(vpn);
  writes_.add();
  issue(cfg_.write_latency, std::move(done));
}

void SwapDevice::read_page(u64 vpn, sim::EventFn done) {
  if (!holds(vpn))
    throw std::logic_error(name_ + ": swap-in of page not held by the device");
  reads_.add();
  issue(cfg_.read_latency, [this, vpn, done = std::move(done)]() mutable {
    slots_.erase(vpn);
    done();
  });
}

void SwapDevice::note_swapped(u64 vpn) {
  if (slots_.insert(vpn).second && slots_.size() > cfg_.slot_limit)
    throw std::runtime_error(name_ + ": swap device out of slots");
}

}  // namespace vmsls::paging

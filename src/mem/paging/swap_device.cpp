#include "mem/paging/swap_device.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::paging {

const char* swap_sched_name(SwapSchedPolicy policy) noexcept {
  switch (policy) {
    case SwapSchedPolicy::kFifo: return "fifo";
    case SwapSchedPolicy::kPriority: return "priority";
  }
  return "?";
}

SwapDevice::SwapDevice(sim::Simulator& sim, const SwapConfig& cfg, u64 page_bytes,
                       std::string name)
    : sim_(sim),
      cfg_(cfg),
      page_bytes_(page_bytes),
      name_(std::move(name)),
      reads_(sim.stats().counter(name_ + ".reads")),
      writes_(sim.stats().counter(name_ + ".writes")),
      bytes_(sim.stats().counter(name_ + ".bytes")) {
  require(cfg.bytes_per_cycle > 0, "swap device needs nonzero bandwidth");
  require(page_bytes > 0, "swap device needs a page size");
  trace_track_ = sim_.trace().track(name_);
}

void SwapDevice::issue(Cycles latency, u64 bytes, sim::EventFn done) {
  const Cycles transfer = latency + bytes / cfg_.bytes_per_cycle;
  const Cycles start = std::max(sim_.now(), port_free_);
  port_free_ = start + transfer;
  bytes_.add(bytes);
  sim_.schedule_at(port_free_, std::move(done));
}

void SwapDevice::write_page(u64 vpn, sim::EventFn done) {
  note_swapped(vpn);
  writes_.add();
  issue(cfg_.write_latency, page_bytes_, std::move(done));
}

void SwapDevice::read_page(u64 vpn, sim::EventFn done) {
  if (!holds(vpn))
    throw std::logic_error(name_ + ": swap-in of page not held by the device");
  reads_.add();
  issue(cfg_.read_latency, page_bytes_, [this, vpn, done = std::move(done)]() mutable {
    slots_.erase(vpn);
    VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "slots_in_use",
                        static_cast<double>(slots_.size()));
    done();
  });
}

void SwapDevice::read_pages(std::vector<u64> vpns, sim::EventFn done) {
  for (const u64 vpn : vpns)
    if (!holds(vpn))
      throw std::logic_error(name_ + ": clustered swap-in of page not held by the device");
  reads_.add(vpns.size());
  const u64 bytes = vpns.size() * page_bytes_;  // before the capture moves vpns
  issue(cfg_.read_latency, bytes,
        [this, vpns = std::move(vpns), done = std::move(done)]() mutable {
          for (const u64 vpn : vpns) slots_.erase(vpn);
          VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "slots_in_use",
                              static_cast<double>(slots_.size()));
          done();
        });
}

void SwapDevice::note_swapped(u64 vpn) {
  if (slots_.insert(vpn).second && slots_.size() > cfg_.slot_limit)
    throw std::runtime_error(name_ + ": swap device out of slots (" +
                             std::to_string(slots_.size()) + " allocated, limit " +
                             std::to_string(cfg_.slot_limit) + ")");
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "slots_in_use",
                      static_cast<double>(slots_.size()));
}

}  // namespace vmsls::paging

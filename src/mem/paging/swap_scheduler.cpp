#include "mem/paging/swap_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vmsls::paging {

const char* swap_req_class_name(SwapReqClass cls) noexcept {
  switch (cls) {
    case SwapReqClass::kDemandRead: return "demand_read";
    case SwapReqClass::kDemandWrite: return "demand_write";
    case SwapReqClass::kPrefetchRead: return "prefetch_read";
    case SwapReqClass::kWriteback: return "writeback";
  }
  return "?";
}

namespace {
unsigned class_rank(SwapReqClass cls) noexcept { return static_cast<unsigned>(cls); }
bool is_write_class(SwapReqClass cls) noexcept {
  return cls == SwapReqClass::kDemandWrite || cls == SwapReqClass::kWriteback;
}
}  // namespace

SwapScheduler::SwapScheduler(sim::Simulator& sim, const SwapConfig& cfg, u64 page_bytes,
                             std::string name)
    : sim_(sim),
      cfg_(cfg),
      name_(std::move(name)),
      device_(sim, cfg, page_bytes, name_),
      queue_wait_(sim.stats().histogram(name_ + ".queue_wait")),
      queue_depth_(sim.stats().histogram(name_ + ".sched.queue_depth")),
      demand_reads_(sim.stats().counter(name_ + ".sched.demand_reads")),
      demand_writes_(sim.stats().counter(name_ + ".sched.demand_writes")),
      prefetch_reads_(sim.stats().counter(name_ + ".sched.prefetch_reads")),
      writebacks_(sim.stats().counter(name_ + ".sched.writebacks")),
      wb_promotions_(sim.stats().counter(name_ + ".sched.wb_promotions")),
      prefetch_promotions_(sim.stats().counter(name_ + ".sched.prefetch_promotions")) {
  require(cfg.cluster_pages > 0, "swap scheduler needs a nonzero cluster size");
  require(cfg.writeback_starvation_limit > 0,
          "swap scheduler needs a nonzero writeback starvation limit");
  for (unsigned i = 0; i < class_wait_.size(); ++i)
    class_wait_[i] = &sim.stats().histogram(
        name_ + ".sched.wait_" + swap_req_class_name(static_cast<SwapReqClass>(i)));
  trace_track_ = sim_.trace().track(name_);
}

unsigned SwapScheduler::register_owner(const std::string& owner_name) {
  require(owners_.size() < (1u << 16), "swap scheduler owner-id space exhausted");
  Owner o;
  o.name = owner_name;
  // The private single-owner case names its per-owner counters onto the
  // device's own aggregates ("pager.swap" + ".reads"); the registry hands
  // back the same object, which the device already bumps — alias, don't
  // double-count.
  Counter& reads = sim_.stats().counter(owner_name + ".swap.reads");
  Counter& writes = sim_.stats().counter(owner_name + ".swap.writes");
  Histogram& wait = sim_.stats().histogram(owner_name + ".swap.queue_wait");
  o.reads = (&reads == &sim_.stats().counter(name_ + ".reads")) ? nullptr : &reads;
  o.writes = (&writes == &sim_.stats().counter(name_ + ".writes")) ? nullptr : &writes;
  o.queue_wait = (&wait == &queue_wait_) ? nullptr : &wait;
  owners_.push_back(std::move(o));
  return static_cast<unsigned>(owners_.size() - 1);
}

u64 SwapScheduler::pack(unsigned owner, u64 vpn) const {
  require(owner < owners_.size(), name_ + ": unregistered swap owner");
  require(vpn < (1ull << kOwnerShift), name_ + ": vpn does not fit the key packing");
  return (static_cast<u64>(owner) << kOwnerShift) | vpn;
}

bool SwapScheduler::holds(unsigned owner, u64 vpn) const {
  return device_.holds((static_cast<u64>(owner) << kOwnerShift) | vpn);
}

void SwapScheduler::alloc_slot(unsigned owner, u64 vpn) {
  const u64 key = pack(owner, vpn);
  if (slot_of_.count(key) != 0) return;  // re-note of a held page
  const u64 cluster_key = pack(owner, vpn / cfg_.cluster_pages);
  u64 region;
  if (auto it = region_of_cluster_.find(cluster_key); it != region_of_cluster_.end()) {
    region = it->second;
  } else if (!free_regions_.empty()) {
    region = *free_regions_.begin();
    free_regions_.erase(free_regions_.begin());
    region_of_cluster_.emplace(cluster_key, region);
    cluster_of_region_.emplace(region, cluster_key);
  } else {
    region = next_region_++;
    region_of_cluster_.emplace(cluster_key, region);
    cluster_of_region_.emplace(region, cluster_key);
  }
  const u64 slot = region * cfg_.cluster_pages + vpn % cfg_.cluster_pages;
  slot_of_.emplace(key, slot);
  page_at_.emplace(slot, key);
  ++region_pop_[region];
}

void SwapScheduler::free_slot(u64 key) {
  auto it = slot_of_.find(key);
  if (it == slot_of_.end()) return;
  const u64 slot = it->second;
  const u64 region = slot / cfg_.cluster_pages;
  slot_of_.erase(it);
  page_at_.erase(slot);
  if (--region_pop_[region] == 0) {
    region_pop_.erase(region);
    const u64 cluster_key = cluster_of_region_.at(region);
    cluster_of_region_.erase(region);
    region_of_cluster_.erase(cluster_key);
    free_regions_.insert(region);
  }
}

void SwapScheduler::note_swapped(unsigned owner, u64 vpn) {
  const u64 key = pack(owner, vpn);
  if (!device_.holds(key) && device_.slots_in_use() >= cfg_.slot_limit)
    throw std::runtime_error(name_ + ": out of swap slots (" +
                             std::to_string(device_.slots_in_use()) + "/" +
                             std::to_string(cfg_.slot_limit) + " in use) on swap-out from '" +
                             owners_.at(owner).name + "'");
  alloc_slot(owner, vpn);
  device_.note_swapped(key);
}

void SwapScheduler::read(unsigned owner, u64 vpn, SwapReqClass cls, sim::EventFn done,
                         u64 trace_id) {
  require(cls == SwapReqClass::kDemandRead || cls == SwapReqClass::kPrefetchRead,
          name_ + ": reads must be demand or prefetch class");
  const u64 key = pack(owner, vpn);
  if (!device_.holds(key))
    throw std::logic_error(name_ + ": swap-in of page not held for '" + owners_.at(owner).name +
                           "'");
  Request r;
  r.owner = owner;
  r.key = key;
  r.slot = slot_of_.at(key);
  r.cls = cls;
  r.enqueued = sim_.now();
  r.trace_id = trace_id;
  r.done = std::move(done);
  queue_depth_.record(queue_.size());
  queue_.push_back(std::move(r));
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "queue", trace_id, vpn);
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "queue_depth",
                      static_cast<double>(queue_.size()));
  pump();
}

void SwapScheduler::write(unsigned owner, u64 vpn, SwapReqClass cls, sim::EventFn done,
                          u64 trace_id) {
  require(is_write_class(cls), name_ + ": writes must be demand-write or writeback class");
  note_swapped(owner, vpn);  // slot allocated at enqueue: holds() is true at once
  Request r;
  r.owner = owner;
  r.key = pack(owner, vpn);
  r.slot = slot_of_.at(r.key);
  r.cls = cls;
  r.enqueued = sim_.now();
  r.trace_id = trace_id;
  r.done = std::move(done);
  queue_depth_.record(queue_.size());
  queue_.push_back(std::move(r));
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "queue", trace_id, vpn);
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "queue_depth",
                      static_cast<double>(queue_.size()));
  pump();
}

std::size_t SwapScheduler::select_next() {
  if (cfg_.sched == SwapSchedPolicy::kFifo || queue_.size() == 1) return 0;
  // Priority: lowest class rank wins, FIFO within a class (strict < keeps
  // the earliest arrival). Linear scan — swap queues are short and the
  // order must be deterministic.
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i)
    if (class_rank(queue_[i].cls) < class_rank(queue_[best].cls)) best = i;
  // Starvation guard: priority is *bounded* reordering, not an absolute
  // one. A queued writeback holds a slot (and, demand-write class, a
  // suspended fault); a queued prefetch goes stale — the page gets
  // demanded before it lands — if higher-class traffic can bypass it
  // forever. The odometer counts dispatches that bypass the OLDEST queued
  // request (the deque front, whatever its class — sustained prefetch
  // streams must not starve a writeback either); after
  // `writeback_starvation_limit` bypasses the front goes next, so under
  // saturation every request's wait is bounded by (limit x its arrival
  // position) dispatches.
  if (best == 0) {
    wb_bypassed_ = 0;  // the oldest request is being served anyway
  } else if (++wb_bypassed_ >= cfg_.writeback_starvation_limit) {
    wb_promotions_.add();
    VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "wb_promotion", queue_.front().trace_id,
                        class_rank(queue_.front().cls));
    best = 0;
    wb_bypassed_ = 0;
  }
  return best;
}

void SwapScheduler::promote(unsigned owner, u64 vpn) {
  const u64 key = pack(owner, vpn);
  for (Request& r : queue_) {
    if (r.key == key && r.cls == SwapReqClass::kPrefetchRead) {
      r.cls = SwapReqClass::kDemandRead;
      prefetch_promotions_.add();
      VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "promote", r.trace_id, vpn);
      return;
    }
  }
}

void SwapScheduler::batched(const std::function<void()>& fill) {
  ++defer_;
  fill();
  --defer_;
  pump();
}

void SwapScheduler::pump() {
  if (defer_ > 0 || in_flight_ || queue_.empty()) return;
  const std::size_t idx = select_next();
  std::vector<Request> batch = take_batch();
  batch.push_back(std::move(queue_[idx]));
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (!is_write_class(batch[0].cls)) {
    // Clustered swap-in: every queued read whose slot shares the selected
    // read's cluster region rides the same device operation, whatever its
    // class — adjacent slots stream in one access. Regions are per-owner,
    // so the batch never mixes owners. Slots were resolved at enqueue
    // (Request::slot), so this scan is compare-only.
    const u64 region = batch[0].slot / cfg_.cluster_pages;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (!is_write_class(it->cls) && it->slot / cfg_.cluster_pages == region) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  in_flight_ = true;
  dispatch(std::move(batch));
}

void SwapScheduler::dispatch(std::vector<Request> batch) {
  for (const Request& r : batch) {
    const Cycles waited = sim_.now() - r.enqueued;
    queue_wait_.record(waited);
    class_wait_[static_cast<unsigned>(r.cls)]->record(waited);
    Owner& o = owners_.at(r.owner);
    if (o.queue_wait != nullptr) o.queue_wait->record(waited);
    if (is_write_class(r.cls)) {
      (r.cls == SwapReqClass::kDemandWrite ? demand_writes_ : writebacks_).add();
      if (o.writes != nullptr) o.writes->add();
    } else {
      (r.cls == SwapReqClass::kDemandRead ? demand_reads_ : prefetch_reads_).add();
      if (o.reads != nullptr) o.reads->add();
    }
    VMSLS_TRACE_END(sim_.trace(), trace_track_, "queue", r.trace_id, r.key);
    VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "io", r.trace_id, class_rank(r.cls));
  }
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "queue_depth",
                      static_cast<double>(queue_.size()));
  // Completion order: free the port and dispatch the next queued request
  // *before* running the requesters' continuations — a continuation that
  // immediately enqueues (fault chains do) must queue behind work that was
  // already waiting. Within a batch, continuations fire in batch order
  // (selected request first).
  if (is_write_class(batch[0].cls)) {
    auto finish = [this, tid = batch[0].trace_id, done = std::move(batch[0].done)]() mutable {
      VMSLS_TRACE_END(sim_.trace(), trace_track_, "io", tid);
      in_flight_ = false;
      pump();
      done();
    };
    const u64 key = batch[0].key;
    recycle_batch(std::move(batch));
    device_.write_page(key, std::move(finish));
    return;
  }
  // The batch itself rides into the device completion: keys are copied out
  // once for the wire, and trace ids / continuations stay in the Requests
  // instead of being unpacked into parallel vectors.
  std::vector<u64> keys;
  keys.reserve(batch.size());
  for (const Request& r : batch) keys.push_back(r.key);
  device_.read_pages(std::move(keys), [this, batch = std::move(batch)]() mutable {
    for (const Request& r : batch) {
      VMSLS_TRACE_END(sim_.trace(), trace_track_, "io", r.trace_id);
      free_slot(r.key);
    }
    in_flight_ = false;
    pump();
    for (Request& r : batch) r.done();
    recycle_batch(std::move(batch));
  });
}

std::vector<SwapScheduler::Request> SwapScheduler::take_batch() {
  if (batch_pool_.empty()) return {};
  std::vector<Request> b = std::move(batch_pool_.back());
  batch_pool_.pop_back();
  return b;
}

void SwapScheduler::recycle_batch(std::vector<Request> batch) {
  batch.clear();
  if (batch_pool_.size() < 4) batch_pool_.push_back(std::move(batch));
}

u64 SwapScheduler::queue_depth_class(SwapReqClass cls) const noexcept {
  u64 n = 0;
  for (const Request& r : queue_)
    if (r.cls == cls) ++n;
  return n;
}

std::vector<u64> SwapScheduler::neighbors(unsigned owner, u64 vpn, unsigned k) const {
  std::vector<u64> out;
  const auto it = slot_of_.find((static_cast<u64>(owner) << kOwnerShift) | vpn);
  if (it == slot_of_.end() || k == 0) return out;
  const u64 slot = it->second;
  const u64 region_end = (slot / cfg_.cluster_pages + 1) * cfg_.cluster_pages;
  const u64 last = std::min(region_end - 1, slot + k);
  for (u64 s = slot + 1; s <= last; ++s) {
    const auto page = page_at_.find(s);
    if (page == page_at_.end()) continue;
    out.push_back(page->second & ((1ull << kOwnerShift) - 1));  // same owner by construction
  }
  return out;
}

u64 SwapScheduler::owner_reads(unsigned owner) const {
  const Owner& o = owners_.at(owner);
  return o.reads != nullptr ? o.reads->value() : device_.reads();
}

u64 SwapScheduler::owner_writes(unsigned owner) const {
  const Owner& o = owners_.at(owner);
  return o.writes != nullptr ? o.writes->value() : device_.writes();
}

}  // namespace vmsls::paging

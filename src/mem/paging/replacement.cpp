#include "mem/paging/replacement.hpp"

#include <algorithm>
#include <list>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace vmsls::paging {

const char* policy_name(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kClock: return "clock";
    case PolicyKind::kLruApprox: return "lru";
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kRandom: return "random";
  }
  return "?";
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "clock") return PolicyKind::kClock;
  if (name == "lru") return PolicyKind::kLruApprox;
  if (name == "fifo") return PolicyKind::kFifo;
  if (name == "random") return PolicyKind::kRandom;
  throw std::invalid_argument("unknown replacement policy '" + name + "'");
}

namespace {

/// Second-chance clock: resident pages form a ring; the hand sweeps,
/// clearing accessed bits, and evicts the first page found unreferenced.
///
/// The ring is a std::list with an unordered_map from key to its node, so
/// insert and remove are O(1). The fault path calls both once per eviction
/// (insert the new page, remove the victim) with the ring sized at the full
/// frame budget, where the previous contiguous ring paid an O(budget)
/// memmove per call — the single hottest line in the clean-fault profile.
/// Nomination order is identical to the contiguous ring: the same keys in
/// the same circular sequence, the hand parked on the same element.
class ClockPolicy final : public ReplacementPolicy {
 public:
  explicit ClockPolicy(AccessedProbe probe) : probe_(std::move(probe)) {}

  const char* name() const noexcept override { return "clock"; }
  u64 tracked_pages() const noexcept override { return ring_.size(); }

  void on_insert(u64 key) override {
    // New pages enter just behind the hand: they get a full sweep before
    // first consideration. (Into an empty ring the new page IS the hand.)
    if (ring_.empty()) {
      pos_[key] = ring_.insert(ring_.end(), key);
      hand_ = ring_.begin();
    } else {
      pos_[key] = ring_.insert(hand_, key);
    }
  }

  void on_remove(u64 key) override {
    auto it = pos_.find(key);
    if (it == pos_.end()) return;
    if (it->second == hand_) {
      // The page the hand nominated: the hand moves on to its successor.
      hand_ = ring_.erase(it->second);
      if (hand_ == ring_.end()) hand_ = ring_.begin();
    } else {
      ring_.erase(it->second);
    }
    pos_.erase(it);
  }

  std::optional<u64> pick_victim() override {
    if (ring_.empty()) return std::nullopt;
    // Wrong-path prefetches go first: a speculative page is reclaimed
    // before the hand disturbs anyone else's accessed bits — but only if
    // its own bit is still clear. Probing a *referenced* landing graduates
    // it through the owner's funnel (it stops being speculative), exactly
    // as a sweep would. Scan order: from the hand, the sweep's own order.
    // The owner's emptiness hint skips the whole scan when nothing is
    // speculative — the common case whenever readahead is off.
    if (maybe_speculative()) {
      auto it = hand_;
      for (u64 step = 0; step < ring_.size(); ++step) {
        const u64 key = *it;
        if (is_speculative(key) && !is_pinned(key) && !probe_(key)) return key;
        if (++it == ring_.end()) it = ring_.begin();
      }
    }
    // At most two sweeps: the first clears every accessed bit, the second
    // must find a victim. Pinned pages behave as permanently referenced
    // (their accessed bits are left alone).
    for (u64 step = 0; step < 2 * ring_.size(); ++step) {
      const u64 key = *hand_;
      if (!is_pinned(key) && !probe_(key)) return key;
      if (++hand_ == ring_.end()) hand_ = ring_.begin();
    }
    // Everything stayed referenced: take the first unpinned page at the
    // hand; only pins can make victim selection fail entirely.
    auto it = hand_;
    for (u64 step = 0; step < ring_.size(); ++step) {
      const u64 key = *it;
      if (!is_pinned(key)) return key;
      if (++it == ring_.end()) it = ring_.begin();
    }
    return std::nullopt;
  }

 private:
  AccessedProbe probe_;
  std::list<u64> ring_;
  std::list<u64>::iterator hand_ = ring_.end();
  std::unordered_map<u64, std::list<u64>::iterator> pos_;
};

/// Aging LRU approximation: an 8-bit reference history per page, shifted on
/// every victim selection with the accessed bit entering at the top. The
/// smallest history value is the least recently used page.
class LruApproxPolicy final : public ReplacementPolicy {
 public:
  explicit LruApproxPolicy(AccessedProbe probe) : probe_(std::move(probe)) {}

  const char* name() const noexcept override { return "lru"; }
  u64 tracked_pages() const noexcept override { return ages_.size(); }

  void on_insert(u64 key) override { ages_[key] = 0x80; }
  void on_remove(u64 key) override { ages_.erase(key); }

  std::optional<u64> pick_victim() override {
    if (ages_.empty()) return std::nullopt;
    // Wrong-path prefetches first (lowest key — deterministic map order);
    // probing a referenced landing graduates it via the owner's funnel
    // without perturbing the aging histories. Skipped outright when the
    // owner's hint says nothing is speculative.
    if (maybe_speculative())
      for (const auto& [key, age] : ages_)
        if (is_speculative(key) && !is_pinned(key) && !probe_(key)) return key;
    std::optional<u64> victim;
    unsigned best_age = 256;
    for (auto& [key, age] : ages_) {
      const bool used = probe_(key);
      age = static_cast<u8>((age >> 1) | (used ? 0x80 : 0));
      if (is_pinned(key)) continue;  // aged but never nominated
      if (age < best_age) {  // ties resolve to the lowest key (map order)
        best_age = age;
        victim = key;
      }
    }
    return victim;
  }

 private:
  AccessedProbe probe_;
  std::map<u64, u8> ages_;  // ordered: deterministic sweep and tie-breaks
};

class FifoPolicy final : public ReplacementPolicy {
 public:
  explicit FifoPolicy(AccessedProbe probe) : probe_(std::move(probe)) {}

  const char* name() const noexcept override { return "fifo"; }
  u64 tracked_pages() const noexcept override { return queue_.size(); }

  void on_insert(u64 key) override { queue_.push_back(key); }

  void on_remove(u64 key) override {
    // Fast path: the pager evicts the head pick_victim just returned.
    if (!queue_.empty() && queue_.front() == key) {
      queue_.pop_front();
      return;
    }
    auto it = std::find(queue_.begin(), queue_.end(), key);
    if (it != queue_.end()) queue_.erase(it);
  }

  std::optional<u64> pick_victim() override {
    // Wrong-path prefetches first, in arrival order. The probe keeps FIFO
    // locality-blind for everything else; here it only tells a used
    // landing (graduated through the owner's funnel) from a wrong one.
    if (maybe_speculative())
      for (const u64 key : queue_)
        if (is_speculative(key) && !is_pinned(key) && !probe_(key)) return key;
    for (const u64 key : queue_)
      if (!is_pinned(key)) return key;
    return std::nullopt;
  }

 private:
  AccessedProbe probe_;
  std::deque<u64> queue_;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(AccessedProbe probe, u64 seed) : probe_(std::move(probe)), rng_(seed) {}

  const char* name() const noexcept override { return "random"; }
  u64 tracked_pages() const noexcept override { return pages_.size(); }

  void on_insert(u64 key) override { pages_.push_back(key); }

  void on_remove(u64 key) override {
    // Order carries no meaning here, so removal is swap-with-back; the
    // last nomination makes the pager's evict O(1).
    auto it = (last_pick_ < pages_.size() && pages_[last_pick_] == key)
                  ? pages_.begin() + static_cast<std::ptrdiff_t>(last_pick_)
                  : std::find(pages_.begin(), pages_.end(), key);
    if (it == pages_.end()) return;
    *it = pages_.back();
    pages_.pop_back();
  }

  std::optional<u64> pick_victim() override {
    if (pages_.empty()) return std::nullopt;
    // Wrong-path prefetches first, in insertion order; the RNG is not
    // consumed so runs with and without prefetch hits stay comparable.
    if (maybe_speculative()) {
      for (u64 idx = 0; idx < pages_.size(); ++idx) {
        if (is_speculative(pages_[idx]) && !is_pinned(pages_[idx]) && !probe_(pages_[idx])) {
          last_pick_ = idx;
          return pages_[idx];
        }
      }
    }
    // One draw, then a deterministic forward scan past any pinned pages.
    const u64 start = rng_.below(pages_.size());
    for (u64 step = 0; step < pages_.size(); ++step) {
      const u64 idx = (start + step) % pages_.size();
      if (!is_pinned(pages_[idx])) {
        last_pick_ = idx;
        return pages_[idx];
      }
    }
    return std::nullopt;
  }

 private:
  AccessedProbe probe_;
  Rng rng_;
  std::vector<u64> pages_;
  u64 last_pick_ = 0;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind, AccessedProbe probe, u64 seed) {
  switch (kind) {
    case PolicyKind::kClock: return std::make_unique<ClockPolicy>(std::move(probe));
    case PolicyKind::kLruApprox: return std::make_unique<LruApproxPolicy>(std::move(probe));
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>(std::move(probe));
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(std::move(probe), seed);
  }
  throw std::invalid_argument("unknown replacement policy kind");
}

}  // namespace vmsls::paging

#include "mem/paging/frame_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mem/paging/pager.hpp"
#include "util/log.hpp"

namespace vmsls::paging {

const char* budget_mode_name(BudgetMode mode) noexcept {
  switch (mode) {
    case BudgetMode::kPerProcess: return "per-process";
    case BudgetMode::kGlobal: return "global";
  }
  return "?";
}

FramePool::FramePool(sim::Simulator& sim, const FramePoolConfig& cfg, std::string name)
    : sim_(sim),
      cfg_(cfg),
      name_(std::move(name)),
      evictions_(sim.stats().counter(name_ + ".evictions")),
      cross_evictions_(sim.stats().counter(name_ + ".cross_evictions")),
      rebalances_(sim.stats().counter(name_ + ".rebalances")) {
  trace_track_ = sim_.trace().track(name_);
  // The global sweep reuses the per-process policy implementations over
  // frame numbers; probes aggregate over the frame's owner-set, resolving
  // through each sharer's page table.
  policy_ = make_policy(
      cfg_.policy,
      AccessedProbe([this](u64 frame) {
        const auto it = owners_.find(frame);
        if (it == owners_.end()) return false;
        // Probe *every* sharer (each test-and-clears its own PTE bit) and OR
        // the results — short-circuiting would leave later sharers' bits
        // set, making the frame look perpetually hot to the sweep.
        bool any = false;
        for (const auto& [p, vpn] : it->second)
          if (p->probe_accessed(vpn)) any = true;
        return any;
      }),
      cfg_.policy_seed);
  // A pin held by *any* sharer excludes the frame for all of them: the
  // pinned mapping backs an in-flight access against these exact bytes.
  // (Per-(member, vpn) pin checks let other sharers evict a pinned frame —
  // the sharer-pin bug this owner-set probe fixes.)
  policy_->set_pinned_probe([this](u64 frame) {
    const auto it = owners_.find(frame);
    if (it == owners_.end()) return false;
    for (const auto& [p, vpn] : it->second)
      if (p->space().is_pinned_vpn(vpn)) return true;
    return false;
  });
  // Wrong-path readahead landings are reclaimed first machine-wide too: a
  // frame is speculative only while *every* mapping of it is an
  // unreferenced prefetch landing.
  policy_->set_speculative_probe(
      [this](u64 frame) {
        const auto it = owners_.find(frame);
        if (it == owners_.end() || it->second.empty()) return false;
        for (const auto& [p, vpn] : it->second)
          if (!p->is_speculative(vpn)) return false;
        return true;
      },
      [this] {
        for (Pager* p : members_)
          if (p != nullptr && p->any_speculative()) return true;
        return false;
      });
}

unsigned FramePool::member_id(const Pager& pager) const {
  for (unsigned i = 0; i < members_.size(); ++i)
    if (members_[i] == &pager) return i;
  throw std::logic_error(name_ + ": pager '" + pager.name() + "' is not attached");
}

u64 FramePool::members() const noexcept {
  u64 n = 0;
  for (const Pager* p : members_)
    if (p != nullptr) ++n;
  return n;
}

void FramePool::attach(Pager& pager) {
  require(pager.pool_ == nullptr, "pager is already attached to a frame pool");
  // auto_budget silently degrading to a static split would be the worst
  // failure mode — every member must actually produce WS estimates.
  require(!cfg_.auto_budget || cfg_.mode != BudgetMode::kPerProcess ||
              pager.config().ws_interval > 0,
          "auto_budget pool: pager '" + pager.name() +
              "' has no working-set estimator (ws_interval == 0), so rebalancing "
              "would never run");
  // Reuse a vacated slot (stable ids) before growing.
  unsigned id = static_cast<unsigned>(members_.size());
  for (unsigned i = 0; i < members_.size(); ++i) {
    if (members_[i] == nullptr) {
      id = i;
      break;
    }
  }
  if (id == members_.size())
    members_.push_back(&pager);
  else
    members_[id] = &pager;
  pager.pool_ = this;
  // Pages already resident (pinned buffers, pre-attach traffic) enter the
  // global sweep and the aggregate residency count, as do any frame
  // reservations of faults already in flight.
  pager.space().for_each_resident([this, &pager](u64 vpn) {
    add_mapping(pager, vpn, *pager.space().frame_of(vpn));
  });
  pending_ += pager.pending_pages();
  peak_resident_ = std::max(peak_resident_, resident_);
}

void FramePool::detach(Pager& pager) {
  const unsigned id = member_id(pager);
  pager.space().for_each_resident([this, &pager](u64 vpn) {
    remove_mapping(pager, vpn, *pager.space().frame_of(vpn));
  });
  // The member's in-flight fault reservations leave with it; a stale
  // pending_ would fake permanent pressure for the survivors.
  note_pending(-static_cast<i64>(pager.pending_pages()));
  members_[id] = nullptr;
  pager.pool_ = nullptr;
}

void FramePool::add_mapping(Pager& pager, u64 vpn, u64 frame) {
  auto& sharers = owners_[frame];
  sharers.emplace_back(&pager, vpn);
  ++mapped_pages_;
  if (sharers.size() == 1) {
    // First mapping: the frame enters the sweep and costs one budget unit.
    // The global sweep ring is only consulted by kGlobal victim selection;
    // in kPerProcess mode maintaining it would be O(resident) churn per
    // map/unmap for state nothing ever reads.
    if (cfg_.mode == BudgetMode::kGlobal) policy_->on_insert(frame);
    ++resident_;
    peak_resident_ = std::max(peak_resident_, resident_);
  }
}

void FramePool::remove_mapping(Pager& pager, u64 vpn, u64 frame) {
  const auto it = owners_.find(frame);
  require(it != owners_.end(), "pool unmap of an untracked frame");
  auto& sharers = it->second;
  const auto pos = std::find(sharers.begin(), sharers.end(), Sharer{&pager, vpn});
  require(pos != sharers.end(), "pool unmap of an untracked mapping");
  sharers.erase(pos);
  require(mapped_pages_ > 0, "pool mapped-pages underflow");
  --mapped_pages_;
  if (sharers.empty()) {
    owners_.erase(it);
    if (cfg_.mode == BudgetMode::kGlobal) policy_->on_remove(frame);
    require(resident_ > 0, "pool residency underflow");
    --resident_;
  }
}

void FramePool::note_map(Pager& pager, u64 vpn, u64 frame) {
  add_mapping(pager, vpn, frame);
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "resident", static_cast<double>(resident_));
}

void FramePool::note_unmap(Pager& pager, u64 vpn, u64 frame) {
  remove_mapping(pager, vpn, frame);
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "resident", static_cast<double>(resident_));
}

void FramePool::note_cow(Pager& pager, u64 vpn, u64 old_frame, u64 new_frame) {
  remove_mapping(pager, vpn, old_frame);
  add_mapping(pager, vpn, new_frame);
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "resident", static_cast<double>(resident_));
}

void FramePool::note_pending(i64 delta) {
  if (delta >= 0) {
    pending_ += static_cast<u64>(delta);
  } else {
    const u64 d = static_cast<u64>(-delta);
    require(pending_ >= d, "pool pending underflow");
    pending_ -= d;
  }
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "pending", static_cast<double>(pending_));
}

bool FramePool::over_budget() const noexcept {
  return cfg_.mode == BudgetMode::kGlobal && cfg_.total_frames > 0 &&
         resident_ + pending_ > cfg_.total_frames;
}

bool FramePool::over_watermark(u64 pct) const noexcept {
  if (cfg_.total_frames == 0) return false;
  return (resident_ + pending_) * 100 >= cfg_.total_frames * pct;
}

std::optional<FramePool::Victim> FramePool::pick_victim() {
  const auto key = policy_->pick_victim();
  if (!key) return std::nullopt;
  const auto it = owners_.find(*key);
  require(it != owners_.end() && !it->second.empty(), "pool victim frame has no owner-set");
  Victim v;
  v.frame = *key;
  v.sharers = it->second;  // snapshot: eviction mutates the live set
  return v;
}

void FramePool::record_eviction(const Pager& asking, bool cross, u64 trace_id) {
  (void)asking;
  evictions_.add();
  if (cross) cross_evictions_.add();
  VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "evict", trace_id, cross ? 1 : 0);
}

void FramePool::note_ws_update() {
  if (!cfg_.auto_budget || cfg_.mode != BudgetMode::kPerProcess || cfg_.total_frames == 0)
    return;
  // Re-divide the machine budget proportional to the working-set estimates.
  // Members without an estimate yet keep their current budget — rebalancing
  // starts once every process has reported.
  u64 sum = 0;
  for (Pager* p : members_) {
    if (p == nullptr) continue;
    if (!p->has_ws_estimate()) return;  // rebalance once everyone reported
    sum += p->ws_demand_pages();
  }
  if (sum == 0) return;
  for (Pager* p : members_) {
    if (p == nullptr) continue;
    const u64 target = cfg_.total_frames * p->ws_demand_pages() / sum;
    // Move halfway toward the WS-proportional target rather than jumping:
    // a fault-stalled process momentarily references few pages, and an
    // undamped cut would spiral it (smaller budget -> more stalls -> even
    // smaller estimate).
    // Round toward the target so repeated sweeps converge in both
    // directions instead of sticking one page away.
    const u64 current = p->frame_budget();
    const u64 damped = (current + target + (target > current ? 1 : 0)) / 2;
    p->set_frame_budget(std::max(cfg_.min_budget, damped));
  }
  rebalances_.add();
}

}  // namespace vmsls::paging

#include "mem/paging/frame_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mem/paging/pager.hpp"
#include "util/log.hpp"

namespace vmsls::paging {

const char* budget_mode_name(BudgetMode mode) noexcept {
  switch (mode) {
    case BudgetMode::kPerProcess: return "per-process";
    case BudgetMode::kGlobal: return "global";
  }
  return "?";
}

FramePool::FramePool(sim::Simulator& sim, const FramePoolConfig& cfg, std::string name)
    : sim_(sim),
      cfg_(cfg),
      name_(std::move(name)),
      evictions_(sim.stats().counter(name_ + ".evictions")),
      cross_evictions_(sim.stats().counter(name_ + ".cross_evictions")),
      rebalances_(sim.stats().counter(name_ + ".rebalances")) {
  trace_track_ = sim_.trace().track(name_);
  // The global sweep reuses the per-process policy implementations over
  // packed (member, vpn) keys; accessed bits resolve through the owner's
  // page table.
  policy_ = make_policy(
      cfg_.policy,
      AccessedProbe([this](u64 key) {
        const auto member = key >> kMemberShift;
        const u64 vpn = key & ((1ull << kMemberShift) - 1);
        Pager* p = member < members_.size() ? members_[member] : nullptr;
        return p != nullptr && p->probe_accessed(vpn);
      }),
      cfg_.policy_seed);
  policy_->set_pinned_probe([this](u64 key) {
    const auto member = key >> kMemberShift;
    const u64 vpn = key & ((1ull << kMemberShift) - 1);
    Pager* p = member < members_.size() ? members_[member] : nullptr;
    return p != nullptr && p->space().is_pinned_vpn(vpn);
  });
  // Wrong-path readahead landings are reclaimed first machine-wide too:
  // the global sweep resolves the speculative flag through the owner.
  policy_->set_speculative_probe(
      [this](u64 key) {
        const auto member = key >> kMemberShift;
        const u64 vpn = key & ((1ull << kMemberShift) - 1);
        Pager* p = member < members_.size() ? members_[member] : nullptr;
        return p != nullptr && p->is_speculative(vpn);
      },
      [this] {
        for (Pager* p : members_)
          if (p != nullptr && p->any_speculative()) return true;
        return false;
      });
}

u64 FramePool::pack(u64 member, u64 vpn) const {
  require(vpn < (1ull << kMemberShift), "vpn does not fit the pool's key packing");
  return (member << kMemberShift) | vpn;
}

unsigned FramePool::member_id(const Pager& pager) const {
  for (unsigned i = 0; i < members_.size(); ++i)
    if (members_[i] == &pager) return i;
  throw std::logic_error(name_ + ": pager '" + pager.name() + "' is not attached");
}

u64 FramePool::members() const noexcept {
  u64 n = 0;
  for (const Pager* p : members_)
    if (p != nullptr) ++n;
  return n;
}

void FramePool::attach(Pager& pager) {
  require(pager.pool_ == nullptr, "pager is already attached to a frame pool");
  // auto_budget silently degrading to a static split would be the worst
  // failure mode — every member must actually produce WS estimates.
  require(!cfg_.auto_budget || cfg_.mode != BudgetMode::kPerProcess ||
              pager.config().ws_interval > 0,
          "auto_budget pool: pager '" + pager.name() +
              "' has no working-set estimator (ws_interval == 0), so rebalancing "
              "would never run");
  // Reuse a vacated slot (stable ids) before growing.
  unsigned id = static_cast<unsigned>(members_.size());
  for (unsigned i = 0; i < members_.size(); ++i) {
    if (members_[i] == nullptr) {
      id = i;
      break;
    }
  }
  if (id == members_.size())
    members_.push_back(&pager);
  else
    members_[id] = &pager;
  pager.pool_ = this;
  // Pages already resident (pinned buffers, pre-attach traffic) enter the
  // global sweep and the aggregate residency count, as do any frame
  // reservations of faults already in flight.
  pager.space().for_each_resident([this, id](u64 vpn) {
    if (cfg_.mode == BudgetMode::kGlobal) policy_->on_insert(pack(id, vpn));
    ++resident_;
  });
  pending_ += pager.pending_pages();
  peak_resident_ = std::max(peak_resident_, resident_);
}

void FramePool::detach(Pager& pager) {
  const unsigned id = member_id(pager);
  pager.space().for_each_resident([this, id](u64 vpn) {
    if (cfg_.mode == BudgetMode::kGlobal) policy_->on_remove(pack(id, vpn));
    --resident_;
  });
  // The member's in-flight fault reservations leave with it; a stale
  // pending_ would fake permanent pressure for the survivors.
  note_pending(-static_cast<i64>(pager.pending_pages()));
  members_[id] = nullptr;
  pager.pool_ = nullptr;
}

void FramePool::note_map(const Pager& pager, u64 vpn) {
  // The global sweep ring is only consulted by kGlobal victim selection;
  // in kPerProcess mode maintaining it would be O(resident) churn per
  // map/unmap for state nothing ever reads.
  if (cfg_.mode == BudgetMode::kGlobal) policy_->on_insert(pack(member_id(pager), vpn));
  ++resident_;
  peak_resident_ = std::max(peak_resident_, resident_);
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "resident", static_cast<double>(resident_));
}

void FramePool::note_unmap(const Pager& pager, u64 vpn) {
  if (cfg_.mode == BudgetMode::kGlobal) policy_->on_remove(pack(member_id(pager), vpn));
  require(resident_ > 0, "pool residency underflow");
  --resident_;
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "resident", static_cast<double>(resident_));
}

void FramePool::note_pending(i64 delta) {
  if (delta >= 0) {
    pending_ += static_cast<u64>(delta);
  } else {
    const u64 d = static_cast<u64>(-delta);
    require(pending_ >= d, "pool pending underflow");
    pending_ -= d;
  }
  VMSLS_TRACE_COUNTER(sim_.trace(), trace_track_, "pending", static_cast<double>(pending_));
}

bool FramePool::over_budget() const noexcept {
  return cfg_.mode == BudgetMode::kGlobal && cfg_.total_frames > 0 &&
         resident_ + pending_ > cfg_.total_frames;
}

bool FramePool::over_watermark(u64 pct) const noexcept {
  if (cfg_.total_frames == 0) return false;
  return (resident_ + pending_) * 100 >= cfg_.total_frames * pct;
}

std::optional<FramePool::Victim> FramePool::pick_victim() {
  const auto key = policy_->pick_victim();
  if (!key) return std::nullopt;
  const auto member = *key >> kMemberShift;
  Victim v;
  v.owner = members_.at(member);
  v.vpn = *key & ((1ull << kMemberShift) - 1);
  require(v.owner != nullptr, "pool victim belongs to a detached member");
  return v;
}

void FramePool::record_eviction(const Pager& asking, const Pager& owner, u64 trace_id) {
  evictions_.add();
  if (&asking != &owner) cross_evictions_.add();
  VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "evict", trace_id,
                      &asking != &owner ? 1 : 0);
}

void FramePool::note_ws_update() {
  if (!cfg_.auto_budget || cfg_.mode != BudgetMode::kPerProcess || cfg_.total_frames == 0)
    return;
  // Re-divide the machine budget proportional to the working-set estimates.
  // Members without an estimate yet keep their current budget — rebalancing
  // starts once every process has reported.
  u64 sum = 0;
  for (Pager* p : members_) {
    if (p == nullptr) continue;
    if (!p->has_ws_estimate()) return;  // rebalance once everyone reported
    sum += p->ws_demand_pages();
  }
  if (sum == 0) return;
  for (Pager* p : members_) {
    if (p == nullptr) continue;
    const u64 target = cfg_.total_frames * p->ws_demand_pages() / sum;
    // Move halfway toward the WS-proportional target rather than jumping:
    // a fault-stalled process momentarily references few pages, and an
    // undamped cut would spiral it (smaller budget -> more stalls -> even
    // smaller estimate).
    // Round toward the target so repeated sweeps converge in both
    // directions instead of sticking one page away.
    const u64 current = p->frame_budget();
    const u64 damped = (current + target + (target > current ? 1 : 0)) / 2;
    p->set_frame_budget(std::max(cfg_.min_budget, damped));
  }
  rebalances_.add();
}

}  // namespace vmsls::paging

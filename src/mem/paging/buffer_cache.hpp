// Machine-wide block-level buffer cache: the file I/O front end.
//
// The second shared I/O subsystem next to the SwapScheduler ("one flash
// part, N pagers"): one file device, N pagers, and — unlike swap — a cache
// of recently-used blocks in front of the device. Read hits skip the device
// the way TLB hits skip the walker: the completion fires synchronously in
// zero simulated time. Misses queue on a single timed device port (access
// latency + bytes/bandwidth, reads dispatched ahead of background writes
// under a bounded-bypass starvation guard — the SwapScheduler's classed
// queue, specialized to two classes), and concurrent misses on one block
// merge into one device read (the kernel's wait-on-buffer-lock discipline,
// cross-process: the cache is shared machine-wide through the
// SharedSubstrate, so process B's miss coalesces onto process A's read).
//
// Writes are write-back with write-allocate: dirtying a block is pure
// bookkeeping and never blocks the writer — eviction of a dirty *page* is
// therefore cheap on the fault path, and the device cost is paid later by
// a flush daemon (periodic, batch-bounded, yields to demand reads by
// skipping ticks while the device is busy) or when capacity eviction pushes
// a dirty block out of the cache. Both emit background-class device writes
// with no waiter, so the event queue always drains and the daemon disarms
// once the cache is clean — the same activity-gating contract as the
// pager's pageout daemon.
//
// Like the SwapDevice, this class is timing + bookkeeping only: block
// *bytes* live in mem::BackingFile, which the functional layer
// (AddressSpace) reads and writes directly.
#pragma once

#include <deque>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace vmsls::paging {

struct BufferCacheConfig {
  /// Blocks the cache holds (one block == one page); 0 disables caching —
  /// every read misses straight to the device, writes still absorb into a
  /// single transient slot. Sized like a real machine's page cache: a large
  /// fraction of DRAM.
  u64 capacity_blocks = 4096;
  Cycles read_latency = 3600;    // per-operation device access latency
  Cycles write_latency = 5200;   // file-device writes, flash-class asymmetry
  unsigned bytes_per_cycle = 4;  // device port streaming bandwidth
  /// Flush daemon period in cycles; 0 disables it (dirty blocks then only
  /// reach the device through capacity eviction).
  Cycles flush_interval = 20000;
  /// Dirty blocks cleaned (queued as background writes) per daemon tick.
  u64 flush_batch = 8;
  /// A queued background write is dispatched after at most this many reads
  /// bypass it (the starvation guard, as in SwapConfig).
  u64 write_starvation_limit = 8;
};

class BufferCache {
 public:
  BufferCache(sim::Simulator& sim, const BufferCacheConfig& cfg, u64 block_bytes,
              std::string name);

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  const BufferCacheConfig& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return name_; }

  /// Registers a client (a pager). Registration order fixes ids; the name
  /// prefixes the client's hit/miss counters ("<client>.file_hits" /
  /// ".file_misses") so per-process file traffic stays attributable on a
  /// machine-wide cache.
  unsigned register_client(const std::string& client_name);

  /// Timed block read (file page lazy-load). Hit: completes synchronously,
  /// zero cycles. Miss: queues a demand-class device read; concurrent
  /// misses on the same block merge onto the in-flight or queued read.
  /// `trace_id` threads the faulting request's causal id through the
  /// "queue"/"io" spans (0 = untraced).
  void read(unsigned client, u32 file, u64 block, sim::EventFn done, u64 trace_id = 0);

  /// Write-back, write-allocate dirtying of a block (a dirty file page
  /// writing back through the cache). Never blocks: bookkeeping now, device
  /// time later (flush daemon or capacity eviction). The whole block is
  /// overwritten by a page writeback, so no read-for-allocate is needed.
  void write(unsigned client, u32 file, u64 block, u64 trace_id = 0);

  /// True while the device port is mid-transfer or requests wait.
  bool busy() const noexcept { return in_flight_ || !queue_.empty(); }
  bool block_cached(u32 file, u64 block) const { return blocks_.count(pack(file, block)) != 0; }
  bool block_dirty(u32 file, u64 block) const;

  // --- introspection ---
  u64 hits() const noexcept { return hits_.value(); }
  u64 misses() const noexcept { return misses_.value(); }
  u64 merged_reads() const noexcept { return merged_.value(); }
  u64 device_reads() const noexcept { return reads_.value(); }
  u64 device_writes() const noexcept { return writes_.value(); }
  u64 flushes() const noexcept { return flushes_.value(); }
  u64 evictions() const noexcept { return evictions_.value(); }
  u64 cached_blocks() const noexcept { return static_cast<u64>(blocks_.size()); }
  u64 dirty_blocks() const noexcept { return dirty_; }
  u64 queue_depth() const noexcept { return static_cast<u64>(queue_.size()); }
  u64 clients() const noexcept { return static_cast<u64>(clients_.size()); }
  u64 client_hits(unsigned client) const;
  u64 client_misses(unsigned client) const;

 private:
  struct Entry {
    std::list<u64>::iterator lru;  // position in lru_ (front = MRU)
    bool dirty = false;
  };
  struct Request {
    bool is_read = false;
    u64 key = 0;
    Cycles enqueued = 0;
    u64 trace_id = 0;
    std::vector<sim::EventFn> dones;  // read waiters; empty for writes
  };

  static u64 pack(u32 file, u64 block) noexcept {
    return (static_cast<u64>(file) << 40) | block;  // blocks fit far below 2^40
  }

  /// Inserts `key` resident-clean (or dirty), evicting the LRU block when
  /// over capacity — a dirty victim queues a background device write.
  void insert_block(u64 key, bool dirty);
  void touch(Entry& e);
  void enqueue(Request req);
  void pump();
  void complete(Request req);
  void arm_flush_daemon();
  void flush_tick();

  sim::Simulator& sim_;
  BufferCacheConfig cfg_;
  u64 block_bytes_;
  std::string name_;
  sim::TraceTrack trace_track_ = 0;

  struct Client {
    std::string name;
    Counter* hits = nullptr;
    Counter* misses = nullptr;
  };
  std::vector<Client> clients_;

  std::unordered_map<u64, Entry> blocks_;
  std::list<u64> lru_;  // front = most recently used
  u64 dirty_ = 0;

  std::deque<Request> queue_;
  bool in_flight_ = false;
  /// The in-flight request's key when it is a read — later misses on the
  /// same block attach here instead of issuing a second device read.
  Request inflight_req_{};
  u64 reads_bypassed_ = 0;  // starvation-guard odometer
  bool flush_armed_ = false;

  Counter& hits_;
  Counter& misses_;
  Counter& merged_;
  Counter& reads_;
  Counter& writes_;
  Counter& flushes_;
  Counter& evictions_;
  Histogram& read_wait_;
};

}  // namespace vmsls::paging

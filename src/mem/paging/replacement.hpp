// Page-replacement policies for the pager daemon and the frame pool.
//
// Each policy tracks a set of resident pages and, under memory pressure,
// nominates the next victim. Pages are opaque 64-bit keys: a per-process
// pager tracks raw virtual page numbers, while the cross-process FramePool
// packs (member id, vpn) into one key — the same CLOCK ring that sweeps one
// process sweeps the whole machine. CLOCK and the LRU approximation consume
// the accessed bits the MMU/walker set in the PTEs on every translation
// (read through the AccessedProbe the owner supplies) — the
// hardware/software contract that makes recency-based replacement
// implementable at all; FIFO and RANDOM ignore access history and serve as
// the locality-blind baselines the memory-pressure experiments compare
// against.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/pagetable.hpp"
#include "util/rng.hpp"

namespace vmsls::paging {

enum class PolicyKind { kClock, kLruApprox, kFifo, kRandom };

const char* policy_name(PolicyKind kind) noexcept;

/// Parses "clock" / "lru" / "fifo" / "random"; throws on anything else.
PolicyKind parse_policy(const std::string& name);

/// Reads-and-clears the accessed bit for a tracked key. The key is whatever
/// the policy's owner inserted — the owner knows how to resolve it back to a
/// page table and virtual address.
using AccessedProbe = std::function<bool(u64 key)>;

/// True when the page is pinned (an in-flight hardware access holds it).
/// Every policy skips pinned pages during victim selection — evicting one
/// would retarget the frame underneath a committed bus transaction.
using PinnedProbe = std::function<bool(u64 key)>;

/// True when the page landed through swap-in readahead and has not been
/// referenced since (a speculative, possibly wrong-path prefetch). Every
/// policy reclaims such pages *first*: a prediction that missed must not
/// push out a page the process demonstrably used. The owner (pager) clears
/// the flag the moment a reference is observed.
using SpeculativeProbe = std::function<bool(u64 key)>;

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Installs the pin filter; absent = nothing is ever pinned.
  void set_pinned_probe(PinnedProbe pinned) { pinned_ = std::move(pinned); }

  /// Installs the wrong-path-prefetch filter; absent = nothing is
  /// speculative and victim selection is unchanged. `any` is an optional
  /// cheap emptiness hint ("is anything speculative right now?"): when it
  /// returns false, policies skip the speculative pre-scan entirely instead
  /// of probing every tracked page — on fault paths with readahead off,
  /// that scan is pure overhead. Absent, every pre-scan runs.
  void set_speculative_probe(SpeculativeProbe speculative, std::function<bool()> any = {}) {
    speculative_ = std::move(speculative);
    any_speculative_ = std::move(any);
  }

  virtual const char* name() const noexcept = 0;

  /// Page became resident.
  virtual void on_insert(u64 key) = 0;

  /// Page left residency (pager eviction or an external unmap).
  virtual void on_remove(u64 key) = 0;

  /// Nominates the next victim among tracked, unpinned pages; nullopt when
  /// none qualify. Does NOT remove the page — the pager evicts it, which
  /// feeds back through on_remove.
  virtual std::optional<u64> pick_victim() = 0;

  virtual u64 tracked_pages() const noexcept = 0;

 protected:
  bool is_pinned(u64 key) const { return pinned_ && pinned_(key); }
  bool is_speculative(u64 key) const { return speculative_ && speculative_(key); }
  /// Whether the speculative pre-scan can find anything: false short-circuits
  /// it. Conservatively true when no hint was installed.
  bool maybe_speculative() const {
    return speculative_ != nullptr && (!any_speculative_ || any_speculative_());
  }

 private:
  PinnedProbe pinned_;
  SpeculativeProbe speculative_;
  std::function<bool()> any_speculative_;
};

/// `probe` supplies the accessed bits (CLOCK/LRU test-and-clear through it);
/// `seed` feeds RANDOM's generator so runs stay deterministic.
std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind, AccessedProbe probe, u64 seed = 1);

/// Convenience for single-process policies whose keys are raw virtual page
/// numbers: probes `pt` directly.
inline std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind, const mem::PageTable& pt,
                                                      u64 seed = 1) {
  return make_policy(
      kind,
      [&pt](u64 vpn) { return pt.test_and_clear_accessed(vpn << pt.config().page_bits); }, seed);
}

}  // namespace vmsls::paging

// Page-replacement policies for the pager daemon.
//
// Each policy tracks the set of resident data pages (virtual page numbers)
// and, under memory pressure, nominates the next victim. CLOCK and the
// LRU approximation consume the accessed bits the MMU/walker set in the
// PTEs on every translation — the hardware/software contract that makes
// recency-based replacement implementable at all; FIFO and RANDOM ignore
// access history and serve as the locality-blind baselines the
// memory-pressure experiments compare against.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/pagetable.hpp"
#include "util/rng.hpp"

namespace vmsls::paging {

enum class PolicyKind { kClock, kLruApprox, kFifo, kRandom };

const char* policy_name(PolicyKind kind) noexcept;

/// Parses "clock" / "lru" / "fifo" / "random"; throws on anything else.
PolicyKind parse_policy(const std::string& name);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Page became resident.
  virtual void on_insert(u64 vpn) = 0;

  /// Page left residency (pager eviction or an external unmap).
  virtual void on_remove(u64 vpn) = 0;

  /// Nominates the next victim among tracked pages; nullopt when none are
  /// tracked. Does NOT remove the page — the pager evicts it, which feeds
  /// back through on_remove.
  virtual std::optional<u64> pick_victim() = 0;

  virtual u64 tracked_pages() const noexcept = 0;
};

/// `pt` supplies the accessed bits (CLOCK/LRU test-and-clear them through
/// it); `seed` feeds RANDOM's generator so runs stay deterministic.
std::unique_ptr<ReplacementPolicy> make_policy(PolicyKind kind, const mem::PageTable& pt,
                                               u64 seed = 1);

}  // namespace vmsls::paging

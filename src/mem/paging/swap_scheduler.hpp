// Shared swap I/O front end: one device, N pagers, a real request queue.
//
// The per-pager SwapDevice of PRs 1–4 serialized transfers on a private
// `port_free_` timestamp, so N over-subscribed processes paged against N
// independent flash parts that never queued against each other. This class
// promotes the swap path to a first-class shared I/O subsystem, analogous
// to the shared memory bus:
//
//   * N pagers register as *owners* of one scheduler (per ProcessGroup,
//     when `SwapConfig::shared` is set) or one pager owns a private
//     instance — the same code path either way, so a single-member shared
//     device is cycle-identical to a private one.
//   * Requests carry an owner and a class (demand read >> prefetch read >>
//     background writeback) and wait in a real request queue; a pluggable
//     dispatch policy (FIFO, or priority with a bounded-bypass
//     writeback-starvation guard) picks what the single device port
//     services next.
//   * A clustering slot allocator keeps a process's evicted
//     virtually-neighboring pages in adjacent numeric slots (per-owner
//     regions of `cluster_pages` slots keyed by vpn), so the pager's
//     readahead can ask for the `neighbors` of a demand swap-in and pull
//     the pages the process is statistically about to fault on.
//
// The timing primitive stays SwapDevice: the scheduler hands it one
// transfer at a time, with pages identified by (owner, vpn) keys packed
// like the FramePool's. Per-owner counters land under "<owner>.swap.*" so
// per-process summaries keep working when the device itself is shared; in
// the private case those names coincide with the device's own and are
// aliased, not double-counted.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/paging/swap_device.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace vmsls::paging {

/// Request classes in descending dispatch priority (kPriority mode).
/// Demand *writes* are the fault path's eviction writebacks — a demand
/// fault is suspended on them, so only demand reads may bypass; kWriteback
/// is the pageout daemon's background cleaning, which everything bypasses
/// (up to the starvation guard).
enum class SwapReqClass { kDemandRead, kDemandWrite, kPrefetchRead, kWriteback };

const char* swap_req_class_name(SwapReqClass cls) noexcept;

class SwapScheduler {
 public:
  SwapScheduler(sim::Simulator& sim, const SwapConfig& cfg, u64 page_bytes, std::string name);

  SwapScheduler(const SwapScheduler&) = delete;
  SwapScheduler& operator=(const SwapScheduler&) = delete;

  const SwapConfig& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return name_; }

  /// Registers a client (a pager). Registration order fixes owner ids —
  /// deterministic under the ProcessGroup's attach-order contract. The
  /// owner name prefixes that client's per-owner counters
  /// ("<owner_name>.swap.reads" / ".writes" / ".queue_wait").
  unsigned register_owner(const std::string& owner_name);

  /// True when the device holds a copy of the owner's page.
  bool holds(unsigned owner, u64 vpn) const;

  /// Slot bookkeeping without device time (experiment-setup evictions).
  void note_swapped(unsigned owner, u64 vpn);

  /// Queues a timed page read (swap-in). Requires holds(owner, vpn); the
  /// slot frees when the transfer completes on the device port. When the
  /// read dispatches, any other queued reads on slots in the SAME cluster
  /// region ride along as one clustered device operation (one access
  /// latency, streamed bytes) — this is what makes readahead nearly free
  /// next to the demand read it follows. `trace_id` threads the requester's
  /// causal id through the "queue" and "io" trace spans (0 = untraced).
  void read(unsigned owner, u64 vpn, SwapReqClass cls, sim::EventFn done, u64 trace_id = 0);

  /// Runs `fill` with dispatch deferred, then pumps once: requests enqueued
  /// inside land in the queue atomically, so a demand read and its
  /// readahead dispatch as one clustered operation instead of the first
  /// read racing out alone on an idle port.
  void batched(const std::function<void()>& fill);

  /// Queues a timed page write (swap-out / writeback); `cls` must be
  /// kDemandWrite (fault-path eviction) or kWriteback (background
  /// cleaning). Allocates a slot at enqueue so holds() is immediately true.
  void write(unsigned owner, u64 vpn, SwapReqClass cls, sim::EventFn done, u64 trace_id = 0);

  /// Upgrades a *queued* prefetch read for the page to demand class (a
  /// demand fault coalesced onto it): the waiter is now a stalled thread,
  /// not a guess. No-op when the request already dispatched or none exists.
  void promote(unsigned owner, u64 vpn);

  /// True while the port is mid-transfer or requests wait in the queue —
  /// the pageout daemons' yield signal, now device-wide.
  bool busy() const noexcept { return in_flight_ || !queue_.empty(); }

  /// Pages of `owner` occupying the `k` slots directly after `vpn`'s slot,
  /// in ascending slot order, clipped to the cluster region (clustering
  /// guarantees they belong to the same owner). The readahead candidates
  /// for a demand swap-in of `vpn`.
  std::vector<u64> neighbors(unsigned owner, u64 vpn, unsigned k) const;

  // --- introspection ---
  u64 reads() const noexcept { return device_.reads(); }
  u64 writes() const noexcept { return device_.writes(); }
  u64 slots_in_use() const noexcept { return device_.slots_in_use(); }
  u64 queue_depth() const noexcept { return queue_.size(); }
  /// Queued requests of one class (telemetry probe; linear scan — swap
  /// queues are short).
  u64 queue_depth_class(SwapReqClass cls) const noexcept;
  u64 owners() const noexcept { return static_cast<u64>(owners_.size()); }
  u64 owner_reads(unsigned owner) const;
  u64 owner_writes(unsigned owner) const;
  u64 wb_promotions() const noexcept { return wb_promotions_.value(); }

 private:
  static constexpr unsigned kOwnerShift = 44;  // vpns fit far below 2^44

  struct Request {
    unsigned owner = 0;
    u64 key = 0;
    /// The key's swap slot, resolved once at enqueue. Valid for the queued
    /// request's whole lifetime: a held page's slot never moves, and the
    /// only free is the page's own read completion — so dispatch clusters
    /// on this field instead of re-probing slot_of_ per queued request.
    u64 slot = 0;
    SwapReqClass cls = SwapReqClass::kDemandRead;
    Cycles enqueued = 0;
    u64 trace_id = 0;  // requester's causal trace id (0 = untraced)
    sim::EventFn done;
  };

  /// Per-owner counters. Null pointers mean the name aliased the device's
  /// own aggregate counter (the private single-owner case) — the device
  /// already bumps it, so the scheduler must not bump it again.
  struct Owner {
    std::string name;
    Counter* reads = nullptr;
    Counter* writes = nullptr;
    Histogram* queue_wait = nullptr;
  };

  u64 pack(unsigned owner, u64 vpn) const;
  void alloc_slot(unsigned owner, u64 vpn);
  void free_slot(u64 key);
  std::size_t select_next();
  void pump();
  /// Issues one device operation: a single write, or a read batch (the
  /// selected read plus every queued same-cluster read) as one clustered
  /// transfer. `batch[0]` is the selected request.
  void dispatch(std::vector<Request> batch);
  /// Batch-vector recycling: dispatch hands its vector (and the Requests'
  /// heap nodes) back after completion, so steady-state fault traffic
  /// allocates no batch storage.
  std::vector<Request> take_batch();
  void recycle_batch(std::vector<Request> batch);

  sim::Simulator& sim_;
  SwapConfig cfg_;
  std::string name_;
  SwapDevice device_;
  sim::TraceTrack trace_track_ = 0;
  std::vector<Owner> owners_;

  std::deque<Request> queue_;
  std::vector<std::vector<Request>> batch_pool_;  // recycled dispatch batches
  bool in_flight_ = false;
  unsigned defer_ = 0;  // batched() scope depth: pump waits for the scope end
  /// Dispatches that bypassed the oldest queued request (the deque front,
  /// whatever its class) — the starvation-guard odometer. Bounds the wait
  /// of writebacks AND prefetches that higher-class traffic would
  /// otherwise bypass forever.
  u64 wb_bypassed_ = 0;

  // --- clustering slot allocator ---
  std::unordered_map<u64, u64> slot_of_;            // packed key -> numeric slot
  std::unordered_map<u64, u64> page_at_;            // numeric slot -> packed key
  std::unordered_map<u64, u64> region_of_cluster_;  // packed (owner, vpn/cluster) -> region
  std::unordered_map<u64, u64> cluster_of_region_;  // region -> packed cluster (for freeing)
  std::unordered_map<u64, u64> region_pop_;         // region -> slots in use
  std::set<u64> free_regions_;                      // lowest-first reuse: deterministic
  u64 next_region_ = 0;

  Histogram& queue_wait_;
  Histogram& queue_depth_;
  /// Queue wait split by request class ("<name>.sched.wait_<class>"): the
  /// fault-path latency attribution serving-mode tail analysis reads — a
  /// demand read stuck behind writebacks shows here, not in the aggregate.
  std::array<Histogram*, 4> class_wait_{};
  Counter& demand_reads_;
  Counter& demand_writes_;
  Counter& prefetch_reads_;
  Counter& writebacks_;
  Counter& wb_promotions_;
  Counter& prefetch_promotions_;
};

}  // namespace vmsls::paging

// Pager daemon: residency tracking, victim selection, and swap charging.
//
// The missing decision layer between AddressSpace::evict (mechanism) and
// the OS fault path (cost): the pager watches every map/unmap in the
// process address space, enforces a configurable frame budget on the
// hardware-thread fault path, picks victims through a pluggable
// replacement policy, evicts them through Process::evict — preserving the
// TLB-shootdown / walk-cache-flush invariants — and charges swap-device
// time for dirty writebacks and swap-ins. With frame_budget == 0 the pager
// is inert and the fault path degenerates to the pre-pressure model.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/paging/replacement.hpp"
#include "mem/paging/swap_device.hpp"
#include "sim/simulator.hpp"

namespace vmsls::rt {
class Process;
}

namespace vmsls::paging {

struct PagerConfig {
  /// Maximum resident data pages for the process; 0 = unlimited (pager
  /// tracks residency but never evicts on the fault path).
  u64 frame_budget = 0;
  PolicyKind policy = PolicyKind::kClock;
  SwapConfig swap{};
  u64 policy_seed = 1;  // feeds the RANDOM policy only
};

class Pager final : public mem::ResidencyObserver {
 public:
  Pager(sim::Simulator& sim, rt::Process& process, const PagerConfig& cfg, std::string name);
  ~Pager() override;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  const PagerConfig& config() const noexcept { return cfg_; }
  SwapDevice& swap() noexcept { return swap_; }
  ReplacementPolicy& policy() noexcept { return *policy_; }

  // --- mem::ResidencyObserver (driven by the address space) ---
  void on_map(u64 vpn) override;
  void on_unmap(u64 vpn, bool dirty) override;

  /// Fault-path entry: makes room under the frame budget (evicting victims,
  /// charging writeback time for dirty ones) and charges swap-in time when
  /// the faulting page lives in swap. `ready` fires once the frame is
  /// guaranteed available and the page contents are on their way in; the
  /// caller then maps the page and retries the access.
  void handle_fault(VirtAddr va, bool is_write, std::function<void()> ready);

  /// Synchronous emergency reclaim (frame-allocator pressure callback):
  /// evicts up to `pages` victims functionally, without device timing.
  /// Returns pages actually reclaimed.
  u64 reclaim(u64 pages);

  u64 evictions() const noexcept { return evictions_.value(); }
  u64 swap_ins() const noexcept { return swap_ins_.value(); }
  u64 writebacks() const noexcept { return writebacks_.value(); }

 private:
  void ensure_frame_available(std::function<void()> then);
  unsigned page_bits() const noexcept;

  sim::Simulator& sim_;
  rt::Process& process_;
  mem::AddressSpace& as_;
  PagerConfig cfg_;
  std::string name_;
  SwapDevice swap_;
  std::unique_ptr<ReplacementPolicy> policy_;
  /// Faults coalescing on an in-flight swap-in: one device read serves all
  /// waiters (the kernel's wait-on-page-lock behavior).
  std::unordered_map<u64, std::vector<std::function<void()>>> inflight_swap_ins_;
  /// Pages a fault has reserved a frame for but not yet mapped. Counted
  /// against the budget so concurrent faults cannot double-spend one freed
  /// frame; entries clear when the page maps (on_map).
  std::unordered_set<u64> pending_maps_;

  Counter& evictions_;
  Counter& swap_ins_;
  Counter& writebacks_;
  Counter& reclaims_;
  Histogram& fault_stall_;
};

}  // namespace vmsls::paging

// Pager daemon: residency tracking, victim selection, and swap charging.
//
// The missing decision layer between AddressSpace::evict (mechanism) and
// the OS fault path (cost): the pager watches every map/unmap in the
// process address space, enforces a configurable frame budget on the
// hardware-thread fault path, picks victims through a pluggable
// replacement policy, evicts them through Process::evict — preserving the
// TLB-shootdown / walk-cache-flush invariants — and charges swap-device
// time for dirty writebacks and swap-ins. With frame_budget == 0 the pager
// is inert and the fault path degenerates to the pre-pressure model.
//
// Swap traffic goes through a SwapScheduler front end — owned privately,
// or shared with the other pagers of a ProcessGroup ("one flash part, N
// pagers") when SwapConfig::shared is set. Requests carry this pager's
// owner id and a class (demand read >> prefetch read >> writeback) and
// wait in the scheduler's queue. On each demand swap-in the pager may also
// run readahead: the scheduler's clustering slot allocator keeps the
// process's evicted neighbors in adjacent slots, and up to
// SwapConfig::readahead of them are pulled as prefetch-class reads —
// admitted only under free budget headroom (prefetch never evicts), landing
// resident-clean, and flagged *speculative* until first reference so every
// replacement policy reclaims wrong-path prefetches first (the
// SpeculativeProbe). Accuracy/coverage counters: `prefetches`,
// `prefetch_useful` (referenced before eviction), `prefetch_wasted`
// (evicted unreferenced), `prefetch_late` (a demand fault coalesced onto
// the in-flight prefetch).
//
// Under multi-process over-subscription the pager attaches to a shared
// FramePool: in kGlobal budget mode the fault path asks the pool for
// victims (which may belong to another process), and two optional
// background services run ahead of pressure:
//
//   * a WSClock-style working-set estimator that periodically sweeps the
//     accessed bits and reports how many pages the process referenced
//     within the sampling window (the pool's auto_budget uses this to
//     re-divide the machine budget), and
//   * a pageout daemon that writes dirty resident pages to swap while the
//     system idles toward the watermark, so later evictions are clean and
//     the fault path does not stall on writeback.
//
// Both services are activity-gated: they re-arm on faults and mappings and
// disarm when the process quiesces, so the event queue still drains.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/bus.hpp"
#include "mem/paging/buffer_cache.hpp"
#include "mem/paging/frame_pool.hpp"
#include "mem/paging/replacement.hpp"
#include "mem/paging/swap_scheduler.hpp"
#include "sim/simulator.hpp"

namespace vmsls::rt {
class Process;
class OsModel;
}  // namespace vmsls::rt

namespace vmsls::paging {

struct PagerConfig {
  /// Maximum resident data pages for the process; 0 = unlimited (pager
  /// tracks residency but never evicts on the fault path).
  u64 frame_budget = 0;
  PolicyKind policy = PolicyKind::kClock;
  /// Swap timing plus the shared-device / scheduling / readahead knobs
  /// (see SwapConfig) — `swap.shared` selects the group-wide device.
  SwapConfig swap{};
  /// File-device timing + cache sizing for file-backed regions (see
  /// BufferCacheConfig). Only consulted when the pager owns a private
  /// buffer cache; a ProcessGroup builds the machine-wide cache from the
  /// platform's copy of these knobs instead.
  BufferCacheConfig bcache{};
  u64 policy_seed = 1;  // feeds the RANDOM policy only

  /// kGlobal defers budget enforcement to the attached FramePool (the
  /// machine-wide sweep); kPerProcess keeps it on frame_budget.
  BudgetMode budget_mode = BudgetMode::kPerProcess;

  /// Working-set estimator sweep period in cycles; 0 disables it.
  Cycles ws_interval = 0;
  /// Pages referenced within this many cycles count toward the working
  /// set; 0 = one sweep interval.
  Cycles ws_window = 0;

  /// Pageout daemon period in cycles; 0 disables it.
  Cycles pageout_interval = 0;
  /// Dirty pages cleaned (written back, dirty bit cleared) per tick.
  u64 pageout_batch = 4;
  /// Daemon runs only above this percentage of the frame budget (pool
  /// budget in kGlobal mode) — "ahead of pressure", not constantly.
  u64 pageout_watermark_pct = 75;
};

class Pager final : public mem::ResidencyObserver {
 public:
  /// `shared_swap` non-null shares that scheduler (the ProcessGroup's "one
  /// flash part"); null gives the pager a private SwapScheduler named
  /// "<name>.swap" — the same front end either way, so a single-member
  /// shared device is cycle-identical to a private one. `shared_bcache`
  /// follows the same pattern for the file side: non-null shares the
  /// group's machine-wide BufferCache, null builds a private one named
  /// "<name>.bcache" from cfg.bcache.
  Pager(sim::Simulator& sim, rt::Process& process, const PagerConfig& cfg, std::string name,
        SwapScheduler* shared_swap = nullptr, BufferCache* shared_bcache = nullptr);
  ~Pager() override;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  const PagerConfig& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return name_; }
  ReplacementPolicy& policy() noexcept { return *policy_; }
  rt::Process& process() noexcept { return process_; }
  mem::AddressSpace& space() noexcept { return as_; }

  /// This pager's per-owner window onto the swap front end (device traffic
  /// attributable to this process).
  class SwapView {
   public:
    SwapView(SwapScheduler& sched, unsigned owner) noexcept : sched_(&sched), owner_(owner) {}
    u64 reads() const { return sched_->owner_reads(owner_); }
    u64 writes() const { return sched_->owner_writes(owner_); }
    bool holds(u64 vpn) const { return sched_->holds(owner_, vpn); }
    bool busy() const noexcept { return sched_->busy(); }

   private:
    SwapScheduler* sched_;
    unsigned owner_;
  };
  SwapView swap() const noexcept { return SwapView(*sched_, swap_owner_); }
  SwapScheduler& swap_scheduler() noexcept { return *sched_; }
  unsigned swap_owner() const noexcept { return swap_owner_; }

  /// The file-I/O front end (owned or the group's shared cache) and this
  /// pager's client id on it — the per-process hit/miss window.
  BufferCache& buffer_cache() noexcept { return *bcache_; }
  const BufferCache& buffer_cache() const noexcept { return *bcache_; }
  unsigned bcache_client() const noexcept { return bcache_client_; }

  /// Background services (pageout daemon ticks) charge their CPU time on
  /// the OS service cores when a model is attached; nullptr = free ticks.
  void set_os(rt::OsModel* os, Cycles tick_cost) noexcept {
    os_ = os;
    daemon_tick_cost_ = tick_cost;
  }

  /// COW page copies are charged as bus traffic (one page-sized write
  /// burst) when a bus is wired; without one the copy is functional-only
  /// and the OS tail's copy cost is the only charge. Optional because
  /// bench rigs drive the fault path without a memory fabric.
  void set_bus(mem::MemoryBus* bus) noexcept { bus_ = bus; }

  // --- mem::ResidencyObserver (driven by the address space) ---
  void on_map(u64 vpn, u64 frame) override;
  void on_unmap(u64 vpn, bool dirty, u64 frame, u64 sharers_left) override;
  void on_cow(u64 vpn, u64 old_frame, u64 new_frame) override;

  /// Fault-path entry: makes room under the frame budget (evicting victims,
  /// charging writeback time for dirty ones) and charges swap-in time when
  /// the faulting page lives in swap. `ready` fires once the frame is
  /// guaranteed available and the page contents are on their way in; the
  /// caller then maps the page and retries the access. Concurrent faults on
  /// one page coalesce from the moment the first fault starts securing a
  /// frame: one frame reservation and at most one device read serve all
  /// waiters, even when the first fault suspends on an async writeback.
  /// A demand fault landing on an in-flight *prefetch* coalesces the same
  /// way (and counts toward `prefetch_late`).
  void handle_fault(VirtAddr va, bool is_write, sim::EventFn ready);

  /// Synchronous emergency reclaim (frame-allocator pressure callback):
  /// evicts up to `pages` victims functionally, without device timing.
  /// Returns pages actually reclaimed.
  u64 reclaim(u64 pages);

  // --- FramePool interface ---
  u64 frame_budget() const noexcept { return cfg_.frame_budget; }
  void set_frame_budget(u64 budget) noexcept { cfg_.frame_budget = budget; }
  u64 resident_pages() const noexcept { return as_.resident_pages(); }
  u64 pending_pages() const noexcept { return static_cast<u64>(pending_maps_.size()); }
  bool page_dirty(u64 vpn) const;
  /// Test-and-clear of the accessed bit (pool global sweep + own policy);
  /// observed references feed the working-set clock and retire the page's
  /// speculative-prefetch flag.
  bool probe_accessed(u64 vpn);
  /// Evicts one resident page through the process (TLB shootdown + walk
  /// cache flush) and counts it; the caller charges any writeback time.
  void evict_resident(u64 vpn);

  /// True while the page is an unreferenced readahead landing — the
  /// replacement policies' reclaim-first probe.
  bool is_speculative(u64 vpn) const { return speculative_.count(vpn) != 0; }

  /// Whether any page is currently speculative — the policies' cheap
  /// emptiness hint, letting them skip the reclaim-first pre-scan.
  bool any_speculative() const noexcept { return !speculative_.empty(); }

  /// Latest working-set estimate (pages referenced within the window);
  /// 0 until the first sweep completes.
  u64 working_set_pages() const noexcept { return ws_pages_; }

  /// Budget demand: the WS estimate plus a fault-frequency correction
  /// (faults observed in the last window). A thrashing process cannot
  /// exhibit its working set through references — with two frames it only
  /// ever touches two pages — so its fault rate carries the demand signal
  /// instead (Denning's WS + PFF hybrid). What the pool's auto-budget uses.
  u64 ws_demand_pages() const noexcept { return ws_demand_; }

  /// True once at least one estimator sweep has completed.
  bool has_ws_estimate() const noexcept { return ws_sweeps_.value() > 0; }

  /// Pages a long-lived pinner (the DMA offload driver) may hold pinned at
  /// once without starving the fault path: one frame below the effective
  /// budget (the pool's machine-wide budget in kGlobal mode), so victim
  /// selection always has at least one candidate frame left to turn over.
  /// 0 = no budget enforced, pin freely.
  u64 pin_quota() const noexcept;

  u64 evictions() const noexcept { return evictions_.value(); }
  u64 swap_ins() const noexcept { return swap_ins_.value(); }
  u64 writebacks() const noexcept { return writebacks_.value(); }
  u64 pageouts() const noexcept { return pageouts_.value(); }
  /// File-lifecycle ledger (anon traffic never touches these, swap counters
  /// never count file pages — the two lifecycles partition fault traffic):
  /// demand faults served from the file tier (buffer-cache hit or device
  /// read), clean file pages dropped for free at eviction, and dirty
  /// shared-file pages written back through the buffer cache.
  u64 file_reads() const noexcept { return file_reads_.value(); }
  u64 file_drops() const noexcept { return file_drops_.value(); }
  u64 file_writebacks() const noexcept { return file_writebacks_.value(); }
  /// Demand faults that needed neither swap nor file: first-touch zero-fill.
  u64 zero_fills() const noexcept { return zero_fills_.value(); }
  /// Sharing ledger. Together with the file/swap counters these partition
  /// every primary fault and every unmap exactly once:
  ///   read faults  == swap_ins + file_reads + zero_fills
  ///                   + share_hits + inherited_fills
  ///   write faults on resident RO pages == cow_copies + cow_upgrades
  ///   unmaps == swap_releases + file_drops + file_writebacks
  ///             + shared_releases
  /// `share_hits`: MAP_SHARED faults resolved to a frame another process
  /// already holds resident — no device read, no buffer-cache trip.
  u64 share_hits() const noexcept { return share_hits_.value(); }
  /// Faults filled for free from a backing copy inherited at fork (the
  /// parent had evicted the page before forking, so the child holds the
  /// bytes but no swap slot of its own).
  u64 inherited_fills() const noexcept { return inherited_fills_.value(); }
  /// COW write faults that split a shared frame into a private copy.
  u64 cow_copies() const noexcept { return cow_copies_.value(); }
  /// COW write faults where the refcount had already dropped to 1: write
  /// re-enabled in place, no copy, no frame.
  u64 cow_upgrades() const noexcept { return cow_upgrades_.value(); }
  /// Unmaps of clean MAP_SHARED pages whose frame lives on under another
  /// sharer's mapping (nothing dropped, nothing written back).
  u64 shared_releases() const noexcept { return shared_releases_.value(); }
  /// Unmaps whose page entered (or kept) a swap-lifecycle identity.
  u64 swap_releases() const noexcept { return swap_releases_.value(); }
  u64 prefetches() const noexcept { return prefetches_.value(); }
  u64 prefetch_useful() const noexcept { return prefetch_useful_.value(); }
  u64 prefetch_wasted() const noexcept { return prefetch_wasted_.value(); }
  u64 prefetch_late() const noexcept { return prefetch_late_.value(); }

 private:
  friend class FramePool;  // attach/detach set pool_

  /// `trace_id` is the asking fault's causal id: it labels pool eviction
  /// instants, while each dirty writeback issued here gets a fresh id of
  /// its own (a writeback is a distinct device request with its own
  /// queue/io spans).
  void ensure_frame_available(u64 trace_id, sim::EventFn then);
  /// Write fault on a resident read-only page: budget work + the copy's bus
  /// charge for a shared frame, a free in-place upgrade for a sole mapping.
  void handle_cow_fault(VirtAddr va, u64 vpn, Cycles start, sim::EventFn ready);
  void complete_fault(u64 vpn, Cycles start, sim::EventFn& ready);
  /// Issues prefetch-class reads for the demand swap-in's slot neighbors
  /// that fit under free budget headroom.
  void issue_readahead(u64 demand_vpn);
  void start_prefetch(u64 vpn);
  void finish_prefetch(u64 vpn);
  bool prefetch_headroom() const;
  /// Retires the speculative flag at eviction time, attributing the page
  /// to `prefetch_useful` (accessed bit set) or `prefetch_wasted`.
  void settle_speculative(u64 vpn);
  void note_activity();
  void arm_daemons();
  void ws_sweep();
  void pageout_tick();
  bool over_pageout_watermark() const;
  /// Cached at construction: chased through three pointers per fault before,
  /// and the page-table geometry never changes after elaboration.
  unsigned page_bits() const noexcept { return page_bits_; }

  sim::Simulator& sim_;
  rt::Process& process_;
  mem::AddressSpace& as_;
  PagerConfig cfg_;
  std::string name_;
  sim::TraceTrack trace_track_ = 0;
  std::unique_ptr<SwapScheduler> owned_swap_;  // private front end (no shared device)
  SwapScheduler* sched_ = nullptr;             // owned_swap_ or the group's shared scheduler
  unsigned swap_owner_ = 0;
  std::unique_ptr<BufferCache> owned_bcache_;  // private file front end
  BufferCache* bcache_ = nullptr;              // owned_bcache_ or the group's shared cache
  unsigned bcache_client_ = 0;
  std::unique_ptr<ReplacementPolicy> policy_;
  FramePool* pool_ = nullptr;
  mem::MemoryBus* bus_ = nullptr;  // COW copy charging; optional
  rt::OsModel* os_ = nullptr;
  Cycles daemon_tick_cost_ = 0;
  unsigned page_bits_ = 0;
  /// ws_last_ref_ is only ever *read* by the WS estimator, which only runs
  /// when ws_interval > 0 — without it the per-map/per-probe hash writes
  /// were dead weight on the fault path.
  bool track_ws_ = false;

  /// Faults coalescing on a page whose frame is being secured or whose
  /// contents are mid-read: one reservation + one device read serve all
  /// waiters (the kernel's wait-on-page-lock behavior). An entry exists
  /// from the moment the first fault passes the residency check until its
  /// `ready` fires. In-flight prefetches register here too, so demand
  /// faults coalesce onto them instead of double-reading the device.
  /// `trace_id` is the primary fault's (or prefetch's) causal id, shared by
  /// the coalesce instants and the span end.
  struct InflightFault {
    u64 trace_id = 0;
    std::vector<sim::EventFn> waiters;
  };
  std::unordered_map<u64, InflightFault> inflight_faults_;
  /// Pages a fault has reserved a frame for but not yet mapped. Counted
  /// against the budget so concurrent faults cannot double-spend one freed
  /// frame; entries clear when the page maps (on_map).
  std::unordered_set<u64> pending_maps_;
  /// In-flight prefetch reads (subset of inflight_faults_ keys).
  std::unordered_set<u64> inflight_prefetch_;
  /// Resident readahead landings not yet referenced (reclaimed first).
  std::unordered_set<u64> speculative_;

  // --- working-set estimator state ---
  std::unordered_map<u64, Cycles> ws_last_ref_;  // vpn -> last observed reference
  u64 ws_pages_ = 0;
  u64 ws_demand_ = 0;
  u64 faults_since_sweep_ = 0;

  // --- activity gating for the background services ---
  u64 activity_ = 0;
  u64 ws_seen_activity_ = 0;
  u64 pageout_seen_activity_ = 0;
  bool ws_armed_ = false;
  bool pageout_armed_ = false;

  Counter& evictions_;
  Counter& swap_ins_;
  Counter& file_reads_;
  Counter& file_drops_;
  Counter& file_writebacks_;
  Counter& zero_fills_;
  Counter& share_hits_;
  Counter& inherited_fills_;
  Counter& cow_copies_;
  Counter& cow_upgrades_;
  Counter& shared_releases_;
  Counter& swap_releases_;
  Counter& writebacks_;
  Counter& reclaims_;
  Counter& pageouts_;
  Counter& ws_sweeps_;
  Counter& prefetches_;
  Counter& prefetch_useful_;
  Counter& prefetch_wasted_;
  Counter& prefetch_late_;
  Histogram& fault_stall_;
  Histogram& ws_hist_;
};

}  // namespace vmsls::paging

#include "mem/paging/pager.hpp"

#include <utility>

#include "rt/process.hpp"
#include "util/log.hpp"

namespace vmsls::paging {

Pager::Pager(sim::Simulator& sim, rt::Process& process, const PagerConfig& cfg, std::string name)
    : sim_(sim),
      process_(process),
      as_(process.address_space()),
      cfg_(cfg),
      name_(std::move(name)),
      swap_(sim, cfg.swap, as_.page_bytes(), name_ + ".swap"),
      policy_(make_policy(cfg.policy, as_.page_table(), cfg.policy_seed)),
      evictions_(sim.stats().counter(name_ + ".evictions")),
      swap_ins_(sim.stats().counter(name_ + ".swap_ins")),
      writebacks_(sim.stats().counter(name_ + ".writebacks")),
      reclaims_(sim.stats().counter(name_ + ".reclaims")),
      fault_stall_(sim.stats().histogram(name_ + ".fault_stall")) {
  as_.set_residency_observer(this);
  as_.set_reclaim_hook([this](u64 pages) { return reclaim(pages); });
  // Pages already resident when the pager attaches (pinned buffers mapped at
  // elaboration) enter policy tracking so they are evictable under pressure.
  as_.for_each_resident([this](u64 vpn) { policy_->on_insert(vpn); });
}

Pager::~Pager() {
  as_.set_residency_observer(nullptr);
  as_.set_reclaim_hook(nullptr);
}

unsigned Pager::page_bits() const noexcept { return as_.page_table().config().page_bits; }

void Pager::on_map(u64 vpn) {
  pending_maps_.erase(vpn);
  policy_->on_insert(vpn);
}

void Pager::on_unmap(u64 vpn, bool dirty) {
  (void)dirty;  // contents always reach the backing store; the *time* for
                // dirty pages is charged on the pager's own eviction path
  policy_->on_remove(vpn);
  swap_.note_swapped(vpn);
}

void Pager::ensure_frame_available(std::function<void()> then) {
  // Clean victims evict in a plain loop; a dirty victim suspends the loop
  // until its writeback completes on the device port (the callback arrives
  // on a fresh stack from the event loop, so eviction bursts of any size
  // are stack-safe).
  // Frames reserved by not-yet-mapped faults count against the budget, or
  // two in-flight faults would double-spend one freed frame.
  while (cfg_.frame_budget != 0 &&
         as_.resident_pages() + pending_maps_.size() > cfg_.frame_budget) {
    const auto victim = policy_->pick_victim();
    if (!victim) break;
    const VirtAddr vva = *victim << page_bits();
    const auto pte = as_.page_table().lookup(vva);
    const bool dirty = pte && pte->dirty;
    log_debug(name_, "evict vpn=0x", std::hex, *victim, dirty ? " (dirty)" : " (clean)");
    process_.evict(vva, 1);  // shoots down TLBs + flushes walk caches
    evictions_.add();
    if (dirty) {
      writebacks_.add();
      swap_.write_page(*victim, [this, then = std::move(then)]() mutable {
        ensure_frame_available(std::move(then));
      });
      return;
    }
  }
  then();
}

void Pager::handle_fault(VirtAddr va, bool is_write, std::function<void()> ready) {
  (void)is_write;
  const Cycles start = sim_.now();
  const u64 vpn = va >> page_bits();
  if (as_.is_mapped(va)) {
    // A concurrent fault on the same page already completed: no frame and
    // no swap-in needed — and crucially no victim eviction either.
    fault_stall_.record(0);
    ready();
    return;
  }
  if (auto it = inflight_swap_ins_.find(vpn); it != inflight_swap_ins_.end()) {
    // Same page is mid-read: coalesce onto that read before any eviction —
    // this fault consumes no frame of its own.
    it->second.push_back([this, ready = std::move(ready), start] {
      fault_stall_.record(sim_.now() - start);
      ready();
    });
    return;
  }
  pending_maps_.insert(vpn);
  ensure_frame_available([this, va, vpn, ready = std::move(ready), start]() mutable {
    // A concurrent fault may have brought the page in already — don't pay
    // (or serialize on) a second device read for a resident page.
    if (!as_.is_mapped(va) && swap_.holds(vpn)) {
      swap_ins_.add();
      inflight_swap_ins_.emplace(vpn, std::vector<std::function<void()>>{});
      swap_.read_page(vpn, [this, vpn, ready = std::move(ready), start] {
        auto waiters = std::move(inflight_swap_ins_[vpn]);
        inflight_swap_ins_.erase(vpn);
        fault_stall_.record(sim_.now() - start);
        ready();
        for (auto& w : waiters) w();
      });
    } else {
      fault_stall_.record(sim_.now() - start);
      ready();
    }
  });
}

u64 Pager::reclaim(u64 pages) {
  u64 done = 0;
  for (u64 i = 0; i < pages; ++i) {
    const auto victim = policy_->pick_victim();
    if (!victim) break;
    process_.evict(*victim << page_bits(), 1);
    evictions_.add();
    reclaims_.add();
    ++done;
  }
  return done;
}

}  // namespace vmsls::paging

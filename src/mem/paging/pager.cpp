#include "mem/paging/pager.hpp"

#include <algorithm>
#include <utility>

#include "rt/os.hpp"
#include "rt/process.hpp"
#include "util/log.hpp"

namespace vmsls::paging {

Pager::Pager(sim::Simulator& sim, rt::Process& process, const PagerConfig& cfg, std::string name,
             SwapScheduler* shared_swap, BufferCache* shared_bcache)
    : sim_(sim),
      process_(process),
      as_(process.address_space()),
      cfg_(cfg),
      name_(std::move(name)),
      policy_(make_policy(
          cfg.policy, [this](u64 vpn) { return probe_accessed(vpn); }, cfg.policy_seed)),
      evictions_(sim.stats().counter(name_ + ".evictions")),
      swap_ins_(sim.stats().counter(name_ + ".swap_ins")),
      file_reads_(sim.stats().counter(name_ + ".file_reads")),
      file_drops_(sim.stats().counter(name_ + ".file_drops")),
      file_writebacks_(sim.stats().counter(name_ + ".file_writebacks")),
      zero_fills_(sim.stats().counter(name_ + ".zero_fills")),
      share_hits_(sim.stats().counter(name_ + ".share_hits")),
      inherited_fills_(sim.stats().counter(name_ + ".inherited_fills")),
      cow_copies_(sim.stats().counter(name_ + ".cow_copies")),
      cow_upgrades_(sim.stats().counter(name_ + ".cow_upgrades")),
      shared_releases_(sim.stats().counter(name_ + ".shared_releases")),
      swap_releases_(sim.stats().counter(name_ + ".swap_releases")),
      writebacks_(sim.stats().counter(name_ + ".writebacks")),
      reclaims_(sim.stats().counter(name_ + ".reclaims")),
      pageouts_(sim.stats().counter(name_ + ".pageouts")),
      ws_sweeps_(sim.stats().counter(name_ + ".ws_sweeps")),
      prefetches_(sim.stats().counter(name_ + ".prefetches")),
      prefetch_useful_(sim.stats().counter(name_ + ".prefetch_useful")),
      prefetch_wasted_(sim.stats().counter(name_ + ".prefetch_wasted")),
      prefetch_late_(sim.stats().counter(name_ + ".prefetch_late")),
      fault_stall_(sim.stats().histogram(name_ + ".fault_stall")),
      ws_hist_(sim.stats().histogram(name_ + ".ws_pages")) {
  trace_track_ = sim_.trace().track(name_);
  if (shared_swap != nullptr) {
    require(shared_swap->config().read_latency == cfg_.swap.read_latency &&
                shared_swap->config().write_latency == cfg_.swap.write_latency,
            name_ + ": shared swap device timing disagrees with this pager's swap config");
    sched_ = shared_swap;
  } else {
    owned_swap_ = std::make_unique<SwapScheduler>(sim, cfg_.swap, as_.page_bytes(),
                                                  name_ + ".swap");
    sched_ = owned_swap_.get();
  }
  swap_owner_ = sched_->register_owner(name_);
  if (shared_bcache != nullptr) {
    bcache_ = shared_bcache;
  } else {
    owned_bcache_ =
        std::make_unique<BufferCache>(sim, cfg_.bcache, as_.page_bytes(), name_ + ".bcache");
    bcache_ = owned_bcache_.get();
  }
  bcache_client_ = bcache_->register_client(name_);
  page_bits_ = as_.page_table().config().page_bits;
  track_ws_ = cfg_.ws_interval > 0;
  policy_->set_pinned_probe([this](u64 vpn) { return as_.is_pinned_vpn(vpn); });
  policy_->set_speculative_probe([this](u64 vpn) { return is_speculative(vpn); },
                                 [this] { return !speculative_.empty(); });
  as_.set_residency_observer(this);
  as_.set_reclaim_hook([this](u64 pages) { return reclaim(pages); });
  // Pages already resident when the pager attaches (pinned buffers mapped at
  // elaboration) enter policy tracking so they are evictable under pressure.
  as_.for_each_resident([this](u64 vpn) { policy_->on_insert(vpn); });
}

Pager::~Pager() {
  if (pool_) pool_->detach(*this);
  as_.set_residency_observer(nullptr);
  as_.set_reclaim_hook(nullptr);
}

void Pager::on_map(u64 vpn, u64 frame) {
  if (pending_maps_.erase(vpn) > 0 && pool_) pool_->note_pending(-1);
  policy_->on_insert(vpn);
  if (track_ws_) ws_last_ref_[vpn] = sim_.now();  // a fresh mapping is a reference
  if (pool_) pool_->note_map(*this, vpn, frame);
  note_activity();
}

void Pager::on_unmap(u64 vpn, bool dirty, u64 frame, u64 sharers_left) {
  policy_->on_remove(vpn);
  if (track_ws_) ws_last_ref_.erase(vpn);
  // An external unmap (experiment-setup eviction) of a speculative page is
  // wasted work; the pager's own evictions settle the flag beforehand with
  // the accessed bit still readable.
  if (speculative_.erase(vpn) > 0) prefetch_wasted_.add();
  // Lifecycle fork — each unmap lands in exactly ONE bucket, whoever
  // initiated it (own eviction loop, pool global sweep, emergency reclaim,
  // experiment-setup evictions), so the buckets partition all eviction
  // traffic and a frame unmapped by N sharers contributes N bucket entries,
  // never more (the double-count audit this ledger encodes). Anonymous
  // pages — and private file pages once they hold a diverged copy in the
  // backing store — live in swap: the page gets a slot and every refault
  // pays a swap-in (`swap_releases`). File pages whose truth is the file
  // get no slot: dirty shared ones write back through the buffer cache
  // (bookkeeping now, device time absorbed in the background; concurrent
  // sharers' writebacks of one block dedup into a single device write
  // inside the cache — "exactly one writeback" per shared frame), clean
  // ones whose frame other sharers still hold release for free
  // (`shared_releases`), and the last clean mapping drops the frame
  // (`file_drops`).
  const auto fp = as_.file_page(vpn);
  if (!fp || (!fp->shared && as_.has_backing(vpn))) {
    swap_releases_.add();
    sched_->note_swapped(swap_owner_, vpn);
  } else if (fp->shared && dirty) {
    file_writebacks_.add();
    bcache_->write(bcache_client_, fp->file->id(), fp->block, VMSLS_TRACE_NEW_ID(sim_.trace()));
  } else if (fp->shared && sharers_left > 0) {
    shared_releases_.add();
  } else {
    file_drops_.add();
  }
  if (pool_) pool_->note_unmap(*this, vpn, frame);
  note_activity();
}

void Pager::on_cow(u64 vpn, u64 old_frame, u64 new_frame) {
  if (pending_maps_.erase(vpn) > 0 && pool_) pool_->note_pending(-1);
  // The page never left residency — own-policy tracking (vpn-keyed) and the
  // WS clock are untouched; only the pool's frame-keyed owner-set moves.
  if (pool_) pool_->note_cow(*this, vpn, old_frame, new_frame);
  note_activity();
}

bool Pager::page_dirty(u64 vpn) const {
  const auto pte = as_.page_table().lookup(vpn << page_bits());
  return pte && pte->dirty;
}

bool Pager::probe_accessed(u64 vpn) {
  // Every consumer of the accessed bit funnels through here — the pager's
  // own policy, the pool's global sweep, and the WS estimator — so a
  // reference consumed by one is still credited to the working-set clock.
  // (The bit is a single hardware resource; without this the estimator
  // undercounts exactly when eviction sweeps run hottest.)
  if (!as_.page_table().test_and_clear_accessed(vpn << page_bits())) return false;
  if (track_ws_) ws_last_ref_[vpn] = sim_.now();
  // A referenced readahead landing graduates to a real resident page: the
  // prediction was right.
  if (speculative_.erase(vpn) > 0) prefetch_useful_.add();
  return true;
}

void Pager::settle_speculative(u64 vpn) {
  auto it = speculative_.find(vpn);
  if (it == speculative_.end()) return;
  speculative_.erase(it);
  // The accessed bit is the page's last word: set means the prefetch was
  // used (just never swept), clear means it truly was wrong-path.
  if (as_.page_table().test_and_clear_accessed(vpn << page_bits()))
    prefetch_useful_.add();
  else
    prefetch_wasted_.add();
}

void Pager::evict_resident(u64 vpn) {
  // Pinned pages back in-flight DMA and committed bus transactions; every
  // victim-selection path (own policy, pool sweep, reclaim) must have
  // filtered them out. Evicting one would retarget the frame mid-transfer.
  require(!as_.is_pinned_vpn(vpn), name_ + ": pinned page selected as eviction victim");
  settle_speculative(vpn);
  process_.evict(vpn << page_bits(), 1);  // shoots down TLBs + flushes walk caches
  evictions_.add();
  VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "shootdown", 0, vpn);
}

u64 Pager::pin_quota() const noexcept {
  // The quota floors at 1: a transfer must be able to pin at least one
  // page to make progress, so at degenerate budgets (1 frame per process,
  // or a global budget at or below the member count) pins may consume the
  // whole budget and the one-frame headroom lapses. Victim selection then
  // finds no candidate and the fault path proceeds over budget — graceful
  // degradation, bounded by the floor, in configurations too small to
  // page in anyway.
  if (pool_ != nullptr && cfg_.budget_mode == BudgetMode::kGlobal) {
    // The machine-wide budget is shared: every member process may host an
    // offload driver pinning against it, and the drivers admit
    // independently, so each gets an equal slice with one frame of
    // headroom.
    const u64 budget = pool_->budget();
    if (budget == 0) return 0;
    const u64 share = budget / std::max<u64>(1, pool_->members());
    return share > 1 ? share - 1 : 1;
  }
  const u64 budget = cfg_.frame_budget;
  if (budget == 0) return 0;
  return budget > 1 ? budget - 1 : 1;
}

void Pager::ensure_frame_available(u64 trace_id, sim::EventFn then) {
  // Clean victims evict in a plain loop; a dirty victim suspends the loop
  // until its writeback completes on the device port (the callback arrives
  // on a fresh stack from the event loop, so eviction bursts of any size
  // are stack-safe).
  // Frames reserved by not-yet-mapped faults count against the budget, or
  // two in-flight faults would double-spend one freed frame.
  if (pool_ != nullptr && cfg_.budget_mode == BudgetMode::kGlobal) {
    // Machine-wide budget: the pool's global sweep nominates victim
    // *frames*, which may be shared — eviction fans out one shootdown per
    // sharer (each through its owner's Process, preserving that process's
    // shootdown invariants) but frees exactly one frame and counts as one
    // pool eviction. Dirty swap-lifecycle sharers each absorb a writeback
    // on their own swap front end; this pager's fault merely waits for the
    // frame, resuming once the *last* of those writebacks lands.
    while (pool_->over_budget()) {
      const auto victim = pool_->pick_victim();
      if (!victim) break;
      struct SwapWb {
        Pager* owner;
        u64 vpn;
      };
      std::vector<SwapWb> swap_wbs;
      bool cross = false;
      for (const auto& [owner, svpn] : victim->sharers) {
        // Lifecycle must be read *before* the eviction invalidates the PTE.
        // Dirty *shared-file* sharers write back through the buffer cache
        // inside on_unmap and never block — only dirty swap-lifecycle pages
        // suspend this loop on the device port.
        const bool dirty = owner->page_dirty(svpn);
        const auto vfp = owner->as_.file_page(svpn);
        log_debug(name_, "global evict ", owner->name_, " vpn=0x", std::hex, svpn,
                  dirty ? " (dirty)" : " (clean)");
        if (owner != this) cross = true;
        owner->evict_resident(svpn);
        if (dirty && (!vfp || !vfp->shared)) swap_wbs.push_back({owner, svpn});
      }
      pool_->record_eviction(*this, cross, trace_id);
      if (!swap_wbs.empty()) {
        // Barrier over the sharers' writebacks: the loop resumes on a fresh
        // stack when the last one completes.
        auto remaining = std::make_shared<u64>(swap_wbs.size());
        auto resume = std::make_shared<sim::EventFn>(std::move(then));
        for (const auto& wb : swap_wbs) {
          wb.owner->writebacks_.add();
          const u64 wid = VMSLS_TRACE_NEW_ID(sim_.trace());
          wb.owner->sched_->write(wb.owner->swap_owner_, wb.vpn, SwapReqClass::kDemandWrite,
                                  [this, trace_id, remaining, resume]() mutable {
                                    if (--*remaining == 0)
                                      ensure_frame_available(trace_id, std::move(*resume));
                                  },
                                  wid);
        }
        return;
      }
    }
    then();
    return;
  }
  while (cfg_.frame_budget != 0 &&
         as_.resident_pages() + pending_maps_.size() > cfg_.frame_budget) {
    const auto victim = policy_->pick_victim();
    if (!victim) break;
    const bool dirty = page_dirty(*victim);
    const auto vfp = as_.file_page(*victim);
    const bool swap_wb = dirty && (!vfp || !vfp->shared);
    log_debug(name_, "evict vpn=0x", std::hex, *victim, dirty ? " (dirty)" : " (clean)");
    evict_resident(*victim);
    if (swap_wb) {
      writebacks_.add();
      const u64 wid = VMSLS_TRACE_NEW_ID(sim_.trace());
      sched_->write(swap_owner_, *victim, SwapReqClass::kDemandWrite,
                    [this, trace_id, then = std::move(then)]() mutable {
                      ensure_frame_available(trace_id, std::move(then));
                    },
                    wid);
      return;
    }
  }
  then();
}

void Pager::complete_fault(u64 vpn, Cycles start, sim::EventFn& ready) {
  InflightFault& entry = inflight_faults_[vpn];
  const u64 fid = entry.trace_id;
  auto waiters = std::move(entry.waiters);
  inflight_faults_.erase(vpn);
  fault_stall_.record(sim_.now() - start);
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "fault", fid, vpn);
  ready();
  for (auto& w : waiters) w();
}

void Pager::handle_fault(VirtAddr va, bool is_write, sim::EventFn ready) {
  note_activity();
  const Cycles start = sim_.now();
  const u64 vpn = va >> page_bits();
  if (as_.is_mapped(va)) {
    // A write against a resident read-only page is a COW (or write-upgrade)
    // fault, not a spurious retry — it has its own service path.
    if (is_write) {
      if (const auto pte = as_.page_table().lookup(va); pte && !pte->writable) {
        handle_cow_fault(va, vpn, start, std::move(ready));
        return;
      }
    }
    // A concurrent fault on the same page already completed: no frame and
    // no swap-in needed — and crucially no victim eviction either.
    fault_stall_.record(0);
    ready();
    return;
  }
  ++faults_since_sweep_;
  if (auto it = inflight_faults_.find(vpn); it != inflight_faults_.end()) {
    // A fault on this page is already securing a frame — possibly suspended
    // mid-eviction on an async dirty writeback — or mid swap-in; or a
    // prefetch read for the page is in flight. Coalesce before any budget
    // work: this fault consumes no frame of its own and must not issue a
    // second device read (the double swap-in race).
    if (inflight_prefetch_.count(vpn) != 0) {
      // Late exactly once per prefetched page, however many faults pile
      // onto it — the accuracy ratio divides by prefetches issued.
      if (it->second.waiters.empty()) prefetch_late_.add();
      // If the prefetch read is still queued, it now blocks a real thread:
      // upgrade it to demand class so priority dispatch stops bypassing it.
      sched_->promote(swap_owner_, vpn);
    }
    VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "coalesce", it->second.trace_id, vpn);
    it->second.waiters.push_back([this, ready = std::move(ready), start]() mutable {
      fault_stall_.record(sim_.now() - start);
      ready();
    });
    return;
  }
  // One causal id per primary fault, threaded through frame reservation,
  // victim eviction, the swap queue, and the device transfer — so the
  // "fault" span decomposes exactly into "evict" + "queue" + "io".
  const u64 fid = VMSLS_TRACE_NEW_ID(sim_.trace());
  inflight_faults_.emplace(vpn, InflightFault{fid, {}});
  // The vpn can already be pending: a prior fault's `ready` fired (erasing
  // its inflight entry) but the OS tail has not mapped the page yet. The
  // reservation is then already counted — don't count it twice.
  if (pending_maps_.insert(vpn).second && pool_) pool_->note_pending(+1);
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "fault", fid, vpn);
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "evict", fid, vpn);
  ensure_frame_available(fid, [this, va, vpn, fid, ready = std::move(ready), start]() mutable {
    VMSLS_TRACE_END(sim_.trace(), trace_track_, "evict", fid, vpn);
    // A concurrent fault may have brought the page in already — don't pay
    // (or serialize on) a second device read for a resident page.
    if (!as_.is_mapped(va) && sched_->holds(swap_owner_, vpn)) {
      swap_ins_.add();
      // The demand read and its readahead enqueue atomically, so they
      // dispatch as one clustered device operation (one access latency for
      // the whole neighborhood) whenever the port is free — and otherwise
      // merge at dispatch time with any queued same-cluster reads.
      sched_->batched([this, vpn, fid, &ready, start] {
        sched_->read(
            swap_owner_, vpn, SwapReqClass::kDemandRead,
            [this, vpn, ready = std::move(ready), start]() mutable {
              complete_fault(vpn, start, ready);
            },
            fid);
        issue_readahead(vpn);
      });
      return;
    }
    if (!as_.is_mapped(va)) {
      if (as_.has_backing(vpn)) {
        // A backing copy without a swap slot is fork-inherited: the parent
        // evicted the page before forking, so the child holds the bytes but
        // never paid them to a device — the fill is free.
        inherited_fills_.add();
      } else if (const auto fp = as_.file_page(vpn)) {
        // Shared-file pages another process already holds resident resolve
        // to that frame (map_page refs it) — no device read, no buffer-cache
        // trip, just a page-table install.
        if (fp->shared && as_.share_index() != nullptr &&
            as_.share_index()->lookup(fp->file->id(), fp->block)) {
          share_hits_.add();
        } else {
          // File lifecycle: a first-touch (or clean-dropped) file page
          // lazy-loads through the buffer cache — free on a hit, a
          // demand-class device read on a miss.
          file_reads_.add();
          bcache_->read(bcache_client_, fp->file->id(), fp->block,
                        [this, vpn, ready = std::move(ready), start]() mutable {
                          complete_fault(vpn, start, ready);
                        },
                        fid);
          return;
        }
      } else {
        zero_fills_.add();
      }
    }
    complete_fault(vpn, start, ready);
  });
}

void Pager::handle_cow_fault(VirtAddr va, u64 vpn, Cycles start, sim::EventFn ready) {
  ++faults_since_sweep_;
  if (auto it = inflight_faults_.find(vpn); it != inflight_faults_.end()) {
    // Another fault on this page is already in flight (typically a second
    // hardware thread hitting the same COW page): coalesce. The primary's
    // cow_break resolves the permission for every waiter.
    VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "coalesce", it->second.trace_id, vpn);
    it->second.waiters.push_back([this, ready = std::move(ready), start]() mutable {
      fault_stall_.record(sim_.now() - start);
      ready();
    });
    return;
  }
  const u64 fid = VMSLS_TRACE_NEW_ID(sim_.trace());
  inflight_faults_.emplace(vpn, InflightFault{fid, {}});
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "fault", fid, vpn);
  const auto frame = as_.frame_of(vpn);
  require(frame.has_value(), name_ + ": COW fault on a non-resident page");
  if (as_.frames().refcount(*frame) <= 1) {
    // Sole mapping left (the other sharers evicted or diverged already):
    // re-enable write in place — no frame, no budget work, no copy traffic.
    process_.cow_break(va);
    cow_upgrades_.add();
    complete_fault(vpn, start, ready);
    return;
  }
  // The private copy needs a frame of its own: reserve it against the
  // budget and run the eviction loop. Pin the faulting page first — the
  // global sweep must not nominate the very frame being split (the
  // owner-set pin probe protects it for every sharer), and the in-flight
  // write targets these exact bytes.
  as_.pin(va);
  if (pending_maps_.insert(vpn).second && pool_) pool_->note_pending(+1);
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "evict", fid, vpn);
  ensure_frame_available(fid, [this, va, vpn, fid, ready = std::move(ready), start]() mutable {
    VMSLS_TRACE_END(sim_.trace(), trace_track_, "evict", fid, vpn);
    const auto r = process_.cow_break(va);
    as_.unpin(va);
    if (!r.copied) {
      // The last other sharer released the frame while this fault waited on
      // eviction: cow_break upgraded in place and the reservation dies
      // unclaimed (on_cow never fired, so clear it here).
      if (pending_maps_.erase(vpn) > 0 && pool_) pool_->note_pending(-1);
      cow_upgrades_.add();
      complete_fault(vpn, start, ready);
      return;
    }
    cow_copies_.add();
    VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "cow_copy", fid, vpn);
    if (bus_ != nullptr) {
      // The page copy is real memory traffic: charge one page-sized write
      // burst at the new frame before the store retries.
      bus_->request(mem::BusRequest{as_.frames().frame_addr(r.frame),
                                    static_cast<u32>(as_.page_bytes()), true,
                                    [this, vpn, ready = std::move(ready), start]() mutable {
                                      complete_fault(vpn, start, ready);
                                    }});
      return;
    }
    complete_fault(vpn, start, ready);
  });
}

// --- swap-in readahead ----------------------------------------------------

bool Pager::prefetch_headroom() const {
  // Prefetch never evicts *synchronously*: it rides free headroom, plus a
  // bounded overshoot of at most the readahead depth (the swap-cache
  // model). The next demand fault trims the overshoot through the normal
  // eviction loop, and the SpeculativeProbe makes unreferenced landings the
  // first victims — so a wrong-path prefetch costs one slot-turn, never a
  // working-set page.
  const u64 slack = cfg_.swap.readahead;
  if (pool_ != nullptr && cfg_.budget_mode == BudgetMode::kGlobal) {
    const u64 budget = pool_->budget();
    return budget == 0 || pool_->resident_pages() + pool_->pending_pages() < budget + slack;
  }
  return cfg_.frame_budget == 0 ||
         as_.resident_pages() + pending_maps_.size() < cfg_.frame_budget + slack;
}

void Pager::issue_readahead(u64 demand_vpn) {
  if (cfg_.swap.readahead == 0) return;
  for (const u64 vpn : sched_->neighbors(swap_owner_, demand_vpn, cfg_.swap.readahead)) {
    if (as_.is_mapped(vpn << page_bits())) continue;
    if (inflight_faults_.count(vpn) != 0) continue;
    if (!prefetch_headroom()) break;  // deeper neighbors are no cheaper
    start_prefetch(vpn);
  }
}

void Pager::start_prefetch(u64 vpn) {
  // A prefetch is a synthetic fault: it reserves its frame through
  // pending_maps_ (so concurrent demand faults cannot double-spend it) and
  // registers in inflight_faults_ (so a demand fault on the page coalesces
  // onto this read instead of issuing a second one).
  const u64 pid = VMSLS_TRACE_NEW_ID(sim_.trace());
  inflight_faults_.emplace(vpn, InflightFault{pid, {}});
  inflight_prefetch_.insert(vpn);
  if (pending_maps_.insert(vpn).second && pool_) pool_->note_pending(+1);
  prefetches_.add();
  log_debug(name_, "prefetch vpn=0x", std::hex, vpn);
  VMSLS_TRACE_INSTANT(sim_.trace(), trace_track_, "prefetch", pid, vpn);
  sched_->read(
      swap_owner_, vpn, SwapReqClass::kPrefetchRead, [this, vpn] { finish_prefetch(vpn); },
      pid);
}

void Pager::finish_prefetch(u64 vpn) {
  inflight_prefetch_.erase(vpn);
  auto waiters = std::move(inflight_faults_[vpn].waiters);
  inflight_faults_.erase(vpn);
  // Land resident-clean: map_page installs the PTE with accessed and dirty
  // both clear and fills the frame from the backing store — on_map clears
  // the pending reservation and enters the page into policy tracking.
  if (!as_.is_mapped(vpn << page_bits())) process_.map_in(vpn << page_bits());
  if (waiters.empty()) {
    // Unclaimed so far: speculative until the first observed reference, and
    // first in line for reclaim should the prediction miss.
    speculative_.insert(vpn);
  } else {
    // A demand fault arrived mid-read (counted prefetch_late at coalesce
    // time): the page is demanded, not speculative.
    for (auto& w : waiters) w();
  }
}

u64 Pager::reclaim(u64 pages) {
  u64 done = 0;
  for (u64 i = 0; i < pages; ++i) {
    const auto victim = policy_->pick_victim();
    if (!victim) break;
    evict_resident(*victim);
    reclaims_.add();
    ++done;
  }
  return done;
}

// --- background services -------------------------------------------------
//
// Both daemons are periodic but activity-gated: a tick re-arms itself only
// when the process showed paging activity since the previous tick, and any
// fault or residency change re-arms an idle daemon. This keeps the event
// queue drainable — an idle simulation quiesces instead of ticking forever.

void Pager::note_activity() {
  ++activity_;
  arm_daemons();
}

void Pager::arm_daemons() {
  if (cfg_.ws_interval > 0 && !ws_armed_) {
    ws_armed_ = true;
    ws_seen_activity_ = activity_;
    sim_.schedule_in(cfg_.ws_interval, [this] { ws_sweep(); });
  }
  if (cfg_.pageout_interval > 0 && !pageout_armed_) {
    pageout_armed_ = true;
    pageout_seen_activity_ = activity_;
    sim_.schedule_in(cfg_.pageout_interval, [this] { pageout_tick(); });
  }
}

void Pager::ws_sweep() {
  ws_sweeps_.add();
  const Cycles window = cfg_.ws_window > 0 ? cfg_.ws_window : cfg_.ws_interval;
  // Sample the accessed bits (ordered resident walk — deterministic) and
  // age out pages unreferenced for longer than the window.
  as_.for_each_resident([this](u64 vpn) { probe_accessed(vpn); });
  u64 ws = 0;
  for (const auto& [vpn, last] : ws_last_ref_)
    if (sim_.now() - last <= window) ++ws;
  ws_pages_ = ws;
  // Fault-frequency correction: each fault in the window is a page that
  // wanted residency the references could not show (see ws_demand_pages).
  ws_demand_ = ws + faults_since_sweep_;
  faults_since_sweep_ = 0;
  ws_hist_.record(ws);
  if (pool_) pool_->note_ws_update();
  if (activity_ != ws_seen_activity_) {
    ws_seen_activity_ = activity_;
    sim_.schedule_in(cfg_.ws_interval, [this] { ws_sweep(); });
  } else {
    ws_armed_ = false;
  }
}

bool Pager::over_pageout_watermark() const {
  if (pool_ != nullptr && cfg_.budget_mode == BudgetMode::kGlobal)
    return pool_->over_watermark(cfg_.pageout_watermark_pct);
  if (cfg_.frame_budget == 0) return false;
  return (resident_pages() + pending_pages()) * 100 >=
         cfg_.frame_budget * cfg_.pageout_watermark_pct;
}

void Pager::pageout_tick() {
  // The scan itself is functional; the tick's CPU time (when an OS model is
  // attached) and the page writes (on the swap device port) are timed.
  auto work = [this] {
    u64 cleaned = 0;
    bool port_blocked = false;
    if (over_pageout_watermark()) {
      // Yield to demand traffic: if the device is mid-transfer (or requests
      // wait in the shared queue) when the tick fires, defer the whole
      // batch to a later tick. Once the front end idles, submit up to
      // pageout_batch writeback-class requests — the scheduler keeps any
      // later demand reads ahead of them in priority mode.
      if (sched_->busy()) {
        port_blocked = true;
      } else {
        as_.for_each_resident([this, &cleaned](u64 vpn) {
          if (cleaned >= cfg_.pageout_batch) return;
          if (as_.is_pinned_vpn(vpn)) return;  // in-flight access may re-dirty it
          if (as_.page_table().test_and_clear_dirty(vpn << page_bits())) {
            const auto fp = as_.file_page(vpn);
            if (fp) {
              // Clearing the dirty bit makes a later eviction a clean drop,
              // so the page's truth must be persisted *now*: to the file
              // block (shared) or the private backing copy.
              as_.sync_page(vpn);
            }
            if (fp && fp->shared) {
              file_writebacks_.add();
              bcache_->write(bcache_client_, fp->file->id(), fp->block,
                             VMSLS_TRACE_NEW_ID(sim_.trace()));
            } else {
              sched_->write(swap_owner_, vpn, SwapReqClass::kWriteback, [] {},
                            VMSLS_TRACE_NEW_ID(sim_.trace()));
              pageouts_.add();
            }
            ++cleaned;
          }
        });
      }
    }
    // Keep ticking while there is work (progress made, or work deferred to
    // a busy port) or the process is still active; otherwise quiesce.
    if (cleaned > 0 || port_blocked || activity_ != pageout_seen_activity_) {
      pageout_seen_activity_ = activity_;
      sim_.schedule_in(cfg_.pageout_interval, [this] { pageout_tick(); });
    } else {
      pageout_armed_ = false;
    }
  };
  if (os_ != nullptr && daemon_tick_cost_ > 0) {
    os_->exec_service(daemon_tick_cost_, std::move(work));
  } else {
    work();
  }
}

}  // namespace vmsls::paging

// Timed swap device: the backing store the pager daemon pages against.
//
// Models a single-ported block device (SD/flash-class on a Zynq board):
// each page-sized transfer pays a fixed access latency plus bytes/bandwidth,
// and transfers serialize on the device port — concurrent fault storms queue
// here exactly like walker misses queue on the memory bus. The device tracks
// *which* pages it holds (slot bookkeeping) and charges time; page *bytes*
// stay in the AddressSpace backing store, which already plays the role of
// swap-file contents for the functional model.
//
// Request *scheduling* — the queue, dispatch policy, slot-number geometry,
// and readahead — lives one layer up in SwapScheduler (swap_scheduler.hpp):
// the scheduler hands this device one transfer at a time, so the port model
// here stays the raw timing primitive. Pages are opaque 64-bit keys; a
// private device tracks raw virtual page numbers while a shared device
// tracks (owner, vpn) keys packed by its scheduler.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace vmsls::paging {

/// Dispatch order for a SwapScheduler's request queue.
enum class SwapSchedPolicy {
  kFifo,      ///< strict arrival order, class-blind
  kPriority,  ///< demand reads >> fault-path demand writes >> prefetch
              ///< reads >> background writebacks, with a bounded-bypass
              ///< starvation guard on everything below demand reads
};

const char* swap_sched_name(SwapSchedPolicy policy) noexcept;

struct SwapConfig {
  Cycles read_latency = 4000;     // per-operation device access latency
  Cycles write_latency = 6000;    // writes are slower on flash-class media
  unsigned bytes_per_cycle = 4;   // transfer bandwidth across the device port
  u64 slot_limit = 1ull << 20;    // capacity in pages; exceeded = hard error

  // --- shared swap I/O subsystem knobs (threaded through PlatformSpec::pager.swap) ---

  /// In a ProcessGroup, members share one device + scheduler ("one flash
  /// part, N pagers") instead of each pager owning a private device.
  /// Ignored by a standalone System — there is nobody to share with.
  bool shared = false;
  /// Request-queue dispatch policy.
  SwapSchedPolicy sched = SwapSchedPolicy::kFifo;
  /// Swap-in readahead: on each demand swap-in, prefetch up to this many
  /// neighboring slots (same owner, same cluster). 0 disables prefetch.
  unsigned readahead = 0;
  /// Slot-allocator clustering granularity: a process's evicted pages land
  /// in per-cluster regions of this many adjacent slots, keyed by vpn, so
  /// virtually-neighboring evictions occupy neighboring slots and
  /// readahead pulls pages the process is likely to touch next.
  u64 cluster_pages = 64;
  /// Priority mode: a queued writeback is dispatched after at most this
  /// many reads bypass it (the starvation guard).
  u64 writeback_starvation_limit = 8;
};

class SwapDevice {
 public:
  SwapDevice(sim::Simulator& sim, const SwapConfig& cfg, u64 page_bytes, std::string name);

  SwapDevice(const SwapDevice&) = delete;
  SwapDevice& operator=(const SwapDevice&) = delete;

  const SwapConfig& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return name_; }

  /// True when the device holds a copy of the page (slot allocated).
  bool holds(u64 vpn) const { return slots_.count(vpn) != 0; }
  u64 slots_in_use() const noexcept { return slots_.size(); }

  /// True while a transfer occupies the device port. Background cleaning
  /// (the pageout daemon) yields to demand traffic by checking this —
  /// proactive writes must not delay the swap-ins faults are stalled on.
  bool busy() const noexcept { return port_free_ > sim_.now(); }

  /// Timed page write (swap-out). Allocates a slot for `vpn`; `done` fires
  /// when the transfer completes on the device port. Completions are
  /// sim::EventFn — move-only, no steady-state allocation on the fault path
  /// (the PR 2 engine contract).
  void write_page(u64 vpn, sim::EventFn done);

  /// Timed page read (swap-in). Requires holds(vpn); the slot is freed when
  /// the transfer completes — a later eviction of the page re-writes it —
  /// so slot occupancy tracks pages that are out, not pages that ever were.
  void read_page(u64 vpn, sim::EventFn done);

  /// Timed clustered read: all pages stream in ONE device operation — one
  /// access latency, then bytes/bandwidth for the whole run. This is what
  /// makes swap-in readahead pay: the scheduler merges adjacent-slot reads
  /// so a cluster costs little more than its demand page alone. Every page
  /// must be held; all slots free at the shared completion instant.
  /// Takes the vpn vector by value: the device's completion owns it (one
  /// move from the caller to the wire, no copies on the fault path).
  void read_pages(std::vector<u64> vpns, sim::EventFn done);

  /// Slot bookkeeping without device time: pages evicted "by fiat" during
  /// experiment setup land in swap instantly, so later faults on them pay
  /// the swap-in cost.
  void note_swapped(u64 vpn);

  u64 reads() const noexcept { return reads_.value(); }
  u64 writes() const noexcept { return writes_.value(); }

 private:
  /// Serializes a transfer of `bytes` on the single device port; `done`
  /// fires at completion time.
  void issue(Cycles latency, u64 bytes, sim::EventFn done);

  sim::Simulator& sim_;
  SwapConfig cfg_;
  u64 page_bytes_;
  std::string name_;
  sim::TraceTrack trace_track_ = 0;
  std::unordered_set<u64> slots_;
  Cycles port_free_ = 0;

  Counter& reads_;
  Counter& writes_;
  Counter& bytes_;
};

}  // namespace vmsls::paging

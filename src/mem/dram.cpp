#include "mem/dram.hpp"

#include <algorithm>

namespace vmsls::mem {

DramModel::DramModel(const DramConfig& cfg, StatRegistry& stats, std::string name)
    : cfg_(cfg),
      banks_(cfg.banks),
      row_hits_(stats.counter(name + ".row_hits")),
      row_misses_(stats.counter(name + ".row_misses")),
      reads_(stats.counter(name + ".reads")),
      writes_(stats.counter(name + ".writes")),
      bytes_moved_(stats.counter(name + ".bytes")) {
  require(cfg.banks > 0, "DRAM needs at least one bank");
  require(is_pow2(cfg.row_bytes), "DRAM row size must be a power of two");
  require(cfg.data_bytes_per_cycle > 0, "DRAM bandwidth must be nonzero");
}

Cycles DramModel::best_case_latency(u32 bytes) const noexcept {
  return cfg_.t_cas + ceil_div(bytes, cfg_.data_bytes_per_cycle);
}

Cycles DramModel::access_chunk(PhysAddr addr, u32 bytes, Cycles earliest_start) {
  // Row-interleaved bank mapping: consecutive rows land on consecutive
  // banks, which is the common controller configuration and gives streaming
  // accesses bank-level parallelism.
  const u64 global_row = addr / cfg_.row_bytes;
  const unsigned bank_idx = static_cast<unsigned>(global_row % cfg_.banks);
  Bank& bank = banks_[bank_idx];

  const Cycles start = std::max(earliest_start, bank.busy_until);
  Cycles latency = 0;
  if (bank.open_row == global_row) {
    latency += cfg_.t_cas;
    row_hits_.add();
  } else if (bank.open_row == kNoRow) {
    latency += cfg_.t_rcd + cfg_.t_cas;
    row_misses_.add();
  } else {
    latency += cfg_.t_rp + cfg_.t_rcd + cfg_.t_cas;
    row_misses_.add();
  }
  latency += ceil_div(bytes, cfg_.data_bytes_per_cycle);

  bank.open_row = global_row;
  bank.busy_until = start + latency;
  return start + latency;
}

Cycles DramModel::access(PhysAddr addr, u32 bytes, bool is_write, Cycles earliest_start) {
  require(bytes > 0, "DRAM access must move at least one byte");
  (is_write ? writes_ : reads_).add();
  bytes_moved_.add(bytes);

  // Split at row boundaries so long bursts pay activation per row but keep
  // streaming within a row.
  Cycles done = earliest_start;
  PhysAddr a = addr;
  u64 remaining = bytes;
  Cycles chunk_start = earliest_start;
  while (remaining > 0) {
    const u64 in_row = cfg_.row_bytes - (a & (cfg_.row_bytes - 1));
    const u32 n = static_cast<u32>(std::min<u64>(in_row, remaining));
    done = access_chunk(a, n, chunk_start);
    // Subsequent chunks can begin their activation as soon as this chunk
    // started (banks are independent), but data is serialized on the shared
    // data pins: approximate by chaining starts.
    chunk_start = done;
    a += n;
    remaining -= n;
  }
  return done;
}

}  // namespace vmsls::mem

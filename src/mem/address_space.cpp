#include "mem/address_space.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace vmsls::mem {

AddressSpace::AddressSpace(PhysicalMemory& pm, FrameAllocator& frames, const PageTableConfig& cfg,
                           VirtAddr heap_base)
    : pm_(pm), frames_(frames), pt_(pm, frames, cfg), brk_(heap_base) {
  require(heap_base > 0, "heap must not start at the null page");
}

VirtAddr AddressSpace::alloc(u64 bytes, u64 align) {
  require(bytes > 0, "cannot allocate zero bytes");
  require(is_pow2(align), "alignment must be a power of two");
  brk_ = align_up(brk_, align);
  const VirtAddr va = brk_;
  brk_ += bytes;
  pt_.check_va(brk_ - 1);
  return va;
}

std::vector<u8>& AddressSpace::backing_page(u64 vpn) {
  auto& page = backing_[vpn];
  if (page.empty()) page.assign(page_bytes(), 0);
  return page;
}

VirtAddr AddressSpace::mmap(BackingFile& file, u64 offset, u64 bytes, bool shared) {
  const u64 page = page_bytes();
  require(file.block_bytes() == page, "file block size must equal the page size");
  require(bytes > 0, "cannot mmap zero bytes");
  require((offset & (page - 1)) == 0, "mmap offset must be page-aligned");
  require(offset + bytes <= file.size_bytes(), "mmap range exceeds the file");
  const VirtAddr va = alloc(align_up(bytes, page), page);
  bind_file(va, bytes, file, offset, shared);
  return va;
}

void AddressSpace::bind_file(VirtAddr va, u64 bytes, BackingFile& file, u64 offset, bool shared) {
  const u64 page = page_bytes();
  require(file.block_bytes() == page, "file block size must equal the page size");
  require(bytes > 0, "cannot bind zero bytes");
  require((va & (page - 1)) == 0, "bind_file range must be page-aligned");
  require((offset & (page - 1)) == 0, "bind_file offset must be page-aligned");
  const u64 pages = align_up(bytes, page) / page;
  require(offset + pages * page <= file.size_bytes(), "bind_file range exceeds the file");
  const u64 first_vpn = va / page;
  for (u64 i = 0; i < pages; ++i)
    require(!file_page(first_vpn + i), "bind_file range overlaps an existing file region");
  // Capture current contents so the file becomes the canonical copy: a
  // resident frame's bytes win over a stale backing-store save, which wins
  // over the file's zero-fill.
  for (u64 i = 0; i < pages; ++i) {
    const u64 vpn = first_vpn + i;
    auto dst = file.block_data(offset / page + i);
    if (const auto pte = pt_.lookup(vpn * page)) {
      pm_.read(frames_.frame_addr(pte->frame), dst);
    } else if (auto it = backing_.find(vpn); it != backing_.end()) {
      std::memcpy(dst.data(), it->second.data(), dst.size());
    }
    backing_.erase(vpn);
  }
  FileRegion region{first_vpn, pages, &file, offset / page, shared};
  const auto pos = std::upper_bound(
      regions_.begin(), regions_.end(), region,
      [](const FileRegion& a, const FileRegion& b) { return a.first_vpn < b.first_vpn; });
  regions_.insert(pos, region);
}

std::optional<FilePageRef> AddressSpace::file_page(u64 vpn) const {
  if (regions_.empty()) return std::nullopt;  // anon-only workloads: no search
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), vpn,
      [](u64 v, const FileRegion& r) { return v < r.first_vpn; });
  if (it == regions_.begin()) return std::nullopt;
  const FileRegion& r = *std::prev(it);
  if (vpn >= r.first_vpn + r.pages) return std::nullopt;
  return FilePageRef{r.file, r.first_block + (vpn - r.first_vpn), r.shared};
}

void AddressSpace::sync_page(u64 vpn) {
  const auto pte = pt_.lookup(vpn * page_bytes());
  if (!pte) return;
  const PhysAddr pa = frames_.frame_addr(pte->frame);
  const auto fp = file_page(vpn);
  if (fp && fp->shared) {
    pm_.read(pa, fp->file->block_data(fp->block));
  } else {
    // Anonymous page, or a private file page whose modifications must land
    // in the process-local copy — never in the shared file.
    auto& store = backing_page(vpn);
    pm_.read(pa, std::span<u8>(store.data(), store.size()));
  }
}

u64 AddressSpace::map_page(VirtAddr va, bool writable) {
  const u64 page = page_bytes();
  const VirtAddr base = align_down(va, page);
  const u64 vpn = base / page;
  const auto fp = file_page(vpn);
  // A MAP_SHARED block another address space already holds resident is
  // mapped by reference: same frame, one more sharer, no fill (the frame's
  // bytes are the block's current truth — possibly newer than the file).
  if (share_ != nullptr && fp && fp->shared) {
    if (const auto shared = share_->lookup(fp->file->id(), fp->block)) {
      frames_.ref(*shared);
      pt_.map(base, *shared, writable);
      resident_vpns_.insert(vpn);
      ++demand_maps_;
      if (observer_) observer_->on_map(vpn, *shared);
      return *shared;
    }
  }
  // Under exhaustion, reclaim enough for the data frame plus any interior
  // table frames pt_.map may need to create below (at most levels - 1).
  auto frame = frames_.alloc();
  if (!frame && reclaim_ && reclaim_(pt_.levels()) > 0) frame = frames_.alloc();
  if (!frame)
    throw std::runtime_error("AddressSpace: out of physical frames and nothing reclaimable");
  const PhysAddr pa = frames_.frame_addr(*frame);
  // Fill order: a saved anonymous/private copy wins over the file (it holds
  // the page's private modifications), the file wins over zero-fill.
  auto it = backing_.find(vpn);
  if (it != backing_.end()) {
    pm_.write(pa, std::span<const u8>(it->second.data(), it->second.size()));
  } else if (fp) {
    pm_.write(pa, fp->file->block_data(fp->block));
  } else {
    pm_.clear(pa, page);
  }
  pt_.map(base, *frame, writable);
  resident_vpns_.insert(vpn);
  ++demand_maps_;
  if (share_ != nullptr && fp && fp->shared) share_->insert(fp->file->id(), fp->block, *frame);
  if (observer_) observer_->on_map(vpn, *frame);
  return *frame;
}

void AddressSpace::populate(VirtAddr va, u64 bytes) {
  const u64 page = page_bytes();
  for (VirtAddr p = align_down(va, page); p < va + bytes; p += page)
    if (!pt_.is_mapped(p)) map_page(p);
}

u64 AddressSpace::evict(VirtAddr va, u64 bytes) {
  const u64 page = page_bytes();
  u64 evicted = 0;
  for (VirtAddr p = align_down(va, page); p < va + bytes; p += page) {
    const auto pte = pt_.lookup(p);
    if (!pte) continue;
    const PhysAddr pa = frames_.frame_addr(pte->frame);
    const u64 vpn = p / page;
    const auto fp = file_page(vpn);
    if (!fp) {
      // Anonymous: contents always survive in the backing store.
      auto& store = backing_page(vpn);
      pm_.read(pa, std::span<u8>(store.data(), store.size()));
    } else if (!fp->shared) {
      // Private file page: save the process-local copy once it diverges (or
      // has diverged before — a pageout-cleaned page is clean in the PTE but
      // its truth lives in the backing store, which must stay fresh).
      if (pte->dirty || backing_.count(vpn)) {
        auto& store = backing_page(vpn);
        pm_.read(pa, std::span<u8>(store.data(), store.size()));
      }
    } else {
      // Shared file page: dirty writes back to the file; clean drops free.
      if (pte->dirty) pm_.read(pa, fp->file->block_data(fp->block));
    }
    pt_.unmap(p);
    const u64 sharers_left = frames_.free(pte->frame);
    resident_vpns_.erase(vpn);
    if (share_ != nullptr && fp && fp->shared && sharers_left == 0)
      share_->erase(fp->file->id(), fp->block);
    ++evicted;
    if (observer_) observer_->on_unmap(vpn, pte->dirty, pte->frame, sharers_left);
  }
  return evicted;
}

u64 AddressSpace::fork_from(AddressSpace& parent) {
  require(&pm_ == &parent.pm_ && &frames_ == &parent.frames_,
          "fork_from requires both address spaces to live on one physical machine");
  require(resident_vpns_.empty() && regions_.empty() && backing_.empty(),
          "fork_from target must be a fresh address space");
  brk_ = parent.brk_;
  regions_ = parent.regions_;
  backing_ = parent.backing_;  // inherited swap/file-divergence copies
  const u64 page = page_bytes();
  u64 shared = 0;
  for (const u64 vpn : parent.resident_vpns_) {
    const VirtAddr va = vpn * page;
    const auto pte = parent.pt_.lookup(va);
    require(pte.has_value(), "fork_from: resident page has no PTE");
    const auto fp = parent.file_page(vpn);
    const bool truly_shared = fp && fp->shared;  // MAP_SHARED: writes stay shared
    if (!truly_shared && pte->writable) parent.pt_.set_writable(va, false);
    frames_.ref(pte->frame);
    pt_.map(va, pte->frame, truly_shared ? pte->writable : false);
    resident_vpns_.insert(vpn);
    if (observer_) observer_->on_map(vpn, pte->frame);
    ++shared;
  }
  return shared;
}

AddressSpace::CowResult AddressSpace::cow_resolve(VirtAddr va) {
  const u64 page = page_bytes();
  const VirtAddr base = align_down(va, page);
  const u64 vpn = base / page;
  const auto pte = pt_.lookup(base);
  require(pte.has_value(), "cow_resolve of an unmapped page");
  if (pte->writable) return CowResult{false, pte->frame};  // a racer resolved first
  if (frames_.refcount(pte->frame) == 1) {
    // Sole mapping left (sharers evicted or already diverged): re-enable
    // write in place, no copy.
    pt_.set_writable(base, true);
    return CowResult{false, pte->frame};
  }
  auto frame = frames_.alloc();
  if (!frame && reclaim_ && reclaim_(1) > 0) frame = frames_.alloc();
  if (!frame) throw std::runtime_error("AddressSpace: out of physical frames for a COW copy");
  std::vector<u8> buf(page);
  pm_.read(frames_.frame_addr(pte->frame), std::span<u8>(buf.data(), buf.size()));
  pm_.write(frames_.frame_addr(*frame), std::span<const u8>(buf.data(), buf.size()));
  pt_.unmap(base);
  pt_.map(base, *frame, /*writable=*/true);
  frames_.free(pte->frame);  // drop this space's reference on the shared frame
  if (observer_) observer_->on_cow(vpn, pte->frame, *frame);
  return CowResult{true, *frame};
}

void AddressSpace::pin(VirtAddr va) { ++pins_[va / page_bytes()]; }

void AddressSpace::unpin(VirtAddr va) {
  const u64 vpn = va / page_bytes();
  auto it = pins_.find(vpn);
  require(it != pins_.end(), "unpin of a page that holds no pins");
  if (--it->second == 0) pins_.erase(it);
}

std::optional<PhysAddr> AddressSpace::translate(VirtAddr va) const {
  const auto pte = pt_.lookup(va);
  if (!pte) return std::nullopt;
  const u64 offset = va & (page_bytes() - 1);
  return frames_.frame_addr(pte->frame) + offset;
}

void AddressSpace::read(VirtAddr va, std::span<u8> out) {
  const u64 page = page_bytes();
  u64 done = 0;
  while (done < out.size()) {
    const VirtAddr a = va + done;
    const u64 off = a & (page - 1);
    const u64 n = std::min<u64>(page - off, out.size() - done);
    if (!pt_.is_mapped(a)) map_page(a);
    if (observer_ || !regions_.empty()) pt_.set_accessed_dirty(a, /*dirty=*/false);
    pm_.read(*translate(a), out.subspan(done, n));
    done += n;
  }
}

void AddressSpace::write(VirtAddr va, std::span<const u8> data) {
  const u64 page = page_bytes();
  u64 done = 0;
  while (done < data.size()) {
    const VirtAddr a = va + done;
    const u64 off = a & (page - 1);
    const u64 n = std::min<u64>(page - off, data.size() - done);
    const auto pte = pt_.lookup(a);
    if (!pte) {
      map_page(a);
    } else if (!pte->writable) {
      // Software store to a COW mapping: break the share first (zero modeled
      // cost, like every software access). Hardware writes take the MMU
      // permission-fault path instead, where the pager charges the copy.
      cow_resolve(a);
    }
    // Dirty truth matters beyond replacement once file regions exist: a
    // MAP_SHARED page persists to its file only when its dirty bit is set,
    // and a private file page diverges to swap on the same evidence — a
    // software store that skipped the bookkeeping would be silently lost at
    // eviction.
    if (observer_ || !regions_.empty()) pt_.set_accessed_dirty(a, /*dirty=*/true);
    pm_.write(*translate(a), data.subspan(done, n));
    done += n;
  }
}

}  // namespace vmsls::mem

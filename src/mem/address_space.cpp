#include "mem/address_space.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace vmsls::mem {

AddressSpace::AddressSpace(PhysicalMemory& pm, FrameAllocator& frames, const PageTableConfig& cfg,
                           VirtAddr heap_base)
    : pm_(pm), frames_(frames), pt_(pm, frames, cfg), brk_(heap_base) {
  require(heap_base > 0, "heap must not start at the null page");
}

VirtAddr AddressSpace::alloc(u64 bytes, u64 align) {
  require(bytes > 0, "cannot allocate zero bytes");
  require(is_pow2(align), "alignment must be a power of two");
  brk_ = align_up(brk_, align);
  const VirtAddr va = brk_;
  brk_ += bytes;
  pt_.check_va(brk_ - 1);
  return va;
}

std::vector<u8>& AddressSpace::backing_page(u64 vpn) {
  auto& page = backing_[vpn];
  if (page.empty()) page.assign(page_bytes(), 0);
  return page;
}

u64 AddressSpace::map_page(VirtAddr va, bool writable) {
  const u64 page = page_bytes();
  const VirtAddr base = align_down(va, page);
  // Under exhaustion, reclaim enough for the data frame plus any interior
  // table frames pt_.map may need to create below (at most levels - 1).
  auto frame = frames_.alloc();
  if (!frame && reclaim_ && reclaim_(pt_.levels()) > 0) frame = frames_.alloc();
  if (!frame)
    throw std::runtime_error("AddressSpace: out of physical frames and nothing reclaimable");
  const PhysAddr pa = frames_.frame_addr(*frame);
  auto it = backing_.find(base / page);
  if (it != backing_.end())
    pm_.write(pa, std::span<const u8>(it->second.data(), it->second.size()));
  else
    pm_.clear(pa, page);
  pt_.map(base, *frame, writable);
  resident_vpns_.insert(base / page);
  ++demand_maps_;
  if (observer_) observer_->on_map(base / page);
  return *frame;
}

void AddressSpace::populate(VirtAddr va, u64 bytes) {
  const u64 page = page_bytes();
  for (VirtAddr p = align_down(va, page); p < va + bytes; p += page)
    if (!pt_.is_mapped(p)) map_page(p);
}

u64 AddressSpace::evict(VirtAddr va, u64 bytes) {
  const u64 page = page_bytes();
  u64 evicted = 0;
  for (VirtAddr p = align_down(va, page); p < va + bytes; p += page) {
    const auto pte = pt_.lookup(p);
    if (!pte) continue;
    const PhysAddr pa = frames_.frame_addr(pte->frame);
    auto& store = backing_page(p / page);
    pm_.read(pa, std::span<u8>(store.data(), store.size()));
    pt_.unmap(p);
    frames_.free(pte->frame);
    resident_vpns_.erase(p / page);
    ++evicted;
    if (observer_) observer_->on_unmap(p / page, pte->dirty);
  }
  return evicted;
}

void AddressSpace::pin(VirtAddr va) { ++pins_[va / page_bytes()]; }

void AddressSpace::unpin(VirtAddr va) {
  const u64 vpn = va / page_bytes();
  auto it = pins_.find(vpn);
  require(it != pins_.end(), "unpin of a page that holds no pins");
  if (--it->second == 0) pins_.erase(it);
}

std::optional<PhysAddr> AddressSpace::translate(VirtAddr va) const {
  const auto pte = pt_.lookup(va);
  if (!pte) return std::nullopt;
  const u64 offset = va & (page_bytes() - 1);
  return frames_.frame_addr(pte->frame) + offset;
}

void AddressSpace::read(VirtAddr va, std::span<u8> out) {
  const u64 page = page_bytes();
  u64 done = 0;
  while (done < out.size()) {
    const VirtAddr a = va + done;
    const u64 off = a & (page - 1);
    const u64 n = std::min<u64>(page - off, out.size() - done);
    if (!pt_.is_mapped(a)) map_page(a);
    if (observer_) pt_.set_accessed_dirty(a, /*dirty=*/false);
    pm_.read(*translate(a), out.subspan(done, n));
    done += n;
  }
}

void AddressSpace::write(VirtAddr va, std::span<const u8> data) {
  const u64 page = page_bytes();
  u64 done = 0;
  while (done < data.size()) {
    const VirtAddr a = va + done;
    const u64 off = a & (page - 1);
    const u64 n = std::min<u64>(page - off, data.size() - done);
    if (!pt_.is_mapped(a)) map_page(a);
    if (observer_) pt_.set_accessed_dirty(a, /*dirty=*/true);
    pm_.write(*translate(a), data.subspan(done, n));
    done += n;
  }
}

}  // namespace vmsls::mem

// Backing files: the functional contents behind mmap-style regions.
//
// A BackingFile is the machine-wide, process-independent byte store a
// file-backed AddressSpace region resolves to — the role /usr/lib/libc.so
// or a data file plays on a real machine. Like the AddressSpace backing
// store (swap contents) and the SwapDevice (swap timing), the split is
// strict: BackingFile holds *bytes* and completes in zero simulated time;
// the *cost* of moving those bytes is charged by the paging layer
// (paging::BufferCache) when the OS paths invoke it.
//
// Files are block-granular where one block == one page: a file-backed vpn
// maps to exactly one (file, block) pair, first-touch faults lazy-load that
// block, and dirty shared mappings write the block back. The FileStore owns
// every file on the machine and hands out dense ids — the keys the
// machine-wide buffer cache indexes by.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace vmsls::mem {

class BackingFile {
 public:
  /// `bytes` is rounded up to a whole number of blocks (a partial tail
  /// block would force every consumer to carry a clamp; nothing in the
  /// model needs sub-block files).
  BackingFile(u32 id, std::string name, u64 bytes, u64 block_bytes);

  BackingFile(const BackingFile&) = delete;
  BackingFile& operator=(const BackingFile&) = delete;

  u32 id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  u64 size_bytes() const noexcept { return static_cast<u64>(data_.size()); }
  u64 block_bytes() const noexcept { return block_bytes_; }
  u64 blocks() const noexcept { return size_bytes() / block_bytes_; }

  /// Direct view of one block's bytes — the eviction path reads frame
  /// contents straight into it and map_page fills frames straight from it.
  std::span<u8> block_data(u64 block);
  std::span<const u8> block_data(u64 block) const;

  /// Byte-granular access for experiment setup (loading input data) and
  /// result verification. Zero simulated time, like everything here.
  void write(u64 offset, std::span<const u8> data);
  void read(u64 offset, std::span<u8> out) const;

 private:
  u32 id_;
  std::string name_;
  u64 block_bytes_;
  std::vector<u8> data_;
};

/// Machine-wide file registry: one per SharedSubstrate (every process of a
/// ProcessGroup maps regions of the same files — that is what makes the
/// buffer cache shared in a meaningful sense) or one per standalone System.
class FileStore {
 public:
  /// `block_bytes` must equal the platform page size — a file block and a
  /// page are the same unit throughout the paging layer.
  explicit FileStore(u64 block_bytes);

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  /// Creates a file of (at least) `bytes` zeroed bytes. Creation order
  /// fixes ids — deterministic under the harness's setup-order contract.
  BackingFile& create(const std::string& name, u64 bytes);

  BackingFile& file(u32 id);
  const BackingFile& file(u32 id) const;
  u64 count() const noexcept { return static_cast<u64>(files_.size()); }
  u64 block_bytes() const noexcept { return block_bytes_; }

 private:
  u64 block_bytes_;
  std::vector<std::unique_ptr<BackingFile>> files_;
};

}  // namespace vmsls::mem

// Physical frame allocator.
//
// Manages page-sized frames inside a region of physical memory. Used by the
// OS model to back virtual pages and page-table nodes, and by the DMA
// baseline's pinned-buffer allocator (which needs contiguous runs).
#pragma once

#include <optional>
#include <vector>

#include "util/units.hpp"

namespace vmsls::mem {

class FrameAllocator {
 public:
  /// Frames cover [base, base + frame_count * frame_bytes) of physical
  /// memory. `base` must be frame-aligned.
  FrameAllocator(PhysAddr base, u64 frame_count, u64 frame_bytes);

  u64 frame_bytes() const noexcept { return frame_bytes_; }
  u64 total_frames() const noexcept { return total_; }
  u64 free_frames() const noexcept { return free_count_; }
  u64 used_frames() const noexcept { return total_ - free_count_; }

  /// High-water mark of used_frames() over the allocator's lifetime — how
  /// close an over-subscription scenario actually came to exhaustion.
  u64 peak_used_frames() const noexcept { return peak_used_; }

  /// Allocates one frame; returns its global frame number (physical address
  /// = frame * frame_bytes), or nullopt when exhausted. Exhaustion is a
  /// normal event under memory pressure — the pager reclaims and retries.
  std::optional<u64> alloc();

  /// Allocates `count` physically contiguous frames; returns the first
  /// frame number, or nullopt when no run exists. Used by the pinned-buffer
  /// baseline.
  std::optional<u64> alloc_contiguous(u64 count);

  /// Adds a sharer to an allocated frame (fork/COW sharing: one frame backs
  /// several page mappings). Each mapping releases with free(); the frame is
  /// only returned to the pool when the last reference drops.
  void ref(u64 frame);

  /// Releases one reference; frees the frame when it was the last. Returns
  /// the number of references remaining (0 = frame actually freed), so
  /// eviction paths can tell "sharer released" from "frame reclaimed".
  u64 free(u64 frame);
  void free_contiguous(u64 first_frame, u64 count);

  bool is_allocated(u64 frame) const;

  /// Current reference count (0 for unallocated frames).
  u64 refcount(u64 frame) const;

  PhysAddr frame_addr(u64 frame) const noexcept { return frame * frame_bytes_; }

 private:
  u64 index_of(u64 frame) const;

  PhysAddr base_;
  u64 frame_bytes_;
  u64 total_;
  u64 free_count_;
  std::vector<bool> used_;  // indexed by local frame index
  std::vector<u32> refs_;   // sharer count per frame; 0 when unallocated
  u64 scan_hint_ = 0;       // next index to try, keeps alloc O(1) amortized
  u64 peak_used_ = 0;
};

}  // namespace vmsls::mem

// Hardware page-table walker.
//
// A single walker component is shared by all hardware threads (the paper's
// MMU is a shared fabric block). It services up to `ports` walks
// concurrently — the default of 1 serializes all misses, which the
// thread-scaling experiment measures, and ablation A4 adds ports. Each
// level of the radix walk is one 8-byte read on the memory bus. An optional
// page-walk cache remembers the last-level interior table for recently
// walked regions, cutting full walks to a single memory read (ablation A1).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/bus.hpp"
#include "mem/pagetable.hpp"
#include "sim/simulator.hpp"

namespace vmsls::mem {

struct WalkerConfig {
  Cycles setup_latency = 2;  // miss-handling handshake before the first read
  bool walk_cache_enabled = true;
  unsigned walk_cache_entries = 16;
  unsigned ports = 1;  // concurrent walks serviced
  /// Charge each accessed/dirty-bit PTE update as a posted 8-byte bus write
  /// at the leaf PTE's address (real MMUs write the bit back to memory; the
  /// traffic is visible on the fabric). Off = functional-only updates, the
  /// pre-PR model. Only *changing* a bit pays — re-setting an already-set
  /// bit is free, as in hardware.
  bool timed_ad_writeback = true;
};

struct WalkResult {
  bool fault = false;
  unsigned fault_level = 0;  // level whose PTE was invalid (0 = root)
  u64 frame = 0;
  bool writable = false;
};

class PageWalker {
 public:
  PageWalker(sim::Simulator& sim, MemoryBus& bus, PhysicalMemory& pm, const PageTable& pt,
             const WalkerConfig& cfg, std::string name);

  PageWalker(const PageWalker&) = delete;
  PageWalker& operator=(const PageWalker&) = delete;

  /// Starts (or queues) a walk for `va`; `done` fires when the walk
  /// completes, successfully or with a fault.
  void walk(VirtAddr va, std::function<void(WalkResult)> done);

  /// Drops all cached interior entries. The OS model calls this as part of
  /// TLB shootdown whenever it changes the page tables.
  void flush_cache();

  /// Funnel for every hardware accessed/dirty-bit update (walker leaf fills
  /// and the MMU's TLB-hit refreshes): performs the functional PTE update
  /// and, when a bit actually changed and timed_ad_writeback is on, posts
  /// the 8-byte PTE write on the memory bus (fire-and-forget — the walk or
  /// translation does not stall on it, but the fabric carries the traffic).
  void note_ad_update(VirtAddr va, bool dirty);

  const PageTable& page_table() const noexcept { return pt_; }
  unsigned page_bits() const noexcept { return pt_.config().page_bits; }
  unsigned active_walks() const noexcept { return active_; }

 private:
  struct Job {
    VirtAddr va;
    std::function<void(WalkResult)> done;
    Cycles enqueued;
  };
  /// Per-walk state machine; several may be in flight. Instances are
  /// pooled and recycled (each callback chain holds exactly one live
  /// pointer at a time), so steady-state walks do not allocate.
  struct Walk {
    VirtAddr va = 0;
    unsigned level = 0;
    PhysAddr base = 0;
    std::function<void(WalkResult)> done;
    Cycles started = 0;
  };
  struct CacheSlot {
    bool valid = false;
    u64 tag = 0;        // va >> (page_bits + index_bits)
    PhysAddr base = 0;  // leaf table base
    u64 lru = 0;
  };

  void try_start();
  void begin(Job job);
  void read_level(Walk* w);
  void on_pte(Walk* w, u64 raw);
  void finish(Walk* w, const WalkResult& r);

  Walk* acquire_walk();
  void release_walk(Walk* w) noexcept;

  bool cache_lookup(VirtAddr va, PhysAddr& base);
  void cache_fill(VirtAddr va, PhysAddr base);
  u64 cache_tag(VirtAddr va) const noexcept;

  sim::Simulator& sim_;
  MemoryBus& bus_;
  PhysicalMemory& pm_;
  const PageTable& pt_;
  WalkerConfig cfg_;
  std::string name_;

  std::deque<Job> queue_;
  unsigned active_ = 0;

  std::vector<std::unique_ptr<Walk>> walk_pool_;  // owns every Walk ever made
  std::vector<Walk*> walk_free_;                  // recycled, ready for reuse

  std::vector<CacheSlot> cache_;
  u64 cache_tick_ = 0;

  Counter& walks_;
  Counter& faults_;
  Counter& mem_reads_;
  Counter& ad_writebacks_;
  Counter& cache_hits_;
  Counter& cache_misses_;
  Histogram& walk_latency_;
  Histogram& queue_wait_;
};

}  // namespace vmsls::mem

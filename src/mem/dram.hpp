// DRAM timing model.
//
// Bank-level model with open-row policy: a hit pays CAS only, a conflict
// pays precharge + activate + CAS. Data transfer occupies the device for
// ceil(bytes / data_bytes_per_cycle) cycles. Bursts that cross row
// boundaries are split internally. Timing parameters are expressed in
// fabric (reference) cycles; defaults approximate a DDR3-1066 part behind a
// 200 MHz fabric, i.e. Zynq-7000 class.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace vmsls::mem {

struct DramConfig {
  u64 size_bytes = 512 * MiB;
  unsigned banks = 8;
  u64 row_bytes = 2 * KiB;
  Cycles t_cas = 6;   // column access (row already open)
  Cycles t_rcd = 6;   // activate -> column
  Cycles t_rp = 6;    // precharge
  unsigned data_bytes_per_cycle = 8;  // effective controller bandwidth
};

/// Timing-only DRAM device. Thread of control lives in the caller (the
/// memory bus): `access` computes when a transaction beginning no earlier
/// than `earliest_start` completes, advancing internal bank state.
class DramModel {
 public:
  DramModel(const DramConfig& cfg, StatRegistry& stats, std::string name);

  const DramConfig& config() const noexcept { return cfg_; }

  /// Returns the completion cycle of the access. Updates bank open-row
  /// state and busy times.
  Cycles access(PhysAddr addr, u32 bytes, bool is_write, Cycles earliest_start);

  /// Latency of an isolated row-hit read of `bytes` (for analytical checks).
  Cycles best_case_latency(u32 bytes) const noexcept;

 private:
  struct Bank {
    u64 open_row = kNoRow;
    Cycles busy_until = 0;
  };
  static constexpr u64 kNoRow = ~0ull;

  Cycles access_chunk(PhysAddr addr, u32 bytes, Cycles earliest_start);

  DramConfig cfg_;
  std::vector<Bank> banks_;
  Counter& row_hits_;
  Counter& row_misses_;
  Counter& reads_;
  Counter& writes_;
  Counter& bytes_moved_;
};

}  // namespace vmsls::mem

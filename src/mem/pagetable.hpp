// Radix page tables living in simulated physical memory.
//
// The layout follows the hardware convention the paper's MMU requires: each
// table node occupies exactly one page-sized frame and holds 8-byte PTEs,
// so a table indexes (page_bits - 3) VA bits per level. Level count is
// derived from the VA width:
//
//   page 4 KiB  -> 9-bit indices, 3 levels for a 32-bit VA
//   page 64 KiB -> 13-bit indices, 2 levels
//   page 2 MiB  -> 18-bit indices, 1 level
//
// which gives the page-size experiments their walk-depth story. The
// software side (OS model) manipulates entries functionally in zero
// simulated time; the hardware PageWalker reads the same bytes through the
// memory bus and pays cycles.
#pragma once

#include <optional>
#include <string>

#include "mem/frames.hpp"
#include "mem/physmem.hpp"
#include "util/units.hpp"

namespace vmsls::mem {

struct PageTableConfig {
  unsigned va_bits = 32;
  unsigned page_bits = 12;  // log2(page size)
};

/// Decoded page-table entry. The on-disk format packs `frame` into bits
/// [63:16] and flags into the low bits.
struct Pte {
  bool valid = false;
  bool writable = false;
  bool accessed = false;
  bool dirty = false;
  u64 frame = 0;

  static Pte decode(u64 raw) noexcept;
  u64 encode() const noexcept;
};

class PageTable {
 public:
  PageTable(PhysicalMemory& pm, FrameAllocator& frames, const PageTableConfig& cfg);

  const PageTableConfig& config() const noexcept { return cfg_; }
  unsigned levels() const noexcept { return levels_; }
  unsigned index_bits() const noexcept { return idx_bits_; }
  u64 page_bytes() const noexcept { return 1ull << cfg_.page_bits; }
  PhysAddr root_addr() const noexcept { return root_addr_; }

  /// Index into the level-`level` table for `va` (level 0 = root).
  u64 index_at(VirtAddr va, unsigned level) const noexcept;

  /// Physical address of the PTE for `va` within a table at `table_base`.
  PhysAddr pte_addr(PhysAddr table_base, unsigned level, VirtAddr va) const noexcept;

  /// Maps the page containing `va` to `frame`. Interior tables are created
  /// on demand (frames come from the allocator). Remapping an already valid
  /// page is an error — unmap first.
  void map(VirtAddr va, u64 frame, bool writable);

  /// Invalidates the leaf PTE. Interior tables are retained. Throws if the
  /// page was not mapped.
  void unmap(VirtAddr va);

  /// Functional walk. Returns nullopt if any level is invalid.
  std::optional<Pte> lookup(VirtAddr va) const;

  bool is_mapped(VirtAddr va) const { return lookup(va).has_value(); }

  /// Sets accessed (and optionally dirty) bits on the leaf PTE. Const: the
  /// mutation targets simulated memory contents, not table structure — the
  /// MMU and walker call this through their const table references on every
  /// translation, which is what arms the replacement policies. Returns true
  /// when a bit actually changed (the PTE was written), which is what the
  /// walker's timed A/D write-back charges for.
  bool set_accessed_dirty(VirtAddr va, bool dirty) const;

  /// Rewrites the leaf PTE's write permission in place (fork downgrades a
  /// shared page to read-only; COW resolution re-enables write). Accessed
  /// and dirty bits are preserved. Throws if the page is not mapped.
  void set_writable(VirtAddr va, bool writable);

  /// Physical address of the leaf PTE for `va`; nullopt when any interior
  /// level is missing. The walker uses this to aim its A/D write-back at
  /// the actual PTE bytes on the bus.
  std::optional<PhysAddr> leaf_addr(VirtAddr va) const { return find_leaf_pte_addr(va); }

  /// Reads and clears the accessed bit (the CLOCK/aging sweep primitive).
  /// Returns false when the page is unmapped.
  bool test_and_clear_accessed(VirtAddr va) const;

  /// Reads and clears the dirty bit (the pageout daemon's cleaning
  /// primitive: once the writeback is issued the page is clean until the
  /// next write dirties it again). Returns false when the page is unmapped.
  bool test_and_clear_dirty(VirtAddr va) const;

  /// Number of interior table frames allocated so far (root included).
  u64 table_frames() const noexcept { return table_frames_; }

  /// Validates `va` fits in the configured VA width.
  void check_va(VirtAddr va) const;

 private:
  /// Walks to the leaf table, creating interior nodes when `create` is set.
  /// Returns the physical address of the leaf PTE, or nullopt if a level is
  /// missing and `create` is false.
  std::optional<PhysAddr> leaf_pte_addr(VirtAddr va, bool create);

  /// Read-only leaf walk: nullopt when any interior level is missing.
  std::optional<PhysAddr> find_leaf_pte_addr(VirtAddr va) const;

  PhysicalMemory& pm_;
  FrameAllocator& frames_;
  PageTableConfig cfg_;
  unsigned idx_bits_;
  unsigned levels_;
  PhysAddr root_addr_;
  u64 table_frames_ = 0;
};

}  // namespace vmsls::mem

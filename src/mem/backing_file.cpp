#include "mem/backing_file.hpp"

#include <cstring>

namespace vmsls::mem {

BackingFile::BackingFile(u32 id, std::string name, u64 bytes, u64 block_bytes)
    : id_(id), name_(std::move(name)), block_bytes_(block_bytes) {
  require(block_bytes_ > 0 && is_pow2(block_bytes_), "file block size must be a power of two");
  require(bytes > 0, name_ + ": cannot create an empty file");
  data_.assign(align_up(bytes, block_bytes_), 0);
}

std::span<u8> BackingFile::block_data(u64 block) {
  require(block < blocks(), name_ + ": block out of range");
  return std::span<u8>(data_.data() + block * block_bytes_, block_bytes_);
}

std::span<const u8> BackingFile::block_data(u64 block) const {
  require(block < blocks(), name_ + ": block out of range");
  return std::span<const u8>(data_.data() + block * block_bytes_, block_bytes_);
}

void BackingFile::write(u64 offset, std::span<const u8> data) {
  require(offset + data.size() <= size_bytes(), name_ + ": write past end of file");
  std::memcpy(data_.data() + offset, data.data(), data.size());
}

void BackingFile::read(u64 offset, std::span<u8> out) const {
  require(offset + out.size() <= size_bytes(), name_ + ": read past end of file");
  std::memcpy(out.data(), data_.data() + offset, out.size());
}

FileStore::FileStore(u64 block_bytes) : block_bytes_(block_bytes) {
  require(block_bytes_ > 0 && is_pow2(block_bytes_), "file block size must be a power of two");
}

BackingFile& FileStore::create(const std::string& name, u64 bytes) {
  files_.push_back(std::make_unique<BackingFile>(static_cast<u32>(files_.size()), name, bytes,
                                                 block_bytes_));
  return *files_.back();
}

BackingFile& FileStore::file(u32 id) {
  require(id < files_.size(), "unknown file id");
  return *files_[id];
}

const BackingFile& FileStore::file(u32 id) const {
  require(id < files_.size(), "unknown file id");
  return *files_[id];
}

}  // namespace vmsls::mem

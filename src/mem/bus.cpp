#include "mem/bus.hpp"

#include <algorithm>
#include <utility>

namespace vmsls::mem {

MemoryBus::MemoryBus(sim::Simulator& sim, DramModel& dram, const BusConfig& cfg, std::string name)
    : sim_(sim),
      dram_(dram),
      cfg_(cfg),
      name_(std::move(name)),
      requests_(sim.stats().counter(name_ + ".requests")),
      read_requests_(sim.stats().counter(name_ + ".reads")),
      write_requests_(sim.stats().counter(name_ + ".writes")),
      bytes_(sim.stats().counter(name_ + ".bytes")),
      wait_hist_(sim.stats().histogram(name_ + ".queue_wait")) {
  require(cfg.width_bytes > 0, "bus width must be nonzero");
}

void MemoryBus::request(BusRequest req) {
  require(req.bytes > 0, "bus request must move at least one byte");
  require(static_cast<bool>(req.on_done), "bus request needs a completion callback");
  requests_.add();
  (req.is_write ? write_requests_ : read_requests_).add();
  bytes_.add(req.bytes);
  queue_.push_back(Pending{std::move(req), sim_.now()});
  pump();
}

void MemoryBus::pump() {
  if (pump_scheduled_ || queue_.empty()) return;
  const Cycles now = sim_.now();
  if (channel_free_ > now) {
    pump_scheduled_ = true;
    sim_.schedule_at(channel_free_, [this] {
      pump_scheduled_ = false;
      pump();
    });
    return;
  }

  Pending p = std::move(queue_.front());
  queue_.pop_front();
  wait_hist_.record(now - p.enqueued);

  const Cycles beats = ceil_div(p.req.bytes, cfg_.width_bytes);
  const Cycles occupancy = cfg_.header_cycles + beats;
  channel_free_ = now + occupancy;
  busy_cycles_ += occupancy;

  // The DRAM access begins after the command phase; the response is ready
  // when both the device access and the data beats finish.
  const Cycles dram_done = dram_.access(p.req.addr, p.req.bytes, p.req.is_write,
                                        now + cfg_.header_cycles);
  const Cycles done = std::max(dram_done, channel_free_);
  sim_.schedule_at(done, std::move(p.req.on_done));

  pump();  // issue or schedule the next transaction
}

}  // namespace vmsls::mem

#include "mem/mmu.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::mem {

Mmu::Mmu(sim::Simulator& sim, PageWalker& walker, const MmuConfig& cfg, std::string name,
         unsigned thread_id)
    : sim_(sim),
      walker_(walker),
      cfg_(cfg),
      name_(std::move(name)),
      thread_id_(thread_id),
      tlb_(cfg.tlb, sim.stats(), name_ + ".tlb"),
      translations_(sim.stats().counter(name_ + ".translations")),
      fault_raises_(sim.stats().counter(name_ + ".faults")),
      prefetches_(sim.stats().counter(name_ + ".prefetches")),
      prefetch_fills_(sim.stats().counter(name_ + ".prefetch_fills")),
      inline_completions_(sim.stats().counter(name_ + ".inline_completions")) {}

void Mmu::maybe_prefetch(u64 missed_vpn) {
  if (!cfg_.prefetch_next_page) return;
  const u64 next_vpn = missed_vpn + 1;
  if (next_vpn == prefetch_inflight_vpn_ || tlb_.peek(next_vpn).has_value()) return;
  prefetch_inflight_vpn_ = next_vpn;
  prefetches_.add();
  const VirtAddr next_va = next_vpn << walker_.page_bits();
  walker_.walk(next_va, [this, next_vpn](const WalkResult& r) {
    if (prefetch_inflight_vpn_ == next_vpn) prefetch_inflight_vpn_ = ~0ull;
    if (r.fault) return;  // prefetches never raise faults
    tlb_.insert(next_vpn, r.frame, r.writable);
    prefetch_fills_.add();
  });
}

void Mmu::translate(VirtAddr va, bool is_write, std::function<void(PhysAddr)> done) {
  if (!cfg_.translation_enabled) {
    // Physical pass-through: the "MMU-less" accelerator of the DMA baseline.
    // Zero modeled latency, so complete inline — no scheduler traffic at
    // all on this path (inline_completions counts it; tests assert
    // events_scheduled() stays flat here).
    inline_completions_.add();
    done(va);
    return;
  }
  translations_.add();
  const unsigned page_bits = walker_.page_bits();
  const u64 vpn = va >> page_bits;
  const u64 offset = va & ((1ull << page_bits) - 1);

  if (auto entry = tlb_.lookup(vpn)) {
    if (is_write && !entry->writable) {
      // Permission fault: stale or read-only mapping. Drop the entry and
      // take the long path so the OS can upgrade the mapping.
      tlb_.invalidate(vpn);
    } else {
      // Keep the PTE's accessed/dirty bits fresh on TLB hits too, or the
      // pager's CLOCK hand would evict pages that are hot in the TLB. The
      // walker funnel charges the PTE write-back when a bit flips.
      if (cfg_.ad_tracking) walker_.note_ad_update(va, is_write);
      const PhysAddr pa = (entry->frame << page_bits) | offset;
      const Cycles hit_latency = tlb_.config().hit_latency;
      if (hit_latency == 0) {
        // Combinational TLB: complete inline, same cycle, no event.
        inline_completions_.add();
        done(pa);
      } else {
        sim_.schedule_in(hit_latency, [done = std::move(done), pa] { done(pa); });
      }
      return;
    }
  }

  walker_.walk(va, [this, va, is_write, done = std::move(done)](const WalkResult& r) {
    on_walk_done(va, is_write, done, r);
  });
  maybe_prefetch(vpn);
}

void Mmu::on_walk_done(VirtAddr va, bool is_write, std::function<void(PhysAddr)> done,
                       const WalkResult& r) {
  const unsigned page_bits = walker_.page_bits();
  const bool permission_fault = !r.fault && is_write && !r.writable;
  if (r.fault || permission_fault) {
    fault_raises_.add();
    if (sink_ == nullptr)
      throw std::runtime_error(name_ + ": unhandled " +
                               (permission_fault ? std::string("permission") : std::string("page")) +
                               " fault at va=0x" + std::to_string(va));
    FaultRequest req;
    req.thread_id = thread_id_;
    req.va = va;
    req.is_write = is_write;
    req.retry = [this, va, is_write, done] { translate(va, is_write, done); };
    sink_->raise(std::move(req));
    return;
  }
  if (is_write) walker_.note_ad_update(va, /*dirty=*/true);
  tlb_.insert(va >> page_bits, r.frame, r.writable);
  const PhysAddr pa = (r.frame << page_bits) | (va & ((1ull << page_bits) - 1));
  done(pa);
}

void Mmu::shootdown(VirtAddr va) { tlb_.invalidate(va >> walker_.page_bits()); }

void Mmu::shootdown_all() { tlb_.flush(); }

}  // namespace vmsls::mem

// Per-hardware-thread MMU front end: TLB + shared walker + fault plumbing.
//
// This is the component the toolflow instantiates between a hardware
// thread's memory port and the system bus. Translation flow:
//
//   TLB hit                 -> +hit_latency cycles
//   TLB miss                -> queue on the shared PageWalker
//   walk fault / permission -> raise to the FaultSink (the runtime's
//                              delegate thread); when the OS has mapped the
//                              page it calls retry() and the translation
//                              restarts transparently.
//
// With `translation_enabled = false` the MMU degenerates to a physical
// pass-through, which is how the copy-based DMA baseline's kernels run.
#pragma once

#include <functional>
#include <string>

#include "mem/tlb.hpp"
#include "mem/walker.hpp"
#include "sim/simulator.hpp"

namespace vmsls::mem {

/// A fault forwarded to the OS model. `retry` restarts the faulting
/// translation after service.
struct FaultRequest {
  unsigned thread_id = 0;
  VirtAddr va = 0;
  bool is_write = false;
  std::function<void()> retry;
};

class FaultSink {
 public:
  virtual ~FaultSink() = default;
  virtual void raise(FaultRequest req) = 0;
};

struct MmuConfig {
  TlbConfig tlb;
  bool translation_enabled = true;

  /// Maintain PTE accessed/dirty bits on TLB hits (functional update the
  /// replacement policies consume). Defaults on; systems without a pager
  /// disable it to keep the hit path free of page-table work.
  bool ad_tracking = true;

  /// Next-page prefetch: a demand miss on page N also queues a walk for
  /// page N+1 and fills the TLB in the background (faults are dropped
  /// silently). Hides compulsory misses of sequential streams at the cost
  /// of walker occupancy; ablation A3.
  bool prefetch_next_page = false;
};

class Mmu {
 public:
  Mmu(sim::Simulator& sim, PageWalker& walker, const MmuConfig& cfg, std::string name,
      unsigned thread_id);

  Mmu(const Mmu&) = delete;
  Mmu& operator=(const Mmu&) = delete;

  /// The sink must outlive the MMU; without one, faults are fatal (tests
  /// exercise pinned-only systems that must never fault).
  void set_fault_sink(FaultSink* sink) noexcept { sink_ = sink; }

  /// Translates `va`; `done(pa)` fires once a valid translation exists,
  /// after any walk and fault service completes.
  ///
  /// Fast path: when the translation adds zero modeled latency — physical
  /// pass-through, or a TLB hit with hit_latency == 0 — `done` is invoked
  /// synchronously, inside this call, without touching the scheduler
  /// (counted in `<name>.inline_completions`). Callers must therefore not
  /// assume `done` runs after the current event returns.
  void translate(VirtAddr va, bool is_write, std::function<void(PhysAddr)> done);

  /// Translations completed synchronously (no scheduler round-trip).
  u64 inline_completions() const noexcept { return inline_completions_.value(); }

  Tlb& tlb() noexcept { return tlb_; }
  const Tlb& tlb() const noexcept { return tlb_; }
  bool translation_enabled() const noexcept { return cfg_.translation_enabled; }
  unsigned thread_id() const noexcept { return thread_id_; }
  unsigned page_bits() const noexcept { return walker_.page_bits(); }

  /// TLB shootdown entry points, driven by the OS model on unmap/protect.
  void shootdown(VirtAddr va);
  void shootdown_all();

 private:
  void on_walk_done(VirtAddr va, bool is_write, std::function<void(PhysAddr)> done,
                    const WalkResult& r);
  void maybe_prefetch(u64 missed_vpn);

  sim::Simulator& sim_;
  PageWalker& walker_;
  MmuConfig cfg_;
  std::string name_;
  unsigned thread_id_;
  Tlb tlb_;
  FaultSink* sink_ = nullptr;
  u64 prefetch_inflight_vpn_ = ~0ull;

  Counter& translations_;
  Counter& fault_raises_;
  Counter& prefetches_;
  Counter& prefetch_fills_;
  Counter& inline_completions_;
};

}  // namespace vmsls::mem

// Functional physical memory backing store.
//
// Holds the *contents* of simulated DRAM. Timing is modeled separately by
// DramModel/MemoryBus; every component that completes a memory transaction
// reads or writes its data here at completion time. Storage is sparse
// (allocated in 4 KiB chunks on first touch) so multi-GiB address spaces
// cost only what is actually used.
#pragma once

#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace vmsls::mem {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(u64 size_bytes);

  u64 size() const noexcept { return size_; }

  /// Reads `out.size()` bytes starting at `addr`. Untouched memory reads as
  /// zero. Throws std::out_of_range past the end of memory.
  void read(PhysAddr addr, std::span<u8> out) const;

  void write(PhysAddr addr, std::span<const u8> data);

  /// Typed helpers for naturally aligned scalar access.
  template <typename T>
  T read_scalar(PhysAddr addr) const {
    T v{};
    read(addr, std::span<u8>(reinterpret_cast<u8*>(&v), sizeof(T)));
    return v;
  }

  template <typename T>
  void write_scalar(PhysAddr addr, T v) {
    write(addr, std::span<const u8>(reinterpret_cast<const u8*>(&v), sizeof(T)));
  }

  u64 read_u64(PhysAddr addr) const { return read_scalar<u64>(addr); }
  void write_u64(PhysAddr addr, u64 v) { write_scalar<u64>(addr, v); }

  /// Zeroes a range (releases nothing; just clears contents).
  void clear(PhysAddr addr, u64 bytes);

  /// Number of 4 KiB storage chunks actually touched (for tests / memory
  /// footprint introspection).
  std::size_t touched_chunks() const noexcept { return chunks_.size(); }

 private:
  static constexpr u64 kChunkBytes = 4 * KiB;

  void check_range(PhysAddr addr, u64 bytes) const;
  std::vector<u8>& chunk(u64 index);
  const std::vector<u8>* find_chunk(u64 index) const;

  u64 size_;
  std::unordered_map<u64, std::vector<u8>> chunks_;
};

}  // namespace vmsls::mem

#include "mem/pagetable.hpp"

#include <stdexcept>

namespace vmsls::mem {

namespace {
constexpr u64 kValidBit = 1ull << 0;
constexpr u64 kWriteBit = 1ull << 1;
constexpr u64 kAccessedBit = 1ull << 2;
constexpr u64 kDirtyBit = 1ull << 3;
constexpr unsigned kFrameShift = 16;
}  // namespace

Pte Pte::decode(u64 raw) noexcept {
  Pte p;
  p.valid = (raw & kValidBit) != 0;
  p.writable = (raw & kWriteBit) != 0;
  p.accessed = (raw & kAccessedBit) != 0;
  p.dirty = (raw & kDirtyBit) != 0;
  p.frame = raw >> kFrameShift;
  return p;
}

u64 Pte::encode() const noexcept {
  u64 raw = frame << kFrameShift;
  if (valid) raw |= kValidBit;
  if (writable) raw |= kWriteBit;
  if (accessed) raw |= kAccessedBit;
  if (dirty) raw |= kDirtyBit;
  return raw;
}

PageTable::PageTable(PhysicalMemory& pm, FrameAllocator& frames, const PageTableConfig& cfg)
    : pm_(pm), frames_(frames), cfg_(cfg) {
  require(cfg.page_bits >= 6 && cfg.page_bits <= 24, "page size must be 64 B .. 16 MiB");
  require(cfg.va_bits > cfg.page_bits && cfg.va_bits <= 48, "va_bits must exceed page_bits");
  require(frames.frame_bytes() == page_bytes(), "frame allocator granularity must equal page size");
  idx_bits_ = cfg.page_bits - 3;  // 8-byte PTEs, one table per frame
  const unsigned translated = cfg.va_bits - cfg.page_bits;
  levels_ = static_cast<unsigned>(ceil_div(translated, idx_bits_));
  const auto root_frame = frames_.alloc();
  if (!root_frame) throw std::runtime_error("PageTable: no frame for the root table");
  root_addr_ = frames_.frame_addr(*root_frame);
  pm_.clear(root_addr_, page_bytes());
  table_frames_ = 1;
}

void PageTable::check_va(VirtAddr va) const {
  if (cfg_.va_bits < 64 && (va >> cfg_.va_bits) != 0)
    throw std::out_of_range("virtual address exceeds configured VA width");
}

u64 PageTable::index_at(VirtAddr va, unsigned level) const noexcept {
  // Level 0 indexes the most significant translated bits.
  const unsigned shift = cfg_.page_bits + idx_bits_ * (levels_ - 1 - level);
  const u64 mask = (1ull << idx_bits_) - 1;
  return (va >> shift) & mask;
}

PhysAddr PageTable::pte_addr(PhysAddr table_base, unsigned level, VirtAddr va) const noexcept {
  return table_base + index_at(va, level) * 8;
}

std::optional<PhysAddr> PageTable::find_leaf_pte_addr(VirtAddr va) const {
  check_va(va);
  PhysAddr base = root_addr_;
  for (unsigned level = 0; level + 1 < levels_; ++level) {
    const Pte pte = Pte::decode(pm_.read_u64(pte_addr(base, level, va)));
    if (!pte.valid) return std::nullopt;
    base = frames_.frame_addr(pte.frame);
  }
  return pte_addr(base, levels_ - 1, va);
}

std::optional<PhysAddr> PageTable::leaf_pte_addr(VirtAddr va, bool create) {
  if (!create) return find_leaf_pte_addr(va);
  check_va(va);
  PhysAddr base = root_addr_;
  for (unsigned level = 0; level + 1 < levels_; ++level) {
    const PhysAddr pa = pte_addr(base, level, va);
    Pte pte = Pte::decode(pm_.read_u64(pa));
    if (!pte.valid) {
      // Page-table nodes are wired memory: they are never paged out, so
      // exhaustion here is fatal rather than a pager event.
      const auto frame = frames_.alloc();
      if (!frame) throw std::runtime_error("PageTable: out of frames for an interior table");
      pm_.clear(frames_.frame_addr(*frame), page_bytes());
      ++table_frames_;
      pte = Pte{};
      pte.valid = true;
      pte.writable = true;  // interior nodes carry no permission semantics
      pte.frame = *frame;
      pm_.write_u64(pa, pte.encode());
    }
    base = frames_.frame_addr(pte.frame);
  }
  return pte_addr(base, levels_ - 1, va);
}

void PageTable::map(VirtAddr va, u64 frame, bool writable) {
  const PhysAddr leaf = *leaf_pte_addr(va, /*create=*/true);
  Pte existing = Pte::decode(pm_.read_u64(leaf));
  if (existing.valid) throw std::logic_error("PageTable::map: page already mapped");
  Pte pte;
  pte.valid = true;
  pte.writable = writable;
  pte.frame = frame;
  pm_.write_u64(leaf, pte.encode());
}

void PageTable::unmap(VirtAddr va) {
  auto leaf = leaf_pte_addr(va, /*create=*/false);
  if (!leaf) throw std::logic_error("PageTable::unmap: page not mapped");
  Pte pte = Pte::decode(pm_.read_u64(*leaf));
  if (!pte.valid) throw std::logic_error("PageTable::unmap: page not mapped");
  pm_.write_u64(*leaf, 0);
}

std::optional<Pte> PageTable::lookup(VirtAddr va) const {
  check_va(va);
  PhysAddr base = root_addr_;
  for (unsigned level = 0; level < levels_; ++level) {
    const PhysAddr pa = pte_addr(base, level, va);
    const Pte pte = Pte::decode(pm_.read_u64(pa));
    if (!pte.valid) return std::nullopt;
    if (level + 1 == levels_) return pte;
    base = frames_.frame_addr(pte.frame);
  }
  return std::nullopt;  // unreachable; levels_ >= 1
}

bool PageTable::set_accessed_dirty(VirtAddr va, bool dirty) const {
  auto leaf = find_leaf_pte_addr(va);
  if (!leaf) return false;
  Pte pte = Pte::decode(pm_.read_u64(*leaf));
  if (!pte.valid) return false;
  if (pte.accessed && (pte.dirty || !dirty)) return false;  // already in the target state
  pte.accessed = true;
  pte.dirty = pte.dirty || dirty;
  pm_.write_u64(*leaf, pte.encode());
  return true;
}

void PageTable::set_writable(VirtAddr va, bool writable) {
  auto leaf = find_leaf_pte_addr(va);
  if (!leaf) throw std::logic_error("PageTable::set_writable: page not mapped");
  Pte pte = Pte::decode(pm_.read_u64(*leaf));
  if (!pte.valid) throw std::logic_error("PageTable::set_writable: page not mapped");
  pte.writable = writable;
  pm_.write_u64(*leaf, pte.encode());
}

bool PageTable::test_and_clear_accessed(VirtAddr va) const {
  auto leaf = find_leaf_pte_addr(va);
  if (!leaf) return false;
  Pte pte = Pte::decode(pm_.read_u64(*leaf));
  if (!pte.valid) return false;
  const bool was = pte.accessed;
  pte.accessed = false;
  pm_.write_u64(*leaf, pte.encode());
  return was;
}

bool PageTable::test_and_clear_dirty(VirtAddr va) const {
  auto leaf = find_leaf_pte_addr(va);
  if (!leaf) return false;
  Pte pte = Pte::decode(pm_.read_u64(*leaf));
  if (!pte.valid) return false;
  const bool was = pte.dirty;
  pte.dirty = false;
  pm_.write_u64(*leaf, pte.encode());
  return was;
}

}  // namespace vmsls::mem

#include "mem/cache.hpp"

#include <utility>

namespace vmsls::mem {

CacheLevel::CacheLevel(const CacheConfig& cfg, StatRegistry& stats, std::string name)
    : cfg_(cfg),
      hits_(stats.counter(name + ".hits")),
      misses_(stats.counter(name + ".misses")),
      writebacks_(stats.counter(name + ".writebacks")) {
  require(is_pow2(cfg.line_bytes), "cache line size must be a power of two");
  require(cfg.ways > 0, "cache must have ways");
  const u64 lines = cfg.size_bytes / cfg.line_bytes;
  require(lines % cfg.ways == 0, "cache lines must divide evenly into ways");
  sets_ = static_cast<unsigned>(lines / cfg.ways);
  require(sets_ > 0, "cache must have at least one set");
  ways_.resize(lines);
}

CacheLevel::Outcome CacheLevel::access(PhysAddr addr, bool is_write) {
  const u64 line = addr / cfg_.line_bytes;
  const unsigned set = static_cast<unsigned>(line % sets_);
  const u64 tag = line / sets_;

  Way* victim = nullptr;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[static_cast<std::size_t>(set) * cfg_.ways + w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      way.dirty = way.dirty || is_write;
      hits_.add();
      return Outcome{true, false, 0};
    }
    if (!way.valid) {
      if (victim == nullptr || victim->valid) victim = &way;
    } else if (victim == nullptr || (victim->valid && way.lru < victim->lru)) {
      victim = &way;
    }
  }

  misses_.add();
  Outcome out;
  if (victim->valid && victim->dirty) {
    out.writeback = true;
    out.writeback_addr = (victim->tag * sets_ + set) * cfg_.line_bytes;
    writebacks_.add();
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = ++tick_;
  return out;
}

void CacheLevel::flush() {
  for (auto& way : ways_) way.valid = false;
}

struct CacheHierarchy::Walk {
  PhysAddr next_line = 0;
  PhysAddr end = 0;
  bool is_write = false;
  std::function<void()> done;
};

CacheHierarchy::CacheHierarchy(sim::Simulator& sim, MemoryBus& bus,
                               const CacheHierarchyConfig& cfg, std::string name)
    : sim_(sim),
      bus_(bus),
      cfg_(cfg),
      l1_(cfg.l1, sim.stats(), name + ".l1"),
      l2_(cfg.l2, sim.stats(), name + ".l2") {
  require(cfg.l1.line_bytes == cfg.l2.line_bytes, "L1/L2 line sizes must match");
}

void CacheHierarchy::access(PhysAddr addr, u32 bytes, bool is_write, std::function<void()> done) {
  require(bytes > 0, "cache access must touch at least one byte");
  auto w = std::make_shared<Walk>();
  const u64 line_bytes = cfg_.l1.line_bytes;
  w->next_line = align_down(addr, line_bytes);
  w->end = addr + bytes;
  w->is_write = is_write;
  w->done = std::move(done);
  step(w);
}

void CacheHierarchy::step(const std::shared_ptr<Walk>& w) {
  const u64 line_bytes = cfg_.l1.line_bytes;
  if (w->next_line >= w->end) {
    sim_.schedule_now([w] { w->done(); });
    return;
  }
  const PhysAddr line_addr = w->next_line;
  w->next_line += line_bytes;

  const auto o1 = l1_.access(line_addr, w->is_write);
  if (o1.hit) {
    sim_.schedule_in(cfg_.l1.hit_latency, [this, w] { step(w); });
    return;
  }
  // L1 miss: a dirty L1 victim is absorbed by L2 (both track the line; we
  // charge the L2 access below). Look up L2.
  if (o1.writeback) {
    const auto wb = l2_.access(o1.writeback_addr, /*is_write=*/true);
    if (wb.writeback)
      bus_.request(BusRequest{wb.writeback_addr, static_cast<u32>(line_bytes), true, [] {}});
  }
  const auto o2 = l2_.access(line_addr, w->is_write);
  if (o2.writeback)
    bus_.request(BusRequest{o2.writeback_addr, static_cast<u32>(line_bytes), true, [] {}});
  const Cycles lookup_cost = cfg_.l1.hit_latency + cfg_.l2.hit_latency;
  if (o2.hit) {
    sim_.schedule_in(lookup_cost, [this, w] { step(w); });
    return;
  }
  // L2 miss: fill the line from DRAM, then continue with the next line.
  sim_.schedule_in(lookup_cost, [this, w, line_addr, line_bytes] {
    bus_.request(
        BusRequest{line_addr, static_cast<u32>(line_bytes), false, [this, w] { step(w); }});
  });
}

}  // namespace vmsls::mem

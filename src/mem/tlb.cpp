#include "mem/tlb.hpp"

#include <algorithm>

namespace vmsls::mem {

Tlb::Tlb(const TlbConfig& cfg, StatRegistry& stats, std::string name)
    : cfg_(cfg),
      hits_(stats.counter(name + ".hits")),
      misses_(stats.counter(name + ".misses")),
      evictions_(stats.counter(name + ".evictions")),
      flushes_(stats.counter(name + ".flushes")) {
  require(cfg.entries > 0, "TLB must have entries");
  require(cfg.ways > 0 && cfg.entries % cfg.ways == 0, "TLB entries must divide evenly into ways");
  sets_ = cfg.entries / cfg.ways;
  if (is_pow2(sets_)) set_mask_ = sets_ - 1;
  ways_.resize(cfg.entries);
}

std::optional<TlbEntry> Tlb::lookup(u64 vpn) {
  const unsigned set = set_of(vpn);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.entry.vpn == vpn) {
      way.lru = ++tick_;
      hits_.add();
      return way.entry;
    }
  }
  misses_.add();
  return std::nullopt;
}

std::optional<TlbEntry> Tlb::peek(u64 vpn) const {
  const unsigned set = set_of(vpn);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.entry.vpn == vpn) return way.entry;
  }
  return std::nullopt;
}

void Tlb::insert(u64 vpn, u64 frame, bool writable) {
  const unsigned set = set_of(vpn);
  Way* victim = nullptr;
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.entry.vpn == vpn) {
      victim = &way;  // refresh existing mapping in place
      break;
    }
    if (!way.valid) {
      if (victim == nullptr || victim->valid) victim = &way;
    } else if (victim == nullptr || (victim->valid && way.lru < victim->lru)) {
      victim = &way;
    }
  }
  if (victim->valid && victim->entry.vpn != vpn) evictions_.add();
  victim->valid = true;
  victim->entry = TlbEntry{vpn, frame, writable};
  victim->lru = ++tick_;
}

void Tlb::invalidate(u64 vpn) {
  const unsigned set = set_of(vpn);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Way& way = ways_[set * cfg_.ways + w];
    if (way.valid && way.entry.vpn == vpn) way.valid = false;
  }
}

void Tlb::flush() {
  for (auto& way : ways_) way.valid = false;
  flushes_.add();
}

double Tlb::hit_rate() const noexcept {
  const u64 total = hits_.value() + misses_.value();
  return total == 0 ? 0.0 : static_cast<double>(hits_.value()) / static_cast<double>(total);
}

}  // namespace vmsls::mem

// Reference interpreter for kernel IR.
//
// Executes a kernel functionally — no timing, no simulator, flat byte
// memory, in-process mailboxes — and is deliberately written as a separate,
// straight-line implementation of the ISA semantics. Property tests run
// randomly generated programs through both this interpreter and the
// cycle-accounted Engine and require identical architectural state, which
// pins the ISA semantics independently of the timing machinery.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <vector>

#include "hwt/kernel.hpp"

namespace vmsls::hwt {

struct InterpResult {
  std::array<i64, kNumRegs> regs{};
  std::vector<u8> spad;
  u64 instructions = 0;
  bool halted = false;
};

class Interpreter {
 public:
  explicit Interpreter(Kernel kernel);

  /// Flat functional memory (sparse, byte-granular).
  void poke(VirtAddr va, u64 value, unsigned bytes = 8);
  u64 peek(VirtAddr va, unsigned bytes = 8) const;

  /// Pre-loads values a kernel will mbox_get (per mailbox index).
  void feed_mailbox(unsigned mbox, i64 value);
  const std::vector<i64>& mailbox_output(unsigned mbox) const;

  /// Runs until halt or `max_instructions`. Throws on semantic errors
  /// (scratchpad overflow, starved mailbox) exactly like the engine traps.
  InterpResult run(u64 max_instructions = 10'000'000);

 private:
  u64 load(VirtAddr va, unsigned bytes) const;
  void store(VirtAddr va, unsigned bytes, u64 value);

  Kernel kernel_;
  std::map<u64, u8> mem_;
  std::map<unsigned, std::deque<i64>> mbox_in_;
  std::map<unsigned, std::vector<i64>> mbox_out_;
  std::map<unsigned, u64> sems_;
};

/// Generates a random but well-formed straight-line + loop program using
/// only architectural ops (ALU, scratchpad, branches), suitable for
/// differential testing. Deterministic in `seed`.
Kernel random_kernel(u64 seed, unsigned length = 64, u32 spad_bytes = 256);

}  // namespace vmsls::hwt

#include "hwt/engine.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

namespace vmsls::hwt {

CostModel cpu_cost_model() {
  CostModel c;
  c.alu = 1;
  c.mul = 4;
  c.divu = 24;
  c.branch = 3;   // average including mispredictions
  c.spad = 2;     // L1-resident temporary: load-use latency amortized
  c.mem_issue = 1;
  c.os_issue = 1;
  c.ilp = 1;  // single-issue in-order core
  return c;
}

Engine::Engine(sim::Simulator& sim, Kernel kernel, const EngineConfig& cfg, std::string name)
    : sim_(sim),
      kernel_(std::move(kernel)),
      cfg_(cfg),
      name_(std::move(name)),
      spad_(kernel_.iface.spad_bytes, 0),
      stat_instret_(sim.stats().counter(name_ + ".instructions")),
      stat_mem_ops_(sim.stats().counter(name_ + ".mem_ops")),
      stat_os_ops_(sim.stats().counter(name_ + ".os_ops")),
      stat_mem_latency_(sim.stats().histogram(name_ + ".mem_latency")) {
  verify(kernel_);
}

void Engine::attach_mem_port(unsigned index, MemPort* port) {
  require(index < mem_ports_.size(), "memory port index out of range");
  require(port != nullptr, "null memory port");
  mem_ports_[index] = port;
}

void Engine::attach_os_port(OsPort* port) {
  require(port != nullptr, "null OS port");
  os_port_ = port;
}

void Engine::start(std::function<void()> on_halt, Cycles start_delay) {
  require(!started_, "engine started twice");
  for (unsigned p = 0; p < kernel_.iface.mem_ports; ++p)
    require(mem_ports_[p] != nullptr,
            name_ + ": kernel uses memory port " + std::to_string(p) + " but none is attached");
  if (kernel_.iface.mailboxes > 0 || kernel_.iface.semaphores > 0)
    require(os_port_ != nullptr, name_ + ": kernel uses OS services but no OS port is attached");
  started_ = true;
  on_halt_ = std::move(on_halt);
  start_time_ = sim_.now() + start_delay;
  sim_.schedule_in(start_delay, [this] { resume(); });
}

i64 Engine::reg(unsigned r) const {
  require(r < kNumRegs, "register index out of range");
  return regs_[r];
}

void Engine::set_reg(unsigned r, i64 v) {
  require(r < kNumRegs, "register index out of range");
  regs_[r] = v;
}

void Engine::trap(const std::string& what) const {
  throw std::runtime_error(name_ + " @pc=" + std::to_string(pc_) + ": " + what);
}

u64 Engine::spad_read(u64 offset, u8 size) const {
  if (offset + size > spad_.size()) trap("scratchpad read out of bounds");
  u64 v = 0;
  std::memcpy(&v, spad_.data() + offset, size);
  return v;
}

void Engine::spad_write(u64 offset, u8 size, u64 value) {
  if (offset + size > spad_.size()) trap("scratchpad write out of bounds");
  std::memcpy(spad_.data() + offset, &value, size);
}

void Engine::exec_alu(const Instr& in) {
  const i64 a = regs_[in.ra];
  const i64 b = regs_[in.rb];
  const u64 ua = static_cast<u64>(a);
  const u64 ub = static_cast<u64>(b);
  i64 r = 0;
  switch (in.op) {
    case Op::kLi: r = in.imm; break;
    case Op::kMov: r = a; break;
    case Op::kAdd: r = static_cast<i64>(ua + ub); break;
    case Op::kSub: r = static_cast<i64>(ua - ub); break;
    case Op::kMul: r = static_cast<i64>(ua * ub); break;
    case Op::kDivU: r = ub == 0 ? -1 : static_cast<i64>(ua / ub); break;
    case Op::kRemU: r = ub == 0 ? a : static_cast<i64>(ua % ub); break;
    case Op::kAnd: r = static_cast<i64>(ua & ub); break;
    case Op::kOr: r = static_cast<i64>(ua | ub); break;
    case Op::kXor: r = static_cast<i64>(ua ^ ub); break;
    case Op::kShl: r = static_cast<i64>(ua << (ub & 63)); break;
    case Op::kShr: r = static_cast<i64>(ua >> (ub & 63)); break;
    case Op::kAddi: r = static_cast<i64>(ua + static_cast<u64>(in.imm)); break;
    case Op::kMuli: r = static_cast<i64>(ua * static_cast<u64>(in.imm)); break;
    case Op::kAndi: r = static_cast<i64>(ua & static_cast<u64>(in.imm)); break;
    case Op::kShli: r = static_cast<i64>(ua << (in.imm & 63)); break;
    case Op::kShri: r = static_cast<i64>(ua >> (in.imm & 63)); break;
    case Op::kSlt: r = a < b ? 1 : 0; break;
    case Op::kSltu: r = ua < ub ? 1 : 0; break;
    case Op::kSeq: r = a == b ? 1 : 0; break;
    case Op::kSne: r = a != b ? 1 : 0; break;
    case Op::kMin: r = a < b ? a : b; break;
    case Op::kMax: r = a > b ? a : b; break;
    default: trap("exec_alu on non-ALU op");
  }
  regs_[in.rd] = r;
}

Cycles Engine::effective(Cycles local_cost) const noexcept {
  const unsigned ilp = cfg_.cost.ilp == 0 ? 1 : cfg_.cost.ilp;
  return (local_cost + ilp - 1) / ilp;
}

void Engine::yield_then_resume(Cycles local_cost) {
  sim_.schedule_in(cfg_.clock.to_ref(effective(local_cost)), [this] { resume(); });
}

void Engine::resume() {
  Cycles local = 0;  // cost accumulated in the engine's own clock domain
  u64 batch = 0;

  while (true) {
    if (pc_ >= kernel_.code.size()) trap("fell off end of kernel");
    const Instr& in = kernel_.code[pc_];

    if (++batch > cfg_.batch_limit) {
      // Yield to keep single events bounded; resume in the same local cycle
      // budget we accumulated.
      yield_then_resume(local);
      return;
    }

    switch (in.op) {
      case Op::kNop:
        local += cfg_.cost.alu;
        ++pc_;
        break;

      case Op::kLi: case Op::kMov:
      case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
      case Op::kShl: case Op::kShr: case Op::kAddi: case Op::kAndi:
      case Op::kShli: case Op::kShri:
      case Op::kSlt: case Op::kSltu: case Op::kSeq: case Op::kSne:
      case Op::kMin: case Op::kMax:
        exec_alu(in);
        local += cfg_.cost.alu;
        ++instret_;
        ++pc_;
        break;

      case Op::kMul: case Op::kMuli:
        exec_alu(in);
        local += cfg_.cost.mul;
        ++instret_;
        ++pc_;
        break;

      case Op::kDivU: case Op::kRemU:
        exec_alu(in);
        local += cfg_.cost.divu;
        ++instret_;
        ++pc_;
        break;

      case Op::kBeqz:
        local += cfg_.cost.branch;
        ++instret_;
        pc_ = (regs_[in.ra] == 0) ? static_cast<u64>(in.imm) : pc_ + 1;
        break;

      case Op::kBnez:
        local += cfg_.cost.branch;
        ++instret_;
        pc_ = (regs_[in.ra] != 0) ? static_cast<u64>(in.imm) : pc_ + 1;
        break;

      case Op::kJmp:
        local += cfg_.cost.branch;
        ++instret_;
        pc_ = static_cast<u64>(in.imm);
        break;

      case Op::kSpadLoad:
        regs_[in.rd] = static_cast<i64>(spad_read(static_cast<u64>(regs_[in.ra] + in.imm), in.size));
        local += cfg_.cost.spad;
        ++instret_;
        ++pc_;
        break;

      case Op::kSpadStore:
        spad_write(static_cast<u64>(regs_[in.ra] + in.imm), in.size, static_cast<u64>(regs_[in.rb]));
        local += cfg_.cost.spad;
        ++instret_;
        ++pc_;
        break;

      case Op::kDelay: {
        ++instret_;
        ++pc_;
        // The explicit delay is absolute pipeline depth, not subject to ILP.
        sim_.schedule_in(
            cfg_.clock.to_ref(effective(local) + static_cast<Cycles>(in.imm)),
            [this] { resume(); });
        return;
      }

      case Op::kHalt: {
        ++instret_;
        stat_instret_.add(instret_);
        const Cycles at = cfg_.clock.to_ref(effective(local));
        sim_.schedule_in(at, [this] {
          halted_ = true;
          halt_time_ = sim_.now();
          if (on_halt_) on_halt_();
        });
        return;
      }

      case Op::kLoad: {
        ++instret_;
        stat_mem_ops_.add();
        const VirtAddr va = static_cast<VirtAddr>(regs_[in.ra] + in.imm);
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.mem_issue);
        sim_.schedule_in(issue, [this, va, snapshot] {
          const Cycles issued_at = sim_.now();
          mem_ports_[snapshot.port]->read(va, snapshot.size,
                                          [this, snapshot, issued_at](std::vector<u8> data) {
            u64 v = 0;
            std::memcpy(&v, data.data(), snapshot.size);
            regs_[snapshot.rd] = static_cast<i64>(v);
            ++pc_;
            finish_mem_op(issued_at);
          });
        });
        return;
      }

      case Op::kStore: {
        ++instret_;
        stat_mem_ops_.add();
        const VirtAddr va = static_cast<VirtAddr>(regs_[in.ra] + in.imm);
        const u64 v = static_cast<u64>(regs_[in.rb]);
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.mem_issue);
        sim_.schedule_in(issue, [this, va, v, snapshot] {
          const Cycles issued_at = sim_.now();
          std::vector<u8> bytes(snapshot.size);
          std::memcpy(bytes.data(), &v, snapshot.size);
          auto* port = mem_ports_[snapshot.port];
          // Keep the byte buffer alive across the asynchronous write.
          auto data = std::make_shared<std::vector<u8>>(std::move(bytes));
          port->write(va, std::span<const u8>(data->data(), data->size()),
                      [this, issued_at, data] {
            ++pc_;
            finish_mem_op(issued_at);
          });
        });
        return;
      }

      case Op::kBurstLoad: {
        ++instret_;
        stat_mem_ops_.add();
        const u64 spad_off = static_cast<u64>(regs_[in.rd]);
        const VirtAddr va = static_cast<VirtAddr>(regs_[in.ra]);
        const u64 bytes = static_cast<u64>(regs_[in.rb]);
        if (bytes == 0) trap("zero-length burst load");
        if (spad_off + bytes > spad_.size()) trap("burst load overflows scratchpad");
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.mem_issue);
        sim_.schedule_in(issue, [this, va, bytes, spad_off, snapshot] {
          const Cycles issued_at = sim_.now();
          mem_ports_[snapshot.port]->read(va, static_cast<u32>(bytes),
                                          [this, spad_off, issued_at](std::vector<u8> data) {
            std::memcpy(spad_.data() + spad_off, data.data(), data.size());
            ++pc_;
            finish_mem_op(issued_at);
          });
        });
        return;
      }

      case Op::kBurstStore: {
        ++instret_;
        stat_mem_ops_.add();
        const u64 spad_off = static_cast<u64>(regs_[in.rd]);
        const VirtAddr va = static_cast<VirtAddr>(regs_[in.ra]);
        const u64 bytes = static_cast<u64>(regs_[in.rb]);
        if (bytes == 0) trap("zero-length burst store");
        if (spad_off + bytes > spad_.size()) trap("burst store overruns scratchpad");
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.mem_issue);
        sim_.schedule_in(issue, [this, va, bytes, spad_off, snapshot] {
          const Cycles issued_at = sim_.now();
          mem_ports_[snapshot.port]->write(
              va, std::span<const u8>(spad_.data() + spad_off, bytes), [this, issued_at] {
                ++pc_;
                finish_mem_op(issued_at);
              });
        });
        return;
      }

      case Op::kMboxGet: {
        ++instret_;
        stat_os_ops_.add();
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.os_issue);
        sim_.schedule_in(issue, [this, snapshot] {
          os_port_->mbox_get(static_cast<unsigned>(snapshot.imm), [this, snapshot](i64 v) {
            regs_[snapshot.rd] = v;
            ++pc_;
            resume();
          });
        });
        return;
      }

      case Op::kMboxPut: {
        ++instret_;
        stat_os_ops_.add();
        const Instr snapshot = in;
        const i64 v = regs_[in.ra];
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.os_issue);
        sim_.schedule_in(issue, [this, snapshot, v] {
          os_port_->mbox_put(static_cast<unsigned>(snapshot.imm), v, [this] {
            ++pc_;
            resume();
          });
        });
        return;
      }

      case Op::kSemWait: {
        ++instret_;
        stat_os_ops_.add();
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.os_issue);
        sim_.schedule_in(issue, [this, snapshot] {
          os_port_->sem_wait(static_cast<unsigned>(snapshot.imm), [this] {
            ++pc_;
            resume();
          });
        });
        return;
      }

      case Op::kSemPost: {
        ++instret_;
        stat_os_ops_.add();
        const Instr snapshot = in;
        const Cycles issue = cfg_.clock.to_ref(effective(local) + cfg_.cost.os_issue);
        sim_.schedule_in(issue, [this, snapshot] {
          os_port_->sem_post(static_cast<unsigned>(snapshot.imm), [this] {
            ++pc_;
            resume();
          });
        });
        return;
      }
    }
  }
}

void Engine::finish_mem_op(Cycles issued_at) {
  const Cycles waited = sim_.now() - issued_at;
  stall_cycles_ += waited;
  stat_mem_latency_.record(waited);
  resume();
}

}  // namespace vmsls::hwt

#include "hwt/interp.hpp"

#include <stdexcept>

#include "hwt/builder.hpp"
#include "util/rng.hpp"

namespace vmsls::hwt {

Interpreter::Interpreter(Kernel kernel) : kernel_(std::move(kernel)) { verify(kernel_); }

void Interpreter::poke(VirtAddr va, u64 value, unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i) mem_[va + i] = static_cast<u8>(value >> (8 * i));
}

u64 Interpreter::peek(VirtAddr va, unsigned bytes) const { return load(va, bytes); }

u64 Interpreter::load(VirtAddr va, unsigned bytes) const {
  u64 v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    auto it = mem_.find(va + i);
    const u8 byte = it == mem_.end() ? 0 : it->second;
    v |= static_cast<u64>(byte) << (8 * i);
  }
  return v;
}

void Interpreter::store(VirtAddr va, unsigned bytes, u64 value) { poke(va, value, bytes); }

void Interpreter::feed_mailbox(unsigned mbox, i64 value) { mbox_in_[mbox].push_back(value); }

const std::vector<i64>& Interpreter::mailbox_output(unsigned mbox) const {
  static const std::vector<i64> kEmpty;
  auto it = mbox_out_.find(mbox);
  return it == mbox_out_.end() ? kEmpty : it->second;
}

InterpResult Interpreter::run(u64 max_instructions) {
  InterpResult st;
  st.spad.assign(kernel_.iface.spad_bytes, 0);
  auto& r = st.regs;
  u64 pc = 0;

  auto spad_load = [&](u64 off, unsigned bytes) -> u64 {
    if (off + bytes > st.spad.size()) throw std::runtime_error("interp: scratchpad read OOB");
    u64 v = 0;
    for (unsigned i = 0; i < bytes; ++i) v |= static_cast<u64>(st.spad[off + i]) << (8 * i);
    return v;
  };
  auto spad_store = [&](u64 off, unsigned bytes, u64 v) {
    if (off + bytes > st.spad.size()) throw std::runtime_error("interp: scratchpad write OOB");
    for (unsigned i = 0; i < bytes; ++i) st.spad[off + i] = static_cast<u8>(v >> (8 * i));
  };

  while (st.instructions < max_instructions) {
    if (pc >= kernel_.code.size()) throw std::runtime_error("interp: fell off end");
    const Instr& in = kernel_.code[pc];
    ++st.instructions;
    const u64 ua = static_cast<u64>(r[in.ra]);
    const u64 ub = static_cast<u64>(r[in.rb]);
    u64 next = pc + 1;
    switch (in.op) {
      case Op::kNop: break;
      case Op::kLi: r[in.rd] = in.imm; break;
      case Op::kMov: r[in.rd] = r[in.ra]; break;
      case Op::kAdd: r[in.rd] = static_cast<i64>(ua + ub); break;
      case Op::kSub: r[in.rd] = static_cast<i64>(ua - ub); break;
      case Op::kMul: r[in.rd] = static_cast<i64>(ua * ub); break;
      case Op::kDivU: r[in.rd] = ub == 0 ? -1 : static_cast<i64>(ua / ub); break;
      case Op::kRemU: r[in.rd] = ub == 0 ? r[in.ra] : static_cast<i64>(ua % ub); break;
      case Op::kAnd: r[in.rd] = static_cast<i64>(ua & ub); break;
      case Op::kOr: r[in.rd] = static_cast<i64>(ua | ub); break;
      case Op::kXor: r[in.rd] = static_cast<i64>(ua ^ ub); break;
      case Op::kShl: r[in.rd] = static_cast<i64>(ua << (ub & 63)); break;
      case Op::kShr: r[in.rd] = static_cast<i64>(ua >> (ub & 63)); break;
      case Op::kAddi: r[in.rd] = static_cast<i64>(ua + static_cast<u64>(in.imm)); break;
      case Op::kMuli: r[in.rd] = static_cast<i64>(ua * static_cast<u64>(in.imm)); break;
      case Op::kAndi: r[in.rd] = static_cast<i64>(ua & static_cast<u64>(in.imm)); break;
      case Op::kShli: r[in.rd] = static_cast<i64>(ua << (in.imm & 63)); break;
      case Op::kShri: r[in.rd] = static_cast<i64>(ua >> (in.imm & 63)); break;
      case Op::kSlt: r[in.rd] = r[in.ra] < r[in.rb] ? 1 : 0; break;
      case Op::kSltu: r[in.rd] = ua < ub ? 1 : 0; break;
      case Op::kSeq: r[in.rd] = r[in.ra] == r[in.rb] ? 1 : 0; break;
      case Op::kSne: r[in.rd] = r[in.ra] != r[in.rb] ? 1 : 0; break;
      case Op::kMin: r[in.rd] = r[in.ra] < r[in.rb] ? r[in.ra] : r[in.rb]; break;
      case Op::kMax: r[in.rd] = r[in.ra] > r[in.rb] ? r[in.ra] : r[in.rb]; break;
      case Op::kBeqz: if (r[in.ra] == 0) next = static_cast<u64>(in.imm); break;
      case Op::kBnez: if (r[in.ra] != 0) next = static_cast<u64>(in.imm); break;
      case Op::kJmp: next = static_cast<u64>(in.imm); break;
      case Op::kLoad:
        r[in.rd] = static_cast<i64>(load(static_cast<u64>(r[in.ra] + in.imm), in.size));
        break;
      case Op::kStore:
        store(static_cast<u64>(r[in.ra] + in.imm), in.size, static_cast<u64>(r[in.rb]));
        break;
      case Op::kBurstLoad: {
        const u64 off = static_cast<u64>(r[in.rd]);
        const u64 n = static_cast<u64>(r[in.rb]);
        if (off + n > st.spad.size()) throw std::runtime_error("interp: burst load OOB");
        for (u64 i = 0; i < n; ++i)
          st.spad[off + i] = static_cast<u8>(load(static_cast<u64>(r[in.ra]) + i, 1));
        break;
      }
      case Op::kBurstStore: {
        const u64 off = static_cast<u64>(r[in.rd]);
        const u64 n = static_cast<u64>(r[in.rb]);
        if (off + n > st.spad.size()) throw std::runtime_error("interp: burst store OOB");
        for (u64 i = 0; i < n; ++i) store(static_cast<u64>(r[in.ra]) + i, 1, st.spad[off + i]);
        break;
      }
      case Op::kSpadLoad:
        r[in.rd] = static_cast<i64>(spad_load(static_cast<u64>(r[in.ra] + in.imm), in.size));
        break;
      case Op::kSpadStore:
        spad_store(static_cast<u64>(r[in.ra] + in.imm), in.size, static_cast<u64>(r[in.rb]));
        break;
      case Op::kMboxGet: {
        auto& q = mbox_in_[static_cast<unsigned>(in.imm)];
        if (q.empty()) throw std::runtime_error("interp: mbox_get on empty mailbox");
        r[in.rd] = q.front();
        q.pop_front();
        break;
      }
      case Op::kMboxPut:
        mbox_out_[static_cast<unsigned>(in.imm)].push_back(r[in.ra]);
        break;
      case Op::kSemWait: {
        auto& c = sems_[static_cast<unsigned>(in.imm)];
        if (c == 0) throw std::runtime_error("interp: sem_wait would block");
        --c;
        break;
      }
      case Op::kSemPost:
        ++sems_[static_cast<unsigned>(in.imm)];
        break;
      case Op::kDelay:
        break;  // timing-only
      case Op::kHalt:
        st.halted = true;
        return st;
    }
    pc = next;
  }
  throw std::runtime_error("interp: instruction budget exhausted (possible livelock)");
}

Kernel random_kernel(u64 seed, unsigned length, u32 spad_bytes) {
  Rng rng(seed);
  KernelBuilder kb("rnd" + std::to_string(seed), spad_bytes);

  // Seed registers with random values so dataflow is non-trivial.
  for (Reg reg = 1; reg < 12; ++reg)
    kb.li(reg, static_cast<i64>(rng.next() & 0xffff) - 0x8000);

  // A bounded loop register ensures termination regardless of the random
  // body: r31 counts down and every backward branch targets the loop head.
  kb.li(31, static_cast<i64>(4 + rng.below(8)));
  kb.label("head");

  const auto any_reg = [&] { return static_cast<Reg>(1 + rng.below(12)); };
  for (unsigned i = 0; i < length; ++i) {
    switch (rng.below(12)) {
      case 0: kb.add(any_reg(), any_reg(), any_reg()); break;
      case 1: kb.sub(any_reg(), any_reg(), any_reg()); break;
      case 2: kb.mul(any_reg(), any_reg(), any_reg()); break;
      case 3: kb.xor_(any_reg(), any_reg(), any_reg()); break;
      case 4: kb.addi(any_reg(), any_reg(), static_cast<i64>(rng.below(1000)) - 500); break;
      case 5: kb.shri(any_reg(), any_reg(), static_cast<i64>(rng.below(8))); break;
      case 6: kb.slt(any_reg(), any_reg(), any_reg()); break;
      case 7: kb.min(any_reg(), any_reg(), any_reg()); break;
      case 8: kb.divu(any_reg(), any_reg(), any_reg()); break;
      case 9: {
        // Masked scratchpad store + load (always in bounds).
        const Reg a = any_reg(), v = any_reg(), d = any_reg();
        kb.andi(30, a, static_cast<i64>(spad_bytes - 8));
        kb.spad_store(30, v);
        kb.spad_load(d, 30);
        break;
      }
      case 10: kb.remu(any_reg(), any_reg(), any_reg()); break;
      default: kb.max(any_reg(), any_reg(), any_reg()); break;
    }
  }

  kb.addi(31, 31, -1);
  kb.bnez(31, "head");
  kb.halt();
  return kb.build();
}

}  // namespace vmsls::hwt

#include "hwt/kernel.hpp"

#include <sstream>
#include <stdexcept>

namespace vmsls::hwt {

KernelInterface analyze_interface(const std::vector<Instr>& code, u32 spad_bytes) {
  KernelInterface iface;
  iface.spad_bytes = spad_bytes;
  for (const Instr& in : code) {
    if (is_mem(in.op)) iface.mem_ports = std::max(iface.mem_ports, unsigned(in.port) + 1);
    if (in.op == Op::kMboxGet || in.op == Op::kMboxPut)
      iface.mailboxes = std::max(iface.mailboxes, unsigned(in.imm) + 1);
    if (in.op == Op::kSemWait || in.op == Op::kSemPost)
      iface.semaphores = std::max(iface.semaphores, unsigned(in.imm) + 1);
  }
  return iface;
}

namespace {
void fail(const std::string& kernel, std::size_t pc, const std::string& what) {
  throw std::invalid_argument("kernel '" + kernel + "' @" + std::to_string(pc) + ": " + what);
}

bool valid_size(u8 s) { return s == 1 || s == 2 || s == 4 || s == 8; }
}  // namespace

void verify(const Kernel& k) {
  if (k.code.empty()) throw std::invalid_argument("kernel '" + k.name + "' has no code");
  bool has_halt = false;
  for (std::size_t pc = 0; pc < k.code.size(); ++pc) {
    const Instr& in = k.code[pc];
    if (in.rd >= kNumRegs || in.ra >= kNumRegs || in.rb >= kNumRegs)
      fail(k.name, pc, "register index out of range");
    switch (in.op) {
      case Op::kBeqz:
      case Op::kBnez:
      case Op::kJmp:
        if (in.imm < 0 || static_cast<u64>(in.imm) >= k.code.size())
          fail(k.name, pc, "branch target out of range");
        break;
      case Op::kLoad:
      case Op::kStore:
      case Op::kSpadLoad:
      case Op::kSpadStore:
        if (!valid_size(in.size)) fail(k.name, pc, "access size must be 1/2/4/8");
        break;
      case Op::kDelay:
        if (in.imm < 0) fail(k.name, pc, "negative delay");
        break;
      case Op::kMboxGet:
      case Op::kMboxPut:
      case Op::kSemWait:
      case Op::kSemPost:
        if (in.imm < 0 || in.imm >= 64) fail(k.name, pc, "OS object index out of range");
        break;
      case Op::kHalt:
        has_halt = true;
        break;
      default:
        break;
    }
    if (is_mem(in.op) && in.port >= 4) fail(k.name, pc, "memory port index out of range");
    if ((in.op == Op::kBurstLoad || in.op == Op::kBurstStore) && k.iface.spad_bytes == 0)
      fail(k.name, pc, "burst op requires a scratchpad");
    if ((in.op == Op::kSpadLoad || in.op == Op::kSpadStore) && k.iface.spad_bytes == 0)
      fail(k.name, pc, "scratchpad op requires a scratchpad");
  }
  if (!has_halt) throw std::invalid_argument("kernel '" + k.name + "' never halts");

  const KernelInterface derived = analyze_interface(k.code, k.iface.spad_bytes);
  if (derived.mem_ports > k.iface.mem_ports)
    throw std::invalid_argument("kernel '" + k.name + "' uses more memory ports than declared");
  if (derived.mailboxes > k.iface.mailboxes)
    throw std::invalid_argument("kernel '" + k.name + "' uses more mailboxes than declared");
  if (derived.semaphores > k.iface.semaphores)
    throw std::invalid_argument("kernel '" + k.name + "' uses more semaphores than declared");
}

std::string disassemble(const Kernel& k) {
  std::ostringstream os;
  os << "kernel " << k.name << "  (ports=" << k.iface.mem_ports << " mbox=" << k.iface.mailboxes
     << " sem=" << k.iface.semaphores << " spad=" << k.iface.spad_bytes << "B)\n";
  for (std::size_t pc = 0; pc < k.code.size(); ++pc)
    os << "  " << pc << ":\t" << to_string(k.code[pc]) << "\n";
  return os.str();
}

}  // namespace vmsls::hwt

// Kernel intermediate representation.
//
// This IR is the repository's stand-in for what a high-level-synthesis tool
// emits: a register-transfer program over a 32-entry 64-bit register file,
// a BRAM scratchpad, explicit memory ports that issue virtual-address
// transactions (single-beat or burst), and blocking OS-interface operations
// (mailbox/semaphore) matching the delegate-thread runtime protocol. The
// same program executes on the hardware-thread engine (fabric cost model,
// TLB/MMU ports) and on the CPU model (CPU cost model, cached ports), which
// mirrors the paper's "same source through HLS and the compiler"
// methodology. Arithmetic is integer/fixed-point, as is typical for fabric
// datapaths of the era.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace vmsls::hwt {

/// Register designator: 32 general-purpose 64-bit registers. By convention
/// (enforced nowhere) kernels receive arguments in low registers via
/// mailbox reads.
using Reg = u8;
inline constexpr unsigned kNumRegs = 32;

enum class Op : u8 {
  kNop,
  // Register / immediate moves.
  kLi,    // rd <- imm
  kMov,   // rd <- ra
  // Arithmetic and logic: rd <- ra (op) rb.
  kAdd, kSub, kMul, kDivU, kRemU,
  kAnd, kOr, kXor, kShl, kShr,
  // Immediate forms: rd <- ra (op) imm.
  kAddi, kMuli, kAndi, kShli, kShri,
  // Comparisons: rd <- (ra cmp rb) ? 1 : 0.  Signed lt, unsigned ltu.
  kSlt, kSltu, kSeq, kSne,
  kMin, kMax,  // rd <- min/max(ra, rb), signed
  // Control flow; imm is an absolute instruction index.
  kBeqz,  // if (ra == 0) goto imm
  kBnez,  // if (ra != 0) goto imm
  kJmp,   // goto imm
  // External memory via port `port` (virtual addresses).
  kLoad,       // rd <- zext(mem[ra + imm], size)
  kStore,      // mem[ra + imm] <- rb (size bytes)
  kBurstLoad,  // spad[rd] <- mem[ra], rb bytes
  kBurstStore, // mem[ra] <- spad[rd], rb bytes
  // Scratchpad (local BRAM), single-cycle.
  kSpadLoad,   // rd <- zext(spad[ra + imm], size)
  kSpadStore,  // spad[ra + imm] <- rb (size bytes)
  // OS interface (blocking, serviced by the runtime).
  kMboxGet,  // rd <- mailbox[imm]
  kMboxPut,  // mailbox[imm] <- ra
  kSemWait,  // semaphore[imm]
  kSemPost,  // semaphore[imm]
  // Pipeline stall of imm cycles: models compute depth that the simple
  // per-op costs cannot (e.g. floating-point cores, CORDIC).
  kDelay,
  kHalt,
};

struct Instr {
  Op op = Op::kNop;
  Reg rd = 0;
  Reg ra = 0;
  Reg rb = 0;
  u8 size = 8;   // access width for load/store/spad ops (1, 2, 4, 8)
  u8 port = 0;   // memory port index for kLoad..kBurstStore
  i64 imm = 0;
};

/// True for ops that suspend the engine on an external interface (memory
/// port or OS call) or an explicit delay.
bool is_blocking(Op op) noexcept;

/// True for ops touching an external memory port.
bool is_mem(Op op) noexcept;

/// True for OS-interface ops.
bool is_os(Op op) noexcept;

const char* op_name(Op op) noexcept;

/// One-line human-readable rendering, used by the netlist emitter and tests.
std::string to_string(const Instr& instr);

}  // namespace vmsls::hwt

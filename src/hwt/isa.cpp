#include "hwt/isa.hpp"

#include <sstream>

namespace vmsls::hwt {

bool is_blocking(Op op) noexcept {
  switch (op) {
    case Op::kLoad:
    case Op::kStore:
    case Op::kBurstLoad:
    case Op::kBurstStore:
    case Op::kMboxGet:
    case Op::kMboxPut:
    case Op::kSemWait:
    case Op::kSemPost:
    case Op::kDelay:
    case Op::kHalt:
      return true;
    default:
      return false;
  }
}

bool is_mem(Op op) noexcept {
  switch (op) {
    case Op::kLoad:
    case Op::kStore:
    case Op::kBurstLoad:
    case Op::kBurstStore:
      return true;
    default:
      return false;
  }
}

bool is_os(Op op) noexcept {
  switch (op) {
    case Op::kMboxGet:
    case Op::kMboxPut:
    case Op::kSemWait:
    case Op::kSemPost:
      return true;
    default:
      return false;
  }
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kLi: return "li";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDivU: return "divu";
    case Op::kRemU: return "remu";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kAddi: return "addi";
    case Op::kMuli: return "muli";
    case Op::kAndi: return "andi";
    case Op::kShli: return "shli";
    case Op::kShri: return "shri";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kSeq: return "seq";
    case Op::kSne: return "sne";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kBeqz: return "beqz";
    case Op::kBnez: return "bnez";
    case Op::kJmp: return "jmp";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kBurstLoad: return "burst.load";
    case Op::kBurstStore: return "burst.store";
    case Op::kSpadLoad: return "spad.load";
    case Op::kSpadStore: return "spad.store";
    case Op::kMboxGet: return "mbox.get";
    case Op::kMboxPut: return "mbox.put";
    case Op::kSemWait: return "sem.wait";
    case Op::kSemPost: return "sem.post";
    case Op::kDelay: return "delay";
    case Op::kHalt: return "halt";
  }
  return "?";
}

std::string to_string(const Instr& in) {
  std::ostringstream os;
  os << op_name(in.op);
  auto r = [](Reg x) { return " r" + std::to_string(x); };
  switch (in.op) {
    case Op::kNop:
    case Op::kHalt:
      break;
    case Op::kLi:
      os << r(in.rd) << ", " << in.imm;
      break;
    case Op::kMov:
      os << r(in.rd) << "," << r(in.ra);
      break;
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDivU: case Op::kRemU:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kShl: case Op::kShr:
    case Op::kSlt: case Op::kSltu: case Op::kSeq: case Op::kSne:
    case Op::kMin: case Op::kMax:
      os << r(in.rd) << "," << r(in.ra) << "," << r(in.rb);
      break;
    case Op::kAddi: case Op::kMuli: case Op::kAndi: case Op::kShli: case Op::kShri:
      os << r(in.rd) << "," << r(in.ra) << ", " << in.imm;
      break;
    case Op::kBeqz: case Op::kBnez:
      os << r(in.ra) << ", @" << in.imm;
      break;
    case Op::kJmp:
      os << " @" << in.imm;
      break;
    case Op::kLoad:
      os << r(in.rd) << ", [" << "r" << int(in.ra) << (in.imm >= 0 ? "+" : "") << in.imm
         << "] x" << int(in.size) << " p" << int(in.port);
      break;
    case Op::kStore:
      os << " [r" << int(in.ra) << (in.imm >= 0 ? "+" : "") << in.imm << "]," << r(in.rb)
         << " x" << int(in.size) << " p" << int(in.port);
      break;
    case Op::kBurstLoad:
      os << " spad[r" << int(in.rd) << "] <- [r" << int(in.ra) << "], r" << int(in.rb)
         << "B p" << int(in.port);
      break;
    case Op::kBurstStore:
      os << " [r" << int(in.ra) << "] <- spad[r" << int(in.rd) << "], r" << int(in.rb)
         << "B p" << int(in.port);
      break;
    case Op::kSpadLoad:
      os << r(in.rd) << ", spad[r" << int(in.ra) << (in.imm >= 0 ? "+" : "") << in.imm << "] x"
         << int(in.size);
      break;
    case Op::kSpadStore:
      os << " spad[r" << int(in.ra) << (in.imm >= 0 ? "+" : "") << in.imm << "]," << r(in.rb)
         << " x" << int(in.size);
      break;
    case Op::kMboxGet:
      os << r(in.rd) << ", mbox" << in.imm;
      break;
    case Op::kMboxPut:
      os << " mbox" << in.imm << "," << r(in.ra);
      break;
    case Op::kSemWait: case Op::kSemPost:
      os << " sem" << in.imm;
      break;
    case Op::kDelay:
      os << " " << in.imm;
      break;
  }
  return os.str();
}

}  // namespace vmsls::hwt

#include "hwt/builder.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::hwt {

KernelBuilder::KernelBuilder(std::string name, u32 spad_bytes)
    : name_(std::move(name)), spad_bytes_(spad_bytes) {}

KernelBuilder& KernelBuilder::emit(Instr in) {
  code_.push_back(in);
  return *this;
}

KernelBuilder& KernelBuilder::li(Reg rd, i64 imm) { return emit({Op::kLi, rd, 0, 0, 8, 0, imm}); }
KernelBuilder& KernelBuilder::mov(Reg rd, Reg ra) { return emit({Op::kMov, rd, ra, 0, 8, 0, 0}); }

KernelBuilder& KernelBuilder::add(Reg rd, Reg ra, Reg rb) { return emit({Op::kAdd, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::sub(Reg rd, Reg ra, Reg rb) { return emit({Op::kSub, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::mul(Reg rd, Reg ra, Reg rb) { return emit({Op::kMul, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::divu(Reg rd, Reg ra, Reg rb) { return emit({Op::kDivU, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::remu(Reg rd, Reg ra, Reg rb) { return emit({Op::kRemU, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::and_(Reg rd, Reg ra, Reg rb) { return emit({Op::kAnd, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::or_(Reg rd, Reg ra, Reg rb) { return emit({Op::kOr, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::xor_(Reg rd, Reg ra, Reg rb) { return emit({Op::kXor, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::shl(Reg rd, Reg ra, Reg rb) { return emit({Op::kShl, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::shr(Reg rd, Reg ra, Reg rb) { return emit({Op::kShr, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::min(Reg rd, Reg ra, Reg rb) { return emit({Op::kMin, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::max(Reg rd, Reg ra, Reg rb) { return emit({Op::kMax, rd, ra, rb, 8, 0, 0}); }

KernelBuilder& KernelBuilder::addi(Reg rd, Reg ra, i64 imm) { return emit({Op::kAddi, rd, ra, 0, 8, 0, imm}); }
KernelBuilder& KernelBuilder::muli(Reg rd, Reg ra, i64 imm) { return emit({Op::kMuli, rd, ra, 0, 8, 0, imm}); }
KernelBuilder& KernelBuilder::andi(Reg rd, Reg ra, i64 imm) { return emit({Op::kAndi, rd, ra, 0, 8, 0, imm}); }
KernelBuilder& KernelBuilder::shli(Reg rd, Reg ra, i64 imm) { return emit({Op::kShli, rd, ra, 0, 8, 0, imm}); }
KernelBuilder& KernelBuilder::shri(Reg rd, Reg ra, i64 imm) { return emit({Op::kShri, rd, ra, 0, 8, 0, imm}); }

KernelBuilder& KernelBuilder::slt(Reg rd, Reg ra, Reg rb) { return emit({Op::kSlt, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::sltu(Reg rd, Reg ra, Reg rb) { return emit({Op::kSltu, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::seq(Reg rd, Reg ra, Reg rb) { return emit({Op::kSeq, rd, ra, rb, 8, 0, 0}); }
KernelBuilder& KernelBuilder::sne(Reg rd, Reg ra, Reg rb) { return emit({Op::kSne, rd, ra, rb, 8, 0, 0}); }

KernelBuilder& KernelBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, code_.size()).second)
    throw std::invalid_argument("duplicate label '" + name + "' in kernel '" + name_ + "'");
  return *this;
}

KernelBuilder& KernelBuilder::emit_branch(Op op, Reg ra, const std::string& target) {
  fixups_.emplace_back(code_.size(), target);
  return emit({op, 0, ra, 0, 8, 0, 0});
}

KernelBuilder& KernelBuilder::beqz(Reg ra, const std::string& t) { return emit_branch(Op::kBeqz, ra, t); }
KernelBuilder& KernelBuilder::bnez(Reg ra, const std::string& t) { return emit_branch(Op::kBnez, ra, t); }
KernelBuilder& KernelBuilder::jmp(const std::string& t) { return emit_branch(Op::kJmp, 0, t); }

KernelBuilder& KernelBuilder::load(Reg rd, Reg ra, i64 offset, u8 size, u8 port) {
  return emit({Op::kLoad, rd, ra, 0, size, port, offset});
}
KernelBuilder& KernelBuilder::store(Reg ra, Reg rb, i64 offset, u8 size, u8 port) {
  return emit({Op::kStore, 0, ra, rb, size, port, offset});
}
KernelBuilder& KernelBuilder::burst_load(Reg spad_off, Reg mem_addr, Reg bytes, u8 port) {
  return emit({Op::kBurstLoad, spad_off, mem_addr, bytes, 8, port, 0});
}
KernelBuilder& KernelBuilder::burst_store(Reg mem_addr, Reg spad_off, Reg bytes, u8 port) {
  return emit({Op::kBurstStore, spad_off, mem_addr, bytes, 8, port, 0});
}

KernelBuilder& KernelBuilder::spad_load(Reg rd, Reg ra, i64 offset, u8 size) {
  return emit({Op::kSpadLoad, rd, ra, 0, size, 0, offset});
}
KernelBuilder& KernelBuilder::spad_store(Reg ra, Reg rb, i64 offset, u8 size) {
  return emit({Op::kSpadStore, 0, ra, rb, size, 0, offset});
}

KernelBuilder& KernelBuilder::mbox_get(Reg rd, unsigned mbox) {
  return emit({Op::kMboxGet, rd, 0, 0, 8, 0, static_cast<i64>(mbox)});
}
KernelBuilder& KernelBuilder::mbox_put(unsigned mbox, Reg ra) {
  return emit({Op::kMboxPut, 0, ra, 0, 8, 0, static_cast<i64>(mbox)});
}
KernelBuilder& KernelBuilder::sem_wait(unsigned sem) {
  return emit({Op::kSemWait, 0, 0, 0, 8, 0, static_cast<i64>(sem)});
}
KernelBuilder& KernelBuilder::sem_post(unsigned sem) {
  return emit({Op::kSemPost, 0, 0, 0, 8, 0, static_cast<i64>(sem)});
}

KernelBuilder& KernelBuilder::delay(i64 cycles) { return emit({Op::kDelay, 0, 0, 0, 8, 0, cycles}); }
KernelBuilder& KernelBuilder::nop() { return emit({Op::kNop, 0, 0, 0, 8, 0, 0}); }
KernelBuilder& KernelBuilder::halt() { return emit({Op::kHalt, 0, 0, 0, 8, 0, 0}); }

Kernel KernelBuilder::build() {
  for (const auto& [pc, label] : fixups_) {
    auto it = labels_.find(label);
    if (it == labels_.end())
      throw std::invalid_argument("undefined label '" + label + "' in kernel '" + name_ + "'");
    code_[pc].imm = static_cast<i64>(it->second);
  }
  Kernel k;
  k.name = std::move(name_);
  k.code = std::move(code_);
  k.iface = analyze_interface(k.code, spad_bytes_);
  // Kernels that declare a scratchpad but happen not to use it in this
  // parameterization keep the declared capacity.
  k.iface.spad_bytes = spad_bytes_;
  for (const Instr& in : k.code) ++k.op_histogram[static_cast<std::size_t>(in.op)];
  verify(k);
  code_.clear();
  labels_.clear();
  fixups_.clear();
  return k;
}

}  // namespace vmsls::hwt

// Hardware-thread memory port: MMU-translated fabric bus master.
//
// This is the synthesized wrapper component that gives a hardware thread
// its virtual-memory view. Every request is split at page boundaries (a
// translation is valid for one page) and at the port's maximum burst
// length (AXI-style), translated through the thread's MMU, then issued on
// the shared memory bus. Functional data moves against PhysicalMemory at
// each chunk's completion time.
#pragma once

#include <memory>
#include <string>

#include "hwt/ports.hpp"
#include "mem/address_space.hpp"
#include "mem/bus.hpp"
#include "mem/mmu.hpp"
#include "mem/physmem.hpp"
#include "sim/simulator.hpp"

namespace vmsls::hwt {

struct HwPortConfig {
  u32 max_burst_bytes = 512;  // AXI burst cap
};

class HwMemPort final : public MemPort {
 public:
  HwMemPort(sim::Simulator& sim, mem::Mmu& mmu, mem::MemoryBus& bus, mem::PhysicalMemory& pm,
            const HwPortConfig& cfg, std::string name);

  void read(VirtAddr va, u32 bytes, std::function<void(std::vector<u8>)> done) override;
  void write(VirtAddr va, std::span<const u8> data, std::function<void()> done) override;

  mem::Mmu& mmu() noexcept { return mmu_; }

  /// Enables in-flight page pinning against `as`: each chunk holds a pin
  /// from translation start to bus completion so replacement policies never
  /// evict the frame underneath a committed transaction. Memory-pressure
  /// systems wire this; nullptr (the default) keeps the pre-pressure model.
  void set_address_space(mem::AddressSpace* as) noexcept { as_ = as; }

 private:
  struct Xfer;
  void step(const std::shared_ptr<Xfer>& x);

  sim::Simulator& sim_;
  mem::Mmu& mmu_;
  mem::MemoryBus& bus_;
  mem::PhysicalMemory& pm_;
  mem::AddressSpace* as_ = nullptr;
  HwPortConfig cfg_;
  std::string name_;

  Counter& reads_;
  Counter& writes_;
  Counter& bytes_;
};

}  // namespace vmsls::hwt

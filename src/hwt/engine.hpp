// Cycle-accounted kernel executor.
//
// Executes kernel IR with a pluggable cost model and pluggable ports.
// Non-blocking instructions run in batches inside one simulator event,
// accumulating local-clock cycles; the engine yields to the event queue at
// every blocking operation (memory, OS call, delay) and at a batch limit,
// so component interleaving is exact at every externally visible point.
//
// Cost model defaults describe a pipelined HLS datapath (II=1 ALU);
// the CPU model overrides them (see cpu/cpu.hpp).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "hwt/kernel.hpp"
#include "hwt/ports.hpp"
#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace vmsls::hwt {

struct CostModel {
  Cycles alu = 1;
  Cycles mul = 1;      // pipelined multiplier
  Cycles divu = 18;    // iterative divider
  Cycles branch = 1;
  Cycles spad = 1;     // BRAM access
  Cycles mem_issue = 1;  // cycles to present a request on a memory port
  Cycles os_issue = 1;   // cycles to present an OS call

  /// Sustained instruction-level parallelism of the datapath. An HLS tool
  /// pipelines loop bodies at II=1, turning a ~8-op body into one cycle of
  /// spatial hardware, so the fabric retires several IR ops per cycle
  /// (default 8); the in-order CPU model uses 1. Raw op costs accumulate
  /// and are divided by this at every yield point, so blocking operations
  /// still serialize exactly.
  unsigned ilp = 8;
};

/// Cost model approximating an in-order applications processor.
CostModel cpu_cost_model();

struct EngineConfig {
  CostModel cost{};
  sim::ClockDomain clock{1, 1};  // engine clock relative to the fabric clock
  u64 batch_limit = 8192;        // max straight-line instructions per event
};

class Engine {
 public:
  Engine(sim::Simulator& sim, Kernel kernel, const EngineConfig& cfg, std::string name);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Ports must be attached for every interface the kernel uses before
  /// `start`. Pointers must outlive the engine.
  void attach_mem_port(unsigned index, MemPort* port);
  void attach_os_port(OsPort* port);

  /// Begins execution at pc 0; `on_halt` fires when the kernel halts.
  /// `start_delay` models wrapper/launch latency.
  void start(std::function<void()> on_halt, Cycles start_delay = 0);

  bool halted() const noexcept { return halted_; }
  bool running() const noexcept { return started_ && !halted_; }

  // Introspection for tests and the runtime.
  i64 reg(unsigned r) const;
  void set_reg(unsigned r, i64 v);
  std::span<const u8> spad() const noexcept { return spad_; }
  u64 instructions_retired() const noexcept { return instret_; }
  Cycles halt_time() const noexcept { return halt_time_; }
  Cycles start_time() const noexcept { return start_time_; }
  Cycles stall_cycles() const noexcept { return stall_cycles_; }
  const Kernel& kernel() const noexcept { return kernel_; }
  const std::string& name() const noexcept { return name_; }

 private:
  void resume();
  /// Raw accumulated op cost -> datapath cycles (ILP credit, rounding up).
  Cycles effective(Cycles local_cost) const noexcept;
  void yield_then_resume(Cycles local_cost);
  void finish_mem_op(Cycles issued_at);
  [[noreturn]] void trap(const std::string& what) const;

  void exec_alu(const Instr& in);
  u64 spad_read(u64 offset, u8 size) const;
  void spad_write(u64 offset, u8 size, u64 value);

  sim::Simulator& sim_;
  Kernel kernel_;
  EngineConfig cfg_;
  std::string name_;

  std::array<i64, kNumRegs> regs_{};
  std::vector<u8> spad_;
  std::array<MemPort*, 4> mem_ports_{};
  OsPort* os_port_ = nullptr;

  u64 pc_ = 0;
  bool started_ = false;
  bool halted_ = false;
  std::function<void()> on_halt_;
  u64 instret_ = 0;
  Cycles start_time_ = 0;
  Cycles halt_time_ = 0;
  Cycles stall_cycles_ = 0;

  Counter& stat_instret_;
  Counter& stat_mem_ops_;
  Counter& stat_os_ops_;
  Histogram& stat_mem_latency_;
};

}  // namespace vmsls::hwt

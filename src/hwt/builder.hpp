// Fluent kernel assembler with symbolic labels.
//
// Workload authors (and the example programs) construct kernels through
// this builder; `build()` resolves labels, derives the interface, and runs
// the verifier, so an invalid kernel never reaches the synthesis flow.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hwt/kernel.hpp"

namespace vmsls::hwt {

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name, u32 spad_bytes = 0);

  // --- moves ---
  KernelBuilder& li(Reg rd, i64 imm);
  KernelBuilder& mov(Reg rd, Reg ra);

  // --- arithmetic / logic (register) ---
  KernelBuilder& add(Reg rd, Reg ra, Reg rb);
  KernelBuilder& sub(Reg rd, Reg ra, Reg rb);
  KernelBuilder& mul(Reg rd, Reg ra, Reg rb);
  KernelBuilder& divu(Reg rd, Reg ra, Reg rb);
  KernelBuilder& remu(Reg rd, Reg ra, Reg rb);
  KernelBuilder& and_(Reg rd, Reg ra, Reg rb);
  KernelBuilder& or_(Reg rd, Reg ra, Reg rb);
  KernelBuilder& xor_(Reg rd, Reg ra, Reg rb);
  KernelBuilder& shl(Reg rd, Reg ra, Reg rb);
  KernelBuilder& shr(Reg rd, Reg ra, Reg rb);
  KernelBuilder& min(Reg rd, Reg ra, Reg rb);
  KernelBuilder& max(Reg rd, Reg ra, Reg rb);

  // --- arithmetic / logic (immediate) ---
  KernelBuilder& addi(Reg rd, Reg ra, i64 imm);
  KernelBuilder& muli(Reg rd, Reg ra, i64 imm);
  KernelBuilder& andi(Reg rd, Reg ra, i64 imm);
  KernelBuilder& shli(Reg rd, Reg ra, i64 imm);
  KernelBuilder& shri(Reg rd, Reg ra, i64 imm);

  // --- comparisons ---
  KernelBuilder& slt(Reg rd, Reg ra, Reg rb);
  KernelBuilder& sltu(Reg rd, Reg ra, Reg rb);
  KernelBuilder& seq(Reg rd, Reg ra, Reg rb);
  KernelBuilder& sne(Reg rd, Reg ra, Reg rb);

  // --- control flow ---
  KernelBuilder& label(const std::string& name);
  KernelBuilder& beqz(Reg ra, const std::string& target);
  KernelBuilder& bnez(Reg ra, const std::string& target);
  KernelBuilder& jmp(const std::string& target);

  // --- external memory ---
  KernelBuilder& load(Reg rd, Reg ra, i64 offset = 0, u8 size = 8, u8 port = 0);
  KernelBuilder& store(Reg ra, Reg rb, i64 offset = 0, u8 size = 8, u8 port = 0);
  KernelBuilder& burst_load(Reg spad_off, Reg mem_addr, Reg bytes, u8 port = 0);
  KernelBuilder& burst_store(Reg mem_addr, Reg spad_off, Reg bytes, u8 port = 0);

  // --- scratchpad ---
  KernelBuilder& spad_load(Reg rd, Reg ra, i64 offset = 0, u8 size = 8);
  KernelBuilder& spad_store(Reg ra, Reg rb, i64 offset = 0, u8 size = 8);

  // --- OS interface ---
  KernelBuilder& mbox_get(Reg rd, unsigned mbox);
  KernelBuilder& mbox_put(unsigned mbox, Reg ra);
  KernelBuilder& sem_wait(unsigned sem);
  KernelBuilder& sem_post(unsigned sem);

  // --- misc ---
  KernelBuilder& delay(i64 cycles);
  KernelBuilder& nop();
  KernelBuilder& halt();

  /// Current instruction index (for size assertions in tests).
  std::size_t size() const noexcept { return code_.size(); }

  /// Resolves labels, analyzes the interface, verifies, and returns the
  /// kernel. The builder is left empty.
  Kernel build();

 private:
  KernelBuilder& emit(Instr in);
  KernelBuilder& emit_branch(Op op, Reg ra, const std::string& target);

  std::string name_;
  u32 spad_bytes_;
  std::vector<Instr> code_;
  std::map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;  // (pc, label)
};

}  // namespace vmsls::hwt

// Abstract interfaces between a kernel engine and the rest of the system.
//
// The engine is agnostic to what is behind its ports. The hardware-thread
// configuration plugs in HwMemPort (TLB/MMU + fabric bus) and the delegate
// OS interface; the software configuration plugs in a cached CPU port and
// the direct syscall interface. This is the seam that lets one kernel
// description serve as both the accelerator and its software baseline.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace vmsls::hwt {

/// A memory port: reads and writes by *virtual* address. Completion
/// callbacks fire when the transaction (including translation, faults and
/// interconnect time) is done.
class MemPort {
 public:
  virtual ~MemPort() = default;

  virtual void read(VirtAddr va, u32 bytes, std::function<void(std::vector<u8>)> done) = 0;
  virtual void write(VirtAddr va, std::span<const u8> data, std::function<void()> done) = 0;
};

/// The OS-service interface (mailboxes and semaphores). Blocking semantics:
/// callbacks fire when the operation completes, possibly after waiting on a
/// peer thread.
class OsPort {
 public:
  virtual ~OsPort() = default;

  virtual void mbox_get(unsigned mbox, std::function<void(i64)> done) = 0;
  virtual void mbox_put(unsigned mbox, i64 value, std::function<void()> done) = 0;
  virtual void sem_wait(unsigned sem, std::function<void()> done) = 0;
  virtual void sem_post(unsigned sem, std::function<void()> done) = 0;
};

}  // namespace vmsls::hwt

#include "hwt/hw_port.hpp"

#include <algorithm>
#include <utility>

namespace vmsls::hwt {

struct HwMemPort::Xfer {
  VirtAddr va = 0;
  u64 pos = 0;  // bytes completed
  std::vector<u8> buf;
  bool is_write = false;
  std::function<void(std::vector<u8>)> on_read_done;
  std::function<void()> on_write_done;
};

HwMemPort::HwMemPort(sim::Simulator& sim, mem::Mmu& mmu, mem::MemoryBus& bus,
                     mem::PhysicalMemory& pm, const HwPortConfig& cfg, std::string name)
    : sim_(sim),
      mmu_(mmu),
      bus_(bus),
      pm_(pm),
      cfg_(cfg),
      name_(std::move(name)),
      reads_(sim.stats().counter(name_ + ".reads")),
      writes_(sim.stats().counter(name_ + ".writes")),
      bytes_(sim.stats().counter(name_ + ".bytes")) {
  require(cfg.max_burst_bytes > 0, "burst cap must be nonzero");
}

void HwMemPort::read(VirtAddr va, u32 bytes, std::function<void(std::vector<u8>)> done) {
  require(bytes > 0, "zero-byte port read");
  reads_.add();
  bytes_.add(bytes);
  auto x = std::make_shared<Xfer>();
  x->va = va;
  x->buf.resize(bytes);
  x->is_write = false;
  x->on_read_done = std::move(done);
  step(x);
}

void HwMemPort::write(VirtAddr va, std::span<const u8> data, std::function<void()> done) {
  require(!data.empty(), "zero-byte port write");
  writes_.add();
  bytes_.add(data.size());
  auto x = std::make_shared<Xfer>();
  x->va = va;
  x->buf.assign(data.begin(), data.end());
  x->is_write = true;
  x->on_write_done = std::move(done);
  step(x);
}

void HwMemPort::step(const std::shared_ptr<Xfer>& x) {
  if (x->pos >= x->buf.size()) {
    if (x->is_write)
      x->on_write_done();
    else
      x->on_read_done(std::move(x->buf));
    return;
  }
  const u64 page = 1ull << mmu_.page_bits();
  const VirtAddr va = x->va + x->pos;
  const u64 to_page_end = page - (va & (page - 1));
  const u32 chunk = static_cast<u32>(
      std::min<u64>({to_page_end, x->buf.size() - x->pos, cfg_.max_burst_bytes}));

  // The pin covers translation (including any fault service) through bus
  // completion: the physical address captured below stays valid because no
  // replacement policy will victimize a pinned page.
  if (as_ != nullptr) as_->pin(va);
  mmu_.translate(va, x->is_write, [this, x, va, chunk](PhysAddr pa) {
    bus_.request(mem::BusRequest{pa, chunk, x->is_write, [this, x, va, pa, chunk] {
      if (x->is_write)
        pm_.write(pa, std::span<const u8>(x->buf.data() + x->pos, chunk));
      else
        pm_.read(pa, std::span<u8>(x->buf.data() + x->pos, chunk));
      if (as_ != nullptr) as_->unpin(va);
      x->pos += chunk;
      step(x);
    }});
  });
}

}  // namespace vmsls::hwt

// Kernel container + static verifier.
//
// A Kernel is the unit the synthesis flow consumes: code, interface
// requirements (ports, mailboxes, semaphores, scratchpad size), and an op
// histogram used by the resource estimator.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hwt/isa.hpp"

namespace vmsls::hwt {

/// Interface requirements derived from the code by `analyze_interface`.
struct KernelInterface {
  unsigned mem_ports = 0;     // 1 + highest port index used (0 if none)
  unsigned mailboxes = 0;     // 1 + highest mailbox index used
  unsigned semaphores = 0;    // 1 + highest semaphore index used
  u32 spad_bytes = 0;         // scratchpad capacity (set by the author)
};

struct Kernel {
  std::string name;
  std::vector<Instr> code;
  KernelInterface iface;

  /// Count of each opcode, for resource estimation and reporting.
  std::array<u64, 64> op_histogram{};

  bool empty() const noexcept { return code.empty(); }
};

/// Validates structural properties: nonempty, ends in a halt-reachable
/// form, branch targets in range, sizes in {1,2,4,8}, register indices in
/// range, ports/mailboxes/semaphores consistent with the interface block.
/// Throws std::invalid_argument describing the first violation.
void verify(const Kernel& kernel);

/// Computes interface requirements and the op histogram from the code.
KernelInterface analyze_interface(const std::vector<Instr>& code, u32 spad_bytes);

/// Full disassembly listing with instruction indices.
std::string disassemble(const Kernel& kernel);

}  // namespace vmsls::hwt

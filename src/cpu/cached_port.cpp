#include "cpu/cached_port.hpp"

#include <algorithm>
#include <utility>

namespace vmsls::cpu {

struct CachedMemPort::Xfer {
  VirtAddr va = 0;
  u64 pos = 0;
  std::vector<u8> buf;
  bool is_write = false;
  std::function<void(std::vector<u8>)> on_read_done;
  std::function<void()> on_write_done;
};

CachedMemPort::CachedMemPort(sim::Simulator& sim, mem::AddressSpace& as,
                             mem::CacheHierarchy& caches, std::string name)
    : sim_(sim),
      as_(as),
      caches_(caches),
      name_(std::move(name)),
      reads_(sim.stats().counter(name_ + ".reads")),
      writes_(sim.stats().counter(name_ + ".writes")) {}

void CachedMemPort::read(VirtAddr va, u32 bytes, std::function<void(std::vector<u8>)> done) {
  require(bytes > 0, "zero-byte CPU read");
  reads_.add();
  auto x = std::make_shared<Xfer>();
  x->va = va;
  x->buf.resize(bytes);
  x->is_write = false;
  x->on_read_done = std::move(done);
  step(x);
}

void CachedMemPort::write(VirtAddr va, std::span<const u8> data, std::function<void()> done) {
  require(!data.empty(), "zero-byte CPU write");
  writes_.add();
  auto x = std::make_shared<Xfer>();
  x->va = va;
  x->buf.assign(data.begin(), data.end());
  x->is_write = true;
  x->on_write_done = std::move(done);
  step(x);
}

void CachedMemPort::step(const std::shared_ptr<Xfer>& x) {
  if (x->pos >= x->buf.size()) {
    if (x->is_write) {
      as_.write(x->va, std::span<const u8>(x->buf.data(), x->buf.size()));
      x->on_write_done();
    } else {
      as_.read(x->va, std::span<u8>(x->buf.data(), x->buf.size()));
      x->on_read_done(std::move(x->buf));
    }
    return;
  }
  const u64 page = as_.page_bytes();
  const VirtAddr va = x->va + x->pos;
  const u64 to_page_end = page - (va & (page - 1));
  const u32 chunk = static_cast<u32>(std::min<u64>(to_page_end, x->buf.size() - x->pos));

  // Software page touch: demand-map with zero modeled cost (resident
  // baseline assumption; see header comment).
  if (!as_.is_mapped(va)) as_.map_page(va);
  const PhysAddr pa = *as_.translate(va);
  x->pos += chunk;
  caches_.access(pa, chunk, x->is_write, [this, x] { step(x); });
}

}  // namespace vmsls::cpu

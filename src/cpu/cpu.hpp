// Host CPU configuration.
//
// Software baselines run the same kernel IR on an in-order applications
// processor model: a faster clock domain, CPU-like op costs, and an L1/L2
// cache hierarchy in front of the shared memory bus. Defaults approximate
// a 667 MHz Cortex-A9-class core over a 200 MHz fabric.
#pragma once

#include "hwt/engine.hpp"
#include "mem/cache.hpp"
#include "sim/clock.hpp"

namespace vmsls::cpu {

struct CpuConfig {
  sim::ClockDomain clock{10, 3};  // CPU runs 10/3 = 3.33x the fabric clock
  hwt::CostModel cost = hwt::cpu_cost_model();
  mem::CacheHierarchyConfig caches{};
};

/// Engine configuration for a software thread on this CPU.
inline hwt::EngineConfig engine_config(const CpuConfig& cpu) {
  hwt::EngineConfig cfg;
  cfg.cost = cpu.cost;
  cfg.clock = cpu.clock;
  return cfg;
}

}  // namespace vmsls::cpu

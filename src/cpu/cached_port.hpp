// Software-thread memory port: cached, software-translated.
//
// The CPU's own MMU/TLB is not modeled cycle-by-cycle — its translation
// cost is folded into the cache hit latencies, as is standard for
// application-level CPU models. Touching an unmapped page maps it on demand
// with zero extra cost (the software baseline is assumed resident, which
// favors the baseline and keeps our speedup claims conservative).
#pragma once

#include <memory>
#include <string>

#include "hwt/ports.hpp"
#include "mem/address_space.hpp"
#include "mem/cache.hpp"
#include "sim/simulator.hpp"

namespace vmsls::cpu {

class CachedMemPort final : public hwt::MemPort {
 public:
  CachedMemPort(sim::Simulator& sim, mem::AddressSpace& as, mem::CacheHierarchy& caches,
                std::string name);

  void read(VirtAddr va, u32 bytes, std::function<void(std::vector<u8>)> done) override;
  void write(VirtAddr va, std::span<const u8> data, std::function<void()> done) override;

 private:
  struct Xfer;
  void step(const std::shared_ptr<Xfer>& x);

  sim::Simulator& sim_;
  mem::AddressSpace& as_;
  mem::CacheHierarchy& caches_;
  std::string name_;
  Counter& reads_;
  Counter& writes_;
};

}  // namespace vmsls::cpu

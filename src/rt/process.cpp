#include "rt/process.hpp"

#include <stdexcept>
#include <utility>

namespace vmsls::rt {

Process::Process(sim::Simulator& sim, mem::AddressSpace& as, std::string name)
    : sim_(sim),
      as_(as),
      name_(std::move(name)),
      shootdowns_(sim.stats().counter("proc." + name_ + ".shootdowns")),
      evicted_pages_(sim.stats().counter("proc." + name_ + ".evicted_pages")) {}

Mailbox& Process::add_mailbox(unsigned depth, const std::string& name) {
  const std::string n = name.empty() ? name_ + ".mbox" + std::to_string(mailboxes_.size()) : name;
  mailboxes_.push_back(std::make_unique<Mailbox>(depth, n));
  return *mailboxes_.back();
}

Semaphore& Process::add_semaphore(u64 initial, const std::string& name) {
  const std::string n = name.empty() ? name_ + ".sem" + std::to_string(semaphores_.size()) : name;
  semaphores_.push_back(std::make_unique<Semaphore>(initial, n));
  return *semaphores_.back();
}

Mailbox& Process::mailbox(unsigned index) {
  if (index >= mailboxes_.size())
    throw std::out_of_range(name_ + ": mailbox " + std::to_string(index) + " does not exist");
  return *mailboxes_[index];
}

Semaphore& Process::semaphore(unsigned index) {
  if (index >= semaphores_.size())
    throw std::out_of_range(name_ + ": semaphore " + std::to_string(index) + " does not exist");
  return *semaphores_[index];
}

void Process::register_mmu(mem::Mmu* mmu) {
  require(mmu != nullptr, "null MMU");
  mmus_.push_back(mmu);
}

void Process::register_walker(mem::PageWalker* walker) {
  require(walker != nullptr, "null walker");
  walkers_.push_back(walker);
}

u64 Process::evict(VirtAddr va, u64 bytes) {
  const u64 evicted = as_.evict(va, bytes);
  if (evicted > 0) {
    const u64 page = as_.page_bytes();
    for (VirtAddr p = align_down(va, page); p < va + bytes; p += page)
      for (auto* mmu : mmus_) mmu->shootdown(p);
    for (auto* w : walkers_) w->flush_cache();
    shootdowns_.add();
    evicted_pages_.add(evicted);
  }
  return evicted;
}

u64 Process::fork(Process& child) {
  const u64 shared = child.as_.fork_from(as_);
  // Anonymous pages lost write permission in *this* process's page tables;
  // any TLB still caching them writable would let a post-fork store bypass
  // COW and scribble on the child's view of the shared frame.
  if (shared > 0) shootdown_all();
  return shared;
}

mem::AddressSpace::CowResult Process::cow_break(VirtAddr va) {
  const auto r = as_.cow_resolve(va);
  if (r.copied) {
    const u64 page = as_.page_bytes();
    for (auto* mmu : mmus_) mmu->shootdown(align_down(va, page));
    for (auto* w : walkers_) w->flush_cache();
    shootdowns_.add();
  }
  return r;
}

void Process::shootdown_all() {
  for (auto* mmu : mmus_) mmu->shootdown_all();
  for (auto* w : walkers_) w->flush_cache();
  shootdowns_.add();
}

}  // namespace vmsls::rt

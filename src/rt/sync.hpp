// Synchronization objects shared by software and hardware threads.
//
// These are the *functional* primitives: value queues and counters with
// waiter lists. They consume no simulated time themselves — the OS-port
// adapters (rt/os.hpp) charge the delegate-thread/syscall costs around
// them, so a hardware thread and a software thread touching the same
// mailbox pay their own, different, entry costs.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace vmsls::rt {

/// Bounded FIFO of 64-bit values — the ReconOS-style mailbox that carries
/// kernel arguments, pointers, and completion tokens between threads.
class Mailbox {
 public:
  explicit Mailbox(unsigned depth, std::string name = "mbox");

  /// Takes the next value; `taker` fires immediately if data is available,
  /// otherwise when a producer delivers.
  void get(std::function<void(i64)> taker);

  /// Deposits a value; `done` fires immediately if there is room (or a
  /// waiting consumer), otherwise when space frees up.
  void put(i64 value, std::function<void()> done);

  /// Non-blocking probe used by tests and the run executive.
  bool try_get(i64& out);

  std::size_t size() const noexcept { return items_.size(); }
  unsigned depth() const noexcept { return depth_; }
  std::size_t waiting_takers() const noexcept { return takers_.size(); }
  std::size_t waiting_putters() const noexcept { return putters_.size(); }
  const std::string& name() const noexcept { return name_; }

 private:
  void drain_putters();

  unsigned depth_;
  std::string name_;
  std::deque<i64> items_;
  std::deque<std::function<void(i64)>> takers_;
  std::deque<std::pair<i64, std::function<void()>>> putters_;
};

/// Counting semaphore.
class Semaphore {
 public:
  explicit Semaphore(u64 initial = 0, std::string name = "sem");

  void wait(std::function<void()> acquired);
  void post();

  u64 count() const noexcept { return count_; }
  std::size_t waiters() const noexcept { return waiters_.size(); }
  const std::string& name() const noexcept { return name_; }

 private:
  u64 count_;
  std::string name_;
  std::deque<std::function<void()>> waiters_;
};

/// Mutex = binary semaphore initialized to 1, named for interface clarity.
class Mutex {
 public:
  explicit Mutex(std::string name = "mutex") : sem_(1, std::move(name)) {}
  void lock(std::function<void()> acquired) { sem_.wait(std::move(acquired)); }
  void unlock() { sem_.post(); }
  bool locked() const noexcept { return sem_.count() == 0; }

 private:
  Semaphore sem_;
};

/// Rendezvous barrier for `parties` threads.
class Barrier {
 public:
  explicit Barrier(unsigned parties, std::string name = "barrier");

  /// The callbacks of all parties fire when the last one arrives.
  void arrive(std::function<void()> released);

  unsigned parties() const noexcept { return parties_; }
  std::size_t arrived() const noexcept { return waiting_.size(); }

 private:
  unsigned parties_;
  std::string name_;
  std::vector<std::function<void()>> waiting_;
};

}  // namespace vmsls::rt

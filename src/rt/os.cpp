#include "rt/os.hpp"

#include <algorithm>
#include <utility>

#include "mem/paging/pager.hpp"
#include "rt/process.hpp"
#include "util/log.hpp"

namespace vmsls::rt {

OsModel::OsModel(sim::Simulator& sim, const OsConfig& cfg, std::string name)
    : sim_(sim),
      cfg_(cfg),
      name_(std::move(name)),
      core_free_(std::max(1u, cfg.service_cores), 0),
      services_(sim.stats().counter(name_ + ".services")),
      busy_cycles_(sim.stats().counter(name_ + ".busy_cycles")),
      queue_wait_(sim.stats().histogram(name_ + ".queue_wait")) {}

void OsModel::exec_service(Cycles pre_cost, std::function<void()> work) {
  services_.add();
  busy_cycles_.add(pre_cost);
  // Earliest-available-core policy (deterministic).
  auto it = std::min_element(core_free_.begin(), core_free_.end());
  const Cycles start = std::max(sim_.now(), *it);
  queue_wait_.record(start - sim_.now());
  *it = start + pre_cost;
  sim_.schedule_at(start + pre_cost, std::move(work));
}

FaultHandler::FaultHandler(sim::Simulator& sim, OsModel& os, Process& process, std::string name)
    : sim_(sim),
      os_(os),
      process_(process),
      name_(std::move(name)),
      faults_(sim.stats().counter(name_ + ".faults")),
      latency_(sim.stats().histogram(name_ + ".latency")) {
  trace_track_ = sim_.trace().track(name_);
}

void FaultHandler::finish_fault(mem::FaultRequest req, Cycles raised_at, u64 trace_id) {
  auto& space = process_.address_space();
  // Another thread may have faulted the same page in meanwhile.
  if (!space.is_mapped(req.va)) {
    space.map_page(req.va, /*writable=*/true);
  } else if (req.is_write) {
    // A write fault against a *mapped* page is a permission fault (COW /
    // write-upgrade). The pager path resolves it inside handle_fault; this
    // fallback keeps pager-less systems from retrying the same fault
    // forever — cow_break is a no-op when the page is already writable.
    process_.cow_break(req.va);
  }
  latency_.record(sim_.now() - raised_at);
  VMSLS_TRACE_END(sim_.trace(), trace_track_, "service", trace_id, req.va);
  req.retry();
}

void FaultHandler::raise(mem::FaultRequest req) {
  faults_.add();
  log_debug(name_, "page fault: thread ", req.thread_id, " va=0x", std::hex, req.va,
            req.is_write ? " (write)" : " (read)");
  const Cycles raised_at = sim_.now();
  // "service" spans the whole kernel trip — raise to retry — while the
  // pager's "fault" span inside it covers only the VM work after the irq +
  // fault-service cost lands the fault on a core.
  const u64 fid = VMSLS_TRACE_NEW_ID(sim_.trace());
  VMSLS_TRACE_BEGIN(sim_.trace(), trace_track_, "service", fid, req.va);
  const auto& cfg = os_.config();
  const Cycles copy_cost =
      process_.address_space().page_bytes() / std::max(1u, cfg.copy_bytes_per_cycle);
  const Cycles post = cfg.map_page_cost + copy_cost + cfg.response_latency;
  if (pager_ == nullptr) {
    // Pressure-free path: the whole kernel VM trip runs on a service core.
    os_.exec_service(cfg.irq_latency + cfg.fault_service + post,
                     [this, req = std::move(req), raised_at, fid]() mutable {
      finish_fault(std::move(req), raised_at, fid);
    });
    return;
  }
  // Pager path: irq + fault service occupy a core; eviction writebacks and
  // the swap-in wait happen off-core on the swap device's port; then the
  // map/copy/response tail re-acquires a core once the frame is secured.
  os_.exec_service(cfg.irq_latency + cfg.fault_service,
                   [this, req = std::move(req), raised_at, post, fid]() mutable {
    const VirtAddr va = req.va;
    const bool is_write = req.is_write;
    pager_->handle_fault(va, is_write,
                         [this, req = std::move(req), raised_at, post, fid]() mutable {
      os_.exec_service(post, [this, req = std::move(req), raised_at, fid]() mutable {
        finish_fault(std::move(req), raised_at, fid);
      });
    });
  });
}

DelegateOsPort::DelegateOsPort(sim::Simulator& sim, OsModel& os, Process& process,
                               std::string name)
    : sim_(sim),
      os_(os),
      process_(process),
      name_(std::move(name)),
      calls_(sim.stats().counter(name_ + ".delegate_calls")) {}

void DelegateOsPort::mbox_get(unsigned mbox, std::function<void(i64)> done) {
  calls_.add();
  const unsigned idx = bindings_.map_mailbox(mbox);
  const auto& cfg = os_.config();
  os_.exec_service(cfg.irq_latency + cfg.syscall_service,
                   [this, mbox = idx, done = std::move(done)]() mutable {
    process_.mailbox(mbox).get([this, done = std::move(done)](i64 v) {
      sim_.schedule_in(os_.config().response_latency, [done, v] { done(v); });
    });
  });
}

void DelegateOsPort::mbox_put(unsigned mbox, i64 value, std::function<void()> done) {
  calls_.add();
  const unsigned idx = bindings_.map_mailbox(mbox);
  const auto& cfg = os_.config();
  os_.exec_service(cfg.irq_latency + cfg.syscall_service,
                   [this, mbox = idx, value, done = std::move(done)]() mutable {
    process_.mailbox(mbox).put(value, [this, done = std::move(done)] {
      sim_.schedule_in(os_.config().response_latency, done);
    });
  });
}

void DelegateOsPort::sem_wait(unsigned sem, std::function<void()> done) {
  calls_.add();
  const unsigned idx = bindings_.map_semaphore(sem);
  const auto& cfg = os_.config();
  os_.exec_service(cfg.irq_latency + cfg.syscall_service,
                   [this, sem = idx, done = std::move(done)]() mutable {
    process_.semaphore(sem).wait([this, done = std::move(done)] {
      sim_.schedule_in(os_.config().response_latency, done);
    });
  });
}

void DelegateOsPort::sem_post(unsigned sem, std::function<void()> done) {
  calls_.add();
  const unsigned idx = bindings_.map_semaphore(sem);
  const auto& cfg = os_.config();
  os_.exec_service(cfg.irq_latency + cfg.syscall_service,
                   [this, sem = idx, done = std::move(done)]() mutable {
    process_.semaphore(sem).post();
    sim_.schedule_in(os_.config().response_latency, done);
  });
}

DirectOsPort::DirectOsPort(sim::Simulator& sim, const OsConfig& cfg, Process& process,
                           std::string name)
    : sim_(sim), cfg_(cfg), process_(process), name_(std::move(name)) {}

void DirectOsPort::mbox_get(unsigned mbox, std::function<void(i64)> done) {
  const unsigned idx = bindings_.map_mailbox(mbox);
  sim_.schedule_in(cfg_.sw_syscall, [this, mbox = idx, done = std::move(done)]() mutable {
    process_.mailbox(mbox).get(std::move(done));
  });
}

void DirectOsPort::mbox_put(unsigned mbox, i64 value, std::function<void()> done) {
  const unsigned idx = bindings_.map_mailbox(mbox);
  sim_.schedule_in(cfg_.sw_syscall, [this, mbox = idx, value, done = std::move(done)]() mutable {
    process_.mailbox(mbox).put(value, std::move(done));
  });
}

void DirectOsPort::sem_wait(unsigned sem, std::function<void()> done) {
  const unsigned idx = bindings_.map_semaphore(sem);
  sim_.schedule_in(cfg_.sw_syscall, [this, sem = idx, done = std::move(done)]() mutable {
    process_.semaphore(sem).wait(std::move(done));
  });
}

void DirectOsPort::sem_post(unsigned sem, std::function<void()> done) {
  const unsigned idx = bindings_.map_semaphore(sem);
  sim_.schedule_in(cfg_.sw_syscall, [this, sem = idx, done = std::move(done)]() mutable {
    process_.semaphore(sem).post();
    done();
  });
}

}  // namespace vmsls::rt

// OS model: delegate threads, syscall costs, and page-fault service.
//
// A hardware thread cannot call into the kernel; the runtime gives each one
// a *delegate* software thread (the ReconOS protocol). Every OS operation a
// hardware thread performs therefore pays: an interrupt to the host CPU,
// the delegate's syscall service time, and a response write back to the
// fabric. Page faults take the same path plus the VM subsystem's
// fault-service and page-mapping costs. OS work serializes on a bounded
// number of service cores, so fault storms and syscall-heavy kernels
// contend realistically.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hwt/ports.hpp"
#include "mem/address_space.hpp"
#include "mem/mmu.hpp"
#include "rt/sync.hpp"
#include "sim/simulator.hpp"

namespace vmsls::paging {
class Pager;
}

namespace vmsls::rt {

class Process;

struct OsConfig {
  Cycles irq_latency = 360;         // fault/doorbell raise -> delegate running
  Cycles syscall_service = 240;     // delegate servicing one mailbox/sem call
  Cycles response_latency = 80;     // result written back to the fabric
  Cycles fault_service = 1400;      // kernel VM path for one page fault
  Cycles map_page_cost = 500;       // allocate + install one PTE
  unsigned copy_bytes_per_cycle = 8;  // page-content fill bandwidth
  unsigned service_cores = 1;       // host cores available to the runtime
  Cycles sw_syscall = 60;           // a software thread's direct syscall cost
  Cycles daemon_service = 300;      // one background pageout-daemon tick on a core
};

/// Host-CPU service resource: OS paths run to completion on one of
/// `service_cores` cores; requests queue when all are busy.
class OsModel {
 public:
  OsModel(sim::Simulator& sim, const OsConfig& cfg, std::string name);

  OsModel(const OsModel&) = delete;
  OsModel& operator=(const OsModel&) = delete;

  const OsConfig& config() const noexcept { return cfg_; }

  /// Runs `work` after acquiring a core and spending `pre_cost` cycles on
  /// it; the core frees at that point (callbacks that then block, e.g. on a
  /// mailbox, sleep off-core).
  void exec_service(Cycles pre_cost, std::function<void()> work);

  u64 services() const noexcept { return services_.value(); }

 private:
  sim::Simulator& sim_;
  OsConfig cfg_;
  std::string name_;
  std::vector<Cycles> core_free_;
  Counter& services_;
  Counter& busy_cycles_;
  Histogram& queue_wait_;
};

/// Services hardware-thread page faults: maps the page (with content from
/// the process backing store) and retries the access. With a pager
/// attached, the fault path additionally enforces the frame budget —
/// evicting victims and paying swap-device time — before the page maps.
class FaultHandler final : public mem::FaultSink {
 public:
  FaultHandler(sim::Simulator& sim, OsModel& os, Process& process, std::string name);

  /// The pager must outlive the handler; nullptr detaches (pressure-free
  /// fault servicing, the pre-pager model).
  void set_pager(paging::Pager* pager) noexcept { pager_ = pager; }

  void raise(mem::FaultRequest req) override;

  u64 faults_serviced() const noexcept { return faults_.value(); }

 private:
  /// Shared fault completion: maps the page if still unmapped, records the
  /// service latency, and retries the faulting access. Callers charge the
  /// time first. `trace_id` closes the "service" span raise() opened.
  void finish_fault(mem::FaultRequest req, Cycles raised_at, u64 trace_id);

  sim::Simulator& sim_;
  OsModel& os_;
  Process& process_;
  std::string name_;
  sim::TraceTrack trace_track_ = 0;
  paging::Pager* pager_ = nullptr;
  Counter& faults_;
  Histogram& latency_;
};

/// Maps a thread's kernel-local mailbox/semaphore indices to process-wide
/// object indices. Empty map = identity (index i -> process object i).
struct OsBindings {
  std::vector<unsigned> mailboxes;
  std::vector<unsigned> semaphores;

  unsigned map_mailbox(unsigned local) const {
    if (mailboxes.empty()) return local;
    require(local < mailboxes.size(), "unbound kernel mailbox index");
    return mailboxes[local];
  }
  unsigned map_semaphore(unsigned local) const {
    if (semaphores.empty()) return local;
    require(local < semaphores.size(), "unbound kernel semaphore index");
    return semaphores[local];
  }
};

/// OS port for hardware threads: every operation goes through the delegate
/// protocol (interrupt + syscall + response).
class DelegateOsPort final : public hwt::OsPort {
 public:
  DelegateOsPort(sim::Simulator& sim, OsModel& os, Process& process, std::string name);

  void set_bindings(OsBindings bindings) { bindings_ = std::move(bindings); }

  void mbox_get(unsigned mbox, std::function<void(i64)> done) override;
  void mbox_put(unsigned mbox, i64 value, std::function<void()> done) override;
  void sem_wait(unsigned sem, std::function<void()> done) override;
  void sem_post(unsigned sem, std::function<void()> done) override;

 private:
  sim::Simulator& sim_;
  OsModel& os_;
  Process& process_;
  std::string name_;
  OsBindings bindings_;
  Counter& calls_;
};

/// OS port for software threads: direct syscall cost, no delegate hop.
class DirectOsPort final : public hwt::OsPort {
 public:
  DirectOsPort(sim::Simulator& sim, const OsConfig& cfg, Process& process, std::string name);

  void set_bindings(OsBindings bindings) { bindings_ = std::move(bindings); }

  void mbox_get(unsigned mbox, std::function<void(i64)> done) override;
  void mbox_put(unsigned mbox, i64 value, std::function<void()> done) override;
  void sem_wait(unsigned sem, std::function<void()> done) override;
  void sem_post(unsigned sem, std::function<void()> done) override;

 private:
  sim::Simulator& sim_;
  OsConfig cfg_;
  Process& process_;
  std::string name_;
  OsBindings bindings_;
};

}  // namespace vmsls::rt

// Process: the shared context of software and hardware threads.
//
// Owns the synchronization-object tables and references the address space.
// All OS-visible virtual-memory operations (populate, evict, protection
// changes) funnel through here so TLB shootdown and walk-cache flushes are
// never forgotten — the correctness backbone of the demand-paging
// experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/mmu.hpp"
#include "mem/walker.hpp"
#include "rt/sync.hpp"
#include "sim/simulator.hpp"

namespace vmsls::rt {

class Process {
 public:
  Process(sim::Simulator& sim, mem::AddressSpace& as, std::string name);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const noexcept { return name_; }
  mem::AddressSpace& address_space() noexcept { return as_; }
  sim::Simulator& simulator() noexcept { return sim_; }

  // --- synchronization object tables (index = kernel-IR object id) ---
  Mailbox& add_mailbox(unsigned depth, const std::string& name = "");
  Semaphore& add_semaphore(u64 initial, const std::string& name = "");
  Mailbox& mailbox(unsigned index);
  Semaphore& semaphore(unsigned index);
  unsigned mailbox_count() const noexcept { return static_cast<unsigned>(mailboxes_.size()); }
  unsigned semaphore_count() const noexcept { return static_cast<unsigned>(semaphores_.size()); }

  // --- hardware MMU registration for shootdown ---
  void register_mmu(mem::Mmu* mmu);
  void register_walker(mem::PageWalker* walker);

  // --- OS-visible memory management (functional; costs charged by caller) ---

  /// Eagerly maps (pins) the range. No shootdown needed: invalid->valid.
  void populate(VirtAddr va, u64 bytes) { as_.populate(va, bytes); }

  /// Demand-maps one page with contents from the backing store, landing it
  /// resident-clean (accessed and dirty both clear). Invalid -> valid: no
  /// shootdown needed. The pager's swap-in/readahead landing path; costs
  /// are charged by the caller. Returns the frame.
  u64 map_in(VirtAddr va) { return as_.map_page(va, /*writable=*/true); }

  /// mmap-style mapping of a backing file: reserves a lazy file-backed
  /// region (nothing resident, nothing to shoot down — first touch faults
  /// each page in through the pager's file path). `shared` picks MAP_SHARED
  /// write-back-to-file semantics over private copy-on-evict.
  VirtAddr mmap(mem::BackingFile& file, u64 offset, u64 bytes, bool shared) {
    return as_.mmap(file, offset, bytes, shared);
  }

  /// Evicts resident pages in the range and shoots down every hardware TLB
  /// and the shared walk cache. Returns pages evicted.
  u64 evict(VirtAddr va, u64 bytes);

  /// Forks this process's memory image into `child` (whose address space
  /// must be fresh): resident pages are shared by reference — MAP_SHARED
  /// file pages stay writable, anonymous/private pages go copy-on-write —
  /// and this process's TLBs are shot down (write permissions were
  /// revoked). Returns the number of pages shared.
  u64 fork(Process& child);

  /// Breaks a COW share after a write fault: sole mappings upgrade in
  /// place; shared frames split into a private copy, followed by a TLB
  /// shootdown of the page (cached translations point at the old frame).
  /// Functional mechanism only — the pager charges budget work and the
  /// copy's bus traffic.
  mem::AddressSpace::CowResult cow_break(VirtAddr va);

  /// Full address-space shootdown (e.g. after wholesale remapping).
  void shootdown_all();

  /// Convenience typed heap accessors (software-side, zero cost).
  VirtAddr alloc(u64 bytes, u64 align = 16) { return as_.alloc(bytes, align); }
  u64 shootdowns() const noexcept { return shootdowns_.value(); }
  u64 evicted_pages() const noexcept { return evicted_pages_.value(); }

 private:
  sim::Simulator& sim_;
  mem::AddressSpace& as_;
  std::string name_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Semaphore>> semaphores_;
  std::vector<mem::Mmu*> mmus_;
  std::vector<mem::PageWalker*> walkers_;
  // Registry counters ("proc.<name>.*") so multi-process runs can report
  // per-process shootdown pressure from a stats snapshot alone.
  Counter& shootdowns_;
  Counter& evicted_pages_;
};

}  // namespace vmsls::rt

#include "rt/sync.hpp"

#include <utility>

namespace vmsls::rt {

Mailbox::Mailbox(unsigned depth, std::string name) : depth_(depth), name_(std::move(name)) {
  require(depth > 0, "mailbox depth must be at least 1");
}

void Mailbox::drain_putters() {
  while (!putters_.empty() && items_.size() < depth_) {
    auto [value, done] = std::move(putters_.front());
    putters_.pop_front();
    items_.push_back(value);
    done();
  }
}

void Mailbox::get(std::function<void(i64)> taker) {
  if (!items_.empty()) {
    const i64 v = items_.front();
    items_.pop_front();
    drain_putters();
    taker(v);
    return;
  }
  if (!putters_.empty()) {
    // Depth-0-style direct handoff cannot happen (depth >= 1) unless a
    // putter queued while full; serve in FIFO order.
    auto [value, done] = std::move(putters_.front());
    putters_.pop_front();
    done();
    taker(value);
    return;
  }
  takers_.push_back(std::move(taker));
}

void Mailbox::put(i64 value, std::function<void()> done) {
  if (!takers_.empty()) {
    auto taker = std::move(takers_.front());
    takers_.pop_front();
    done();
    taker(value);
    return;
  }
  if (items_.size() < depth_) {
    items_.push_back(value);
    done();
    return;
  }
  putters_.emplace_back(value, std::move(done));
}

bool Mailbox::try_get(i64& out) {
  if (items_.empty()) return false;
  out = items_.front();
  items_.pop_front();
  drain_putters();
  return true;
}

Semaphore::Semaphore(u64 initial, std::string name) : count_(initial), name_(std::move(name)) {}

void Semaphore::wait(std::function<void()> acquired) {
  if (count_ > 0) {
    --count_;
    acquired();
    return;
  }
  waiters_.push_back(std::move(acquired));
}

void Semaphore::post() {
  if (!waiters_.empty()) {
    auto w = std::move(waiters_.front());
    waiters_.pop_front();
    w();
    return;
  }
  ++count_;
}

Barrier::Barrier(unsigned parties, std::string name)
    : parties_(parties), name_(std::move(name)) {
  require(parties > 0, "barrier needs at least one party");
}

void Barrier::arrive(std::function<void()> released) {
  waiting_.push_back(std::move(released));
  if (waiting_.size() == parties_) {
    auto batch = std::move(waiting_);
    waiting_.clear();
    for (auto& cb : batch) cb();
  }
}

}  // namespace vmsls::rt

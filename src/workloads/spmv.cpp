// Sparse matrix-vector multiply, CSR format: y = A * x.
//
// Irregular gather on x indexed by col_idx — the access pattern that sits
// between streaming (saxpy) and fully random (hash_join) in the evaluation.
// All arrays hold 64-bit words for a uniform port width.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg RP = 1, CI = 2, VALS = 3, XV = 4, YV = 5, NR = 6;
constexpr hwt::Reg R = 7, E = 8, END = 9, ACC = 10, COL = 11, V = 12, XT = 13, T0 = 14;
constexpr hwt::Reg PE = 15, PV = 16, PY = 17, PRP = 18;

struct Csr {
  std::vector<i64> row_ptr;  // n + 1
  std::vector<i64> col_idx;
  std::vector<i64> vals;
  std::vector<i64> x;
  std::vector<i64> expected;
};

Csr gen_csr(const WorkloadParams& p) {
  Rng rng(p.seed * 0x94d049bb133111ebull + 11);
  Csr m;
  m.row_ptr.resize(p.n + 1);
  m.row_ptr[0] = 0;
  for (u64 r = 0; r < p.n; ++r) {
    const u64 deg = 2 + rng.below(13);  // avg ~8 nonzeros per row
    m.row_ptr[r + 1] = m.row_ptr[r] + static_cast<i64>(deg);
    for (u64 e = 0; e < deg; ++e) {
      m.col_idx.push_back(static_cast<i64>(rng.below(p.n)));
      m.vals.push_back(static_cast<i64>(rng.below(1u << 10)) - (1 << 9));
    }
  }
  m.x.resize(p.n);
  for (auto& v : m.x) v = static_cast<i64>(rng.below(1u << 10)) - (1 << 9);
  m.expected.resize(p.n);
  for (u64 r = 0; r < p.n; ++r) {
    i64 acc = 0;
    for (i64 e = m.row_ptr[r]; e < m.row_ptr[r + 1]; ++e)
      acc += m.vals[static_cast<u64>(e)] * m.x[static_cast<u64>(m.col_idx[static_cast<u64>(e)])];
    m.expected[r] = acc;
  }
  return m;
}
}  // namespace

Workload make_spmv(const WorkloadParams& p) {
  require(p.n >= 1, "spmv needs at least one row");
  const Csr shape = gen_csr(p);
  const u64 nnz = shape.col_idx.size();

  hwt::KernelBuilder kb("spmv");
  kb.mbox_get(RP, 0)
      .mbox_get(CI, 0)
      .mbox_get(VALS, 0)
      .mbox_get(XV, 0)
      .mbox_get(YV, 0)
      .mbox_get(NR, 0)
      .mov(PY, YV)
      .mov(PRP, RP)
      .li(R, 0)
      .label("rows")
      .seq(T0, R, NR)
      .bnez(T0, "exit")
      .load(E, PRP)        // row_ptr[r]
      .load(END, PRP, 8)   // row_ptr[r+1]
      .li(ACC, 0)
      .shli(PE, E, 3)
      .add(PV, PE, VALS)   // &vals[e]
      .add(PE, PE, CI)     // &col_idx[e]
      .label("nz")
      .seq(T0, E, END)
      .bnez(T0, "row_done")
      .load(COL, PE)
      .load(V, PV)
      .shli(XT, COL, 3)
      .add(XT, XT, XV)
      .load(XT, XT)        // x[col]
      .mul(V, V, XT)
      .add(ACC, ACC, V)
      .addi(PE, PE, 8)
      .addi(PV, PV, 8)
      .addi(E, E, 1)
      .jmp("nz")
      .label("row_done")
      .store(PY, ACC)
      .addi(PY, PY, 8)
      .addi(PRP, PRP, 8)
      .addi(R, R, 1)
      .jmp("rows")
      .label("exit")
      .mbox_put(1, R)
      .halt();

  Workload w;
  w.name = "spmv";
  w.kernel = kb.build();
  w.buffers = {{"row_ptr", (p.n + 1) * 8, true},
               {"col_idx", nnz * 8, true},
               {"vals", nnz * 8, true},
               {"x", p.n * 8, true},
               {"y", p.n * 8, true}};
  w.footprint_hint_bytes = (p.n * 3 + nnz * 2) * 8;
  w.setup = [p](sls::System& sys) {
    const Csr m = gen_csr(p);
    write_i64(sys, sys.buffer("row_ptr"), m.row_ptr);
    write_i64(sys, sys.buffer("col_idx"), m.col_idx);
    write_i64(sys, sys.buffer("vals"), m.vals);
    write_i64(sys, sys.buffer("x"), m.x);
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("row_ptr")), static_cast<i64>(sys.buffer("col_idx")),
               static_cast<i64>(sys.buffer("vals")), static_cast<i64>(sys.buffer("x")),
               static_cast<i64>(sys.buffer("y")), static_cast<i64>(p.n)});
  };
  w.verify = [p](sls::System& sys) {
    const Csr m = gen_csr(p);
    return read_i64(sys, sys.buffer("y"), p.n) == m.expected;
  };
  return w;
}

}  // namespace vmsls::workloads

// Merge two sorted runs of n elements each into a 2n output.
//
// The sort-pass workload: sequential reads from two streams with
// data-dependent control flow. Used in the speedup figure as a
// branch-heavy, low-arithmetic case where the fabric's advantage is small.

#include <algorithm>

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg PA = 1, PB = 2, PO = 3, N = 4;
constexpr hwt::Reg IA = 5, IB = 6, VA = 7, VB = 8, T0 = 9;

std::vector<i64> gen_sorted(u64 n, u64 seed, u64 salt) {
  Rng rng(seed ^ (salt * 0xff51afd7ed558ccdull));
  std::vector<i64> v(n);
  for (auto& e : v) e = static_cast<i64>(rng.below(1u << 24));
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

Workload make_merge(const WorkloadParams& p) {
  require(p.n >= 1, "merge needs at least one element per run");

  hwt::KernelBuilder kb("merge");
  kb.mbox_get(PA, 0)
      .mbox_get(PB, 0)
      .mbox_get(PO, 0)
      .mbox_get(N, 0)
      .li(IA, 0)
      .li(IB, 0)
      .label("loop")
      .seq(T0, IA, N)
      .bnez(T0, "drain_b")
      .seq(T0, IB, N)
      .bnez(T0, "drain_a")
      .load(VA, PA)
      .load(VB, PB)
      .slt(T0, VB, VA)
      .bnez(T0, "take_b")
      .store(PO, VA)
      .addi(PA, PA, 8)
      .addi(IA, IA, 1)
      .addi(PO, PO, 8)
      .jmp("loop")
      .label("take_b")
      .store(PO, VB)
      .addi(PB, PB, 8)
      .addi(IB, IB, 1)
      .addi(PO, PO, 8)
      .jmp("loop")
      .label("drain_a")
      .seq(T0, IA, N)
      .bnez(T0, "exit")
      .load(VA, PA)
      .store(PO, VA)
      .addi(PA, PA, 8)
      .addi(IA, IA, 1)
      .addi(PO, PO, 8)
      .jmp("drain_a")
      .label("drain_b")
      .seq(T0, IB, N)
      .bnez(T0, "exit")
      .load(VB, PB)
      .store(PO, VB)
      .addi(PB, PB, 8)
      .addi(IB, IB, 1)
      .addi(PO, PO, 8)
      .jmp("drain_b")
      .label("exit")
      .mbox_put(1, IA)
      .halt();

  Workload w;
  w.name = "merge";
  w.kernel = kb.build();
  w.buffers = {{"runA", p.n * 8, true}, {"runB", p.n * 8, true}, {"merged", 2 * p.n * 8, true}};
  w.footprint_hint_bytes = 4 * p.n * 8;
  w.setup = [p](sls::System& sys) {
    write_i64(sys, sys.buffer("runA"), gen_sorted(p.n, p.seed, 1));
    write_i64(sys, sys.buffer("runB"), gen_sorted(p.n, p.seed, 2));
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("runA")), static_cast<i64>(sys.buffer("runB")),
               static_cast<i64>(sys.buffer("merged")), static_cast<i64>(p.n)});
  };
  w.verify = [p](sls::System& sys) {
    auto golden = gen_sorted(p.n, p.seed, 1);
    const auto b = gen_sorted(p.n, p.seed, 2);
    golden.insert(golden.end(), b.begin(), b.end());
    std::sort(golden.begin(), golden.end());
    return read_i64(sys, sys.buffer("merged"), 2 * p.n) == golden;
  };
  return w;
}

}  // namespace vmsls::workloads

// Breadth-first search over a CSR graph (queue-based, in-kernel).
//
// The most irregular workload in the suite: data-dependent loads into the
// adjacency, distance, and queue arrays with no tiling opportunity. This is
// the kind of traversal that is essentially unprogrammable in a copy-based
// offload model without shipping the whole graph — the paper's strongest
// motivating case after raw pointer chasing.

#include <deque>

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg APTR = 1, ADJ = 2, DIST = 3, QUEUE = 4, NV = 5, SRC = 6;
constexpr hwt::Reg HEAD = 7, TAIL = 8, U = 9, DU = 10, E = 11, END = 12;
constexpr hwt::Reg V = 13, DV = 14, T0 = 15, T1 = 16, ADDR = 17, MINUS1 = 18;

struct Graph {
  std::vector<i64> adj_ptr;  // n + 1
  std::vector<i64> adj;
  std::vector<i64> expected_dist;  // -1 for unreachable
  u64 src = 0;
};

Graph gen_graph(const WorkloadParams& p) {
  Rng rng(p.seed * 0xa0761d6478bd642full + 19);
  Graph g;
  const u64 n = p.n;
  // Random sparse digraph, average out-degree 4; a spine edge i -> i+1 for
  // the first half keeps a large reachable component.
  std::vector<std::vector<i64>> out(n);
  for (u64 i = 0; i + 1 < n / 2; ++i) out[i].push_back(static_cast<i64>(i + 1));
  const u64 extra = 3 * n;
  for (u64 e = 0; e < extra; ++e)
    out[rng.below(n)].push_back(static_cast<i64>(rng.below(n)));

  g.adj_ptr.resize(n + 1);
  g.adj_ptr[0] = 0;
  for (u64 i = 0; i < n; ++i) {
    g.adj_ptr[i + 1] = g.adj_ptr[i] + static_cast<i64>(out[i].size());
    for (i64 v : out[i]) g.adj.push_back(v);
  }

  g.src = 0;
  g.expected_dist.assign(n, -1);
  std::deque<u64> q;
  g.expected_dist[g.src] = 0;
  q.push_back(g.src);
  while (!q.empty()) {
    const u64 u = q.front();
    q.pop_front();
    for (i64 e = g.adj_ptr[u]; e < g.adj_ptr[u + 1]; ++e) {
      const u64 v = static_cast<u64>(g.adj[static_cast<u64>(e)]);
      if (g.expected_dist[v] == -1) {
        g.expected_dist[v] = g.expected_dist[u] + 1;
        q.push_back(v);
      }
    }
  }
  return g;
}
}  // namespace

Workload make_bfs(const WorkloadParams& p) {
  require(p.n >= 2, "bfs needs at least two vertices");
  const Graph shape = gen_graph(p);
  const u64 m = shape.adj.size();

  hwt::KernelBuilder kb("bfs");
  kb.mbox_get(APTR, 0)
      .mbox_get(ADJ, 0)
      .mbox_get(DIST, 0)
      .mbox_get(QUEUE, 0)
      .mbox_get(NV, 0)
      .mbox_get(SRC, 0)
      .li(MINUS1, -1)
      // dist[src] = 0; queue[0] = src; head = 0; tail = 1.
      .shli(ADDR, SRC, 3)
      .add(ADDR, ADDR, DIST)
      .li(T0, 0)
      .store(ADDR, T0)
      .store(QUEUE, SRC)
      .li(HEAD, 0)
      .li(TAIL, 1)
      .label("loop")
      .slt(T0, HEAD, TAIL)
      .beqz(T0, "exit")
      // u = queue[head++]
      .shli(ADDR, HEAD, 3)
      .add(ADDR, ADDR, QUEUE)
      .load(U, ADDR)
      .addi(HEAD, HEAD, 1)
      // du = dist[u]
      .shli(ADDR, U, 3)
      .add(ADDR, ADDR, DIST)
      .load(DU, ADDR)
      // e = adj_ptr[u]; end = adj_ptr[u+1]
      .shli(ADDR, U, 3)
      .add(ADDR, ADDR, APTR)
      .load(E, ADDR)
      .load(END, ADDR, 8)
      .label("edges")
      .slt(T0, E, END)
      .beqz(T0, "loop")
      // v = adj[e]
      .shli(ADDR, E, 3)
      .add(ADDR, ADDR, ADJ)
      .load(V, ADDR)
      // dv = dist[v]
      .shli(ADDR, V, 3)
      .add(ADDR, ADDR, DIST)
      .load(DV, ADDR)
      .sne(T1, DV, MINUS1)
      .bnez(T1, "next_edge")
      // discover: dist[v] = du + 1; queue[tail++] = v
      .addi(T0, DU, 1)
      .store(ADDR, T0)  // ADDR still &dist[v]
      .shli(ADDR, TAIL, 3)
      .add(ADDR, ADDR, QUEUE)
      .store(ADDR, V)
      .addi(TAIL, TAIL, 1)
      .label("next_edge")
      .addi(E, E, 1)
      .jmp("edges")
      .label("exit")
      .mbox_put(1, TAIL)
      .halt();

  Workload w;
  w.name = "bfs";
  w.kernel = kb.build();
  w.buffers = {{"adj_ptr", (p.n + 1) * 8, true},
               {"adj", m * 8, true},
               {"dist", p.n * 8, true},
               {"queue", p.n * 8, true}};
  w.footprint_hint_bytes = (2 * p.n + m) * 8;
  w.setup = [p](sls::System& sys) {
    const Graph g = gen_graph(p);
    write_i64(sys, sys.buffer("adj_ptr"), g.adj_ptr);
    write_i64(sys, sys.buffer("adj"), g.adj);
    write_i64(sys, sys.buffer("dist"), std::vector<i64>(p.n, -1));
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("adj_ptr")), static_cast<i64>(sys.buffer("adj")),
               static_cast<i64>(sys.buffer("dist")), static_cast<i64>(sys.buffer("queue")),
               static_cast<i64>(p.n), static_cast<i64>(g.src)});
  };
  w.verify = [p](sls::System& sys) {
    const Graph g = gen_graph(p);
    return read_i64(sys, sys.buffer("dist"), p.n) == g.expected_dist;
  };
  return w;
}

}  // namespace vmsls::workloads

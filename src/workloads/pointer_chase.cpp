// Pointer chasing: traverse an n-node linked list scattered over the heap.
//
// The workload that motivates virtual-memory hardware threads: every hop is
// a data-dependent access to a pointer-linked structure that a copy-based
// accelerator cannot consume without a serializing translation pass on the
// host. Access order is a random permutation so TLB reach and walk latency
// dominate. The result (sum of node values) returns via the done mailbox.

#include <numeric>

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr u64 kNodeBytes = 32;  // [0] next va, [8] value, 16 B pad
constexpr hwt::Reg HEAD = 1, CNT = 2, P = 3, I = 4, SUM = 5, V = 6, T0 = 7;

struct Chain {
  std::vector<u64> order;   // visit order: order[k] = node index
  std::vector<i64> values;  // per node
};

Chain gen_chain(const WorkloadParams& p) {
  Rng rng(p.seed * 0x6a09e667f3bcc909ull + 3);
  Chain c;
  c.order.resize(p.n);
  std::iota(c.order.begin(), c.order.end(), 0);
  // Fisher-Yates shuffle for a single random cycle through all nodes.
  for (u64 i = p.n - 1; i > 0; --i) std::swap(c.order[i], c.order[rng.below(i + 1)]);
  c.values.resize(p.n);
  for (auto& v : c.values) v = static_cast<i64>(rng.below(1u << 16));
  return c;
}
}  // namespace

Workload make_pointer_chase(const WorkloadParams& p) {
  require(p.n >= 2, "pointer_chase needs at least two nodes");

  hwt::KernelBuilder kb("pointer_chase");
  kb.mbox_get(HEAD, 0)
      .mbox_get(CNT, 0)
      .mov(P, HEAD)
      .li(I, 0)
      .li(SUM, 0)
      .label("loop")
      .seq(T0, I, CNT)
      .bnez(T0, "exit")
      .load(V, P, 8)   // node value
      .add(SUM, SUM, V)
      .load(P, P, 0)   // next pointer
      .addi(I, I, 1)
      .jmp("loop")
      .label("exit")
      .mbox_put(1, SUM)
      .halt();

  Workload w;
  w.name = "pointer_chase";
  w.kernel = kb.build();
  w.buffers = {{"nodes", p.n * kNodeBytes, true}};
  w.footprint_hint_bytes = p.n * kNodeBytes;
  w.setup = [p](sls::System& sys) {
    const Chain c = gen_chain(p);
    const VirtAddr base = sys.buffer("nodes");
    auto& as = sys.address_space();
    for (u64 k = 0; k < p.n; ++k) {
      const u64 node = c.order[k];
      const u64 next = c.order[(k + 1) % p.n];
      as.write_u64(base + node * kNodeBytes, base + next * kNodeBytes);
      as.write_scalar<i64>(base + node * kNodeBytes + 8, c.values[node]);
    }
    push_args(sys, "args",
              {static_cast<i64>(base + c.order[0] * kNodeBytes), static_cast<i64>(p.n)});
  };
  w.verify = [p](sls::System& sys) {
    const Chain c = gen_chain(p);
    const i64 expected = std::accumulate(c.values.begin(), c.values.end(), i64{0});
    i64 token = 0;
    const unsigned done = sys.image().app().mailbox_index("done");
    if (!sys.process().mailbox(done).try_get(token)) return false;
    return token == expected;
  };
  return w;
}

}  // namespace vmsls::workloads

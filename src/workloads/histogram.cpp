// 256-bin byte histogram.
//
// Streams the input through scratchpad tiles and keeps all bins in BRAM —
// the pattern used by the thread-scaling experiment, where several threads
// histogram disjoint slices and the bus/walker become the bottleneck.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg DATA = 1, OUT = 2, NB = 3;  // args: data va, out va, n bytes
constexpr hwt::Reg I = 4, K = 5, T0 = 6;
constexpr hwt::Reg TB = 10, OFF_D = 11, BYTE = 12, BIN = 13, CNT = 14, BINB = 15, KD = 16;

constexpr u64 kBinsBytes = 256 * 8;

std::vector<u8> gen_bytes(const WorkloadParams& p) {
  Rng rng(p.seed * 0xbf58476d1ce4e5b9ull + 17);
  std::vector<u8> d(p.n);
  for (auto& b : d) b = static_cast<u8>(rng.below(256));
  return d;
}
}  // namespace

Workload make_histogram(const WorkloadParams& p) {
  const u64 tile_bytes = p.tile * 8;
  require(p.n > 0 && tile_bytes > 0 && p.n % tile_bytes == 0,
          "histogram needs n % (tile*8) == 0");

  // Scratchpad: [0, 2 KiB) bins, [2 KiB, 2 KiB + tile) data tile.
  hwt::KernelBuilder kb("histogram", static_cast<u32>(kBinsBytes + tile_bytes));
  kb.mbox_get(DATA, 0)
      .mbox_get(OUT, 0)
      .mbox_get(NB, 0)
      .li(TB, static_cast<i64>(tile_bytes))
      .li(OFF_D, static_cast<i64>(kBinsBytes))
      // Zero the bins.
      .li(K, 0)
      .li(CNT, 0)
      .label("zero")
      .seq(T0, K, OFF_D)
      .bnez(T0, "zero_done")
      .spad_store(K, CNT)
      .addi(K, K, 8)
      .jmp("zero")
      .label("zero_done")
      .li(I, 0)
      .label("tiles")
      .seq(T0, I, NB)
      .bnez(T0, "exit")
      .burst_load(OFF_D, DATA, TB)
      .li(K, 0)
      .label("bytes")
      .seq(T0, K, TB)
      .bnez(T0, "tile_done")
      .add(KD, K, OFF_D)
      .spad_load(BYTE, KD, 0, 1)
      .shli(BINB, BYTE, 3)
      .spad_load(CNT, BINB)
      .addi(CNT, CNT, 1)
      .spad_store(BINB, CNT)
      .addi(K, K, 1)
      .jmp("bytes")
      .label("tile_done")
      .add(DATA, DATA, TB)
      .add(I, I, TB)
      .jmp("tiles")
      .label("exit")
      .li(K, 0)
      .li(BIN, static_cast<i64>(kBinsBytes))
      .burst_store(OUT, K, BIN)
      .mbox_put(1, I)
      .halt();

  Workload w;
  w.name = "histogram";
  w.kernel = kb.build();
  w.buffers = {{"data", p.n, true}, {"hist", kBinsBytes, true}};
  w.footprint_hint_bytes = p.n;
  w.setup = [p](sls::System& sys) {
    const auto d = gen_bytes(p);
    sys.address_space().write(sys.buffer("data"), std::span<const u8>(d.data(), d.size()));
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("data")), static_cast<i64>(sys.buffer("hist")),
               static_cast<i64>(p.n)});
  };
  w.verify = [p](sls::System& sys) {
    const auto d = gen_bytes(p);
    std::vector<i64> golden(256, 0);
    for (u8 b : d) ++golden[b];
    return read_i64(sys, sys.buffer("hist"), 256) == golden;
  };
  return w;
}

}  // namespace vmsls::workloads

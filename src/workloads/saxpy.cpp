// SAXPY: y[i] = alpha * x[i] + y[i] (integer / fixed-point).
//
// The streaming workload of the SVM-vs-DMA crossover experiment: perfectly
// sequential access where copy-based offload amortizes best. The burst
// variant is the "HLS with local buffers" shape.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg X = 1, Y = 2, AL = 3, N = 4, I = 5, T0 = 6, T1 = 7, T2 = 8, T3 = 9;

std::vector<i64> gen_vec(u64 n, u64 seed, u64 salt) {
  Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
  std::vector<i64> v(n);
  for (auto& e : v) e = static_cast<i64>(rng.below(1u << 18));
  return v;
}

constexpr i64 kAlpha = 7;

Workload finish(const WorkloadParams& p, hwt::Kernel kernel) {
  Workload w;
  w.name = kernel.name;
  w.kernel = std::move(kernel);
  w.buffers = {{"x", p.n * 8, true}, {"y", p.n * 8, true}};
  w.footprint_hint_bytes = 2 * p.n * 8;
  w.setup = [p](sls::System& sys) {
    write_i64(sys, sys.buffer("x"), gen_vec(p.n, p.seed, 1));
    write_i64(sys, sys.buffer("y"), gen_vec(p.n, p.seed, 2));
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("x")), static_cast<i64>(sys.buffer("y")), kAlpha,
               static_cast<i64>(p.n)});
  };
  w.verify = [p](sls::System& sys) {
    const auto x = gen_vec(p.n, p.seed, 1);
    const auto y0 = gen_vec(p.n, p.seed, 2);
    const auto y = read_i64(sys, sys.buffer("y"), p.n);
    for (u64 i = 0; i < p.n; ++i)
      if (y[i] != kAlpha * x[i] + y0[i]) return false;
    return true;
  };
  return w;
}
}  // namespace

Workload make_saxpy(const WorkloadParams& p) {
  require(p.n > 0, "saxpy needs at least one element");
  hwt::KernelBuilder kb("saxpy");
  kb.mbox_get(X, 0)
      .mbox_get(Y, 0)
      .mbox_get(AL, 0)
      .mbox_get(N, 0)
      .li(I, 0)
      .label("loop")
      .seq(T0, I, N)
      .bnez(T0, "exit")
      .load(T1, X)
      .load(T2, Y)
      .mul(T3, T1, AL)
      .add(T3, T3, T2)
      .store(Y, T3)
      .addi(X, X, 8)
      .addi(Y, Y, 8)
      .addi(I, I, 1)
      .jmp("loop")
      .label("exit")
      .mbox_put(1, I)
      .halt();
  return finish(p, kb.build());
}

Workload make_saxpy_burst(const WorkloadParams& p) {
  require(p.n > 0 && p.tile > 0 && p.n % p.tile == 0, "saxpy_burst needs n % tile == 0");
  const i64 tile_bytes = static_cast<i64>(p.tile * 8);
  constexpr hwt::Reg TB = 10, OFF_X = 11, OFF_Y = 12, K = 13, VX = 14, VY = 15, KY = 16;

  hwt::KernelBuilder kb("saxpy_burst", static_cast<u32>(2 * tile_bytes));
  kb.mbox_get(X, 0)
      .mbox_get(Y, 0)
      .mbox_get(AL, 0)
      .mbox_get(N, 0)
      .li(I, 0)
      .li(TB, tile_bytes)
      .li(OFF_X, 0)
      .li(OFF_Y, tile_bytes)
      .label("loop")
      .seq(T0, I, N)
      .bnez(T0, "exit")
      .burst_load(OFF_X, X, TB)
      .burst_load(OFF_Y, Y, TB)
      .li(K, 0)
      .label("inner")
      .seq(T0, K, TB)
      .bnez(T0, "inner_done")
      .spad_load(VX, K)
      .add(KY, K, OFF_Y)
      .spad_load(VY, KY)
      .mul(VX, VX, AL)
      .add(VY, VY, VX)
      .spad_store(KY, VY)
      .addi(K, K, 8)
      .jmp("inner")
      .label("inner_done")
      .burst_store(Y, OFF_Y, TB)
      .add(X, X, TB)
      .add(Y, Y, TB)
      .addi(I, I, static_cast<i64>(p.tile))
      .jmp("loop")
      .label("exit")
      .mbox_put(1, I)
      .halt();
  return finish(p, kb.build());
}

}  // namespace vmsls::workloads

// 3x3 convolution (integer Gaussian blur) over an n x n image.
//
// Per output row the kernel bursts three input rows into the scratchpad,
// computes the interior of the output row out of BRAM, and bursts it back.
// Borders are written as zero. The demand-paging residency experiment uses
// this workload: its page-sequential access pattern amortizes fault costs
// through spatial locality.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg IN = 1, OUT = 2, N = 3;  // args: in, out, n (image is n x n, 8 B pixels)
constexpr hwt::Reg Y = 4, X = 5, T0 = 6;
constexpr hwt::Reg ROWB = 10, OFF_R0 = 11, OFF_R1 = 12, OFF_R2 = 13, OFF_O = 14;
constexpr hwt::Reg ACC = 15, V = 16, KOFF = 17, PIN = 18, POUT = 19, NM1 = 20, XB = 21;

std::vector<i64> gen_image(u64 n, u64 seed) {
  Rng rng(seed * 0x5851f42d4c957f2dull + 13);
  std::vector<i64> img(n * n);
  for (auto& e : img) e = static_cast<i64>(rng.below(256));
  return img;
}

std::vector<i64> golden_blur(const std::vector<i64>& img, u64 n) {
  // Weights: [1 2 1; 2 4 2; 1 2 1], normalized by >> 4.
  std::vector<i64> out(n * n, 0);
  static constexpr int w[3][3] = {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}};
  for (u64 y = 1; y + 1 < n; ++y)
    for (u64 x = 1; x + 1 < n; ++x) {
      i64 acc = 0;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
          acc += w[dy + 1][dx + 1] *
                 img[(y + static_cast<u64>(dy)) * n + (x + static_cast<u64>(dx))];
      out[y * n + x] = acc >> 4;
    }
  return out;
}

/// Emits ACC += weight * spad[row_off + (x + dx) * 8].
void emit_tap(hwt::KernelBuilder& kb, hwt::Reg row_off, int dx, int weight) {
  kb.addi(KOFF, XB, dx * 8).add(KOFF, KOFF, row_off).spad_load(V, KOFF);
  if (weight == 2)
    kb.shli(V, V, 1);
  else if (weight == 4)
    kb.shli(V, V, 2);
  kb.add(ACC, ACC, V);
}
}  // namespace

Workload make_conv2d(const WorkloadParams& p) {
  const u64 n = p.n;
  require(n >= 4, "conv2d needs n >= 4");
  const i64 row_bytes = static_cast<i64>(n * 8);
  require(4 * n * 8 <= 48 * KiB, "conv2d rows exceed the scratchpad budget");

  // Scratchpad: rows y-1, y, y+1, then the output row.
  hwt::KernelBuilder kb("conv2d", static_cast<u32>(4 * row_bytes));
  kb.mbox_get(IN, 0)
      .mbox_get(OUT, 0)
      .mbox_get(N, 0)
      .li(ROWB, row_bytes)
      .li(OFF_R0, 0)
      .li(OFF_R1, row_bytes)
      .li(OFF_R2, 2 * row_bytes)
      .li(OFF_O, 3 * row_bytes)
      .addi(NM1, N, -1)
      // Zero the first and last output rows (borders).
      .li(X, 0)
      .label("zero_border")
      .seq(T0, X, ROWB)
      .bnez(T0, "zero_done")
      .li(V, 0)
      .add(KOFF, X, OFF_O)
      .spad_store(KOFF, V)
      .addi(X, X, 8)
      .jmp("zero_border")
      .label("zero_done")
      .burst_store(OUT, OFF_O, ROWB)  // first row
      .muli(T0, NM1, 8)
      .mul(T0, T0, N)
      .add(POUT, OUT, T0)
      .burst_store(POUT, OFF_O, ROWB)  // last row
      // Main loop over interior output rows.
      .mov(PIN, IN)
      .add(POUT, OUT, ROWB)
      .li(Y, 1)
      .label("rows")
      .seq(T0, Y, NM1)
      .bnez(T0, "exit")
      .burst_load(OFF_R0, PIN, ROWB)
      .add(T0, PIN, ROWB)
      .burst_load(OFF_R1, T0, ROWB)
      .add(T0, T0, ROWB)
      .burst_load(OFF_R2, T0, ROWB)
      // Border pixels of this row are zero.
      .li(V, 0)
      .spad_store(OFF_O, V, 0)
      .addi(KOFF, ROWB, -8)
      .add(KOFF, KOFF, OFF_O)
      .spad_store(KOFF, V)
      .li(X, 1)
      .label("cols");
  {
    kb.seq(T0, X, NM1)
        .bnez(T0, "cols_done")
        .shli(XB, X, 3)
        .li(ACC, 0);
    emit_tap(kb, OFF_R0, -1, 1);
    emit_tap(kb, OFF_R0, 0, 2);
    emit_tap(kb, OFF_R0, 1, 1);
    emit_tap(kb, OFF_R1, -1, 2);
    emit_tap(kb, OFF_R1, 0, 4);
    emit_tap(kb, OFF_R1, 1, 2);
    emit_tap(kb, OFF_R2, -1, 1);
    emit_tap(kb, OFF_R2, 0, 2);
    emit_tap(kb, OFF_R2, 1, 1);
    kb.shri(ACC, ACC, 4)
        .add(KOFF, XB, OFF_O)
        .spad_store(KOFF, ACC)
        .addi(X, X, 1)
        .jmp("cols")
        .label("cols_done")
        .burst_store(POUT, OFF_O, ROWB)
        .add(PIN, PIN, ROWB)
        .add(POUT, POUT, ROWB)
        .addi(Y, Y, 1)
        .jmp("rows")
        .label("exit")
        .mbox_put(1, Y)
        .halt();
  }

  Workload w;
  w.name = "conv2d";
  w.kernel = kb.build();
  w.buffers = {{"in", n * n * 8, true}, {"out", n * n * 8, true}};
  w.footprint_hint_bytes = 2 * n * n * 8;
  w.setup = [p, n](sls::System& sys) {
    write_i64(sys, sys.buffer("in"), gen_image(n, p.seed));
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("in")), static_cast<i64>(sys.buffer("out")),
               static_cast<i64>(n)});
  };
  w.verify = [p, n](sls::System& sys) {
    const auto golden = golden_blur(gen_image(n, p.seed), n);
    const auto out = read_i64(sys, sys.buffer("out"), n * n);
    return out == golden;
  };
  return w;
}

}  // namespace vmsls::workloads

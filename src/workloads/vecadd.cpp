// Vector addition: c[i] = a[i] + b[i].
//
// The canonical quickstart kernel. The element-wise form issues one 8-byte
// load per operand per element (translation-heavy); the burst form streams
// scratchpad tiles (what an HLS tool produces from a pipelined loop with
// memcpy-style array arguments) and is the ablation point for burst ports.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg A = 1, B = 2, C = 3, N = 4, I = 5, T0 = 6, T1 = 7, T2 = 8, T3 = 9;

struct VecaddData {
  std::vector<i64> a, b;
};

VecaddData gen_inputs(const WorkloadParams& p) {
  Rng rng(p.seed);
  VecaddData d;
  d.a.resize(p.n);
  d.b.resize(p.n);
  for (u64 i = 0; i < p.n; ++i) {
    d.a[i] = static_cast<i64>(rng.below(1u << 20));
    d.b[i] = static_cast<i64>(rng.below(1u << 20));
  }
  return d;
}

Workload finish(const WorkloadParams& p, hwt::Kernel kernel) {
  Workload w;
  w.name = kernel.name;
  w.kernel = std::move(kernel);
  w.buffers = {{"a", p.n * 8, true}, {"b", p.n * 8, true}, {"c", p.n * 8, true}};
  w.footprint_hint_bytes = 3 * p.n * 8;
  w.setup = [p](sls::System& sys) {
    const auto d = gen_inputs(p);
    write_i64(sys, sys.buffer("a"), d.a);
    write_i64(sys, sys.buffer("b"), d.b);
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("a")), static_cast<i64>(sys.buffer("b")),
               static_cast<i64>(sys.buffer("c")), static_cast<i64>(p.n)});
  };
  w.verify = [p](sls::System& sys) {
    const auto d = gen_inputs(p);
    const auto c = read_i64(sys, sys.buffer("c"), p.n);
    for (u64 i = 0; i < p.n; ++i)
      if (c[i] != d.a[i] + d.b[i]) return false;
    return true;
  };
  return w;
}
}  // namespace

Workload make_vecadd(const WorkloadParams& p) {
  require(p.n > 0, "vecadd needs at least one element");
  hwt::KernelBuilder kb("vecadd");
  kb.mbox_get(A, 0)
      .mbox_get(B, 0)
      .mbox_get(C, 0)
      .mbox_get(N, 0)
      .li(I, 0)
      .label("loop")
      .seq(T0, I, N)
      .bnez(T0, "exit")
      .load(T1, A)
      .load(T2, B)
      .add(T3, T1, T2)
      .store(C, T3)
      .addi(A, A, 8)
      .addi(B, B, 8)
      .addi(C, C, 8)
      .addi(I, I, 1)
      .jmp("loop")
      .label("exit")
      .mbox_put(1, I)
      .halt();
  return finish(p, kb.build());
}

Workload make_vecadd_burst(const WorkloadParams& p) {
  require(p.n > 0 && p.tile > 0 && p.n % p.tile == 0, "vecadd_burst needs n % tile == 0");
  const i64 tile_bytes = static_cast<i64>(p.tile * 8);
  // Scratchpad layout: [0, T) a-tile, [T, 2T) b-tile, [2T, 3T) c-tile.
  constexpr hwt::Reg TB = 10, OFF_A = 11, OFF_B = 12, OFF_C = 13, K = 14;
  constexpr hwt::Reg VA = 15, VB = 16, VC = 17, KA = 18, KB = 19, KC = 20;

  hwt::KernelBuilder kb("vecadd_burst", static_cast<u32>(3 * tile_bytes));
  kb.mbox_get(A, 0)
      .mbox_get(B, 0)
      .mbox_get(C, 0)
      .mbox_get(N, 0)
      .li(I, 0)
      .li(TB, tile_bytes)
      .li(OFF_A, 0)
      .li(OFF_B, tile_bytes)
      .li(OFF_C, 2 * tile_bytes)
      .label("loop")
      .seq(T0, I, N)
      .bnez(T0, "exit")
      .burst_load(OFF_A, A, TB)
      .burst_load(OFF_B, B, TB)
      .li(K, 0)
      .label("inner")
      .seq(T0, K, TB)
      .bnez(T0, "inner_done")
      .spad_load(VA, K)
      .add(KB, K, OFF_B)
      .spad_load(VB, KB)
      .add(VC, VA, VB)
      .add(KC, K, OFF_C)
      .spad_store(KC, VC)
      .addi(K, K, 8)
      .jmp("inner")
      .label("inner_done")
      .burst_store(C, OFF_C, TB)
      .add(A, A, TB)
      .add(B, B, TB)
      .add(C, C, TB)
      .addi(I, I, static_cast<i64>(p.tile))
      .jmp("loop")
      .label("exit")
      .mbox_put(1, I)
      .halt();
  (void)KA;
  return finish(p, kb.build());
}

}  // namespace vmsls::workloads

// Matrix multiply: C = A x B over n x n 64-bit integers.
//
// The compute-dense workload of the speedup figure. The host pre-transposes
// B (standard data-layout preparation for HLS kernels) so both operands
// stream row-wise: per output row the kernel bursts one A row into the
// scratchpad, then per output element bursts one B^T row and reduces a dot
// product entirely out of BRAM. Arithmetic intensity grows with n, so this
// kernel shows where hardware threads win big.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg A = 1, BT = 2, C = 3, N = 4;  // args: A, B^T, C, n
constexpr hwt::Reg I = 5, J = 6, K = 7, T0 = 8;
constexpr hwt::Reg ROWB = 10;  // row bytes = n * 8
constexpr hwt::Reg OFF_A = 11, OFF_B = 12, OFF_C = 13;
constexpr hwt::Reg ACC = 14, VA = 15, VB = 16, KB = 17, PA = 18, PB = 19, JC = 20;

std::vector<i64> gen_matrix(u64 n, u64 seed, u64 salt) {
  Rng rng(seed ^ (salt * 0x2545f4914f6cdd1dull));
  std::vector<i64> m(n * n);
  for (auto& e : m) e = static_cast<i64>(rng.below(1u << 10)) - (1 << 9);
  return m;
}

std::vector<i64> transpose(const std::vector<i64>& m, u64 n) {
  std::vector<i64> t(n * n);
  for (u64 r = 0; r < n; ++r)
    for (u64 c = 0; c < n; ++c) t[c * n + r] = m[r * n + c];
  return t;
}
}  // namespace

Workload make_matmul(const WorkloadParams& p) {
  const u64 n = p.n;
  require(n >= 2, "matmul needs n >= 2");
  const i64 row_bytes = static_cast<i64>(n * 8);
  require(3 * n * 8 <= 48 * KiB, "matmul row tiles exceed the scratchpad budget");

  // Scratchpad: [0, R) A row, [R, 2R) B^T row, [2R, 3R) C row.
  hwt::KernelBuilder kb("matmul", static_cast<u32>(3 * row_bytes));
  kb.mbox_get(A, 0)
      .mbox_get(BT, 0)
      .mbox_get(C, 0)
      .mbox_get(N, 0)
      .li(ROWB, row_bytes)
      .li(OFF_A, 0)
      .li(OFF_B, row_bytes)
      .li(OFF_C, 2 * row_bytes)
      .li(I, 0)
      .label("rows")
      .seq(T0, I, N)
      .bnez(T0, "exit")
      .burst_load(OFF_A, A, ROWB)  // A row i
      .mov(PB, BT)                 // rewind B^T
      .li(J, 0)
      .label("cols")
      .seq(T0, J, N)
      .bnez(T0, "cols_done")
      .burst_load(OFF_B, PB, ROWB)  // B^T row j == B column j
      .li(ACC, 0)
      .li(K, 0)
      .label("dot")
      .seq(T0, K, ROWB)
      .bnez(T0, "dot_done")
      .spad_load(VA, K)
      .add(KB, K, OFF_B)
      .spad_load(VB, KB)
      .mul(VA, VA, VB)
      .add(ACC, ACC, VA)
      .addi(K, K, 8)
      .jmp("dot")
      .label("dot_done")
      .shli(JC, J, 3)
      .add(JC, JC, OFF_C)
      .spad_store(JC, ACC)  // C[i][j] staged in scratchpad
      .add(PB, PB, ROWB)
      .addi(J, J, 1)
      .jmp("cols")
      .label("cols_done")
      .burst_store(C, OFF_C, ROWB)  // write C row i
      .add(A, A, ROWB)
      .add(C, C, ROWB)
      .addi(I, I, 1)
      .jmp("rows")
      .label("exit")
      .mbox_put(1, I)
      .halt();
  (void)PA;

  Workload w;
  w.name = "matmul";
  w.kernel = kb.build();
  w.buffers = {{"A", n * n * 8, true}, {"Bt", n * n * 8, true}, {"C", n * n * 8, true}};
  w.footprint_hint_bytes = 3 * n * n * 8;
  w.setup = [p, n](sls::System& sys) {
    const auto a = gen_matrix(n, p.seed, 1);
    const auto b = gen_matrix(n, p.seed, 2);
    write_i64(sys, sys.buffer("A"), a);
    write_i64(sys, sys.buffer("Bt"), transpose(b, n));
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("A")), static_cast<i64>(sys.buffer("Bt")),
               static_cast<i64>(sys.buffer("C")), static_cast<i64>(n)});
  };
  w.verify = [p, n](sls::System& sys) {
    const auto a = gen_matrix(n, p.seed, 1);
    const auto b = gen_matrix(n, p.seed, 2);
    const auto c = read_i64(sys, sys.buffer("C"), n * n);
    for (u64 i = 0; i < n; ++i)
      for (u64 j = 0; j < n; ++j) {
        i64 acc = 0;
        for (u64 k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
        if (c[i * n + j] != acc) return false;
      }
    return true;
  };
  return w;
}

}  // namespace vmsls::workloads

// Hash-join probe: look up n keys in an open-addressing hash table.
//
// The sparse-access workload of the SVM-vs-DMA crossover: each probe lands
// on a random table slot, so a copy-based offload must ship the entire
// table while the virtual-memory thread touches only the slots it needs.
// Table slots are 16 B {key, value}; key 0 marks an empty slot; collisions
// resolve by linear probing.

#include "hwt/builder.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {

namespace {
constexpr hwt::Reg TAB = 1, KEYS = 2, OUT = 3, NKEYS = 4, MASK = 5;
constexpr hwt::Reg I = 6, KEY = 7, H = 8, SLOT = 9, SK = 10, V = 11, T0 = 12;
constexpr i64 kMul = 2654435761;  // Knuth multiplicative hash

struct JoinData {
  u64 slots = 0;  // power of two
  std::vector<i64> table;  // slots * 2 words: {key, value}
  std::vector<i64> keys;   // probe keys (~50% present)
  std::vector<i64> expected;
};

u64 hash_of(i64 key, u64 mask) {
  const u64 h = (static_cast<u64>(key) * static_cast<u64>(kMul)) >> 16;
  return h & mask;
}

JoinData gen_join(const WorkloadParams& p) {
  Rng rng(p.seed * 0xd6e8feb86659fd93ull + 7);
  JoinData d;
  const u64 build_n = p.aux ? p.aux : p.n;  // table occupancy 25%
  u64 slots = 4;
  while (slots < 4 * build_n) slots <<= 1;
  d.slots = slots;
  d.table.assign(slots * 2, 0);
  const u64 mask = slots - 1;

  std::vector<i64> present;
  for (u64 i = 0; i < build_n; ++i) {
    const i64 key = static_cast<i64>(rng.range(1, (1u << 30)));
    const i64 value = static_cast<i64>(rng.below(1u << 20)) + 1;
    u64 idx = hash_of(key, mask);
    bool duplicate = false;
    while (d.table[idx * 2] != 0) {
      if (d.table[idx * 2] == key) {
        duplicate = true;
        break;
      }
      idx = (idx + 1) & mask;
    }
    if (duplicate) continue;
    d.table[idx * 2] = key;
    d.table[idx * 2 + 1] = value;
    present.push_back(key);
  }

  d.keys.resize(p.n);
  for (auto& k : d.keys) {
    if (!present.empty() && rng.chance(0.5))
      k = present[rng.below(present.size())];
    else
      k = static_cast<i64>(rng.range(1u << 30, (1ull << 31)));  // disjoint range: miss
  }

  d.expected.resize(p.n);
  for (u64 i = 0; i < p.n; ++i) {
    u64 idx = hash_of(d.keys[i], mask);
    i64 found = 0;
    while (d.table[idx * 2] != 0) {
      if (d.table[idx * 2] == d.keys[i]) {
        found = d.table[idx * 2 + 1];
        break;
      }
      idx = (idx + 1) & mask;
    }
    d.expected[i] = found;
  }
  return d;
}
}  // namespace

Workload make_hash_join(const WorkloadParams& p) {
  require(p.n >= 1, "hash_join needs at least one key");
  const JoinData shape = gen_join(p);  // sized here; regenerated in setup/verify

  hwt::KernelBuilder kb("hash_join");
  kb.mbox_get(TAB, 0)
      .mbox_get(KEYS, 0)
      .mbox_get(OUT, 0)
      .mbox_get(NKEYS, 0)
      .mbox_get(MASK, 0)
      .li(I, 0)
      .label("loop")
      .seq(T0, I, NKEYS)
      .bnez(T0, "exit")
      .load(KEY, KEYS)
      .muli(H, KEY, kMul)
      .shri(H, H, 16)
      .and_(H, H, MASK)
      .label("probe")
      .shli(SLOT, H, 4)    // slot byte offset (16 B slots)
      .add(SLOT, SLOT, TAB)
      .load(SK, SLOT)      // slot key
      .beqz(SK, "miss")
      .seq(T0, SK, KEY)
      .bnez(T0, "hit")
      .addi(H, H, 1)
      .and_(H, H, MASK)
      .jmp("probe")
      .label("hit")
      .load(V, SLOT, 8)
      .store(OUT, V)
      .jmp("next")
      .label("miss")
      .li(V, 0)
      .store(OUT, V)
      .label("next")
      .addi(KEYS, KEYS, 8)
      .addi(OUT, OUT, 8)
      .addi(I, I, 1)
      .jmp("loop")
      .label("exit")
      .mbox_put(1, I)
      .halt();

  Workload w;
  w.name = "hash_join";
  w.kernel = kb.build();
  w.buffers = {{"table", shape.slots * 16, true},
               {"keys", p.n * 8, true},
               {"out", p.n * 8, true}};
  w.footprint_hint_bytes = shape.slots * 16;
  w.setup = [p](sls::System& sys) {
    const JoinData d = gen_join(p);
    write_i64(sys, sys.buffer("table"), d.table);
    write_i64(sys, sys.buffer("keys"), d.keys);
    push_args(sys, "args",
              {static_cast<i64>(sys.buffer("table")), static_cast<i64>(sys.buffer("keys")),
               static_cast<i64>(sys.buffer("out")), static_cast<i64>(p.n),
               static_cast<i64>(d.slots - 1)});
  };
  w.verify = [p](sls::System& sys) {
    const JoinData d = gen_join(p);
    return read_i64(sys, sys.buffer("out"), p.n) == d.expected;
  };
  return w;
}

}  // namespace vmsls::workloads

#include <stdexcept>

#include "workloads/workloads.hpp"

namespace vmsls::workloads {

void write_i64(sls::System& sys, VirtAddr va, const std::vector<i64>& values) {
  auto& as = sys.address_space();
  as.write(va, std::span<const u8>(reinterpret_cast<const u8*>(values.data()),
                                   values.size() * sizeof(i64)));
}

std::vector<i64> read_i64(sls::System& sys, VirtAddr va, u64 count) {
  std::vector<i64> out(count);
  sys.address_space().read(
      va, std::span<u8>(reinterpret_cast<u8*>(out.data()), out.size() * sizeof(i64)));
  return out;
}

void push_args(sls::System& sys, const std::string& mailbox, const std::vector<i64>& args) {
  const unsigned idx = sys.image().app().mailbox_index(mailbox);
  auto& mbox = sys.process().mailbox(idx);
  require(args.size() <= mbox.depth(), "argument list exceeds mailbox depth");
  for (i64 a : args) mbox.put(a, [] {});
}

sls::AppSpec single_thread_app(const Workload& w, sls::ThreadKind kind,
                               sls::Addressing addressing, bool pinned_buffers) {
  sls::AppSpec app;
  app.name = w.name;
  app.add_mailbox("args", 16);
  app.add_mailbox("done", 4);
  for (auto buf : w.buffers) {
    buf.pinned = pinned_buffers && buf.pinned;
    app.buffers.push_back(buf);
  }
  sls::ThreadSpec& t = (kind == sls::ThreadKind::kHardware)
                           ? app.add_hw_thread("worker", w.kernel, {"args", "done"})
                           : app.add_sw_thread("worker", w.kernel, {"args", "done"});
  t.addressing = (kind == sls::ThreadKind::kHardware) ? addressing : sls::Addressing::kVirtual;
  t.footprint_hint_bytes = w.footprint_hint_bytes;
  return app;
}

std::vector<std::string> workload_names() {
  return {"vecadd",        "vecadd_burst", "saxpy", "saxpy_burst", "matmul", "conv2d",
          "pointer_chase", "hash_join",    "spmv",  "histogram",   "merge",  "bfs"};
}

Workload make_workload(const std::string& name, const WorkloadParams& p) {
  if (name == "vecadd") return make_vecadd(p);
  if (name == "vecadd_burst") return make_vecadd_burst(p);
  if (name == "saxpy") return make_saxpy(p);
  if (name == "saxpy_burst") return make_saxpy_burst(p);
  if (name == "matmul") return make_matmul(p);
  if (name == "conv2d") return make_conv2d(p);
  if (name == "pointer_chase") return make_pointer_chase(p);
  if (name == "hash_join") return make_hash_join(p);
  if (name == "spmv") return make_spmv(p);
  if (name == "histogram") return make_histogram(p);
  if (name == "merge") return make_merge(p);
  if (name == "bfs") return make_bfs(p);
  throw std::out_of_range("unknown workload '" + name + "'");
}

}  // namespace vmsls::workloads

// Benchmark kernels — the paper's evaluation workloads.
//
// Each workload bundles a kernel (IR), its buffer requirements, a host-side
// setup function that initializes inputs and pushes kernel arguments into
// the "args" mailbox, and a verifier that checks outputs against a golden
// C++ model. The same kernel runs as a hardware thread (fabric cost model,
// MMU ports) or a software thread (CPU cost model, cached ports), which is
// how every speedup comparison is produced.
//
// Calling convention: kernels read arguments from mailbox 0 in a fixed
// per-workload order (buffer virtual addresses first, scalars after) and
// put one completion token into mailbox 1 before halting.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hwt/kernel.hpp"
#include "sls/app.hpp"
#include "sls/system.hpp"

namespace vmsls::workloads {

struct WorkloadParams {
  u64 n = 4096;    // primary size (elements / dimension / nodes; see each factory)
  u64 tile = 256;  // burst tile in elements, for tiled kernels
  u64 seed = 42;   // input data seed
  u64 aux = 0;     // workload-specific secondary size (hash_join: number of
                   // build tuples; 0 = same as n)
};

struct Workload {
  std::string name;
  hwt::Kernel kernel;
  std::vector<sls::BufferSpec> buffers;
  u64 footprint_hint_bytes = 0;

  /// Writes input data into the system's buffers and enqueues the argument
  /// words. Call after elaboration, before starting threads.
  std::function<void(sls::System&)> setup;

  /// Reads outputs and compares with the golden model. Call after
  /// run_to_completion.
  std::function<bool(sls::System&)> verify;
};

// --- factories (each header-documented in its .cpp) ---
Workload make_vecadd(const WorkloadParams& p);        // c[i] = a[i] + b[i], element-wise
Workload make_vecadd_burst(const WorkloadParams& p);  // tiled through the scratchpad
Workload make_saxpy(const WorkloadParams& p);         // y[i] += alpha * x[i], element-wise
Workload make_saxpy_burst(const WorkloadParams& p);   // tiled through the scratchpad
Workload make_matmul(const WorkloadParams& p);        // C = A x B, n x n, row-tiled
Workload make_conv2d(const WorkloadParams& p);        // 3x3 blur over an n x n image
Workload make_pointer_chase(const WorkloadParams& p); // linked-list traversal, n nodes
Workload make_hash_join(const WorkloadParams& p);     // probe n keys into a hash table
Workload make_spmv(const WorkloadParams& p);          // CSR y = A*x, n rows
Workload make_histogram(const WorkloadParams& p);     // 256-bin byte histogram of n bytes
Workload make_merge(const WorkloadParams& p);         // merge two sorted runs of n each
Workload make_bfs(const WorkloadParams& p);           // queue-based BFS over a CSR graph

/// All registry names accepted by make_workload.
std::vector<std::string> workload_names();
Workload make_workload(const std::string& name, const WorkloadParams& p);

/// Builds a one-worker application around a workload: thread "worker",
/// mailboxes "args" and "done", plus the workload's buffers.
sls::AppSpec single_thread_app(const Workload& w, sls::ThreadKind kind,
                               sls::Addressing addressing = sls::Addressing::kVirtual,
                               bool pinned_buffers = true);

// --- host-side helpers shared by the workload implementations ---
void write_i64(sls::System& sys, VirtAddr va, const std::vector<i64>& values);
std::vector<i64> read_i64(sls::System& sys, VirtAddr va, u64 count);
void push_args(sls::System& sys, const std::string& mailbox,
               const std::vector<i64>& args);

}  // namespace vmsls::workloads

#include <gtest/gtest.h>

#include "mem/mmu.hpp"
#include "mem/walker.hpp"
#include "test_util.hpp"

namespace vmsls::mem {
namespace {

using test::MemorySystem;

struct WalkerFixture : ::testing::Test {
  MemorySystem ms;
  WalkerConfig wcfg;
  std::unique_ptr<PageWalker> walker;

  void make_walker() {
    walker = std::make_unique<PageWalker>(ms.sim, ms.bus, ms.pm, ms.as.page_table(), wcfg, "w");
  }

  WalkResult walk_sync(VirtAddr va) {
    WalkResult result;
    bool done = false;
    walker->walk(va, [&](const WalkResult& r) {
      result = r;
      done = true;
    });
    ms.run_all();
    EXPECT_TRUE(done);
    return result;
  }
};

TEST_F(WalkerFixture, SuccessfulWalkFindsFrame) {
  make_walker();
  ms.as.populate(0x10000, 4096);
  const auto r = walk_sync(0x10000);
  EXPECT_FALSE(r.fault);
  EXPECT_EQ(r.frame, ms.as.page_table().lookup(0x10000)->frame);
  EXPECT_TRUE(r.writable);
}

TEST_F(WalkerFixture, UnmappedPageFaults) {
  make_walker();
  const auto r = walk_sync(0x20000);
  EXPECT_TRUE(r.fault);
  EXPECT_EQ(ms.sim.stats().counter_value("w.faults"), 1u);
}

TEST_F(WalkerFixture, WalkReadsOnePerLevel) {
  wcfg.walk_cache_enabled = false;
  make_walker();
  ms.as.populate(0x10000, 4096);
  walk_sync(0x10000);
  // 4 KiB pages over 32-bit VA: 3 levels -> 3 memory reads.
  EXPECT_EQ(ms.sim.stats().counter_value("w.mem_reads"), 3u);
}

TEST_F(WalkerFixture, WalkCacheShortensRepeatWalks) {
  wcfg.walk_cache_enabled = true;
  make_walker();
  ms.as.populate(0x10000, 2 * 4096);
  walk_sync(0x10000);
  const u64 after_first = ms.sim.stats().counter_value("w.mem_reads");
  walk_sync(0x11000);  // same leaf table -> cached interior
  const u64 after_second = ms.sim.stats().counter_value("w.mem_reads");
  EXPECT_EQ(after_first, 3u);
  EXPECT_EQ(after_second - after_first, 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("w.cache_hits"), 1u);
}

TEST_F(WalkerFixture, FlushCacheForcesFullWalk) {
  wcfg.walk_cache_enabled = true;
  make_walker();
  ms.as.populate(0x10000, 4096);
  walk_sync(0x10000);
  walker->flush_cache();
  walk_sync(0x10000);
  EXPECT_EQ(ms.sim.stats().counter_value("w.mem_reads"), 6u);
}

TEST_F(WalkerFixture, ConcurrentWalksSerialize) {
  make_walker();
  ms.as.populate(0x10000, 4096);
  ms.as.populate(0x40000, 4096);
  Cycles done1 = 0, done2 = 0;
  walker->walk(0x10000, [&](const WalkResult&) { done1 = ms.sim.now(); });
  walker->walk(0x40000, [&](const WalkResult&) { done2 = ms.sim.now(); });
  ms.run_all();
  EXPECT_GT(done2, done1);
  EXPECT_GT(ms.sim.stats().histograms().at("w.queue_wait").max(), 0u);
}

TEST_F(WalkerFixture, FaultReportsLevel) {
  make_walker();
  // Nothing mapped at all: the ROOT entry is invalid -> fault at level 0.
  const auto r = walk_sync(0x30000);
  EXPECT_TRUE(r.fault);
  EXPECT_EQ(r.fault_level, 0u);
}

// --- MMU ---

struct MmuFixture : ::testing::Test, FaultSink {
  MemorySystem ms;
  WalkerConfig wcfg;
  std::unique_ptr<PageWalker> walker;
  std::unique_ptr<Mmu> mmu;
  std::vector<FaultRequest> faults;
  bool auto_service = false;

  void raise(FaultRequest req) override {
    if (auto_service) {
      ms.as.map_page(req.va);
      // Retry on a fresh event, as the OS path would.
      ms.sim.schedule_in(100, [retry = req.retry] { retry(); });
    }
    faults.push_back(std::move(req));
  }

  void make_mmu(MmuConfig cfg = {}) {
    walker = std::make_unique<PageWalker>(ms.sim, ms.bus, ms.pm, ms.as.page_table(), wcfg, "w");
    mmu = std::make_unique<Mmu>(ms.sim, *walker, cfg, "mmu", 0);
    mmu->set_fault_sink(this);
  }

  PhysAddr translate_sync(VirtAddr va, bool write = false) {
    PhysAddr out = ~0ull;
    mmu->translate(va, write, [&](PhysAddr pa) { out = pa; });
    ms.run_all();
    return out;
  }
};

TEST_F(MmuFixture, TranslationMatchesPageTable) {
  make_mmu();
  ms.as.populate(0x10000, 4096);
  const PhysAddr pa = translate_sync(0x10234);
  EXPECT_EQ(pa, *ms.as.translate(0x10234));
}

TEST_F(MmuFixture, TlbMissThenHit) {
  make_mmu();
  ms.as.populate(0x10000, 4096);
  translate_sync(0x10000);
  EXPECT_EQ(mmu->tlb().misses(), 1u);
  translate_sync(0x10008);
  EXPECT_EQ(mmu->tlb().hits(), 1u);
}

TEST_F(MmuFixture, HitIsFasterThanMiss) {
  make_mmu();
  ms.as.populate(0x10000, 4096);
  const Cycles t0 = ms.sim.now();
  translate_sync(0x10000);
  const Cycles miss_cost = ms.sim.now() - t0;
  const Cycles t1 = ms.sim.now();
  translate_sync(0x10000);
  const Cycles hit_cost = ms.sim.now() - t1;
  EXPECT_LT(hit_cost, miss_cost);
}

TEST_F(MmuFixture, FaultRaisedAndRetried) {
  auto_service = true;
  make_mmu();
  const PhysAddr pa = translate_sync(0x50000);
  EXPECT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].va, 0x50000u);
  EXPECT_NE(pa, ~0ull);
  EXPECT_EQ(pa, *ms.as.translate(0x50000));
}

TEST_F(MmuFixture, UnhandledFaultThrowsWithoutSink) {
  make_mmu();
  mmu->set_fault_sink(nullptr);
  mmu->translate(0x60000, false, [](PhysAddr) {});
  EXPECT_THROW(ms.run_all(), std::runtime_error);
}

TEST_F(MmuFixture, PassThroughWhenDisabled) {
  MmuConfig cfg;
  cfg.translation_enabled = false;
  make_mmu(cfg);
  EXPECT_EQ(translate_sync(0x12345678), 0x12345678u);
  EXPECT_EQ(mmu->tlb().misses(), 0u);  // TLB never consulted
}

TEST_F(MmuFixture, ShootdownForcesRewalk) {
  make_mmu();
  ms.as.populate(0x10000, 4096);
  translate_sync(0x10000);
  mmu->shootdown(0x10000);
  translate_sync(0x10000);
  EXPECT_EQ(mmu->tlb().misses(), 2u);
}

TEST_F(MmuFixture, ShootdownAllFlushes) {
  make_mmu();
  ms.as.populate(0x10000, 3 * 4096);
  for (VirtAddr va = 0x10000; va < 0x13000; va += 0x1000) translate_sync(va);
  mmu->shootdown_all();
  for (VirtAddr va = 0x10000; va < 0x13000; va += 0x1000) translate_sync(va);
  EXPECT_EQ(mmu->tlb().misses(), 6u);
}

TEST_F(MmuFixture, WritePermissionFaultOnReadOnlyPage) {
  auto_service = false;
  make_mmu();
  // Map read-only by hand.
  const u64 frame = *ms.frames.alloc();
  ms.as.page_table().map(0x70000, frame, /*writable=*/false);
  PhysAddr read_pa = translate_sync(0x70000, false);
  EXPECT_NE(read_pa, ~0ull);
  // Write translation raises a permission fault.
  mmu->translate(0x70000, true, [](PhysAddr) {});
  ms.run_all();
  EXPECT_EQ(faults.size(), 1u);
  EXPECT_TRUE(faults[0].is_write);
}

TEST_F(MmuFixture, OffsetPreservedThroughTranslation) {
  make_mmu();
  ms.as.populate(0x10000, 4096);
  const PhysAddr pa = translate_sync(0x10ABC);
  EXPECT_EQ(pa & 0xFFF, 0xABCu);
}

// --- accessed/dirty write-back charging (WalkerConfig::timed_ad_writeback) ---

TEST_F(WalkerFixture, AdBitFlipChargesOnePostedBusWrite) {
  make_walker();  // knob defaults on
  ms.as.populate(0x10000, 4096);
  EXPECT_EQ(ms.sim.stats().counter_value("bus.writes"), 0u);
  walk_sync(0x10000);  // leaf fill flips the accessed bit
  EXPECT_EQ(ms.sim.stats().counter_value("w.ad_writebacks"), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("bus.writes"), 1u);
  // Re-setting an already-set bit is free: no flip, no traffic.
  walk_sync(0x10000);
  EXPECT_EQ(ms.sim.stats().counter_value("w.ad_writebacks"), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("bus.writes"), 1u);
}

TEST_F(WalkerFixture, AdWritebackKnobOffIsFunctionalOnly) {
  // Before/after gate for the knob: same walk sequence, knob off — the
  // bits still get set (functional A/D tracking) but nothing is charged.
  wcfg.timed_ad_writeback = false;
  make_walker();
  ms.as.populate(0x10000, 4096);
  walk_sync(0x10000);
  walk_sync(0x10000);
  EXPECT_TRUE(ms.as.page_table().lookup(0x10000)->accessed);
  EXPECT_EQ(ms.sim.stats().counter_value("w.ad_writebacks"), 0u);
  EXPECT_EQ(ms.sim.stats().counter_value("bus.writes"), 0u);
}

TEST_F(MmuFixture, TlbHitDirtyUpdateChargesThroughTheWalkerFunnel) {
  make_mmu();
  ms.as.populate(0x10000, 4096);
  translate_sync(0x10000, /*write=*/false);  // walk: accessed flips -> 1 write
  EXPECT_EQ(ms.sim.stats().counter_value("w.ad_writebacks"), 1u);
  // TLB hit with a write access: the dirty bit flips without any walk, and
  // the MMU funnels the charge through the walker's note_ad_update.
  translate_sync(0x10008, /*write=*/true);
  EXPECT_EQ(mmu->tlb().hits(), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("w.ad_writebacks"), 2u);
  EXPECT_TRUE(ms.as.page_table().lookup(0x10000)->dirty);
  // Further writes to the now-dirty page stay free.
  translate_sync(0x10010, /*write=*/true);
  EXPECT_EQ(ms.sim.stats().counter_value("w.ad_writebacks"), 2u);
}

}  // namespace
}  // namespace vmsls::mem

// Randomized COW / page-sharing storms, 20 seeds.
//
// One parent forks three workers over a kGlobal FramePool with a tight
// budget, then a seeded mix of operations hammers the sharing machinery:
// driven write faults on COW pages, driven read faults on shared-file and
// evicted pages, software stores to MAP_SHARED pages, and random external
// evictions. After every storm the invariants that define the sharing
// model are re-checked:
//
//   * refcount identity — per-frame mapping counts reconstructed from the
//     address spaces equal FrameAllocator::refcount, and the pool's
//     mapped/resident aggregates match,
//   * fault ledger — per pager, driven unmapped faults == swap_ins +
//     file_reads + zero_fills + share_hits + inherited_fills, and driven
//     permission faults == cow_copies + cow_upgrades,
//   * unmap partition — per pager, bucket entries == pager evictions +
//     externally evicted pages (each unmap lands in exactly one bucket),
//   * content — every process reads back exactly the value the reference
//     model last wrote for it (divergence is never lost, sharing is never
//     broken), and
//   * determinism — each seed rerun on a fresh simulator is bit-identical
//     down to the full stat snapshot.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "mem/backing_file.hpp"
#include "mem/frame_share.hpp"
#include "mem/paging/frame_pool.hpp"
#include "mem/paging/pager.hpp"
#include "rt/process.hpp"
#include "sls/sharded_runner.hpp"
#include "test_util.hpp"

namespace vmsls::paging {
namespace {

constexpr u64 kPageSz = 4096;
constexpr u64 kProcs = 4;       // parent + 3 forked workers
constexpr u64 kFilePages = 8;   // MAP_SHARED region
constexpr u64 kAnonPages = 4;   // COW pages per process
constexpr u64 kOps = 120;

struct StormResult {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> snapshot;
};

struct Storm {
  sim::Simulator sim;
  mem::PhysicalMemory pm{32 * MiB};
  mem::FrameAllocator frames{0, (32 * MiB) / kPageSz, kPageSz};
  mem::FileStore files{kPageSz};
  mem::FrameShareIndex share;
  FramePool pool;
  std::vector<std::unique_ptr<mem::AddressSpace>> spaces;
  std::vector<std::unique_ptr<rt::Process>> procs;
  std::vector<std::unique_ptr<Pager>> pagers;
  // Driver-side classification + the reference content model.
  std::vector<u64> driven_reads{std::vector<u64>(kProcs, 0)};
  std::vector<u64> driven_cows{std::vector<u64>(kProcs, 0)};
  std::vector<u64> external_evicted{std::vector<u64>(kProcs, 0)};
  std::vector<std::vector<u64>> anon_model;  // [proc][page] expected value
  std::vector<u64> file_model;               // [page] expected value (shared)
  VirtAddr file_base = 0, anon_base = 0, zero_base = 0;

  Storm() : pool(sim, pool_cfg(), "pool") {
    for (u64 i = 0; i < kProcs; ++i) {
      auto as = std::make_unique<mem::AddressSpace>(pm, frames, mem::PageTableConfig{});
      as->set_share_index(&share);
      auto pr = std::make_unique<rt::Process>(sim, *as, "w" + std::to_string(i));
      PagerConfig cfg;
      cfg.budget_mode = BudgetMode::kGlobal;
      auto pg = std::make_unique<Pager>(sim, *pr, cfg, "w" + std::to_string(i) + ".pager");
      pool.attach(*pg);
      spaces.push_back(std::move(as));
      procs.push_back(std::move(pr));
      pagers.push_back(std::move(pg));
    }
    // Parent image: a seeded MAP_SHARED file plus dirty anonymous pages.
    mem::BackingFile& file = files.create("storm.dat", kFilePages * kPageSz);
    file_model.assign(kFilePages, 0);
    for (u64 p = 0; p < kFilePages; ++p) {
      std::vector<u8> block(kPageSz, 0);
      const u64 v = 0xF0F0 + p;
      std::memcpy(block.data(), &v, 8);
      file.write(p * kPageSz, block);
      file_model[p] = v;
    }
    file_base = procs[0]->mmap(file, 0, kFilePages * kPageSz, /*shared=*/true);
    anon_base = spaces[0]->alloc(kAnonPages * kPageSz, kPageSz);
    zero_base = spaces[0]->alloc(2 * kPageSz, kPageSz);
    anon_model.assign(kProcs, std::vector<u64>(kAnonPages, 0));
    for (u64 p = 0; p < kAnonPages; ++p) {
      const u64 v = 0xA000 + p;
      spaces[0]->write_u64(anon_base + p * kPageSz, v);
      for (u64 i = 0; i < kProcs; ++i) anon_model[i][p] = v;
    }
    for (u64 p = 0; p < kFilePages / 2; ++p)  // half the file resident at fork
      (void)spaces[0]->read_u64(file_base + p * kPageSz);
    for (u64 i = 1; i < kProcs; ++i) procs[0]->fork(*procs[i]);
    test::run_until_drained(sim);
  }

  static FramePoolConfig pool_cfg() {
    FramePoolConfig cfg;
    cfg.mode = BudgetMode::kGlobal;
    cfg.total_frames = 14;  // well under the ~28-mapping peak: evictions flow
    cfg.policy = PolicyKind::kClock;
    return cfg;
  }

  /// Drives one fault synchronously (drain after issue), classifying it the
  /// way the ledgers partition: unmapped -> read bucket, resident
  /// read-only + write -> COW bucket.
  void drive(u64 w, VirtAddr va, bool is_write) {
    mem::AddressSpace& as = *spaces[w];
    const auto pte = as.page_table().lookup(va);
    if (pte && (!is_write || pte->writable)) return;  // nothing to fault
    if (!pte)
      ++driven_reads[w];
    else
      ++driven_cows[w];
    bool done = false;
    pagers[w]->handle_fault(va, is_write, [&] {
      if (!as.is_mapped(va)) procs[w]->map_in(va);
      done = true;
    });
    test::run_until_drained(sim);
    ASSERT_TRUE(done);
  }

  void run_ops(u64 seed) {
    std::mt19937 rng(seed);
    for (u64 op = 0; op < kOps; ++op) {
      const u64 w = rng() % kProcs;
      switch (rng() % 6) {
        case 0: {  // COW (or refault) write to an anonymous page
          const u64 p = rng() % kAnonPages;
          const VirtAddr va = anon_base + p * kPageSz;
          drive(w, va, /*is_write=*/true);
          const u64 v = 0xC0DE0000 + (w << 8) + (rng() & 0xFF);
          spaces[w]->write_u64(va, v);
          anon_model[w][p] = v;
          break;
        }
        case 1: {  // driven read fault on a file page
          const u64 p = rng() % kFilePages;
          drive(w, file_base + p * kPageSz, /*is_write=*/false);
          break;
        }
        case 2: {  // software store to a MAP_SHARED page: visible machine-wide
          const u64 p = rng() % kFilePages;
          const u64 v = 0x5A5A0000 + (w << 8) + (rng() & 0xFF);
          spaces[w]->write_u64(file_base + p * kPageSz, v);
          file_model[p] = v;
          break;
        }
        case 3: {  // external eviction (setup-style, not pager-driven)
          const u64 p = rng() % (kFilePages + kAnonPages);
          const VirtAddr va = (p < kFilePages ? file_base + p * kPageSz
                                              : anon_base + (p - kFilePages) * kPageSz);
          external_evicted[w] += procs[w]->evict(va, kPageSz);
          break;
        }
        case 4: {  // driven read fault on an evicted/fresh anon page
          const u64 p = rng() % kAnonPages;
          drive(w, anon_base + p * kPageSz, /*is_write=*/false);
          break;
        }
        default: {  // zero-fill territory
          const VirtAddr va = zero_base + (rng() % 2) * kPageSz;
          drive(w, va, /*is_write=*/false);
          break;
        }
      }
    }
    test::run_until_drained(sim);
  }

  void check_invariants() {
    // Refcount identity.
    std::map<u64, u64> per_frame;
    u64 mappings = 0;
    for (const auto& as : spaces)
      as->for_each_resident([&](u64 vpn) {
        ++per_frame[*as->frame_of(vpn)];
        ++mappings;
      });
    EXPECT_EQ(mappings, pool.mapped_pages());
    EXPECT_EQ(per_frame.size(), pool.resident_pages());
    for (const auto& [frame, count] : per_frame) EXPECT_EQ(frames.refcount(frame), count);

    // Ledgers.
    for (u64 w = 0; w < kProcs; ++w) {
      const Pager& pg = *pagers[w];
      EXPECT_EQ(pg.swap_ins() + pg.file_reads() + pg.zero_fills() + pg.share_hits() +
                    pg.inherited_fills(),
                driven_reads[w])
          << "read-fault ledger, w" << w;
      EXPECT_EQ(pg.cow_copies() + pg.cow_upgrades(), driven_cows[w]) << "COW ledger, w" << w;
      EXPECT_EQ(pg.swap_releases() + pg.file_drops() + pg.file_writebacks() +
                    pg.shared_releases(),
                pg.evictions() + external_evicted[w])
          << "unmap partition, w" << w;
    }

    // Content: divergence preserved, sharing coherent.
    for (u64 w = 0; w < kProcs; ++w)
      for (u64 p = 0; p < kAnonPages; ++p)
        EXPECT_EQ(spaces[w]->read_u64(anon_base + p * kPageSz), anon_model[w][p])
            << "anon w" << w << " p" << p;
    for (u64 w = 0; w < kProcs; ++w)
      for (u64 p = 0; p < kFilePages; ++p)
        EXPECT_EQ(spaces[w]->read_u64(file_base + p * kPageSz), file_model[p])
            << "file w" << w << " p" << p;
  }
};

StormResult run_storm(u64 seed) {
  Storm storm;
  storm.run_ops(seed);
  storm.check_invariants();
  StormResult r;
  r.cycles = storm.sim.now();
  r.events = storm.sim.events_executed();
  r.snapshot = storm.sim.stats().snapshot();
  return r;
}

TEST(CowStress, TwentySeedStormsKeepInvariantsAndDeterminism) {
  for (u64 seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const StormResult a = run_storm(seed);
    const StormResult b = run_storm(seed);  // fresh simulator, same seed
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.snapshot, b.snapshot);
  }
}

}  // namespace
}  // namespace vmsls::paging

// Sharded multi-simulator execution: shards=1 and shards=N must be
// bit-identical — per-shard cycles, event counts, the merged stat registry,
// and even a traced shard's event stream may not change with the worker
// count. This is the determinism contract that lets the fig12 grid (and any
// future sweep) fan out across host threads without giving up reproducible
// paper numbers.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/frames.hpp"
#include "mem/paging/pager.hpp"
#include "mem/physmem.hpp"
#include "rt/process.hpp"
#include "sls/sharded_runner.hpp"
#include "test_util.hpp"
#include "util/parallel.hpp"

namespace vmsls {
namespace {

struct MemorySink final : sim::TraceSink {
  std::vector<sim::TraceEvent> events;  // names are literals; safe to retain
  void on_event(const sim::TraceContext&, const sim::TraceEvent& ev) override {
    events.push_back(ev);
  }
};

/// One grid point: a process under budget pressure faulting through a
/// strided chain — the fig12 shape (demand paging against a replacement
/// policy and a timed swap path) at unit-test scale.
struct Scenario {
  u64 pages = 64;
  u64 budget = 32;
  u64 stride = 1;
  bool dirty = false;
  unsigned readahead = 0;
};

/// Builds and drives one scenario instance on `sim`. Everything lives on
/// this function's stack: nothing is shared between shards.
void run_scenario(sim::Simulator& sim, const Scenario& sc) {
  mem::PhysicalMemory pm{8 * MiB};
  mem::FrameAllocator frames{0, (8 * MiB) / (4 * KiB), 4 * KiB};
  mem::AddressSpace as{pm, frames, mem::PageTableConfig{}};
  rt::Process process{sim, as, "proc"};
  paging::PagerConfig cfg;
  cfg.frame_budget = sc.budget;
  cfg.policy = paging::PolicyKind::kClock;
  cfg.swap.read_latency = 50;
  cfg.swap.write_latency = 100;
  cfg.swap.bytes_per_cycle = 64;
  cfg.swap.readahead = sc.readahead;
  if (sc.readahead > 0) cfg.swap.sched = paging::SwapSchedPolicy::kPriority;
  paging::Pager pager{sim, process, cfg, "pager"};

  const VirtAddr base = as.alloc(sc.pages * as.page_bytes(), as.page_bytes());
  for (u64 p = 0; p < sc.pages; ++p) as.write_u64(base + p * as.page_bytes(), p);
  if (!sc.dirty)
    for (u64 p = 0; p < sc.pages; ++p) as.page_table().test_and_clear_dirty(base + p * as.page_bytes());
  process.evict(base, sc.pages * as.page_bytes());

  const u64 faults = sc.pages * 2;
  u64 next = 0;
  std::function<void()> chain = [&] {
    if (next >= faults) return;
    const VirtAddr a = base + ((next * sc.stride) % sc.pages) * as.page_bytes();
    ++next;
    pager.handle_fault(a, sc.dirty, [&, a] {
      // A fault on a readahead landing resolves with the page already
      // resident — only map what is genuinely absent.
      if (!as.is_mapped(a)) process.map_in(a);
      if (sc.dirty) as.page_table().set_accessed_dirty(a, /*dirty=*/true);
      chain();
    });
  };
  chain();
  test::run_until_drained(sim);
  if (next != faults) throw std::runtime_error("sharded scenario stalled");
}

std::vector<Scenario> small_grid() {
  return {
      {64, 32, 1, false, 0},  {64, 32, 1, true, 0},  {64, 16, 3, false, 0},
      {96, 24, 5, true, 0},   {64, 64, 9, false, 8},  // readahead point
      {128, 32, 7, false, 2},
  };
}

std::vector<sls::Shard> make_shards(const std::vector<Scenario>& grid) {
  std::vector<sls::Shard> shards;
  for (std::size_t i = 0; i < grid.size(); ++i)
    shards.push_back({"g" + std::to_string(i),
                      [&grid, i](sim::Simulator& sim) { run_scenario(sim, grid[i]); }});
  return shards;
}

void expect_reports_identical(const sls::ShardedReport& a, const sls::ShardedReport& b) {
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].name, b.shards[i].name);
    EXPECT_EQ(a.shards[i].cycles, b.shards[i].cycles) << "shard " << a.shards[i].name;
    EXPECT_EQ(a.shards[i].events, b.shards[i].events) << "shard " << a.shards[i].name;
  }
  // Full merged-registry comparison, entry for entry (snapshot is
  // name-ordered, so equality here is equality of every stat).
  EXPECT_EQ(a.stats.snapshot(), b.stats.snapshot());
}

TEST(ShardedRunner, ShardsNBitIdenticalToSerial) {
  const auto grid = small_grid();
  const auto shards = make_shards(grid);
  const sls::ShardedReport serial = sls::ShardedRunner(1).run(shards);
  const sls::ShardedReport four = sls::ShardedRunner(4).run(shards);
  const sls::ShardedReport eight = sls::ShardedRunner(8).run(shards);  // workers > shards
  expect_reports_identical(serial, four);
  expect_reports_identical(serial, eight);
  // The scenarios really ran: every shard simulated time and faulted.
  for (const auto& row : serial.shards) {
    EXPECT_GT(row.cycles, 0u) << row.name;
    EXPECT_GT(row.events, 0u) << row.name;
  }
  EXPECT_GT(serial.stats.counter_value("g0.pager.swap_ins"), 0u);
}

TEST(ShardedRunner, TracedShardIsByteStableAcrossWorkerCounts) {
  // One shard runs traced (its own simulator, its own sink): the captured
  // event stream — kinds, timestamps, ids — must not depend on how many
  // host workers the grid ran on, and tracing one shard must not perturb
  // the untraced shards either.
  const auto grid = small_grid();
  auto capture = [&grid](unsigned workers) {
    auto sink = std::make_shared<MemorySink>();
    std::vector<sls::Shard> shards = make_shards(grid);
    shards[2].body = [&grid, sink](sim::Simulator& sim) {
      sim.trace().set_sink(sink.get());
      run_scenario(sim, grid[2]);
      sim.trace().set_sink(nullptr);
    };
    const sls::ShardedReport report = sls::ShardedRunner(workers).run(shards);
    return std::make_pair(report, sink);
  };
  auto [serial, serial_sink] = capture(1);
  auto [four, four_sink] = capture(4);
  expect_reports_identical(serial, four);
  ASSERT_FALSE(serial_sink->events.empty());
  ASSERT_EQ(serial_sink->events.size(), four_sink->events.size());
  for (std::size_t i = 0; i < serial_sink->events.size(); ++i) {
    const auto& a = serial_sink->events[i];
    const auto& b = four_sink->events[i];
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << "event " << i;
    EXPECT_EQ(a.ts, b.ts) << "event " << i;
    EXPECT_EQ(a.id, b.id) << "event " << i;
    EXPECT_EQ(a.aux, b.aux) << "event " << i;
    EXPECT_EQ(std::string(a.name), std::string(b.name)) << "event " << i;
  }
}

TEST(ShardedRunner, VerifyAgainstSerialCatchesDivergence) {
  const auto grid = small_grid();
  const auto shards = make_shards(grid);
  sls::ShardedRunner runner(4);
  sls::ShardedReport report = runner.run(shards);
  EXPECT_NO_THROW(runner.verify_against_serial(shards, report));
  report.shards[1].cycles += 1;  // a shard that "drifted"
  EXPECT_THROW(runner.verify_against_serial(shards, report), std::runtime_error);
}

TEST(ShardedRunner, MergePrefixesNamespaceEveryShard) {
  // Two shards recording the same stat names must land in disjoint
  // namespaces — the property that makes the merged registry readable as
  // "the registry one driver would have built".
  std::vector<sls::Shard> shards;
  for (int i = 0; i < 2; ++i)
    shards.push_back({"s" + std::to_string(i), [](sim::Simulator& sim) {
                        sim.stats().counter("hits").add(7);
                        sim.stats().histogram("lat").record(4);
                      }});
  const sls::ShardedReport r = sls::ShardedRunner(2).run(shards);
  EXPECT_EQ(r.stats.counter_value("s0.hits"), 7u);
  EXPECT_EQ(r.stats.counter_value("s1.hits"), 7u);
  EXPECT_FALSE(r.stats.has_counter("hits"));
  const auto snap = r.stats.snapshot();
  EXPECT_EQ(snap.at("s0.lat.count"), 1.0);
  EXPECT_EQ(snap.at("s1.lat.count"), 1.0);
}

TEST(ParallelFor, CoversEveryIndexOnceAndRethrowsLowest) {
  std::vector<int> hits(257, 0);
  parallel_for(4, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;

  // The surfaced failure is the lowest-index throw, independent of
  // scheduling; later indices still complete (no early abort).
  std::vector<int> ran(64, 0);
  try {
    parallel_for(4, ran.size(), [&](std::size_t i) {
      ++ran[i];
      if (i == 5 || i == 41) throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx 5");
  }
  for (std::size_t i = 0; i < ran.size(); ++i) EXPECT_EQ(ran[i], 1) << i;

  parallel_for(8, 0, [](std::size_t) { FAIL() << "n=0 must not invoke fn"; });
}

}  // namespace
}  // namespace vmsls

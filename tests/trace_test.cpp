// Cycle-domain tracing & telemetry: TraceContext units, the determinism
// contract (a traced run is bit-identical to an untraced one), span balance
// and causal fault decomposition on a pressured full-system run, the JSON
// writer's output shape, and the TelemetrySampler's cadence/drain behavior.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "mem/paging/swap_scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"
#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace vmsls {
namespace {

struct MemorySink final : sim::TraceSink {
  std::vector<sim::TraceEvent> events;  // names are literals; safe to retain
  void on_event(const sim::TraceContext&, const sim::TraceEvent& ev) override {
    events.push_back(ev);
  }
};

// --- TraceContext units ----------------------------------------------------

TEST(TraceContext, DisabledIsInert) {
  sim::Simulator sim;
  auto& tr = sim.trace();
  EXPECT_FALSE(tr.enabled());
  // new_id() hands out 0 while disabled and accumulates no state, so an
  // untraced run's trace context stays bit-identical to a fresh one.
  EXPECT_EQ(tr.new_id(), 0u);
  EXPECT_EQ(tr.new_id(), 0u);
  EXPECT_EQ(tr.last_id(), 0u);
  const auto t = tr.track("x");
  VMSLS_TRACE_BEGIN(tr, t, "s", 1);  // no sink: must be a no-op
  VMSLS_TRACE_END(tr, t, "s", 1);
  VMSLS_TRACE_COUNTER(tr, t, "c", 3.0);
  EXPECT_EQ(tr.last_id(), 0u);
}

TEST(TraceContext, TracksRegisterOnceAndResolve) {
  sim::Simulator sim;
  const auto a = sim.trace().track("pager");
  const auto b = sim.trace().track("swap");
  EXPECT_NE(a, b);
  EXPECT_EQ(sim.trace().track("pager"), a);  // idempotent lookup
  EXPECT_EQ(sim.trace().track_name(b), "swap");
  EXPECT_EQ(sim.trace().track_names().size(), 2u);
}

TEST(TraceContext, IdsMonotoneWhileEnabled) {
  sim::Simulator sim;
  MemorySink sink;
  sim.trace().set_sink(&sink);
  EXPECT_TRUE(sim.trace().enabled());
  EXPECT_EQ(sim.trace().new_id(), 1u);
  EXPECT_EQ(sim.trace().new_id(), 2u);
  sim.trace().set_sink(nullptr);
  EXPECT_EQ(sim.trace().new_id(), 0u);
}

TEST(TraceContext, EventsCarrySimulatedTime) {
  sim::Simulator sim;
  MemorySink sink;
  sim.trace().set_sink(&sink);
  const auto t = sim.trace().track("comp");
  sim.schedule_in(7, [&] { sim.trace().instant(t, "mark", 0, 42); });
  test::run_until_drained(sim);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].ts, 7u);
  EXPECT_EQ(sink.events[0].aux, 42u);
  sim.trace().set_sink(nullptr);
}

// --- full-system runs under memory pressure --------------------------------

struct RunResult {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> stats;
  std::vector<sim::TraceEvent> trace;
  std::vector<std::string> tracks;
};

/// pointer_chase cold-started against an 8-frame budget with priority swap
/// scheduling and readahead: plenty of faults, evictions, writebacks, and
/// prefetches to exercise every emission site.
RunResult run_pressured(bool traced) {
  workloads::WorkloadParams p;
  p.n = 2048;
  p.seed = 3;
  const auto wl = workloads::make_pointer_chase(p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  sls::PlatformSpec plat = sls::zynq7020();
  plat.pager.frame_budget = 8;
  plat.pager.swap.sched = paging::SwapSchedPolicy::kPriority;
  plat.pager.swap.readahead = 2;
  sls::SynthesisFlow flow(plat);
  const auto image = flow.synthesize(app);

  sim::Simulator sim;
  MemorySink sink;
  if (traced) sim.trace().set_sink(&sink);
  auto system = image.elaborate(sim);
  wl.setup(*system);
  for (const auto& buf : app.buffers)
    system->process().evict(system->buffer(buf.name), buf.bytes);
  system->start_all();
  RunResult r;
  r.cycles = system->run_to_completion();
  test::run_until_drained(sim);  // trailing writebacks/prefetches retire
  EXPECT_TRUE(wl.verify(*system));
  r.events = sim.events_executed();
  r.stats = sim.stats().snapshot();
  if (traced) {
    r.tracks = sim.trace().track_names();
    sim.trace().set_sink(nullptr);
  }
  r.trace = std::move(sink.events);
  return r;
}

TEST(Trace, TracedRunIsBitIdenticalToUntraced) {
  const RunResult off = run_pressured(false);
  const RunResult on = run_pressured(true);
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.stats, on.stats);  // every counter and histogram moment
  EXPECT_TRUE(off.trace.empty());
  EXPECT_GT(on.trace.size(), 0u);
}

using SpanKey = std::tuple<sim::TraceTrack, std::string, u64>;

TEST(Trace, SpansBalanceAndFaultIdsAreCausal) {
  const RunResult r = run_pressured(true);
  std::map<SpanKey, Cycles> open;
  u64 prev_fault_id = 0;
  Cycles prev_fault_ts = 0;
  u64 fault_begins = 0;
  for (const auto& ev : r.trace) {
    if (ev.kind == sim::TraceEvent::Kind::kBegin) {
      EXPECT_TRUE(open.emplace(SpanKey{ev.track, ev.name, ev.id}, ev.ts).second)
          << "duplicate begin for " << ev.name << " id=" << ev.id;
      if (std::string(ev.name) == "fault") {
        // IDs are allocated at fault admission, so begin order is both
        // time-ordered and ID-ordered: causality reads straight off the file.
        EXPECT_GT(ev.id, prev_fault_id);
        EXPECT_GE(ev.ts, prev_fault_ts);
        prev_fault_id = ev.id;
        prev_fault_ts = ev.ts;
        ++fault_begins;
      }
    } else if (ev.kind == sim::TraceEvent::Kind::kEnd) {
      EXPECT_EQ(open.erase(SpanKey{ev.track, ev.name, ev.id}), 1u)
          << "end without begin for " << ev.name << " id=" << ev.id;
    }
  }
  EXPECT_TRUE(open.empty()) << open.size() << " spans left open";
  EXPECT_GT(fault_begins, 0u);
}

TEST(Trace, FaultSpansDecomposeIntoSubSpans) {
  const RunResult r = run_pressured(true);
  struct Durations {
    Cycles fault = 0, evict = 0, queue = 0, io = 0;
    bool have_fault = false;
  };
  std::map<SpanKey, Cycles> open;
  std::map<u64, Durations> by_id;
  for (const auto& ev : r.trace) {
    const SpanKey key{ev.track, ev.name, ev.id};
    if (ev.kind == sim::TraceEvent::Kind::kBegin) {
      open[key] = ev.ts;
    } else if (ev.kind == sim::TraceEvent::Kind::kEnd) {
      const Cycles dur = ev.ts - open.at(key);
      auto& d = by_id[ev.id];
      const std::string name = ev.name;
      if (name == "fault") {
        d.fault = dur;
        d.have_fault = true;
      } else if (name == "evict") {
        d.evict += dur;
      } else if (name == "queue") {
        d.queue += dur;
      } else if (name == "io") {
        d.io += dur;
      }
    }
  }
  u64 faults = 0, with_io = 0;
  for (const auto& [id, d] : by_id) {
    if (!d.have_fault) continue;  // prefetch/writeback ids carry no fault span
    ++faults;
    // The span-sum identity: a fault's service latency is exactly its frame
    // reservation (evict), queue wait, and device transfer — no dark cycles.
    EXPECT_EQ(d.fault, d.evict + d.queue + d.io) << "fault id " << id;
    if (d.io > 0) ++with_io;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(with_io, 0u);  // at least one demand swap-in decomposed fully
}

TEST(Trace, MaxFaultSpanMatchesFaultStallHistogram) {
  const RunResult r = run_pressured(true);
  std::map<SpanKey, Cycles> open;
  Cycles max_span = 0;
  for (const auto& ev : r.trace) {
    if (std::string(ev.name) != "fault") continue;
    const SpanKey key{ev.track, ev.name, ev.id};
    if (ev.kind == sim::TraceEvent::Kind::kBegin) open[key] = ev.ts;
    else if (ev.kind == sim::TraceEvent::Kind::kEnd)
      max_span = std::max(max_span, ev.ts - open.at(key));
  }
  EXPECT_EQ(static_cast<double>(max_span), r.stats.at("pager.fault_stall.max"));
}

// --- JSON writer -----------------------------------------------------------

TEST(JsonTraceWriter, WellFormedAndBalanced) {
  std::ostringstream os;
  sim::Simulator sim;
  sim::JsonTraceWriter writer(os);
  sim.trace().set_sink(&writer);
  const auto t = sim.trace().track("comp \"quoted\"");
  const u64 id = sim.trace().new_id();
  sim.trace().begin(t, "span", id, 7);
  sim.trace().counter(t, "depth", 3.5);
  sim.trace().instant(t, "mark", id, 9);
  sim.trace().end(t, "span", id);
  writer.finish(sim.trace());
  writer.finish(sim.trace());  // idempotent
  sim.trace().set_sink(nullptr);

  const std::string json = os.str();
  EXPECT_EQ(writer.events_written(), 4u);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  auto count = [&json](const std::string& needle) {
    u64 n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"b\""), count("\"ph\":\"e\""));  // spans balance
  EXPECT_EQ(count("{"), count("}"));
  EXPECT_NE(json.find("\"comp \\\"quoted\\\"\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

// --- telemetry sampler -----------------------------------------------------

TEST(TelemetrySampler, SamplesAtCadenceThenDisarms) {
  sim::Simulator sim;
  sim::TelemetrySampler ts(sim, 10);
  u64 x = 0;
  ts.add_probe("x", [&x] { return static_cast<double>(x); });
  ts.add_rate_probe("dx", [&x] { return static_cast<double>(x); });
  for (u64 i = 1; i <= 10; ++i) sim.schedule_in(i * 4, [&x] { ++x; });
  ts.start();
  EXPECT_TRUE(ts.armed());
  test::run_until_drained(sim);  // the sampler must not keep the run alive
  EXPECT_FALSE(ts.armed());

  const auto& rows = ts.rows();
  ASSERT_FALSE(rows.empty());
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(rows[i].cycle, 10 * i);  // exact cadence from cycle 0
  EXPECT_GE(rows.back().cycle, 40u);  // covers the last workload event
  EXPECT_DOUBLE_EQ(rows.back().values[0], 10.0);
  double rate_sum = 0;
  for (const auto& row : rows) rate_sum += row.values[1];
  EXPECT_DOUBLE_EQ(rate_sum, 10.0);  // deltas telescope back to the total

  std::ostringstream csv;
  ts.write_csv(csv);
  EXPECT_EQ(csv.str().substr(0, 11), "cycle,x,dx\n");
}

TEST(TelemetrySampler, ValidatesConfiguration) {
  sim::Simulator sim;
  EXPECT_THROW(sim::TelemetrySampler(sim, 0), std::invalid_argument);
  sim::TelemetrySampler ts(sim, 5);
  ts.add_probe("x", [] { return 1.0; });
  ts.start();
  EXPECT_THROW(ts.start(), std::logic_error);  // double start
  EXPECT_THROW(ts.add_probe("y", [] { return 2.0; }), std::logic_error);
  test::run_until_drained(sim);
}

TEST(TelemetrySampler, MirrorsSamplesOntoCounterTracks) {
  sim::Simulator sim;
  MemorySink sink;
  sim.trace().set_sink(&sink);
  sim::TelemetrySampler ts(sim, 10);
  ts.add_probe("x", [] { return 2.5; });
  sim.schedule_in(15, [] {});
  ts.start();
  test::run_until_drained(sim);
  sim.trace().set_sink(nullptr);
  u64 counters = 0;
  for (const auto& ev : sink.events)
    if (ev.kind == sim::TraceEvent::Kind::kCounter) {
      EXPECT_DOUBLE_EQ(ev.value, 2.5);
      ++counters;
    }
  EXPECT_EQ(counters, ts.rows().size());
}

}  // namespace
}  // namespace vmsls

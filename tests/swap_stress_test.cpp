// Seeded randomized stress test for the shared swap I/O subsystem: four
// processes page against ONE SwapScheduler (priority dispatch + readahead)
// while their pageout daemons tick, so demand reads, prefetch reads, and
// background writebacks from different owners interleave freely in the
// shared request queue. After every run the queue must drain, the
// per-owner swap ledgers and the residency ledgers must balance, and the
// same seed must reproduce the run bit-identically — the determinism
// contract the fig12 experiment harness rests on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/paging/pager.hpp"
#include "mem/paging/swap_scheduler.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace vmsls::paging {
namespace {

constexpr unsigned kProcs = 4;
constexpr u64 kRegionPages = 20;
constexpr unsigned kOps = 60;  // per run, spread across the processes

struct StressSnapshot {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> stats;

  bool operator==(const StressSnapshot& o) const {
    return cycles == o.cycles && events == o.events && stats == o.stats;
  }
};

/// One member process paging against the shared device.
struct Member {
  std::unique_ptr<mem::AddressSpace> as;
  std::unique_ptr<rt::Process> process;
  std::unique_ptr<Pager> pager;
  VirtAddr base = 0;
  u64 maps_at_start = 0;
};

StressSnapshot run_chaos(u64 seed) {
  test::MemorySystem ms;
  rt::OsModel os{ms.sim, rt::OsConfig{}, "os"};

  SwapConfig swap_cfg;
  swap_cfg.read_latency = 400;
  swap_cfg.write_latency = 700;
  swap_cfg.bytes_per_cycle = 16;
  swap_cfg.sched = SwapSchedPolicy::kPriority;
  swap_cfg.readahead = 2;
  swap_cfg.writeback_starvation_limit = 6;
  SwapScheduler sched(ms.sim, swap_cfg, 4096, "swap");

  PagerConfig pc;
  pc.frame_budget = 6;
  pc.policy = PolicyKind::kClock;
  pc.swap = swap_cfg;
  pc.pageout_interval = 500;
  pc.pageout_watermark_pct = 50;
  pc.ws_interval = 1100;

  std::vector<Member> members(kProcs);
  for (unsigned i = 0; i < kProcs; ++i) {
    Member& m = members[i];
    const std::string name = "p" + std::to_string(i);
    m.as = std::make_unique<mem::AddressSpace>(ms.pm, ms.frames, mem::PageTableConfig{});
    m.process = std::make_unique<rt::Process>(ms.sim, *m.as, name);
    m.pager = std::make_unique<Pager>(ms.sim, *m.process, pc, name + ".pager", &sched);
    m.pager->set_os(&os, rt::OsConfig{}.daemon_service);
    // A cold region with known contents: every later touch pays the shared
    // device, and the in-order eviction clusters the slots for readahead.
    m.base = m.as->alloc(kRegionPages * 4096, 4096);
    for (u64 p = 0; p < kRegionPages; ++p)
      m.as->write_u64(m.base + p * 4096, (u64{i} << 32) | p);
    m.process->evict(m.base, kRegionPages * 4096);
    m.maps_at_start = m.as->faults_serviced();
  }

  Rng rng(seed);
  auto issued = std::make_shared<u64>(0);
  auto completed = std::make_shared<u64>(0);

  std::function<void(unsigned)> next_op = [&](unsigned remaining) {
    if (remaining == 0) return;
    const u64 kind = rng.below(100);
    if (kind < 80) {
      // Demand fault from a random process on a random page, sometimes
      // dirtying it — the cross-owner traffic the shared queue arbitrates.
      Member& m = members[rng.below(kProcs)];
      const VirtAddr va = m.base + rng.below(kRegionPages) * 4096;
      const bool write = rng.chance(0.4);
      ++*issued;
      mem::AddressSpace& as = *m.as;
      m.pager->handle_fault(va, write, [&as, va, write, completed] {
        if (!as.is_mapped(va)) as.map_page(va, /*writable=*/true);
        if (write) as.page_table().set_accessed_dirty(va, /*dirty=*/true);
        ++*completed;
      });
    }  // else: an idle gap — daemon ticks, prefetches, and writebacks drain
    const Cycles gap = rng.range(80, 2200);
    ms.sim.schedule_in(gap, [&next_op, remaining] { next_op(remaining - 1); });
  };
  next_op(kOps);

  StressSnapshot s;
  s.events = test::run_until_drained(ms.sim, /*max_cycles=*/500'000'000ull);

  // --- post-drain invariants ---
  EXPECT_EQ(*completed, *issued) << "seed " << seed;
  EXPECT_FALSE(sched.busy()) << "seed " << seed;
  u64 total_reads = 0, total_writes = 0;
  for (unsigned i = 0; i < kProcs; ++i) {
    const Member& m = members[i];
    // Per-owner swap ledger on the SHARED device: this owner's reads are
    // exactly its demand swap-ins plus its issued prefetches, and its
    // writes are exactly its fault-path writebacks plus daemon pageouts —
    // nobody's traffic is misattributed across the queue.
    EXPECT_EQ(m.pager->swap().reads(), m.pager->swap_ins() + m.pager->prefetches())
        << "seed " << seed << " p" << i;
    EXPECT_EQ(m.pager->swap().writes(), m.pager->writebacks() + m.pager->pageouts())
        << "seed " << seed << " p" << i;
    // Residency ledger: mappings since the cold start minus evictions is
    // exactly what remains resident.
    EXPECT_EQ(m.as->resident_pages(),
              m.as->faults_serviced() - m.maps_at_start - m.pager->evictions())
        << "seed " << seed << " p" << i;
    // Speculative flags never outlive residency.
    const u64 base_vpn = m.base >> 12;
    for (u64 p = 0; p < kRegionPages; ++p) {
      if (m.pager->is_speculative(base_vpn + p)) {
        EXPECT_TRUE(m.as->is_mapped(m.base + p * 4096)) << "seed " << seed << " p" << i;
      }
    }
    total_reads += m.pager->swap().reads();
    total_writes += m.pager->swap().writes();
  }
  // The owner ledgers partition the device totals exactly.
  EXPECT_EQ(sched.reads(), total_reads) << "seed " << seed;
  EXPECT_EQ(sched.writes(), total_writes) << "seed " << seed;
  // The mix must actually exercise contention, prefetch, and eviction.
  EXPECT_GT(sched.reads(), 0u) << "seed " << seed;

  s.cycles = ms.sim.now();
  s.stats = ms.sim.stats().snapshot();
  return s;
}

TEST(SwapStress, SharedQueueInvariantsHoldAndRunsAreBitIdentical) {
  u64 prefetches = 0, evictions = 0, promotions = 0;
  for (u64 seed = 1; seed <= 20; ++seed) {
    const auto a = run_chaos(seed);
    const auto b = run_chaos(seed);
    EXPECT_EQ(a.cycles, b.cycles) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.stats, b.stats) << "seed " << seed;  // every counter + histogram moment
    const auto at = [&a](const std::string& name) {
      auto it = a.stats.find(name);
      return it == a.stats.end() ? 0.0 : it->second;
    };
    for (unsigned i = 0; i < kProcs; ++i)
      prefetches += static_cast<u64>(at("p" + std::to_string(i) + ".pager.prefetches"));
    for (unsigned i = 0; i < kProcs; ++i)
      evictions += static_cast<u64>(at("p" + std::to_string(i) + ".pager.evictions"));
    promotions += static_cast<u64>(at("swap.sched.wb_promotions"));
  }
  // Across the whole gauntlet the machinery under test must have fired.
  EXPECT_GT(prefetches, 0u);
  EXPECT_GT(evictions, 0u);
  (void)promotions;  // informational: depends on queue depth reached
}

TEST(SwapStress, DistinctSeedsProduceDistinctSchedules) {
  const auto a = run_chaos(303);
  const auto b = run_chaos(404);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace vmsls::paging

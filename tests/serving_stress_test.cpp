// Serving-plane gauntlet: 20 seeded open-arrival runs across arrival
// kinds, burst shapes, queue depths, pool sizes, and episode mixes. Every
// run must hold the request-ledger identity
//
//   arrivals == admitted + rejected == configured requests
//   completed == admitted
//
// drain every queue, and leave every worker idle (TrafficDriver::run
// throws on any violation — the assertions here re-check from the returned
// report so a silent driver bug cannot pass). One seed is rerun and must
// be bit-identical, per the repo-wide determinism contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sls/process_group.hpp"
#include "sls/traffic.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::sls {
namespace {

PlatformSpec stress_platform(u64 seed) {
  PlatformSpec plat = zynq7020();
  plat.pager.budget_mode = paging::BudgetMode::kPerProcess;
  plat.pager.policy = paging::PolicyKind::kClock;
  plat.pager.swap.shared = true;
  plat.pager.swap.read_latency = 50;
  plat.pager.swap.write_latency = 100;
  plat.pager.swap.bytes_per_cycle = 64;
  // The seed steers every shape knob, so the 20 runs cover distribution x
  // burstiness x queue depth x overload quite unlike one another.
  plat.traffic.requests = 80;
  plat.traffic.arrival.seed = seed;
  plat.traffic.arrival.mean_gap = 300 + 400 * (seed % 5);  // 300..1900
  plat.traffic.arrival.kind = seed % 2 == 0 ? sim::ArrivalConfig::Kind::kPoisson
                                            : sim::ArrivalConfig::Kind::kDeterministic;
  if (seed % 3 == 0) {
    plat.traffic.arrival.burst_factor = 3.0;
    plat.traffic.arrival.burst_period = 20'000;
    plat.traffic.arrival.burst_duty = 0.3;
  }
  plat.traffic.queue_capacity = 2 + seed % 7;
  plat.traffic.episode_touches = 6 + seed % 10;
  plat.traffic.arena_pages = 16;
  plat.traffic.touch_cost = 10 + 10 * (seed % 3);
  plat.traffic.write_ratio = 0.1 * static_cast<double>(seed % 6);
  plat.traffic.mix = seed % 2 == 0 ? "saxpy,hash_join,pointer_chase,matmul"
                                   : "bfs,histogram,vecadd";
  return plat;
}

TrafficDriver::Report run_once(const PlatformSpec& plat, unsigned workers) {
  sim::Simulator sim;
  paging::FramePoolConfig pool_cfg;
  pool_cfg.mode = paging::BudgetMode::kPerProcess;
  pool_cfg.policy = plat.pager.policy;
  ProcessGroup group(sim, plat, pool_cfg);
  for (unsigned i = 0; i < workers; ++i) {
    workloads::WorkloadParams p;
    p.n = 64;
    p.seed = 1 + i;
    const auto wl = workloads::make_vecadd(p);
    PlatformSpec proc_plat = plat;
    proc_plat.pager.frame_budget = 6;
    SynthesisFlow flow(proc_plat);
    group.add_process(
        flow.synthesize(workloads::single_thread_app(wl, ThreadKind::kHardware)),
        "p" + std::to_string(i));
  }
  TrafficDriver driver(group, plat.traffic);
  const auto rep = driver.run();
  // Post-run drain: driver, pool, swap queue, and the event queue itself.
  EXPECT_EQ(driver.queue_depth(), 0u);
  EXPECT_EQ(driver.busy_workers(), 0u);
  EXPECT_NE(group.shared_swap(), nullptr);
  if (group.shared_swap() != nullptr) EXPECT_EQ(group.shared_swap()->queue_depth(), 0u);
  EXPECT_TRUE(sim.idle());
  return rep;
}

TEST(ServingStress, TwentySeedsHoldTheRequestLedger) {
  for (u64 seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const PlatformSpec plat = stress_platform(seed);
    const unsigned workers = 1 + seed % 3;
    const auto rep = run_once(plat, workers);
    EXPECT_EQ(rep.arrivals, plat.traffic.requests);
    EXPECT_EQ(rep.admitted + rep.rejected, rep.arrivals);
    EXPECT_EQ(rep.completed, rep.admitted);
    EXPECT_EQ(rep.latency.size(), rep.completed);
    EXPECT_EQ(rep.queue_wait.size(), rep.completed);
    EXPECT_EQ(rep.service.size(), rep.completed);
    EXPECT_LE(rep.peak_queue, plat.traffic.queue_capacity);
    EXPECT_LE(rep.peak_busy, workers);
    EXPECT_GT(rep.completed, 0u);
    // Latency decomposes: every request's latency is its queue wait plus
    // its service time (same completion order across the three vectors).
    for (std::size_t i = 0; i < rep.latency.size(); ++i)
      EXPECT_EQ(rep.latency[i], rep.queue_wait[i] + rep.service[i]);
  }
}

TEST(ServingStress, RerunOfOneSeedIsBitIdentical) {
  const PlatformSpec plat = stress_platform(13);
  const auto a = run_once(plat, 2);
  const auto b = run_once(plat, 2);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.queue_wait, b.queue_wait);
  EXPECT_EQ(a.service, b.service);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.span, b.span);
}

}  // namespace
}  // namespace vmsls::sls

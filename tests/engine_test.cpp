#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "hwt/builder.hpp"
#include "hwt/engine.hpp"
#include "sim/simulator.hpp"

namespace vmsls::hwt {
namespace {

/// Memory port with a flat byte store and fixed latency.
class FakeMemPort final : public MemPort {
 public:
  FakeMemPort(sim::Simulator& sim, Cycles latency = 5) : sim_(sim), latency_(latency) {}

  void read(VirtAddr va, u32 bytes, std::function<void(std::vector<u8>)> done) override {
    ++reads;
    std::vector<u8> out(bytes);
    for (u32 i = 0; i < bytes; ++i) out[i] = mem_[va + i];
    sim_.schedule_in(latency_, [done = std::move(done), out = std::move(out)]() mutable {
      done(std::move(out));
    });
  }

  void write(VirtAddr va, std::span<const u8> data, std::function<void()> done) override {
    ++writes;
    for (std::size_t i = 0; i < data.size(); ++i) mem_[va + i] = data[i];
    sim_.schedule_in(latency_, std::move(done));
  }

  u64 read_u64(VirtAddr va) {
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= static_cast<u64>(mem_[va + i]) << (8 * i);
    return v;
  }
  void write_u64(VirtAddr va, u64 v) {
    for (unsigned i = 0; i < 8; ++i) mem_[va + i] = static_cast<u8>(v >> (8 * i));
  }

  int reads = 0;
  int writes = 0;

 private:
  sim::Simulator& sim_;
  Cycles latency_;
  std::map<u64, u8> mem_;
};

/// OS port with canned mailbox values and recorded puts.
class FakeOsPort final : public OsPort {
 public:
  explicit FakeOsPort(sim::Simulator& sim) : sim_(sim) {}

  void mbox_get(unsigned mbox, std::function<void(i64)> done) override {
    const i64 v = gets[mbox].front();
    gets[mbox].pop_front();
    sim_.schedule_in(3, [done = std::move(done), v] { done(v); });
  }
  void mbox_put(unsigned mbox, i64 value, std::function<void()> done) override {
    puts[mbox].push_back(value);
    sim_.schedule_in(3, std::move(done));
  }
  void sem_wait(unsigned sem, std::function<void()> done) override {
    ++waits[sem];
    sim_.schedule_in(3, std::move(done));
  }
  void sem_post(unsigned sem, std::function<void()> done) override {
    ++posts[sem];
    sim_.schedule_in(3, std::move(done));
  }

  std::map<unsigned, std::deque<i64>> gets;
  std::map<unsigned, std::vector<i64>> puts;
  std::map<unsigned, int> waits, posts;

 private:
  sim::Simulator& sim_;
};

struct EngineFixture : ::testing::Test {
  sim::Simulator sim;
  FakeMemPort mem{sim};
  FakeOsPort os{sim};
  std::unique_ptr<Engine> engine;
  bool halted = false;

  void run(Kernel k, EngineConfig cfg = {}) {
    engine = std::make_unique<Engine>(sim, std::move(k), cfg, "eng");
    if (engine->kernel().iface.mem_ports > 0)
      for (unsigned p = 0; p < engine->kernel().iface.mem_ports; ++p)
        engine->attach_mem_port(p, &mem);
    engine->attach_os_port(&os);
    engine->start([this] { halted = true; });
    while (sim.step()) {
    }
  }
};

TEST_F(EngineFixture, ArithmeticChain) {
  KernelBuilder kb("k");
  kb.li(1, 6).li(2, 7).mul(3, 1, 2).addi(3, 3, 8).shri(4, 3, 1).halt();
  run(kb.build());
  EXPECT_TRUE(halted);
  EXPECT_EQ(engine->reg(3), 50);
  EXPECT_EQ(engine->reg(4), 25);
}

TEST_F(EngineFixture, SignedAndUnsignedCompares) {
  KernelBuilder kb("k");
  kb.li(1, -1).li(2, 1).slt(3, 1, 2).sltu(4, 1, 2).seq(5, 1, 1).sne(6, 1, 2).halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(3), 1);  // signed: -1 < 1
  EXPECT_EQ(engine->reg(4), 0);  // unsigned: 2^64-1 > 1
  EXPECT_EQ(engine->reg(5), 1);
  EXPECT_EQ(engine->reg(6), 1);
}

TEST_F(EngineFixture, MinMax) {
  KernelBuilder kb("k");
  kb.li(1, -5).li(2, 3).min(3, 1, 2).max(4, 1, 2).halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(3), -5);
  EXPECT_EQ(engine->reg(4), 3);
}

TEST_F(EngineFixture, DivisionSemantics) {
  KernelBuilder kb("k");
  kb.li(1, 100).li(2, 7).divu(3, 1, 2).remu(4, 1, 2).li(5, 0).divu(6, 1, 5).halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(3), 14);
  EXPECT_EQ(engine->reg(4), 2);
  EXPECT_EQ(engine->reg(6), -1);  // div-by-zero convention
}

TEST_F(EngineFixture, LoopSumsOneToTen) {
  KernelBuilder kb("k");
  kb.li(1, 0)   // sum
      .li(2, 1)  // i
      .li(3, 11)
      .label("loop")
      .seq(4, 2, 3)
      .bnez(4, "out")
      .add(1, 1, 2)
      .addi(2, 2, 1)
      .jmp("loop")
      .label("out")
      .halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(1), 55);
}

TEST_F(EngineFixture, ScratchpadRoundTrip) {
  KernelBuilder kb("k", 64);
  kb.li(1, 0xabcd).li(2, 16).spad_store(2, 1).spad_load(3, 2).halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(3), 0xabcd);
}

TEST_F(EngineFixture, ScratchpadSubWordSizes) {
  KernelBuilder kb("k", 64);
  kb.li(1, 0x11223344).li(2, 0)
      .spad_store(2, 1, 0, 4)
      .spad_load(3, 2, 0, 1)   // low byte
      .spad_load(4, 2, 2, 1)   // byte at offset 2
      .halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(3), 0x44);
  EXPECT_EQ(engine->reg(4), 0x22);
}

TEST_F(EngineFixture, ScratchpadOutOfBoundsTraps) {
  KernelBuilder kb("k", 16);
  kb.li(1, 1).li(2, 12).spad_store(2, 1).halt();  // 8 B store at 12 overruns 16
  engine = std::make_unique<Engine>(sim, kb.build(), EngineConfig{}, "eng");
  engine->attach_os_port(&os);
  engine->start([] {});
  EXPECT_THROW(
      while (sim.step()) {}, std::runtime_error);
}

TEST_F(EngineFixture, LoadStoreThroughPort) {
  mem.write_u64(0x100, 5);
  mem.write_u64(0x108, 9);
  KernelBuilder kb("k");
  kb.li(1, 0x100).load(2, 1).load(3, 1, 8).add(4, 2, 3).store(1, 4, 16).halt();
  run(kb.build());
  EXPECT_EQ(mem.read_u64(0x110), 14u);
  EXPECT_EQ(mem.reads, 2);
  EXPECT_EQ(mem.writes, 1);
}

TEST_F(EngineFixture, SubWordLoadZeroExtends) {
  mem.write_u64(0x40, 0xffffffffffffffffull);
  KernelBuilder kb("k");
  kb.li(1, 0x40).load(2, 1, 0, 1).load(3, 1, 0, 4).halt();
  run(kb.build());
  EXPECT_EQ(engine->reg(2), 0xff);
  EXPECT_EQ(static_cast<u64>(engine->reg(3)), 0xffffffffull);
}

TEST_F(EngineFixture, BurstMovesThroughScratchpad) {
  for (u64 i = 0; i < 8; ++i) mem.write_u64(0x200 + i * 8, i * 3);
  KernelBuilder kb("k", 128);
  constexpr Reg SRC = 1, DST = 2, LEN = 3, OFF = 4, V = 5, K = 6, T = 7;
  kb.li(SRC, 0x200)
      .li(DST, 0x400)
      .li(LEN, 64)
      .li(OFF, 0)
      .burst_load(OFF, SRC, LEN)
      // Double every element in the scratchpad.
      .li(K, 0)
      .label("loop")
      .seq(T, K, LEN)
      .bnez(T, "done")
      .spad_load(V, K)
      .shli(V, V, 1)
      .spad_store(K, V)
      .addi(K, K, 8)
      .jmp("loop")
      .label("done")
      .burst_store(DST, OFF, LEN)
      .halt();
  run(kb.build());
  for (u64 i = 0; i < 8; ++i) EXPECT_EQ(mem.read_u64(0x400 + i * 8), i * 6);
}

TEST_F(EngineFixture, BurstOverflowTraps) {
  KernelBuilder kb("k", 32);
  kb.li(1, 0).li(2, 0x100).li(3, 64).burst_load(1, 2, 3).halt();  // 64 B into 32 B spad
  engine = std::make_unique<Engine>(sim, kb.build(), EngineConfig{}, "eng");
  engine->attach_mem_port(0, &mem);
  engine->attach_os_port(&os);
  engine->start([] {});
  EXPECT_THROW(
      while (sim.step()) {}, std::runtime_error);
}

TEST_F(EngineFixture, MailboxRoundTrip) {
  os.gets[0] = {123, 321};
  KernelBuilder kb("k");
  kb.mbox_get(1, 0).mbox_get(2, 0).add(3, 1, 2).mbox_put(1, 3).halt();
  run(kb.build());
  ASSERT_EQ(os.puts[1].size(), 1u);
  EXPECT_EQ(os.puts[1][0], 444);
}

TEST_F(EngineFixture, SemaphoreOpsReachPort) {
  KernelBuilder kb("k");
  kb.sem_wait(2).sem_post(2).sem_post(2).halt();
  run(kb.build());
  EXPECT_EQ(os.waits[2], 1);
  EXPECT_EQ(os.posts[2], 2);
}

TEST_F(EngineFixture, DelayAdvancesTime) {
  KernelBuilder kb("k");
  kb.delay(500).halt();
  run(kb.build());
  EXPECT_GE(engine->halt_time(), 500u);
}

TEST_F(EngineFixture, ClockDomainScalesCost) {
  auto make = [] {
    KernelBuilder kb("k");
    kb.li(1, 0);
    for (int i = 0; i < 100; ++i) kb.addi(1, 1, 1);
    kb.halt();
    return kb.build();
  };
  EngineConfig slow;  // 1:1
  run(make(), slow);
  const Cycles slow_time = engine->halt_time();

  sim::Simulator sim2;
  EngineConfig fast;
  fast.clock = sim::ClockDomain{4, 1};  // 4x faster engine
  Engine e2(sim2, make(), fast, "e2");
  e2.attach_os_port(&os);
  bool done2 = false;
  e2.start([&] { done2 = true; });
  while (sim2.step()) {
  }
  EXPECT_TRUE(done2);
  EXPECT_LT(e2.halt_time(), slow_time);
}

TEST_F(EngineFixture, BatchLimitPreservesSemantics) {
  auto make = [] {
    KernelBuilder kb("k");
    kb.li(1, 0).li(2, 0).li(3, 1000)
        .label("loop")
        .seq(4, 2, 3)
        .bnez(4, "out")
        .add(1, 1, 2)
        .addi(2, 2, 1)
        .jmp("loop")
        .label("out")
        .halt();
    return kb.build();
  };
  EngineConfig tiny;
  tiny.batch_limit = 3;
  run(make(), tiny);
  EXPECT_EQ(engine->reg(1), 499500);
}

TEST_F(EngineFixture, InstructionsRetiredCounted) {
  KernelBuilder kb("k");
  kb.li(1, 1).li(2, 2).add(3, 1, 2).halt();
  run(kb.build());
  EXPECT_EQ(engine->instructions_retired(), 4u);
}

TEST_F(EngineFixture, DoubleStartRejected) {
  KernelBuilder kb("k");
  kb.halt();
  run(kb.build());
  EXPECT_THROW(engine->start([] {}), std::invalid_argument);
}

TEST_F(EngineFixture, MissingMemPortRejected) {
  KernelBuilder kb("k");
  kb.li(1, 0).load(2, 1).halt();
  Engine e(sim, kb.build(), EngineConfig{}, "e");
  EXPECT_THROW(e.start([] {}), std::invalid_argument);
}

TEST_F(EngineFixture, MissingOsPortRejected) {
  KernelBuilder kb("k");
  kb.mbox_get(1, 0).halt();
  Engine e(sim, kb.build(), EngineConfig{}, "e");
  EXPECT_THROW(e.start([] {}), std::invalid_argument);
}

TEST_F(EngineFixture, StallCyclesAccumulateOnMemory) {
  mem.write_u64(0, 1);
  KernelBuilder kb("k");
  kb.li(1, 0).load(2, 1).load(3, 1).halt();
  run(kb.build());
  EXPECT_GE(engine->stall_cycles(), 10u);  // two 5-cycle port round trips
}

}  // namespace
}  // namespace vmsls::hwt

#include <gtest/gtest.h>

#include "mem/frames.hpp"
#include "mem/physmem.hpp"

namespace vmsls::mem {
namespace {

TEST(PhysicalMemory, ReadsZeroWhenUntouched) {
  PhysicalMemory pm(1 * MiB);
  EXPECT_EQ(pm.read_u64(0x1000), 0u);
  EXPECT_EQ(pm.touched_chunks(), 0u);
}

TEST(PhysicalMemory, RoundTripScalar) {
  PhysicalMemory pm(1 * MiB);
  pm.write_u64(64, 0xdeadbeefcafef00dull);
  EXPECT_EQ(pm.read_u64(64), 0xdeadbeefcafef00dull);
  pm.write_scalar<u8>(7, 0xab);
  EXPECT_EQ(pm.read_scalar<u8>(7), 0xab);
}

TEST(PhysicalMemory, CrossChunkBlockAccess) {
  PhysicalMemory pm(1 * MiB);
  std::vector<u8> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 13);
  pm.write(4090, std::span<const u8>(data.data(), data.size()));  // spans 3+ chunks
  std::vector<u8> back(data.size());
  pm.read(4090, std::span<u8>(back.data(), back.size()));
  EXPECT_EQ(back, data);
  EXPECT_GE(pm.touched_chunks(), 3u);
}

TEST(PhysicalMemory, OutOfRangeThrows) {
  PhysicalMemory pm(64 * KiB);
  EXPECT_THROW(pm.read_u64(64 * KiB), std::out_of_range);
  EXPECT_THROW(pm.write_u64(64 * KiB - 4, 1), std::out_of_range);
  EXPECT_NO_THROW(pm.write_u64(64 * KiB - 8, 1));
}

TEST(PhysicalMemory, ClearZeroes) {
  PhysicalMemory pm(1 * MiB);
  pm.write_u64(100, ~0ull);
  pm.clear(96, 16);
  EXPECT_EQ(pm.read_u64(100), 0u);
}

TEST(PhysicalMemory, RejectsUnalignedSize) {
  EXPECT_THROW(PhysicalMemory(1000), std::invalid_argument);
  EXPECT_THROW(PhysicalMemory(0), std::invalid_argument);
}

TEST(PhysicalMemory, SparseStorageStaysSmall) {
  PhysicalMemory pm(512 * MiB);
  pm.write_u64(400 * MiB, 1);
  EXPECT_EQ(pm.touched_chunks(), 1u);
}

// --- frame allocator ---

TEST(FrameAllocator, AllocReturnsDistinctFrames) {
  FrameAllocator fa(0, 16, 4 * KiB);
  std::set<u64> seen;
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(seen.insert(*fa.alloc()).second);
  EXPECT_EQ(fa.free_frames(), 0u);
  // Exhaustion is a normal event, reported as nullopt for the pager.
  EXPECT_FALSE(fa.alloc().has_value());
}

TEST(FrameAllocator, FreeMakesFrameReusable) {
  FrameAllocator fa(0, 2, 4 * KiB);
  const u64 a = *fa.alloc();
  fa.alloc();
  EXPECT_FALSE(fa.alloc().has_value());
  fa.free(a);
  EXPECT_EQ(fa.alloc(), a);
}

TEST(FrameAllocator, DoubleFreeThrows) {
  FrameAllocator fa(0, 4, 4 * KiB);
  const u64 f = *fa.alloc();
  fa.free(f);
  EXPECT_THROW(fa.free(f), std::invalid_argument);
}

TEST(FrameAllocator, FrameAddrMatchesRegionBase) {
  FrameAllocator fa(1 * MiB, 8, 64 * KiB);
  const u64 f = *fa.alloc();
  EXPECT_EQ(fa.frame_addr(f), 1 * MiB);
  EXPECT_TRUE(fa.is_allocated(f));
}

TEST(FrameAllocator, ContiguousRunIsContiguous) {
  FrameAllocator fa(0, 32, 4 * KiB);
  const u64 first = *fa.alloc_contiguous(8);
  for (u64 i = 0; i < 8; ++i) EXPECT_TRUE(fa.is_allocated(first + i));
  EXPECT_EQ(fa.used_frames(), 8u);
  fa.free_contiguous(first, 8);
  EXPECT_EQ(fa.used_frames(), 0u);
}

TEST(FrameAllocator, ContiguousFailsWhenFragmented) {
  FrameAllocator fa(0, 8, 4 * KiB);
  std::vector<u64> singles;
  for (int i = 0; i < 8; ++i) singles.push_back(*fa.alloc());
  // Free every other frame: max run is 1.
  for (std::size_t i = 0; i < singles.size(); i += 2) fa.free(singles[i]);
  EXPECT_FALSE(fa.alloc_contiguous(2).has_value());
  EXPECT_TRUE(fa.alloc_contiguous(1).has_value());
}

TEST(FrameAllocator, OutOfRegionFrameThrows) {
  FrameAllocator fa(0, 4, 4 * KiB);
  EXPECT_THROW(fa.free(100), std::invalid_argument);
}

}  // namespace
}  // namespace vmsls::mem

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace vmsls::sim {
namespace {

TEST(Simulator, StartsAtCycleZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(10, [&] { order.push_back(2); });
  s.schedule_in(5, [&] { order.push_back(1); });
  s.schedule_in(20, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 20u);
}

TEST(Simulator, SameCycleIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_in(7, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ZeroDelayRunsLaterSameCycle) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(0, [&] {
    order.push_back(1);
    s.schedule_in(0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 0u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1, [&] {
    ++fired;
    s.schedule_in(4, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 5u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_in(10, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_in(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunRespectsDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_in(10, [&] { ++fired; });
  s.schedule_in(100, [&] { ++fired; });
  s.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.idle());
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsEventsExecuted) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_in(static_cast<Cycles>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator s;
    std::vector<Cycles> times;
    for (int i = 0; i < 50; ++i)
      s.schedule_in(static_cast<Cycles>((i * 37) % 17), [&times, &s] { times.push_back(s.now()); });
    s.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, StatsRegistryShared) {
  Simulator s;
  s.stats().counter("x").add(3);
  EXPECT_EQ(s.stats().counter_value("x"), 3u);
}

// --- clock domains ---

TEST(ClockDomain, UnityRatioIsIdentity) {
  ClockDomain c{1, 1};
  EXPECT_EQ(c.to_ref(17), 17u);
  EXPECT_EQ(c.from_ref(17), 17u);
}

TEST(ClockDomain, FasterDomainCompressesToRef) {
  ClockDomain cpu{10, 3};  // 3.33x faster than fabric
  EXPECT_EQ(cpu.to_ref(10), 3u);   // 10 CPU cycles = 3 fabric cycles
  EXPECT_EQ(cpu.to_ref(1), 1u);    // rounds up
  EXPECT_EQ(cpu.to_ref(11), 4u);   // 3.3 -> 4
  EXPECT_EQ(cpu.from_ref(3), 10u);
}

TEST(ClockDomain, RatioValue) {
  ClockDomain c{10, 3};
  EXPECT_NEAR(c.ratio(), 3.333, 0.001);
}

TEST(ClockDomain, ToRefNeverLosesWork) {
  ClockDomain c{7, 2};
  for (Cycles local = 1; local < 100; ++local) {
    const Cycles ref = c.to_ref(local);
    // Converting back must cover at least the original local cycles.
    EXPECT_GE(c.from_ref(ref) + 1, local);
  }
}

}  // namespace
}  // namespace vmsls::sim

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/clock.hpp"
#include "sim/simulator.hpp"

namespace vmsls::sim {
namespace {

TEST(Simulator, StartsAtCycleZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(10, [&] { order.push_back(2); });
  s.schedule_in(5, [&] { order.push_back(1); });
  s.schedule_in(20, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 20u);
}

TEST(Simulator, SameCycleIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_in(7, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ZeroDelayRunsLaterSameCycle) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(0, [&] {
    order.push_back(1);
    s.schedule_in(0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 0u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1, [&] {
    ++fired;
    s.schedule_in(4, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 5u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_in(10, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_in(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunRespectsDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_in(10, [&] { ++fired; });
  s.schedule_in(100, [&] { ++fired; });
  s.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.idle());
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsEventsExecuted) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_in(static_cast<Cycles>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator s;
    std::vector<Cycles> times;
    for (int i = 0; i < 50; ++i)
      s.schedule_in(static_cast<Cycles>((i * 37) % 17), [&times, &s] { times.push_back(s.now()); });
    s.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, StatsRegistryShared) {
  Simulator s;
  s.stats().counter("x").add(3);
  EXPECT_EQ(s.stats().counter_value("x"), 3u);
}

// --- calendar-wheel internals: far-future heap fallback and its seams ---

TEST(Simulator, FarFutureEventsBeyondWheelHorizon) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(1'000'000, [&] { order.push_back(3); });  // far beyond the wheel
  s.schedule_in(5'000, [&] { order.push_back(2); });      // just beyond the wheel
  s.schedule_in(10, [&] { order.push_back(1); });         // in the wheel
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 1'000'000u);
}

TEST(Simulator, SameCycleFifoAcrossWheelHeapBoundary) {
  // First event lands at t=6000 while that cycle is beyond the wheel
  // horizon (heap); the second is scheduled for the same cycle later, from
  // t=5000, when it falls inside the wheel. FIFO order must still hold.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(6'000, [&] { order.push_back(1); });
  s.schedule_at(5'000, [&] { s.schedule_at(6'000, [&] { order.push_back(2); }); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, WheelWrapsAcrossManyHorizons) {
  // A chain that hops forward by more than the wheel size each time,
  // exercising slot reuse across wraps.
  Simulator s;
  int fired = 0;
  EventFn hop = [&] {
    ++fired;
    if (fired < 10) {
      s.schedule_in(4'096 + 7, [&] {
        ++fired;
        if (fired < 10) s.schedule_in(13, [&] { ++fired; });
      });
    }
  };
  s.schedule_in(1, std::move(hop));
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 1u + 4'096u + 7u + 13u);
}

TEST(Simulator, ScheduleNowRunsAfterPendingSameCycleEvents) {
  Simulator s;
  std::vector<int> order;
  s.schedule_in(5, [&] {
    order.push_back(1);
    s.schedule_now([&] { order.push_back(3); });
  });
  s.schedule_in(5, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 5u);
}

TEST(Simulator, NodeRecyclingAcrossManyEvents) {
  // Far more events than one pool slab, all recycled; counts must balance.
  Simulator s;
  u64 sink = 0;
  for (int round = 0; round < 8; ++round) {
    for (u64 i = 0; i < 2'000; ++i) s.schedule_in(i % 131, [&sink] { ++sink; });
    s.run();
  }
  EXPECT_EQ(sink, 16'000u);
  EXPECT_EQ(s.events_executed(), 16'000u);
  EXPECT_EQ(s.events_scheduled(), 16'000u);
}

TEST(Simulator, ThrowingEventPropagatesAndQueueSurvives) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1, [] { throw std::runtime_error("trap"); });
  s.schedule_in(2, [&] { ++fired; });
  EXPECT_THROW(s.run(), std::runtime_error);
  s.run();  // the remaining event is still runnable
  EXPECT_EQ(fired, 1);
}

// --- EventFn: small-buffer, move-only callback type ---

TEST(EventFn, InlineForSmallCallables) {
  struct Small {
    u64 a, b, c;
    u64* out;
    void operator()() { *out = a + b + c; }
  };
  static_assert(EventFn::fits_inline<Small>());
  u64 result = 0;
  EventFn fn = Small{1, 2, 3, &result};
  fn();
  EXPECT_EQ(result, 6u);
}

TEST(EventFn, HeapFallbackForLargeCallables) {
  struct Big {
    u64 pad[16];
    u64* out;
    void operator()() { *out = pad[0] + pad[15]; }
  };
  static_assert(!EventFn::fits_inline<Big>());
  u64 result = 0;
  Big big{};
  big.pad[0] = 40;
  big.pad[15] = 2;
  big.out = &result;
  EventFn fn = big;
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  moved();
  EXPECT_EQ(result, 42u);
}

TEST(EventFn, MoveOnlyCapturesWork) {
  auto payload = std::make_unique<int>(7);
  int result = 0;
  EventFn fn = [p = std::move(payload), &result] { result = *p; };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(result, 7);
}

TEST(EventFn, SchedulableWithMoveOnlyCapture) {
  Simulator s;
  auto payload = std::make_unique<int>(9);
  int result = 0;
  s.schedule_in(3, [p = std::move(payload), &result] { result = *p; });
  s.run();
  EXPECT_EQ(result, 9);
}

// --- clock domains ---

TEST(ClockDomain, UnityRatioIsIdentity) {
  ClockDomain c{1, 1};
  EXPECT_EQ(c.to_ref(17), 17u);
  EXPECT_EQ(c.from_ref(17), 17u);
}

TEST(ClockDomain, FasterDomainCompressesToRef) {
  ClockDomain cpu{10, 3};  // 3.33x faster than fabric
  EXPECT_EQ(cpu.to_ref(10), 3u);   // 10 CPU cycles = 3 fabric cycles
  EXPECT_EQ(cpu.to_ref(1), 1u);    // rounds up
  EXPECT_EQ(cpu.to_ref(11), 4u);   // 3.3 -> 4
  EXPECT_EQ(cpu.from_ref(3), 10u);
}

TEST(ClockDomain, RatioValue) {
  ClockDomain c{10, 3};
  EXPECT_NEAR(c.ratio(), 3.333, 0.001);
}

TEST(ClockDomain, ToRefNeverLosesWork) {
  ClockDomain c{7, 2};
  for (Cycles local = 1; local < 100; ++local) {
    const Cycles ref = c.to_ref(local);
    // Converting back must cover at least the original local cycles.
    EXPECT_GE(c.from_ref(ref) + 1, local);
  }
}

}  // namespace
}  // namespace vmsls::sim

// Keeps docs/PLATFORM_KNOBS.md exhaustive: every member of every config
// struct reachable from PlatformSpec (plus the substrate configs the
// multi-process harnesses take directly) must appear as a backticked knob
// inside that struct's own `## StructName` section of the doc. Adding a
// knob without documenting it — or documenting it under the wrong struct —
// fails this test. The structs are parsed from the headers at run time, so
// the check can never go stale against the code.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts the body of `struct <name> { ... };` from header text.
std::string struct_body(const std::string& header_text, const std::string& name) {
  const std::string key = "struct " + name + " {";
  const auto begin = header_text.find(key);
  if (begin == std::string::npos) return {};
  const auto end = header_text.find("\n};", begin);
  if (end == std::string::npos) return {};
  return header_text.substr(begin + key.size(), end - begin - key.size());
}

/// Member names of an aggregate config struct: one declaration per line,
/// `type name = default;` / `type name{...};` / `type name;`.
std::vector<std::string> member_names(const std::string& body) {
  static const std::regex member_re(
      R"(^\s*[A-Za-z_][\w:<>,\s\*&]*[\s&\*]([A-Za-z_]\w*)\s*(?:=|\{|;))");
  std::vector<std::string> out;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    const auto comment = line.find("//");
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::smatch m;
    if (std::regex_search(line, m, member_re)) out.push_back(m[1].str());
  }
  return out;
}

/// The doc section for one struct: from its `## Name` heading to the next
/// `## ` heading (or EOF).
std::string doc_section(const std::string& doc, const std::string& name) {
  const std::string heading = "## " + name;
  const auto begin = doc.find(heading);
  if (begin == std::string::npos) return {};
  const auto end = doc.find("\n## ", begin + heading.size());
  return doc.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
}

}  // namespace

TEST(PlatformKnobs, EveryConfigStructMemberIsDocumented) {
  const std::string src = VMSLS_SOURCE_DIR;
  const std::string doc = slurp(src + "/docs/PLATFORM_KNOBS.md");
  ASSERT_FALSE(doc.empty());

  // (header, struct) — every config aggregate a user can set, reachable
  // from PlatformSpec or taken directly by the harnesses (FramePoolConfig,
  // EngineConfig).
  const std::vector<std::pair<std::string, std::string>> structs = {
      {"src/sls/platform.hpp", "PlatformSpec"},
      {"src/sls/resources.hpp", "ResourceBudget"},
      {"src/mem/dram.hpp", "DramConfig"},
      {"src/mem/bus.hpp", "BusConfig"},
      {"src/mem/pagetable.hpp", "PageTableConfig"},
      {"src/mem/walker.hpp", "WalkerConfig"},
      {"src/mem/tlb.hpp", "TlbConfig"},
      {"src/mem/mmu.hpp", "MmuConfig"},
      {"src/mem/cache.hpp", "CacheConfig"},
      {"src/mem/cache.hpp", "CacheHierarchyConfig"},
      {"src/hwt/hw_port.hpp", "HwPortConfig"},
      {"src/hwt/engine.hpp", "CostModel"},
      {"src/hwt/engine.hpp", "EngineConfig"},
      {"src/rt/os.hpp", "OsConfig"},
      {"src/cpu/cpu.hpp", "CpuConfig"},
      {"src/mem/paging/pager.hpp", "PagerConfig"},
      {"src/mem/paging/swap_device.hpp", "SwapConfig"},
      {"src/mem/paging/buffer_cache.hpp", "BufferCacheConfig"},
      {"src/mem/paging/frame_pool.hpp", "FramePoolConfig"},
      {"src/dma/dma_engine.hpp", "DmaConfig"},
      {"src/dma/offload.hpp", "OffloadConfig"},
      {"src/sim/telemetry.hpp", "TelemetryConfig"},
      {"src/sim/arrival.hpp", "ArrivalConfig"},
      {"src/sls/platform.hpp", "TrafficConfig"},
  };

  for (const auto& [header, name] : structs) {
    const std::string body = struct_body(slurp(src + "/" + header), name);
    ASSERT_FALSE(body.empty()) << "struct " << name << " not found in " << header
                               << " (update this test's table)";
    const auto members = member_names(body);
    EXPECT_FALSE(members.empty()) << name << ": member parser matched nothing";
    const std::string section = doc_section(doc, name);
    EXPECT_FALSE(section.empty())
        << "docs/PLATFORM_KNOBS.md has no `## " << name << "` section";
    for (const auto& member : members)
      EXPECT_NE(section.find("`" + member + "`"), std::string::npos)
          << "knob `" << member << "` of " << name
          << " is undocumented in its PLATFORM_KNOBS.md section";
  }
}

// Tests for the flow/MMU extensions: automatic partitioning, the next-page
// TLB prefetcher, and multi-port walker concurrency.
#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace vmsls {
namespace {

using test::MemorySystem;

// --- automatic partitioning ---

hwt::Kernel compute_heavy_kernel(const std::string& name) {
  hwt::KernelBuilder kb(name, 256);
  using hwt::Reg;
  kb.mbox_get(1, 0);
  for (int i = 0; i < 40; ++i) kb.mul(2, 1, 1).add(3, 2, 2).spad_store(4, 3).spad_load(5, 4);
  kb.mbox_put(1, 3).halt();
  return kb.build();
}

hwt::Kernel mem_bound_kernel(const std::string& name) {
  hwt::KernelBuilder kb(name);
  using hwt::Reg;
  kb.mbox_get(1, 0);
  for (int i = 0; i < 40; ++i) kb.load(2, 1).store(1, 2, 8);
  kb.mbox_put(1, 2).halt();
  return kb.build();
}

sls::AppSpec candidates_app(unsigned compute, unsigned membound) {
  sls::AppSpec app;
  app.name = "auto";
  app.add_mailbox("args", 16);
  app.add_mailbox("done", 16);
  for (unsigned i = 0; i < compute; ++i)
    app.add_hw_thread("comp" + std::to_string(i), compute_heavy_kernel("ck" + std::to_string(i)),
                      {"args", "done"});
  for (unsigned i = 0; i < membound; ++i)
    app.add_hw_thread("mem" + std::to_string(i), mem_bound_kernel("mk" + std::to_string(i)),
                      {"args", "done"});
  return app;
}

TEST(AutoPartition, GainFavorsComputeOverMemBound) {
  const sls::PlatformSpec plat = sls::zynq7020();
  const double compute_gain = sls::estimate_partition_gain(compute_heavy_kernel("c"), plat);
  const double mem_gain = sls::estimate_partition_gain(mem_bound_kernel("m"), plat);
  EXPECT_GT(compute_gain, 1.0);
  EXPECT_GT(compute_gain, mem_gain);
}

TEST(AutoPartition, KeepsEverythingWhenItFits) {
  sls::SynthesisOptions opts;
  opts.partition = sls::PartitionMode::kAuto;
  sls::SynthesisFlow flow(sls::zynq7045(), opts);
  const auto image = flow.synthesize(candidates_app(2, 0));
  EXPECT_EQ(image.report().hw_threads, 2u);
  EXPECT_TRUE(image.report().demoted_threads.empty());
}

TEST(AutoPartition, DemotesWhenSlotsExhausted) {
  sls::PlatformSpec plat = sls::zynq7020();
  plat.max_hw_threads = 2;
  sls::SynthesisOptions opts;
  opts.partition = sls::PartitionMode::kAuto;
  sls::SynthesisFlow flow(plat, opts);
  const auto image = flow.synthesize(candidates_app(3, 0));
  EXPECT_EQ(image.report().hw_threads, 2u);
  EXPECT_EQ(image.report().sw_threads, 1u);
  EXPECT_EQ(image.report().demoted_threads.size(), 1u);
}

TEST(AutoPartition, PrefersComputeBoundUnderPressure) {
  sls::PlatformSpec plat = sls::zynq7020();
  plat.max_hw_threads = 1;
  sls::SynthesisOptions opts;
  opts.partition = sls::PartitionMode::kAuto;
  sls::SynthesisFlow flow(plat, opts);
  const auto image = flow.synthesize(candidates_app(1, 1));
  ASSERT_EQ(image.hw_plans().size(), 1u);
  EXPECT_EQ(image.hw_plans()[0].thread, "comp0");
  ASSERT_EQ(image.report().demoted_threads.size(), 1u);
  EXPECT_EQ(image.report().demoted_threads[0], "mem0");
}

TEST(AutoPartition, DemotedThreadStillRunsCorrectly) {
  // End-to-end: a demoted candidate executes in software and produces the
  // right answer through the same mailboxes.
  sls::PlatformSpec plat = sls::zynq7020();
  plat.max_hw_threads = 1;
  sls::SynthesisOptions opts;
  opts.partition = sls::PartitionMode::kAuto;
  sls::SynthesisFlow flow(plat, opts);
  const auto app = candidates_app(1, 1);
  const auto image = flow.synthesize(app);

  sim::Simulator sim;
  auto system = image.elaborate(sim);
  for (int i = 0; i < 2; ++i) system->process().mailbox(0).put(3, [] {});
  system->start_all();
  system->run_to_completion();
  i64 a = 0, b = 0;
  EXPECT_TRUE(system->process().mailbox(1).try_get(a));
  EXPECT_TRUE(system->process().mailbox(1).try_get(b));
}

TEST(AutoPartition, UserModeNeverDemotes) {
  sls::PlatformSpec plat = sls::zynq7020();
  plat.max_hw_threads = 2;
  sls::SynthesisFlow flow(plat);  // kUser
  EXPECT_THROW(flow.synthesize(candidates_app(3, 0)), std::invalid_argument);
}

// --- TLB prefetch ---

struct PrefetchFixture : ::testing::Test, mem::FaultSink {
  MemorySystem ms;
  std::unique_ptr<mem::PageWalker> walker;
  std::unique_ptr<mem::Mmu> mmu;

  void raise(mem::FaultRequest req) override {
    ms.as.map_page(req.va);
    ms.sim.schedule_in(100, [retry = req.retry] { retry(); });
  }

  void make(bool prefetch) {
    walker = std::make_unique<mem::PageWalker>(ms.sim, ms.bus, ms.pm, ms.as.page_table(),
                                               mem::WalkerConfig{}, "w");
    mem::MmuConfig cfg;
    cfg.prefetch_next_page = prefetch;
    mmu = std::make_unique<mem::Mmu>(ms.sim, *walker, cfg, "mmu", 0);
    mmu->set_fault_sink(this);
  }

  void translate_sync(VirtAddr va) {
    bool done = false;
    mmu->translate(va, false, [&](PhysAddr) { done = true; });
    ms.run_all();
    ASSERT_TRUE(done);
  }
};

TEST_F(PrefetchFixture, SequentialMissesPrefetched) {
  make(true);
  ms.as.populate(0x10000, 8 * 4096);
  translate_sync(0x10000);  // miss; prefetches page 0x11000
  ms.run_all();
  EXPECT_TRUE(mmu->tlb().peek(0x11).has_value());  // vpn 0x11 = 0x11000 >> 12
  translate_sync(0x11000);  // hit thanks to the prefetch
  EXPECT_EQ(mmu->tlb().misses(), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("mmu.prefetch_fills"), 1u);
}

TEST_F(PrefetchFixture, PrefetchFaultsAreDropped) {
  make(true);
  ms.as.populate(0x10000, 4096);  // next page NOT mapped
  translate_sync(0x10000);
  ms.run_all();
  // The prefetch walk faulted but must not reach the fault sink or fill.
  EXPECT_EQ(ms.sim.stats().counter_value("mmu.prefetch_fills"), 0u);
  EXPECT_EQ(ms.sim.stats().counter_value("mmu.faults"), 0u);
  EXPECT_FALSE(mmu->tlb().peek(0x11).has_value());
}

TEST_F(PrefetchFixture, DisabledByDefault) {
  make(false);
  ms.as.populate(0x10000, 2 * 4096);
  translate_sync(0x10000);
  ms.run_all();
  EXPECT_EQ(ms.sim.stats().counter_value("mmu.prefetches"), 0u);
  EXPECT_FALSE(mmu->tlb().peek(0x11).has_value());
}

// --- walker concurrency ---

Cycles run_concurrent_walks(unsigned ports, unsigned walks) {
  MemorySystem ms;  // fresh system per measurement
  mem::WalkerConfig cfg;
  cfg.ports = ports;
  cfg.walk_cache_enabled = false;
  mem::PageWalker walker(ms.sim, ms.bus, ms.pm, ms.as.page_table(), cfg,
                         "w" + std::to_string(ports));
  ms.as.populate(0x100000, walks * 4096);
  unsigned done = 0;
  const Cycles t0 = ms.sim.now();
  for (unsigned i = 0; i < walks; ++i)
    walker.walk(0x100000 + static_cast<u64>(i) * 4096, [&](const mem::WalkResult& r) {
      EXPECT_FALSE(r.fault);
      ++done;
    });
  ms.run_all();
  EXPECT_EQ(done, walks);
  return ms.sim.now() - t0;
}

TEST(WalkerPorts, MorePortsFinishConcurrentWalksFaster) {
  const Cycles one = run_concurrent_walks(1, 8);
  const Cycles two = run_concurrent_walks(2, 8);
  EXPECT_LT(two, one);
}

TEST(WalkerPorts, ActiveWalksBoundedByPorts) {
  MemorySystem ms;
  mem::WalkerConfig cfg;
  cfg.ports = 2;
  mem::PageWalker walker(ms.sim, ms.bus, ms.pm, ms.as.page_table(), cfg, "w");
  ms.as.populate(0x100000, 6 * 4096);
  for (unsigned i = 0; i < 6; ++i)
    walker.walk(0x100000 + static_cast<u64>(i) * 4096, [](const mem::WalkResult&) {});
  EXPECT_LE(walker.active_walks(), 2u);
  ms.run_all();
  EXPECT_EQ(walker.active_walks(), 0u);
}

TEST(WalkerPorts, ZeroPortsRejected) {
  MemorySystem ms;
  mem::WalkerConfig cfg;
  cfg.ports = 0;
  EXPECT_THROW(mem::PageWalker(ms.sim, ms.bus, ms.pm, ms.as.page_table(), cfg, "w"),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmsls

// Seeded randomized stress/property test for the paging subsystem under
// DMA offload traffic: faults, scatter-gather and CPU-copy offloads, and
// pageout-daemon ticks interleave freely over ~20 seeds. After every run
// the queue must drain, every pin must be released, the swap-device and
// residency ledgers must balance, and the same seed must reproduce the
// run bit-identically (cycles, events, every counter and histogram
// moment) — the determinism contract the whole experiment harness rests
// on.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "dma/dma_engine.hpp"
#include "dma/offload.hpp"
#include "mem/paging/pager.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace vmsls::paging {
namespace {

constexpr u64 kRegionPages = 24;
constexpr u64 kPinnedPages = 6;
constexpr unsigned kOps = 80;

struct StressSnapshot {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> stats;

  bool operator==(const StressSnapshot& o) const {
    return cycles == o.cycles && events == o.events && stats == o.stats;
  }
};

/// One full chaos run: a cold 24-page region under a 6-frame budget with
/// the working-set estimator and pageout daemon armed, driven by a seeded
/// op mix. Ops fire concurrently (the next op is scheduled at issue time,
/// not completion), so faults, chunked offload admissions, and daemon
/// ticks genuinely overlap.
StressSnapshot run_chaos(u64 seed) {
  test::MemorySystem ms;
  rt::OsModel os{ms.sim, rt::OsConfig{}, "os"};
  rt::Process process{ms.sim, ms.as, "p"};
  dma::DmaEngine dma{ms.sim, ms.bus, ms.pm, dma::DmaConfig{}, "dma"};

  PagerConfig pc;
  pc.frame_budget = 6;
  pc.policy = PolicyKind::kClock;
  pc.ws_interval = 900;
  pc.pageout_interval = 400;
  pc.pageout_watermark_pct = 50;
  Pager pager(ms.sim, process, pc, "pager");
  pager.set_os(&os, rt::OsConfig{}.daemon_service);

  dma::OffloadConfig oc;
  dma::OffloadDriver driver(ms.sim, os, process, dma, ms.bus, ms.pm, oc, "offload");
  driver.set_pager(&pager);

  // Region with known contents, then fully cold: every later touch goes
  // through the timed fault path and the swap device.
  const VirtAddr base = ms.as.alloc(kRegionPages * 4096, 4096);
  for (u64 p = 0; p < kRegionPages; ++p) ms.as.write_u64(base + p * 4096, 0xBEEF0000 + p);
  process.evict(base, kRegionPages * 4096);
  const auto pinned = driver.alloc_pinned(kPinnedPages * 4096);
  const u64 maps_at_start = ms.as.faults_serviced();

  Rng rng(seed);
  auto issued = std::make_shared<u64>(0);
  auto completed = std::make_shared<u64>(0);

  std::function<void(unsigned)> next_op = [&](unsigned remaining) {
    if (remaining == 0) return;
    const u64 kind = rng.below(100);
    if (kind < 55) {
      // Demand fault on a random page, sometimes dirtying it — a hardware
      // thread's access pattern.
      const VirtAddr va = base + rng.below(kRegionPages) * 4096;
      const bool write = rng.chance(0.5);
      ++*issued;
      pager.handle_fault(va, write, [&ms, va, write, completed] {
        if (!ms.as.is_mapped(va)) ms.as.map_page(va, /*writable=*/true);
        if (write) ms.as.page_table().set_accessed_dirty(va, /*dirty=*/true);
        ++*completed;
      });
    } else if (kind < 95) {
      // Offload transfer over a random page run — lengths up to the whole
      // pinned buffer, so runs regularly exceed the pin quota (5) and
      // exercise chunking and the admission queue.
      const u64 len = 1 + rng.below(kPinnedPages);
      const u64 first = rng.below(kRegionPages - len + 1);
      ++*issued;
      if (kind < 75)
        driver.copy_in(base + first * 4096, pinned, 0, len * 4096, [completed] { ++*completed; });
      else
        driver.copy_out(pinned, 0, base + first * 4096, len * 4096, [completed] { ++*completed; });
    }  // else: an idle gap — daemon ticks and in-flight work drain alone
    const Cycles gap = rng.range(50, 1800);
    ms.sim.schedule_in(gap, [&next_op, remaining] { next_op(remaining - 1); });
  };
  next_op(kOps);

  StressSnapshot s;
  s.events = test::run_until_drained(ms.sim, /*max_cycles=*/500'000'000ull);

  // --- post-drain invariants ---
  EXPECT_EQ(*completed, *issued) << "seed " << seed;
  EXPECT_EQ(ms.as.pinned_pages(), 0u) << "seed " << seed;
  EXPECT_EQ(driver.pins_held(), 0u) << "seed " << seed;
  // Swap ledger: every pager swap-in is exactly one device read, and every
  // device write is either a fault-path writeback or a daemon pageout.
  EXPECT_EQ(pager.swap().reads(), pager.swap_ins()) << "seed " << seed;
  EXPECT_EQ(pager.swap().writes(), pager.writebacks() + pager.pageouts()) << "seed " << seed;
  // Residency ledger: pages mapped since the cold start minus evictions is
  // exactly what remains resident (nothing leaks, nothing double-frees).
  EXPECT_EQ(ms.as.resident_pages(), ms.as.faults_serviced() - maps_at_start - pager.evictions())
      << "seed " << seed;
  // The stress mix must actually exercise the pressure machinery.
  EXPECT_GT(pager.evictions(), 0u) << "seed " << seed;
  EXPECT_GT(pager.swap_ins(), 0u) << "seed " << seed;

  s.cycles = ms.sim.now();
  s.stats = ms.sim.stats().snapshot();
  return s;
}

TEST(PagingStress, InvariantsHoldAndRunsAreBitIdenticalAcrossSeeds) {
  for (u64 seed = 1; seed <= 20; ++seed) {
    const auto a = run_chaos(seed);
    const auto b = run_chaos(seed);
    EXPECT_EQ(a.cycles, b.cycles) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.stats, b.stats) << "seed " << seed;  // every counter + histogram moment
  }
}

TEST(PagingStress, DistinctSeedsProduceDistinctSchedules) {
  // A sanity check that the seed actually steers the interleaving — if two
  // different seeds ever collide on cycles *and* events *and* the full
  // stat snapshot, the generator is almost certainly not being consumed.
  const auto a = run_chaos(101);
  const auto b = run_chaos(202);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace vmsls::paging

// Property sweeps over workload parameters: every (workload, size, tile)
// combination must synthesize, run, and verify on both thread kinds, and
// burst kernels must agree with their element-wise siblings bit-for-bit.
#include <gtest/gtest.h>

#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {
namespace {

bool run_and_verify(const Workload& wl, sls::ThreadKind kind) {
  const auto app = single_thread_app(wl, kind);
  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);
  system->start_all();
  system->run_to_completion(1'000'000'000ull);
  return wl.verify(*system);
}

// --- size sweeps for the size-sensitive kernels ---

class MatmulSizes : public ::testing::TestWithParam<u64> {};
TEST_P(MatmulSizes, CorrectAtEverySize) {
  WorkloadParams p;
  p.n = GetParam();
  EXPECT_TRUE(run_and_verify(make_matmul(p), sls::ThreadKind::kHardware));
}
INSTANTIATE_TEST_SUITE_P(Sweep, MatmulSizes, ::testing::Values(2u, 3u, 7u, 16u, 31u));

class Conv2dSizes : public ::testing::TestWithParam<u64> {};
TEST_P(Conv2dSizes, CorrectAtEverySize) {
  WorkloadParams p;
  p.n = GetParam();
  EXPECT_TRUE(run_and_verify(make_conv2d(p), sls::ThreadKind::kHardware));
}
INSTANTIATE_TEST_SUITE_P(Sweep, Conv2dSizes, ::testing::Values(4u, 5u, 16u, 33u));

class TileSweep : public ::testing::TestWithParam<u64> {};
TEST_P(TileSweep, BurstKernelsCorrectAtEveryTile) {
  WorkloadParams p;
  p.n = 2048;
  p.tile = GetParam();
  EXPECT_TRUE(run_and_verify(make_vecadd_burst(p), sls::ThreadKind::kHardware));
  EXPECT_TRUE(run_and_verify(make_saxpy_burst(p), sls::ThreadKind::kHardware));
}
INSTANTIATE_TEST_SUITE_P(Sweep, TileSweep, ::testing::Values(8u, 64u, 256u, 1024u, 2048u));

class SeedSweep : public ::testing::TestWithParam<u64> {};
TEST_P(SeedSweep, IrregularKernelsCorrectAcrossInputs) {
  WorkloadParams p;
  p.n = 512;
  p.seed = GetParam();
  EXPECT_TRUE(run_and_verify(make_hash_join(p), sls::ThreadKind::kHardware));
  EXPECT_TRUE(run_and_verify(make_pointer_chase(p), sls::ThreadKind::kHardware));
  EXPECT_TRUE(run_and_verify(make_bfs(p), sls::ThreadKind::kHardware));
}
INSTANTIATE_TEST_SUITE_P(Sweep, SeedSweep, ::testing::Values(1u, 7u, 1234u, 99999u));

// --- cross-variant agreement: burst and element kernels write identical
//     output bytes (the golden verifier pins both to the same model, so it
//     suffices that both verify on the same seed/size) ---

TEST(VariantAgreement, BurstAndElementSeeTheSameData) {
  for (u64 n : {256u, 1024u}) {
    WorkloadParams p;
    p.n = n;
    p.tile = 64;
    EXPECT_TRUE(run_and_verify(make_vecadd(p), sls::ThreadKind::kHardware));
    EXPECT_TRUE(run_and_verify(make_vecadd_burst(p), sls::ThreadKind::kHardware));
    EXPECT_TRUE(run_and_verify(make_saxpy(p), sls::ThreadKind::kHardware));
    EXPECT_TRUE(run_and_verify(make_saxpy_burst(p), sls::ThreadKind::kHardware));
  }
}

// --- page-size robustness: a representative kernel set survives every
//     supported page geometry ---

class PageGeometry : public ::testing::TestWithParam<unsigned> {};
TEST_P(PageGeometry, WorkloadsRunAtEveryPageSize) {
  sls::PlatformSpec plat = sls::zynq7020();
  plat.page_table.page_bits = GetParam();
  WorkloadParams p;
  p.n = 1024;
  for (const std::string name : {"vecadd_burst", "pointer_chase"}) {
    const auto wl = make_workload(name, p);
    const auto app = single_thread_app(wl, sls::ThreadKind::kHardware);
    sls::SynthesisFlow flow(plat);
    const auto image = flow.synthesize(app);
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    system->start_all();
    system->run_to_completion();
    EXPECT_TRUE(wl.verify(*system)) << name << " at page_bits=" << GetParam();
  }
}
INSTANTIATE_TEST_SUITE_P(Sweep, PageGeometry, ::testing::Values(12u, 14u, 16u, 21u));

}  // namespace
}  // namespace vmsls::workloads

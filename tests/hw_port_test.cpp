#include <gtest/gtest.h>

#include "hwt/hw_port.hpp"
#include "test_util.hpp"

namespace vmsls::hwt {
namespace {

using test::MemorySystem;

struct HwPortFixture : ::testing::Test, mem::FaultSink {
  MemorySystem ms;
  mem::WalkerConfig wcfg;
  std::unique_ptr<mem::PageWalker> walker;
  std::unique_ptr<mem::Mmu> mmu;
  std::unique_ptr<HwMemPort> port;
  int faults = 0;

  void raise(mem::FaultRequest req) override {
    ++faults;
    ms.as.map_page(req.va);
    ms.sim.schedule_in(50, [retry = req.retry] { retry(); });
  }

  void make_port(HwPortConfig cfg = {}) {
    walker = std::make_unique<mem::PageWalker>(ms.sim, ms.bus, ms.pm, ms.as.page_table(), wcfg,
                                               "w");
    mmu = std::make_unique<mem::Mmu>(ms.sim, *walker, mem::MmuConfig{}, "mmu", 0);
    mmu->set_fault_sink(this);
    port = std::make_unique<HwMemPort>(ms.sim, *mmu, ms.bus, ms.pm, cfg, "port");
  }

  std::vector<u8> read_sync(VirtAddr va, u32 bytes) {
    std::vector<u8> out;
    port->read(va, bytes, [&](std::vector<u8> data) { out = std::move(data); });
    ms.run_all();
    return out;
  }

  void write_sync(VirtAddr va, std::span<const u8> data) {
    bool done = false;
    port->write(va, data, [&] { done = true; });
    ms.run_all();
    ASSERT_TRUE(done);
  }
};

TEST_F(HwPortFixture, ReadSeesSoftwareWrites) {
  make_port();
  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  ms.as.write_u64(va + 16, 0x1122334455667788ull);
  const auto data = read_sync(va + 16, 8);
  u64 v = 0;
  std::memcpy(&v, data.data(), 8);
  EXPECT_EQ(v, 0x1122334455667788ull);
}

TEST_F(HwPortFixture, WriteVisibleToSoftware) {
  make_port();
  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  const u64 v = 0xfeedface;
  write_sync(va, std::span<const u8>(reinterpret_cast<const u8*>(&v), 8));
  EXPECT_EQ(ms.as.read_u64(va), v);
}

TEST_F(HwPortFixture, PageCrossingBurstSplits) {
  make_port();
  const VirtAddr va = ms.as.alloc(2 * 4096, 4096);
  ms.as.populate(va, 2 * 4096);
  std::vector<u8> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  // Write straddling the page boundary: two translations needed.
  write_sync(va + 4096 - 128, std::span<const u8>(data.data(), data.size()));
  const auto back = read_sync(va + 4096 - 128, 256);
  EXPECT_EQ(back, data);
  EXPECT_GE(ms.sim.stats().counter_value("mmu.translations"), 4u);
}

TEST_F(HwPortFixture, BurstCapSplitsLargeTransfers) {
  HwPortConfig cfg;
  cfg.max_burst_bytes = 64;
  make_port(cfg);
  const VirtAddr va = ms.as.alloc(4096, 4096);
  ms.as.populate(va, 4096);
  read_sync(va, 512);  // 8 bus transactions of 64 B
  EXPECT_GE(ms.sim.stats().counter_value("bus.requests"), 8u);
}

TEST_F(HwPortFixture, FaultingAccessCompletesAfterService) {
  make_port();
  const VirtAddr va = ms.as.alloc(4096);  // not populated
  const u64 v = 42;
  write_sync(va, std::span<const u8>(reinterpret_cast<const u8*>(&v), 8));
  EXPECT_EQ(faults, 1);
  EXPECT_EQ(ms.as.read_u64(va), 42u);
}

TEST_F(HwPortFixture, StatsCountTraffic) {
  make_port();
  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  read_sync(va, 64);
  const u64 v = 1;
  write_sync(va, std::span<const u8>(reinterpret_cast<const u8*>(&v), 8));
  EXPECT_EQ(ms.sim.stats().counter_value("port.reads"), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("port.writes"), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("port.bytes"), 72u);
}

TEST_F(HwPortFixture, ZeroByteAccessRejected) {
  make_port();
  EXPECT_THROW(port->read(0, 0, [](std::vector<u8>) {}), std::invalid_argument);
}

}  // namespace
}  // namespace vmsls::hwt

// Cross-module integration tests: demand paging end-to-end, TLB shootdown
// correctness under eviction, multi-thread contention, and mixed HW/SW
// pipelines — the system-level behaviors the paper's runtime must get right.
#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "workloads/workloads.hpp"

namespace vmsls {
namespace {

using workloads::Workload;
using workloads::WorkloadParams;

TEST(Integration, DemandPagingFaultsThenCompletes) {
  WorkloadParams p;
  p.n = 2048;
  const Workload wl = workloads::make_vecadd(p);
  // Buffers NOT pinned: first hardware touch of each page faults.
  const auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware,
                                                sls::Addressing::kVirtual,
                                                /*pinned_buffers=*/false);
  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);

  // Setup wrote the inputs (software touch maps a+b); evict everything so
  // the hardware thread demand-faults the whole working set.
  u64 evicted = 0;
  for (const auto& buf : app.buffers)
    evicted += system->process().evict(system->buffer(buf.name), buf.bytes);
  ASSERT_GT(evicted, 0u);

  system->start_all();
  system->run_to_completion();
  EXPECT_TRUE(wl.verify(*system));
  // 3 buffers x 2048 x 8 B = 12 pages minimum.
  EXPECT_GE(sim.stats().counter_value("faults.faults"), 12u);
}

TEST(Integration, PinnedRunFaultsZero) {
  WorkloadParams p;
  p.n = 2048;
  const Workload wl = workloads::make_vecadd(p);
  const auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);
  system->start_all();
  system->run_to_completion();
  EXPECT_TRUE(wl.verify(*system));
  EXPECT_EQ(sim.stats().counter_value("faults.faults"), 0u);
}

TEST(Integration, DemandPagingCostsMoreThanPinned) {
  // Histogram touches one buffer strictly in address order, so eviction and
  // refault reuse frames in the same order and the physical layout is
  // identical in both runs — the cycle difference is purely fault cost.
  WorkloadParams p;
  p.n = 64 * KiB;
  auto run = [&](bool pinned) {
    const Workload wl = workloads::make_histogram(p);
    const auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware,
                                                  sls::Addressing::kVirtual, pinned);
    sls::SynthesisFlow flow(sls::zynq7020());
    const auto image = flow.synthesize(app);
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    for (const auto& buf : app.buffers)
      if (!pinned) system->process().evict(system->buffer(buf.name), buf.bytes);
    system->start_all();
    const Cycles c = system->run_to_completion();
    EXPECT_TRUE(wl.verify(*system));
    return c;
  };
  EXPECT_GT(run(false), run(true));
}

TEST(Integration, EvictionMidRunStaysCoherent) {
  // A kernel that reads the same page twice with an eviction in between:
  // the second read must re-fault and still see the right data.
  hwt::KernelBuilder kb("reread");
  using hwt::Reg;
  constexpr Reg ADDR = 1, V1 = 2, V2 = 3, SUM = 4;
  kb.mbox_get(ADDR, 0)
      .load(V1, ADDR)
      .mbox_put(1, V1)   // rendezvous: host evicts while we wait
      .mbox_get(ADDR, 0) // host sends the address again
      .load(V2, ADDR)
      .add(SUM, V1, V2)
      .mbox_put(1, SUM)
      .halt();

  sls::AppSpec app;
  app.name = "coherence";
  app.add_mailbox("args", 4);
  app.add_mailbox("done", 4);
  app.add_buffer("data", 4096, /*pinned=*/true);
  app.add_hw_thread("t", kb.build(), {"args", "done"});

  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);

  const VirtAddr va = system->buffer("data");
  system->address_space().write_u64(va, 111);
  system->process().mailbox(0).put(static_cast<i64>(va), [] {});
  system->start_all();

  // Wait for the first token, then evict the page, change the backing
  // value via a software write (which re-maps), and hand the address back.
  bool finished = false;
  i64 first = 0, second = 0;
  auto& done_mbox = system->process().mailbox(1);
  done_mbox.get([&](i64 v) {
    first = v;
    system->process().evict(va, 4096);
    system->address_space().write_u64(va, 222);
    done_mbox.get([&](i64 v2) {
      second = v2;
      finished = true;
    });
    system->process().mailbox(0).put(static_cast<i64>(va), [] {});
  });
  system->run_to_completion();
  ASSERT_TRUE(finished);
  EXPECT_EQ(first, 111);
  EXPECT_EQ(second, 111 + 222);  // stale TLB would have returned 111 twice
}

TEST(Integration, TwoHwThreadsShareWalkerAndFinish) {
  WorkloadParams p;
  p.n = 1024;
  const Workload a = workloads::make_vecadd(p);
  const Workload b = workloads::make_saxpy(p);

  sls::AppSpec app;
  app.name = "pair";
  app.add_mailbox("args_a", 8);
  app.add_mailbox("args_b", 8);
  app.add_mailbox("done", 8);
  for (const auto& buf : a.buffers) app.add_buffer("a_" + buf.name, buf.bytes);
  for (const auto& buf : b.buffers) app.add_buffer("b_" + buf.name, buf.bytes);
  app.add_hw_thread("ta", a.kernel, {"args_a", "done"});
  app.add_hw_thread("tb", b.kernel, {"args_b", "done"});

  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);

  auto& as = system->address_space();
  auto push = [&](const std::string& mbox, std::vector<i64> vals) {
    auto& m = system->process().mailbox(app.mailbox_index(mbox));
    for (i64 v : vals) m.put(v, [] {});
  };
  // vecadd args: a, b, c, n.
  push("args_a", {static_cast<i64>(system->buffer("a_a")), static_cast<i64>(system->buffer("a_b")),
                  static_cast<i64>(system->buffer("a_c")), static_cast<i64>(p.n)});
  // saxpy args: x, y, alpha, n.
  push("args_b", {static_cast<i64>(system->buffer("b_x")), static_cast<i64>(system->buffer("b_y")),
                  7, static_cast<i64>(p.n)});
  for (u64 i = 0; i < p.n; ++i) {
    as.write_scalar<i64>(system->buffer("a_a") + i * 8, static_cast<i64>(i));
    as.write_scalar<i64>(system->buffer("a_b") + i * 8, static_cast<i64>(2 * i));
    as.write_scalar<i64>(system->buffer("b_x") + i * 8, 1);
    as.write_scalar<i64>(system->buffer("b_y") + i * 8, static_cast<i64>(i));
  }

  system->start_all();
  system->run_to_completion();

  for (u64 i = 0; i < p.n; ++i) {
    EXPECT_EQ(as.read_scalar<i64>(system->buffer("a_c") + i * 8), static_cast<i64>(3 * i));
    EXPECT_EQ(as.read_scalar<i64>(system->buffer("b_y") + i * 8), static_cast<i64>(7 + i));
  }
  // Both MMUs funneled through the one shared walker.
  EXPECT_GT(sim.stats().counter_value("walker.walks"), 0u);
}

TEST(Integration, ContentionSlowsSharedBus) {
  WorkloadParams p;
  p.n = 2048;
  auto run_pair = [&](bool second_thread) {
    const Workload a = workloads::make_saxpy(p);
    sls::AppSpec app;
    app.name = "contend";
    app.add_mailbox("args_a", 8);
    app.add_mailbox("args_b", 8);
    app.add_mailbox("done", 8);
    for (const auto& buf : a.buffers) app.add_buffer("a_" + buf.name, buf.bytes);
    app.add_hw_thread("ta", a.kernel, {"args_a", "done"});
    if (second_thread) {
      for (const auto& buf : a.buffers) app.add_buffer("b_" + buf.name, buf.bytes);
      app.add_hw_thread("tb", a.kernel, {"args_b", "done"});
    }
    sls::SynthesisFlow flow(sls::zynq7020());
    const auto image = flow.synthesize(app);
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    auto push = [&](const std::string& mbox, char prefix) {
      auto& m = system->process().mailbox(app.mailbox_index(mbox));
      m.put(static_cast<i64>(system->buffer(std::string(1, prefix) + "_x")), [] {});
      m.put(static_cast<i64>(system->buffer(std::string(1, prefix) + "_y")), [] {});
      m.put(3, [] {});
      m.put(static_cast<i64>(p.n), [] {});
    };
    push("args_a", 'a');
    if (second_thread) push("args_b", 'b');
    system->start_thread("ta");
    if (second_thread) system->start_thread("tb");
    // Measure thread ta's completion time.
    auto& eng = system->engine("ta");
    while (!eng.halted())
      if (!sim.step()) throw std::runtime_error("stall");
    return eng.halt_time() - eng.start_time();
  };
  const Cycles alone = run_pair(false);
  const Cycles contended = run_pair(true);
  EXPECT_GT(contended, alone);
}

TEST(Integration, MixedPipelineHwBetweenSwStages) {
  using hwt::Reg;
  auto stage = [](const std::string& name, i64 mulby) {
    hwt::KernelBuilder kb(name);
    constexpr Reg N = 1, I = 2, V = 3, T = 4;
    kb.mbox_get(N, 0)
        .li(I, 0)
        .label("loop")
        .seq(T, I, N)
        .bnez(T, "out")
        .mbox_get(V, 1)
        .muli(V, V, mulby)
        .mbox_put(2, V)
        .addi(I, I, 1)
        .jmp("loop")
        .label("out")
        .halt();
    return kb.build();
  };
  hwt::KernelBuilder src("src");
  {
    constexpr Reg N = 1, I = 2, T = 3;
    src.mbox_get(N, 0)
        .li(I, 0)
        .label("loop")
        .seq(T, I, N)
        .bnez(T, "out")
        .mbox_put(1, I)
        .addi(I, I, 1)
        .jmp("loop")
        .label("out")
        .halt();
  }

  sls::AppSpec app;
  app.name = "mixed";
  app.add_mailbox("args", 8);
  app.add_mailbox("q1", 4);
  app.add_mailbox("q2", 4);
  app.add_mailbox("out", 64);
  app.add_sw_thread("producer", src.build(), {"args", "q1"});
  app.add_hw_thread("xform", stage("xform", 3), {"args", "q1", "q2"});
  app.add_sw_thread("sink", stage("sink", 1), {"args", "q2", "out"});

  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  constexpr i64 kItems = 16;
  for (int i = 0; i < 3; ++i) system->process().mailbox(0).put(kItems, [] {});
  system->start_all();
  system->run_to_completion();

  auto& out = system->process().mailbox(app.mailbox_index("out"));
  for (i64 i = 0; i < kItems; ++i) {
    i64 v = 0;
    ASSERT_TRUE(out.try_get(v));
    EXPECT_EQ(v, i * 3);
  }
}

TEST(Integration, StatsExposeFullTranslationPath) {
  WorkloadParams p;
  p.n = 512;
  const Workload wl = workloads::make_pointer_chase(p);
  const auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);
  system->start_all();
  system->run_to_completion();
  ASSERT_TRUE(wl.verify(*system));
  const auto& st = sim.stats();
  EXPECT_GT(st.counter_value("hwt.worker.mmu.translations"), 0u);
  EXPECT_GT(st.counter_value("walker.walks"), 0u);
  EXPECT_GT(st.counter_value("bus.requests"), 0u);
  EXPECT_GT(st.counter_value("dram.reads"), 0u);
  EXPECT_EQ(st.counter_value("hwt.worker.mmu.tlb.hits") +
                st.counter_value("hwt.worker.mmu.tlb.misses"),
            st.counter_value("hwt.worker.mmu.translations"));
}

}  // namespace
}  // namespace vmsls

// Differential testing: the cycle-accounted Engine against the reference
// Interpreter on randomly generated programs. Any divergence in
// architectural state (registers, scratchpad, retired count) is an ISA
// semantics bug in one of the two independent implementations.
#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "hwt/engine.hpp"
#include "hwt/interp.hpp"
#include "sim/simulator.hpp"

namespace vmsls::hwt {
namespace {

InterpResult run_engine(const Kernel& kernel, const EngineConfig& cfg = {}) {
  sim::Simulator sim;
  Engine engine(sim, kernel, cfg, "dut");
  bool halted = false;
  engine.start([&] { halted = true; });
  while (sim.step()) {
  }
  EXPECT_TRUE(halted);
  InterpResult r;
  for (unsigned i = 0; i < kNumRegs; ++i) r.regs[i] = engine.reg(i);
  r.spad.assign(engine.spad().begin(), engine.spad().end());
  r.instructions = engine.instructions_retired();
  r.halted = halted;
  return r;
}

class RandomPrograms : public ::testing::TestWithParam<u64> {};

TEST_P(RandomPrograms, EngineMatchesReferenceInterpreter) {
  const Kernel kernel = random_kernel(GetParam());
  Interpreter ref(kernel);
  const InterpResult expected = ref.run();
  const InterpResult actual = run_engine(kernel);

  EXPECT_EQ(actual.instructions, expected.instructions);
  for (unsigned i = 0; i < kNumRegs; ++i)
    EXPECT_EQ(actual.regs[i], expected.regs[i]) << "register r" << i << " seed " << GetParam();
  EXPECT_EQ(actual.spad, expected.spad) << "scratchpad mismatch, seed " << GetParam();
}

TEST_P(RandomPrograms, BatchLimitDoesNotChangeSemantics) {
  const Kernel kernel = random_kernel(GetParam());
  EngineConfig tiny;
  tiny.batch_limit = 2;
  const InterpResult a = run_engine(kernel);
  const InterpResult b = run_engine(kernel, tiny);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.spad, b.spad);
}

TEST_P(RandomPrograms, ClockRatioDoesNotChangeSemantics) {
  const Kernel kernel = random_kernel(GetParam());
  EngineConfig fast;
  fast.clock = sim::ClockDomain{10, 3};
  fast.cost = cpu_cost_model();
  const InterpResult a = run_engine(kernel);
  const InterpResult b = run_engine(kernel, fast);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.spad, b.spad);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<u64>(1, 33));  // 32 random programs x 3 properties

TEST(Interpreter, MemoryRoundTrip) {
  KernelBuilder kb("m");
  kb.li(1, 0x100).li(2, 77).store(1, 2).load(3, 1).halt();
  Interpreter in(kb.build());
  const auto r = in.run();
  EXPECT_EQ(r.regs[3], 77);
  EXPECT_EQ(in.peek(0x100), 77u);
}

TEST(Interpreter, MailboxStreams) {
  KernelBuilder kb("mb");
  kb.mbox_get(1, 0).mbox_get(2, 0).add(3, 1, 2).mbox_put(1, 3).halt();
  Interpreter in(kb.build());
  in.feed_mailbox(0, 30);
  in.feed_mailbox(0, 12);
  in.run();
  ASSERT_EQ(in.mailbox_output(1).size(), 1u);
  EXPECT_EQ(in.mailbox_output(1)[0], 42);
}

TEST(Interpreter, StarvedMailboxThrows) {
  KernelBuilder kb("mb");
  kb.mbox_get(1, 0).halt();
  Interpreter in(kb.build());
  EXPECT_THROW(in.run(), std::runtime_error);
}

TEST(Interpreter, LivelockGuard) {
  KernelBuilder kb("spin");
  kb.label("loop").jmp("loop").halt();
  Interpreter in(kb.build());
  EXPECT_THROW(in.run(10000), std::runtime_error);
}

TEST(Interpreter, BurstThroughScratchpad) {
  KernelBuilder kb("b", 64);
  kb.li(1, 0x200).li(2, 0).li(3, 16)
      .burst_load(2, 1, 3)       // spad[0..16) <- mem[0x200..)
      .spad_load(4, 2, 8)        // second word
      .burst_store(1, 2, 3)      // write back
      .halt();
  Interpreter in(kb.build());
  in.poke(0x200, 0x1111);
  in.poke(0x208, 0x2222);
  const auto r = in.run();
  EXPECT_EQ(r.regs[4], 0x2222);
  EXPECT_EQ(in.peek(0x208), 0x2222u);
}

TEST(RandomKernels, AreValidAndTerminate) {
  for (u64 seed = 100; seed < 120; ++seed) {
    const Kernel k = random_kernel(seed);
    EXPECT_NO_THROW(verify(k));
    Interpreter in(k);
    const auto r = in.run();
    EXPECT_TRUE(r.halted);
  }
}

TEST(RandomKernels, DeterministicInSeed) {
  const Kernel a = random_kernel(7);
  const Kernel b = random_kernel(7);
  ASSERT_EQ(a.code.size(), b.code.size());
  for (std::size_t i = 0; i < a.code.size(); ++i)
    EXPECT_EQ(to_string(a.code[i]), to_string(b.code[i]));
}

}  // namespace
}  // namespace vmsls::hwt

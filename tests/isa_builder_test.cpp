#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "hwt/kernel.hpp"

namespace vmsls::hwt {
namespace {

TEST(Isa, BlockingClassification) {
  EXPECT_TRUE(is_blocking(Op::kLoad));
  EXPECT_TRUE(is_blocking(Op::kBurstStore));
  EXPECT_TRUE(is_blocking(Op::kMboxGet));
  EXPECT_TRUE(is_blocking(Op::kDelay));
  EXPECT_TRUE(is_blocking(Op::kHalt));
  EXPECT_FALSE(is_blocking(Op::kAdd));
  EXPECT_FALSE(is_blocking(Op::kSpadLoad));
  EXPECT_FALSE(is_blocking(Op::kBeqz));
}

TEST(Isa, MemAndOsClassification) {
  EXPECT_TRUE(is_mem(Op::kLoad));
  EXPECT_TRUE(is_mem(Op::kBurstLoad));
  EXPECT_FALSE(is_mem(Op::kSpadLoad));
  EXPECT_TRUE(is_os(Op::kSemPost));
  EXPECT_FALSE(is_os(Op::kLoad));
}

TEST(Isa, OpNamesUnique) {
  std::set<std::string> names;
  for (int op = 0; op <= static_cast<int>(Op::kHalt); ++op)
    EXPECT_TRUE(names.insert(op_name(static_cast<Op>(op))).second)
        << "duplicate mnemonic for op " << op;
}

TEST(Isa, ToStringRendersOperands) {
  Instr in{Op::kAddi, 3, 2, 0, 8, 0, -5};
  const std::string s = to_string(in);
  EXPECT_NE(s.find("addi"), std::string::npos);
  EXPECT_NE(s.find("r3"), std::string::npos);
  EXPECT_NE(s.find("-5"), std::string::npos);
}

TEST(Builder, EmitsInOrder) {
  KernelBuilder kb("k");
  kb.li(1, 42).addi(2, 1, 1).halt();
  const Kernel k = kb.build();
  ASSERT_EQ(k.code.size(), 3u);
  EXPECT_EQ(k.code[0].op, Op::kLi);
  EXPECT_EQ(k.code[1].op, Op::kAddi);
  EXPECT_EQ(k.code[2].op, Op::kHalt);
}

TEST(Builder, LabelsResolveForwardAndBackward) {
  KernelBuilder kb("k");
  kb.label("top").li(1, 0).beqz(1, "end").jmp("top").label("end").halt();
  const Kernel k = kb.build();
  EXPECT_EQ(k.code[1].imm, 3);  // beqz -> "end" at index 3
  EXPECT_EQ(k.code[2].imm, 0);  // jmp -> "top" at index 0
}

TEST(Builder, UndefinedLabelThrows) {
  KernelBuilder kb("k");
  kb.jmp("nowhere").halt();
  EXPECT_THROW(kb.build(), std::invalid_argument);
}

TEST(Builder, DuplicateLabelThrows) {
  KernelBuilder kb("k");
  kb.label("x");
  EXPECT_THROW(kb.label("x"), std::invalid_argument);
}

TEST(Builder, InterfaceDerivedFromCode) {
  KernelBuilder kb("k", 256);
  kb.mbox_get(1, 0).mbox_get(2, 3).sem_post(1).load(3, 1, 0, 8, 2).halt();
  const Kernel k = kb.build();
  EXPECT_EQ(k.iface.mailboxes, 4u);   // highest index 3
  EXPECT_EQ(k.iface.semaphores, 2u);  // highest index 1
  EXPECT_EQ(k.iface.mem_ports, 3u);   // highest port 2
  EXPECT_EQ(k.iface.spad_bytes, 256u);
}

TEST(Builder, OpHistogramCounts) {
  KernelBuilder kb("k");
  kb.li(1, 1).li(2, 2).add(3, 1, 2).halt();
  const Kernel k = kb.build();
  EXPECT_EQ(k.op_histogram[static_cast<std::size_t>(Op::kLi)], 2u);
  EXPECT_EQ(k.op_histogram[static_cast<std::size_t>(Op::kAdd)], 1u);
}

TEST(Verify, EmptyKernelRejected) {
  Kernel k;
  k.name = "empty";
  EXPECT_THROW(verify(k), std::invalid_argument);
}

TEST(Verify, MissingHaltRejected) {
  KernelBuilder kb("k");
  kb.li(1, 0);
  EXPECT_THROW(kb.build(), std::invalid_argument);
}

TEST(Verify, BranchTargetOutOfRangeRejected) {
  Kernel k;
  k.name = "bad";
  k.code = {Instr{Op::kJmp, 0, 0, 0, 8, 0, 99}, Instr{Op::kHalt, 0, 0, 0, 8, 0, 0}};
  EXPECT_THROW(verify(k), std::invalid_argument);
}

TEST(Verify, BadAccessSizeRejected) {
  Kernel k;
  k.name = "bad";
  k.iface.mem_ports = 1;
  k.code = {Instr{Op::kLoad, 1, 2, 0, 3, 0, 0}, Instr{Op::kHalt, 0, 0, 0, 8, 0, 0}};
  EXPECT_THROW(verify(k), std::invalid_argument);
}

TEST(Verify, BurstWithoutScratchpadRejected) {
  Kernel k;
  k.name = "bad";
  k.iface.mem_ports = 1;
  k.code = {Instr{Op::kBurstLoad, 0, 1, 2, 8, 0, 0}, Instr{Op::kHalt, 0, 0, 0, 8, 0, 0}};
  EXPECT_THROW(verify(k), std::invalid_argument);
}

TEST(Verify, UndeclaredPortRejected) {
  Kernel k;
  k.name = "bad";
  k.iface.mem_ports = 1;  // but code uses port 2
  k.code = {Instr{Op::kLoad, 1, 2, 0, 8, 2, 0}, Instr{Op::kHalt, 0, 0, 0, 8, 0, 0}};
  EXPECT_THROW(verify(k), std::invalid_argument);
}

TEST(Disassemble, ListsEveryInstruction) {
  KernelBuilder kb("demo");
  kb.li(1, 7).halt();
  const std::string text = disassemble(kb.build());
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("li"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace vmsls::hwt

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "util/log.hpp"

namespace vmsls {
namespace {

/// Redirects std::cerr for the duration of a test.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::level(); }
  void TearDown() override { Logger::set_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, MessagesBelowThresholdSuppressed) {
  Logger::set_level(LogLevel::kWarn);
  CerrCapture cap;
  log_info("who", "should not appear");
  log_debug("who", "nor this");
  EXPECT_TRUE(cap.text().empty());
}

TEST_F(LogTest, MessagesAtThresholdEmitted) {
  Logger::set_level(LogLevel::kInfo);
  CerrCapture cap;
  log_info("component", "value=", 42);
  const std::string out = cap.text();
  EXPECT_NE(out.find("[INFO]"), std::string::npos);
  EXPECT_NE(out.find("component"), std::string::npos);
  EXPECT_NE(out.find("value=42"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveWarn) {
  Logger::set_level(LogLevel::kWarn);
  CerrCapture cap;
  log_error("x", "boom");
  EXPECT_NE(cap.text().find("[ERROR]"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  CerrCapture cap;
  log_error("x", "boom");
  log_warn("x", "warn");
  EXPECT_TRUE(cap.text().empty());
}

TEST_F(LogTest, ConcatHandlesMixedTypes) {
  Logger::set_level(LogLevel::kDebug);
  CerrCapture cap;
  log_debug("mix", "a=", 1, " b=", 2.5, " c=", std::string("s"));
  const std::string out = cap.text();
  EXPECT_NE(out.find("a=1 b=2.5 c=s"), std::string::npos);
}

}  // namespace
}  // namespace vmsls

#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/cache.hpp"
#include "test_util.hpp"

namespace vmsls::mem {
namespace {

using test::MemorySystem;

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 1 * KiB;
  c.ways = 2;
  c.line_bytes = 32;
  c.hit_latency = 1;
  return c;
}

TEST(CacheLevel, MissThenHit) {
  StatRegistry stats;
  CacheLevel c(small_cache(), stats, "c");
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x11F, false).hit);  // same 32 B line
  EXPECT_FALSE(c.access(0x120, false).hit);  // next line
}

TEST(CacheLevel, DirtyEvictionReportsWriteback) {
  StatRegistry stats;
  CacheConfig cfg = small_cache();
  cfg.size_bytes = 64;  // 2 lines, 2 ways: one set
  CacheLevel c(cfg, stats, "c");
  c.access(0, true);                       // dirty
  c.access(64, false);                     // fills other way
  const auto out = c.access(128, false);   // evicts line 0 (LRU, dirty)
  EXPECT_TRUE(out.writeback);
  EXPECT_EQ(out.writeback_addr, 0u);
}

TEST(CacheLevel, CleanEvictionNoWriteback) {
  StatRegistry stats;
  CacheConfig cfg = small_cache();
  cfg.size_bytes = 64;
  CacheLevel c(cfg, stats, "c");
  c.access(0, false);
  c.access(64, false);
  EXPECT_FALSE(c.access(128, false).writeback);
}

TEST(CacheLevel, LruKeepsHotLine) {
  StatRegistry stats;
  CacheConfig cfg = small_cache();
  cfg.size_bytes = 64;
  CacheLevel c(cfg, stats, "c");
  c.access(0, false);
  c.access(64, false);
  c.access(0, false);    // 0 hot
  c.access(128, false);  // evicts 64
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(64, false).hit);
}

TEST(CacheLevel, FlushInvalidates) {
  StatRegistry stats;
  CacheLevel c(small_cache(), stats, "c");
  c.access(0, true);
  c.flush();
  EXPECT_FALSE(c.access(0, false).hit);
}

TEST(CacheLevel, BadGeometryRejected) {
  StatRegistry stats;
  CacheConfig cfg = small_cache();
  cfg.line_bytes = 33;
  EXPECT_THROW(CacheLevel(cfg, stats, "c"), std::invalid_argument);
}

struct HierarchyFixture : ::testing::Test {
  MemorySystem ms;
  CacheHierarchyConfig cfg;
  std::unique_ptr<CacheHierarchy> h;

  void make() { h = std::make_unique<CacheHierarchy>(ms.sim, ms.bus, cfg, "h"); }

  Cycles access_sync(PhysAddr addr, u32 bytes, bool write) {
    const Cycles t0 = ms.sim.now();
    bool done = false;
    h->access(addr, bytes, write, [&] { done = true; });
    ms.run_all();
    EXPECT_TRUE(done);
    return ms.sim.now() - t0;
  }
};

TEST_F(HierarchyFixture, ColdMissCostsMoreThanWarmHit) {
  make();
  const Cycles cold = access_sync(0x1000, 8, false);
  const Cycles warm = access_sync(0x1000, 8, false);
  EXPECT_GT(cold, warm);
  EXPECT_EQ(warm, cfg.l1.hit_latency);
}

TEST_F(HierarchyFixture, L2CatchesL1Evictions) {
  make();
  // Touch more lines than L1 holds but fewer than L2: second pass hits L2.
  const u64 lines = cfg.l1.size_bytes / cfg.l1.line_bytes * 2;
  for (u64 i = 0; i < lines; ++i) access_sync(i * cfg.l1.line_bytes, 8, false);
  const u64 l2_hits_before = h->l2().hits();
  for (u64 i = 0; i < lines; ++i) access_sync(i * cfg.l1.line_bytes, 8, false);
  EXPECT_GT(h->l2().hits(), l2_hits_before);
}

TEST_F(HierarchyFixture, MultiLineAccessTouchesEachLine) {
  make();
  access_sync(0, 256, false);  // 8 lines of 32 B
  EXPECT_EQ(h->l1().misses(), 256 / cfg.l1.line_bytes);
}

TEST_F(HierarchyFixture, WritebacksReachTheBus) {
  make();
  // Dirty many lines, then stream far past both caches to force evictions.
  const u64 lines = (cfg.l2.size_bytes / cfg.l2.line_bytes) * 2;
  for (u64 i = 0; i < lines; ++i) access_sync(i * cfg.l1.line_bytes, 8, true);
  EXPECT_GT(ms.sim.stats().counter_value("bus.writes"), 0u);
}

// --- address space ---

TEST(AddressSpace, AllocBumpsAndAligns) {
  MemorySystem ms;
  const VirtAddr a = ms.as.alloc(100, 64);
  const VirtAddr b = ms.as.alloc(10, 64);
  EXPECT_TRUE(is_aligned(a, 64));
  EXPECT_TRUE(is_aligned(b, 64));
  EXPECT_GE(b, a + 100);
}

TEST(AddressSpace, SoftwareTouchMapsOnDemand) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(4096);
  EXPECT_FALSE(ms.as.is_mapped(va));
  ms.as.write_u64(va, 42);
  EXPECT_TRUE(ms.as.is_mapped(va));
  EXPECT_EQ(ms.as.read_u64(va), 42u);
}

TEST(AddressSpace, PopulatePinsRange) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(3 * 4096);
  ms.as.populate(va, 3 * 4096);
  for (u64 p = 0; p < 3; ++p) EXPECT_TRUE(ms.as.is_mapped(va + p * 4096));
  EXPECT_EQ(ms.as.resident_pages(), 3u);
}

TEST(AddressSpace, EvictionPreservesContents) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(2 * 4096);
  ms.as.write_u64(va + 100, 0x1111);
  ms.as.write_u64(va + 4096 + 100, 0x2222);
  const u64 free_before = ms.frames.free_frames();
  EXPECT_EQ(ms.as.evict(va, 2 * 4096), 2u);
  EXPECT_FALSE(ms.as.is_mapped(va));
  EXPECT_EQ(ms.frames.free_frames(), free_before + 2);
  // Demand-mapping restores the evicted bytes from the backing store.
  ms.as.map_page(va);
  ms.as.map_page(va + 4096);
  EXPECT_EQ(ms.as.read_u64(va + 100), 0x1111u);
  EXPECT_EQ(ms.as.read_u64(va + 4096 + 100), 0x2222u);
}

TEST(AddressSpace, TranslateOffsets) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  const auto pa = ms.as.translate(va + 123);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa & 0xFFF, (va + 123) & 0xFFF);
  EXPECT_FALSE(ms.as.translate(va + 64 * 4096).has_value());
}

TEST(AddressSpace, CrossPageReadWrite) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(3 * 4096);
  std::vector<u8> data(9000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  ms.as.write(va + 1000, std::span<const u8>(data.data(), data.size()));
  std::vector<u8> back(data.size());
  ms.as.read(va + 1000, std::span<u8>(back.data(), back.size()));
  EXPECT_EQ(back, data);
}

TEST(AddressSpace, EvictUnmappedIsNoop) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(4096);
  EXPECT_EQ(ms.as.evict(va, 4096), 0u);
}

TEST(AddressSpace, FaultCountTracksDemandMaps) {
  MemorySystem ms;
  const VirtAddr va = ms.as.alloc(4096);
  const u64 before = ms.as.faults_serviced();
  ms.as.map_page(va);
  EXPECT_EQ(ms.as.faults_serviced(), before + 1);
}

TEST(AddressSpace, LargePageGeometry) {
  MemorySystem ms{PageTableConfig{32, 16}};  // 64 KiB pages
  EXPECT_EQ(ms.as.page_bytes(), 64 * KiB);
  const VirtAddr va = ms.as.alloc(128 * KiB);
  ms.as.populate(va, 128 * KiB);
  EXPECT_EQ(ms.as.resident_pages(), 2u);
}

}  // namespace
}  // namespace vmsls::mem

// Seeded gauntlet for the file-backed memory tier: two processes chase the
// same pointer chain out of one shared file under frame pressure, across 20
// seeds and two buffer-cache geometries (huge = all hits after cold start,
// tiny = capacity evictions, device reads, and cross-process merges). Every
// seed must verify functionally, keep its lifecycle ledgers partitioned,
// drain its event queue, and — run twice on fresh simulators — reproduce
// bit-identically down to the full stats registry.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>

#include "mem/backing_file.hpp"
#include "mem/paging/frame_pool.hpp"
#include "sls/process_group.hpp"
#include "sls/synthesis.hpp"
#include "workloads/workloads.hpp"

namespace vmsls {
namespace {

constexpr u64 kPage = 4 * KiB;
constexpr unsigned kProcs = 2;

struct RunOutcome {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> snapshot;
};

RunOutcome run_seed(u64 seed, u64 bcache_capacity) {
  sim::Simulator sim;
  workloads::WorkloadParams params;
  params.n = 1024;  // 8-page working set per process
  params.seed = seed;

  sls::PlatformSpec plat = sls::zynq7045();
  plat.pager.budget_mode = paging::BudgetMode::kPerProcess;
  plat.pager.policy = paging::PolicyKind::kClock;
  plat.pager.policy_seed = seed;
  plat.pager.swap.shared = false;
  plat.pager.swap.readahead = 0;
  plat.pager.bcache.capacity_blocks = bcache_capacity;

  paging::FramePoolConfig pool_cfg;
  pool_cfg.mode = paging::BudgetMode::kPerProcess;
  pool_cfg.policy = plat.pager.policy;
  pool_cfg.policy_seed = seed;

  sls::ProcessGroup group(sim, plat, pool_cfg);
  std::vector<workloads::Workload> wls;
  mem::BackingFile* file = nullptr;
  for (unsigned i = 0; i < kProcs; ++i) {
    wls.push_back(workloads::make_pointer_chase(params));
    const u64 ws = ceil_div(wls[i].footprint_hint_bytes, kPage);
    sls::PlatformSpec proc_plat = plat;
    proc_plat.pager.frame_budget = std::max<u64>(2, ws / 2);  // 50% residency
    sls::SynthesisFlow flow(proc_plat);
    auto app = workloads::single_thread_app(wls[i], sls::ThreadKind::kHardware,
                                            sls::Addressing::kVirtual,
                                            /*pinned_buffers=*/false);
    auto& sys = group.add_process(flow.synthesize(app), "p" + std::to_string(i));
    const auto& buf = wls[i].buffers.at(0);
    if (file == nullptr) file = &group.files().create("chain.dat", buf.bytes);
    sys.address_space().bind_file(sys.buffer(buf.name), buf.bytes, *file, 0, /*shared=*/true);
    wls[i].setup(sys);
    sys.process().evict(sys.buffer(buf.name), buf.bytes);  // cold start
  }
  while (sim.step()) {
  }
  // The cold-start evicts above route through the lifecycle fork too (the
  // setup pages are dirty, so they write through the cache) — the eviction
  // ledger below is therefore a run-phase delta.
  std::vector<std::array<u64, 4>> before;  // evictions, drops, writebacks, shared_releases
  for (unsigned i = 0; i < kProcs; ++i) {
    paging::Pager& pager = *group.process(i).pager();
    before.push_back({pager.evictions(), pager.file_drops(), pager.file_writebacks(),
                      pager.shared_releases()});
  }

  group.start_all();
  RunOutcome r;
  const u64 events_before = sim.events_executed();
  r.cycles = group.run_to_completion();
  const Cycles deadline = sim.now() + 1'000'000'000ull;
  while (sim.step())
    if (sim.now() > deadline) throw std::runtime_error("stress: queue failed to drain");
  EXPECT_FALSE(group.buffer_cache().busy());
  r.events = sim.events_executed() - events_before;

  for (unsigned i = 0; i < kProcs; ++i) {
    EXPECT_TRUE(wls[i].verify(group.process(i))) << "seed " << seed << " p" << i;
    paging::Pager& pager = *group.process(i).pager();
    // File-backed working set: zero swap traffic, every pager eviction a
    // clean drop, a cache write-through, or — now that the frames are
    // refcounted — a release of a frame other sharers still hold; every
    // refault a cache lookup.
    EXPECT_EQ(pager.swap().reads(), 0u) << "seed " << seed;
    EXPECT_EQ(pager.swap().writes(), 0u) << "seed " << seed;
    EXPECT_EQ(pager.swap_ins(), 0u) << "seed " << seed;
    EXPECT_EQ(pager.evictions() - before[i][0],
              (pager.file_drops() - before[i][1]) + (pager.file_writebacks() - before[i][2]) +
                  (pager.shared_releases() - before[i][3]))
        << "seed " << seed;
    EXPECT_EQ(pager.file_reads(),
              pager.buffer_cache().client_hits(pager.bcache_client()) +
                  pager.buffer_cache().client_misses(pager.bcache_client()))
        << "seed " << seed;
  }
  const paging::BufferCache& bc = group.buffer_cache();
  EXPECT_EQ(bc.misses(), bc.device_reads() + bc.merged_reads()) << "seed " << seed;

  r.snapshot = sim.stats().snapshot();
  return r;
}

TEST(FileBackedStress, TwentySeedsVerifyAndReproduceBitIdentically) {
  for (u64 seed = 1; seed <= 20; ++seed) {
    // Odd seeds run with a tiny cache so capacity evictions, device reads,
    // and cross-process merges all exercise; even seeds keep the default
    // hit-dominated geometry.
    const u64 capacity = (seed % 2 == 1) ? 8 : 4096;
    const RunOutcome a = run_seed(seed, capacity);
    const RunOutcome b = run_seed(seed, capacity);
    EXPECT_EQ(a.cycles, b.cycles) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(a.snapshot, b.snapshot) << "seed " << seed;
    EXPECT_GT(a.cycles, 0u);
  }
}

}  // namespace
}  // namespace vmsls

#include <gtest/gtest.h>

#include "dma/dma_engine.hpp"
#include "dma/offload.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "test_util.hpp"

namespace vmsls::dma {
namespace {

using test::MemorySystem;

struct DmaFixture : ::testing::Test {
  MemorySystem ms;
  DmaEngine dma{ms.sim, ms.bus, ms.pm, DmaConfig{}, "dma"};

  Cycles copy_sync(PhysAddr src, PhysAddr dst, u64 bytes) {
    const Cycles t0 = ms.sim.now();
    bool done = false;
    dma.copy(src, dst, bytes, [&] { done = true; });
    ms.run_all();
    EXPECT_TRUE(done);
    return ms.sim.now() - t0;
  }
};

TEST_F(DmaFixture, CopiesBytes) {
  std::vector<u8> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  ms.pm.write(0x1000, std::span<const u8>(data.data(), data.size()));
  copy_sync(0x1000, 0x8000, data.size());
  std::vector<u8> out(data.size());
  ms.pm.read(0x8000, std::span<u8>(out.data(), out.size()));
  EXPECT_EQ(out, data);
}

TEST_F(DmaFixture, CostScalesWithSize) {
  const Cycles small = copy_sync(0, 64 * KiB, 256);
  const Cycles large = copy_sync(0, 64 * KiB, 16 * KiB);
  EXPECT_GT(large, small * 10);
}

TEST_F(DmaFixture, SetupLatencyCharged) {
  const Cycles c = copy_sync(0, 4096, 8);
  EXPECT_GE(c, DmaConfig{}.setup_latency);
}

TEST_F(DmaFixture, TransfersCounted) {
  copy_sync(0, 8192, 100);
  EXPECT_EQ(dma.transfers(), 1u);
  EXPECT_EQ(ms.sim.stats().counter_value("dma.bytes"), 100u);
}

TEST_F(DmaFixture, ZeroBytesRejected) {
  EXPECT_THROW(dma.copy(0, 8, 0, [] {}), std::invalid_argument);
}

struct OffloadRig {
  MemorySystem ms;
  rt::OsConfig os_cfg;
  rt::OsModel os{ms.sim, os_cfg, "os"};
  rt::Process process{ms.sim, ms.as, "p"};
  DmaEngine dma{ms.sim, ms.bus, ms.pm, DmaConfig{}, "dma"};

  std::unique_ptr<OffloadDriver> driver;

  void make(OffloadConfig cfg = {}) {
    driver = std::make_unique<OffloadDriver>(ms.sim, os, process, dma, ms.bus, ms.pm, cfg,
                                             "off");
  }

  Cycles copy_in_sync(VirtAddr va, const PinnedBuffer& buf, u64 bytes) {
    const Cycles t0 = ms.sim.now();
    bool done = false;
    driver->copy_in(va, buf, 0, bytes, [&] { done = true; });
    ms.run_all();
    EXPECT_TRUE(done);
    return ms.sim.now() - t0;
  }
};

struct OffloadFixture : ::testing::Test, OffloadRig {};

TEST_F(OffloadFixture, PinnedBufferIsContiguous) {
  make();
  const auto buf = driver->alloc_pinned(3 * 4096 + 100);
  EXPECT_EQ(buf.frame_count, 4u);
  EXPECT_EQ(buf.pa, ms.frames.frame_addr(buf.first_frame));
  driver->free_pinned(buf);
}

TEST_F(OffloadFixture, SgDmaCopyInMovesData) {
  make();
  const VirtAddr va = ms.as.alloc(2 * 4096, 4096);
  std::vector<u8> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 3);
  ms.as.write(va, std::span<const u8>(data.data(), data.size()));
  const auto buf = driver->alloc_pinned(data.size());
  copy_in_sync(va, buf, data.size());
  std::vector<u8> out(data.size());
  ms.pm.read(buf.pa, std::span<u8>(out.data(), out.size()));
  EXPECT_EQ(out, data);
}

TEST_F(OffloadFixture, CopyOutRestoresUserData) {
  make();
  const VirtAddr va = ms.as.alloc(4096, 4096);
  ms.as.populate(va, 4096);
  const auto buf = driver->alloc_pinned(4096);
  std::vector<u8> data(4096, 0x5a);
  ms.pm.write(buf.pa, std::span<const u8>(data.data(), data.size()));
  bool done = false;
  driver->copy_out(buf, 0, va, 4096, [&] { done = true; });
  ms.run_all();
  ASSERT_TRUE(done);
  EXPECT_EQ(ms.as.read_u64(va), 0x5a5a5a5a5a5a5a5aull);
}

TEST_F(OffloadFixture, CpuCopySlowerThanSgDmaForLargeBuffers) {
  make(OffloadConfig{CopyMode::kSgDma, 280, 500, 32});
  const VirtAddr va = ms.as.alloc(64 * KiB, 4096);
  ms.as.populate(va, 64 * KiB);
  const auto buf = driver->alloc_pinned(64 * KiB);
  const Cycles dma_cycles = copy_in_sync(va, buf, 64 * KiB);

  OffloadRig other;  // fresh system for the CPU-copy run
  other.make(OffloadConfig{CopyMode::kCpuCopy, 280, 500, 32});
  const VirtAddr va2 = other.ms.as.alloc(64 * KiB, 4096);
  other.ms.as.populate(va2, 64 * KiB);
  const auto buf2 = other.driver->alloc_pinned(64 * KiB);
  const Cycles cpu_cycles = other.copy_in_sync(va2, buf2, 64 * KiB);

  EXPECT_GT(cpu_cycles, dma_cycles);
}

TEST_F(OffloadFixture, PinCostsScaleWithPages) {
  make();
  const VirtAddr va = ms.as.alloc(16 * 4096, 4096);
  ms.as.populate(va, 16 * 4096);
  const auto buf = driver->alloc_pinned(16 * 4096);
  copy_in_sync(va, buf, 16 * 4096);
  EXPECT_EQ(ms.sim.stats().counter_value("off.pages_pinned"), 16u);
}

TEST_F(OffloadFixture, CopyInMapsUnmappedUserPages) {
  make();
  const VirtAddr va = ms.as.alloc(4096, 4096);  // never touched
  const auto buf = driver->alloc_pinned(4096);
  copy_in_sync(va, buf, 4096);
  EXPECT_TRUE(ms.as.is_mapped(va));  // get_user_pages semantics
}

TEST_F(OffloadFixture, OverrunRejected) {
  make();
  const auto buf = driver->alloc_pinned(4096);
  EXPECT_THROW(driver->copy_in(0, buf, 4000, 200, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace vmsls::dma

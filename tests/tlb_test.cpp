#include <gtest/gtest.h>

#include "mem/tlb.hpp"
#include "util/stats.hpp"

namespace vmsls::mem {
namespace {

TlbConfig cfg(unsigned entries, unsigned ways) {
  TlbConfig c;
  c.entries = entries;
  c.ways = ways;
  return c;
}

TEST(Tlb, MissOnEmpty) {
  StatRegistry stats;
  Tlb tlb(cfg(8, 2), stats, "t");
  EXPECT_FALSE(tlb.lookup(5).has_value());
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.hits(), 0u);
}

TEST(Tlb, HitAfterInsert) {
  StatRegistry stats;
  Tlb tlb(cfg(8, 2), stats, "t");
  tlb.insert(5, 99, true);
  const auto e = tlb.lookup(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->frame, 99u);
  EXPECT_TRUE(e->writable);
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, PeekDoesNotCount) {
  StatRegistry stats;
  Tlb tlb(cfg(8, 2), stats, "t");
  tlb.insert(5, 99, false);
  EXPECT_TRUE(tlb.peek(5).has_value());
  EXPECT_FALSE(tlb.peek(6).has_value());
  EXPECT_EQ(tlb.hits(), 0u);
  EXPECT_EQ(tlb.misses(), 0u);
}

TEST(Tlb, InvalidateRemovesOne) {
  StatRegistry stats;
  Tlb tlb(cfg(8, 2), stats, "t");
  tlb.insert(1, 10, true);
  tlb.insert(2, 20, true);
  tlb.invalidate(1);
  EXPECT_FALSE(tlb.peek(1).has_value());
  EXPECT_TRUE(tlb.peek(2).has_value());
}

TEST(Tlb, FlushRemovesAll) {
  StatRegistry stats;
  Tlb tlb(cfg(8, 2), stats, "t");
  for (u64 v = 0; v < 8; ++v) tlb.insert(v, v, true);
  tlb.flush();
  for (u64 v = 0; v < 8; ++v) EXPECT_FALSE(tlb.peek(v).has_value());
}

TEST(Tlb, LruEvictionWithinSet) {
  StatRegistry stats;
  // Fully associative 2-entry TLB: third insert evicts the least recent.
  Tlb tlb(cfg(2, 2), stats, "t");
  tlb.insert(1, 10, true);
  tlb.insert(2, 20, true);
  tlb.lookup(1);           // 1 is now most recent
  tlb.insert(3, 30, true);  // evicts 2
  EXPECT_TRUE(tlb.peek(1).has_value());
  EXPECT_FALSE(tlb.peek(2).has_value());
  EXPECT_TRUE(tlb.peek(3).has_value());
}

TEST(Tlb, ReinsertUpdatesInPlace) {
  StatRegistry stats;
  Tlb tlb(cfg(4, 2), stats, "t");
  tlb.insert(1, 10, false);
  tlb.insert(1, 11, true);  // remap: no eviction, new payload
  const auto e = tlb.peek(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->frame, 11u);
  EXPECT_TRUE(e->writable);
  EXPECT_EQ(stats.counter_value("t.evictions"), 0u);
}

TEST(Tlb, SetConflictsEvict) {
  StatRegistry stats;
  // Direct-mapped 4-set TLB: vpns congruent mod 4 collide.
  Tlb tlb(cfg(4, 1), stats, "t");
  tlb.insert(0, 1, true);
  tlb.insert(4, 2, true);  // same set
  EXPECT_FALSE(tlb.peek(0).has_value());
  EXPECT_TRUE(tlb.peek(4).has_value());
  EXPECT_EQ(stats.counter_value("t.evictions"), 1u);
}

TEST(Tlb, HitRateComputed) {
  StatRegistry stats;
  Tlb tlb(cfg(8, 2), stats, "t");
  tlb.insert(1, 1, true);
  tlb.lookup(1);
  tlb.lookup(2);
  EXPECT_DOUBLE_EQ(tlb.hit_rate(), 0.5);
}

TEST(Tlb, InvalidGeometryRejected) {
  StatRegistry stats;
  EXPECT_THROW(Tlb(cfg(0, 1), stats, "t"), std::invalid_argument);
  EXPECT_THROW(Tlb(cfg(6, 4), stats, "t"), std::invalid_argument);  // 6 % 4 != 0
}

// Property sweep: for any geometry, a TLB holding at most `entries`
// translations never evicts when the working set fits, and always hits
// after a fill pass.
class TlbGeometry : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(TlbGeometry, WorkingSetWithinCapacityAlwaysHits) {
  const auto [entries, ways] = GetParam();
  StatRegistry stats;
  Tlb tlb(cfg(entries, ways), stats, "t");
  const unsigned sets = entries / ways;
  // Touch exactly `ways` vpns per set: fills without eviction.
  for (unsigned s = 0; s < sets; ++s)
    for (unsigned w = 0; w < ways; ++w) tlb.insert(s + w * sets, s * 100 + w, true);
  for (unsigned s = 0; s < sets; ++s)
    for (unsigned w = 0; w < ways; ++w) {
      const auto e = tlb.lookup(s + w * sets);
      ASSERT_TRUE(e.has_value());
      EXPECT_EQ(e->frame, s * 100 + w);
    }
  EXPECT_EQ(stats.counter_value("t.evictions"), 0u);
  EXPECT_EQ(tlb.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, TlbGeometry,
                         ::testing::Values(std::pair{1u, 1u}, std::pair{4u, 1u},
                                           std::pair{4u, 4u}, std::pair{16u, 4u},
                                           std::pair{64u, 8u}, std::pair{64u, 64u}));

}  // namespace
}  // namespace vmsls::mem

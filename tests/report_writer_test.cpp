#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "hwt/builder.hpp"
#include "sls/report_writer.hpp"
#include "sls/synthesis.hpp"

namespace vmsls::sls {
namespace {

SynthesisReport make_report() {
  hwt::KernelBuilder kb("k");
  kb.mbox_get(1, 0).mbox_put(1, 1).halt();
  AppSpec app;
  app.name = "rep";
  app.add_mailbox("args", 8);
  app.add_mailbox("done", 4);
  app.add_hw_thread("worker", kb.build(), {"args", "done"});
  SynthesisFlow flow(zynq7020());
  return flow.synthesize(app).report();
}

TEST(ReportWriter, MarkdownContainsAllSections) {
  std::ostringstream os;
  write_report_markdown(os, make_report(), "demo report");
  const std::string s = os.str();
  EXPECT_NE(s.find("# demo report"), std::string::npos);
  EXPECT_NE(s.find("## Resources"), std::string::npos);
  EXPECT_NE(s.find("## Address map"), std::string::npos);
  EXPECT_NE(s.find("## Pass timings"), std::string::npos);
  EXPECT_NE(s.find("hwt:worker"), std::string::npos);
  EXPECT_NE(s.find("**total**"), std::string::npos);
}

TEST(ReportWriter, MarkdownListsDemotions) {
  SynthesisReport report = make_report();
  report.demoted_threads.push_back("slowpoke");
  std::ostringstream os;
  write_report_markdown(os, report, "t");
  EXPECT_NE(os.str().find("demoted to software: slowpoke"), std::string::npos);
}

TEST(ReportWriter, StatsCsvRoundTrip) {
  StatRegistry stats;
  stats.counter("a.b").add(5);
  stats.histogram("h").record(16);
  std::ostringstream os;
  write_stats_csv(os, stats);
  const std::string s = os.str();
  EXPECT_NE(s.find("name,value"), std::string::npos);
  EXPECT_NE(s.find("a.b,5"), std::string::npos);
  EXPECT_NE(s.find("h.count,1"), std::string::npos);
  EXPECT_NE(s.find("h.mean,16"), std::string::npos);
}

TEST(ReportWriter, FileWritersCreateFiles) {
  const std::string dir = ::testing::TempDir();
  save_report_markdown(dir + "/report.md", make_report(), "file test");
  StatRegistry stats;
  stats.counter("x").add(1);
  save_stats_csv(dir + "/stats.csv", stats);
  std::ifstream md(dir + "/report.md"), csv(dir + "/stats.csv");
  EXPECT_TRUE(md.good());
  EXPECT_TRUE(csv.good());
}

TEST(ReportWriter, BadPathThrows) {
  StatRegistry stats;
  EXPECT_THROW(save_stats_csv("/nonexistent-dir-xyz/s.csv", stats), std::runtime_error);
}

}  // namespace
}  // namespace vmsls::sls

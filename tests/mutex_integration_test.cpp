// Shared-memory mutual exclusion between hardware threads.
//
// Two hardware threads each perform N read-modify-write increments on one
// shared counter in virtual memory. Unsynchronized, the engines' memory
// operations interleave at event granularity and updates are lost;
// guarded by a semaphore mutex through the delegate OS interface, the
// final count is exact. This is the paper's "hardware and software threads
// share POSIX synchronization" claim, demonstrated end to end.
#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "sls/synthesis.hpp"
#include "sls/system.hpp"

namespace vmsls {
namespace {

hwt::Kernel incrementer(const std::string& name, bool locked) {
  using hwt::Reg;
  constexpr Reg ADDR = 1, N = 2, I = 3, V = 4, T0 = 5;
  hwt::KernelBuilder kb(name);
  kb.mbox_get(ADDR, 0).mbox_get(N, 0).li(I, 0).label("loop").seq(T0, I, N).bnez(T0, "exit");
  if (locked) kb.sem_wait(0);
  kb.load(V, ADDR).addi(V, V, 1).store(ADDR, V);
  if (locked) kb.sem_post(0);
  kb.addi(I, I, 1).jmp("loop").label("exit").mbox_put(1, I).halt();
  return kb.build();
}

i64 run_counter(bool locked, u64 increments_per_thread) {
  sls::AppSpec app;
  app.name = locked ? "locked" : "racy";
  // Per-thread argument mailboxes: a shared one would interleave the two
  // threads' argument streams nondeterministically.
  app.add_mailbox("args_a", 8);
  app.add_mailbox("args_b", 8);
  app.add_mailbox("done", 8);
  app.add_semaphore("lock", 1);  // binary semaphore = mutex
  app.add_buffer("counter", 4096, true);
  app.add_hw_thread("ta", incrementer("ka", locked), {"args_a", "done"}, {"lock"});
  app.add_hw_thread("tb", incrementer("kb", locked), {"args_b", "done"}, {"lock"});

  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);

  const VirtAddr counter = system->buffer("counter");
  for (const char* mbox : {"args_a", "args_b"}) {
    auto& args = system->process().mailbox(app.mailbox_index(mbox));
    args.put(static_cast<i64>(counter), [] {});
    args.put(static_cast<i64>(increments_per_thread), [] {});
  }
  system->start_all();
  system->run_to_completion();
  return system->address_space().read_scalar<i64>(counter);
}

TEST(MutexIntegration, UnsynchronizedIncrementsLoseUpdates) {
  constexpr u64 kPerThread = 200;
  const i64 final_count = run_counter(/*locked=*/false, kPerThread);
  // Both threads interleave their load/store pairs on the shared bus, so
  // some updates must be lost (and none can be invented).
  EXPECT_LT(final_count, static_cast<i64>(2 * kPerThread));
  EXPECT_GE(final_count, static_cast<i64>(kPerThread));
}

TEST(MutexIntegration, SemaphoreMutexMakesCountExact) {
  constexpr u64 kPerThread = 50;  // delegate-protocol locking is expensive
  EXPECT_EQ(run_counter(/*locked=*/true, kPerThread), static_cast<i64>(2 * kPerThread));
}

TEST(MutexIntegration, LockingCostsDelegateRoundTrips) {
  sls::AppSpec app;
  app.name = "cost";
  app.add_mailbox("args", 8);
  app.add_mailbox("done", 8);
  app.add_semaphore("lock", 1);
  app.add_buffer("counter", 4096, true);
  app.add_hw_thread("ta", incrementer("ka", true), {"args", "done"}, {"lock"});

  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  auto& args = system->process().mailbox(0);
  args.put(static_cast<i64>(system->buffer("counter")), [] {});
  args.put(10, [] {});
  system->start_all();
  system->run_to_completion();
  // 2 arg gets + 1 done put + 10 x (wait + post) = 23 delegate calls.
  EXPECT_EQ(sim.stats().counter_value("hwt.ta.osif.delegate_calls"), 23u);
}

}  // namespace
}  // namespace vmsls

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace vmsls {
namespace {

// --- units / bit helpers ---

TEST(Units, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(4097));
}

TEST(Units, AlignDown) {
  EXPECT_EQ(align_down(0, 4096), 0u);
  EXPECT_EQ(align_down(4095, 4096), 0u);
  EXPECT_EQ(align_down(4096, 4096), 4096u);
  EXPECT_EQ(align_down(8191, 4096), 4096u);
}

TEST(Units, AlignUp) {
  EXPECT_EQ(align_up(0, 4096), 0u);
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
}

TEST(Units, IsAligned) {
  EXPECT_TRUE(is_aligned(0, 8));
  EXPECT_TRUE(is_aligned(64, 8));
  EXPECT_FALSE(is_aligned(65, 8));
}

TEST(Units, Log2i) {
  EXPECT_EQ(log2i(1), 0u);
  EXPECT_EQ(log2i(2), 1u);
  EXPECT_EQ(log2i(3), 1u);
  EXPECT_EQ(log2i(4096), 12u);
  EXPECT_EQ(log2i(1ull << 33), 33u);
}

TEST(Units, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 8), 0u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
  EXPECT_EQ(ceil_div(8, 8), 1u);
  EXPECT_EQ(ceil_div(9, 8), 2u);
}

TEST(Units, RequireThrowsOnFalse) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
  EXPECT_THROW(ensure(false, "bad"), std::logic_error);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(64 * KiB), "64 KiB");
  EXPECT_EQ(format_bytes(3 * MiB), "3 MiB");
  EXPECT_EQ(format_bytes(2 * GiB), "2 GiB");
  EXPECT_EQ(format_bytes(KiB + 1), "1025 B");
}

// --- RNG ---

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool low = false, high = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    low |= (v == 5);
    high |= (v == 8);
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(5);
  const u64 first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

// --- statistics ---

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BasicMoments) {
  Histogram h;
  h.record(1);
  h.record(3);
  h.record(8);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  for (u64 v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_LE(h.percentile(0.1), h.percentile(0.5));
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(100);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Histogram, ResetRestoresExtremaTracking) {
  // Regression: reset() must re-seed min/max/sum, not just the buckets — a
  // stale min would survive into the next measurement interval.
  Histogram h;
  h.record(5);
  h.reset();
  h.record(100);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, OverflowCountsClippedSamples) {
  // 4 buckets cover 0, 1, 2-3, 4-7; values >= 8 clip into the last bucket
  // and must be counted as overflow (4-7 land there legitimately).
  Histogram h(4);
  h.record(4);
  h.record(7);
  EXPECT_EQ(h.overflow(), 0u);
  h.record(8);
  h.record(1000);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets().back(), 4u);  // clipped samples still counted there
  h.reset();
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, MergeMatchesSerialRecording) {
  // Two shards recording disjoint sample streams must merge into exactly
  // the histogram one recorder would have produced.
  Histogram a, b, serial;
  for (u64 v = 1; v <= 500; ++v) {
    a.record(v);
    serial.record(v);
  }
  for (u64 v = 501; v <= 1000; ++v) {
    b.record(v * 3);
    serial.record(v * 3);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_EQ(a.sum(), serial.sum());
  EXPECT_EQ(a.min(), serial.min());
  EXPECT_EQ(a.max(), serial.max());
  EXPECT_EQ(a.overflow(), serial.overflow());
  EXPECT_EQ(a.buckets(), serial.buckets());
  EXPECT_EQ(a.percentile(0.5), serial.percentile(0.5));
  EXPECT_EQ(a.percentile(0.99), serial.percentile(0.99));
}

TEST(Histogram, MergePreservesOverflowAndExtrema) {
  Histogram a(4), b(4);  // values >= 8 clip into the last bucket
  a.record(2);
  a.record(100);  // overflow in a
  b.record(1);
  b.record(5000);  // overflow in b
  b.record(9999);  // overflow in b
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.overflow(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 9999u);
}

TEST(Histogram, MergeEmptySidesAreNoOps) {
  Histogram a, empty;
  a.record(7);
  a.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 7u);

  Histogram dst;
  dst.merge(a);  // merging INTO an empty histogram copies the state
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.min(), 7u);  // the ~0 min sentinel must not leak through
  EXPECT_EQ(dst.sum(), 7u);
}

TEST(Histogram, MergeGrowsToWiderBucketCount) {
  Histogram narrow(4), wide(32);
  wide.record(1 << 20);  // legitimate sample in a high bucket, no overflow
  narrow.record(100);    // clipped: overflow in the narrow histogram
  narrow.merge(wide);
  EXPECT_EQ(narrow.buckets().size(), 32u);
  EXPECT_EQ(narrow.count(), 2u);
  // The wide histogram's sample stays un-clipped; the narrow histogram's
  // own clip stays counted. Overflow records sample-time truncation.
  EXPECT_EQ(narrow.overflow(), 1u);
  EXPECT_EQ(narrow.max(), u64{1} << 20);
}

TEST(StatRegistry, MergeAddsCountersAndHistograms) {
  StatRegistry a, b;
  a.counter("hits").add(3);
  b.counter("hits").add(4);
  b.counter("only_b").add(9);
  a.histogram("lat").record(10);
  b.histogram("lat").record(20);
  b.histogram("only_b_h").record(5);
  a.merge(b);
  EXPECT_EQ(a.counter_value("hits"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 9u);
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_EQ(a.histogram("lat").min(), 10u);
  EXPECT_EQ(a.histogram("lat").max(), 20u);
  EXPECT_EQ(a.histogram("only_b_h").count(), 1u);
}

TEST(StatRegistry, MergeWithPrefixNamespacesEntries) {
  // The sharded runner's merge: per-shard registries land under
  // "<instance>." prefixes, exactly like ProcessGroup's stat naming.
  StatRegistry merged, shard;
  shard.counter("pager.evictions").add(5);
  shard.histogram("pager.fault_stall").record(1000);
  merged.merge(shard, "p3.");
  EXPECT_EQ(merged.counter_value("p3.pager.evictions"), 5u);
  EXPECT_EQ(merged.histogram("p3.pager.fault_stall").count(), 1u);
  EXPECT_FALSE(merged.has_counter("pager.evictions"));
  const auto snap = merged.snapshot();
  EXPECT_EQ(snap.at("p3.pager.evictions"), 5.0);
  EXPECT_EQ(snap.at("p3.pager.fault_stall.max"), 1000.0);
}

TEST(StatRegistry, SnapshotIncludesPercentilesAndOverflow) {
  StatRegistry reg;
  auto& h = reg.histogram("h");
  for (u64 v = 1; v <= 100; ++v) h.record(v);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("h.p50"), static_cast<double>(h.percentile(0.50)));
  EXPECT_EQ(snap.at("h.p95"), static_cast<double>(h.percentile(0.95)));
  EXPECT_EQ(snap.at("h.p99"), static_cast<double>(h.percentile(0.99)));
  EXPECT_LE(snap.at("h.p50"), snap.at("h.p95"));
  EXPECT_LE(snap.at("h.p95"), snap.at("h.p99"));
  EXPECT_EQ(snap.at("h.overflow"), 0.0);
}

TEST(StatRegistry, CountersByName) {
  StatRegistry reg;
  reg.counter("a.hits").add(3);
  reg.counter("a.hits").add(2);
  EXPECT_EQ(reg.counter_value("a.hits"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_TRUE(reg.has_counter("a.hits"));
  EXPECT_FALSE(reg.has_counter("missing"));
}

TEST(StatRegistry, SnapshotIncludesHistograms) {
  StatRegistry reg;
  reg.counter("c").add(7);
  reg.histogram("h").record(4);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("c"), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("h.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("h.mean"), 4.0);
}

TEST(StatRegistry, ResetClearsAll) {
  StatRegistry reg;
  reg.counter("c").add(7);
  reg.histogram("h").record(4);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
}

// --- table ---

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintContainsHeaderAndCells) {
  Table t({"name", "value"});
  t.add_row({"x", "42"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(u64{42}), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace vmsls

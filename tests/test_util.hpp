// Shared test fixtures: a small but complete memory system.
#pragma once

#include <stdexcept>
#include <string>

#include "mem/address_space.hpp"
#include "mem/bus.hpp"
#include "mem/dram.hpp"
#include "mem/frames.hpp"
#include "mem/physmem.hpp"
#include "mem/walker.hpp"
#include "sim/simulator.hpp"

namespace vmsls::test {

/// Steps `sim` until the event queue drains, throwing if `max_cycles`
/// simulated cycles elapse first (a stuck pin-release chain or an
/// un-gated daemon would otherwise spin a test forever). A zero-time
/// self-rescheduling loop never advances the clock, so an event cap backs
/// the cycle cap. Returns events executed. The drained-queue
/// postcondition — what every activity-gated service and offload
/// admission queue must guarantee — is asserted here instead of being
/// re-rolled per test.
inline u64 run_until_drained(sim::Simulator& sim, Cycles max_cycles = 1'000'000'000ull,
                             u64 max_events = 100'000'000ull) {
  const Cycles deadline = sim.now() + max_cycles;
  u64 events = 0;
  while (sim.step()) {
    if (sim.now() > deadline)
      throw std::runtime_error("run_until_drained: exceeded " + std::to_string(max_cycles) +
                               " cycles with events still pending");
    if (++events > max_events)
      throw std::runtime_error("run_until_drained: exceeded " + std::to_string(max_events) +
                               " events with events still pending (zero-time loop?)");
  }
  if (!sim.idle()) throw std::runtime_error("run_until_drained: queue failed to drain");
  return events;
}

/// Simulator + physical memory + DRAM/bus models + one address space, wired
/// with 4 KiB pages over 64 MiB. Enough substrate for most unit tests.
struct MemorySystem {
  static constexpr u64 kMemBytes = 64 * MiB;

  sim::Simulator sim;
  mem::PhysicalMemory pm{kMemBytes};
  mem::FrameAllocator frames{0, kMemBytes / (4 * KiB), 4 * KiB};
  mem::DramModel dram;
  mem::MemoryBus bus;
  mem::AddressSpace as;

  explicit MemorySystem(mem::PageTableConfig pt_cfg = {})
      : dram(make_dram_cfg(), sim.stats(), "dram"),
        bus(sim, dram, mem::BusConfig{}, "bus"),
        as(pm, make_frames(pt_cfg), pt_cfg) {}

  /// Drains the event queue; returns events executed.
  u64 run_all() { return run_until_drained(sim); }

 private:
  static mem::DramConfig make_dram_cfg() {
    mem::DramConfig cfg;
    cfg.size_bytes = kMemBytes;
    return cfg;
  }
  // Rebuild the frame allocator at the page size the page-table config
  // demands (tests parameterize over page sizes).
  mem::FrameAllocator& make_frames(const mem::PageTableConfig& cfg) {
    const u64 page = 1ull << cfg.page_bits;
    frames = mem::FrameAllocator(0, kMemBytes / page, page);
    return frames;
  }
};

}  // namespace vmsls::test

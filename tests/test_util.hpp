// Shared test fixtures: a small but complete memory system.
#pragma once

#include "mem/address_space.hpp"
#include "mem/bus.hpp"
#include "mem/dram.hpp"
#include "mem/frames.hpp"
#include "mem/physmem.hpp"
#include "mem/walker.hpp"
#include "sim/simulator.hpp"

namespace vmsls::test {

/// Simulator + physical memory + DRAM/bus models + one address space, wired
/// with 4 KiB pages over 64 MiB. Enough substrate for most unit tests.
struct MemorySystem {
  static constexpr u64 kMemBytes = 64 * MiB;

  sim::Simulator sim;
  mem::PhysicalMemory pm{kMemBytes};
  mem::FrameAllocator frames{0, kMemBytes / (4 * KiB), 4 * KiB};
  mem::DramModel dram;
  mem::MemoryBus bus;
  mem::AddressSpace as;

  explicit MemorySystem(mem::PageTableConfig pt_cfg = {})
      : dram(make_dram_cfg(), sim.stats(), "dram"),
        bus(sim, dram, mem::BusConfig{}, "bus"),
        as(pm, make_frames(pt_cfg), pt_cfg) {}

  /// Drains the event queue; returns events executed.
  u64 run_all() {
    u64 n = 0;
    while (sim.step()) ++n;
    return n;
  }

 private:
  static mem::DramConfig make_dram_cfg() {
    mem::DramConfig cfg;
    cfg.size_bytes = kMemBytes;
    return cfg;
  }
  // Rebuild the frame allocator at the page size the page-table config
  // demands (tests parameterize over page sizes).
  mem::FrameAllocator& make_frames(const mem::PageTableConfig& cfg) {
    const u64 page = 1ull << cfg.page_bits;
    frames = mem::FrameAllocator(0, kMemBytes / page, page);
    return frames;
  }
};

}  // namespace vmsls::test

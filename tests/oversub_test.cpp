// Multi-process over-subscription: the shared FramePool arbiter, global vs
// per-process budget modes, cross-process eviction invariants, working-set
// driven auto-budgets, the proactive pageout daemon, the ProcessGroup
// harness (fig10's substrate), and the pager × TLB DSE grid.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/paging/frame_pool.hpp"
#include "mem/paging/pager.hpp"
#include "rt/process.hpp"
#include "sls/dse.hpp"
#include "sls/process_group.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::paging {
namespace {

// --- unit fixture: two processes over one frame allocator, no engines ---

struct PoolFixture : ::testing::Test {
  static constexpr u64 kMemBytes = 64 * MiB;
  static constexpr VirtAddr kBase = 0x10000;

  sim::Simulator sim;
  mem::PhysicalMemory pm{kMemBytes};
  mem::FrameAllocator frames{0, kMemBytes / 4096, 4096};
  mem::AddressSpace as0{pm, frames, mem::PageTableConfig{}};
  mem::AddressSpace as1{pm, frames, mem::PageTableConfig{}};
  rt::Process p0{sim, as0, "p0"};
  rt::Process p1{sim, as1, "p1"};
  std::unique_ptr<FramePool> pool;
  std::unique_ptr<Pager> pg0, pg1;

  void make(const FramePoolConfig& pool_cfg, PagerConfig cfg0 = {}, PagerConfig cfg1 = {}) {
    pool = std::make_unique<FramePool>(sim, pool_cfg, "pool");
    pg0 = std::make_unique<Pager>(sim, p0, cfg0, "p0.pager");
    pg1 = std::make_unique<Pager>(sim, p1, cfg1, "p1.pager");
    pool->attach(*pg0);
    pool->attach(*pg1);
  }

  void run_all() { test::run_until_drained(sim); }

  /// Maps `count` data pages into `as` by writing distinct words.
  static void map_pages(mem::AddressSpace& as, unsigned count) {
    for (unsigned i = 0; i < count; ++i) as.write_u64(kBase + i * 4096ull, 0x1000 + i);
  }
};

TEST_F(PoolFixture, GlobalSweepEvictsAnotherProcessesPage) {
  FramePoolConfig pc;
  pc.mode = BudgetMode::kGlobal;
  pc.total_frames = 2;
  PagerConfig global_pager;
  global_pager.budget_mode = BudgetMode::kGlobal;
  make(pc, global_pager, global_pager);

  map_pages(as0, 2);  // p0 fills the whole machine budget
  EXPECT_EQ(pool->resident_pages(), 2u);
  const u64 shootdowns_before = p0.shootdowns();

  // p1 faults: the global sweep must victimize one of p0's pages — through
  // p0's Process, so p0's TLB shootdown fires.
  bool ready = false;
  pg1->handle_fault(kBase, /*is_write=*/false, [&] { ready = true; });
  run_all();

  EXPECT_TRUE(ready);
  EXPECT_EQ(as0.resident_pages(), 1u);  // one p0 page gone
  EXPECT_GT(p0.shootdowns(), shootdowns_before);
  EXPECT_EQ(pg0->evictions(), 1u);          // owner performed the eviction
  EXPECT_EQ(pool->cross_evictions(), 1u);   // and it crossed processes
  EXPECT_EQ(pool->evictions(), 1u);
}

TEST_F(PoolFixture, GlobalBudgetNeverExceededAcrossProcesses) {
  FramePoolConfig pc;
  pc.mode = BudgetMode::kGlobal;
  pc.total_frames = 3;
  PagerConfig global_pager;
  global_pager.budget_mode = BudgetMode::kGlobal;
  make(pc, global_pager, global_pager);

  // Interleave faults from both processes over many more pages than fit.
  // (Direct address-space writes bypass budget enforcement, so drive the
  // fault path the way hardware threads do.)
  for (unsigned i = 0; i < 6; ++i) {
    pg0->handle_fault(kBase + i * 4096ull, true, [this, i] { as0.write_u64(kBase + i * 4096ull, i); });
    run_all();
    pg1->handle_fault(kBase + i * 4096ull, true, [this, i] { as1.write_u64(kBase + i * 4096ull, i); });
    run_all();
  }
  EXPECT_LE(pool->peak_resident_pages(), 3u);
  EXPECT_LE(as0.resident_pages() + as1.resident_pages(), 3u);
  EXPECT_GT(pool->evictions(), 0u);
}

TEST_F(PoolFixture, DirtyCrossProcessVictimPaysWritebackOnOwnersDevice) {
  FramePoolConfig pc;
  pc.mode = BudgetMode::kGlobal;
  pc.total_frames = 1;
  PagerConfig global_pager;
  global_pager.budget_mode = BudgetMode::kGlobal;
  make(pc, global_pager, global_pager);

  map_pages(as0, 1);  // dirty (written) and fills the budget
  bool ready = false;
  pg1->handle_fault(kBase, false, [&] { ready = true; });
  run_all();
  EXPECT_TRUE(ready);
  EXPECT_EQ(pg0->writebacks(), 1u);        // owner charged the writeback...
  EXPECT_EQ(pg0->swap().writes(), 1u);     // ...on its own swap device
  EXPECT_EQ(pg1->swap().writes(), 0u);
}

// --- budget-mode equivalence --------------------------------------------

/// Drives one pager through a fixed revisit-heavy fault chain and returns
/// (final cycle count, pager stat snapshot). Faults are sequential, like a
/// single hardware thread's.
std::pair<Cycles, std::map<std::string, double>> run_budget_scenario(BudgetMode mode, u64 budget) {
  sim::Simulator sim;
  mem::PhysicalMemory pm{64 * MiB};
  mem::FrameAllocator frames{0, (64 * MiB) / 4096, 4096};
  mem::AddressSpace as{pm, frames, mem::PageTableConfig{}};
  rt::Process proc{sim, as, "p"};

  FramePoolConfig pool_cfg;
  pool_cfg.mode = mode;
  pool_cfg.total_frames = budget;
  FramePool pool(sim, pool_cfg, "pool");

  PagerConfig cfg;
  cfg.budget_mode = mode;
  cfg.frame_budget = (mode == BudgetMode::kPerProcess) ? budget : 0;
  Pager pager(sim, proc, cfg, "pager");
  pool.attach(pager);

  const std::vector<unsigned> pattern = {0, 1, 2, 3, 0, 1, 4, 2, 5, 0, 3, 1};
  std::size_t next = 0;
  std::function<void()> step = [&] {
    if (next >= pattern.size()) return;
    const VirtAddr va = 0x10000 + pattern[next++] * 4096ull;
    pager.handle_fault(va, /*is_write=*/true, [&, va] {
      if (!as.is_mapped(va)) as.write_u64(va, va);  // map + dirty, like the OS tail
      sim.schedule_in(10, [&] { step(); });
    });
  };
  step();
  test::run_until_drained(sim);
  return {sim.now(), sim.stats().snapshot_prefix("pager.")};
}

TEST(BudgetEquivalence, SingleProcessGlobalEqualsPerProcessBitIdentical) {
  // A one-member global pool must be cycle- and stat-identical to the same
  // budget enforced per-process: the global CLOCK over packed keys is the
  // same ring as the per-process CLOCK over vpns.
  const auto per_process = run_budget_scenario(BudgetMode::kPerProcess, 3);
  const auto global = run_budget_scenario(BudgetMode::kGlobal, 3);
  EXPECT_EQ(per_process.first, global.first);
  EXPECT_EQ(per_process.second, global.second);  // every pager counter + histogram moment
}

// --- working-set estimation + auto budgets ------------------------------

TEST_F(PoolFixture, AutoBudgetRebalancesProportionalToWorkingSets) {
  FramePoolConfig pc;
  pc.mode = BudgetMode::kPerProcess;
  pc.total_frames = 12;
  pc.auto_budget = true;
  pc.min_budget = 2;
  PagerConfig cfg;
  cfg.frame_budget = 6;  // start even; WS sweeps should skew 8 / 4
  cfg.ws_interval = 1000;
  make(pc, cfg, cfg);

  map_pages(as0, 8);  // p0's working set: 8 pages
  map_pages(as1, 4);  // p1's: 4 pages
  run_all();          // both estimators sweep once, pool rebalances

  EXPECT_EQ(pg0->working_set_pages(), 8u);
  EXPECT_EQ(pg1->working_set_pages(), 4u);
  EXPECT_GE(pool->rebalances(), 1u);
  EXPECT_EQ(pg0->frame_budget(), 8u);
  EXPECT_EQ(pg1->frame_budget(), 4u);
}

TEST_F(PoolFixture, WorkingSetEstimatorAgesOutColdPages) {
  FramePoolConfig pc;  // pool inert; this exercises the per-pager estimator
  PagerConfig cfg;
  cfg.ws_interval = 1000;
  cfg.ws_window = 1000;
  make(pc, cfg, cfg);

  map_pages(as0, 4);
  run_all();  // sweep 1: all four referenced at map time
  EXPECT_EQ(pg0->working_set_pages(), 4u);

  // Two pages stay hot, the others go cold; new activity re-arms the sweep.
  sim.schedule_in(5000, [this] {
    as0.write_u64(kBase, 1);
    as0.write_u64(kBase + 4096, 2);
    as0.write_u64(kBase + 4 * 4096ull, 3);  // maps a 5th page -> activity
  });
  run_all();
  EXPECT_EQ(pg0->working_set_pages(), 3u);  // 2 hot + 1 fresh, 2 aged out
}

// --- pageout daemon ------------------------------------------------------

TEST_F(PoolFixture, PageoutDaemonCleansDirtyPagesAheadOfPressure) {
  FramePoolConfig pc;
  PagerConfig cfg;
  cfg.frame_budget = 4;
  cfg.pageout_interval = 500;
  cfg.pageout_batch = 8;
  cfg.pageout_watermark_pct = 50;
  make(pc, cfg, cfg);

  map_pages(as0, 4);  // resident == budget -> well above the watermark
  run_all();          // daemon tick at t=500 cleans the dirty pages

  EXPECT_EQ(pg0->pageouts(), 4u);
  EXPECT_EQ(pg0->swap().writes(), 4u);
  for (unsigned i = 0; i < 4; ++i) EXPECT_FALSE(pg0->page_dirty((kBase >> 12) + i));

  // The next fault's victim is now clean: eviction without writeback stall.
  bool ready = false;
  pg0->handle_fault(kBase + 8 * 4096ull, false, [&] { ready = true; });
  run_all();
  EXPECT_TRUE(ready);
  EXPECT_GE(pg0->evictions(), 1u);
  EXPECT_EQ(pg0->writebacks(), 0u);
}

TEST_F(PoolFixture, IdleDaemonsDisarmAndTheQueueDrains) {
  FramePoolConfig pc;
  PagerConfig cfg;
  cfg.frame_budget = 8;
  cfg.ws_interval = 1000;
  cfg.pageout_interval = 700;
  make(pc, cfg, cfg);

  map_pages(as0, 2);
  run_all();  // must terminate: daemons disarm once activity stops
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace vmsls::paging

// --- ProcessGroup: the fig10 substrate -----------------------------------

namespace vmsls {
namespace {

struct GroupSnapshot {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> stats;
};

u64 ws_pages(const workloads::Workload& wl) {
  u64 bytes = 0;
  for (const auto& buf : wl.buffers) bytes += buf.bytes;
  return ceil_div(bytes, u64{4096});
}

/// Builds the fig10 smallest scenario: hash_join + pointer_chase sharing a
/// frame pool over-subscribed at `oversub_pct` percent (aggregate working
/// set = oversub_pct% of the frame budget), cold-started.
GroupSnapshot run_group_scenario(paging::BudgetMode mode, unsigned oversub_pct) {
  workloads::WorkloadParams p;
  p.n = 512;
  std::vector<workloads::Workload> wls = {workloads::make_hash_join(p),
                                          workloads::make_pointer_chase(p)};
  u64 total_ws = 0;
  for (const auto& wl : wls) total_ws += ws_pages(wl);
  const u64 total_budget = std::max<u64>(4, total_ws * 100 / oversub_pct);

  sls::PlatformSpec plat = sls::zynq7020();
  paging::FramePoolConfig pool_cfg;
  pool_cfg.mode = mode;
  pool_cfg.total_frames = total_budget;

  sim::Simulator sim;
  sls::ProcessGroup group(sim, plat, pool_cfg);
  for (std::size_t i = 0; i < wls.size(); ++i) {
    sls::PlatformSpec proc_plat = plat;
    proc_plat.pager.budget_mode = mode;
    proc_plat.pager.frame_budget =
        (mode == paging::BudgetMode::kPerProcess)
            ? std::max<u64>(2, ws_pages(wls[i]) * 100 / oversub_pct)
            : 0;
    sls::SynthesisFlow flow(proc_plat);
    auto app = workloads::single_thread_app(wls[i], sls::ThreadKind::kHardware);
    const auto image = flow.synthesize(app);
    auto& system = group.add_process(image, "p" + std::to_string(i));
    wls[i].setup(system);
    // Cold start: every buffer page must come back through the timed fault
    // path under the shared budget.
    for (const auto& buf : system.image().app().buffers)
      system.process().evict(system.buffer(buf.name), buf.bytes);
  }

  // Setup traffic eagerly mapped (and then evicted) whole buffers outside
  // the fault path; the budget invariant applies from here on.
  group.pool().reset_peak_residency();
  group.start_all();
  GroupSnapshot s;
  s.cycles = group.run_to_completion();
  // The machine-wide budget invariant — checked before verification, whose
  // functional reads re-map pages outside the budgeted fault path.
  if (mode == paging::BudgetMode::kGlobal) {
    EXPECT_LE(group.pool().peak_resident_pages(), total_budget);
  }
  for (std::size_t i = 0; i < wls.size(); ++i) EXPECT_TRUE(wls[i].verify(group.process(i)));
  s.events = sim.events_executed();
  s.stats = sim.stats().snapshot();
  return s;
}

TEST(ProcessGroup, GlobalModeContendsAndStaysUnderBudget) {
  const auto s = run_group_scenario(paging::BudgetMode::kGlobal, 200);
  EXPECT_GT(s.stats.at("pool.evictions"), 0.0);
  // Cross-process pressure is the whole point of the global sweep.
  EXPECT_GT(s.stats.at("pool.cross_evictions"), 0.0);
  // Both processes faulted under the shared budget.
  EXPECT_GT(s.stats.at("p0.faults.faults"), 0.0);
  EXPECT_GT(s.stats.at("p1.faults.faults"), 0.0);
}

TEST(ProcessGroup, PerProcessModeEnforcesEachBudget) {
  const auto s = run_group_scenario(paging::BudgetMode::kPerProcess, 200);
  EXPECT_GT(s.stats.at("p0.pager.evictions"), 0.0);
  EXPECT_GT(s.stats.at("p1.pager.evictions"), 0.0);
  EXPECT_EQ(s.stats.at("pool.cross_evictions"), 0.0);  // never crosses
}

TEST(ProcessGroup, Fig10ScenarioIsRunToRunDeterministic) {
  const auto a = run_group_scenario(paging::BudgetMode::kGlobal, 200);
  const auto b = run_group_scenario(paging::BudgetMode::kGlobal, 200);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.stats, b.stats);  // every counter and histogram moment
}

// --- DSE: pager × TLB grid ------------------------------------------------

TEST(DsePagerGrid, SerialAndParallelGridIdentical) {
  workloads::WorkloadParams p;
  p.n = 16;
  auto wl = workloads::make_workload("matmul", p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  auto evaluate = [&wl](const sls::SystemImage& image) {
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    // Cold-start under pressure so the pager point actually matters.
    for (const auto& buf : system->image().app().buffers)
      system->process().evict(system->buffer(buf.name), buf.bytes);
    system->start_all();
    return system->run_to_completion();
  };
  const std::vector<unsigned> tlbs = {2, 8};
  const std::vector<sls::PagerCandidate> pagers = {
      {0, paging::PolicyKind::kClock},        // pressure-free baseline
      {8, paging::PolicyKind::kClock},
      {8, paging::PolicyKind::kRandom},
  };

  sls::DesignSpaceExplorer serial(sls::zynq7020());
  serial.set_threads(1);
  const auto a = serial.explore_pager_tlb(app, "worker", tlbs, pagers, evaluate);

  sls::DesignSpaceExplorer parallel(sls::zynq7020());
  parallel.set_threads(4);
  const auto b = parallel.explore_pager_tlb(app, "worker", tlbs, pagers, evaluate);

  ASSERT_EQ(a.candidates.size(), tlbs.size() * pagers.size());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].tlb_entries, b.candidates[i].tlb_entries);
    EXPECT_EQ(a.candidates[i].frame_budget, b.candidates[i].frame_budget);
    EXPECT_EQ(a.candidates[i].policy, b.candidates[i].policy);
    EXPECT_EQ(a.candidates[i].measured, b.candidates[i].measured);
    EXPECT_EQ(a.candidates[i].cycles, b.candidates[i].cycles);
  }
  EXPECT_EQ(a.best, b.best);
  ASSERT_GE(a.best, 0);
  // Pressure-free candidates must beat the budget-constrained ones.
  EXPECT_EQ(a.candidates[static_cast<std::size_t>(a.best)].frame_budget, 0u);
}

TEST(DsePagerGrid, ExploreTlbStillSweepsAtThePlatformOperatingPoint) {
  workloads::WorkloadParams p;
  p.n = 16;
  auto wl = workloads::make_workload("matmul", p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  sls::DesignSpaceExplorer dse(sls::zynq7020());
  const auto r = dse.explore_tlb(app, "worker", {2, 4, 8});
  ASSERT_EQ(r.candidates.size(), 3u);
  for (const auto& c : r.candidates) EXPECT_EQ(c.frame_budget, 0u);
  EXPECT_GE(r.best, 0);
}

}  // namespace
}  // namespace vmsls

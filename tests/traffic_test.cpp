// Serving-plane tests: the seeded arrival process (same-seed bit-identical,
// different-seed divergence, burst modulation), the TrafficDriver's
// admission ledger under a bounded queue and a saturated pool, episode-mix
// validation, and the rate sweep's monotone first-violation search (tested
// against a synthetic closure — no simulator needed).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/arrival.hpp"
#include "sls/process_group.hpp"
#include "sls/traffic.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::sls {
namespace {

std::vector<Cycles> sample_gaps(const sim::ArrivalConfig& cfg, unsigned n) {
  sim::ArrivalProcess ap(cfg);
  std::vector<Cycles> gaps;
  Cycles now = 0;
  for (unsigned i = 0; i < n; ++i) {
    const Cycles g = ap.next_gap(now);
    gaps.push_back(g);
    now += g;
  }
  return gaps;
}

TEST(ArrivalProcess, SameSeedIsBitIdentical) {
  sim::ArrivalConfig cfg;
  cfg.mean_gap = 1000;
  cfg.seed = 42;
  EXPECT_EQ(sample_gaps(cfg, 256), sample_gaps(cfg, 256));
}

TEST(ArrivalProcess, DifferentSeedsDiverge) {
  sim::ArrivalConfig a, b;
  a.mean_gap = b.mean_gap = 1000;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(sample_gaps(a, 256), sample_gaps(b, 256));
}

TEST(ArrivalProcess, PoissonGapsAverageNearTheMean) {
  sim::ArrivalConfig cfg;
  cfg.mean_gap = 1000;
  cfg.seed = 7;
  const auto gaps = sample_gaps(cfg, 4096);
  double sum = 0;
  for (const Cycles g : gaps) {
    EXPECT_GE(g, 1u);  // gaps are clamped to at least one cycle
    sum += static_cast<double>(g);
  }
  const double mean = sum / static_cast<double>(gaps.size());
  EXPECT_NEAR(mean, 1000.0, 100.0);  // ~1.5% stderr at n=4096; 10% slack
}

TEST(ArrivalProcess, DeterministicKindIsConstantRate) {
  sim::ArrivalConfig cfg;
  cfg.kind = sim::ArrivalConfig::Kind::kDeterministic;
  cfg.mean_gap = 500;
  for (const Cycles g : sample_gaps(cfg, 64)) EXPECT_EQ(g, 500u);
}

TEST(ArrivalProcess, BurstPhaseShortensGaps) {
  sim::ArrivalConfig cfg;
  cfg.kind = sim::ArrivalConfig::Kind::kDeterministic;
  cfg.mean_gap = 1000;
  cfg.burst_factor = 4.0;
  cfg.burst_period = 10'000;
  cfg.burst_duty = 0.5;
  sim::ArrivalProcess ap(cfg);
  EXPECT_TRUE(ap.in_burst(0));       // phase [0, 5000) bursts
  EXPECT_FALSE(ap.in_burst(5000));   // phase [5000, 10000) is the lull
  EXPECT_EQ(ap.next_gap(0), 250u);   // mean / burst_factor
  EXPECT_EQ(ap.next_gap(5000), 1000u);
}

TEST(ArrivalProcess, RejectsInvalidConfig) {
  sim::ArrivalConfig cfg;
  cfg.mean_gap = 0;
  EXPECT_THROW(sim::ArrivalProcess{cfg}, std::invalid_argument);
  cfg.mean_gap = 100;
  cfg.burst_factor = 0.5;
  EXPECT_THROW(sim::ArrivalProcess{cfg}, std::invalid_argument);
  cfg.burst_factor = 2.0;
  cfg.burst_duty = 1.5;
  EXPECT_THROW(sim::ArrivalProcess{cfg}, std::invalid_argument);
}

// --- TrafficDriver over a real (small) ProcessGroup ---

PlatformSpec serve_platform() {
  PlatformSpec plat = zynq7020();
  plat.pager.budget_mode = paging::BudgetMode::kPerProcess;
  plat.pager.policy = paging::PolicyKind::kClock;
  plat.pager.swap.shared = true;
  plat.pager.swap.read_latency = 50;
  plat.pager.swap.write_latency = 100;
  plat.pager.swap.bytes_per_cycle = 64;
  plat.traffic.requests = 60;
  plat.traffic.queue_capacity = 32;
  plat.traffic.episode_touches = 8;
  plat.traffic.arena_pages = 16;
  plat.traffic.touch_cost = 20;
  plat.traffic.arrival.mean_gap = 2000;
  plat.traffic.arrival.seed = 11;
  return plat;
}

/// Owns the simulator + group a TrafficDriver needs (the driver itself
/// borrows both).
struct ServeRig {
  sim::Simulator sim;
  std::unique_ptr<ProcessGroup> group;

  explicit ServeRig(const PlatformSpec& plat, unsigned workers) {
    paging::FramePoolConfig pool_cfg;
    pool_cfg.mode = paging::BudgetMode::kPerProcess;
    pool_cfg.policy = plat.pager.policy;
    group = std::make_unique<ProcessGroup>(sim, plat, pool_cfg);
    for (unsigned i = 0; i < workers; ++i) {
      workloads::WorkloadParams p;
      p.n = 64;
      p.seed = 1 + i;
      const auto wl = workloads::make_vecadd(p);
      PlatformSpec proc_plat = plat;
      proc_plat.pager.frame_budget = 6;  // arena is 16 pages: real pressure
      SynthesisFlow flow(proc_plat);
      group->add_process(flow.synthesize(workloads::single_thread_app(
                             wl, ThreadKind::kHardware)),
                         "p" + std::to_string(i));
    }
  }
};

TrafficDriver::Report run_serve(const PlatformSpec& plat, unsigned workers = 2) {
  ServeRig rig(plat, workers);
  TrafficDriver driver(*rig.group, plat.traffic);
  return driver.run();
}

TEST(TrafficDriver, LedgerBalancesAndRunIsBitIdentical) {
  const PlatformSpec plat = serve_platform();
  const auto a = run_serve(plat);
  EXPECT_EQ(a.arrivals, plat.traffic.requests);
  EXPECT_EQ(a.admitted + a.rejected, a.arrivals);
  EXPECT_EQ(a.completed, a.admitted);
  EXPECT_EQ(a.latency.size(), a.completed);
  EXPECT_EQ(a.queue_wait.size(), a.completed);
  EXPECT_EQ(a.service.size(), a.completed);
  EXPECT_GT(a.span, 0u);

  const auto b = run_serve(plat);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.queue_wait, b.queue_wait);
  EXPECT_EQ(a.span, b.span);
}

TEST(TrafficDriver, DifferentArrivalSeedsProduceDifferentRuns) {
  PlatformSpec plat = serve_platform();
  const auto a = run_serve(plat);
  plat.traffic.arrival.seed = 12;
  const auto b = run_serve(plat);
  EXPECT_NE(a.latency, b.latency);
}

TEST(TrafficDriver, BoundedQueueRejectsAndAccountsOverflow) {
  PlatformSpec plat = serve_platform();
  // One worker, a two-deep queue, arrivals far faster than service: the
  // overflow must be rejected, not dropped or deadlocked.
  plat.traffic.queue_capacity = 2;
  plat.traffic.arrival.mean_gap = 100;
  const auto rep = run_serve(plat, 1);
  EXPECT_GT(rep.rejected, 0u);
  EXPECT_EQ(rep.admitted + rep.rejected, rep.arrivals);
  EXPECT_EQ(rep.completed, rep.admitted);
  EXPECT_LE(rep.peak_queue, plat.traffic.queue_capacity);
  EXPECT_GT(rep.completed, 0u);  // the pool still made progress
}

TEST(TrafficDriver, SaturatedPoolQueuesInsteadOfRejecting) {
  PlatformSpec plat = serve_platform();
  // Queue deep enough for every request: under the same overload nothing
  // may be rejected — requests wait, and the pool stays fully busy.
  plat.traffic.requests = 40;
  plat.traffic.queue_capacity = 64;
  plat.traffic.arrival.mean_gap = 100;
  const auto rep = run_serve(plat, 2);
  EXPECT_EQ(rep.rejected, 0u);
  EXPECT_EQ(rep.completed, rep.arrivals);
  EXPECT_EQ(rep.peak_busy, 2u);
  EXPECT_GT(rep.peak_queue, 0u);
  EXPECT_GT(TrafficDriver::Report::percentile(rep.queue_wait, 0.99), 0u);
}

TEST(TrafficDriver, RejectsUnknownEpisodeMix) {
  PlatformSpec plat = serve_platform();
  plat.traffic.mix = "saxpy,flux_capacitor";
  ServeRig rig(plat, 1);
  EXPECT_THROW(TrafficDriver(*rig.group, plat.traffic), std::invalid_argument);
}

// --- rate sweep (synthetic run_point: the search logic alone) ---

TrafficDriver::Report synthetic_report(Cycles p99, u64 rejected) {
  TrafficDriver::Report rep;
  rep.arrivals = 100;
  rep.rejected = rejected;
  rep.admitted = rep.completed = 100 - rejected;
  rep.span = 100'000;
  // percentile() is nearest-rank over the exact vector: a constant vector
  // pins every quantile to `p99`.
  rep.latency.assign(rep.completed, p99);
  rep.queue_wait.assign(rep.completed, 0);
  rep.service.assign(rep.completed, p99);
  return rep;
}

TEST(RateSweep, StopsAtTheFirstViolationAndKeepsTheLastSustainablePoint) {
  std::vector<Cycles> ran;
  const auto result = sweep_rates({8000, 4000, 2000, 1000, 500}, 1000, [&](Cycles gap) {
    ran.push_back(gap);
    return synthetic_report(/*p99=*/10'000 / gap * 100, /*rejected=*/0);
  });
  // p99 = 100, 200, 500, 1000 (ok: the bound is strict-greater) then 2000.
  EXPECT_EQ(ran, (std::vector<Cycles>{8000, 4000, 2000, 1000, 500}));
  EXPECT_TRUE(result.saturated);
  ASSERT_EQ(result.points.size(), 5u);
  EXPECT_TRUE(result.points.back().violated);
  EXPECT_EQ(result.max_qps_gap, 1000u);
  EXPECT_EQ(result.max_qps_p99, 1000u);
  EXPECT_DOUBLE_EQ(result.max_qps_mcycle, 100.0 * 1e6 / 100'000.0);
}

TEST(RateSweep, RejectionViolatesEvenUnderTheLatencyBound) {
  const auto result = sweep_rates({4000, 2000}, 1'000'000, [&](Cycles gap) {
    return synthetic_report(/*p99=*/100, /*rejected=*/gap < 4000 ? 5 : 0);
  });
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.max_qps_gap, 4000u);
  EXPECT_TRUE(result.points.back().violated);
}

TEST(RateSweep, UnsaturatedSweepReportsTheLastPoint) {
  const auto result = sweep_rates({4000, 2000, 1000}, 1'000'000, [&](Cycles) {
    return synthetic_report(/*p99=*/100, /*rejected=*/0);
  });
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.points.size(), 3u);
  EXPECT_EQ(result.max_qps_gap, 1000u);
}

TEST(RateSweep, ValidatesTheGapGrid) {
  const auto ok = [](Cycles) { return synthetic_report(1, 0); };
  EXPECT_THROW(sweep_rates({}, 100, ok), std::invalid_argument);
  EXPECT_THROW(sweep_rates({1000, 1000}, 100, ok), std::invalid_argument);
  EXPECT_THROW(sweep_rates({1000, 2000}, 100, ok), std::invalid_argument);
  // A first point already over the bound has no sustainable rate at all.
  EXPECT_THROW(sweep_rates({1000, 500}, 100,
                           [](Cycles) { return synthetic_report(5000, 0); }),
               std::runtime_error);
}

}  // namespace
}  // namespace vmsls::sls

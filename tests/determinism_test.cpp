// Determinism backbone for the fast-path event engine.
//
// The engine overhaul (calendar-wheel scheduler, pooled nodes, inline
// completions, parallel DSE) is only admissible because simulated results
// are bit-identical to the straightforward priority-queue implementation.
// These tests pin that contract: repeated runs produce identical cycle
// counts, event counts, and stat snapshots; the parallel DSE sweep equals
// the serial one candidate for candidate; and zero-latency translation
// paths complete without touching the scheduler at all.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mem/bus.hpp"
#include "mem/dram.hpp"
#include "mem/frames.hpp"
#include "mem/mmu.hpp"
#include "mem/pagetable.hpp"
#include "mem/physmem.hpp"
#include "sim/simulator.hpp"
#include "sls/dse.hpp"
#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "workloads/workloads.hpp"

namespace vmsls {
namespace {

struct RunSnapshot {
  Cycles cycles = 0;
  u64 events = 0;
  std::map<std::string, double> stats;
};

/// fig4_tlb_sweep's smallest configuration: matmul n=32, a 1-entry TLB,
/// 4 KiB pages.
RunSnapshot run_fig4_smallest() {
  workloads::WorkloadParams p;
  p.n = 32;
  auto wl = workloads::make_workload("matmul", p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  mem::TlbConfig tlb;
  tlb.entries = 1;
  tlb.ways = 1;
  app.threads[0].tlb_override = tlb;

  sls::PlatformSpec plat = sls::zynq7020();
  plat.page_table.page_bits = 12;

  sls::SynthesisFlow flow(plat);
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);
  system->start_all();

  RunSnapshot s;
  s.cycles = system->run_to_completion();
  EXPECT_TRUE(wl.verify(*system));
  s.events = sim.events_executed();
  s.stats = sim.stats().snapshot();
  return s;
}

TEST(Determinism, Fig4SmallestConfigBitIdentical) {
  const RunSnapshot a = run_fig4_smallest();
  const RunSnapshot b = run_fig4_smallest();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.stats, b.stats);  // every counter and histogram moment
}

TEST(Determinism, SerialAndParallelDseIdentical) {
  workloads::WorkloadParams p;
  p.n = 16;
  auto wl = workloads::make_workload("matmul", p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  auto evaluate = [&wl](const sls::SystemImage& image) {
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    system->start_all();
    return system->run_to_completion();
  };
  const std::vector<unsigned> candidates = {2, 4, 8, 16};

  sls::DesignSpaceExplorer serial(sls::zynq7020());
  serial.set_threads(1);
  const auto a = serial.explore_tlb(app, "worker", candidates, evaluate);

  sls::DesignSpaceExplorer parallel(sls::zynq7020());
  parallel.set_threads(4);
  const auto b = parallel.explore_tlb(app, "worker", candidates, evaluate);

  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].tlb_entries, b.candidates[i].tlb_entries);
    EXPECT_EQ(a.candidates[i].fits, b.candidates[i].fits);
    EXPECT_EQ(a.candidates[i].measured, b.candidates[i].measured);
    EXPECT_EQ(a.candidates[i].cycles, b.candidates[i].cycles);
  }
  EXPECT_EQ(a.best, b.best);
  ASSERT_GE(a.best, 0);
  EXPECT_TRUE(a.candidates[static_cast<std::size_t>(a.best)].measured);
}

/// Fixture providing a minimal translation stack (no full System).
struct MmuFastPath {
  sim::Simulator sim;
  mem::PhysicalMemory pm{16 * MiB};
  mem::FrameAllocator frames{0, (16 * MiB) / (4 * KiB), 4 * KiB};
  mem::PageTable pt{pm, frames, mem::PageTableConfig{}};
  mem::DramModel dram{mem::DramConfig{}, sim.stats(), "dram"};
  mem::MemoryBus bus{sim, dram, mem::BusConfig{}, "bus"};
  mem::PageWalker walker{sim, bus, pm, pt, mem::WalkerConfig{}, "walker"};
};

TEST(Determinism, PassThroughTranslationBypassesScheduler) {
  MmuFastPath f;
  mem::MmuConfig cfg;
  cfg.translation_enabled = false;
  mem::Mmu mmu(f.sim, f.walker, cfg, "mmu", 0);

  const u64 scheduled_before = f.sim.events_scheduled();
  const u64 executed_before = f.sim.events_executed();
  u64 completions = 0;
  for (u64 i = 0; i < 1000; ++i) {
    PhysAddr got = ~0ull;
    mmu.translate(i * 64, /*is_write=*/false, [&got](PhysAddr pa) { got = pa; });
    EXPECT_EQ(got, i * 64);  // completed synchronously, pass-through identity
    ++completions;
  }
  // The satellite contract: zero scheduler traffic on the pass-through path.
  EXPECT_EQ(f.sim.events_scheduled(), scheduled_before);
  EXPECT_EQ(f.sim.events_executed(), executed_before);
  EXPECT_EQ(mmu.inline_completions(), completions);
  EXPECT_TRUE(f.sim.idle());
}

TEST(Determinism, ZeroLatencyTlbHitCompletesInline) {
  MmuFastPath f;
  mem::MmuConfig cfg;
  cfg.tlb.entries = 4;
  cfg.tlb.ways = 1;
  cfg.tlb.hit_latency = 0;
  mem::Mmu mmu(f.sim, f.walker, cfg, "mmu", 0);

  const VirtAddr va = 0x1000;
  f.pt.map(va, *f.frames.alloc(), /*writable=*/true);

  // First access misses and walks (scheduler involved, as it must be).
  bool walked = false;
  mmu.translate(va, false, [&walked](PhysAddr) { walked = true; });
  f.sim.run();
  ASSERT_TRUE(walked);

  // Hits on a zero-latency TLB complete inline: no new scheduler events.
  const u64 scheduled_before = f.sim.events_scheduled();
  const u64 inline_before = mmu.inline_completions();
  bool hit = false;
  mmu.translate(va, false, [&hit](PhysAddr) { hit = true; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(f.sim.events_scheduled(), scheduled_before);
  EXPECT_EQ(mmu.inline_completions(), inline_before + 1);
}

}  // namespace
}  // namespace vmsls

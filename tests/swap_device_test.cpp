// SwapDevice unit tests: transfer timing, port serialization, and the slot
// bookkeeping edges the pager and pageout daemon rely on — note_swapped
// by-fiat entries, slot recycling across swap-in / re-eviction cycles, the
// busy() yield window, and the slot_limit hard error.
#include <gtest/gtest.h>

#include "mem/paging/swap_device.hpp"
#include "test_util.hpp"

namespace vmsls::paging {
namespace {

TEST(SwapDevice, TransfersPayLatencyPlusBandwidth) {
  sim::Simulator sim;
  SwapConfig cfg;
  cfg.write_latency = 100;
  cfg.read_latency = 50;
  cfg.bytes_per_cycle = 8;
  SwapDevice dev(sim, cfg, 4096, "swap");

  Cycles write_done = 0, read_done = 0;
  dev.write_page(7, [&] { write_done = sim.now(); });
  test::run_until_drained(sim);
  EXPECT_EQ(write_done, 100u + 4096 / 8);
  EXPECT_TRUE(dev.holds(7));

  const Cycles t0 = sim.now();
  dev.read_page(7, [&] { read_done = sim.now(); });
  test::run_until_drained(sim);
  EXPECT_EQ(read_done - t0, 50u + 4096 / 8);
}

TEST(SwapDevice, OperationsSerializeOnThePort) {
  sim::Simulator sim;
  SwapConfig cfg;
  cfg.write_latency = 100;
  cfg.bytes_per_cycle = 8;
  SwapDevice dev(sim, cfg, 4096, "swap");
  const Cycles per_op = 100 + 4096 / 8;

  Cycles first = 0, second = 0;
  dev.write_page(1, [&] { first = sim.now(); });
  dev.write_page(2, [&] { second = sim.now(); });
  test::run_until_drained(sim);
  EXPECT_EQ(first, per_op);
  EXPECT_EQ(second, 2 * per_op);
  EXPECT_EQ(dev.slots_in_use(), 2u);
}

TEST(SwapDevice, ReadOfUnheldPageIsAnError) {
  sim::Simulator sim;
  SwapDevice dev(sim, SwapConfig{}, 4096, "swap");
  EXPECT_THROW(dev.read_page(3, [] {}), std::logic_error);
  dev.note_swapped(3);
  EXPECT_NO_THROW(dev.read_page(3, [] {}));
}

TEST(SwapDevice, NoteSwappedIsInstantAndIdempotent) {
  // By-fiat bookkeeping: experiment setup lands pages in swap with zero
  // device time and no transfer, and re-noting a held page changes nothing.
  sim::Simulator sim;
  SwapDevice dev(sim, SwapConfig{}, 4096, "swap");
  dev.note_swapped(11);
  dev.note_swapped(12);
  EXPECT_TRUE(sim.idle());  // no transfer scheduled
  EXPECT_EQ(dev.slots_in_use(), 2u);
  EXPECT_EQ(dev.writes(), 0u);
  EXPECT_FALSE(dev.busy());

  dev.note_swapped(11);  // idempotent: the slot is not double-allocated
  EXPECT_EQ(dev.slots_in_use(), 2u);
  EXPECT_TRUE(dev.holds(11));
  EXPECT_TRUE(dev.holds(12));
  EXPECT_FALSE(dev.holds(13));
}

TEST(SwapDevice, SlotFreedOnReadCompletionAndReallocatedOnReEviction) {
  sim::Simulator sim;
  SwapConfig cfg;
  cfg.read_latency = 50;
  cfg.bytes_per_cycle = 8;
  SwapDevice dev(sim, cfg, 4096, "swap");
  dev.write_page(5, [] {});
  test::run_until_drained(sim);
  ASSERT_TRUE(dev.holds(5));

  // The slot stays allocated for the whole transfer — freeing it at issue
  // time would let a concurrent eviction steal the slot mid-read — and is
  // released exactly at completion.
  bool read_done = false;
  dev.read_page(5, [&] { read_done = true; });
  EXPECT_TRUE(dev.holds(5));  // still held: the transfer is in flight
  EXPECT_EQ(dev.slots_in_use(), 1u);
  test::run_until_drained(sim);
  EXPECT_TRUE(read_done);
  EXPECT_FALSE(dev.holds(5));  // freed at completion
  EXPECT_EQ(dev.slots_in_use(), 0u);

  // Re-eviction of the same page allocates a fresh slot and pays a second
  // write: occupancy tracks pages that are out, not pages that ever were.
  dev.write_page(5, [] {});
  test::run_until_drained(sim);
  EXPECT_TRUE(dev.holds(5));
  EXPECT_EQ(dev.slots_in_use(), 1u);
  EXPECT_EQ(dev.writes(), 2u);
  EXPECT_EQ(dev.reads(), 1u);
}

TEST(SwapDevice, BusyWindowCoversQueuedTransfers) {
  // busy() is the pageout daemon's yield signal: it must hold from issue
  // until the *last* queued transfer completes, and clear exactly at the
  // completion instant so a tick landing then may submit its batch.
  sim::Simulator sim;
  SwapConfig cfg;
  cfg.write_latency = 100;
  cfg.bytes_per_cycle = 8;
  SwapDevice dev(sim, cfg, 4096, "swap");
  const Cycles per_op = 100 + 4096 / 8;

  EXPECT_FALSE(dev.busy());  // idle device
  Cycles busy_at_first_completion = 0;
  bool busy_at_second_completion = true;
  dev.write_page(1, [&] { busy_at_first_completion = dev.busy(); });
  dev.write_page(2, [&] { busy_at_second_completion = dev.busy(); });
  EXPECT_TRUE(dev.busy());

  // Step to the first completion: the second transfer still occupies the
  // port, so the window must not have closed early.
  while (sim.now() < per_op && sim.step()) {
  }
  EXPECT_TRUE(busy_at_first_completion);
  test::run_until_drained(sim);
  EXPECT_FALSE(busy_at_second_completion);  // port free at its own completion
  EXPECT_FALSE(dev.busy());
}

TEST(SwapDevice, SlotLimitIsAHardError) {
  sim::Simulator sim;
  SwapConfig cfg;
  cfg.slot_limit = 2;
  SwapDevice dev(sim, cfg, 4096, "swap");
  dev.note_swapped(1);
  dev.note_swapped(2);
  dev.note_swapped(2);  // re-note of a held page does not consume a slot
  EXPECT_THROW(dev.note_swapped(3), std::runtime_error);
  // write_page allocates through the same bookkeeping, so it hits the same
  // wall; a held page can still be re-written (no new slot).
  EXPECT_THROW(dev.write_page(4, [] {}), std::runtime_error);
  EXPECT_NO_THROW(dev.write_page(1, [] {}));
}

}  // namespace
}  // namespace vmsls::paging

#include <gtest/gtest.h>

#include "mem/frames.hpp"
#include "mem/pagetable.hpp"
#include "mem/physmem.hpp"

namespace vmsls::mem {
namespace {

struct PtFixture {
  PhysicalMemory pm{64 * MiB};
  FrameAllocator frames;
  PageTable pt;

  explicit PtFixture(PageTableConfig cfg = {})
      : frames(0, (64 * MiB) >> cfg.page_bits, 1ull << cfg.page_bits), pt(pm, frames, cfg) {}
};

TEST(Pte, EncodeDecodeRoundTrip) {
  Pte p;
  p.valid = true;
  p.writable = true;
  p.accessed = true;
  p.dirty = false;
  p.frame = 0x12345;
  const Pte q = Pte::decode(p.encode());
  EXPECT_EQ(q.valid, p.valid);
  EXPECT_EQ(q.writable, p.writable);
  EXPECT_EQ(q.accessed, p.accessed);
  EXPECT_EQ(q.dirty, p.dirty);
  EXPECT_EQ(q.frame, p.frame);
}

TEST(Pte, ZeroIsInvalid) { EXPECT_FALSE(Pte::decode(0).valid); }

TEST(PageTable, LevelCountsMatchGeometry) {
  // 4 KiB pages: 9-bit indices over a 32-bit VA -> 3 levels.
  PtFixture f4(PageTableConfig{32, 12});
  EXPECT_EQ(f4.pt.levels(), 3u);
  EXPECT_EQ(f4.pt.index_bits(), 9u);
  // 64 KiB pages: 13-bit indices -> 2 levels.
  PtFixture f64(PageTableConfig{32, 16});
  EXPECT_EQ(f64.pt.levels(), 2u);
  // 2 MiB pages: 18-bit indices -> 1 level.
  PtFixture f2m(PageTableConfig{32, 21});
  EXPECT_EQ(f2m.pt.levels(), 1u);
}

TEST(PageTable, UnmappedLookupIsEmpty) {
  PtFixture f;
  EXPECT_FALSE(f.pt.lookup(0x4000).has_value());
  EXPECT_FALSE(f.pt.is_mapped(0x4000));
}

TEST(PageTable, MapThenLookup) {
  PtFixture f;
  const u64 frame = *f.frames.alloc();
  f.pt.map(0x7000, frame, true);
  const auto pte = f.pt.lookup(0x7abc);  // same page, any offset
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->frame, frame);
  EXPECT_TRUE(pte->writable);
}

TEST(PageTable, ReadOnlyMapping) {
  PtFixture f;
  f.pt.map(0x3000, *f.frames.alloc(), false);
  EXPECT_FALSE(f.pt.lookup(0x3000)->writable);
}

TEST(PageTable, DoubleMapThrows) {
  PtFixture f;
  f.pt.map(0x1000, *f.frames.alloc(), true);
  EXPECT_THROW(f.pt.map(0x1234, *f.frames.alloc(), true), std::logic_error);
}

TEST(PageTable, UnmapInvalidates) {
  PtFixture f;
  f.pt.map(0x5000, *f.frames.alloc(), true);
  f.pt.unmap(0x5000);
  EXPECT_FALSE(f.pt.is_mapped(0x5000));
  EXPECT_THROW(f.pt.unmap(0x5000), std::logic_error);
}

TEST(PageTable, UnmapOfNeverMappedThrows) {
  PtFixture f;
  EXPECT_THROW(f.pt.unmap(0x9000), std::logic_error);
}

TEST(PageTable, DistinctPagesIndependent) {
  PtFixture f;
  const u64 fa = *f.frames.alloc(), fb = *f.frames.alloc();
  f.pt.map(0x1000, fa, true);
  f.pt.map(0x2000, fb, true);
  EXPECT_EQ(f.pt.lookup(0x1000)->frame, fa);
  EXPECT_EQ(f.pt.lookup(0x2000)->frame, fb);
  f.pt.unmap(0x1000);
  EXPECT_TRUE(f.pt.is_mapped(0x2000));
}

TEST(PageTable, InteriorTablesAllocatedOnDemand) {
  PtFixture f;
  const u64 before = f.pt.table_frames();
  // Two VAs far apart require distinct interior chains.
  f.pt.map(0x0000'1000, *f.frames.alloc(), true);
  f.pt.map(0x4000'0000ull & 0xffff'ffff, *f.frames.alloc(), true);
  EXPECT_GT(f.pt.table_frames(), before);
}

TEST(PageTable, VaWidthEnforced) {
  PtFixture f(PageTableConfig{32, 12});
  EXPECT_THROW(f.pt.lookup(1ull << 32), std::out_of_range);
  EXPECT_THROW(f.pt.map(1ull << 32, 0, true), std::out_of_range);
}

TEST(PageTable, AccessedDirtyBits) {
  PtFixture f;
  f.pt.map(0x1000, *f.frames.alloc(), true);
  f.pt.set_accessed_dirty(0x1000, false);
  EXPECT_TRUE(f.pt.lookup(0x1000)->accessed);
  EXPECT_FALSE(f.pt.lookup(0x1000)->dirty);
  f.pt.set_accessed_dirty(0x1000, true);
  EXPECT_TRUE(f.pt.lookup(0x1000)->dirty);
}

TEST(PageTable, IndexDecomposition) {
  PtFixture f(PageTableConfig{32, 12});
  // va = idx0:idx1:idx2:offset with 2,9,9,12 bits (top level partial):
  // level-0 shift is 30, level-1 is 21, level-2 is 12.
  const VirtAddr va = (1ull << 30) | (5ull << 21) | (7ull << 12) | 0x123;
  EXPECT_EQ(f.pt.index_at(va, 0), 1u);
  EXPECT_EQ(f.pt.index_at(va, 1), 5u);
  EXPECT_EQ(f.pt.index_at(va, 2), 7u);
}

TEST(PageTable, RejectsMismatchedFrameGranularity) {
  PhysicalMemory pm{4 * MiB};
  FrameAllocator frames(0, 1024, 4 * KiB);
  EXPECT_THROW(PageTable(pm, frames, PageTableConfig{32, 16}), std::invalid_argument);
}

// Parameterized sweep: map/lookup/unmap behaves for every page size.
class PageSizeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PageSizeSweep, MapLookupUnmapAtEveryGeometry) {
  const unsigned page_bits = GetParam();
  PtFixture f(PageTableConfig{32, page_bits});
  const u64 page = 1ull << page_bits;
  for (u64 i = 0; i < 8; ++i) {
    const VirtAddr va = (i + 1) * page;
    const u64 frame = *f.frames.alloc();
    f.pt.map(va, frame, (i % 2) == 0);
    const auto pte = f.pt.lookup(va + page / 2);
    ASSERT_TRUE(pte.has_value());
    EXPECT_EQ(pte->frame, frame);
    EXPECT_EQ(pte->writable, (i % 2) == 0);
  }
  for (u64 i = 0; i < 8; ++i) f.pt.unmap((i + 1) * page);
  for (u64 i = 0; i < 8; ++i) EXPECT_FALSE(f.pt.is_mapped((i + 1) * page));
}

INSTANTIATE_TEST_SUITE_P(Geometries, PageSizeSweep, ::testing::Values(12u, 14u, 16u, 21u));

}  // namespace
}  // namespace vmsls::mem

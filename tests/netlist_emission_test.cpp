// Netlist-emission coverage: the generated structural netlist must mirror
// the plans — one wrapper + MMU pair per virtual thread, physical bridge
// for physical threads, walker only when someone translates, and a DMA
// instance only when requested. These are the invariants a downstream
// implementation flow depends on.
#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "sls/synthesis.hpp"

namespace vmsls::sls {
namespace {

hwt::Kernel mem_kernel(const std::string& name) {
  hwt::KernelBuilder kb(name);
  kb.mbox_get(1, 0).load(2, 1).mbox_put(1, 2).halt();
  return kb.build();
}

AppSpec two_thread_app(Addressing a0, Addressing a1) {
  AppSpec app;
  app.name = "emit";
  app.add_mailbox("args", 8);
  app.add_mailbox("done", 8);
  app.add_hw_thread("t0", mem_kernel("k0"), {"args", "done"}).addressing = a0;
  app.add_hw_thread("t1", mem_kernel("k1"), {"args", "done"}).addressing = a1;
  return app;
}

TEST(NetlistEmission, OneWrapperAndMmuPerVirtualThread) {
  SynthesisFlow flow(zynq7020());
  const auto image =
      flow.synthesize(two_thread_app(Addressing::kVirtual, Addressing::kVirtual));
  const auto& nl = image.netlist();
  for (const char* t : {"t0", "t1"}) {
    ASSERT_NE(nl.find(std::string("hwt_") + t), nullptr);
    ASSERT_NE(nl.find(std::string("hwt_") + t + "_mmu"), nullptr);
    ASSERT_NE(nl.find(std::string("hwt_") + t + "_osif_inst"), nullptr);
  }
  EXPECT_NE(nl.find("ptw0"), nullptr);
  EXPECT_NE(nl.find("interconnect0"), nullptr);
}

TEST(NetlistEmission, MixedAddressingGetsOneWalker) {
  SynthesisFlow flow(zynq7020());
  const auto image =
      flow.synthesize(two_thread_app(Addressing::kVirtual, Addressing::kPhysical));
  const auto& nl = image.netlist();
  EXPECT_NE(nl.find("hwt_t0_mmu"), nullptr);
  EXPECT_EQ(nl.find("hwt_t1_mmu"), nullptr);
  EXPECT_NE(nl.find("hwt_t1_physport"), nullptr);
  EXPECT_NE(nl.find("ptw0"), nullptr);  // t0 still translates
}

TEST(NetlistEmission, DmaOnlyWhenRequested) {
  SynthesisOptions with_dma;
  with_dma.include_dma = true;
  SynthesisFlow flow_dma(zynq7020(), with_dma);
  const auto app = two_thread_app(Addressing::kVirtual, Addressing::kVirtual);
  EXPECT_NE(flow_dma.synthesize(app).netlist().find("dma0"), nullptr);

  SynthesisFlow flow_plain(zynq7020());
  EXPECT_EQ(flow_plain.synthesize(app).netlist().find("dma0"), nullptr);
}

TEST(NetlistEmission, ParametersCarryConfiguration) {
  AppSpec app = two_thread_app(Addressing::kVirtual, Addressing::kVirtual);
  mem::TlbConfig tlb;
  tlb.entries = 32;
  tlb.ways = 4;
  app.threads[0].tlb_override = tlb;
  SynthesisFlow flow(zynq7020());
  const auto image = flow.synthesize(app);
  const auto* mmu = image.netlist().find("hwt_t0_mmu");
  ASSERT_NE(mmu, nullptr);
  bool found = false;
  for (const auto& [key, value] : mmu->parameters)
    if (key == "TLB_ENTRIES") {
      EXPECT_EQ(value, "32");
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(NetlistEmission, VerilogStubParses) {
  SynthesisFlow flow(zynq7020());
  const auto image =
      flow.synthesize(two_thread_app(Addressing::kVirtual, Addressing::kVirtual));
  const std::string v = image.netlist().to_verilog();
  // Structural sanity: balanced module/endmodule, every instance present.
  EXPECT_NE(v.find("module emit_top"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Parameterized instances render as `type #(...) name (`.
  EXPECT_NE(v.find("hw_thread_wrapper #("), std::string::npos);
  EXPECT_NE(v.find(" hwt_t0 ("), std::string::npos);
  EXPECT_NE(v.find(" hwt_t0_mmu ("), std::string::npos);
  // Every declared net is referenced at least once.
  EXPECT_NE(v.find("wire axi_mem;"), std::string::npos);
  EXPECT_NE(v.find(".m_axi(axi_mem)"), std::string::npos);
}

TEST(NetlistEmission, InstanceCountsScaleWithThreads) {
  SynthesisFlow flow(zynq7045());
  AppSpec app;
  app.name = "scale";
  app.add_mailbox("args", 8);
  app.add_mailbox("done", 8);
  std::size_t prev = 0;
  for (int t = 0; t < 3; ++t) {
    app.add_hw_thread("t" + std::to_string(t), mem_kernel("k" + std::to_string(t)),
                      {"args", "done"});
    const auto image = flow.synthesize(app);
    EXPECT_GT(image.netlist().instance_count(), prev);
    prev = image.netlist().instance_count();
  }
}

}  // namespace
}  // namespace vmsls::sls

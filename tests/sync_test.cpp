#include <gtest/gtest.h>

#include "rt/sync.hpp"

namespace vmsls::rt {
namespace {

TEST(Mailbox, PutThenGet) {
  Mailbox m(4);
  bool put_done = false;
  m.put(42, [&] { put_done = true; });
  EXPECT_TRUE(put_done);
  i64 got = 0;
  m.get([&](i64 v) { got = v; });
  EXPECT_EQ(got, 42);
}

TEST(Mailbox, GetBlocksUntilPut) {
  Mailbox m(4);
  i64 got = -1;
  m.get([&](i64 v) { got = v; });
  EXPECT_EQ(got, -1);
  EXPECT_EQ(m.waiting_takers(), 1u);
  m.put(7, [] {});
  EXPECT_EQ(got, 7);
  EXPECT_EQ(m.waiting_takers(), 0u);
}

TEST(Mailbox, FifoOrder) {
  Mailbox m(8);
  for (i64 v = 0; v < 5; ++v) m.put(v, [] {});
  std::vector<i64> got;
  for (int i = 0; i < 5; ++i) m.get([&](i64 v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<i64>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, PutBlocksWhenFull) {
  Mailbox m(2);
  m.put(1, [] {});
  m.put(2, [] {});
  bool third_done = false;
  m.put(3, [&] { third_done = true; });
  EXPECT_FALSE(third_done);
  EXPECT_EQ(m.waiting_putters(), 1u);
  i64 got = 0;
  m.get([&](i64 v) { got = v; });
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(third_done);  // space freed -> queued put lands
  EXPECT_EQ(m.size(), 2u);
}

TEST(Mailbox, TryGetNonBlocking) {
  Mailbox m(2);
  i64 v = 0;
  EXPECT_FALSE(m.try_get(v));
  m.put(9, [] {});
  EXPECT_TRUE(m.try_get(v));
  EXPECT_EQ(v, 9);
}

TEST(Mailbox, TryGetDrainsBlockedPutters) {
  Mailbox m(1);
  m.put(1, [] {});
  bool second = false;
  m.put(2, [&] { second = true; });
  i64 v = 0;
  EXPECT_TRUE(m.try_get(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(second);
  EXPECT_TRUE(m.try_get(v));
  EXPECT_EQ(v, 2);
}

TEST(Mailbox, ManyWaitersServedInOrder) {
  Mailbox m(1);
  std::vector<i64> got;
  for (int i = 0; i < 3; ++i) m.get([&](i64 v) { got.push_back(v); });
  m.put(10, [] {});
  m.put(20, [] {});
  m.put(30, [] {});
  EXPECT_EQ(got, (std::vector<i64>{10, 20, 30}));
}

TEST(Mailbox, ZeroDepthRejected) { EXPECT_THROW(Mailbox(0), std::invalid_argument); }

TEST(Semaphore, InitialCountConsumable) {
  Semaphore s(2);
  int acquired = 0;
  s.wait([&] { ++acquired; });
  s.wait([&] { ++acquired; });
  EXPECT_EQ(acquired, 2);
  s.wait([&] { ++acquired; });
  EXPECT_EQ(acquired, 2);  // blocked
  EXPECT_EQ(s.waiters(), 1u);
  s.post();
  EXPECT_EQ(acquired, 3);
}

TEST(Semaphore, PostWithoutWaitersAccumulates) {
  Semaphore s(0);
  s.post();
  s.post();
  EXPECT_EQ(s.count(), 2u);
  int n = 0;
  s.wait([&] { ++n; });
  s.wait([&] { ++n; });
  EXPECT_EQ(n, 2);
  EXPECT_EQ(s.count(), 0u);
}

TEST(Semaphore, WakesInFifoOrder) {
  Semaphore s(0);
  std::vector<int> order;
  s.wait([&] { order.push_back(1); });
  s.wait([&] { order.push_back(2); });
  s.post();
  s.post();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Mutex, ExcludesSecondLocker) {
  Mutex mx;
  bool first = false, second = false;
  mx.lock([&] { first = true; });
  EXPECT_TRUE(first);
  EXPECT_TRUE(mx.locked());
  mx.lock([&] { second = true; });
  EXPECT_FALSE(second);
  mx.unlock();
  EXPECT_TRUE(second);
}

TEST(Barrier, ReleasesOnLastArrival) {
  Barrier b(3);
  int released = 0;
  b.arrive([&] { ++released; });
  b.arrive([&] { ++released; });
  EXPECT_EQ(released, 0);
  b.arrive([&] { ++released; });
  EXPECT_EQ(released, 3);
}

TEST(Barrier, ReusableAcrossRounds) {
  Barrier b(2);
  int rounds = 0;
  for (int r = 0; r < 3; ++r) {
    b.arrive([&] {});
    b.arrive([&] { ++rounds; });
  }
  EXPECT_EQ(rounds, 3);
}

TEST(Barrier, ZeroPartiesRejected) { EXPECT_THROW(Barrier(0), std::invalid_argument); }

}  // namespace
}  // namespace vmsls::rt

// Copy-on-write page sharing: fork's map-by-reference semantics, the COW
// fault path (split vs in-place upgrade), owner-set eviction of shared
// frames (one pool victim, one shootdown per sharer, exactly one
// writeback), the cross-process pin regression (a pin held by ANY sharer
// protects the frame for ALL sharers), and serial-vs-sharded bit-identity
// of a COW storm. The full fig14 configuration re-checks the sharded gate
// in bench/fig14_page_sharing.cpp.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "mem/backing_file.hpp"
#include "mem/frame_share.hpp"
#include "mem/paging/frame_pool.hpp"
#include "mem/paging/pager.hpp"
#include "rt/process.hpp"
#include "sls/sharded_runner.hpp"
#include "test_util.hpp"

namespace vmsls::paging {
namespace {

constexpr u64 kPageSz = 4096;

struct CowFixture : ::testing::Test {
  static constexpr u64 kMemBytes = 64 * MiB;

  sim::Simulator sim;
  mem::PhysicalMemory pm{kMemBytes};
  mem::FrameAllocator frames{0, kMemBytes / kPageSz, kPageSz};
  mem::FileStore files{kPageSz};
  mem::FrameShareIndex share;
  mem::AddressSpace as0{pm, frames, mem::PageTableConfig{}};
  mem::AddressSpace as1{pm, frames, mem::PageTableConfig{}};
  rt::Process p0{sim, as0, "p0"};
  rt::Process p1{sim, as1, "p1"};
  std::unique_ptr<FramePool> pool;
  std::unique_ptr<Pager> pg0, pg1;

  void SetUp() override {
    as0.set_share_index(&share);
    as1.set_share_index(&share);
  }

  /// Pagers without a pool: COW mechanics only, no budget enforcement.
  void make_pagers(PagerConfig cfg = {}) {
    pg0 = std::make_unique<Pager>(sim, p0, cfg, "p0.pager");
    pg1 = std::make_unique<Pager>(sim, p1, cfg, "p1.pager");
  }

  /// Pagers attached to a kGlobal pool with `budget` machine-wide frames.
  void make_pool(u64 budget) {
    FramePoolConfig pc;
    pc.mode = BudgetMode::kGlobal;
    pc.total_frames = budget;
    pool = std::make_unique<FramePool>(sim, pc, "pool");
    PagerConfig cfg;
    cfg.budget_mode = BudgetMode::kGlobal;
    make_pagers(cfg);
    pool->attach(*pg0);
    pool->attach(*pg1);
  }

  void run_all() { test::run_until_drained(sim); }

  /// Drives one fault to completion, mapping in the ready callback when the
  /// page is still unmapped (the OS tail the bench drivers play).
  void fault(Pager& pg, rt::Process& p, VirtAddr va, bool is_write) {
    bool done = false;
    pg.handle_fault(va, is_write, [&] {
      if (!p.address_space().is_mapped(va)) p.map_in(va);
      done = true;
    });
    run_all();
    ASSERT_TRUE(done);
  }

  u64 frame_at(mem::AddressSpace& as, VirtAddr va) {
    const auto pte = as.page_table().lookup(va);
    EXPECT_TRUE(pte.has_value());
    return pte ? pte->frame : ~0ull;
  }
};

TEST_F(CowFixture, ForkSharesThenDivergesOnFirstWrite) {
  make_pagers();
  const VirtAddr va = as0.alloc(2 * kPageSz, kPageSz);
  as0.write_u64(va, 0xAAAA);
  as0.write_u64(va + kPageSz, 0xBBBB);

  EXPECT_EQ(p0.fork(p1), 2u);
  const u64 f0 = frame_at(as0, va);
  EXPECT_EQ(frame_at(as1, va), f0);  // one frame backs both mappings
  EXPECT_EQ(frames.refcount(f0), 2u);
  EXPECT_FALSE(as0.page_table().lookup(va)->writable);  // both sides downgraded
  EXPECT_FALSE(as1.page_table().lookup(va)->writable);
  EXPECT_EQ(as1.read_u64(va), 0xAAAAu);  // child reads the parent's bytes

  // Child's first write: a COW fault that splits the frame.
  const u64 child_shootdowns = p1.shootdowns();
  fault(*pg1, p1, va, /*is_write=*/true);
  as1.write_u64(va, 0xA1A1);
  EXPECT_EQ(pg1->cow_copies(), 1u);
  EXPECT_EQ(pg1->cow_upgrades(), 0u);
  const u64 f1 = frame_at(as1, va);
  EXPECT_NE(f1, f0);  // private copy
  EXPECT_EQ(frames.refcount(f0), 1u);
  EXPECT_EQ(frames.refcount(f1), 1u);
  EXPECT_GT(p1.shootdowns(), child_shootdowns);  // stale translation flushed
  EXPECT_EQ(as1.read_u64(va), 0xA1A1u);          // diverged...
  EXPECT_EQ(as0.read_u64(va), 0xAAAAu);          // ...and the parent kept its value

  // Parent's write after the split: refcount is 1, so the fault upgrades
  // the mapping in place — same frame, no copy.
  fault(*pg0, p0, va, /*is_write=*/true);
  as0.write_u64(va, 0xA0A0);
  EXPECT_EQ(pg0->cow_upgrades(), 1u);
  EXPECT_EQ(pg0->cow_copies(), 0u);
  EXPECT_EQ(frame_at(as0, va), f0);
  EXPECT_TRUE(as0.page_table().lookup(va)->writable);
  EXPECT_EQ(as0.read_u64(va), 0xA0A0u);
  EXPECT_EQ(as1.read_u64(va), 0xA1A1u);
}

TEST_F(CowFixture, ReadOnlySharingNeverCopies) {
  make_pagers();
  const VirtAddr va = as0.alloc(4 * kPageSz, kPageSz);
  for (u64 p = 0; p < 4; ++p) as0.write_u64(va + p * kPageSz, 0x100 + p);
  EXPECT_EQ(p0.fork(p1), 4u);
  const u64 f0 = frame_at(as0, va);

  // Reads from both sides — driven faults on the resident pages and plain
  // software reads — must not touch the COW machinery or the refcounts.
  for (u64 p = 0; p < 4; ++p) {
    fault(*pg1, p1, va + p * kPageSz, /*is_write=*/false);
    EXPECT_EQ(as1.read_u64(va + p * kPageSz), 0x100 + p);
    EXPECT_EQ(as0.read_u64(va + p * kPageSz), 0x100 + p);
  }
  EXPECT_EQ(pg0->cow_copies() + pg0->cow_upgrades(), 0u);
  EXPECT_EQ(pg1->cow_copies() + pg1->cow_upgrades(), 0u);
  EXPECT_EQ(frames.refcount(f0), 2u);
  EXPECT_EQ(frame_at(as1, va), f0);
}

TEST_F(CowFixture, MapSharedFaultResolvesToTheSharersFrame) {
  make_pagers();
  mem::BackingFile& file = files.create("lib.dat", kPageSz);
  file.write(0, std::vector<u8>(kPageSz, 0x5A));
  const VirtAddr va0 = p0.mmap(file, 0, kPageSz, /*shared=*/true);
  (void)as0.read_u64(va0);  // p0 faults the block in (software, zero cost)
  const u64 f = frame_at(as0, va0);

  // p1 maps the same file: its demand fault must resolve to p0's frame
  // through the share index — no device read, no new frame, no COW.
  const VirtAddr va1 = p1.mmap(file, 0, kPageSz, /*shared=*/true);
  fault(*pg1, p1, va1, /*is_write=*/false);
  EXPECT_EQ(pg1->share_hits(), 1u);
  EXPECT_EQ(pg1->file_reads(), 0u);
  EXPECT_EQ(frame_at(as1, va1), f);
  EXPECT_EQ(frames.refcount(f), 2u);

  // MAP_SHARED stays writable: a store from one sharer lands in the one
  // frame and is visible to the other — sharing, not COW.
  as1.write_u64(va1, 0xD00Du);
  EXPECT_EQ(as0.read_u64(va0), 0xD00Du);
  EXPECT_EQ(pg1->cow_copies() + pg1->cow_upgrades(), 0u);
}

TEST_F(CowFixture, SharedFrameEvictionShootsDownEverySharerExactlyOnce) {
  make_pool(/*budget=*/1);
  const VirtAddr va = as0.alloc(kPageSz, kPageSz);
  as0.write_u64(va, 0xD1D1);  // parent's mapping is dirty
  EXPECT_EQ(p0.fork(p1), 1u);
  EXPECT_EQ(pool->resident_pages(), 1u);  // one frame...
  EXPECT_EQ(pool->mapped_pages(), 2u);    // ...two mappings

  // p1 faults a fresh page: the global sweep's only candidate is the shared
  // frame — evicting it must fan out across BOTH sharers.
  const u64 sd0 = p0.shootdowns(), sd1 = p1.shootdowns();
  const VirtAddr fresh = va + 16 * kPageSz;
  fault(*pg1, p1, fresh, /*is_write=*/false);

  EXPECT_FALSE(as0.is_mapped(va));
  EXPECT_FALSE(as1.is_mapped(va));
  EXPECT_EQ(p0.shootdowns(), sd0 + 1);  // each sharer shot down exactly once
  EXPECT_EQ(p1.shootdowns(), sd1 + 1);
  EXPECT_EQ(pool->evictions(), 1u);  // one victim frame, however many sharers
  EXPECT_EQ(pg0->evictions(), 1u);   // each owner performed its own unmap
  EXPECT_EQ(pg1->evictions(), 1u);
  // Exactly one writeback: the parent's mapping was dirty, the child's
  // fork-inherited mapping was clean — the frame's bytes are paid out once.
  EXPECT_EQ(pg0->writebacks(), 1u);
  EXPECT_EQ(pg1->writebacks(), 0u);
  EXPECT_EQ(pg0->swap_releases(), 1u);
  EXPECT_EQ(pg1->swap_releases(), 1u);
  // Both diverge into private swap lifecycles and keep their bytes.
  EXPECT_EQ(as0.read_u64(va), 0xD1D1u);
  EXPECT_EQ(as1.read_u64(va), 0xD1D1u);
}

TEST_F(CowFixture, DirtySharedFileFrameWritesBackExactlyOnce) {
  make_pool(/*budget=*/1);
  mem::BackingFile& file = files.create("data.dat", kPageSz);
  const VirtAddr va0 = p0.mmap(file, 0, kPageSz, /*shared=*/true);
  const VirtAddr va1 = p1.mmap(file, 0, kPageSz, /*shared=*/true);
  as0.write_u64(va0, 0xFACE);  // p0 faults it in and dirties it
  // p1 maps through the share index on the software path: with a one-frame
  // budget, a driven fault would evict the very frame it is about to share
  // (reservation runs before classification).
  as1.write_u64(va1, 0xFEED);  // shares the frame and dirties its PTE too
  EXPECT_EQ(pool->mapped_pages(), 2u);
  run_all();
  const u64 device_writes0 = pg0->buffer_cache().device_writes();

  // Evict the shared frame: both sharers are dirty, both report a
  // file_writeback — but the buffer cache dedups the two writes of the one
  // block into a single device write ("exactly one writeback").
  const VirtAddr fresh = as0.alloc(kPageSz, kPageSz);
  fault(*pg0, p0, fresh, /*is_write=*/false);
  run_all();
  EXPECT_FALSE(as0.is_mapped(va0));
  EXPECT_FALSE(as1.is_mapped(va1));
  EXPECT_EQ(pg0->file_writebacks(), 1u);
  EXPECT_EQ(pg1->file_writebacks(), 1u);
  EXPECT_EQ(pg0->buffer_cache().device_writes() - device_writes0, 1u);
  // The file holds the final bytes; a fresh fault re-reads them.
  EXPECT_EQ(as1.read_u64(va1), 0xFEEDu);
}

TEST_F(CowFixture, PinBySharerProtectsFrameForAllSharers) {
  // Regression: the pool's PinnedProbe must aggregate over the owner-set.
  // Before the fix, a pin held by one sharer only protected that sharer's
  // own fault path — another process's fault could still nominate the
  // frame and rip it out from under the pinner.
  make_pool(/*budget=*/2);
  const VirtAddr shared_va = as0.alloc(kPageSz, kPageSz);
  as0.write_u64(shared_va, 0x11);
  EXPECT_EQ(p0.fork(p1), 1u);
  const u64 shared_frame = frame_at(as0, shared_va);

  // p1 maps a private page of its own: the pool is now at budget (2 frames)
  // with the shared frame first in the clock ring.
  const VirtAddr own_va = shared_va + 8 * kPageSz;
  as1.write_u64(own_va, 0x22);
  EXPECT_EQ(pool->resident_pages(), 2u);

  // p0 pins the shared page (in-flight DMA, say); p1 — a different process
  // — faults a third page. The sweep must skip the pinned shared frame and
  // evict p1's own unpinned page instead.
  as0.pin(shared_va);
  fault(*pg1, p1, own_va + 8 * kPageSz, /*is_write=*/false);
  as0.unpin(shared_va);

  EXPECT_TRUE(as0.is_mapped(shared_va));  // survived, for every sharer
  EXPECT_TRUE(as1.is_mapped(shared_va));
  EXPECT_EQ(frames.refcount(shared_frame), 2u);
  EXPECT_FALSE(as1.is_mapped(own_va));  // the unpinned page paid instead
  EXPECT_EQ(pool->evictions(), 1u);
}

TEST(CowSharded, SerialEqualsShardedOnCowStorm) {
  // Four identical fork + COW-storm instances, each on a private simulator:
  // the merged registry must be bit-identical whether the shards ran
  // serially or on a host thread pool (fig14's --shards gate in miniature).
  const auto body = [](sim::Simulator& sim) {
    mem::PhysicalMemory pm{8 * MiB};
    mem::FrameAllocator frames{0, 8 * MiB / kPageSz, kPageSz};
    mem::AddressSpace as0{pm, frames, mem::PageTableConfig{}};
    mem::AddressSpace as1{pm, frames, mem::PageTableConfig{}};
    rt::Process p0{sim, as0, "p0"};
    rt::Process p1{sim, as1, "p1"};
    FramePoolConfig pc;
    pc.mode = BudgetMode::kGlobal;
    pc.total_frames = 6;
    FramePool pool{sim, pc, "pool"};
    PagerConfig cfg;
    cfg.budget_mode = BudgetMode::kGlobal;
    Pager pg0{sim, p0, cfg, "p0.pager"};
    Pager pg1{sim, p1, cfg, "p1.pager"};
    pool.attach(pg0);
    pool.attach(pg1);

    const VirtAddr base = as0.alloc(4 * kPageSz, kPageSz);
    for (u64 p = 0; p < 4; ++p) as0.write_u64(base + p * kPageSz, 0x40 + p);
    p0.fork(p1);
    // Child COW-writes every page, chained fault to fault; the parent then
    // upgrades its now-sole mappings. Budget pressure (6 frames, up to 8
    // mappings) keeps the global sweep in play during the storm.
    u64 next = 0;
    std::function<void()> chain = [&] {
      if (next >= 4) return;
      const VirtAddr va = base + (next++) * kPageSz;
      pg1.handle_fault(va, /*is_write=*/true, [&, va] {
        if (!as1.is_mapped(va)) p1.map_in(va);
        as1.write_u64(va, 0xC0DE + va);
        chain();
      });
    };
    chain();
    test::run_until_drained(sim);
    for (u64 p = 0; p < 4; ++p) {
      const VirtAddr va = base + p * kPageSz;
      pg0.handle_fault(va, /*is_write=*/true, [&, va] {
        if (!as0.is_mapped(va)) p0.map_in(va);
        as0.write_u64(va, 0xAB + p);
      });
      test::run_until_drained(sim);
    }
  };

  std::vector<sls::Shard> shards;
  for (unsigned i = 0; i < 4; ++i) shards.push_back({"s" + std::to_string(i), body});
  sls::ShardedRunner runner(2);
  const sls::ShardedReport report = runner.run(shards);
  EXPECT_NO_THROW(runner.verify_against_serial(shards, report));
}

}  // namespace
}  // namespace vmsls::paging

#include <gtest/gtest.h>

#include "mem/mmu.hpp"
#include "mem/walker.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "test_util.hpp"

namespace vmsls::rt {
namespace {

using test::MemorySystem;

struct OsFixture : ::testing::Test {
  MemorySystem ms;
  OsConfig cfg;
  std::unique_ptr<OsModel> os;
  std::unique_ptr<Process> process;

  void make(unsigned cores = 1) {
    cfg.service_cores = cores;
    os = std::make_unique<OsModel>(ms.sim, cfg, "os");
    process = std::make_unique<Process>(ms.sim, ms.as, "proc");
  }
};

TEST_F(OsFixture, ServiceTakesConfiguredTime) {
  make();
  Cycles done_at = 0;
  os->exec_service(100, [&] { done_at = ms.sim.now(); });
  ms.run_all();
  EXPECT_EQ(done_at, 100u);
}

TEST_F(OsFixture, SingleCoreSerializesServices) {
  make(1);
  Cycles a = 0, b = 0;
  os->exec_service(100, [&] { a = ms.sim.now(); });
  os->exec_service(100, [&] { b = ms.sim.now(); });
  ms.run_all();
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b, 200u);
}

TEST_F(OsFixture, TwoCoresOverlapServices) {
  make(2);
  Cycles a = 0, b = 0;
  os->exec_service(100, [&] { a = ms.sim.now(); });
  os->exec_service(100, [&] { b = ms.sim.now(); });
  ms.run_all();
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b, 100u);
}

TEST_F(OsFixture, FaultHandlerMapsAndRetries) {
  make();
  FaultHandler fh(ms.sim, *os, *process, "fh");
  const VirtAddr va = ms.as.alloc(4096);
  bool retried = false;
  mem::FaultRequest req;
  req.va = va;
  req.retry = [&] { retried = true; };
  fh.raise(std::move(req));
  ms.run_all();
  EXPECT_TRUE(retried);
  EXPECT_TRUE(ms.as.is_mapped(va));
  EXPECT_EQ(fh.faults_serviced(), 1u);
}

TEST_F(OsFixture, FaultServiceChargesFullPath) {
  make();
  FaultHandler fh(ms.sim, *os, *process, "fh");
  const VirtAddr va = ms.as.alloc(4096);
  Cycles done_at = 0;
  mem::FaultRequest req;
  req.va = va;
  req.retry = [&] { done_at = ms.sim.now(); };
  fh.raise(std::move(req));
  ms.run_all();
  // At least irq + fault_service + map cost.
  EXPECT_GE(done_at, cfg.irq_latency + cfg.fault_service + cfg.map_page_cost);
}

TEST_F(OsFixture, DelegatePortPaysDelegateCosts) {
  make();
  process->add_mailbox(4, "m");
  DelegateOsPort port(ms.sim, *os, *process, "dp");
  process->mailbox(0).put(5, [] {});
  Cycles done_at = 0;
  i64 got = 0;
  port.mbox_get(0, [&](i64 v) {
    got = v;
    done_at = ms.sim.now();
  });
  ms.run_all();
  EXPECT_EQ(got, 5);
  EXPECT_GE(done_at, cfg.irq_latency + cfg.syscall_service + cfg.response_latency);
}

TEST_F(OsFixture, DirectPortIsCheaper) {
  make();
  process->add_mailbox(4, "m");
  DirectOsPort direct(ms.sim, cfg, *process, "sp");
  process->mailbox(0).put(5, [] {});
  Cycles done_at = 0;
  direct.mbox_get(0, [&](i64) { done_at = ms.sim.now(); });
  ms.run_all();
  EXPECT_EQ(done_at, cfg.sw_syscall);
  EXPECT_LT(done_at, cfg.irq_latency);
}

TEST_F(OsFixture, BindingsRemapObjectIndices) {
  make();
  process->add_mailbox(4, "zero");
  process->add_mailbox(4, "one");
  DirectOsPort port(ms.sim, cfg, *process, "sp");
  OsBindings b;
  b.mailboxes = {1};  // kernel mailbox 0 -> process mailbox 1
  port.set_bindings(b);
  port.mbox_put(0, 77, [] {});
  ms.run_all();
  i64 v = 0;
  EXPECT_FALSE(process->mailbox(0).try_get(v));
  EXPECT_TRUE(process->mailbox(1).try_get(v));
  EXPECT_EQ(v, 77);
}

TEST_F(OsFixture, UnboundIndexThrows) {
  make();
  process->add_mailbox(4, "only");
  DirectOsPort port(ms.sim, cfg, *process, "sp");
  OsBindings b;
  b.mailboxes = {0};
  port.set_bindings(b);
  EXPECT_THROW(port.mbox_put(1, 1, [] {}), std::invalid_argument);
}

TEST_F(OsFixture, DelegateSemaphoreBlocksAndWakes) {
  make();
  process->add_semaphore(0, "s");
  DelegateOsPort port(ms.sim, *os, *process, "dp");
  bool acquired = false;
  port.sem_wait(0, [&] { acquired = true; });
  ms.run_all();
  EXPECT_FALSE(acquired);
  port.sem_post(0, [] {});
  ms.run_all();
  EXPECT_TRUE(acquired);
}

// --- process ---

TEST_F(OsFixture, ProcessObjectTables) {
  make();
  process->add_mailbox(4, "a");
  process->add_semaphore(1, "b");
  EXPECT_EQ(process->mailbox_count(), 1u);
  EXPECT_EQ(process->semaphore_count(), 1u);
  EXPECT_EQ(process->mailbox(0).name(), "a");
  EXPECT_THROW(process->mailbox(1), std::out_of_range);
  EXPECT_THROW(process->semaphore(9), std::out_of_range);
}

TEST_F(OsFixture, ProcessEvictShootsDownTlbs) {
  make();
  mem::WalkerConfig wcfg;
  mem::PageWalker walker(ms.sim, ms.bus, ms.pm, ms.as.page_table(), wcfg, "w");
  mem::Mmu mmu(ms.sim, walker, mem::MmuConfig{}, "mmu", 0);
  process->register_mmu(&mmu);
  process->register_walker(&walker);

  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  // Warm the TLB.
  bool done = false;
  mmu.translate(va, false, [&](PhysAddr) { done = true; });
  ms.run_all();
  ASSERT_TRUE(done);
  ASSERT_TRUE(mmu.tlb().peek(va >> 12).has_value());

  EXPECT_EQ(process->evict(va, 4096), 1u);
  EXPECT_FALSE(mmu.tlb().peek(va >> 12).has_value());
  EXPECT_EQ(process->shootdowns(), 1u);
}

TEST_F(OsFixture, ShootdownAllFlushesEverything) {
  make();
  mem::WalkerConfig wcfg;
  mem::PageWalker walker(ms.sim, ms.bus, ms.pm, ms.as.page_table(), wcfg, "w");
  mem::Mmu mmu(ms.sim, walker, mem::MmuConfig{}, "mmu", 0);
  process->register_mmu(&mmu);
  const VirtAddr va = ms.as.alloc(2 * 4096);
  ms.as.populate(va, 2 * 4096);
  for (int i = 0; i < 2; ++i) {
    mmu.translate(va + static_cast<u64>(i) * 4096, false, [](PhysAddr) {});
  }
  ms.run_all();
  process->shootdown_all();
  EXPECT_FALSE(mmu.tlb().peek(va >> 12).has_value());
}

}  // namespace
}  // namespace vmsls::rt

// Model-level property tests: randomized operation sequences checked
// against simple reference models (std::map page table, list-based LRU TLB),
// plus timing monotonicity properties of the DRAM model.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "mem/dram.hpp"
#include "mem/frames.hpp"
#include "mem/pagetable.hpp"
#include "mem/physmem.hpp"
#include "mem/tlb.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace vmsls::mem {
namespace {

// --- page table vs std::map reference, random map/unmap/lookup streams ---

class PageTableFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PageTableFuzz, MatchesReferenceMap) {
  PhysicalMemory pm(64 * MiB);
  FrameAllocator frames(0, (64 * MiB) / (4 * KiB), 4 * KiB);
  PageTable pt(pm, frames, PageTableConfig{});
  std::map<u64, std::pair<u64, bool>> ref;  // vpn -> (frame, writable)
  Rng rng(GetParam());

  for (int step = 0; step < 2000; ++step) {
    const u64 vpn = rng.below(512);  // dense region: plenty of collisions
    const VirtAddr va = (vpn << 12) | rng.below(4096);
    switch (rng.below(3)) {
      case 0: {  // map if absent
        if (ref.count(vpn)) break;
        const u64 frame = *frames.alloc();
        const bool writable = rng.chance(0.5);
        pt.map(vpn << 12, frame, writable);
        ref[vpn] = {frame, writable};
        break;
      }
      case 1: {  // unmap if present
        if (!ref.count(vpn)) break;
        pt.unmap(vpn << 12);
        frames.free(ref[vpn].first);
        ref.erase(vpn);
        break;
      }
      default: {  // lookup
        const auto got = pt.lookup(va);
        const auto it = ref.find(vpn);
        if (it == ref.end()) {
          EXPECT_FALSE(got.has_value()) << "vpn " << vpn << " step " << step;
        } else {
          ASSERT_TRUE(got.has_value()) << "vpn " << vpn << " step " << step;
          EXPECT_EQ(got->frame, it->second.first);
          EXPECT_EQ(got->writable, it->second.second);
        }
      }
    }
  }
  // Final sweep: every reference entry must be visible, nothing extra.
  for (const auto& [vpn, entry] : ref) {
    const auto got = pt.lookup(vpn << 12);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->frame, entry.first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzz, ::testing::Values(1u, 2u, 3u, 4u));

// --- TLB vs a list-based true-LRU reference ---

/// Fully associative reference model (exact LRU).
class RefTlb {
 public:
  explicit RefTlb(unsigned capacity) : capacity_(capacity) {}

  bool lookup(u64 vpn, u64& frame) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->first == vpn) {
        frame = it->second;
        order_.splice(order_.begin(), order_, it);  // move to front (MRU)
        return true;
      }
    }
    return false;
  }

  void insert(u64 vpn, u64 frame) {
    u64 dummy;
    if (lookup(vpn, dummy)) {
      order_.front().second = frame;
      return;
    }
    if (order_.size() == capacity_) order_.pop_back();
    order_.emplace_front(vpn, frame);
  }

  void invalidate(u64 vpn) {
    order_.remove_if([vpn](const auto& e) { return e.first == vpn; });
  }

 private:
  unsigned capacity_;
  std::list<std::pair<u64, u64>> order_;
};

class TlbFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(TlbFuzz, FullyAssociativeTlbMatchesExactLru) {
  StatRegistry stats;
  TlbConfig cfg;
  cfg.entries = 8;
  cfg.ways = 8;  // fully associative: reference model applies exactly
  Tlb tlb(cfg, stats, "t");
  RefTlb ref(8);
  Rng rng(GetParam());

  for (int step = 0; step < 5000; ++step) {
    const u64 vpn = rng.below(24);
    switch (rng.below(3)) {
      case 0: {
        const u64 frame = rng.below(1000);
        tlb.insert(vpn, frame, true);
        ref.insert(vpn, frame);
        break;
      }
      case 1: {
        tlb.invalidate(vpn);
        ref.invalidate(vpn);
        break;
      }
      default: {
        u64 ref_frame = 0;
        const bool ref_hit = ref.lookup(vpn, ref_frame);
        const auto got = tlb.lookup(vpn);
        ASSERT_EQ(got.has_value(), ref_hit) << "vpn " << vpn << " step " << step;
        if (ref_hit) {
          EXPECT_EQ(got->frame, ref_frame);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbFuzz, ::testing::Values(11u, 22u, 33u, 44u));

// --- DRAM timing properties ---

TEST(DramProperties, CompletionNeverBeforeStart) {
  sim::Simulator sim;
  DramConfig cfg;
  cfg.size_bytes = 16 * MiB;
  DramModel dram(cfg, sim.stats(), "d");
  Rng rng(5);
  Cycles now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += rng.below(20);
    const PhysAddr addr = rng.below(16 * MiB - 4096);
    const u32 bytes = static_cast<u32>(1 + rng.below(2048));
    const Cycles done = dram.access(addr, bytes, rng.chance(0.3), now);
    ASSERT_GE(done, now + dram.config().t_cas);
  }
}

TEST(DramProperties, SameBankRequestsNeverOverlap) {
  sim::Simulator sim;
  DramConfig cfg;
  cfg.size_bytes = 16 * MiB;
  DramModel dram(cfg, sim.stats(), "d");
  // Issue many requests to one bank at time 0: completions strictly order.
  Cycles prev = 0;
  for (int i = 0; i < 50; ++i) {
    const Cycles done = dram.access(static_cast<u64>(i) * cfg.row_bytes * cfg.banks, 64, false, 0);
    ASSERT_GT(done, prev);
    prev = done;
  }
}

TEST(DramProperties, ThroughputBoundedByBandwidth) {
  sim::Simulator sim;
  DramConfig cfg;
  cfg.size_bytes = 16 * MiB;
  DramModel dram(cfg, sim.stats(), "d");
  // Stream 1 MiB sequentially; completion time must be at least
  // bytes / data_bytes_per_cycle (the pin-rate bound).
  Cycles done = 0;
  const u64 total = 1 * MiB;
  for (u64 off = 0; off < total; off += 2048)
    done = dram.access(off, 2048, false, done);
  EXPECT_GE(done, total / cfg.data_bytes_per_cycle);
}

}  // namespace
}  // namespace vmsls::mem

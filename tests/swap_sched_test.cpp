// SwapScheduler unit/integration tests: the request queue's dispatch
// policies (priority with the writeback starvation guard, demand-over-
// prefetch ordering, FIFO arrival order), the clustering slot allocator's
// neighbor geometry and owner isolation, the slot-limit diagnostics, the
// speculative (wrong-path prefetch) reclaim-first probe, readahead landing
// resident-clean with balanced ledgers, and the determinism contract that
// admits the whole subsystem: a single-member shared device is
// bit-identical to a private one.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include "mem/paging/pager.hpp"
#include "mem/paging/swap_scheduler.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "sls/dse.hpp"
#include "sls/process_group.hpp"
#include "sls/report_writer.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::paging {
namespace {

SwapConfig fast_cfg() {
  SwapConfig cfg;
  cfg.read_latency = 50;
  cfg.write_latency = 100;
  cfg.bytes_per_cycle = 64;  // 4096-byte page -> 64-cycle transfer tail
  return cfg;
}

TEST(SwapScheduler, PrioritySchedulerNeverStarvesWritebacks) {
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();
  cfg.sched = SwapSchedPolicy::kPriority;
  cfg.writeback_starvation_limit = 4;
  cfg.cluster_pages = 1;  // no slot adjacency: pure scheduling, no batching
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned owner = sched.register_owner("pager");

  // 16 demand-read candidates and one writeback, all queued while the port
  // is busy with the first read: priority alone would drain every read
  // first, so the guard must force the writeback after at most 4 bypasses.
  for (u64 vpn = 0; vpn < 16; ++vpn) sched.note_swapped(owner, 100 + vpn);
  std::vector<std::string> order;
  sched.read(owner, 100, SwapReqClass::kDemandRead, [&] { order.push_back("read"); });
  sched.write(owner, 7, SwapReqClass::kWriteback, [&] { order.push_back("writeback"); });
  for (u64 vpn = 1; vpn < 16; ++vpn)
    sched.read(owner, 100 + vpn, SwapReqClass::kDemandRead, [&] { order.push_back("read"); });
  test::run_until_drained(sim);

  ASSERT_EQ(order.size(), 17u);
  const auto wb_pos = static_cast<std::size_t>(
      std::find(order.begin(), order.end(), "writeback") - order.begin());
  // Bounded wait: the in-flight read plus at most `limit` bypassing reads
  // complete before the writeback does.
  EXPECT_LE(wb_pos, 1u + cfg.writeback_starvation_limit);
  EXPECT_GE(sched.wb_promotions(), 1u);
}

TEST(SwapScheduler, WritebacksBoundedUnderSustainedPrefetchTraffic) {
  // The guard ages the OLDEST queued request whatever its class: a
  // writeback must not starve behind a stream of prefetch reads either
  // (prefetch ranks above writeback, so pure priority would bypass it
  // forever).
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();
  cfg.sched = SwapSchedPolicy::kPriority;
  cfg.writeback_starvation_limit = 3;
  cfg.cluster_pages = 1;  // no slot adjacency: pure scheduling, no batching
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned owner = sched.register_owner("pager");
  for (u64 vpn = 0; vpn < 10; ++vpn) sched.note_swapped(owner, 100 + vpn);

  std::vector<std::string> order;
  sched.read(owner, 100, SwapReqClass::kPrefetchRead, [&] { order.push_back("prefetch"); });
  sched.write(owner, 7, SwapReqClass::kWriteback, [&] { order.push_back("writeback"); });
  for (u64 vpn = 1; vpn < 10; ++vpn)
    sched.read(owner, 100 + vpn, SwapReqClass::kPrefetchRead,
               [&] { order.push_back("prefetch"); });
  test::run_until_drained(sim);

  ASSERT_EQ(order.size(), 11u);
  const auto wb_pos = static_cast<std::size_t>(
      std::find(order.begin(), order.end(), "writeback") - order.begin());
  EXPECT_LE(wb_pos, 1u + cfg.writeback_starvation_limit);
}

TEST(SwapScheduler, DemandReadsOvertakeQueuedPrefetches) {
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();
  cfg.sched = SwapSchedPolicy::kPriority;
  cfg.cluster_pages = 1;  // no slot adjacency: pure scheduling, no batching
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned owner = sched.register_owner("pager");
  for (u64 vpn = 0; vpn < 8; ++vpn) sched.note_swapped(owner, vpn);

  std::vector<std::string> order;
  // Port occupied by the first prefetch; three more prefetches queue, then
  // a demand read arrives late and must still be serviced next.
  for (u64 vpn = 0; vpn < 4; ++vpn)
    sched.read(owner, vpn, SwapReqClass::kPrefetchRead, [&] { order.push_back("prefetch"); });
  sched.read(owner, 7, SwapReqClass::kDemandRead, [&] { order.push_back("demand"); });
  test::run_until_drained(sim);

  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[1], "demand");  // right behind the in-flight prefetch
}

TEST(SwapScheduler, SameClusterReadsMergeIntoOneDeviceOperation) {
  // Clustered swap-in: queued reads on adjacent slots dispatch as ONE
  // device operation — one access latency, streamed bytes — so a
  // readahead batch costs little more than its demand page alone.
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();  // read: 50 + 4096/64 = 114 cycles per page op
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned owner = sched.register_owner("pager");
  for (u64 vpn = 10; vpn < 14; ++vpn) sched.note_swapped(owner, vpn);

  Cycles done_at[4] = {0, 0, 0, 0};
  sched.batched([&] {
    sched.read(owner, 10, SwapReqClass::kDemandRead, [&] { done_at[0] = sim.now(); });
    for (u64 i = 1; i < 4; ++i)
      sched.read(owner, 10 + i, SwapReqClass::kPrefetchRead,
                 [&, i] { done_at[i] = sim.now(); });
  });
  test::run_until_drained(sim);
  // One clustered op: latency once, bandwidth for all four pages — not
  // four serialized full ops.
  const Cycles expect = 50 + 4 * (4096 / 64);
  for (const Cycles t : done_at) EXPECT_EQ(t, expect);
  EXPECT_EQ(sched.reads(), 4u);
}

TEST(SwapScheduler, FifoServicesArrivalOrderAcrossClasses) {
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();
  cfg.sched = SwapSchedPolicy::kFifo;
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned owner = sched.register_owner("pager");
  for (u64 vpn = 0; vpn < 4; ++vpn) sched.note_swapped(owner, vpn);

  std::vector<std::string> order;
  sched.read(owner, 0, SwapReqClass::kPrefetchRead, [&] { order.push_back("p0"); });
  sched.read(owner, 1, SwapReqClass::kPrefetchRead, [&] { order.push_back("p1"); });
  sched.read(owner, 3, SwapReqClass::kDemandRead, [&] { order.push_back("d"); });
  test::run_until_drained(sim);
  EXPECT_EQ(order, (std::vector<std::string>{"p0", "p1", "d"}));
}

TEST(SwapScheduler, ClusteringKeepsAnOwnersNeighborsAdjacent) {
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();
  cfg.cluster_pages = 16;
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned a = sched.register_owner("a.pager");
  const unsigned b = sched.register_owner("b.pager");

  // Owner A evicts a contiguous run (out of order) plus a page in another
  // cluster; owner B evicts the same vpns. Neighbor queries must see only
  // the owner's pages, in vpn order, within the cluster.
  sched.note_swapped(a, 12);
  sched.note_swapped(a, 10);
  sched.note_swapped(a, 11);
  sched.note_swapped(a, 10 + cfg.cluster_pages);  // different cluster
  sched.note_swapped(b, 11);
  sched.note_swapped(b, 13);

  EXPECT_EQ(sched.neighbors(a, 10, 4), (std::vector<u64>{11, 12}));
  EXPECT_EQ(sched.neighbors(a, 10, 1), (std::vector<u64>{11}));
  EXPECT_EQ(sched.neighbors(b, 11, 4), (std::vector<u64>{13}));
  // The cross-cluster page is never a neighbor, however deep the window.
  const auto deep = sched.neighbors(a, 12, 64);
  EXPECT_TRUE(deep.empty());
  EXPECT_TRUE(sched.holds(a, 10) && sched.holds(b, 11));
  EXPECT_FALSE(sched.holds(b, 10));
}

TEST(SwapScheduler, SlotLimitErrorNamesDeviceOwnerAndUsage) {
  sim::Simulator sim;
  SwapConfig cfg = fast_cfg();
  cfg.slot_limit = 2;
  SwapScheduler sched(sim, cfg, 4096, "swap");
  const unsigned owner = sched.register_owner("p7.pager");
  sched.note_swapped(owner, 1);
  sched.note_swapped(owner, 2);
  try {
    sched.note_swapped(owner, 3);
    FAIL() << "slot limit should be a hard error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("swap"), std::string::npos) << msg;
    EXPECT_NE(msg.find("p7.pager"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2/2"), std::string::npos) << msg;
  }
}

TEST(ReplacementSpeculative, WrongPathPrefetchesAreReclaimedFirst) {
  for (const auto kind :
       {PolicyKind::kClock, PolicyKind::kLruApprox, PolicyKind::kFifo, PolicyKind::kRandom}) {
    auto policy = make_policy(kind, AccessedProbe([](u64) { return false; }), /*seed=*/3);
    policy->set_speculative_probe([](u64 key) { return key == 2; });
    policy->on_insert(1);
    policy->on_insert(2);
    policy->on_insert(3);
    const auto victim = policy->pick_victim();
    ASSERT_TRUE(victim.has_value()) << policy->name();
    EXPECT_EQ(*victim, 2u) << policy->name();
    // Pinned speculative pages stay untouchable even as preferred victims.
    policy->set_pinned_probe([](u64 key) { return key == 2; });
    const auto second = policy->pick_victim();
    ASSERT_TRUE(second.has_value()) << policy->name();
    EXPECT_NE(*second, 2u) << policy->name();
  }
}

/// Minimal pager harness over the shared test substrate.
struct PagerHarness {
  test::MemorySystem ms;
  rt::OsModel os{ms.sim, rt::OsConfig{}, "os"};
  rt::Process process{ms.sim, ms.as, "p"};
  Pager pager;

  explicit PagerHarness(const PagerConfig& cfg) : pager(ms.sim, process, cfg, "pager") {}
};

TEST(SwapReadahead, PrefetchesNeighborsLandsCleanAndBalancesLedger) {
  PagerConfig pc;
  pc.frame_budget = 16;  // generous: prefetch headroom always available
  pc.swap = fast_cfg();
  pc.swap.readahead = 2;
  PagerHarness h(pc);

  // Six pages with contents, evicted in vpn order so the clustering
  // allocator packs them into adjacent slots.
  const VirtAddr base = h.ms.as.alloc(6 * 4096, 4096);
  for (u64 p = 0; p < 6; ++p) h.ms.as.write_u64(base + p * 4096, 0xAB00 + p);
  h.process.evict(base, 6 * 4096);
  const u64 vpn0 = base >> 12;

  // One demand fault on page 2 must swap in page 2 and prefetch pages 3, 4.
  bool ready = false;
  h.pager.handle_fault(base + 2 * 4096, /*is_write=*/false, [&] {
    if (!h.ms.as.is_mapped(base + 2 * 4096)) h.ms.as.map_page(base + 2 * 4096);
    ready = true;
  });
  test::run_until_drained(h.ms.sim);

  EXPECT_TRUE(ready);
  EXPECT_EQ(h.pager.swap_ins(), 1u);
  EXPECT_EQ(h.pager.prefetches(), 2u);
  EXPECT_TRUE(h.ms.as.is_mapped(base + 3 * 4096));
  EXPECT_TRUE(h.ms.as.is_mapped(base + 4 * 4096));
  // Prefetched pages land resident-clean and speculative.
  const auto pte3 = h.ms.as.page_table().lookup(base + 3 * 4096);
  ASSERT_TRUE(pte3.has_value());
  EXPECT_FALSE(pte3->dirty);
  EXPECT_FALSE(pte3->accessed);
  EXPECT_TRUE(h.pager.is_speculative(vpn0 + 3));
  EXPECT_TRUE(h.pager.is_speculative(vpn0 + 4));
  EXPECT_FALSE(h.pager.is_speculative(vpn0 + 2));  // demanded, not speculative
  // Contents really came from the backing store.
  EXPECT_EQ(h.ms.as.read_u64(base + 3 * 4096), 0xAB03u);
  // Ledger: every device read is a swap-in or a prefetch.
  EXPECT_EQ(h.pager.swap().reads(), h.pager.swap_ins() + h.pager.prefetches());

  // A reference observed through the accessed-bit funnel graduates the
  // page: accuracy counters move, the speculative flag clears.
  h.ms.as.page_table().set_accessed_dirty(base + 4 * 4096, /*dirty=*/false);
  EXPECT_TRUE(h.pager.probe_accessed(vpn0 + 4));
  EXPECT_FALSE(h.pager.is_speculative(vpn0 + 4));
  EXPECT_EQ(h.pager.prefetch_useful(), 1u);
}

TEST(SwapReadahead, PrefetchStopsAtBudgetAndWrongPathIsReclaimedFirst) {
  PagerConfig pc;
  pc.frame_budget = 3;
  pc.swap = fast_cfg();
  pc.swap.readahead = 4;  // deeper than the budget allows: must be clipped
  PagerHarness h(pc);

  const VirtAddr base = h.ms.as.alloc(8 * 4096, 4096);
  for (u64 p = 0; p < 8; ++p) h.ms.as.write_u64(base + p * 4096, p);
  h.process.evict(base, 8 * 4096);
  const u64 vpn0 = base >> 12;
  auto fault = [&](u64 page) {
    const VirtAddr va = base + page * 4096;
    h.pager.handle_fault(va, false, [&h, va] {
      if (!h.ms.as.is_mapped(va)) h.ms.as.map_page(va);
    });
    test::run_until_drained(h.ms.sim);
  };

  // One demand fault pulls its whole neighborhood: readahead may overshoot
  // the budget by at most its own depth (the swap-cache model), never
  // evicting synchronously to make room for speculation.
  fault(0);
  EXPECT_EQ(h.pager.prefetches(), 4u);
  EXPECT_EQ(h.ms.as.resident_pages(), 5u);  // budget 3 + bounded overshoot
  EXPECT_EQ(h.pager.evictions(), 0u);
  for (u64 p = 1; p <= 4; ++p) EXPECT_TRUE(h.pager.is_speculative(vpn0 + p)) << p;
  EXPECT_FALSE(h.pager.is_speculative(vpn0));  // demanded, not speculative

  // The next demand fault trims the overshoot back under the budget — and
  // every victim must be a speculative landing, never the page the process
  // demonstrably demanded.
  fault(5);
  EXPECT_EQ(h.pager.evictions(), 3u);
  EXPECT_TRUE(h.ms.as.is_mapped(base));  // the demanded page survives
  EXPECT_TRUE(h.ms.as.is_mapped(base + 5 * 4096));
  EXPECT_EQ(h.pager.prefetch_wasted(), 3u);  // the evicted landings were never used
  // The second swap-in prefetches its own two remaining neighbors (6, 7).
  EXPECT_EQ(h.pager.prefetches(), 6u);
  EXPECT_EQ(h.ms.as.resident_pages(), 5u);
}

/// One single-process run through the ProcessGroup harness; `shared`
/// selects the group-wide swap scheduler vs a private per-pager device.
struct GroupRun {
  Cycles cycles = 0;
  u64 events = 0;
  u64 swap_ins = 0;
  u64 evictions = 0;
  u64 writebacks = 0;
  u64 reads = 0;
  u64 writes = 0;
};

GroupRun run_single_member(bool shared) {
  workloads::WorkloadParams p;
  p.n = 256;
  auto wl = workloads::make_workload("hash_join", p);

  sls::PlatformSpec plat = sls::zynq7020();
  plat.pager.budget_mode = BudgetMode::kPerProcess;
  plat.pager.frame_budget = 12;
  plat.pager.swap.shared = shared;
  plat.pager.swap.readahead = 2;
  plat.pager.swap.sched = SwapSchedPolicy::kPriority;

  FramePoolConfig pool_cfg;
  pool_cfg.mode = BudgetMode::kPerProcess;

  sim::Simulator sim;
  sls::ProcessGroup group(sim, plat, pool_cfg);
  EXPECT_EQ(group.shared_swap() != nullptr, shared);
  sls::SynthesisFlow flow(plat);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  auto& system = group.add_process(flow.synthesize(app), "p0");
  wl.setup(system);
  for (const auto& buf : system.image().app().buffers)
    system.process().evict(system.buffer(buf.name), buf.bytes);

  group.start_all();
  GroupRun r;
  const u64 before = sim.events_executed();
  r.cycles = group.run_to_completion();
  if (!wl.verify(group.process(0))) throw std::runtime_error("verification failed");
  test::run_until_drained(sim);  // queued writebacks/prefetches finish
  r.events = sim.events_executed() - before;
  auto* pager = system.pager();
  r.swap_ins = pager->swap_ins();
  r.evictions = pager->evictions();
  r.writebacks = pager->writebacks();
  r.reads = pager->swap().reads();
  r.writes = pager->swap().writes();
  return r;
}

TEST(SwapScheduler, SharedSingleMemberBitIdenticalToPrivateDevice) {
  // The determinism contract that admits the shared path at all: with one
  // member, the group-wide scheduler must be cycle- and event-identical to
  // the private per-pager device — same code, same arbitration, different
  // ownership.
  const GroupRun priv = run_single_member(/*shared=*/false);
  const GroupRun shared = run_single_member(/*shared=*/true);
  EXPECT_EQ(priv.cycles, shared.cycles);
  EXPECT_EQ(priv.events, shared.events);
  EXPECT_EQ(priv.swap_ins, shared.swap_ins);
  EXPECT_EQ(priv.evictions, shared.evictions);
  EXPECT_EQ(priv.writebacks, shared.writebacks);
  EXPECT_EQ(priv.reads, shared.reads);
  EXPECT_EQ(priv.writes, shared.writes);
  EXPECT_GT(priv.swap_ins, 0u);  // the contract is vacuous without pressure
}

TEST(SwapDse, ExploreSwapGridSerialEqualsParallel) {
  workloads::WorkloadParams p;
  p.n = 128;
  auto wl = workloads::make_workload("hash_join", p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  auto evaluate = [&wl](const sls::SystemImage& image) {
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    for (const auto& buf : system->image().app().buffers)
      system->process().evict(system->buffer(buf.name), buf.bytes);
    system->start_all();
    return system->run_to_completion();
  };
  const std::vector<sls::SwapCandidate> swaps = {
      {SwapSchedPolicy::kFifo, 0}, {SwapSchedPolicy::kFifo, 4}, {SwapSchedPolicy::kPriority, 4}};
  const std::vector<sls::PagerCandidate> budgets = {{6, PolicyKind::kClock},
                                                    {12, PolicyKind::kClock}};

  sls::DesignSpaceExplorer serial(sls::zynq7020());
  serial.set_threads(1);
  const auto a = serial.explore_swap(app, "worker", swaps, budgets, evaluate);

  sls::DesignSpaceExplorer parallel(sls::zynq7020());
  parallel.set_threads(4);
  const auto b = parallel.explore_swap(app, "worker", swaps, budgets, evaluate);

  ASSERT_EQ(a.candidates.size(), swaps.size() * budgets.size());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].swap_sched, b.candidates[i].swap_sched);
    EXPECT_EQ(a.candidates[i].readahead, b.candidates[i].readahead);
    EXPECT_EQ(a.candidates[i].frame_budget, b.candidates[i].frame_budget);
    EXPECT_EQ(a.candidates[i].measured, b.candidates[i].measured);
    EXPECT_EQ(a.candidates[i].cycles, b.candidates[i].cycles);
  }
  EXPECT_EQ(a.best, b.best);
  ASSERT_GE(a.best, 0);
  // The grid is swap-major: candidate order pins the documented layout.
  EXPECT_EQ(a.candidates[0].readahead, 0u);
  EXPECT_EQ(a.candidates[2].readahead, 4u);
  EXPECT_EQ(a.candidates[1].frame_budget, 12u);
}

TEST(SwapSummary, PagerSummarySurfacesQueueWaitAndPrefetchCounters) {
  PagerConfig pc;
  pc.frame_budget = 4;
  pc.swap = fast_cfg();
  pc.swap.readahead = 2;
  PagerHarness h(pc);

  const VirtAddr base = h.ms.as.alloc(8 * 4096, 4096);
  for (u64 p = 0; p < 8; ++p) h.ms.as.write_u64(base + p * 4096, p);
  h.process.evict(base, 8 * 4096);
  for (u64 p = 0; p < 8; ++p) {
    const VirtAddr va = base + p * 4096;
    h.pager.handle_fault(va, false, [&h, va] {
      if (!h.ms.as.is_mapped(va)) h.ms.as.map_page(va);
    });
    test::run_until_drained(h.ms.sim);
  }

  std::ostringstream pager_out;
  sls::write_pager_summary(pager_out, h.ms.sim.stats());
  EXPECT_NE(pager_out.str().find("swap_queue_wait="), std::string::npos) << pager_out.str();
  EXPECT_NE(pager_out.str().find("prefetches="), std::string::npos) << pager_out.str();

  std::ostringstream swap_out;
  sls::write_swap_summary(swap_out, h.ms.sim.stats(), "pager.swap");
  EXPECT_NE(swap_out.str().find("demand_reads="), std::string::npos) << swap_out.str();
  EXPECT_NE(swap_out.str().find("prefetch_reads="), std::string::npos) << swap_out.str();

  std::ostringstream quiet;
  sls::write_swap_summary(quiet, h.ms.sim.stats(), "nonexistent");
  EXPECT_NE(quiet.str().find("inactive"), std::string::npos);
}

}  // namespace
}  // namespace vmsls::paging

// File-backed memory: BackingFile/FileStore functional contents, the
// AddressSpace mmap/bind_file region machinery and its page lifecycle fork
// (clean drop / dirty-shared write-through / private divergence to swap),
// BufferCache timing + accounting, and the pager's file fault path —
// including the ledger identity the whole tier rests on: file reads plus
// swap-ins plus zero-fills partition all primary fault traffic.
#include <gtest/gtest.h>

#include <memory>

#include "mem/backing_file.hpp"
#include "mem/mmu.hpp"
#include "mem/paging/buffer_cache.hpp"
#include "mem/paging/pager.hpp"
#include "mem/walker.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "test_util.hpp"

namespace vmsls::paging {
namespace {

using test::MemorySystem;
using test::run_until_drained;

constexpr u64 kPage = 4 * KiB;

// --- BackingFile / FileStore: functional bytes, zero simulated time ---

TEST(BackingFileTest, RoundsUpToWholeBlocksAndRoundTripsBytes) {
  mem::FileStore store(kPage);
  mem::BackingFile& f = store.create("lib.so", 3 * kPage + 17);  // partial tail
  EXPECT_EQ(f.size_bytes(), 4 * kPage);
  EXPECT_EQ(f.blocks(), 4u);
  EXPECT_EQ(store.file(f.id()).name(), "lib.so");

  const std::vector<u8> pattern{0xDE, 0xAD, 0xBE, 0xEF};
  f.write(2 * kPage + 5, pattern);
  std::vector<u8> out(4);
  f.read(2 * kPage + 5, out);
  EXPECT_EQ(out, pattern);
  EXPECT_EQ(f.block_data(2)[5], 0xDE);  // block view aliases the same bytes

  // Dense ids by creation order — the buffer cache's key space.
  EXPECT_EQ(store.create("data.bin", kPage).id(), f.id() + 1);
  EXPECT_EQ(store.count(), 2u);
}

// --- AddressSpace regions: lazy fill, lifecycle fork at eviction ---

struct FileRegionFixture : ::testing::Test {
  MemorySystem ms;
  rt::Process process{ms.sim, ms.as, "proc"};
  mem::FileStore store{kPage};

  mem::BackingFile& make_file(u64 pages) {
    mem::BackingFile& f = store.create("f", pages * kPage);
    for (u64 b = 0; b < pages; ++b) {
      const u64 tag = 0xF11E'0000ull + b;
      f.write(b * kPage, std::span<const u8>(reinterpret_cast<const u8*>(&tag), 8));
    }
    return f;
  }

  static u64 tag(u64 block) { return 0xF11E'0000ull + block; }
};

TEST_F(FileRegionFixture, MmapIsLazyAndFirstTouchFillsFromTheFile) {
  mem::BackingFile& f = make_file(4);
  const VirtAddr base = ms.as.mmap(f, 0, 4 * kPage, /*shared=*/true);
  EXPECT_EQ(ms.as.resident_pages(), 0u);  // nothing resident until touched

  const auto ref = ms.as.file_page(base >> 12);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->file, &f);
  EXPECT_EQ(ref->block, 0u);
  EXPECT_TRUE(ref->shared);
  EXPECT_FALSE(ms.as.file_page((base >> 12) + 4).has_value());  // past the region

  for (u64 p = 0; p < 4; ++p) EXPECT_EQ(ms.as.read_u64(base + p * kPage), tag(p));
}

TEST_F(FileRegionFixture, MmapValidatesOffsetAndRange) {
  mem::BackingFile& f = make_file(2);
  EXPECT_THROW(ms.as.mmap(f, 17, kPage, true), std::invalid_argument);         // unaligned
  EXPECT_THROW(ms.as.mmap(f, 0, 3 * kPage, true), std::invalid_argument);      // past EOF
  EXPECT_THROW(ms.as.mmap(f, 2 * kPage, kPage, true), std::invalid_argument);  // starts at EOF
}

TEST_F(FileRegionFixture, CleanEvictionDropsWithoutCreatingBacking) {
  mem::BackingFile& f = make_file(2);
  const VirtAddr base = ms.as.mmap(f, 0, 2 * kPage, /*shared=*/true);
  EXPECT_EQ(ms.as.read_u64(base), tag(0));  // read-only touch: resident clean
  const u64 vpn = base >> 12;
  process.evict(base, kPage);
  EXPECT_FALSE(ms.as.has_backing(vpn));  // dropped free: no swap copy made
  EXPECT_EQ(ms.as.read_u64(base), tag(0));  // refills from the file
}

TEST_F(FileRegionFixture, DirtySharedEvictionWritesTheFile) {
  mem::BackingFile& f = make_file(2);
  const VirtAddr base = ms.as.mmap(f, 0, 2 * kPage, /*shared=*/true);
  ms.as.write_u64(base + kPage, 0xCAFE);  // dirty page 1 through the region
  process.evict(base, 2 * kPage);
  u64 word = 0;
  f.read(kPage, std::span<u8>(reinterpret_cast<u8*>(&word), 8));
  EXPECT_EQ(word, 0xCAFE);  // MAP_SHARED semantics: the file sees the store
  EXPECT_FALSE(ms.as.has_backing((base >> 12) + 1));
}

TEST_F(FileRegionFixture, PrivateWritesDivergeToSwapAndNeverReachTheFile) {
  mem::BackingFile& f = make_file(2);
  const VirtAddr base = ms.as.mmap(f, 0, 2 * kPage, /*shared=*/false);
  ms.as.write_u64(base, 0xBEEF);  // copy-on-evict divergence
  process.evict(base, kPage);
  u64 word = 0;
  f.read(0, std::span<u8>(reinterpret_cast<u8*>(&word), 8));
  EXPECT_EQ(word, tag(0));                   // the file is untouched
  EXPECT_TRUE(ms.as.has_backing(base >> 12));  // the private copy went to swap
  EXPECT_EQ(ms.as.read_u64(base), 0xBEEF);     // and the mapper sees it
}

TEST_F(FileRegionFixture, BindFileCapturesExistingAnonContents) {
  // Binding after setup (the fig13 "write the input, then publish it as a
  // file" flow): resident bytes win and become the file's contents.
  const VirtAddr base = ms.as.alloc(2 * kPage, kPage);
  ms.as.write_u64(base, 0x5EED);
  mem::BackingFile& f = store.create("captured", 2 * kPage);
  ms.as.bind_file(base, 2 * kPage, f, 0, /*shared=*/true);
  u64 word = 0;
  f.read(0, std::span<u8>(reinterpret_cast<u8*>(&word), 8));
  EXPECT_EQ(word, 0x5EED);
  EXPECT_TRUE(ms.as.file_page(base >> 12).has_value());
  EXPECT_THROW(ms.as.bind_file(base, kPage, f, 0, true), std::invalid_argument);  // overlap
}

// --- BufferCache: timing + accounting, no functional bytes ---

struct BufferCacheFixture : ::testing::Test {
  sim::Simulator sim;
  BufferCacheConfig cfg;
  std::unique_ptr<BufferCache> bc;
  unsigned c0 = 0, c1 = 0;

  void make(u64 capacity, Cycles flush_interval = 20000) {
    cfg.capacity_blocks = capacity;
    cfg.flush_interval = flush_interval;
    bc = std::make_unique<BufferCache>(sim, cfg, kPage, "bc");
    c0 = bc->register_client("p0");
    c1 = bc->register_client("p1");
  }

  Cycles transfer_time(Cycles access) const { return access + kPage / cfg.bytes_per_cycle; }
};

TEST_F(BufferCacheFixture, MissPaysTheDeviceThenHitIsSynchronousAndFree) {
  make(/*capacity=*/8);
  int done = 0;
  bc->read(c0, 0, 3, [&] { ++done; });
  EXPECT_EQ(done, 0);  // miss: queued, not synchronous
  const Cycles t0 = sim.now();
  run_until_drained(sim);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(sim.now() - t0, transfer_time(cfg.read_latency));
  EXPECT_EQ(bc->misses(), 1u);
  EXPECT_EQ(bc->device_reads(), 1u);
  EXPECT_TRUE(bc->block_cached(0, 3));

  bc->read(c1, 0, 3, [&] { ++done; });  // hit: fires before we even step
  EXPECT_EQ(done, 2);
  EXPECT_EQ(bc->hits(), 1u);
  // Per-client attribution on the shared cache.
  EXPECT_EQ(bc->client_misses(c0), 1u);
  EXPECT_EQ(bc->client_hits(c0), 0u);
  EXPECT_EQ(bc->client_hits(c1), 1u);
  EXPECT_EQ(sim.stats().counter_value("p0.file_misses"), 1.0);
  EXPECT_EQ(sim.stats().counter_value("p1.file_hits"), 1.0);
}

TEST_F(BufferCacheFixture, ConcurrentMissesOnOneBlockMergeIntoOneDeviceRead) {
  make(/*capacity=*/8);
  int done = 0;
  bc->read(c0, 0, 7, [&] { ++done; });
  bc->read(c1, 0, 7, [&] { ++done; });  // process B waits on A's buffer lock
  run_until_drained(sim);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(bc->device_reads(), 1u);  // one transfer served both
  EXPECT_EQ(bc->merged_reads(), 1u);
  EXPECT_EQ(bc->misses(), 2u);  // both were misses — attribution intact
}

TEST_F(BufferCacheFixture, WriteIsNonBlockingAndTheFlushDaemonDrains) {
  make(/*capacity=*/8);
  const Cycles t0 = sim.now();
  bc->write(c0, 0, 1);
  EXPECT_EQ(sim.now(), t0);  // pure bookkeeping, zero cycles
  EXPECT_TRUE(bc->block_dirty(0, 1));
  EXPECT_EQ(bc->dirty_blocks(), 1u);
  run_until_drained(sim);  // daemon fires, cleans, disarms — queue drains
  EXPECT_FALSE(bc->block_dirty(0, 1));
  EXPECT_TRUE(bc->block_cached(0, 1));  // write-allocate: stays cached clean
  EXPECT_EQ(bc->flushes(), 1u);
  EXPECT_EQ(bc->device_writes(), 1u);
  EXPECT_EQ(bc->dirty_blocks(), 0u);
}

TEST_F(BufferCacheFixture, CapacityEvictionWritesBackDirtyVictims) {
  make(/*capacity=*/2, /*flush_interval=*/0);  // no daemon: only capacity cleans
  bc->write(c0, 0, 0);
  bc->write(c0, 0, 1);
  bc->write(c0, 0, 2);  // LRU block 0 falls out dirty
  EXPECT_EQ(bc->evictions(), 1u);
  EXPECT_EQ(bc->cached_blocks(), 2u);
  EXPECT_FALSE(bc->block_cached(0, 0));
  run_until_drained(sim);
  EXPECT_EQ(bc->device_writes(), 1u);  // the victim's background write
  // Blocks 1 and 2 stay dirty forever (daemon off) — but nothing is queued,
  // so the event loop still drained above: dirtiness is not pending work.
  EXPECT_EQ(bc->dirty_blocks(), 2u);
}

TEST_F(BufferCacheFixture, ZeroCapacityStreamsStraightThrough) {
  make(/*capacity=*/0);
  int done = 0;
  bc->read(c0, 0, 4, [&] { ++done; });
  bc->write(c0, 0, 5);
  run_until_drained(sim);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(bc->device_reads(), 1u);
  EXPECT_EQ(bc->device_writes(), 1u);
  EXPECT_EQ(bc->cached_blocks(), 0u);  // nothing retained
  bc->read(c0, 0, 4, [&] { ++done; });  // same block: misses again
  run_until_drained(sim);
  EXPECT_EQ(bc->hits(), 0u);
  EXPECT_EQ(bc->misses(), 2u);
}

// --- pager integration: the timed file fault path and its ledgers ---

struct FilePagerFixture : ::testing::Test {
  MemorySystem ms;
  rt::Process process{ms.sim, ms.as, "proc"};
  mem::FileStore store{kPage};
  std::unique_ptr<mem::PageWalker> walker;
  std::unique_ptr<mem::Mmu> mmu;
  std::unique_ptr<rt::OsModel> os;
  std::unique_ptr<rt::FaultHandler> faults;
  std::unique_ptr<Pager> pager;

  void make(u64 budget) {
    walker = std::make_unique<mem::PageWalker>(ms.sim, ms.bus, ms.pm, ms.as.page_table(),
                                               mem::WalkerConfig{}, "w");
    mmu = std::make_unique<mem::Mmu>(ms.sim, *walker, mem::MmuConfig{}, "mmu", 0);
    process.register_mmu(mmu.get());
    process.register_walker(walker.get());
    os = std::make_unique<rt::OsModel>(ms.sim, rt::OsConfig{}, "os");
    faults = std::make_unique<rt::FaultHandler>(ms.sim, *os, process, "faults");
    mmu->set_fault_sink(faults.get());
    PagerConfig cfg;
    cfg.frame_budget = budget;
    pager = std::make_unique<Pager>(ms.sim, process, cfg, "pager");
    faults->set_pager(pager.get());
  }

  mem::BackingFile& make_file(u64 pages) {
    mem::BackingFile& f = store.create("f", pages * kPage);
    for (u64 b = 0; b < pages; ++b) {
      const u64 t = 0xF11E'0000ull + b;
      f.write(b * kPage, std::span<const u8>(reinterpret_cast<const u8*>(&t), 8));
    }
    return f;
  }

  PhysAddr translate_sync(VirtAddr va, bool write = false) {
    PhysAddr out = ~0ull;
    mmu->translate(va, write, [&](PhysAddr pa) { out = pa; });
    ms.run_all();
    return out;
  }
};

TEST_F(FilePagerFixture, FirstTouchChargesTheFileDeviceNotSwap) {
  make(/*budget=*/8);
  mem::BackingFile& f = make_file(2);
  const VirtAddr base = process.mmap(f, 0, 2 * kPage, /*shared=*/true);

  const Cycles t0 = ms.sim.now();
  ASSERT_NE(translate_sync(base), ~0ull);
  const Cycles file_fill = ms.sim.now() - t0;
  EXPECT_EQ(pager->file_reads(), 1u);
  EXPECT_EQ(pager->swap_ins(), 0u);
  EXPECT_EQ(pager->swap().reads(), 0u);
  EXPECT_EQ(pager->buffer_cache().client_misses(pager->bcache_client()), 1u);
  EXPECT_EQ(ms.as.read_u64(base), 0xF11E'0000ull);  // the block's bytes landed

  // A cached block faults in faster than the cold miss: the hit is free.
  process.evict(base, kPage);
  const Cycles t1 = ms.sim.now();
  ASSERT_NE(translate_sync(base), ~0ull);
  EXPECT_LT(ms.sim.now() - t1, file_fill);
  EXPECT_EQ(pager->buffer_cache().client_hits(pager->bcache_client()), 1u);
  EXPECT_EQ(pager->file_drops(), 1u);  // the evict was a clean drop
}

TEST_F(FilePagerFixture, EvictionForkSendsDirtySharedThroughTheCacheNeverSwap) {
  make(/*budget=*/1);  // every second touch evicts
  mem::BackingFile& f = make_file(3);
  const VirtAddr base = process.mmap(f, 0, 3 * kPage, /*shared=*/true);

  ASSERT_NE(translate_sync(base, /*write=*/true), ~0ull);  // page 0 dirty
  ASSERT_NE(translate_sync(base + kPage), ~0ull);          // evicts page 0
  run_until_drained(ms.sim);  // background cache write retires
  EXPECT_EQ(pager->file_writebacks(), 1u);
  EXPECT_EQ(pager->writebacks(), 0u);     // swap writeback counter untouched
  EXPECT_EQ(pager->swap().writes(), 0u);  // and no swap device traffic
  EXPECT_GE(pager->buffer_cache().device_writes(), 0u);  // flush is async

  ASSERT_NE(translate_sync(base + 2 * kPage), ~0ull);  // evicts clean page 1
  EXPECT_EQ(pager->file_drops(), 1u);
  // Eviction ledger on a pure-file working set: every pager eviction is a
  // clean drop or a cache write-through — nothing else can happen.
  EXPECT_EQ(pager->evictions(), pager->file_drops() + pager->file_writebacks());
}

TEST_F(FilePagerFixture, FaultLedgerPartitionsFileSwapAndZeroFillTraffic) {
  make(/*budget=*/16);  // roomy: no evictions disturb the count
  mem::BackingFile& f = make_file(4);
  const VirtAddr file_base = process.mmap(f, 0, 4 * kPage, /*shared=*/true);

  // An anon page with a swap copy: write it, evict it (note_swapped).
  const VirtAddr anon = ms.as.alloc(kPage, kPage);
  ms.as.write_u64(anon, 0x1234);
  process.evict(anon, kPage);
  // An anon page never touched: first fault is a zero-fill.
  const VirtAddr fresh = ms.as.alloc(kPage, kPage);

  const u64 faults_before = static_cast<u64>(ms.sim.stats().counter_value("faults.faults"));
  for (u64 p = 0; p < 4; ++p) ASSERT_NE(translate_sync(file_base + p * kPage), ~0ull);
  ASSERT_NE(translate_sync(anon), ~0ull);
  ASSERT_NE(translate_sync(fresh, /*write=*/true), ~0ull);

  const u64 faults = static_cast<u64>(ms.sim.stats().counter_value("faults.faults")) -
                     faults_before;
  EXPECT_EQ(pager->file_reads(), 4u);
  EXPECT_EQ(pager->swap_ins(), 1u);
  EXPECT_EQ(pager->zero_fills(), 1u);
  // The partition identity: every primary fault is exactly one of a file
  // read, a swap-in, or a zero-fill.
  EXPECT_EQ(faults, pager->file_reads() + pager->swap_ins() + pager->zero_fills());
  EXPECT_EQ(ms.as.read_u64(anon), 0x1234);  // swap round trip intact
}

}  // namespace
}  // namespace vmsls::paging

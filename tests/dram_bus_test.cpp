#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"

namespace vmsls::mem {
namespace {

DramConfig small_dram() {
  DramConfig cfg;
  cfg.size_bytes = 16 * MiB;
  return cfg;
}

TEST(Dram, RowHitFasterThanMiss) {
  sim::Simulator sim;
  DramModel dram(small_dram(), sim.stats(), "d");
  const Cycles first = dram.access(0, 8, false, 0);       // row miss (empty)
  const Cycles second = dram.access(8, 8, false, first);  // same row: hit
  EXPECT_GT(first, second - first);
  EXPECT_EQ(sim.stats().counter_value("d.row_hits"), 1u);
  EXPECT_EQ(sim.stats().counter_value("d.row_misses"), 1u);
}

TEST(Dram, ConflictPaysPrecharge) {
  sim::Simulator sim;
  const DramConfig cfg = small_dram();
  DramModel dram(cfg, sim.stats(), "d");
  const u64 bank_stride = cfg.row_bytes * cfg.banks;  // same bank, next row
  const Cycles t1 = dram.access(0, 8, false, 0);
  const Cycles t2 = dram.access(bank_stride, 8, false, t1);
  // Second access: precharge + activate + cas (conflict).
  EXPECT_EQ(t2 - t1, cfg.t_rp + cfg.t_rcd + cfg.t_cas + 1);
}

TEST(Dram, BankParallelismOverlaps) {
  sim::Simulator sim;
  const DramConfig cfg = small_dram();
  DramModel dram(cfg, sim.stats(), "d");
  // Different banks starting at the same time do not serialize.
  const Cycles a = dram.access(0, 8, false, 100);
  const Cycles b = dram.access(cfg.row_bytes, 8, false, 100);  // next bank
  EXPECT_EQ(a, b);
}

TEST(Dram, BusyBankSerializes) {
  sim::Simulator sim;
  DramModel dram(small_dram(), sim.stats(), "d");
  const Cycles a = dram.access(0, 8, false, 0);
  const Cycles b = dram.access(16, 8, false, 0);  // same bank/row, earliest 0
  EXPECT_GT(b, a);
}

TEST(Dram, LargeBurstCrossesRows) {
  sim::Simulator sim;
  const DramConfig cfg = small_dram();
  DramModel dram(cfg, sim.stats(), "d");
  dram.access(0, static_cast<u32>(cfg.row_bytes * 2), false, 0);
  EXPECT_EQ(sim.stats().counter_value("d.row_misses"), 2u);  // two activations
}

TEST(Dram, BestCaseLatencyScalesWithBytes) {
  sim::Simulator sim;
  DramModel dram(small_dram(), sim.stats(), "d");
  EXPECT_LT(dram.best_case_latency(8), dram.best_case_latency(512));
}

TEST(Dram, ZeroByteAccessRejected) {
  sim::Simulator sim;
  DramModel dram(small_dram(), sim.stats(), "d");
  EXPECT_THROW(dram.access(0, 0, false, 0), std::invalid_argument);
}

// --- bus ---

struct BusFixture : ::testing::Test {
  sim::Simulator sim;
  DramModel dram{small_dram(), sim.stats(), "d"};
  MemoryBus bus{sim, dram, BusConfig{}, "bus"};

  Cycles run_request(PhysAddr addr, u32 bytes, bool write) {
    Cycles done_at = 0;
    bus.request(BusRequest{addr, bytes, write, [&] { done_at = sim.now(); }});
    while (sim.step()) {
    }
    return done_at;
  }
};

TEST_F(BusFixture, CompletionFires) {
  const Cycles done = run_request(0x100, 8, false);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(sim.stats().counter_value("bus.requests"), 1u);
  EXPECT_EQ(sim.stats().counter_value("bus.reads"), 1u);
}

TEST_F(BusFixture, WritesCounted) {
  run_request(0x100, 64, true);
  EXPECT_EQ(sim.stats().counter_value("bus.writes"), 1u);
  EXPECT_EQ(sim.stats().counter_value("bus.bytes"), 64u);
}

TEST_F(BusFixture, ContentionSerializes) {
  Cycles first = 0, second = 0;
  bus.request(BusRequest{0, 256, false, [&] { first = sim.now(); }});
  bus.request(BusRequest{8 * KiB, 256, false, [&] { second = sim.now(); }});
  while (sim.step()) {
  }
  EXPECT_GT(second, first);  // shared channel forces ordering
}

TEST_F(BusFixture, LargerTransfersTakeLonger) {
  const Cycles small = run_request(0, 8, false);
  sim::Simulator sim2;
  DramModel dram2{small_dram(), sim2.stats(), "d2"};
  MemoryBus bus2{sim2, dram2, BusConfig{}, "bus2"};
  Cycles big = 0;
  bus2.request(BusRequest{0, 4096, false, [&] { big = sim2.now(); }});
  while (sim2.step()) {
  }
  EXPECT_GT(big, small);
}

TEST_F(BusFixture, ManyRequestsAllComplete) {
  int completed = 0;
  for (int i = 0; i < 100; ++i)
    bus.request(BusRequest{static_cast<PhysAddr>(i) * 64, 64, (i % 2) == 0,
                           [&] { ++completed; }});
  while (sim.step()) {
  }
  EXPECT_EQ(completed, 100);
  EXPECT_GT(bus.busy_cycles(), 0u);
}

TEST_F(BusFixture, RejectsMalformedRequests) {
  EXPECT_THROW(bus.request(BusRequest{0, 0, false, [] {}}), std::invalid_argument);
  EXPECT_THROW(bus.request(BusRequest{0, 8, false, nullptr}), std::invalid_argument);
}

TEST_F(BusFixture, QueueWaitRecorded) {
  for (int i = 0; i < 10; ++i) bus.request(BusRequest{0, 512, false, [] {}});
  while (sim.step()) {
  }
  EXPECT_GT(sim.stats().histograms().at("bus.queue_wait").max(), 0u);
}

}  // namespace
}  // namespace vmsls::mem

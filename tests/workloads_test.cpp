#include <gtest/gtest.h>

#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::workloads {
namespace {

WorkloadParams small_params(const std::string& name) {
  WorkloadParams p;
  // Keep runtimes short while still crossing page and tile boundaries.
  if (name == "matmul")
    p.n = 12;
  else if (name == "conv2d")
    p.n = 16;
  else if (name == "histogram")
    p.n = 8192;  // bytes; tile*8 = 2048 divides it
  else
    p.n = 1024;
  p.tile = 256;
  return p;
}

/// Synthesizes, elaborates, runs, verifies. Returns elapsed cycles.
Cycles run_workload(const Workload& wl, sls::ThreadKind kind, bool* verified) {
  const auto app = single_thread_app(wl, kind);
  sls::SynthesisFlow flow(sls::zynq7020());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);
  system->start_all();
  const Cycles cycles = system->run_to_completion(500'000'000ull);
  *verified = wl.verify(*system);
  return cycles;
}

class AllWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(AllWorkloads, HardwareThreadComputesCorrectResult) {
  const std::string name = GetParam();
  const Workload wl = make_workload(name, small_params(name));
  bool ok = false;
  const Cycles cycles = run_workload(wl, sls::ThreadKind::kHardware, &ok);
  EXPECT_TRUE(ok) << name << " output mismatch";
  EXPECT_GT(cycles, 0u);
}

TEST_P(AllWorkloads, SoftwareThreadComputesCorrectResult) {
  const std::string name = GetParam();
  const Workload wl = make_workload(name, small_params(name));
  bool ok = false;
  run_workload(wl, sls::ThreadKind::kSoftware, &ok);
  EXPECT_TRUE(ok) << name << " output mismatch";
}

TEST_P(AllWorkloads, DeterministicCycleCounts) {
  const std::string name = GetParam();
  const Workload wl = make_workload(name, small_params(name));
  bool ok1 = false, ok2 = false;
  const Cycles a = run_workload(wl, sls::ThreadKind::kHardware, &ok1);
  const Cycles b = run_workload(wl, sls::ThreadKind::kHardware, &ok2);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Registry, AllWorkloads, ::testing::ValuesIn(workload_names()));

TEST(WorkloadRegistry, NamesRoundTrip) {
  for (const auto& name : workload_names()) {
    const Workload wl = make_workload(name, small_params(name));
    EXPECT_EQ(wl.name, name);
    EXPECT_FALSE(wl.kernel.empty());
    EXPECT_FALSE(wl.buffers.empty());
  }
  EXPECT_THROW(make_workload("nope", WorkloadParams{}), std::out_of_range);
}

TEST(WorkloadRegistry, ParamValidation) {
  WorkloadParams bad;
  bad.n = 1000;
  bad.tile = 256;  // 1000 % 256 != 0
  EXPECT_THROW(make_vecadd_burst(bad), std::invalid_argument);
  bad.n = 0;
  EXPECT_THROW(make_vecadd(bad), std::invalid_argument);
  WorkloadParams tiny;
  tiny.n = 1;
  EXPECT_THROW(make_pointer_chase(tiny), std::invalid_argument);
}

TEST(WorkloadComparisons, HardwareBeatsSoftwareOnMatmul) {
  WorkloadParams p;
  p.n = 16;
  const Workload wl = make_matmul(p);
  bool ok = false;
  const Cycles hw = run_workload(wl, sls::ThreadKind::kHardware, &ok);
  ASSERT_TRUE(ok);
  const Cycles sw = run_workload(wl, sls::ThreadKind::kSoftware, &ok);
  ASSERT_TRUE(ok);
  EXPECT_LT(hw, sw);  // compute-dense kernel should win on fabric
}

TEST(WorkloadComparisons, BurstBeatsElementwiseOnSaxpy) {
  WorkloadParams p;
  p.n = 4096;
  p.tile = 256;
  bool ok = false;
  const Cycles burst = run_workload(make_saxpy_burst(p), sls::ThreadKind::kHardware, &ok);
  ASSERT_TRUE(ok);
  const Cycles element = run_workload(make_saxpy(p), sls::ThreadKind::kHardware, &ok);
  ASSERT_TRUE(ok);
  EXPECT_LT(burst, element);
}

}  // namespace
}  // namespace vmsls::workloads

#include <gtest/gtest.h>

#include "cpu/cached_port.hpp"
#include "cpu/cpu.hpp"
#include "test_util.hpp"

namespace vmsls::cpu {
namespace {

using test::MemorySystem;

struct CachedPortFixture : ::testing::Test {
  MemorySystem ms;
  mem::CacheHierarchy caches{ms.sim, ms.bus, mem::CacheHierarchyConfig{}, "c"};
  CachedMemPort port{ms.sim, ms.as, caches, "p"};

  std::vector<u8> read_sync(VirtAddr va, u32 bytes) {
    std::vector<u8> out;
    port.read(va, bytes, [&](std::vector<u8> data) { out = std::move(data); });
    while (ms.sim.step()) {
    }
    return out;
  }

  Cycles write_sync(VirtAddr va, std::span<const u8> data) {
    const Cycles t0 = ms.sim.now();
    bool done = false;
    port.write(va, data, [&] { done = true; });
    while (ms.sim.step()) {
    }
    EXPECT_TRUE(done);
    return ms.sim.now() - t0;
  }
};

TEST_F(CachedPortFixture, RoundTripThroughAddressSpace) {
  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  const u64 v = 0xcafe1234;
  write_sync(va + 8, std::span<const u8>(reinterpret_cast<const u8*>(&v), 8));
  EXPECT_EQ(ms.as.read_u64(va + 8), v);
  const auto back = read_sync(va + 8, 8);
  u64 r = 0;
  std::memcpy(&r, back.data(), 8);
  EXPECT_EQ(r, v);
}

TEST_F(CachedPortFixture, DemandMapsUntouchedPages) {
  const VirtAddr va = ms.as.alloc(4096);
  EXPECT_FALSE(ms.as.is_mapped(va));
  read_sync(va, 8);
  EXPECT_TRUE(ms.as.is_mapped(va));
}

TEST_F(CachedPortFixture, WarmAccessIsFaster) {
  const VirtAddr va = ms.as.alloc(4096);
  ms.as.populate(va, 4096);
  const u64 v = 1;
  const Cycles cold = write_sync(va, std::span<const u8>(reinterpret_cast<const u8*>(&v), 8));
  const Cycles warm = write_sync(va, std::span<const u8>(reinterpret_cast<const u8*>(&v), 8));
  EXPECT_LT(warm, cold);
}

TEST_F(CachedPortFixture, CrossPageAccessWorks) {
  const VirtAddr va = ms.as.alloc(2 * 4096, 4096);
  ms.as.populate(va, 2 * 4096);
  std::vector<u8> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i + 1);
  write_sync(va + 4096 - 32, std::span<const u8>(data.data(), data.size()));
  EXPECT_EQ(read_sync(va + 4096 - 32, 64), data);
}

TEST_F(CachedPortFixture, MissesGenerateBusTraffic) {
  const VirtAddr va = ms.as.alloc(64 * KiB, 4096);
  ms.as.populate(va, 64 * KiB);
  // Stream well past L1: fills must reach the bus.
  for (u64 off = 0; off < 64 * KiB; off += 4 * KiB) read_sync(va + off, 8);
  EXPECT_GT(ms.sim.stats().counter_value("bus.requests"), 0u);
}

TEST(CpuConfig, EngineConfigCarriesClockAndCosts) {
  CpuConfig cfg;
  const auto ecfg = engine_config(cfg);
  EXPECT_EQ(ecfg.cost.ilp, 1u);
  EXPECT_NEAR(ecfg.clock.ratio(), 10.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace vmsls::cpu

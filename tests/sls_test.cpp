#include <gtest/gtest.h>

#include "hwt/builder.hpp"
#include "sls/dse.hpp"
#include "sls/netlist.hpp"
#include "sls/resources.hpp"
#include "sls/synthesis.hpp"
#include "sls/system.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::sls {
namespace {

hwt::Kernel trivial_kernel(const std::string& name = "k") {
  hwt::KernelBuilder kb(name);
  kb.mbox_get(1, 0).mbox_put(1, 1).halt();
  return kb.build();
}

// --- resources ---

TEST(Resources, AdditionAndScaling) {
  Resources a{10, 20, 1.5, 2};
  Resources b{1, 2, 0.5, 1};
  const Resources c = a + b;
  EXPECT_EQ(c.luts, 11u);
  EXPECT_EQ(c.ffs, 22u);
  EXPECT_DOUBLE_EQ(c.bram_kb, 2.0);
  EXPECT_EQ(c.dsps, 3u);
  const Resources d = b.scaled(3);
  EXPECT_EQ(d.luts, 3u);
  EXPECT_DOUBLE_EQ(d.bram_kb, 1.5);
}

TEST(Resources, FitsAndUtilization) {
  ResourceBudget budget{100, 100, 10.0, 10};
  EXPECT_TRUE(fits(Resources{100, 50, 5.0, 0}, budget));
  EXPECT_FALSE(fits(Resources{101, 0, 0, 0}, budget));
  EXPECT_DOUBLE_EQ(utilization(Resources{50, 20, 1.0, 0}, budget), 0.5);
}

TEST(Resources, MulKernelUsesDsps) {
  hwt::KernelBuilder kb("mulk");
  kb.li(1, 2).li(2, 3).mul(3, 1, 2).mul(4, 3, 3).halt();
  const Resources r = estimate_kernel(kb.build());
  EXPECT_EQ(r.dsps, 2u);
}

TEST(Resources, ScratchpadCostsBram) {
  hwt::KernelBuilder kb("spadk", 8192);
  kb.li(1, 0).spad_store(1, 1).halt();
  const Resources r = estimate_kernel(kb.build());
  EXPECT_DOUBLE_EQ(r.bram_kb, 8.0);
}

TEST(Resources, TlbScalesWithEntries) {
  mem::TlbConfig small;
  small.entries = 8;
  mem::TlbConfig big;
  big.entries = 64;
  EXPECT_LT(estimate_tlb(small).ffs, estimate_tlb(big).ffs);
}

TEST(Resources, WalkCacheCostsExtra) {
  mem::WalkerConfig with;
  mem::WalkerConfig without;
  without.walk_cache_enabled = false;
  EXPECT_GT(estimate_walker(with).luts, estimate_walker(without).luts);
}

// --- app spec ---

TEST(AppSpec, BuildersAndLookups) {
  AppSpec app;
  app.name = "a";
  app.add_mailbox("m0", 4);
  app.add_mailbox("m1", 8);
  app.add_semaphore("s0", 1);
  app.add_buffer("buf", 4096);
  app.add_hw_thread("t0", trivial_kernel(), {"m0"});
  app.add_sw_thread("t1", trivial_kernel(), {"m1"});
  EXPECT_EQ(app.mailbox_index("m1"), 1u);
  EXPECT_THROW(app.mailbox_index("nope"), std::out_of_range);
  EXPECT_EQ(app.semaphore_index("s0"), 0u);
  EXPECT_EQ(app.thread("t0").kind, ThreadKind::kHardware);
  EXPECT_EQ(app.hw_thread_count(), 1u);
  EXPECT_EQ(app.sw_thread_count(), 1u);
}

// --- netlist ---

TEST(Netlist, InstancesAndLookup) {
  Netlist nl("top");
  auto& inst = nl.add_instance("u0", "widget");
  inst.connections.push_back({"a", "net_a"});
  nl.add_net("net_a");
  EXPECT_EQ(nl.instance_count(), 1u);
  EXPECT_NE(nl.find("u0"), nullptr);
  EXPECT_EQ(nl.find("missing"), nullptr);
}

TEST(Netlist, TextAndVerilogRenderings) {
  Netlist nl("top");
  auto& inst = nl.add_instance("u0", "widget");
  inst.parameters.emplace_back("W", "8");
  inst.connections.push_back({"a", "net_a"});
  nl.add_net("net_a");
  EXPECT_NE(nl.to_text().find("widget u0"), std::string::npos);
  const std::string v = nl.to_verilog();
  EXPECT_NE(v.find("module top"), std::string::npos);
  EXPECT_NE(v.find("wire net_a"), std::string::npos);
  EXPECT_NE(v.find(".W(8)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

// --- synthesis flow ---

AppSpec small_app() {
  AppSpec app;
  app.name = "small";
  app.add_mailbox("args", 8);
  app.add_mailbox("done", 4);
  app.add_buffer("buf", 8 * KiB);
  auto& t = app.add_hw_thread("worker", trivial_kernel(), {"args", "done"});
  t.footprint_hint_bytes = 8 * KiB;
  return app;
}

TEST(Synthesis, ProducesPlansReportNetlist) {
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(small_app());
  EXPECT_EQ(image.hw_plans().size(), 1u);
  EXPECT_EQ(image.report().hw_threads, 1u);
  EXPECT_TRUE(image.report().fits_budget);
  EXPECT_GT(image.report().total.luts, 0u);
  EXPECT_GT(image.netlist().instance_count(), 2u);
  EXPECT_EQ(image.report().pass_timings.size(), 6u);
  EXPECT_NE(image.netlist().find("hwt_worker"), nullptr);
  EXPECT_NE(image.netlist().find("hwt_worker_mmu"), nullptr);
  EXPECT_NE(image.netlist().find("ptw0"), nullptr);
}

TEST(Synthesis, AutoTlbCoversFootprint) {
  SynthesisFlow flow(zynq7020());
  AppSpec app = small_app();
  app.threads[0].footprint_hint_bytes = 40 * KiB;  // 10 pages -> 16 entries
  const SystemImage image = flow.synthesize(app);
  EXPECT_EQ(image.hw_plan("worker").tlb.entries, 16u);
}

TEST(Synthesis, TlbOverrideWins) {
  SynthesisFlow flow(zynq7020());
  AppSpec app = small_app();
  mem::TlbConfig tlb;
  tlb.entries = 4;
  tlb.ways = 2;
  app.threads[0].tlb_override = tlb;
  const SystemImage image = flow.synthesize(app);
  EXPECT_EQ(image.hw_plan("worker").tlb.entries, 4u);
}

TEST(Synthesis, PhysicalThreadsSkipMmu) {
  SynthesisFlow flow(zynq7020());
  AppSpec app = small_app();
  app.threads[0].addressing = Addressing::kPhysical;
  const SystemImage image = flow.synthesize(app);
  EXPECT_EQ(image.netlist().find("hwt_worker_mmu"), nullptr);
  EXPECT_NE(image.netlist().find("hwt_worker_physport"), nullptr);
  EXPECT_EQ(image.netlist().find("ptw0"), nullptr);  // no virtual thread, no walker
}

TEST(Synthesis, DuplicateThreadNameRejected) {
  AppSpec app = small_app();
  app.add_hw_thread("worker", trivial_kernel(), {"args", "done"});
  SynthesisFlow flow(zynq7020());
  EXPECT_THROW(flow.synthesize(app), std::invalid_argument);
}

TEST(Synthesis, UnboundMailboxRejected) {
  AppSpec app = small_app();
  app.threads[0].mailbox_bindings = {"args"};  // kernel uses 2 mailboxes
  SynthesisFlow flow(zynq7020());
  EXPECT_THROW(flow.synthesize(app), std::invalid_argument);
}

TEST(Synthesis, UnknownBindingRejected) {
  AppSpec app = small_app();
  app.threads[0].mailbox_bindings = {"args", "ghost"};
  SynthesisFlow flow(zynq7020());
  EXPECT_THROW(flow.synthesize(app), std::out_of_range);
}

TEST(Synthesis, SlotBudgetEnforced) {
  AppSpec app;
  app.name = "big";
  app.add_mailbox("args", 8);
  app.add_mailbox("done", 4);
  PlatformSpec plat = zynq7020();
  plat.max_hw_threads = 2;
  for (int i = 0; i < 3; ++i)
    app.add_hw_thread("t" + std::to_string(i), trivial_kernel(), {"args", "done"});
  SynthesisFlow flow(plat);
  EXPECT_THROW(flow.synthesize(app), std::invalid_argument);
}

TEST(Synthesis, BudgetOverflowThrowsInStrictMode) {
  PlatformSpec tiny = zynq7020();
  tiny.budget = ResourceBudget{100, 100, 1.0, 1};  // absurdly small part
  SynthesisFlow strict(tiny);
  EXPECT_THROW(strict.synthesize(small_app()), std::runtime_error);

  SynthesisOptions lenient;
  lenient.strict_budget = false;
  SynthesisFlow loose(tiny, lenient);
  const SystemImage image = loose.synthesize(small_app());
  EXPECT_FALSE(image.report().fits_budget);
}

TEST(Synthesis, AddressMapAssignsDistinctWindows) {
  AppSpec app = small_app();
  app.add_hw_thread("worker2", trivial_kernel(), {"args", "done"});
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(app);
  const auto& map = image.report().address_map;
  ASSERT_GE(map.size(), 2u);
  EXPECT_NE(map[0].base, map[1].base);
  EXPECT_EQ(image.hw_plan("worker").ctrl_base + zynq7020().ctrl_stride,
            image.hw_plan("worker2").ctrl_base);
}

TEST(Synthesis, SoftwareThreadPhysicalAddressingRejected) {
  AppSpec app = small_app();
  auto& t = app.add_sw_thread("sw", trivial_kernel(), {"args", "done"});
  t.addressing = Addressing::kPhysical;
  SynthesisFlow flow(zynq7020());
  EXPECT_THROW(flow.synthesize(app), std::invalid_argument);
}

// --- elaborated system ---

TEST(System, ElaborateAndRunTrivialThread) {
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(small_app());
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  system->process().mailbox(0).put(99, [] {});
  system->start_all();
  const Cycles c = system->run_to_completion();
  EXPECT_GT(c, 0u);
  i64 v = 0;
  EXPECT_TRUE(system->process().mailbox(1).try_get(v));
  EXPECT_EQ(v, 99);
}

TEST(System, BuffersAllocatedAndPinned) {
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(small_app());
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  const VirtAddr va = system->buffer("buf");
  EXPECT_TRUE(system->address_space().is_mapped(va));
  EXPECT_THROW(system->buffer("ghost"), std::out_of_range);
}

TEST(System, DeadlockDetected) {
  AppSpec app;
  app.name = "dead";
  app.add_mailbox("never", 4);
  hwt::KernelBuilder kb("waiter");
  kb.mbox_get(1, 0).halt();
  app.add_hw_thread("t", kb.build(), {"never"});
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  system->start_all();
  EXPECT_THROW(system->run_to_completion(), std::runtime_error);
}

TEST(System, UnknownThreadLookupsThrow) {
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(small_app());
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  EXPECT_THROW(system->engine("ghost"), std::out_of_range);
  EXPECT_THROW(system->mmu("ghost"), std::out_of_range);
  EXPECT_THROW(system->dma_engine(), std::logic_error);  // not synthesized with DMA
}

TEST(System, ElaborateTwiceGivesIndependentSystems) {
  SynthesisFlow flow(zynq7020());
  const SystemImage image = flow.synthesize(small_app());
  sim::Simulator s1, s2;
  auto a = image.elaborate(s1);
  auto b = image.elaborate(s2);
  a->process().mailbox(0).put(1, [] {});
  i64 v = 0;
  EXPECT_FALSE(b->process().mailbox(0).try_get(v));
}

// --- DSE ---

TEST(Dse, SweepsAndPicksFittingPoint) {
  DesignSpaceExplorer dse(zynq7020());
  const auto result = dse.explore_tlb(small_app(), "worker", {4, 16, 64});
  ASSERT_EQ(result.candidates.size(), 3u);
  EXPECT_LT(result.candidates[0].total.luts, result.candidates[2].total.luts);
  ASSERT_GE(result.best, 0);
  // Unmeasured: picks the largest fitting TLB.
  EXPECT_EQ(result.candidates[static_cast<std::size_t>(result.best)].tlb_entries, 64u);
}

TEST(Dse, MeasuredSweepPicksFastest) {
  workloads::WorkloadParams params;
  params.n = 512;
  const auto wl = workloads::make_vecadd(params);
  auto app = workloads::single_thread_app(wl, ThreadKind::kHardware);
  app.threads[0].footprint_hint_bytes = 0;

  DesignSpaceExplorer dse(zynq7020());
  const auto result = dse.explore_tlb(app, "worker", {2, 16}, [&](const SystemImage& image) {
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    system->start_all();
    return system->run_to_completion();
  });
  ASSERT_EQ(result.candidates.size(), 2u);
  EXPECT_TRUE(result.candidates[0].measured);
  ASSERT_GE(result.best, 0);
  EXPECT_LE(result.candidates[static_cast<std::size_t>(result.best)].cycles,
            result.candidates[0].cycles);
}

TEST(Dse, UnknownThreadRejected) {
  DesignSpaceExplorer dse(zynq7020());
  EXPECT_THROW(dse.explore_tlb(small_app(), "ghost", {4}), std::out_of_range);
}

}  // namespace
}  // namespace vmsls::sls

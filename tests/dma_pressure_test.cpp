// DMA offload under memory pressure: the pinned scatter-gather path and
// its deadlock-safe admission. Pins the nasty cases — a frame budget
// smaller than one scatter-gather run (must chunk and drain), two
// concurrent offloads whose combined pin demand exceeds the budget (must
// serialize, not deadlock), pin-count invariants (every pin released at
// completion, no pinned page ever selected as victim), the CPU-copy
// fault-through-pager path, and the DSE offload × pager grid.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "dma/dma_engine.hpp"
#include "dma/offload.hpp"
#include "mem/paging/pager.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "sls/dse.hpp"
#include "test_util.hpp"
#include "workloads/workloads.hpp"

namespace vmsls::dma {
namespace {

using test::MemorySystem;

/// More pages than any fixture maps: an exhaustive reclaim request.
constexpr u64 kMemorySystemReclaim = 64;

struct PressureRig : ::testing::Test {
  MemorySystem ms;
  rt::OsModel os{ms.sim, rt::OsConfig{}, "os"};
  rt::Process process{ms.sim, ms.as, "p"};
  DmaEngine dma{ms.sim, ms.bus, ms.pm, DmaConfig{}, "dma"};
  std::unique_ptr<paging::Pager> pager;
  std::unique_ptr<OffloadDriver> driver;

  void make(u64 budget, OffloadConfig cfg = {}) {
    paging::PagerConfig pc;
    pc.frame_budget = budget;
    pager = std::make_unique<paging::Pager>(ms.sim, process, pc, "pager");
    driver = std::make_unique<OffloadDriver>(ms.sim, os, process, dma, ms.bus, ms.pm, cfg,
                                             "offload");
    driver->set_pager(pager.get());
  }

  /// Allocates `pages` user pages, writes one marker word per page, and
  /// evicts them all so their contents sit in swap (cold start).
  VirtAddr cold_region(u64 pages) {
    const VirtAddr base = ms.as.alloc(pages * 4096, 4096);
    for (u64 p = 0; p < pages; ++p) ms.as.write_u64(base + p * 4096, 0xC0DE0000 + p);
    process.evict(base, pages * 4096);
    EXPECT_EQ(ms.as.resident_pages(), 0u);
    return base;
  }

  u64 stat(const std::string& name) const { return ms.sim.stats().counter_value(name); }
};

TEST_F(PressureRig, BudgetSmallerThanRunChunksAndDrains) {
  // Six pages through a two-frame budget (pin quota 1): without chunked
  // admission the transfer would pin its whole run and wedge the fault
  // path. The queue must drain with the data intact.
  make(/*budget=*/2);
  const VirtAddr base = cold_region(6);
  const auto buf = driver->alloc_pinned(6 * 4096);

  bool done = false;
  driver->copy_in(base, buf, 0, 6 * 4096, [&] { done = true; });
  test::run_until_drained(ms.sim);

  EXPECT_TRUE(done);
  EXPECT_EQ(driver->chunked_runs(), 1u);
  EXPECT_EQ(ms.as.pinned_pages(), 0u);  // every transfer pin released
  EXPECT_EQ(driver->pins_held(), 0u);
  EXPECT_LE(ms.as.resident_pages(), 2u);       // budget honored after release
  EXPECT_EQ(pager->swap_ins(), 6u);            // cold pages charged through swap
  EXPECT_EQ(stat("offload.pin_faults"), 6u);
  for (u64 p = 0; p < 6; ++p) {
    u64 word = 0;
    ms.pm.read(buf.pa + p * 4096, std::span<u8>(reinterpret_cast<u8*>(&word), sizeof(word)));
    EXPECT_EQ(word, 0xC0DE0000 + p) << "page " << p;
  }
}

TEST_F(PressureRig, ConcurrentOffloadsSerializeInsteadOfDeadlocking) {
  // Two transfers of three pages each under a four-frame budget (pin quota
  // 3): combined demand exceeds the quota, so the second must queue behind
  // the first's pin release — serialization, not deadlock, and no pin ever
  // stranded.
  make(/*budget=*/4);
  const VirtAddr base = cold_region(6);
  const auto buf_a = driver->alloc_pinned(3 * 4096);
  const auto buf_b = driver->alloc_pinned(3 * 4096);

  bool done_a = false, done_b = false;
  driver->copy_in(base, buf_a, 0, 3 * 4096, [&] { done_a = true; });
  driver->copy_in(base + 3 * 4096, buf_b, 0, 3 * 4096, [&] { done_b = true; });
  test::run_until_drained(ms.sim);

  EXPECT_TRUE(done_a);
  EXPECT_TRUE(done_b);
  EXPECT_GE(driver->pin_stalls(), 1u);  // the admission queue was exercised
  EXPECT_EQ(driver->chunked_runs(), 0u);  // each run fits the quota alone
  EXPECT_EQ(ms.as.pinned_pages(), 0u);
  EXPECT_EQ(driver->pins_held(), 0u);
  for (u64 p = 0; p < 3; ++p) {
    u64 word = 0;
    ms.pm.read(buf_b.pa + p * 4096, std::span<u8>(reinterpret_cast<u8*>(&word), sizeof(word)));
    EXPECT_EQ(word, 0xC0DE0000 + 3 + p) << "page " << p;
  }
}

TEST_F(PressureRig, PinnedPagesAreNeverSelectedAsVictims) {
  // Eviction pressure lands while a transfer holds its chunk pinned: victim
  // selection must route around the pinned pages. The PinnedProbe hook
  // observes the policy consulting (and skipping) pin state, and
  // Pager::evict_resident hard-fails (throwing out of run_until_drained)
  // if a pinned page is ever nominated.
  make(/*budget=*/3);
  const VirtAddr base = cold_region(4);
  const VirtAddr storm = ms.as.alloc(4 * 4096, 4096);
  const auto buf = driver->alloc_pinned(4 * 4096);

  u64 probes = 0;
  std::set<u64> seen_pinned;
  pager->policy().set_pinned_probe([&](u64 vpn) {
    ++probes;
    const bool pinned = ms.as.is_pinned_vpn(vpn);
    if (pinned) seen_pinned.insert(vpn);
    return pinned;
  });

  bool done = false;
  driver->copy_in(base, buf, 0, 4 * 4096, [&] { done = true; });

  // Step to the middle of the transfer: the first chunk faulted in, mapped,
  // and still pinned for its in-flight DMA.
  auto pinned_resident = [this] {
    u64 n = 0;
    ms.as.for_each_resident([this, &n](u64 vpn) { n += ms.as.is_pinned_vpn(vpn) ? 1 : 0; });
    return n;
  };
  while (pinned_resident() == 0 && ms.sim.step()) {
  }
  ASSERT_GT(pinned_resident(), 0u);
  ASSERT_GT(driver->pins_held(), 0u);

  // Worst-case pressure: an exhaustive reclaim sweep takes every page the
  // policy will surrender. Pinned pages must all survive it — the policy
  // can only conclude exhaustion by consulting and skipping each of them.
  pager->reclaim(kMemorySystemReclaim);
  u64 unpinned_survivors = 0;
  ms.as.for_each_resident(
      [this, &unpinned_survivors](u64 vpn) { unpinned_survivors += ms.as.is_pinned_vpn(vpn) ? 0 : 1; });
  EXPECT_EQ(unpinned_survivors, 0u);
  EXPECT_GT(probes, 0u);              // the policy consulted pin state
  EXPECT_FALSE(seen_pinned.empty());  // and actually skipped pinned pages

  // Fault-path pressure on top: concurrent demand faults must evict around
  // the pins and the whole tangle must still drain.
  for (u64 i = 0; i < 4; ++i) {
    pager->handle_fault(storm + i * 4096, /*is_write=*/true, [this, storm, i] {
      if (!ms.as.is_mapped(storm + i * 4096)) ms.as.map_page(storm + i * 4096);
    });
  }
  test::run_until_drained(ms.sim);

  EXPECT_TRUE(done);
  EXPECT_EQ(ms.as.pinned_pages(), 0u);
  for (u64 p = 0; p < 4; ++p) {
    u64 word = 0;
    ms.pm.read(buf.pa + p * 4096, std::span<u8>(reinterpret_cast<u8*>(&word), sizeof(word)));
    EXPECT_EQ(word, 0xC0DE0000 + p) << "page " << p;
  }
}

TEST_F(PressureRig, CopyOutDirtiesUserPagesAndReleasesPins) {
  make(/*budget=*/3);
  const VirtAddr base = cold_region(2);
  const auto buf = driver->alloc_pinned(2 * 4096);
  for (u64 p = 0; p < 2; ++p) {
    const u64 word = 0xF00D0000 + p;
    ms.pm.write(buf.pa + p * 4096, std::span<const u8>(reinterpret_cast<const u8*>(&word),
                                                       sizeof(word)));
  }

  bool done = false;
  driver->copy_out(buf, 0, base, 2 * 4096, [&] { done = true; });
  test::run_until_drained(ms.sim);

  EXPECT_TRUE(done);
  EXPECT_EQ(ms.as.pinned_pages(), 0u);
  for (u64 p = 0; p < 2; ++p) {
    if (!ms.as.is_mapped(base + p * 4096)) continue;  // already re-evicted
    // DMA wrote the page behind the MMU: the PTE must be dirty so a later
    // eviction pays the writeback.
    EXPECT_TRUE(pager->page_dirty((base + p * 4096) >> 12)) << "page " << p;
    EXPECT_EQ(ms.as.read_u64(base + p * 4096), 0xF00D0000 + p);
  }
}

TEST_F(PressureRig, CpuCopyFaultsThroughThePagerUnderBudget) {
  OffloadConfig cfg;
  cfg.mode = CopyMode::kCpuCopy;
  make(/*budget=*/2, cfg);
  const VirtAddr base = cold_region(4);
  const auto buf = driver->alloc_pinned(4 * 4096);

  bool done = false;
  driver->copy_in(base, buf, 0, 4 * 4096, [&] { done = true; });
  test::run_until_drained(ms.sim);

  EXPECT_TRUE(done);
  EXPECT_EQ(pager->swap_ins(), 4u);  // every cold page charged through swap
  EXPECT_EQ(stat("offload.pin_faults"), 4u);
  EXPECT_LE(ms.as.resident_pages(), 2u);
  EXPECT_EQ(ms.as.pinned_pages(), 0u);
  for (u64 p = 0; p < 4; ++p) {
    u64 word = 0;
    ms.pm.read(buf.pa + p * 4096, std::span<u8>(reinterpret_cast<u8*>(&word), sizeof(word)));
    EXPECT_EQ(word, 0xC0DE0000 + p) << "page " << p;
  }
}

}  // namespace
}  // namespace vmsls::dma

// --- DSE: offload-mode × pager-budget grid --------------------------------

namespace vmsls {
namespace {

TEST(DseOffloadGrid, SerialAndParallelGridIdentical) {
  workloads::WorkloadParams p;
  p.n = 16;
  auto wl = workloads::make_workload("matmul", p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  // SVM candidates run the workload cold; DMA candidates score the copy-in
  // phase (the kernel-side flow is exercised by bench_fig11 end to end).
  auto evaluate = [&wl](const sls::SystemImage& image) -> Cycles {
    sim::Simulator sim;
    auto system = image.elaborate(sim);
    wl.setup(*system);
    for (const auto& buf : system->image().app().buffers)
      system->process().evict(system->buffer(buf.name), buf.bytes);
    if (image.options().include_dma) {
      auto& args = system->process().mailbox(system->image().app().mailbox_index("args"));
      i64 v = 0;
      while (args.try_get(v)) {
      }
      const Cycles t0 = sim.now();
      for (const auto& buf : system->image().app().buffers) {
        const auto pb = system->offload().alloc_pinned(buf.bytes);
        bool done = false;
        system->offload().copy_in(system->buffer(buf.name), pb, 0, buf.bytes,
                                  [&done] { done = true; });
        while (!done)
          if (!sim.step()) throw std::runtime_error("copy-in stalled");
      }
      return sim.now() - t0;
    }
    system->start_all();
    return system->run_to_completion();
  };

  const std::vector<sls::OffloadCandidate> offloads = {
      {false, dma::CopyMode::kSgDma},  // SVM
      {true, dma::CopyMode::kCpuCopy},
      {true, dma::CopyMode::kSgDma},
  };
  const std::vector<sls::PagerCandidate> pagers = {
      {0, paging::PolicyKind::kClock},  // pressure-free baseline
      {6, paging::PolicyKind::kClock},
  };

  sls::DesignSpaceExplorer serial(sls::zynq7020());
  serial.set_threads(1);
  const auto a = serial.explore_offload_pager(app, "worker", offloads, pagers, evaluate);

  sls::DesignSpaceExplorer parallel(sls::zynq7020());
  parallel.set_threads(4);
  const auto b = parallel.explore_offload_pager(app, "worker", offloads, pagers, evaluate);

  ASSERT_EQ(a.candidates.size(), offloads.size() * pagers.size());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].include_dma, b.candidates[i].include_dma);
    EXPECT_EQ(a.candidates[i].copy_mode, b.candidates[i].copy_mode);
    EXPECT_EQ(a.candidates[i].frame_budget, b.candidates[i].frame_budget);
    EXPECT_EQ(a.candidates[i].measured, b.candidates[i].measured);
    EXPECT_EQ(a.candidates[i].cycles, b.candidates[i].cycles);
  }
  EXPECT_EQ(a.best, b.best);
  ASSERT_GE(a.best, 0);
  // Candidate order is offload-major over the pager points.
  EXPECT_FALSE(a.candidates[0].include_dma);
  EXPECT_EQ(a.candidates[0].frame_budget, 0u);
  EXPECT_TRUE(a.candidates.back().include_dma);
  EXPECT_EQ(a.candidates.back().copy_mode, dma::CopyMode::kSgDma);
  EXPECT_EQ(a.candidates.back().frame_budget, 6u);
}

}  // namespace
}  // namespace vmsls

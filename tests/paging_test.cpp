// Paging subsystem: replacement-policy victim order, pager budget
// enforcement, and the eviction correctness backbone (TLB shootdown +
// walk-cache flush + backing-store round trip). SwapDevice units live in
// swap_device_test.cpp.
#include <gtest/gtest.h>

#include <set>

#include "mem/mmu.hpp"
#include "mem/paging/pager.hpp"
#include "mem/paging/replacement.hpp"
#include "mem/paging/swap_device.hpp"
#include "mem/walker.hpp"
#include "rt/os.hpp"
#include "rt/process.hpp"
#include "test_util.hpp"

namespace vmsls::paging {
namespace {

using test::MemorySystem;

// --- replacement policies ---

TEST(ReplacementPolicy, ParseRoundTrip) {
  for (const auto kind : {PolicyKind::kClock, PolicyKind::kLruApprox, PolicyKind::kFifo,
                          PolicyKind::kRandom})
    EXPECT_EQ(parse_policy(policy_name(kind)), kind);
  EXPECT_THROW(parse_policy("mru"), std::invalid_argument);
}

struct PolicyFixture : ::testing::Test {
  MemorySystem ms;
  static constexpr VirtAddr kBase = 0x10000;

  u64 vpn(unsigned i) const { return (kBase >> 12) + i; }

  /// Maps `count` pages and clears their accessed bits (populate's writes
  /// would otherwise leave every page marked used).
  void map_pages(unsigned count) {
    ms.as.populate(kBase, count * 4096ull);
    for (unsigned i = 0; i < count; ++i)
      ms.as.page_table().test_and_clear_accessed(kBase + i * 4096ull);
  }

  void touch(unsigned i) { ms.as.page_table().set_accessed_dirty(kBase + i * 4096ull, false); }
};

TEST_F(PolicyFixture, FifoEvictsInInsertionOrder) {
  auto policy = make_policy(PolicyKind::kFifo, ms.as.page_table());
  map_pages(3);
  for (unsigned i = 0; i < 3; ++i) policy->on_insert(vpn(i));
  touch(0);  // FIFO ignores access history
  EXPECT_EQ(policy->pick_victim(), vpn(0));
  policy->on_remove(vpn(0));
  EXPECT_EQ(policy->pick_victim(), vpn(1));
  policy->on_remove(vpn(1));
  policy->on_remove(vpn(2));
  EXPECT_FALSE(policy->pick_victim().has_value());
}

TEST_F(PolicyFixture, ClockGivesAccessedPagesASecondChance) {
  auto policy = make_policy(PolicyKind::kClock, ms.as.page_table());
  map_pages(3);
  for (unsigned i = 0; i < 3; ++i) policy->on_insert(vpn(i));
  touch(1);
  // Page 1 is referenced: whatever the hand position, the first victim must
  // be one of the unreferenced pages.
  const auto victim = policy->pick_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, vpn(1));
  // The sweep cleared page 1's bit; with no re-reference it is now fair
  // game. Evict the first victim and the rest must drain, 1 included.
  policy->on_remove(*victim);
  const auto second = policy->pick_victim();
  ASSERT_TRUE(second.has_value());
  policy->on_remove(*second);
  EXPECT_EQ(policy->pick_victim(), policy->pick_victim());  // stable when idle
}

TEST_F(PolicyFixture, ClockEventuallyEvictsEvenWhenAllReferenced) {
  auto policy = make_policy(PolicyKind::kClock, ms.as.page_table());
  map_pages(3);
  for (unsigned i = 0; i < 3; ++i) {
    policy->on_insert(vpn(i));
    touch(i);
  }
  EXPECT_TRUE(policy->pick_victim().has_value());
}

TEST_F(PolicyFixture, LruAgingPrefersTheColdestPage) {
  auto policy = make_policy(PolicyKind::kLruApprox, ms.as.page_table());
  map_pages(3);
  for (unsigned i = 0; i < 3; ++i) policy->on_insert(vpn(i));
  // Several rounds in which pages 0 and 2 stay hot and page 1 goes cold.
  for (int round = 0; round < 8; ++round) {
    touch(0);
    touch(2);
    policy->pick_victim();  // aging sweep
  }
  touch(0);
  touch(2);
  EXPECT_EQ(policy->pick_victim(), vpn(1));
}

TEST_F(PolicyFixture, EveryPolicySkipsPinnedPages) {
  // Pinned pages (in-flight hardware accesses) must never be nominated:
  // evicting one would retarget the frame underneath a committed bus
  // transaction. With everything pinned, selection fails outright.
  for (const auto kind : {PolicyKind::kClock, PolicyKind::kLruApprox, PolicyKind::kFifo,
                          PolicyKind::kRandom}) {
    auto policy = make_policy(kind, ms.as.page_table(), 5);
    std::set<u64> pinned;
    policy->set_pinned_probe([&pinned](u64 key) { return pinned.count(key) != 0; });
    map_pages(3);
    for (unsigned i = 0; i < 3; ++i) policy->on_insert(vpn(i));
    pinned = {vpn(0), vpn(1)};
    for (int round = 0; round < 4; ++round) {
      const auto victim = policy->pick_victim();
      ASSERT_TRUE(victim.has_value()) << policy->name();
      EXPECT_EQ(*victim, vpn(2)) << policy->name();
    }
    pinned.insert(vpn(2));
    EXPECT_FALSE(policy->pick_victim().has_value()) << policy->name();
  }
}

TEST_F(PolicyFixture, RandomIsDeterministicUnderASeed) {
  auto a = make_policy(PolicyKind::kRandom, ms.as.page_table(), 99);
  auto b = make_policy(PolicyKind::kRandom, ms.as.page_table(), 99);
  map_pages(8);
  for (unsigned i = 0; i < 8; ++i) {
    a->on_insert(vpn(i));
    b->on_insert(vpn(i));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a->pick_victim(), b->pick_victim());
}

// --- pager integration: budget, shootdown, data round trip ---

struct PagerFixture : ::testing::Test {
  MemorySystem ms;
  rt::Process process{ms.sim, ms.as, "proc"};
  std::unique_ptr<mem::PageWalker> walker;
  std::unique_ptr<mem::Mmu> mmu;
  std::unique_ptr<rt::OsModel> os;
  std::unique_ptr<rt::FaultHandler> faults;
  std::unique_ptr<Pager> pager;

  void make(u64 budget, PolicyKind kind = PolicyKind::kClock) {
    walker = std::make_unique<mem::PageWalker>(ms.sim, ms.bus, ms.pm, ms.as.page_table(),
                                               mem::WalkerConfig{}, "w");
    mmu = std::make_unique<mem::Mmu>(ms.sim, *walker, mem::MmuConfig{}, "mmu", 0);
    process.register_mmu(mmu.get());
    process.register_walker(walker.get());
    os = std::make_unique<rt::OsModel>(ms.sim, rt::OsConfig{}, "os");
    faults = std::make_unique<rt::FaultHandler>(ms.sim, *os, process, "faults");
    mmu->set_fault_sink(faults.get());
    PagerConfig cfg;
    cfg.frame_budget = budget;
    cfg.policy = kind;
    pager = std::make_unique<Pager>(ms.sim, process, cfg, "pager");
    faults->set_pager(pager.get());
  }

  PhysAddr translate_sync(VirtAddr va, bool write = false) {
    PhysAddr out = ~0ull;
    mmu->translate(va, write, [&](PhysAddr pa) { out = pa; });
    ms.run_all();
    return out;
  }
};

TEST_F(PagerFixture, EvictMidWorkloadRoundTripsThroughBackingStore) {
  make(/*budget=*/2);
  const VirtAddr base = ms.as.alloc(4 * 4096, 4096);
  // Software writes distinct patterns into four pages (maps them all).
  for (u64 p = 0; p < 4; ++p)
    for (u64 w = 0; w < 8; ++w)
      ms.as.write_u64(base + p * 4096 + w * 8, 0xA000'0000ull + p * 100 + w);
  EXPECT_EQ(ms.as.resident_pages(), 4u);

  // Cold-start: everything out, then the "hardware thread" touches all four
  // pages under a two-frame budget, forcing pager evictions mid-workload.
  process.evict(base, 4 * 4096);
  EXPECT_EQ(ms.as.resident_pages(), 0u);
  const u64 shootdowns_before = process.shootdowns();
  for (u64 p = 0; p < 4; ++p)
    EXPECT_NE(translate_sync(base + p * 4096, /*write=*/true), ~0ull);

  // Budget respected on the fault path, victims chosen and shot down.
  EXPECT_LE(ms.as.resident_pages(), 2u);
  EXPECT_GE(pager->evictions(), 2u);
  EXPECT_GT(process.shootdowns(), shootdowns_before);
  EXPECT_GE(pager->swap_ins(), 1u);  // pages came back from swap, timed
  // Dirty pages (written through the MMU) paid writeback on eviction.
  EXPECT_GE(pager->writebacks(), 1u);

  // The data survived the full evict/swap round trip.
  for (u64 p = 0; p < 4; ++p)
    for (u64 w = 0; w < 8; ++w)
      EXPECT_EQ(ms.as.read_u64(base + p * 4096 + w * 8), 0xA000'0000ull + p * 100 + w);
}

TEST_F(PagerFixture, EvictionInvalidatesTlbAndWalkCache) {
  make(/*budget=*/1);
  const VirtAddr va0 = ms.as.alloc(4096, 4096);
  const VirtAddr va1 = ms.as.alloc(4096, 4096);
  translate_sync(va0);  // faults in, fills TLB
  const u64 misses_after_first = mmu->tlb().misses();
  translate_sync(va0);  // pure TLB hit
  EXPECT_EQ(mmu->tlb().misses(), misses_after_first);

  translate_sync(va1);  // budget 1: evicts va0's page, shoots down its TLB entry
  EXPECT_FALSE(ms.as.is_mapped(va0));
  translate_sync(va0);  // must re-walk and re-fault, not hit a stale entry
  EXPECT_GT(mmu->tlb().misses(), misses_after_first);
  EXPECT_TRUE(ms.as.is_mapped(va0));
}

TEST_F(PagerFixture, SwapTimeLengthensFaultService) {
  make(/*budget=*/1);
  const VirtAddr va = ms.as.alloc(4096, 4096);
  const Cycles t0 = ms.sim.now();
  translate_sync(va, /*write=*/true);  // zero-fill fault: no swap read
  const Cycles cold_fill = ms.sim.now() - t0;

  const VirtAddr other = ms.as.alloc(4096, 4096);
  translate_sync(other, /*write=*/true);  // evicts va's dirty page -> writeback

  const Cycles t1 = ms.sim.now();
  translate_sync(va);  // swap-in: pays the device read on top of the OS path
  const Cycles swap_fill = ms.sim.now() - t1;
  EXPECT_GT(swap_fill, cold_fill);
  EXPECT_GE(pager->swap().reads(), 1u);
}

TEST_F(PagerFixture, FrameExhaustionTriggersReclaimInsteadOfThrowing) {
  // Tiny allocator: 8 frames, 3 consumed by page-table nodes. A huge budget
  // means the fault path never evicts — only the allocator pressure
  // callback can save the 6th data page.
  // Region distinct from the fixture allocator's, so the two page tables
  // never alias physical frames.
  mem::FrameAllocator tiny(1 * MiB, 8, 4096);
  mem::AddressSpace as(ms.pm, tiny, mem::PageTableConfig{});
  rt::Process proc(ms.sim, as, "tiny");
  PagerConfig cfg;
  cfg.frame_budget = 1000;
  Pager p(ms.sim, proc, cfg, "tiny_pager");

  const VirtAddr base = as.alloc(8 * 4096, 4096);
  for (u64 i = 0; i < 8; ++i) as.write_u64(base + i * 4096, i + 1);
  EXPECT_GT(ms.sim.stats().counter_value("tiny_pager.reclaims"), 0u);
  for (u64 i = 0; i < 8; ++i) EXPECT_EQ(as.read_u64(base + i * 4096), i + 1);
}

TEST_F(PagerFixture, ConcurrentFaultsDuringWritebackCoalesceToOneSwapIn) {
  // Regression for the double swap-in race: fault 1 on a swapped-out page
  // suspends inside ensure_frame_available on an async dirty writeback;
  // fault 2 on the same page arrives during the wait. It must coalesce onto
  // fault 1 — not re-run budget enforcement and issue a second device read
  // (which double-counted pager.swap_ins and evicted an extra victim).
  make(/*budget=*/1);
  const VirtAddr va_a = ms.as.alloc(4096, 4096);
  const VirtAddr va_b = ms.as.alloc(4096, 4096);

  // Page A: resident + dirty, then evicted by fiat -> its contents sit in
  // swap, so a fault on it pays a device read.
  ms.as.write_u64(va_a, 0xAAAA);
  process.evict(va_a, 4096);
  ASSERT_TRUE(pager->swap().holds(va_a >> 12));

  // Page B: resident + dirty -> the next fault's victim needs a writeback.
  ms.as.write_u64(va_b, 0xBBBB);
  ASSERT_EQ(ms.as.resident_pages(), 1u);

  const u64 evictions_before = pager->evictions();
  bool first_ready = false, second_ready = false;
  pager->handle_fault(va_a, /*is_write=*/false, [&] { first_ready = true; });
  // Fault 1 is now suspended on B's writeback; fault 2 arrives mid-wait.
  pager->handle_fault(va_a, /*is_write=*/false, [&] { second_ready = true; });
  ms.run_all();

  EXPECT_TRUE(first_ready);
  EXPECT_TRUE(second_ready);
  EXPECT_EQ(pager->swap_ins(), 1u);                         // single device read
  EXPECT_EQ(pager->evictions(), evictions_before + 1);      // only B evicted
  EXPECT_EQ(pager->swap().reads(), 1u);
  EXPECT_EQ(pager->writebacks(), 1u);
}

TEST_F(PagerFixture, ObserverSeedsPolicyWithPagesResidentAtAttach) {
  // Pages mapped before the pager attaches (pinned buffers) must still be
  // evictable under pressure.
  const VirtAddr base = ms.as.alloc(3 * 4096, 4096);
  ms.as.populate(base, 3 * 4096);
  make(/*budget=*/2);
  EXPECT_EQ(pager->policy().tracked_pages(), ms.as.resident_pages());
  const VirtAddr extra = ms.as.alloc(4096, 4096);
  translate_sync(extra);
  EXPECT_LE(ms.as.resident_pages(), 2u);
}

}  // namespace
}  // namespace vmsls::paging

// Host-side microbenchmarks (google-benchmark).
//
// Not paper data: these measure the simulator substrate itself — event
// queue throughput, TLB lookups, functional page-table walks, and IR
// execution rate — to keep the experiment harness fast enough for the
// sweeps above.

#include <benchmark/benchmark.h>

#include "hwt/builder.hpp"
#include "hwt/engine.hpp"
#include "mem/frames.hpp"
#include "mem/pagetable.hpp"
#include "mem/physmem.hpp"
#include "mem/tlb.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace vmsls;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    u64 sink = 0;
    for (u64 i = 0; i < n; ++i) sim.schedule_in(i % 97, [&sink] { ++sink; });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_TlbLookupHit(benchmark::State& state) {
  StatRegistry stats;
  mem::TlbConfig cfg;
  cfg.entries = 64;
  cfg.ways = 4;
  mem::Tlb tlb(cfg, stats, "t");
  for (u64 v = 0; v < 64; ++v) tlb.insert(v, v, true);
  u64 vpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(vpn));
    vpn = (vpn + 1) % 64;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TlbLookupHit);

void BM_FunctionalPageWalk(benchmark::State& state) {
  mem::PhysicalMemory pm(64 * MiB);
  mem::FrameAllocator frames(0, (64 * MiB) / (4 * KiB), 4 * KiB);
  mem::PageTable pt(pm, frames, mem::PageTableConfig{});
  for (u64 p = 0; p < 256; ++p) pt.map(0x10000 + p * 4096, *frames.alloc(), true);
  Rng rng(3);
  for (auto _ : state) {
    const VirtAddr va = 0x10000 + rng.below(256) * 4096;
    benchmark::DoNotOptimize(pt.lookup(va));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_FunctionalPageWalk);

void BM_EngineAluThroughput(benchmark::State& state) {
  // Measure host ns per simulated IR instruction in a tight ALU loop.
  hwt::KernelBuilder kb("alu");
  kb.li(1, 0).li(2, 0).li(3, 1'000'000)
      .label("loop")
      .seq(4, 2, 3)
      .bnez(4, "out")
      .add(1, 1, 2)
      .addi(2, 2, 1)
      .jmp("loop")
      .label("out")
      .halt();
  const hwt::Kernel kernel = kb.build();
  for (auto _ : state) {
    sim::Simulator sim;
    hwt::Engine engine(sim, kernel, hwt::EngineConfig{}, "e");
    bool done = false;
    engine.start([&] { done = true; });
    while (sim.step()) {
    }
    benchmark::DoNotOptimize(done);
    state.counters["sim_instructions"] =
        benchmark::Counter(static_cast<double>(engine.instructions_retired()),
                           benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_EngineAluThroughput)->Unit(benchmark::kMillisecond);

void BM_PhysMemBlockCopy(benchmark::State& state) {
  mem::PhysicalMemory pm(64 * MiB);
  std::vector<u8> buf(64 * KiB, 0xa5);
  for (auto _ : state) {
    pm.write(1 * MiB, std::span<const u8>(buf.data(), buf.size()));
    pm.read(1 * MiB, std::span<u8>(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 2 * 64 * KiB);
}
BENCHMARK(BM_PhysMemBlockCopy);

}  // namespace

BENCHMARK_MAIN();

// Host-side microbenchmarks for the simulator substrate itself.
//
// Not paper data: these measure how fast the host retires simulated work —
// event-queue throughput (the calendar-wheel fast path, the far-future heap
// fallback, and zero-allocation recycling), inline-completion translation,
// TLB lookups, IR execution rate, and end-to-end fig-style workload runs —
// to keep the experiment harness fast enough for wide DSE sweeps.
//
// Emits BENCH_engine.json (see bench::EngineBenchReport for the schema) so
// CI can archive the perf trajectory run over run.

#include <iostream>

#include "bench_util.hpp"
#include "hwt/builder.hpp"
#include "hwt/engine.hpp"
#include "mem/frames.hpp"
#include "mem/mmu.hpp"
#include "mem/pagetable.hpp"
#include "mem/physmem.hpp"
#include "mem/tlb.hpp"
#include "sim/simulator.hpp"
#include "sls/dse.hpp"
#include "util/table.hpp"

namespace {

using namespace vmsls;

constexpr double kMinSampleMs = 200.0;

struct Rate {
  double items_per_sec = 0;
  double host_ms = 0;   // of the final (reported) repetition batch
  u64 items = 0;        // per repetition
  u64 cycles = 0;       // simulated cycles per repetition; 0 = host-only section
};

/// Repeats `body` (which processes `items` units per call) until the batch
/// has run for at least kMinSampleMs, then reports the steady-state rate.
template <typename F>
Rate measure(u64 items, F&& body) {
  body();  // warm-up: page in code, size pools
  u64 reps = 1;
  for (;;) {
    bench::WallTimer t;
    for (u64 r = 0; r < reps; ++r) body();
    const double ms = t.ms();
    if (ms >= kMinSampleMs) {
      Rate rate;
      rate.items = items * reps;
      rate.host_ms = ms;
      rate.items_per_sec = static_cast<double>(items * reps) / (ms / 1000.0);
      return rate;
    }
    reps = ms > 1.0 ? 1 + static_cast<u64>(static_cast<double>(reps) * kMinSampleMs / ms) : reps * 8;
  }
}

/// Old BM_EventQueueScheduleRun shape: schedule n events with small mixed
/// delays, then drain. Exercises the wheel + node recycling.
Rate bench_event_queue(u64 n) {
  Cycles covered = 0;
  Rate r = measure(n, [n, &covered] {
    sim::Simulator sim;
    u64 sink = 0;
    for (u64 i = 0; i < n; ++i) sim.schedule_in(i % 97, [&sink] { ++sink; });
    sim.run();
    if (sink != n) throw std::runtime_error("event sink mismatch");
    covered = sim.now();
  });
  r.cycles = covered;
  return r;
}

/// Steady-state pipeline: a fixed population of self-rescheduling events,
/// the shape of a running SoC simulation (every pop feeds a push).
Rate bench_event_steady(u64 population, u64 rounds) {
  const u64 total = population * rounds;
  Cycles covered = 0;
  Rate r = measure(total, [population, rounds, total, &covered] {
    sim::Simulator sim;
    u64 fired = 0;
    struct Chain {
      sim::Simulator& sim;
      u64& fired;
      u64 budget;
      void operator()() {
        ++fired;
        if (--budget > 0) sim.schedule_in(1 + (budget % 13), *this);
      }
    };
    for (u64 i = 0; i < population; ++i)
      sim.schedule_in(i % 7, Chain{sim, fired, rounds});
    sim.run();
    if (fired != total) throw std::runtime_error("steady-state count mismatch");
    covered = sim.now();
  });
  r.cycles = covered;
  return r;
}

/// Far-future events beyond the wheel horizon: heap fallback + migration
/// ordering against near events.
Rate bench_event_far(u64 n) {
  Cycles covered = 0;
  Rate r = measure(2 * n, [n, &covered] {
    sim::Simulator sim;
    u64 sink = 0;
    for (u64 i = 0; i < n; ++i) {
      sim.schedule_in(i % 97, [&sink] { ++sink; });
      sim.schedule_in(100'000 + (i % 977), [&sink] { ++sink; });
    }
    sim.run();
    if (sink != 2 * n) throw std::runtime_error("far event sink mismatch");
    covered = sim.now();
  });
  r.cycles = covered;
  return r;
}

/// Control for the tracing-overhead pair: the event-queue loop with the
/// same body event_traced_off wraps in VMSLS_TRACE_* sites.
Rate bench_event_trace_control(u64 n) {
  Cycles covered = 0;
  Rate r = measure(n, [n, &covered] {
    sim::Simulator sim;
    u64 sink = 0;
    for (u64 i = 0; i < n; ++i)
      sim.schedule_in(i % 97, [&sink] { ++sink; });
    sim.run();
    if (sink != n) throw std::runtime_error("trace control sink mismatch");
    covered = sim.now();
  });
  r.cycles = covered;
  return r;
}

/// Tracing-disabled overhead: identical loop plus the VMSLS_TRACE_* sites a
/// traced component carries per event. With no sink attached each site must
/// cost one well-predicted branch; main() gates this against the control at
/// 20% (an in-process, machine-independent check — check_bench.py tracks
/// the absolute rates on top).
Rate bench_event_trace_macro_off(u64 n) {
  Cycles covered = 0;
  Rate r = measure(n, [n, &covered] {
    sim::Simulator sim;
    const sim::TraceTrack track = sim.trace().track("bench");
    if (sim.trace().enabled())
      throw std::runtime_error("trace sink unexpectedly attached");
    u64 sink = 0;
    for (u64 i = 0; i < n; ++i)
      sim.schedule_in(i % 97, [&sim, &sink, track] {
        const u64 id = VMSLS_TRACE_NEW_ID(sim.trace());
        VMSLS_TRACE_BEGIN(sim.trace(), track, "ev", id);
        ++sink;
        VMSLS_TRACE_END(sim.trace(), track, "ev", id);
        VMSLS_TRACE_COUNTER(sim.trace(), track, "retired", static_cast<double>(sink));
      });
    sim.run();
    if (sink != n) throw std::runtime_error("traced-off sink mismatch");
    covered = sim.now();
  });
  r.cycles = covered;
  return r;
}

Rate bench_tlb_lookup(u64 n) {
  StatRegistry stats;
  mem::TlbConfig cfg;
  cfg.entries = 64;
  cfg.ways = 4;
  mem::Tlb tlb(cfg, stats, "t");
  for (u64 v = 0; v < 64; ++v) tlb.insert(v, v, true);
  return measure(n, [&tlb, n] {
    u64 acc = 0;
    for (u64 i = 0; i < n; ++i) {
      auto e = tlb.lookup(i % 64);
      acc += e ? e->frame : 0;
    }
    if (acc == ~0ull) throw std::runtime_error("unreachable");
  });
}

/// Pass-through translation: the inline-completion path must complete
/// without any scheduler traffic (asserted here, measured for rate).
Rate bench_passthrough_translate(u64 n) {
  sim::Simulator sim;
  mem::PhysicalMemory pm(16 * MiB);
  mem::FrameAllocator frames(0, (16 * MiB) / (4 * KiB), 4 * KiB);
  mem::PageTable pt(pm, frames, mem::PageTableConfig{});
  mem::DramModel dram(mem::DramConfig{}, sim.stats(), "dram");
  mem::MemoryBus bus(sim, dram, mem::BusConfig{}, "bus");
  mem::PageWalker walker(sim, bus, pm, pt, mem::WalkerConfig{}, "walker");
  mem::MmuConfig mcfg;
  mcfg.translation_enabled = false;
  mem::Mmu mmu(sim, walker, mcfg, "mmu", 0);
  const u64 scheduled_before = sim.events_scheduled();
  Rate r = measure(n, [&mmu, n] {
    u64 acc = 0;
    for (u64 i = 0; i < n; ++i) mmu.translate(i * 64, false, [&acc](PhysAddr pa) { acc += pa; });
    if (acc == ~0ull) throw std::runtime_error("unreachable");
  });
  if (sim.events_scheduled() != scheduled_before)
    throw std::runtime_error("pass-through translation leaked scheduler events");
  return r;
}

Rate bench_engine_alu() {
  hwt::KernelBuilder kb("alu");
  kb.li(1, 0).li(2, 0).li(3, 1'000'000)
      .label("loop")
      .seq(4, 2, 3)
      .bnez(4, "out")
      .add(1, 1, 2)
      .addi(2, 2, 1)
      .jmp("loop")
      .label("out")
      .halt();
  const hwt::Kernel kernel = kb.build();
  u64 instructions = 0;
  Cycles covered = 0;
  Rate r = measure(1, [&kernel, &instructions, &covered] {
    sim::Simulator sim;
    hwt::Engine engine(sim, kernel, hwt::EngineConfig{}, "e");
    bool done = false;
    engine.start([&done] { done = true; });
    sim.run();
    if (!done) throw std::runtime_error("ALU kernel did not halt");
    instructions = engine.instructions_retired();
    covered = sim.now();
  });
  r.items = instructions * r.items;  // measure() counted kernel runs
  r.items_per_sec *= static_cast<double>(instructions);
  r.cycles = covered;
  return r;
}

bench::RunResult run_fig_style(const std::string& workload, u64 n) {
  workloads::WorkloadParams p;
  p.n = n;
  return bench::run_workload(workloads::make_workload(workload, p));
}

}  // namespace

int main() {
  bench::EngineBenchReport report;
  Table table({"section", "items/s", "host ms", "items"});
  auto row = [&](const std::string& name, const Rate& r) {
    table.add_row({name, Table::num(r.items_per_sec, 0), Table::num(r.host_ms, 1),
                   Table::num(r.items)});
    report.add(name, r.cycles, r.items, r.host_ms);
  };

  row("event_queue_1k", bench_event_queue(1024));
  row("event_queue_16k", bench_event_queue(16384));
  row("event_steady_64x4k", bench_event_steady(64, 4096));
  row("event_far_heap_4k", bench_event_far(4096));
  {
    const Rate ctl = bench_event_trace_control(16384);
    const Rate off = bench_event_trace_macro_off(16384);
    row("event_trace_ctl_16k", ctl);
    row("event_traced_off_16k", off);
    if (off.items_per_sec < 0.80 * ctl.items_per_sec)
      throw std::runtime_error("tracing-disabled overhead exceeds 20% of the control rate");
  }
  row("tlb_lookup_hit", bench_tlb_lookup(1 << 16));
  row("passthrough_translate", bench_passthrough_translate(1 << 14));
  row("engine_alu_instr", bench_engine_alu());

  // End-to-end fig-style runs: simulated events per host second is the
  // number that bounds every sweep in bench/.
  for (const auto& [wl, n] : std::vector<std::pair<std::string, u64>>{
           {"matmul", 32}, {"pointer_chase", 8192}}) {
    const auto r = run_fig_style(wl, n);
    table.add_row({"fig_" + wl, Table::num(r.host_ms > 0 ? static_cast<double>(r.events) /
                                                               (r.host_ms / 1000.0)
                                                         : 0,
                                           0),
                   Table::num(r.host_ms, 1), Table::num(r.events)});
    report.add("fig_" + wl, r.cycles, r.events, r.host_ms);
  }

  // Parallel DSE scaling (identical results by construction; the
  // determinism test asserts it — here we record wall-clock).
  {
    workloads::WorkloadParams p;
    p.n = 24;
    auto wl = workloads::make_workload("matmul", p);
    auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
    auto evaluate = [&wl](const sls::SystemImage& image) {
      sim::Simulator sim;
      auto system = image.elaborate(sim);
      wl.setup(*system);
      system->start_all();
      return system->run_to_completion();
    };
    const std::vector<unsigned> candidates = {4, 8, 16, 32};
    for (unsigned threads : {1u, 4u}) {
      sls::DesignSpaceExplorer dse(sls::zynq7020());
      dse.set_threads(threads);
      bench::WallTimer t;
      const auto result = dse.explore_tlb(app, "worker", candidates, evaluate);
      const double ms = t.ms();
      const std::string name = "dse_tlb_" + std::to_string(threads) + "t";
      table.add_row({name, Table::num(static_cast<double>(candidates.size()) / (ms / 1000.0), 2),
                     Table::num(ms, 1), Table::num(static_cast<u64>(result.candidates.size()))});
      report.add(name, 0, result.candidates.size(), ms);
    }
  }

  table.print(std::cout, "Simulator substrate microbenchmarks");
  report.write_json("BENCH_engine.json");
  std::cout << "wrote BENCH_engine.json\n";
  return 0;
}

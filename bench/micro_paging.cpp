// Host-side microbenchmarks for the paging fault path.
//
// Not paper data: these measure how fast the host retires the pager's hot
// loops — demand faults with clean evictions, dirty evictions paying the
// writeback path, the swap scheduler's enqueue/dispatch/slot-allocator
// cycle, and clustered readahead — so fault-path regressions gate in CI
// next to the raw engine-throughput numbers (ROADMAP item 5's ask). The
// sections drive the Pager/SwapScheduler directly (no MMU or walker in the
// loop): items/s is faults (or swap ops) retired per host second, the
// number that bounds every over-subscription sweep in bench/.
//
// Emits BENCH_paging.json (same schema as BENCH_engine.json); CI feeds both
// files to tools/check_bench.py.

#include <algorithm>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "bench_util.hpp"
#include "mem/address_space.hpp"
#include "mem/frames.hpp"
#include "mem/paging/pager.hpp"
#include "mem/paging/swap_scheduler.hpp"
#include "mem/physmem.hpp"
#include "rt/process.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace vmsls;

constexpr double kMinSampleMs = 200.0;

struct Rate {
  double items_per_sec = 0;
  double host_ms = 0;   // of the final (reported) repetition batch
  u64 items = 0;        // per repetition batch
  u64 cycles = 0;       // simulated cycles per repetition
};

/// Repeats `body` (which processes `items` units per call) until the batch
/// has run for at least kMinSampleMs, then reports the steady-state rate.
/// (Same harness as micro_core; each body call builds a fresh Simulator so
/// repetitions are bit-identical.)
template <typename F>
Rate measure(u64 items, F&& body) {
  body();  // warm-up: page in code, size pools
  u64 reps = 1;
  for (;;) {
    bench::WallTimer t;
    for (u64 r = 0; r < reps; ++r) body();
    const double ms = t.ms();
    if (ms >= kMinSampleMs) {
      Rate rate;
      rate.items = items * reps;
      rate.host_ms = ms;
      rate.items_per_sec = static_cast<double>(items * reps) / (ms / 1000.0);
      return rate;
    }
    reps = ms > 1.0 ? 1 + static_cast<u64>(static_cast<double>(reps) * kMinSampleMs / ms) : reps * 8;
  }
}

/// Fast device timings keep the simulated span short: the host cost per
/// fault is what these sections measure, not the modeled flash latency.
paging::SwapConfig fast_swap() {
  paging::SwapConfig cfg;
  cfg.read_latency = 50;
  cfg.write_latency = 100;
  cfg.bytes_per_cycle = 64;
  return cfg;
}

void drain(sim::Simulator& sim) {
  while (sim.step()) {
  }
  if (!sim.idle()) throw std::runtime_error("micro_paging: queue failed to drain");
}

/// A process + pager over a small physical memory — the fault path without
/// the MMU/walker front end (handle_fault is driven directly, and the OS
/// tail is played by mapping the page in the ready callback).
struct FaultRig {
  sim::Simulator sim;
  mem::PhysicalMemory pm{32 * MiB};
  mem::FrameAllocator frames{0, (32 * MiB) / (4 * KiB), 4 * KiB};
  mem::AddressSpace as;
  rt::Process process;
  std::unique_ptr<paging::Pager> pager;
  VirtAddr base = 0;
  u64 pages = 0;

  FaultRig(u64 pages_, u64 budget, const paging::SwapConfig& swap)
      : as(pm, frames, mem::PageTableConfig{}), process(sim, as, "proc"), pages(pages_) {
    paging::PagerConfig cfg;
    cfg.frame_budget = budget;
    cfg.policy = paging::PolicyKind::kClock;
    cfg.swap = swap;
    pager = std::make_unique<paging::Pager>(sim, process, cfg, "pager");
    base = as.alloc(pages * page(), page());
    // Materialize every page with distinct data (maps them all; budget is
    // only enforced on the fault path, so setup may exceed it).
    for (u64 p = 0; p < pages; ++p)
      for (u64 w = 0; w < 4; ++w) as.write_u64(va(p) + w * 8, p * 1000 + w);
  }

  u64 page() const { return as.page_bytes(); }
  VirtAddr va(u64 p) const { return base + p * page(); }

  void clear_dirty_bits() {
    for (u64 p = 0; p < pages; ++p) as.page_table().test_and_clear_dirty(va(p));
  }

  void evict_all() { process.evict(base, pages * page()); }

  /// Chains `count` demand faults on pages `first, first+stride, ...`
  /// (wrapping modulo `pages`), each issued from the previous fault's ready
  /// callback — the shape of a hardware thread missing page after page.
  /// `dirty` re-dirties each page after mapping so its next eviction pays
  /// the writeback path.
  void fault_chain(u64 count, u64 first, u64 stride, bool dirty) {
    u64 next = 0;
    std::function<void()> chain = [this, &next, count, first, stride, dirty, &chain] {
      if (next >= count) return;
      const VirtAddr a = va((first + next * stride) % pages);
      ++next;
      pager->handle_fault(a, dirty, [this, a, dirty, &chain] {
        process.map_in(a);
        if (dirty) as.page_table().set_accessed_dirty(a, /*dirty=*/true);
        chain();
      });
    };
    chain();
    drain(sim);
    if (next != count) throw std::runtime_error("micro_paging: fault chain stalled");
  }
};

/// Demand-fault loop under budget pressure with clean evictions: every
/// fault picks a victim (CLOCK sweep over `budget` tracked pages), shoots
/// it down, and pays a swap-in — the fault path's pure bookkeeping cost.
Rate bench_fault_clean(u64 pages, u64 budget, u64 rounds) {
  const u64 faults = pages * rounds;
  Cycles covered = 0;
  Rate r = measure(faults, [&] {
    FaultRig rig(pages, budget, fast_swap());
    rig.clear_dirty_bits();
    rig.evict_all();
    rig.fault_chain(faults, 0, 1, /*dirty=*/false);
    if (rig.pager->swap_ins() != faults)
      throw std::runtime_error("micro_paging: clean-fault swap-in count mismatch");
    covered = rig.sim.now();
  });
  r.cycles = covered;
  return r;
}

/// Same loop with write faults: every eviction finds the victim dirty and
/// suspends on an async writeback before the swap-in — the fault path's
/// most expensive shape (evict + write + read per fault).
Rate bench_fault_dirty(u64 pages, u64 budget, u64 rounds) {
  const u64 faults = pages * rounds;
  Cycles covered = 0;
  Rate r = measure(faults, [&] {
    FaultRig rig(pages, budget, fast_swap());
    rig.evict_all();  // setup writes left every page dirty
    rig.fault_chain(faults, 0, 1, /*dirty=*/true);
    if (rig.pager->writebacks() == 0)
      throw std::runtime_error("micro_paging: dirty-fault loop paid no writebacks");
    covered = rig.sim.now();
  });
  r.cycles = covered;
  return r;
}

/// The swap scheduler's own hot loop, no pager: bursts of writeback-class
/// writes then batched demand reads on the same vpns — enqueue, dispatch
/// selection, slot allocate/free, and clustered read merging, with the
/// queue kept at realistic (short) depths.
Rate bench_swap_enqueue(u64 n, paging::SwapSchedPolicy policy) {
  constexpr u64 kBurst = 16;
  const u64 ops = 2 * n;  // one write + one read per vpn
  Cycles covered = 0;
  Rate r = measure(ops, [&] {
    sim::Simulator sim;
    paging::SwapConfig cfg = fast_swap();
    cfg.sched = policy;
    paging::SwapScheduler sched(sim, cfg, 4 * KiB, "swap");
    const unsigned owner = sched.register_owner("swap");
    u64 done = 0;
    for (u64 i = 0; i < n; i += kBurst) {
      sched.batched([&] {
        for (u64 j = 0; j < kBurst; ++j)
          sched.write(owner, i + j, paging::SwapReqClass::kWriteback, [&done] { ++done; });
      });
      drain(sim);
      // Contiguous vpns share a cluster region: the burst dispatches as one
      // clustered device read.
      sched.batched([&] {
        for (u64 j = 0; j < kBurst; ++j)
          sched.read(owner, i + j, paging::SwapReqClass::kDemandRead, [&done] { ++done; });
      });
      drain(sim);
    }
    if (done != ops) throw std::runtime_error("micro_paging: swap op count mismatch");
    covered = sim.now();
  });
  r.cycles = covered;
  return r;
}

/// Clustered readahead: no budget pressure, every (ra+1)-th page demand
/// faults and pulls its `ra` slot neighbors as prefetch-class reads in the
/// same clustered device operation — the speculative landing/settling path.
Rate bench_readahead(u64 pages, unsigned ra) {
  const u64 stride = ra + 1;
  const u64 demand = pages / stride;
  paging::SwapConfig cfg0 = fast_swap();
  cfg0.sched = paging::SwapSchedPolicy::kPriority;
  cfg0.readahead = ra;
  // Readahead clips at cluster-region boundaries (neighbors never cross a
  // 64-slot region, and regions are keyed by absolute vpn), so the expected
  // prefetch count per demand fault is the depth clipped to the slots left
  // in the faulting vpn's region. Probe a rig for the deterministic base
  // vpn; every repetition allocates the identical layout.
  const u64 vpn0 = [&] {
    FaultRig probe(pages, pages, cfg0);
    return probe.base / probe.page();
  }();
  u64 expected_prefetch = 0;
  for (u64 i = 0; i < demand; ++i)
    expected_prefetch += std::min<u64>(ra, 63 - (vpn0 + i * stride) % 64);
  const u64 items = demand + expected_prefetch;
  Cycles covered = 0;
  Rate r = measure(items, [&] {
    FaultRig rig(pages, /*budget=*/pages, cfg0);
    rig.clear_dirty_bits();
    rig.evict_all();  // in-vpn-order eviction clusters the swap slots
    rig.fault_chain(demand, 0, stride, /*dirty=*/false);
    if (rig.pager->swap_ins() != demand)
      throw std::runtime_error("micro_paging: readahead demand swap-in count mismatch");
    if (rig.pager->prefetches() != expected_prefetch)
      throw std::runtime_error("micro_paging: readahead prefetch count mismatch (got " +
                               std::to_string(rig.pager->prefetches()) + ", want " +
                               std::to_string(expected_prefetch) + ")");
    covered = rig.sim.now();
  });
  r.cycles = covered;
  return r;
}

}  // namespace

int main() {
  try {
    bench::EngineBenchReport report;
    Table table({"section", "items/s", "host ms", "items"});
    auto row = [&](const std::string& name, const Rate& r) {
      table.add_row({name, Table::num(r.items_per_sec, 0), Table::num(r.host_ms, 1),
                     Table::num(r.items)});
      report.add(name, r.cycles, r.items, r.host_ms);
    };

    row("paging_fault_clean_2k", bench_fault_clean(2048, 1024, 2));
    row("paging_fault_dirty_2k", bench_fault_dirty(2048, 1024, 2));
    row("paging_swap_enqueue_fifo_4k", bench_swap_enqueue(4096, paging::SwapSchedPolicy::kFifo));
    row("paging_swap_enqueue_prio_4k",
        bench_swap_enqueue(4096, paging::SwapSchedPolicy::kPriority));
    row("paging_readahead_ra8_4k", bench_readahead(4096, 8));

    table.print(std::cout, "Paging fault-path microbenchmarks");
    report.write_json("BENCH_paging.json");
    std::cout << "wrote BENCH_paging.json\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "micro_paging FAILED: " << e.what() << "\n";
    return 1;
  }
}

// Ablation A1 — Page-walk cache on/off.
//
// Pointer chasing across far more pages than the TLB holds makes every
// access walk. The walk cache short-circuits the interior levels for
// recently used leaf tables. Expected: with 512 pages under one leaf-table
// region, the cache removes ~2/3 of walker DRAM reads and a matching slice
// of runtime.

#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace vmsls;

namespace {
bench::RunResult run_case(bool cache_on, unsigned cache_entries) {
  workloads::WorkloadParams p;
  p.n = 65536;  // 2 MiB of nodes = 512 pages
  auto wl = workloads::make_pointer_chase(p);
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware);
  mem::TlbConfig tiny;
  tiny.entries = 4;
  tiny.ways = 4;
  app.threads[0].tlb_override = tiny;  // force walks

  sls::PlatformSpec plat = sls::zynq7020();
  plat.walker.walk_cache_enabled = cache_on;
  plat.walker.walk_cache_entries = cache_entries;

  sls::SynthesisFlow flow(plat);
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);
  system->start_all();
  bench::RunResult r;
  r.cycles = system->run_to_completion();
  if (!wl.verify(*system)) throw std::runtime_error("verification failed");
  r.stats = sim.stats().snapshot();
  return r;
}
}  // namespace

int main() {
  Table table({"walk cache", "cycles", "walks", "walker DRAM reads", "reads/walk",
               "mean walk cyc"});
  for (const auto& [on, entries, label] :
       std::vector<std::tuple<bool, unsigned, std::string>>{
           {false, 0, "off"}, {true, 4, "4 entries"}, {true, 16, "16 entries"},
           {true, 64, "64 entries"}}) {
    const auto r = run_case(on, entries);
    const double walks = r.stat("walker.walks");
    const double reads = r.stat("walker.mem_reads");
    table.add_row({label, Table::num(r.cycles), Table::num(static_cast<u64>(walks)),
                   Table::num(static_cast<u64>(reads)), Table::num(reads / walks, 2),
                   Table::num(r.stat("walker.walk_latency.mean"), 1)});
  }
  table.print(std::cout, "Ablation A1: page-walk cache (pointer chase, 512 pages, 4-entry TLB)");
  return 0;
}

// Figure 7 — Demand paging: runtime vs fraction of working set resident.
//
// conv2d's image is partially evicted before the run; the hardware thread
// demand-faults the cold pages as its row bursts reach them. Expected
// shape: runtime decays to the pinned case as residency approaches 100%;
// each fault costs the full OS path but sequential access amortizes it to
// one fault per page.

#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace vmsls;

int main() {
  workloads::WorkloadParams p;
  p.n = 64;  // 64x64 image, 32 KiB in + 32 KiB out
  const auto wl = workloads::make_conv2d(p);

  Table table({"resident %", "cycles", "faults", "mean fault cyc", "slowdown vs pinned"});
  Cycles pinned_cycles = 0;

  for (unsigned resident : {100u, 75u, 50u, 25u, 0u}) {
    bench::RunOptions opt;
    opt.pinned_buffers = (resident == 100);
    opt.pre_run = [resident](sls::System& system) {
      if (resident == 100) return;
      auto& as = system.address_space();
      const u64 page = as.page_bytes();
      for (const auto& buf : system.image().app().buffers) {
        const VirtAddr base = system.buffer(buf.name);
        const u64 pages = ceil_div(buf.bytes, page);
        const u64 keep = pages * resident / 100;
        // Evict the tail fraction; the kernel reaches it mid-run.
        if (keep < pages)
          system.process().evict(base + keep * page, (pages - keep) * page);
      }
    };
    const auto r = bench::run_workload(wl, opt);
    if (resident == 100) pinned_cycles = r.cycles;
    table.add_row({Table::num(static_cast<u64>(resident)), Table::num(r.cycles),
                   Table::num(static_cast<u64>(r.stat("faults.faults"))),
                   Table::num(r.stat("faults.latency.mean"), 1),
                   Table::num(static_cast<double>(r.cycles) /
                                  static_cast<double>(pinned_cycles),
                              2)});
  }

  table.print(std::cout, "Figure 7: demand-paging residency sweep (conv2d 64x64)");
  return 0;
}

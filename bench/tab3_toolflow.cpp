// Table 3 — Toolflow statistics.
//
// Synthesis cost and generated-artifact sizes per application: host
// wall-clock per pass, netlist instances/nets, address-map entries, and
// resource-estimate totals. Expected shape: cost grows linearly with
// thread count and stays in the milliseconds — system-level synthesis is
// cheap next to the (out-of-scope) RTL implementation run.

#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace vmsls;

namespace {
sls::AppSpec multi_thread_app(unsigned hw_threads) {
  workloads::WorkloadParams p;
  p.n = 1024;
  sls::AppSpec app;
  app.name = "scale" + std::to_string(hw_threads);
  app.add_mailbox("args", 16);
  app.add_mailbox("done", 16);
  for (unsigned t = 0; t < hw_threads; ++t) {
    const auto wl = workloads::make_workload(
        workloads::workload_names()[t % workloads::workload_names().size()], p);
    for (const auto& buf : wl.buffers)
      app.add_buffer("t" + std::to_string(t) + "_" + buf.name, buf.bytes);
    app.add_hw_thread("t" + std::to_string(t), wl.kernel, {"args", "done"});
  }
  return app;
}
}  // namespace

int main() {
  Table table({"app", "HW threads", "synthesis us", "validate us", "iface-synth us",
               "estimate us", "emit us", "instances", "nets", "addr-map", "LUT total"});

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto app = multi_thread_app(threads);
    sls::SynthesisFlow flow(sls::zynq7045());  // big part fits 8 threads
    const auto image = flow.synthesize(app);
    const auto& rep = image.report();

    double total = 0, validate = 0, iface = 0, estimate = 0, emit = 0;
    for (const auto& t : rep.pass_timings) {
      total += t.microseconds;
      if (t.pass == "validate") validate = t.microseconds;
      if (t.pass == "interface-synthesis") iface = t.microseconds;
      if (t.pass == "estimate") estimate = t.microseconds;
      if (t.pass == "emit") emit = t.microseconds;
    }
    table.add_row({app.name, Table::num(static_cast<u64>(threads)), Table::num(total, 1),
                   Table::num(validate, 1), Table::num(iface, 1), Table::num(estimate, 1),
                   Table::num(emit, 1), Table::num(rep.netlist_instances),
                   Table::num(rep.netlist_nets),
                   Table::num(static_cast<u64>(rep.address_map.size())),
                   Table::num(rep.total.luts)});
  }

  table.print(std::cout, "Table 3: toolflow statistics (host wall-clock)");
  return 0;
}

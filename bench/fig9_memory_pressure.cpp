// Figure 9 — Memory pressure: replacement policy vs frame budget.
//
// The pager daemon caps the process at a fraction of its working-set pages
// (100% -> 25% residency) and the hardware thread runs cold-start, so every
// page arrives through the timed fault path and victims leave through the
// configured replacement policy. Two access patterns bracket the story:
//
//   hash_join      — streamed key/output pages (strong locality) plus a
//                    random-probed table: recency-aware policies keep the
//                    hot stream pages resident, RANDOM evicts them blindly.
//   pointer_chase  — a random cycle over the node pages: little recency
//                    signal, so policies converge and the sweep isolates
//                    pure capacity cost.
//
// Deterministic: workload data, policy seeds, and the event order are all
// fixed — rerunning produces identical tables.

#include <iostream>

#include "bench_util.hpp"
#include "mem/paging/replacement.hpp"
#include "sls/report_writer.hpp"
#include "util/table.hpp"

using namespace vmsls;

namespace {

u64 working_set_pages(const workloads::Workload& wl, u64 page) {
  u64 pages = 0;
  for (const auto& buf : wl.buffers) pages += ceil_div(buf.bytes, page);
  return pages;
}

void sweep(const workloads::Workload& wl) {
  const u64 page = 4 * KiB;
  const u64 total_pages = working_set_pages(wl, page);

  Table table({"resident %", "frames", "policy", "cycles", "faults", "evictions", "swap ins",
               "writebacks", "slowdown"});
  Cycles baseline = 0;
  Cycles clock_25 = 0, random_25 = 0;

  for (unsigned resident : {100u, 75u, 50u, 25u}) {
    const u64 budget = std::max<u64>(2, total_pages * resident / 100);
    for (const auto policy :
         {paging::PolicyKind::kClock, paging::PolicyKind::kLruApprox, paging::PolicyKind::kFifo,
          paging::PolicyKind::kRandom}) {
      bench::RunOptions opt;
      opt.pinned_buffers = false;
      opt.platform.pager.frame_budget = budget;
      opt.platform.pager.policy = policy;
      opt.platform.pager.policy_seed = 7;
      opt.pre_run = bench::evict_all_buffers;  // cold start: everything swapped
      const bool last_cell =
          resident == 25 && policy == paging::PolicyKind::kRandom;
      if (last_cell)
        opt.post_run = [&wl](sls::System&, sim::Simulator& sim) {
          std::cout << "[" << wl.name << ", 25% residency, random] ";
          sls::write_pager_summary(std::cout, sim.stats());
        };
      const auto r = bench::run_workload(wl, opt);
      if (resident == 100 && policy == paging::PolicyKind::kClock) baseline = r.cycles;
      if (resident == 25 && policy == paging::PolicyKind::kClock) clock_25 = r.cycles;
      if (resident == 25 && policy == paging::PolicyKind::kRandom) random_25 = r.cycles;
      table.add_row({Table::num(static_cast<u64>(resident)), Table::num(budget),
                     paging::policy_name(policy), Table::num(r.cycles),
                     Table::num(static_cast<u64>(r.stat("faults.faults"))),
                     Table::num(static_cast<u64>(r.stat("pager.evictions"))),
                     Table::num(static_cast<u64>(r.stat("pager.swap_ins"))),
                     Table::num(static_cast<u64>(r.stat("pager.writebacks"))),
                     Table::num(static_cast<double>(r.cycles) / static_cast<double>(baseline),
                                2)});
    }
  }

  table.print(std::cout, "Figure 9: memory-pressure sweep (" + wl.name + ", " +
                             Table::num(total_pages) + " working-set pages)");
  std::cout << "  clock vs random at 25% residency: " << clock_25 << " vs " << random_25
            << " cycles (" << Table::num(static_cast<double>(random_25) /
                                             static_cast<double>(clock_25),
                                         2)
            << "x)\n\n";
}

}  // namespace

int main() {
  {
    workloads::WorkloadParams p;
    p.n = 2048;   // probe keys: 4 streamed key pages + 4 streamed out pages
    p.aux = 448;  // build tuples -> 2048 slots -> 8 table pages
    sweep(workloads::make_hash_join(p));
  }
  {
    workloads::WorkloadParams p;
    p.n = 2048;  // 2048 nodes * 32 B = 16 node pages, random traversal
    sweep(workloads::make_pointer_chase(p));
  }
  return 0;
}

// Figure 11 — DMA offload under memory pressure: the paper's SVM-vs-DMA
// comparison (fig. 5 axis) swept across residency budgets (fig. 9 axis).
//
// The seed refused to elaborate the DMA baseline whenever a pager budget
// was set, so the headline comparison silently excluded exactly the regime
// where translation-based sharing should shine. With pinned scatter-gather
// transfers and budget-aware admission, all three flows now run cold-start
// at 100% -> 25% residency:
//
//   SVM       — the hardware thread demand-faults user pages in place.
//   kCpuCopy  — driver memcpy; every missing user page faults through the
//               pager (swap time charged) before its line crosses the bus.
//   kSgDma    — scatter-gather DMA over pinned user pages; runs whose pin
//               demand exceeds the quota are chunked and queue behind pin
//               releases (offload.chunked_runs / offload.pin_stalls).
//
// Deterministic: workload data, policy seeds, and event order are fixed.

#include <iostream>
#include <map>
#include <stdexcept>
#include <vector>

#include "bench_util.hpp"
#include "mem/paging/replacement.hpp"
#include "sls/report_writer.hpp"
#include "util/table.hpp"

using namespace vmsls;

namespace {

u64 working_set_pages(const workloads::Workload& wl, u64 page) {
  u64 pages = 0;
  for (const auto& buf : wl.buffers) pages += ceil_div(buf.bytes, page);
  return pages;
}

sls::PlatformSpec pressured_platform(u64 budget, dma::CopyMode mode) {
  sls::PlatformSpec plat = sls::zynq7020();
  plat.pager.frame_budget = budget;
  plat.pager.policy = paging::PolicyKind::kClock;
  plat.pager.policy_seed = 7;
  plat.offload.mode = mode;
  return plat;
}

struct OffloadRun {
  Cycles cycles = 0;
  std::map<std::string, double> stats;

  double stat(const std::string& name) const {
    auto it = stats.find(name);
    return it == stats.end() ? 0.0 : it->second;
  }
};

/// Args for the physically-addressed kernel, built from the pinned bases
/// and the virtual-address args the workload's setup pushed (`seed_args`).
using ArgBuilder = std::function<std::vector<i64>(
    sls::System&, const std::map<std::string, dma::PinnedBuffer>&, const std::vector<i64>&)>;
/// Optional functional fix-up of pinned-buffer contents after copy-in
/// (pointer marshalling); charged zero time, which flatters the DMA flow.
using Fixup = std::function<void(sls::System&, const std::map<std::string, dma::PinnedBuffer>&)>;

/// The copy-based offload flow under a pager budget: cold-start the user
/// buffers into swap, copy in (faulting + pinning through the pager), run
/// the kernel physically addressed, copy out. Asserts the queue drains and
/// every pin is released.
OffloadRun run_offload_under_pressure(const workloads::Workload& wl,
                                      const std::vector<std::string>& in,
                                      const std::vector<std::string>& out, u64 budget,
                                      dma::CopyMode mode, const ArgBuilder& make_args,
                                      const Fixup& fixup = nullptr,
                                      const std::function<void(sim::Simulator&)>& post = nullptr) {
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware,
                                          sls::Addressing::kPhysical, /*pinned_buffers=*/false);
  sls::SynthesisOptions opts;
  opts.include_dma = true;
  sls::SynthesisFlow flow(pressured_platform(budget, mode), opts);
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);

  // The workload pushed virtual-address args; remember them (offsets and
  // scalar parameters survive the move to pinned memory), then drain.
  auto& args = system->process().mailbox(system->image().app().mailbox_index("args"));
  std::vector<i64> seed_args;
  i64 drained = 0;
  while (args.try_get(drained)) seed_args.push_back(drained);

  // Cold start: every user page leaves through the swap device, so the copy
  // phases pay the full fault + swap-in path under the budget.
  for (const auto& buf : app.buffers)
    system->process().evict(system->buffer(buf.name), buf.bytes);

  std::map<std::string, dma::PinnedBuffer> pinned;
  for (const auto& buf : app.buffers) pinned[buf.name] = system->offload().alloc_pinned(buf.bytes);

  const Cycles t0 = sim.now();
  // Copy-in phase (sequential, as one ioctl would drive it).
  std::size_t next_in = 0;
  bool in_done = in.empty();
  std::function<void()> copy_next = [&] {
    if (next_in >= in.size()) {
      in_done = true;
      return;
    }
    const std::string name = in[next_in++];
    u64 bytes = 0;
    for (const auto& buf : app.buffers)
      if (buf.name == name) bytes = buf.bytes;
    system->offload().copy_in(system->buffer(name), pinned[name], 0, bytes, copy_next);
  };
  copy_next();
  while (!in_done)
    if (!sim.step()) throw std::runtime_error("copy-in stalled");

  if (fixup) fixup(*system, pinned);
  for (i64 a : make_args(*system, pinned, seed_args)) args.put(a, [] {});
  system->start_all();
  system->run_to_completion();

  // Copy-out phase.
  std::size_t next_out = 0;
  bool out_done = out.empty();
  std::function<void()> copy_back = [&] {
    if (next_out >= out.size()) {
      out_done = true;
      return;
    }
    const std::string name = out[next_out++];
    u64 bytes = 0;
    for (const auto& buf : app.buffers)
      if (buf.name == name) bytes = buf.bytes;
    system->offload().copy_out(pinned[name], 0, system->buffer(name), bytes, copy_back);
  };
  copy_back();
  while (!out_done)
    if (!sim.step()) throw std::runtime_error("copy-out stalled");

  OffloadRun r;
  r.cycles = sim.now() - t0;
  if (!wl.verify(*system))
    throw std::runtime_error(wl.name + ": DMA-under-pressure verification failed");
  // The acceptance gates: the event queue must drain (no orphaned waiter or
  // daemon) and every transfer pin must be released.
  while (sim.step()) {
  }
  if (!sim.idle()) throw std::runtime_error(wl.name + ": event queue did not drain");
  if (system->address_space().pinned_pages() != 0)
    throw std::runtime_error(wl.name + ": offload pins leaked");
  r.stats = sim.stats().snapshot();
  if (post) post(sim);
  return r;
}

/// The SVM flow at the same operating point (fig. 9's recipe).
bench::RunResult run_svm_under_pressure(const workloads::Workload& wl, u64 budget) {
  bench::RunOptions opt;
  opt.pinned_buffers = false;
  opt.platform = pressured_platform(budget, dma::CopyMode::kSgDma);
  opt.pre_run = bench::evict_all_buffers;
  return bench::run_workload(wl, opt);
}

void sweep(const workloads::Workload& wl, const std::vector<std::string>& in,
           const std::vector<std::string>& out, const ArgBuilder& make_args,
           const Fixup& fixup = nullptr) {
  const u64 page = 4 * KiB;
  const u64 total_pages = working_set_pages(wl, page);

  Table table({"resident %", "frames", "flow", "cycles", "swap ins", "pin stalls",
               "chunked runs", "vs SVM"});
  for (unsigned resident : {100u, 75u, 50u, 25u}) {
    const u64 budget = std::max<u64>(2, total_pages * resident / 100);
    const auto svm = run_svm_under_pressure(wl, budget);
    table.add_row({Table::num(static_cast<u64>(resident)), Table::num(budget), "svm",
                   Table::num(svm.cycles),
                   Table::num(static_cast<u64>(svm.stat("pager.swap_ins"))), "-", "-",
                   Table::num(1.0, 2)});
    for (const auto mode : {dma::CopyMode::kCpuCopy, dma::CopyMode::kSgDma}) {
      const bool last_cell = resident == 25 && mode == dma::CopyMode::kSgDma;
      std::function<void(sim::Simulator&)> post;
      if (last_cell)
        post = [&wl](sim::Simulator& sim) {
          std::cout << "[" << wl.name << ", 25% residency, sg_dma] ";
          sls::write_offload_summary(std::cout, sim.stats());
          std::cout << "[" << wl.name << ", 25% residency, sg_dma] ";
          sls::write_pager_summary(std::cout, sim.stats());
        };
      const auto r = run_offload_under_pressure(wl, in, out, budget, mode, make_args, fixup, post);
      table.add_row({Table::num(static_cast<u64>(resident)), Table::num(budget),
                     dma::copy_mode_name(mode), Table::num(r.cycles),
                     Table::num(static_cast<u64>(r.stat("pager.swap_ins"))),
                     Table::num(static_cast<u64>(r.stat("offload.pin_stalls"))),
                     Table::num(static_cast<u64>(r.stat("offload.chunked_runs"))),
                     Table::num(static_cast<double>(r.cycles) / static_cast<double>(svm.cycles),
                                2)});
    }
  }
  table.print(std::cout, "Figure 11: DMA offload under memory pressure (" + wl.name + ", " +
                             Table::num(total_pages) + " working-set pages)");
  std::cout << "\n";
}

}  // namespace

int main() {
  {
    workloads::WorkloadParams p;
    p.n = 2048;   // probe keys: 4 streamed key pages + 4 streamed out pages
    p.aux = 448;  // build tuples -> 2048 slots -> 8 table pages
    const auto wl = workloads::make_hash_join(p);
    // seed_args = {table_va, keys_va, out_va, probes, mask}: scalars carry
    // over, buffer bases move to the pinned copies.
    sweep(wl, {"table", "keys"}, {"out"},
          [](sls::System&, const std::map<std::string, dma::PinnedBuffer>& pinned,
             const std::vector<i64>& seed) {
            return std::vector<i64>{static_cast<i64>(pinned.at("table").pa),
                                    static_cast<i64>(pinned.at("keys").pa),
                                    static_cast<i64>(pinned.at("out").pa), seed[3], seed[4]};
          });
  }
  {
    workloads::WorkloadParams p;
    p.n = 2048;  // random cycle over the node pages
    const auto wl = workloads::make_pointer_chase(p);
    const u64 node_bytes = wl.buffers.front().bytes / p.n;
    // The copy-based flow must marshal embedded pointers: node next-fields
    // hold virtual addresses, which the driver rewrites to pinned physical
    // addresses after copy-in (zero simulated time — flattering the DMA
    // baseline, as fig. 5 does for its argument rewriting).
    auto fixup = [p, node_bytes](sls::System& sys,
                                 const std::map<std::string, dma::PinnedBuffer>& pinned) {
      const auto& buf = pinned.at("nodes");
      const VirtAddr base = sys.buffer("nodes");
      auto& pm = sys.physical_memory();
      for (u64 i = 0; i < p.n; ++i) {
        u64 next_va = 0;
        pm.read(buf.pa + i * node_bytes,
                std::span<u8>(reinterpret_cast<u8*>(&next_va), sizeof(next_va)));
        const u64 next_pa = buf.pa + (next_va - base);
        pm.write(buf.pa + i * node_bytes,
                 std::span<const u8>(reinterpret_cast<const u8*>(&next_pa), sizeof(next_pa)));
      }
    };
    // seed_args = {start_node_va, n}.
    sweep(wl, {"nodes"}, {},
          [node_bytes](sls::System& sys, const std::map<std::string, dma::PinnedBuffer>& pinned,
                       const std::vector<i64>& seed) {
            const u64 off = static_cast<u64>(seed[0]) - sys.buffer("nodes");
            return std::vector<i64>{static_cast<i64>(pinned.at("nodes").pa + off), seed[1]};
          },
          fixup);
  }
  return 0;
}

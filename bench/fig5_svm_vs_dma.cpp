// Figure 5 — Virtual-memory hardware threads vs copy-based DMA offload.
//
// The paper's headline comparison, swept over working-set size:
//
//   streaming (saxpy, burst kernel): every byte is used exactly once, so
//     the copy-based flow pays pin + copy-in(x,y) + copy-out(y) on top of
//     the same compute; SVM touches user pages in place. Expected: SVM
//     wins by a roughly constant factor (the copies), shrinking slightly
//     as burst compute grows.
//
//   sparse (hash-join probe): the accelerator touches a few slots of a
//     large table, but the copy-based flow must ship the WHOLE table.
//     Expected: the SVM advantage grows with table size.
//
// A third column runs SVM cold (demand-faulting every page) — the honest
// comparison when the data is not yet resident.

#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace vmsls;

namespace {

/// Runs a workload as a conventional copy-based offload: buffers are copied
/// into pinned memory, the kernel runs with physical addressing, results
/// are copied back. `in` names buffers copied in, `out` buffers copied
/// back; `make_args` receives the pinned physical base per buffer.
Cycles run_dma_offload(const workloads::Workload& wl, const std::vector<std::string>& in,
                       const std::vector<std::string>& out,
                       const std::function<std::vector<i64>(
                           const std::map<std::string, PhysAddr>&)>& make_args) {
  auto app = workloads::single_thread_app(wl, sls::ThreadKind::kHardware,
                                          sls::Addressing::kPhysical);
  sls::SynthesisOptions opts;
  opts.include_dma = true;
  sls::SynthesisFlow flow(sls::zynq7020(), opts);
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);
  wl.setup(*system);

  // The workload pushed virtual-address args; the offload flow replaces
  // them with pinned physical addresses.
  auto& args = system->process().mailbox(system->image().app().mailbox_index("args"));
  i64 drained = 0;
  while (args.try_get(drained)) {
  }

  std::map<std::string, PhysAddr> pinned_base;
  std::map<std::string, dma::PinnedBuffer> pinned;
  for (const auto& buf : app.buffers) {
    pinned[buf.name] = system->offload().alloc_pinned(buf.bytes);
    pinned_base[buf.name] = pinned[buf.name].pa;
  }

  const Cycles t0 = sim.now();
  // Copy-in phase (sequential, as one ioctl would drive it).
  std::size_t next_in = 0;
  bool in_done = in.empty();
  std::function<void()> copy_next = [&] {
    if (next_in >= in.size()) {
      in_done = true;
      return;
    }
    const std::string name = in[next_in++];
    u64 bytes = 0;
    for (const auto& buf : app.buffers)
      if (buf.name == name) bytes = buf.bytes;
    system->offload().copy_in(system->buffer(name), pinned[name], 0, bytes, copy_next);
  };
  copy_next();
  while (!in_done)
    if (!sim.step()) throw std::runtime_error("copy-in stalled");

  for (i64 a : make_args(pinned_base)) args.put(a, [] {});
  system->start_all();
  system->run_to_completion();

  // Copy-out phase.
  std::size_t next_out = 0;
  bool out_done = out.empty();
  std::function<void()> copy_back = [&] {
    if (next_out >= out.size()) {
      out_done = true;
      return;
    }
    const std::string name = out[next_out++];
    u64 bytes = 0;
    for (const auto& buf : app.buffers)
      if (buf.name == name) bytes = buf.bytes;
    system->offload().copy_out(pinned[name], 0, system->buffer(name), bytes, copy_back);
  };
  copy_back();
  while (!out_done)
    if (!sim.step()) throw std::runtime_error("copy-out stalled");

  const Cycles total = sim.now() - t0;
  if (!wl.verify(*system)) throw std::runtime_error("DMA offload verification failed");
  return total;
}

}  // namespace

int main() {
  {
    Table table({"working set", "n", "SVM cycles", "SVM cold cycles", "DMA cycles",
                 "DMA/SVM", "DMA/SVM cold"});
    for (u64 n : {1024u, 4096u, 16384u, 65536u, 262144u}) {
      workloads::WorkloadParams p;
      p.n = n;
      p.tile = 256;
      const auto wl = workloads::make_saxpy_burst(p);

      const auto svm = bench::run_workload(wl);
      bench::RunOptions cold;
      cold.pinned_buffers = false;
      cold.pre_run = bench::evict_all_buffers;
      const auto svm_cold = bench::run_workload(wl, cold);

      const Cycles dma = run_dma_offload(
          wl, {"x", "y"}, {"y"}, [&](const std::map<std::string, PhysAddr>& base) {
            return std::vector<i64>{static_cast<i64>(base.at("x")),
                                    static_cast<i64>(base.at("y")), 7, static_cast<i64>(n)};
          });

      table.add_row({format_bytes(2 * n * 8), Table::num(n), Table::num(svm.cycles),
                     Table::num(svm_cold.cycles), Table::num(dma),
                     Table::num(static_cast<double>(dma) / static_cast<double>(svm.cycles), 2),
                     Table::num(static_cast<double>(dma) / static_cast<double>(svm_cold.cycles),
                                2)});
    }
    table.print(std::cout, "Figure 5a: streaming (saxpy) — SVM vs copy-based DMA offload");
  }

  {
    // Fixed probe count against a growing table: the accelerator touches a
    // bounded set of slots while the copy-based flow must ship everything.
    constexpr u64 kProbes = 2048;
    Table table({"table size", "probes", "SVM cycles", "DMA cycles", "DMA/SVM"});
    for (u64 build : {1024u, 4096u, 16384u, 65536u}) {
      workloads::WorkloadParams p;
      p.n = kProbes;
      p.aux = build;
      const auto wl = workloads::make_hash_join(p);
      const auto svm = bench::run_workload(wl);

      u64 slots = 4;
      while (slots < 4 * build) slots <<= 1;
      const u64 mask = slots - 1;
      const Cycles dma = run_dma_offload(
          wl, {"table", "keys"}, {"out"}, [&](const std::map<std::string, PhysAddr>& base) {
            return std::vector<i64>{static_cast<i64>(base.at("table")),
                                    static_cast<i64>(base.at("keys")),
                                    static_cast<i64>(base.at("out")),
                                    static_cast<i64>(kProbes), static_cast<i64>(mask)};
          });

      table.add_row({format_bytes(slots * 16), Table::num(kProbes), Table::num(svm.cycles),
                     Table::num(dma),
                     Table::num(static_cast<double>(dma) / static_cast<double>(svm.cycles), 2)});
    }
    table.print(std::cout, "Figure 5b: sparse (hash-join probe) — SVM advantage grows with size");
  }
  return 0;
}

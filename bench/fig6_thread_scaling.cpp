// Figure 6 — Scaling with the number of hardware threads.
//
// T threads work on disjoint slices through private TLBs but one shared
// walker and one shared memory bus. Two series:
//   histogram  — compute-bound: scales nearly linearly to 8 threads;
//   saxpy      — bandwidth-bound streaming: the shared bus saturates and
//                throughput flattens, the knee the paper's interconnect
//                sizing discussion is about.

#include <iostream>

#include "bench_util.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace vmsls;

namespace {
struct ScalingPoint {
  Cycles makespan = 0;
  double walker_wait_mean = 0;
  double bus_wait_mean = 0;
  double bus_busy_frac = 0;
};

ScalingPoint run_threads(const std::string& workload, unsigned threads, u64 n_per_thread) {
  workloads::WorkloadParams p;
  p.n = n_per_thread;
  p.tile = 256;

  sls::AppSpec app;
  app.name = "scal" + std::to_string(threads);
  std::vector<workloads::Workload> wls;
  for (unsigned t = 0; t < threads; ++t) {
    wls.push_back(workloads::make_workload(workload, p));
    app.add_mailbox("args" + std::to_string(t), 8);
    app.add_mailbox("done" + std::to_string(t), 4);
    for (const auto& buf : wls.back().buffers)
      app.add_buffer("t" + std::to_string(t) + "_" + buf.name, buf.bytes);
    app.add_hw_thread("t" + std::to_string(t), wls.back().kernel,
                      {"args" + std::to_string(t), "done" + std::to_string(t)});
  }

  sls::SynthesisFlow flow(sls::zynq7045());
  const auto image = flow.synthesize(app);
  sim::Simulator sim;
  auto system = image.elaborate(sim);

  Rng rng(7);
  for (unsigned t = 0; t < threads; ++t) {
    auto& args = system->process().mailbox(app.mailbox_index("args" + std::to_string(t)));
    const std::string prefix = "t" + std::to_string(t) + "_";
    if (workload == "histogram") {
      std::vector<u8> data(n_per_thread);
      for (auto& b : data) b = static_cast<u8>(rng.below(256));
      const VirtAddr va = system->buffer(prefix + "data");
      system->address_space().write(va, std::span<const u8>(data.data(), data.size()));
      args.put(static_cast<i64>(va), [] {});
      args.put(static_cast<i64>(system->buffer(prefix + "hist")), [] {});
      args.put(static_cast<i64>(n_per_thread), [] {});
    } else {  // saxpy_burst: x, y, alpha, n
      for (const char* name : {"x", "y"}) {
        const VirtAddr va = system->buffer(prefix + name);
        for (u64 i = 0; i < n_per_thread; ++i)
          system->address_space().write_scalar<i64>(va + i * 8,
                                                    static_cast<i64>(rng.below(1u << 16)));
      }
      args.put(static_cast<i64>(system->buffer(prefix + "x")), [] {});
      args.put(static_cast<i64>(system->buffer(prefix + "y")), [] {});
      args.put(7, [] {});
      args.put(static_cast<i64>(n_per_thread), [] {});
    }
  }

  system->start_all();
  ScalingPoint point;
  point.makespan = system->run_to_completion();
  point.walker_wait_mean = sim.stats().histograms().at("walker.queue_wait").mean();
  point.bus_wait_mean = sim.stats().histograms().at("bus.queue_wait").mean();
  point.bus_busy_frac =
      static_cast<double>(system->bus().busy_cycles()) / static_cast<double>(sim.now());
  return point;
}

void sweep(const std::string& workload, u64 n_per_thread, const std::string& title) {
  Table table({"threads", "makespan", "speedup vs 1", "bus busy %", "bus wait", "walker wait"});
  double base = 0;
  for (unsigned t : {1u, 2u, 4u, 6u, 8u}) {
    const auto point = run_threads(workload, t, n_per_thread);
    if (t == 1) base = static_cast<double>(point.makespan);
    // Throughput speedup: T slices in `makespan` vs 1 slice in `base`.
    const double speedup = static_cast<double>(t) * base / static_cast<double>(point.makespan);
    table.add_row({Table::num(static_cast<u64>(t)), Table::num(point.makespan),
                   Table::num(speedup, 2), Table::num(point.bus_busy_frac * 100.0, 1),
                   Table::num(point.bus_wait_mean, 1), Table::num(point.walker_wait_mean, 1)});
  }
  table.print(std::cout, title);
}
}  // namespace

int main() {
  sweep("histogram", 128 * KiB, "Figure 6a: scaling, compute-bound (histogram, 128 KiB/thread)");
  sweep("saxpy_burst", 16384,
        "Figure 6b: scaling, bandwidth-bound (saxpy bursts, 16K elements/thread)");
  return 0;
}

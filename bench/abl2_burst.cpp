// Ablation A2 — Burst vs element-wise memory ports.
//
// The same saxpy computation with per-element 8-byte accesses versus
// scratchpad tile bursts. Expected: bursts amortize the per-transaction
// bus/DRAM overhead and the per-page translation, recovering DMA-like
// streaming efficiency while keeping virtual addressing.

#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"

using namespace vmsls;

int main() {
  Table table({"kernel", "tile", "cycles", "bus requests", "bytes/request", "translations",
               "speedup vs element"});

  workloads::WorkloadParams p;
  p.n = 16384;

  const auto element = bench::run_workload(workloads::make_saxpy(p));
  const double elem_reqs = element.stat("bus.requests");
  table.add_row({"saxpy (element)", "-", Table::num(element.cycles),
                 Table::num(static_cast<u64>(elem_reqs)),
                 Table::num(element.stat("bus.bytes") / elem_reqs, 1),
                 Table::num(static_cast<u64>(element.stat("hwt.worker.mmu.translations"))),
                 Table::num(1.0, 2)});

  for (u64 tile : {32u, 128u, 512u}) {
    p.tile = tile;
    const auto burst = bench::run_workload(workloads::make_saxpy_burst(p));
    const double reqs = burst.stat("bus.requests");
    table.add_row({"saxpy (burst)", Table::num(tile), Table::num(burst.cycles),
                   Table::num(static_cast<u64>(reqs)),
                   Table::num(burst.stat("bus.bytes") / reqs, 1),
                   Table::num(static_cast<u64>(burst.stat("hwt.worker.mmu.translations"))),
                   Table::num(static_cast<double>(element.cycles) /
                                  static_cast<double>(burst.cycles),
                              2)});
  }

  table.print(std::cout, "Ablation A2: burst vs element-wise ports (saxpy, 16K elements)");
  return 0;
}
